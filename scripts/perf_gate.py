#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json host sections.

The bench JSON documents split deterministic simulation results
("virtual", diffed byte-for-byte elsewhere in CI) from machine-dependent
wall-clock and memory measurements ("host" sections, which may appear
nested, e.g. top-level "host" and "scale"."host").  This script compares
the host measurements of a current run against a baseline run and fails
when any lower-is-better field regressed past a tolerance.

Gated fields (lower is better): names ending in "_ms" or "_words", or
containing "wall", "words" or "us_per_request" (the per-request host
cost of the serving scale/deep legs and of every host.hotspots
profiler section — including the GC-aware allocation attribution
fields words_per_request, minor_words_per_request and
major_words_per_request, and the scale leg's whole-run
alloc_words_per_request_domains1), plus everything under an
"observability_overhead" object (the scale leg re-run with windowed
telemetry and SLO monitors enabled — its overhead_ratio is the
telemetry-on/off wall quotient, so gating it keeps the observation
path from silently getting expensive relative to the serve loop even
when both walls drift together).
Informational fields (domains, host_cores, speedups, hotspot call
counts) are reported but never gated.  Lists are
traversed (e.g. soak snapshot_live_words[3]).  An object carrying
"degenerate": true marks a parallel leg run where real parallelism is
impossible (host_cores < 2, or more domains than cores); its fields —
speedups included — are reported info-only, never gated.  Exception:
fields whose name ends in "_domains1" are measurements of the
single-domain leg, which exists on every host, so they are gated even
inside a degenerate parallel object.

Usage:
  perf_gate.py BASELINE.json CURRENT.json [--tolerance 0.5]

A tolerance of 0.5 means the current value may exceed the baseline by up
to 50%.  Exit status: 0 ok, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys


def flatten_hosts(doc, path=""):
    """Yield (dotted_path, value) for every numeric leaf under any
    object keyed "host", at any nesting depth."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            sub = f"{path}.{key}" if path else key
            if key == "host":
                yield from numeric_leaves(value, sub)
            else:
                yield from flatten_hosts(value, sub)


def numeric_leaves(doc, path, degenerate=False):
    """Yield (dotted_path, value, degenerate) for numeric leaves,
    descending into lists.  A dict with "degenerate": true poisons its
    whole subtree: those measurements come from a leg where the thing
    being measured (e.g. parallel speedup) cannot exist on this host."""
    if isinstance(doc, dict):
        degenerate = degenerate or doc.get("degenerate") is True
        for key, value in doc.items():
            yield from numeric_leaves(value, f"{path}.{key}", degenerate)
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            yield from numeric_leaves(value, f"{path}[{i}]", degenerate)
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        yield path, (float(doc), degenerate)


def gated(path):
    leaf = path.rsplit(".", 1)[-1]
    return (leaf.endswith("_ms") or leaf.endswith("_words")
            or "wall" in leaf or "words" in leaf
            or "us_per_request" in leaf
            or "observability_overhead" in path)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed fractional regression (default 0.5 = +50%%)")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = dict(flatten_hosts(json.load(f)))
        with open(args.current) as f:
            cur = dict(flatten_hosts(json.load(f)))
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_gate: {e}", file=sys.stderr)
        return 2

    if not base:
        print("perf_gate: baseline has no host fields", file=sys.stderr)
        return 2

    failures = []
    for path in sorted(base):
        if path not in cur:
            print(f"  [skip] {path}: absent in current run")
            continue
        b, b_deg = base[path]
        c, c_deg = cur[path]
        # A "_domains1" field measures the single-domain leg, which is
        # never degenerate — the surrounding object's flag describes
        # the parallel leg only.
        if path.rsplit(".", 1)[-1].endswith("_domains1"):
            b_deg, c_deg = False, False
        if b_deg or c_deg:
            print(f"  [info] {path}: {b:g} -> {c:g} (degenerate leg, not gated)")
            continue
        if not gated(path):
            print(f"  [info] {path}: {b:g} -> {c:g}")
            continue
        if b <= 0:
            print(f"  [info] {path}: baseline {b:g}, not gated")
            continue
        ratio = c / b
        verdict = "ok" if ratio <= 1.0 + args.tolerance else "REGRESSED"
        print(f"  [{verdict}] {path}: {b:g} -> {c:g} ({ratio:.2f}x, "
              f"limit {1.0 + args.tolerance:.2f}x)")
        if ratio > 1.0 + args.tolerance:
            failures.append(path)

    if failures:
        print(f"perf_gate: {len(failures)} field(s) regressed past "
              f"+{args.tolerance:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("perf_gate: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
