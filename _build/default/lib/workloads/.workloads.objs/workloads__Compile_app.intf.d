lib/workloads/compile_app.mli: Fctx
