lib/fs/ramfs.mli: Sim
