(* Multi-language integration: the full §7.2 path — bytecode module →
   binary image → AOT → blacklist admission → execution inside
   workflows — plus runtime-profile wiring. *)

open Sim
open Baselines
open Workloads

let test_aot_image_ships_as_elf () =
  (* The AOT image survives the on-disk container and still scans
     clean — admission-from-disk, as a registry would do it. *)
  let compiled = Wasm.Aot.compile Wasm.Builder.bubble_sort in
  let image = Wasm.Aot.to_image compiled in
  let stored = Isa.Elf.store (Isa.Elf.of_image image) in
  let loaded = Isa.Elf.load stored in
  Alcotest.(check bool) "wasm-aot toolchain" true
    (loaded.Isa.Elf.toolchain = Isa.Image.Wasm_aot);
  Alcotest.(check int) "no blacklisted bytes" 0
    (List.length
       (List.filter
          (fun (o : Isa.Scanner.occurrence) -> o.Isa.Scanner.aligned)
          (Isa.Elf.scan_bytes loaded)))

let test_forbidden_image_detected_after_elf_roundtrip () =
  let evil =
    Isa.Image.create ~name:"evil" ~toolchain:Isa.Image.Native_c
      [ Isa.Inst.Mov_reg; Isa.Inst.Wrpkru; Isa.Inst.Ret ]
  in
  let loaded = Isa.Elf.load (Isa.Elf.store (Isa.Elf.of_image evil)) in
  Alcotest.(check bool) "wrpkru found in container bytes" true
    (List.exists
       (fun (o : Isa.Scanner.occurrence) ->
         o.Isa.Scanner.opcode = Isa.Scanner.Op_wrpkru && o.Isa.Scanner.aligned)
       (Isa.Elf.scan_bytes loaded))

let test_runtime_override_wavm_faster () =
  (* The same C workload computes ~30% faster under a WAVM profile than
     under Wasmtime (the §8.5 gap is a runtime property, not a platform
     property); WAVM's heavier engine startup is why end-to-end can
     still favour Wasmtime on tiny runs. *)
  let app () = Parallel_sorting.app ~seed:77 ~size:(512 * 1024) ~instances:2 in
  let with_runtime profile =
    As_platform.make
      ~options:
        {
          As_platform.default_options with
          As_platform.language = Alloystack_core.Workflow.C;
          wasm_runtime = Some profile;
        }
      ()
  in
  let compute profile =
    Platform.phase_total
      ((with_runtime profile).Platform.run (app ()))
      Fctx.phase_compute
  in
  let wasmtime = compute Wasm.Runtime.wasmtime in
  let wavm = compute Wasm.Runtime.wavm in
  Alcotest.(check bool) "wavm computes faster" true (Units.( < ) wavm wasmtime);
  let ratio = Units.to_us wasmtime /. Units.to_us wavm in
  Alcotest.(check bool)
    (Printf.sprintf "~1.3x gap (got %.2f)" ratio)
    true
    (ratio > 1.1 && ratio < 1.4)

let test_language_ordering_on_pipe () =
  (* Fig. 11's language ordering at 16MB-ish sizes: C < Rust < Python
     for the transfer phase. *)
  let app = Pipe_app.app ~seed:78 ~size:(4 * 1024 * 1024) in
  let transfer (p : Platform.t) =
    Platform.phase_total (p.Platform.run app) Fctx.phase_transfer
  in
  let rust = transfer As_platform.alloystack in
  let c = transfer As_platform.alloystack_c in
  let py = transfer As_platform.alloystack_py in
  Alcotest.(check bool) "C fastest" true (Units.( < ) c rust);
  Alcotest.(check bool) "Python slowest" true (Units.( > ) py (Units.scale rust 5.0))

let test_compile_app_across_nodes () =
  (* The encoded WASM module itself crosses a WFD boundary in the
     multi-node deployment and still compiles and runs. *)
  let app = Compile_app.app ~n:750 ~seed:5 () in
  let m = (As_multinode.make ~nodes:2 ()).Platform.run app in
  Platform.check_validated m

let test_python_reuse_vs_reinit () =
  (* Sequential Python functions share the interpreter (cheap); parallel
     instances re-init it: a 2-instance stage costs visibly more than a
     2-function chain beyond the first boot. *)
  let chain = Function_chain.app ~seed:6 ~payload:4096 ~length:3 in
  let seq = (As_platform.alloystack_py.Platform.run chain).Platform.e2e in
  let wide = Wordcount.app ~seed:6 ~size:65536 ~instances:3 in
  let par = (As_platform.alloystack_py.Platform.run wide).Platform.e2e in
  (* Both pay one CPython boot (~1.86s); the parallel app pays two extra
     re-inits (~300ms each) on top. *)
  Alcotest.(check bool) "parallel pays re-inits" true
    (Units.( > ) par (Units.add seq (Units.ms 400)))

let suite =
  [
    Alcotest.test_case "aot image ships as elf" `Quick test_aot_image_ships_as_elf;
    Alcotest.test_case "forbidden image detected after elf" `Quick
      test_forbidden_image_detected_after_elf_roundtrip;
    Alcotest.test_case "wavm override faster" `Quick test_runtime_override_wavm_faster;
    Alcotest.test_case "language ordering on pipe" `Quick test_language_ordering_on_pipe;
    Alcotest.test_case "compile app across nodes" `Quick test_compile_app_across_nodes;
    Alcotest.test_case "python reuse vs re-init" `Quick test_python_reuse_vs_reinit;
  ]
