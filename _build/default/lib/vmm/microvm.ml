open Sim

let mib n = n * 1024 * 1024

let qemu_full =
  {
    Sandbox.name = "QEMU";
    stages =
      [
        { Sandbox.label = "vmm process start"; cost = Units.ms 95 };
        { label = "BIOS + option ROMs"; cost = Units.ms 210 };
        { label = "device model (PCI, legacy)"; cost = Units.ms 420 };
        { label = "guest kernel boot"; cost = Units.ms 612 };
        { label = "init + rootfs mount"; cost = Units.ms 330 };
        { label = "runtime init"; cost = Units.ms 150 };
      ];
    mem_overhead = mib 512;
    cpu_tax = 0.06;
    syscall_via = Hostos.Syscall.Vmexit;
  }

let trimmed =
  {
    Sandbox.name = "MicroVM";
    stages =
      [
        { Sandbox.label = "vmm process start"; cost = Units.ms 48 };
        { label = "virtio device setup"; cost = Units.ms 96 };
        { label = "guest kernel boot"; cost = Units.ms 586 };
        { label = "init + rootfs mount"; cost = Units.ms 306 };
        { label = "runtime init"; cost = Units.ms 150 };
      ];
    mem_overhead = mib 168;
    cpu_tax = 0.05;
    syscall_via = Hostos.Syscall.Vmexit;
  }

let firecracker_serverless =
  {
    Sandbox.name = "Firecracker";
    stages =
      [
        { Sandbox.label = "vmm process start"; cost = Units.ms 22 };
        { label = "virtio device setup"; cost = Units.ms 11 };
        { label = "minimal guest kernel boot"; cost = Units.ms 118 };
        { label = "init + runtime"; cost = Units.ms 49 };
      ];
    mem_overhead = mib 96;
    cpu_tax = 0.05;
    syscall_via = Hostos.Syscall.Vmexit;
  }
