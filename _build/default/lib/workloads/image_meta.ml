let image_input_path = "/input/photo.img"
let thumbnail_output_path = "/output/thumb.img"
let metadata_output_path = "/output/meta.json"

(* A toy image format: 16-byte header (magic, width, height, depth as
   4-byte LE fields) followed by width*height pixel bytes. *)
let magic = 0x534d4721l (* "!GMS" *)

let make_image ~seed ~width ~height =
  let body = Datagen.payload ~seed (width * height) in
  let b = Bytes.create (16 + Bytes.length body) in
  Bytes.set_int32_le b 0 magic;
  Bytes.set_int32_le b 4 (Int32.of_int width);
  Bytes.set_int32_le b 8 (Int32.of_int height);
  Bytes.set_int32_le b 12 1l;
  Bytes.blit body 0 b 16 (Bytes.length body);
  b

let parse_header data =
  if Bytes.length data < 16 || Bytes.get_int32_le data 0 <> magic then
    failwith "image-meta: bad image";
  ( Int32.to_int (Bytes.get_int32_le data 4),
    Int32.to_int (Bytes.get_int32_le data 8) )

(* 2x2 box downscale of the pixel plane — a real (small) image kernel. *)
let downscale data =
  let w, h = parse_header data in
  let nw = w / 2 and nh = h / 2 in
  let out = Bytes.create (16 + (nw * nh)) in
  Bytes.set_int32_le out 0 magic;
  Bytes.set_int32_le out 4 (Int32.of_int nw);
  Bytes.set_int32_le out 8 (Int32.of_int nh);
  Bytes.set_int32_le out 12 1l;
  let px x y = Char.code (Bytes.get data (16 + (y * w) + x)) in
  for y = 0 to nh - 1 do
    for x = 0 to nw - 1 do
      let v =
        (px (2 * x) (2 * y) + px ((2 * x) + 1) (2 * y) + px (2 * x) ((2 * y) + 1)
        + px ((2 * x) + 1) ((2 * y) + 1))
        / 4
      in
      Bytes.set out (16 + (y * nw) + x) (Char.chr v)
    done
  done;
  out

type entry = { fn_name : string; components : string list; kernel : Fctx.kernel }

let charge ctx ns_per_byte n = Fctx.compute_bytes ctx ~ns_per_byte n

(* Table 1 of the paper, verbatim component lists.  Kernels are small
   but real so the pipeline produces checkable outputs. *)
let alu_kernel (ctx : Fctx.t) =
  ctx.Fctx.phase Fctx.phase_compute (fun () ->
      let acc = ref 1 in
      for i = 1 to 100_000 do
        acc := (!acc * 31) + i
      done;
      ignore !acc;
      ctx.Fctx.compute (Sim.Units.us 85))

let long_chain_kernel (ctx : Fctx.t) = ctx.Fctx.compute (Sim.Units.us 10)

let extract_kernel (ctx : Fctx.t) =
  let img = ref Bytes.empty in
  ctx.Fctx.phase Fctx.phase_read (fun () -> img := ctx.Fctx.read_input image_input_path);
  let w, h = parse_header !img in
  ctx.Fctx.phase Fctx.phase_compute (fun () -> charge ctx 0.4 (Bytes.length !img));
  ctx.Fctx.phase Fctx.phase_transfer (fun () ->
      ctx.Fctx.send ~slot:"img.meta"
        (Bytes.of_string (Printf.sprintf "{\"width\": %d, \"height\": %d}" w h));
      ctx.Fctx.send ~slot:"img.data" !img)

let transform_kernel (ctx : Fctx.t) =
  let meta = ctx.Fctx.recv ~slot:"img.meta" in
  ctx.Fctx.phase Fctx.phase_compute (fun () -> charge ctx 2.0 (Bytes.length meta));
  ctx.Fctx.send ~slot:"img.meta2"
    (Bytes.of_string (Bytes.to_string meta ^ " /*transformed*/"))

let handler_kernel (ctx : Fctx.t) =
  let meta = ctx.Fctx.recv ~slot:"img.meta2" in
  ctx.Fctx.phase Fctx.phase_compute (fun () -> charge ctx 1.0 (Bytes.length meta));
  ctx.Fctx.send ~slot:"img.meta3" meta

let thumbnail_kernel (ctx : Fctx.t) =
  let img = ctx.Fctx.recv ~slot:"img.data" in
  let thumb = ref Bytes.empty in
  ctx.Fctx.phase Fctx.phase_compute (fun () ->
      thumb := downscale img;
      charge ctx 1.6 (Bytes.length img));
  ctx.Fctx.write_output thumbnail_output_path !thumb

let store_kernel (ctx : Fctx.t) =
  let meta = ctx.Fctx.recv ~slot:"img.meta3" in
  ctx.Fctx.phase Fctx.phase_compute (fun () -> charge ctx 0.8 (Bytes.length meta));
  ctx.Fctx.write_output metadata_output_path meta;
  ctx.Fctx.println "metadata stored"

let table =
  [
    { fn_name = "alu"; components = [ "mm" ]; kernel = alu_kernel };
    {
      fn_name = "parallel-alu";
      components = [ "time"; "irq"; "sched"; "locking"; "mm" ];
      kernel = alu_kernel;
    };
    { fn_name = "long-chain"; components = [ "mm" ]; kernel = long_chain_kernel };
    {
      fn_name = "extract-image-metadata";
      components = [ "time"; "mm"; "block"; "fs"; "net" ];
      kernel = extract_kernel;
    };
    {
      fn_name = "transform-metadata";
      components = [ "time"; "mm" ];
      kernel = transform_kernel;
    };
    { fn_name = "handler"; components = [ "time"; "mm"; "net" ]; kernel = handler_kernel };
    {
      fn_name = "thumbnail";
      components = [ "time"; "mm"; "block"; "fs"; "net" ];
      kernel = thumbnail_kernel;
    };
    {
      fn_name = "store-image-metadata";
      components = [ "time"; "mm"; "net" ];
      kernel = store_kernel;
    };
    {
      fn_name = "online-compiling";
      components = [ "time"; "irq"; "sched"; "locking"; "mm"; "ipc"; "block"; "fs"; "net" ];
      kernel = alu_kernel;
    };
  ]

let find name = List.find (fun e -> String.equal e.fn_name name) table

let image_pipeline ~seed =
  let width = 512 and height = 512 in
  let input = make_image ~seed ~width ~height in
  {
    Fctx.app_name = "image-pipeline";
    stages =
      [
        ("extract-image-metadata", 1, extract_kernel);
        ("thumbnail", 1, thumbnail_kernel);
        ("transform-metadata", 1, transform_kernel);
        ("handler", 1, handler_kernel);
        ("store-image-metadata", 1, store_kernel);
      ];
    inputs = [ (image_input_path, input) ];
    validate =
      (fun ~read_output ->
        match read_output metadata_output_path with
        | None -> Error "no metadata output"
        | Some meta ->
            let text = Bytes.to_string meta in
            let contains_sub s sub =
              let n = String.length s and m = String.length sub in
              let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
              m = 0 || go 0
            in
            if
              not
                (contains_sub text (Printf.sprintf "\"width\": %d" width)
                && contains_sub text "transformed")
            then Error ("unexpected metadata: " ^ text)
            else begin
              match read_output thumbnail_output_path with
              | None -> Error "no thumbnail output"
              | Some thumb ->
                  let w, h = parse_header thumb in
                  if w = width / 2 && h = height / 2 then Ok ()
                  else Error (Printf.sprintf "thumbnail is %dx%d" w h)
            end);
    modules = [ "mm"; "fdtab"; "stdio"; "time"; "fatfs" ];
  }
