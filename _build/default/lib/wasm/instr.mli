(** Instruction set of the simulated WASM-style stack machine.

    A single 64-bit value type keeps the machine small while preserving
    everything the reproduction needs: structured control flow,
    linear-memory loads/stores, locals/globals, intra-module calls and
    host (WASI) calls.  Semantics follow WebAssembly: [Br n] targets the
    n-th enclosing block, [Loop] branches restart the loop body. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div_s  (** Traps on division by zero. *)
  | Rem_s  (** Traps on division by zero. *)
  | And
  | Or
  | Xor
  | Shl
  | Shr_s
  | Eq
  | Ne
  | Lt_s
  | Gt_s
  | Le_s
  | Ge_s

type t =
  | Nop
  | Unreachable  (** Always traps. *)
  | Const of int64
  | Binop of binop
  | Eqz  (** 1 if top is zero, else 0. *)
  | Drop
  | Select  (** [cond :: b :: a] -> if cond<>0 then a else b. *)
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Global_get of int
  | Global_set of int
  | Load8 of int  (** Static offset added to the popped address. *)
  | Load64 of int
  | Store8 of int
  | Store64 of int
  | Memory_size  (** Pages (64 KiB). *)
  | Memory_grow
  | Block of t list
  | Loop of t list
  | If of t list * t list
  | Br of int
  | Br_if of int
  | Return
  | Call of int  (** Function index (imports first, then local funcs). *)

val pp_binop : Format.formatter -> binop -> unit
val pp : Format.formatter -> t -> unit

val count : t list -> int
(** Static instruction count including nested bodies. *)
