open Sim

type mod_def = {
  mod_name : string;
  entries : string list;
  deps : string list;
  init : Wfd.t -> clock:Sim.Clock.t -> unit;
}

let registry =
  [
    {
      mod_name = "mm";
      entries = [ "mmap"; "alloc_buffer"; "acquire_buffer" ];
      deps = [];
      init = Libos_mm.init;
    };
    {
      mod_name = "fdtab";
      entries = [ "open"; "read"; "write"; "close" ];
      (* fd-backed files live in the FAT image; stdio backs /dev/stdout. *)
      deps = [ "fatfs"; "stdio" ];
      init = Libos_fdtab.init;
    };
    {
      mod_name = "fatfs";
      entries = [ "fatfs_open"; "fatfs_read"; "fatfs_write"; "fatfs_delete" ];
      deps = [];
      init = Libos_fatfs.init;
    };
    {
      mod_name = "socket";
      entries = [ "smol_bind"; "smol_connect"; "smol_accept"; "smol_send"; "smol_recv" ];
      deps = [];
      init = Libos_socket.init;
    };
    {
      mod_name = "stdio";
      entries = [ "host_stdout" ];
      deps = [];
      init = Libos_stdio.init;
    };
    {
      mod_name = "time";
      entries = [ "gettimeofday" ];
      deps = [];
      init = Libos_time.init;
    };
    {
      mod_name = "mmap_file_backend";
      entries = [ "register_file_backend" ];
      deps = [ "fatfs"; "mm" ];
      init = Libos_mmap_backend.init;
    };
  ]

let find_module name =
  match List.find_opt (fun m -> String.equal m.mod_name name) registry with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Libos.find_module: unknown module %s" name)

let module_names = List.map (fun m -> m.mod_name) registry

let providing entry =
  match List.find_opt (fun m -> List.mem entry m.entries) registry with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Libos.providing: no module provides %s" entry)

let load_histo = Metrics.histogram "loader.module_load_ns"

let rec load_module (wfd : Wfd.t) ~clock name =
  if not (Wfd.is_loaded wfd name) then begin
    let m = find_module name in
    let t0 = Clock.now clock in
    (* The slow path of the on-demand loading interface: this span
       covers the transitive dependency loads too, so entry-miss time
       attributes to load-slow whichever module actually pulled it in. *)
    let sp =
      Span.begin_span (Span.current ()) ~parent:wfd.Wfd.span ~at:t0 ~category:"load-slow"
        ~label:("load " ^ name) ()
    in
    let saved = wfd.Wfd.span in
    if sp <> Span.none then wfd.Wfd.span <- sp;
    Fun.protect
      ~finally:(fun () ->
        wfd.Wfd.span <- saved;
        Span.end_span (Span.current ()) sp ~at:(Clock.now clock);
        Metrics.observe_time load_histo (Units.sub (Clock.now clock) t0))
      (fun () ->
        List.iter (load_module wfd ~clock) m.deps;
        (* dlmopen the module into the WFD's namespace, then run its
           constructor. *)
        Clock.advance clock Cost.dlmopen_namespace;
        (* A fired loader fault models a transient dlmopen failure: the
           namespace load is discarded and as-visor falls back to repeating
           the slow path for this module. *)
        (match wfd.Wfd.fault with
        | Some plan when Fault.check ~at:(Clock.now clock) plan ~site:Fault.site_loader_load
          ->
            let rsp =
              Span.begin_span (Span.current ()) ~parent:sp ~at:(Clock.now clock)
                ~category:"retry" ~label:("reload " ^ name) ()
            in
            Clock.advance clock Cost.dlmopen_namespace;
            Fault.record_recovery plan ~at:(Clock.now clock) ~site:Fault.site_loader_load
              ("slow-path reload of module " ^ name);
            Span.end_span (Span.current ()) rsp ~at:(Clock.now clock)
        | _ -> ());
        Clock.advance clock (Cost.module_load name);
        m.init wfd ~clock;
        Hashtbl.replace wfd.Wfd.loaded_modules name ();
        List.iter (fun e -> Hashtbl.replace wfd.Wfd.entry_table e name) m.entries;
        Trace.recordf (Trace.current ()) ~at:(Clock.now clock) ~category:"loader"
          ~label:"module-loaded" "wfd%d %s" wfd.Wfd.id name)
  end

let ensure_entry (wfd : Wfd.t) ~clock entry =
  if Hashtbl.mem wfd.Wfd.entry_table entry then begin
    wfd.Wfd.entry_hits <- wfd.Wfd.entry_hits + 1;
    if Span.enabled (Span.current ()) then
      Span.instant (Span.current ()) ~parent:wfd.Wfd.span ~at:(Clock.now clock)
        ~category:"load-fast" ~label:entry ();
    `Fast
  end
  else begin
    wfd.Wfd.entry_misses <- wfd.Wfd.entry_misses + 1;
    Trace.recordf (Trace.current ()) ~at:(Clock.now clock) ~category:"loader"
      ~label:"entry-miss" "wfd%d %s" wfd.Wfd.id entry;
    let m = providing entry in
    load_module wfd ~clock m.mod_name;
    `Slow
  end

let attach_warm (wfd : Wfd.t) ~clock =
  (* A cloned WFD inherits the template's linked namespaces and entry
     table; only the per-WFD module state (fd tables, slot maps, mount
     cursors) must be rebuilt.  The modules' full init cost was paid
     once on the template — the clone charges the small CoW-attach cost
     per module and runs init against a scratch clock. *)
  let sp =
    Span.begin_span (Span.current ()) ~parent:wfd.Wfd.span ~at:(Clock.now clock)
      ~category:"load-fast" ~label:"attach-warm" ()
  in
  let scratch = Clock.create ~at:(Clock.now clock) () in
  List.iter
    (fun m ->
      if Wfd.is_loaded wfd m.mod_name then begin
        Clock.advance clock Cost.warm_module_attach;
        m.init wfd ~clock:scratch;
        Trace.recordf (Trace.current ()) ~at:(Clock.now clock) ~category:"loader"
          ~label:"module-attached" "wfd%d %s (warm)" wfd.Wfd.id m.mod_name
      end)
    registry;
  Span.end_span (Span.current ()) sp ~at:(Clock.now clock)

let load_all (wfd : Wfd.t) ~clock =
  List.iter (fun m -> load_module wfd ~clock m.mod_name) registry;
  Clock.advance clock Cost.load_all_binding

let load_all_cost =
  List.fold_left
    (fun acc m ->
      Units.add acc (Units.add Cost.dlmopen_namespace (Cost.module_load m.mod_name)))
    Cost.load_all_binding registry
