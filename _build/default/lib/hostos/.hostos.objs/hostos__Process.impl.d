lib/hostos/process.ml: Hashtbl List Printf Sim Stdlib Syscall
