(** Latency / value sample collection with percentile queries. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_time : t -> Units.time -> unit
(** Records the duration in nanoseconds. *)

val count : t -> int
val is_empty : t -> bool
val mean : t -> float
val min : t -> float
val max : t -> float
val sum : t -> float
val stddev : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100], linear interpolation between
    closest ranks.  Raises [Invalid_argument] on an empty collection. *)

val p50 : t -> float
val p99 : t -> float

val percentile_time : t -> float -> Units.time
(** Percentile of durations recorded with {!add_time}. *)

val mean_time : t -> Units.time
val clear : t -> unit
val to_list : t -> float list
