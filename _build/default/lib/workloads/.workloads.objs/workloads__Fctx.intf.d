lib/workloads/fctx.mli: Sim
