(** Error codes returned by as-libos interfaces (the [Result<..>] side
    of Table 2). *)

type t =
  | Enoent  (** No such file / slot. *)
  | Eexist  (** Slot or file already exists. *)
  | Ebadf  (** Bad file descriptor. *)
  | Einval  (** Invalid argument (e.g. fingerprint mismatch). *)
  | Enomem  (** Buffer heap exhausted. *)
  | Enotconn  (** Socket not connected. *)
  | Enosys  (** Module not loaded and loading disabled. *)
  | Eio  (** Transient device I/O error (fault injection). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

exception Error of t * string
(** Carried by as-std wrappers that surface errors as exceptions. *)

val fail : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail errno fmt ...] raises {!Error}. *)
