lib/core/libos_mm.ml: Address_space Alloc Clock Cost Errno Ext Hashtbl Hostos Int64 Layout Libos_fdtab Libos_mmap_backend List Mem Page Sim Stdlib Wfd
