test/test_hostos.ml: Alcotest Bytes Cgroup Char Clock Gen Hashtbl Hostos List Pipe Printf Process QCheck QCheck_alcotest Sched Shm Sim Syscall Tap Units
