lib/core/workflow.ml: Buffer Format Hashtbl Jsonlite List Printf Queue Stdlib String
