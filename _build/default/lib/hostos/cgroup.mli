(** cgroup-style CPU bandwidth limiting.

    §9 of the paper: "AlloyStack can also implement resource allocation
    based on user specifications, such as limiting the CPU bandwidth of
    function threads through cgroups."  A quota of [q] CPU (0 < q <= 1)
    stretches on-CPU time by 1/q — the thread runs, is throttled until
    the next period, runs again.  Setup cost models writing the cgroup
    files and attaching the thread. *)

type t

val create : quota:float -> t
(** Raises [Invalid_argument] unless 0 < quota <= 1. *)

val unlimited : t

val quota : t -> float

val setup_cost : Sim.Units.time
(** mkdir + cpu.max write + cgroup.procs attach. *)

val stretch : t -> Sim.Units.time -> Sim.Units.time
(** On-CPU duration -> wall duration under the quota. *)

val throttled_share : t -> float
(** Fraction of wall time spent throttled (1 - quota). *)
