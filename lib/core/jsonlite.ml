type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; message : string }

let fail pos fmt =
  Format.kasprintf (fun message -> raise (Parse_error { pos; message })) fmt

type state = { input : string; mutable pos : int }

let peek s = if s.pos < String.length s.input then Some s.input.[s.pos] else None

let advance s = s.pos <- s.pos + 1

let rec skip_ws s =
  match peek s with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance s;
      skip_ws s
  | Some _ | None -> ()

let expect s c =
  match peek s with
  | Some got when got = c -> advance s
  | Some got -> fail s.pos "expected '%c', found '%c'" c got
  | None -> fail s.pos "expected '%c', found end of input" c

let parse_literal s word value =
  let n = String.length word in
  if s.pos + n <= String.length s.input && String.sub s.input s.pos n = word then begin
    s.pos <- s.pos + n;
    value
  end
  else fail s.pos "invalid literal"

let parse_string_body s =
  expect s '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek s with
    | None -> fail s.pos "unterminated string"
    | Some '"' ->
        advance s;
        Buffer.contents buf
    | Some '\\' -> begin
        advance s;
        match peek s with
        | None -> fail s.pos "unterminated escape"
        | Some c ->
            advance s;
            let decoded =
              match c with
              | '"' -> '"'
              | '\\' -> '\\'
              | '/' -> '/'
              | 'n' -> '\n'
              | 't' -> '\t'
              | 'r' -> '\r'
              | 'b' -> '\b'
              | other -> fail (s.pos - 1) "unsupported escape '\\%c'" other
            in
            Buffer.add_char buf decoded;
            go ()
      end
    | Some c ->
        advance s;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number s =
  let start = s.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec go () =
    match peek s with
    | Some c when is_num_char c ->
        advance s;
        go ()
    | Some _ | None -> ()
  in
  go ();
  let text = String.sub s.input start (s.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> begin
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail start "invalid number %S" text
    end

let rec parse_value s =
  skip_ws s;
  match peek s with
  | None -> fail s.pos "unexpected end of input"
  | Some '{' -> parse_obj s
  | Some '[' -> parse_list s
  | Some '"' -> String (parse_string_body s)
  | Some 't' -> parse_literal s "true" (Bool true)
  | Some 'f' -> parse_literal s "false" (Bool false)
  | Some 'n' -> parse_literal s "null" Null
  | Some ('-' | '0' .. '9') -> parse_number s
  | Some c -> fail s.pos "unexpected character '%c'" c

and parse_obj s =
  expect s '{';
  skip_ws s;
  if peek s = Some '}' then begin
    advance s;
    Obj []
  end
  else begin
    let rec fields acc =
      skip_ws s;
      let key = parse_string_body s in
      skip_ws s;
      expect s ':';
      let value = parse_value s in
      skip_ws s;
      match peek s with
      | Some ',' ->
          advance s;
          fields ((key, value) :: acc)
      | Some '}' ->
          advance s;
          Obj (List.rev ((key, value) :: acc))
      | _ -> fail s.pos "expected ',' or '}' in object"
    in
    fields []
  end

and parse_list s =
  expect s '[';
  skip_ws s;
  if peek s = Some ']' then begin
    advance s;
    List []
  end
  else begin
    let rec items acc =
      let value = parse_value s in
      skip_ws s;
      match peek s with
      | Some ',' ->
          advance s;
          items (value :: acc)
      | Some ']' ->
          advance s;
          List (List.rev (value :: acc))
      | _ -> fail s.pos "expected ',' or ']' in array"
    in
    items []
  end

let parse input =
  let s = { input; pos = 0 } in
  let v = parse_value s in
  skip_ws s;
  (match peek s with
  | Some c -> fail s.pos "trailing content starting with '%c'" c
  | None -> ());
  v

let parse_result input =
  match parse input with
  | v -> Ok v
  | exception Parse_error { pos; message } ->
      Error (Printf.sprintf "at offset %d: %s" pos message)

(* Plain fixed-point decimals.  [%g] switches to exponent notation
   ("1.92776e+06") for large magnitudes — valid JSON but hostile to
   diffs and ad-hoc readers — and rounds to 6 significant digits.
   Instead print the shortest [%.*f] that parses back to the same
   double (always at least one decimal, so floats stay floats through
   a round-trip); magnitudes outside sensible fixed-point range fall
   back to a round-tripping [%.17g], and non-finite values (which JSON
   cannot represent) become [null]. *)
let float_to_string f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else
    let abs = Float.abs f in
    if abs <> 0.0 && (abs >= 1e18 || abs < 1e-9) then Printf.sprintf "%.17g" f
    else
      (* abs >= 1e-9 needs at most 9 leading zeros + 17 significant
         decimals after the point to round-trip. *)
      let rec pick p =
        if p > 26 then Printf.sprintf "%.17g" f
        else
          let s = Printf.sprintf "%.*f" p f in
          if float_of_string s = f then s else pick (p + 1)
      in
      pick 1

(* Render into one growable buffer rather than concatenating per-node
   strings: a deep tree allocates O(output) instead of O(output ×
   depth).  [%S] is ["\"" ^ String.escaped s ^ "\""], spelled out here
   so strings with no escapes append without an intermediate copy —
   the rendered bytes are identical either way. *)
let add_quoted buf s =
  Buffer.add_char buf '"';
  Buffer.add_string buf (String.escaped s);
  Buffer.add_char buf '"'

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> add_quoted buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          add_json buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          add_quoted buf k;
          Buffer.add_string buf ": ";
          add_json buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_json buf v;
  Buffer.contents buf

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> invalid_arg (Printf.sprintf "Jsonlite.member %S: not an object" key)

let get_string = function
  | String s -> s
  | v -> invalid_arg (Printf.sprintf "Jsonlite.get_string: %s" (to_string v))

let get_int = function
  | Int i -> i
  | v -> invalid_arg (Printf.sprintf "Jsonlite.get_int: %s" (to_string v))

let get_bool = function
  | Bool b -> b
  | v -> invalid_arg (Printf.sprintf "Jsonlite.get_bool: %s" (to_string v))

let get_list = function
  | List l -> l
  | v -> invalid_arg (Printf.sprintf "Jsonlite.get_list: %s" (to_string v))

let get_obj = function
  | Obj o -> o
  | v -> invalid_arg (Printf.sprintf "Jsonlite.get_obj: %s" (to_string v))

let member_string ?default key obj =
  match (member key obj, default) with
  | Null, Some d -> d
  | Null, None -> invalid_arg (Printf.sprintf "Jsonlite: missing field %S" key)
  | v, _ -> get_string v

let member_int ?default key obj =
  match (member key obj, default) with
  | Null, Some d -> d
  | Null, None -> invalid_arg (Printf.sprintf "Jsonlite: missing field %S" key)
  | v, _ -> get_int v

let member_bool ?default key obj =
  match (member key obj, default) with
  | Null, Some d -> d
  | Null, None -> invalid_arg (Printf.sprintf "Jsonlite: missing field %S" key)
  | v, _ -> get_bool v

let member_list key obj =
  match member key obj with Null -> [] | v -> get_list v
