(* Tests for the network simulation: TCP state machine and delivery,
   stack profiles, HTTP codec, Redis KV server. *)

open Sim
open Netsim

let connect ?(link = Link.loopback) ?(cp = Tcp.linux) ?(sp = Tcp.linux) () =
  let client = Clock.create () and server = Clock.create () in
  let conn =
    Tcp.connect ~client ~server ~link ~client_profile:cp ~server_profile:sp ()
  in
  (conn, client, server)

let test_tcp_handshake_states () =
  let conn, client, server = connect () in
  (match Tcp.state conn with
  | Tcp.Established, Tcp.Established -> ()
  | _ -> Alcotest.fail "expected both Established");
  (* One RTT-ish elapsed on both clocks. *)
  Alcotest.(check bool) "client time advanced" true
    (Units.( > ) (Clock.now client) Units.zero);
  Alcotest.(check bool) "server time advanced" true
    (Units.( > ) (Clock.now server) Units.zero)

let test_tcp_delivery () =
  let conn, _, _ = connect () in
  let data = Bytes.init 10_000 (fun i -> Char.chr (i mod 256)) in
  Tcp.send conn ~from_client:true data;
  Alcotest.(check int) "available" 10_000 (Tcp.available conn ~at_client:false);
  let got = Tcp.recv conn ~at_client:false 10_000 in
  Alcotest.(check bytes) "delivered exactly" data got;
  (* Reverse direction. *)
  Tcp.send conn ~from_client:false (Bytes.of_string "pong");
  Alcotest.(check bytes) "reverse" (Bytes.of_string "pong")
    (Tcp.recv conn ~at_client:true 10)

let test_tcp_segmentation () =
  let conn, _, _ = connect () in
  Tcp.send conn ~from_client:true (Bytes.make 14_600 'a');
  (* 14600 / 1460 = exactly 10 segments. *)
  Alcotest.(check int) "segment count" 10 (Tcp.segments_sent conn)

let test_tcp_close_states () =
  let conn, _, _ = connect () in
  Tcp.close conn;
  (match Tcp.state conn with
  | Tcp.Time_wait, Tcp.Closed -> ()
  | _ -> Alcotest.fail "expected TIME_WAIT/CLOSED");
  match Tcp.send conn ~from_client:true (Bytes.of_string "x") with
  | () -> Alcotest.fail "send after close must fail"
  | exception Invalid_argument _ -> ()

let test_tcp_smoltcp_slower () =
  (* Same payload: smoltcp endpoints take longer than Linux endpoints. *)
  let payload = Bytes.make (Units.mib 4) 'b' in
  let measure cp sp =
    let conn, client, _ = connect ~cp ~sp () in
    let t0 = Clock.now client in
    Tcp.send conn ~from_client:true payload;
    ignore (Tcp.recv conn ~at_client:false (Bytes.length payload));
    Clock.elapsed_since client t0
  in
  let linux_time = measure Tcp.linux Tcp.linux in
  let smol_time = measure Tcp.smoltcp Tcp.smoltcp in
  Alcotest.(check bool) "smoltcp slower" true (Units.( > ) smol_time linux_time)

let test_tcp_throughput_estimates () =
  (* Table 4 calibration: smoltcp RX ~1.75 Gbit/s, TX ~5.37 Gbit/s,
     Linux ~28 Gbit/s. *)
  let gbit b = b *. 8.0 /. 1e9 in
  let rx = gbit (Tcp.throughput_estimate Tcp.linux ~link:Link.loopback ~rx:Tcp.smoltcp) in
  Alcotest.(check bool) "smoltcp RX ~1.75" true (rx > 1.55 && rx < 1.95);
  let tx = gbit (Tcp.throughput_estimate Tcp.smoltcp ~link:Link.loopback ~rx:Tcp.linux) in
  Alcotest.(check bool) "smoltcp TX ~5.37" true (tx > 5.0 && tx < 5.8);
  let lin = gbit (Tcp.throughput_estimate Tcp.linux ~link:Link.loopback ~rx:Tcp.linux) in
  Alcotest.(check bool) "linux ~28" true (lin > 25.0 && lin < 31.0)

let tcp_delivery_property =
  QCheck.Test.make ~name:"tcp: byte stream preserved across random sends" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 8) (string_of_size (Gen.int_range 0 5000)))
    (fun chunks ->
      let conn, _, _ = connect () in
      List.iter (fun c -> Tcp.send conn ~from_client:true (Bytes.of_string c)) chunks;
      let total = List.fold_left (fun a c -> a + String.length c) 0 chunks in
      let got = Tcp.recv conn ~at_client:false total in
      Bytes.to_string got = String.concat "" chunks)

let tcp_time_monotonic_property =
  QCheck.Test.make ~name:"tcp: transfers only move clocks forward, larger takes longer"
    ~count:60
    QCheck.(pair (int_range 1 200_000) (int_range 1 200_000))
    (fun (a, b) ->
      let measure size =
        let conn, client, server = connect () in
        let before_c = Clock.now client and before_s = Clock.now server in
        Tcp.send conn ~from_client:true (Bytes.make size 'x');
        ignore (Tcp.recv conn ~at_client:false size);
        Units.( >= ) (Clock.now client) before_c
        && Units.( > ) (Clock.now server) before_s
      in
      measure a && measure b)

let test_http_request_roundtrip () =
  let req =
    Http.request ~headers:[ ("Host", "wfd0"); ("X-Trace", "abc") ] ~body:"{\"k\":1}"
      ~meth:"POST" ~path:"/wf/pipeline" ()
  in
  match Http.decode_request (Http.encode_request req) with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
      Alcotest.(check string) "meth" "POST" decoded.Http.meth;
      Alcotest.(check string) "path" "/wf/pipeline" decoded.Http.path;
      Alcotest.(check string) "body" "{\"k\":1}" decoded.Http.body;
      Alcotest.(check (option string)) "header case-insensitive" (Some "wfd0")
        (Http.header decoded.Http.headers "host");
      Alcotest.(check (option string)) "content-length added" (Some "7")
        (Http.header decoded.Http.headers "content-length")

let test_http_response_roundtrip () =
  let resp = Http.ok ~headers:[ ("Content-Type", "text/plain") ] "hello" in
  match Http.decode_response (Http.encode_response resp) with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
      Alcotest.(check int) "status" 200 decoded.Http.status;
      Alcotest.(check string) "reason" "OK" decoded.Http.reason;
      Alcotest.(check string) "body" "hello" decoded.Http.resp_body

let test_http_malformed () =
  (match Http.decode_request "garbage" with
  | Ok _ -> Alcotest.fail "garbage must not parse"
  | Error _ -> ());
  match Http.decode_response "HTTP/1.1 abc\r\n\r\n" with
  | Ok _ -> Alcotest.fail "bad status must not parse"
  | Error _ -> ()

let test_redis_set_get () =
  let server = Redis.create () in
  let clock = Clock.create () in
  let client = Redis.connect server clock in
  let value = Bytes.of_string "intermediate data" in
  Redis.set client "slot1" value;
  Alcotest.(check int) "stored" 1 (Redis.stored_keys server);
  (match Redis.get client "slot1" with
  | Some got -> Alcotest.(check bytes) "roundtrip" value got
  | None -> Alcotest.fail "missing key");
  Alcotest.(check (option bytes)) "unknown key" None (Redis.get client "nope");
  Alcotest.(check bool) "del" true (Redis.del client "slot1");
  Alcotest.(check bool) "del again" false (Redis.del client "slot1")

let test_redis_costs_time () =
  let server = Redis.create () in
  let clock = Clock.create () in
  let client = Redis.connect server clock in
  let after_connect = Clock.now clock in
  Alcotest.(check bool) "connect costs" true (Units.( > ) after_connect Units.zero);
  Redis.set client "k" (Bytes.make (Units.mib 1) 'x');
  let after_set = Clock.now clock in
  (* 1MB over the datacenter link + serialisation: at least 300us. *)
  Alcotest.(check bool) "set charges realistic time" true
    (Units.( > ) (Units.sub after_set after_connect) (Units.us 300));
  ignore (Redis.get client "k");
  Alcotest.(check bool) "get charges too" true
    (Units.( > ) (Units.sub (Clock.now clock) after_set) (Units.us 300))

let test_redis_resp_encoding () =
  Alcotest.(check string) "set wire format"
    "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nhi\r\n"
    (Redis.encode_set "k" (Bytes.of_string "hi"));
  Alcotest.(check string) "get wire format" "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"
    (Redis.encode_get "k")

let redis_roundtrip_property =
  QCheck.Test.make ~name:"redis: arbitrary payload roundtrips" ~count:60
    QCheck.(string_of_size (Gen.int_range 0 10_000))
    (fun s ->
      let server = Redis.create () in
      let client = Redis.connect server (Clock.create ()) in
      Redis.set client "k" (Bytes.of_string s);
      match Redis.get client "k" with
      | Some got -> Bytes.to_string got = s
      | None -> false)

let suite =
  [
    Alcotest.test_case "tcp handshake states" `Quick test_tcp_handshake_states;
    Alcotest.test_case "tcp delivery" `Quick test_tcp_delivery;
    Alcotest.test_case "tcp segmentation" `Quick test_tcp_segmentation;
    Alcotest.test_case "tcp close states" `Quick test_tcp_close_states;
    Alcotest.test_case "tcp smoltcp slower than linux" `Quick test_tcp_smoltcp_slower;
    Alcotest.test_case "tcp Table-4 throughputs" `Quick test_tcp_throughput_estimates;
    QCheck_alcotest.to_alcotest tcp_delivery_property;
    QCheck_alcotest.to_alcotest tcp_time_monotonic_property;
    Alcotest.test_case "http request roundtrip" `Quick test_http_request_roundtrip;
    Alcotest.test_case "http response roundtrip" `Quick test_http_response_roundtrip;
    Alcotest.test_case "http malformed" `Quick test_http_malformed;
    Alcotest.test_case "redis set/get/del" `Quick test_redis_set_get;
    Alcotest.test_case "redis virtual-time costs" `Quick test_redis_costs_time;
    Alcotest.test_case "redis RESP encoding" `Quick test_redis_resp_encoding;
    QCheck_alcotest.to_alcotest redis_roundtrip_property;
  ]
