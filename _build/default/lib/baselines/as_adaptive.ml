open Sim

(* Direct ship: serialisation both ends + the wire. *)
let network_cost len = As_multinode.bridge_cost len

(* Staging through shared storage (an S3/Redis-class service): two
   crossings of the datacenter link plus per-object request latency.
   Fixed request overhead dominates small payloads; double wire time
   dominates large ones. *)
let storage_cost len =
  Units.add (Units.ms 2)
    (Units.add
       (Units.scale (Netsim.Link.wire_time Netsim.Link.datacenter len) 2.0)
       (Units.scale (Netsim.Redis.serialization_cost len) 2.0))

let pick len =
  if Units.( <= ) (network_cost len) (storage_cost len) then `Network else `Storage

let adaptive_bridge len =
  match pick len with `Network -> network_cost len | `Storage -> storage_cost len

let make ~nodes =
  As_multinode.make ~bridge:adaptive_bridge
    ~label:(Printf.sprintf "AlloyStack-%dnode-adaptive" nodes)
    ~nodes ()
