examples/http_gateway.mli:
