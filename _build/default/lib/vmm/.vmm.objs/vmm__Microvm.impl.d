lib/vmm/microvm.ml: Hostos Sandbox Sim Units
