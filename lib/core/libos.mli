(** as-libos module registry and on-demand loader (§4, Fig. 7).

    A WFD starts with {e no} as-libos modules instantiated.  When a
    user function calls an as-std API whose entry is not yet in the
    WFD's entry table (an {e entry miss}), as-std asks as-visor's
    module loader to instantiate the providing module — the {e slow
    path}: a dlmopen-style namespace load plus module init, plus the
    same for any not-yet-loaded dependencies.  The entry address is
    then recorded, and subsequent calls from any function of the WFD
    take the {e fast path}. *)

type mod_def = {
  mod_name : string;
  entries : string list;  (** as-std entry names this module provides. *)
  deps : string list;  (** Modules that must be loaded first. *)
  init : Wfd.t -> clock:Sim.Clock.t -> unit;
}

val registry : mod_def list
(** All seven modules of Table 2: mm, fdtab, fatfs, socket, stdio,
    time, mmap_file_backend. *)

val find_module : string -> mod_def
(** Raises [Invalid_argument] for an unknown module. *)

val module_names : string list

val providing : string -> mod_def
(** Module providing an entry name.  Raises [Invalid_argument]. *)

val load_module : Wfd.t -> clock:Sim.Clock.t -> string -> unit
(** Slow path for one module (and its dependencies): charges
    dlmopen + per-module load cost, runs init, binds entries.
    Idempotent — already-loaded modules cost nothing. *)

val attach_warm : Wfd.t -> clock:Sim.Clock.t -> unit
(** Rebuild the per-WFD state of every module a cloned WFD inherited
    from its warm template (registry order, so dependencies init
    first), charging {!Cost.warm_module_attach} per module instead of
    the dlmopen + load slow path.  Used by the warm-pool serving
    layer. *)

val ensure_entry : Wfd.t -> clock:Sim.Clock.t -> string -> [ `Fast | `Slow ]
(** The check every as-std call performs: fast path when the entry is
    bound, slow path (module load via as-visor) otherwise.  Updates the
    WFD's hit/miss counters. *)

val load_all : Wfd.t -> clock:Sim.Clock.t -> unit
(** Disable on-demand loading: instantiate every module up front plus
    the full entry-table binding (the "AS-load-all" configuration of
    Fig. 10). *)

val load_all_cost : Sim.Units.time
(** Static total of {!load_all} on an empty WFD (the paper's 88.1 ms). *)
