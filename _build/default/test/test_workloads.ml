(* Tests for the benchmark workloads: data generators, kernels,
   validation plumbing. *)

open Workloads

let test_datagen_determinism () =
  Alcotest.(check bytes) "payload deterministic" (Datagen.payload ~seed:5 1000)
    (Datagen.payload ~seed:5 1000);
  Alcotest.(check bool) "seed matters" true
    (Datagen.payload ~seed:5 1000 <> Datagen.payload ~seed:6 1000);
  Alcotest.(check bytes) "text deterministic" (Datagen.words_text ~seed:5 1000)
    (Datagen.words_text ~seed:5 1000)

let test_datagen_text_shape () =
  let text = Bytes.to_string (Datagen.words_text ~seed:1 5000) in
  Alcotest.(check int) "exact size" 5000 (String.length text);
  Alcotest.(check bool) "contains separators" true (String.contains text ' ');
  (* Tokens look like the vocabulary. *)
  Alcotest.(check bool) "vocabulary tokens" true
    (String.length text > 0 && text.[0] = 'w')

let test_datagen_records () =
  let data = Datagen.int32_records ~seed:2 ~count:100 in
  Alcotest.(check int) "record count" 100 (Datagen.record_count data);
  Datagen.set_record data 3 42l;
  Alcotest.(check int32) "get/set" 42l (Datagen.get_record data 3)

(* --- wordcount internals --- *)

let test_count_words () =
  let counts = Wordcount.count_words (Bytes.of_string "a b a\nc  a b") in
  Alcotest.(check int) "a" 3 (Hashtbl.find counts "a");
  Alcotest.(check int) "b" 2 (Hashtbl.find counts "b");
  Alcotest.(check int) "c" 1 (Hashtbl.find counts "c");
  Alcotest.(check int) "distinct" 3 (Hashtbl.length counts)

let test_counts_codec () =
  let pairs = [ ("alpha", 3); ("beta", 14) ] in
  Alcotest.(check (list (pair string int))) "roundtrip" pairs
    (Wordcount.decode_counts (Wordcount.encode_counts pairs));
  Alcotest.(check (list (pair string int))) "empty" []
    (Wordcount.decode_counts Bytes.empty)

let test_expected_counts_total () =
  (* Total word count equals the number of separators + 1-ish; check
     conservation: sum of counts equals the token count. *)
  let size = 20_000 in
  let text = Datagen.words_text ~seed:9 size in
  let expected = Wordcount.expected_counts ~seed:9 ~size in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 expected in
  let by_direct = Hashtbl.fold (fun _ c acc -> acc + c) (Wordcount.count_words text) 0 in
  Alcotest.(check int) "conserved" by_direct total

(* --- parallel sorting internals --- *)

let test_sort_records () =
  let data = Datagen.int32_records ~seed:3 ~count:10_000 in
  let sorted = Parallel_sorting.sort_records data in
  Alcotest.(check bool) "sorted" true (Parallel_sorting.is_sorted sorted);
  Alcotest.(check int) "same length" (Bytes.length data) (Bytes.length sorted);
  (* Same multiset: compare against a reference sort. *)
  let to_list b = List.init (Datagen.record_count b) (Datagen.get_record b) in
  let ref_sorted =
    List.sort
      (fun a b ->
        compare (Int32.to_int a land 0xFFFFFFFF) (Int32.to_int b land 0xFFFFFFFF))
      (to_list data)
  in
  Alcotest.(check bool) "permutation" true (to_list sorted = ref_sorted)

let test_sort_edge_cases () =
  Alcotest.(check bytes) "empty" Bytes.empty (Parallel_sorting.sort_records Bytes.empty);
  let one = Datagen.int32_records ~seed:1 ~count:1 in
  Alcotest.(check bytes) "singleton" one (Parallel_sorting.sort_records one);
  Alcotest.(check bool) "unsigned order" true
    (Parallel_sorting.is_sorted
       (let b = Bytes.create 8 in
        Bytes.set_int32_le b 0 1l;
        Bytes.set_int32_le b 4 (-1l) (* 0xFFFFFFFF sorts last unsigned *);
        b))

let test_bucket_partitioning () =
  (* Buckets are ordered: every value in bucket i is below every value
     in bucket i+1. *)
  let buckets = 4 in
  for _ = 1 to 100 do
    ()
  done;
  let boundary_ok a b =
    Parallel_sorting.bucket_of a ~buckets <= Parallel_sorting.bucket_of b ~buckets
  in
  Alcotest.(check bool) "ordering respected" true
    (boundary_ok 0l 100l && boundary_ok 100l 1000000l);
  Alcotest.(check int) "min bucket" 0 (Parallel_sorting.bucket_of 0l ~buckets);
  Alcotest.(check bool) "max bucket" true
    (Parallel_sorting.bucket_of (-1l) ~buckets = buckets - 1)

let sort_property =
  QCheck.Test.make ~name:"sort_records sorts any input" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 500) int)
    (fun xs ->
      let b = Bytes.create (4 * List.length xs) in
      List.iteri (fun i x -> Bytes.set_int32_le b (4 * i) (Int32.of_int x)) xs;
      Parallel_sorting.is_sorted (Parallel_sorting.sort_records b))

(* --- function chain --- *)

let test_checksum_sensitivity () =
  let a = Bytes.of_string "aaaaaaaaaaaaaaaa" in
  let b = Bytes.of_string "aaaaaaaaaaaaaaab" in
  Alcotest.(check bool) "differs on content" true
    (Function_chain.checksum a <> Function_chain.checksum b);
  Alcotest.(check int64) "deterministic" (Function_chain.checksum a)
    (Function_chain.checksum a);
  (* Tail bytes beyond the 8-byte stride count too. *)
  let c = Bytes.of_string "aaaaaaaaaX" in
  let d = Bytes.of_string "aaaaaaaaaY" in
  Alcotest.(check bool) "tail matters" true
    (Function_chain.checksum c <> Function_chain.checksum d)

let test_chain_app_shape () =
  let app = Function_chain.app ~seed:1 ~payload:1000 ~length:5 in
  Alcotest.(check int) "stages" 5 (List.length app.Fctx.stages);
  Alcotest.(check (list (pair string string))) "no inputs" []
    (List.map (fun (a, b) -> (a, Bytes.to_string b)) app.Fctx.inputs);
  match Function_chain.app ~seed:1 ~payload:10 ~length:1 with
  | _ -> Alcotest.fail "length 1 invalid"
  | exception Invalid_argument _ -> ()

(* --- apps run end to end on a direct in-memory harness --- *)

let run_direct (app : Fctx.app) =
  (* Minimal platform: everything free and in-memory; validates that
     kernels compose correctly independent of any platform model. *)
  let store = Hashtbl.create 16 in
  let files = Hashtbl.create 16 in
  List.iter (fun (p, d) -> Hashtbl.replace files p d) app.Fctx.inputs;
  let make_fctx instance total =
    {
      Fctx.instance;
      total;
      read_input = (fun p -> Hashtbl.find files p);
      write_output = (fun p d -> Hashtbl.replace files p d);
      send = (fun ~slot d -> Hashtbl.replace store slot (Bytes.copy d));
      recv =
        (fun ~slot ->
          match Hashtbl.find_opt store slot with
          | Some d ->
              Hashtbl.remove store slot;
              d
          | None -> raise Not_found);
      println = (fun _ -> ());
      compute = (fun _ -> ());
      phase = (fun _ f -> f ());
    }
  in
  List.iter
    (fun (_, instances, kernel) ->
      for i = 0 to instances - 1 do
        kernel (make_fctx i instances)
      done)
    app.Fctx.stages;
  app.Fctx.validate ~read_output:(fun p -> Hashtbl.find_opt files p)

let check_direct name app =
  match run_direct app with
  | Ok () -> ()
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let test_wordcount_app_direct () =
  check_direct "wordcount" (Wordcount.app ~seed:7 ~size:50_000 ~instances:3)

let test_wordcount_single_instance () =
  check_direct "wordcount x1" (Wordcount.app ~seed:8 ~size:10_000 ~instances:1)

let test_sorting_app_direct () =
  check_direct "sorting" (Parallel_sorting.app ~seed:7 ~size:100_000 ~instances:4)

let test_chain_app_direct () =
  check_direct "chain" (Function_chain.app ~seed:7 ~payload:10_000 ~length:6)

let test_pipe_app_direct () = check_direct "pipe" (Pipe_app.app ~seed:7 ~size:50_000)

let test_image_pipeline_direct () =
  check_direct "image" (Image_meta.image_pipeline ~seed:7)

let test_wordcount_validation_catches_corruption () =
  let app = Wordcount.app ~seed:7 ~size:10_000 ~instances:2 in
  (* Corrupt the output after the run by dropping a word. *)
  let result =
    match run_direct app with
    | Ok () ->
        app.Fctx.validate ~read_output:(fun _ ->
            Some (Wordcount.encode_counts [ ("only", 1) ]))
    | Error e -> Error e
  in
  match result with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "validation must catch wrong output"

let test_compile_app_direct () =
  check_direct "online-compiling" (Compile_app.app ~n:1000 ~seed:1 ())

let test_compile_app_on_alloystack () =
  let m = (Baselines.As_platform.alloystack).Baselines.Platform.run (Compile_app.app ~n:500 ~seed:1 ()) in
  match m.Baselines.Platform.validated with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_table1_inventory () =
  Alcotest.(check int) "nine functions" 9 (List.length Image_meta.table);
  let e = Image_meta.find "store-image-metadata" in
  Alcotest.(check (list string)) "paper components" [ "time"; "mm"; "net" ]
    e.Image_meta.components;
  let oc = Image_meta.find "online-compiling" in
  Alcotest.(check int) "most demanding" 9 (List.length oc.Image_meta.components);
  match Image_meta.find "nope" with
  | _ -> Alcotest.fail "unknown function"
  | exception Not_found -> ()

let suite =
  [
    Alcotest.test_case "datagen determinism" `Quick test_datagen_determinism;
    Alcotest.test_case "datagen text shape" `Quick test_datagen_text_shape;
    Alcotest.test_case "datagen records" `Quick test_datagen_records;
    Alcotest.test_case "count_words" `Quick test_count_words;
    Alcotest.test_case "counts codec" `Quick test_counts_codec;
    Alcotest.test_case "expected counts conserved" `Quick test_expected_counts_total;
    Alcotest.test_case "sort_records" `Quick test_sort_records;
    Alcotest.test_case "sort edge cases" `Quick test_sort_edge_cases;
    Alcotest.test_case "bucket partitioning" `Quick test_bucket_partitioning;
    QCheck_alcotest.to_alcotest sort_property;
    Alcotest.test_case "checksum sensitivity" `Quick test_checksum_sensitivity;
    Alcotest.test_case "chain app shape" `Quick test_chain_app_shape;
    Alcotest.test_case "wordcount direct" `Quick test_wordcount_app_direct;
    Alcotest.test_case "wordcount single instance" `Quick test_wordcount_single_instance;
    Alcotest.test_case "sorting direct" `Quick test_sorting_app_direct;
    Alcotest.test_case "chain direct" `Quick test_chain_app_direct;
    Alcotest.test_case "pipe direct" `Quick test_pipe_app_direct;
    Alcotest.test_case "image pipeline direct" `Quick test_image_pipeline_direct;
    Alcotest.test_case "validation catches corruption" `Quick test_wordcount_validation_catches_corruption;
    Alcotest.test_case "online-compiling direct" `Quick test_compile_app_direct;
    Alcotest.test_case "online-compiling on AS" `Quick test_compile_app_on_alloystack;
    Alcotest.test_case "Table 1 inventory" `Quick test_table1_inventory;
  ]
