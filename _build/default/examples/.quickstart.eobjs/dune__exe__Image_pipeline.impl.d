examples/image_pipeline.ml: Baselines Fctx Format Fsim Image_meta List Sim String Workloads
