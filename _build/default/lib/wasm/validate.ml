type error = { func : string option; message : string }

let pp_error fmt e =
  match e.func with
  | Some f -> Format.fprintf fmt "in %s: %s" f e.message
  | None -> Format.fprintf fmt "%s" e.message

let validate m =
  let errors = ref [] in
  let err ?func fmt =
    Format.kasprintf (fun message -> errors := { func; message } :: !errors) fmt
  in
  let n_funcs = Wmodule.func_count m in
  let n_globals = List.length m.Wmodule.globals in
  (* Per-function body check. *)
  let check_func (f : Wmodule.func) =
    let n_locals = f.params + f.locals in
    let rec walk depth instrs =
      List.iter (check_instr depth) instrs
    and check_instr depth = function
      | Instr.Local_get i | Instr.Local_set i | Instr.Local_tee i ->
          if i < 0 || i >= n_locals then
            err ~func:f.fname "local index %d out of range (have %d)" i n_locals
      | Instr.Global_get i | Instr.Global_set i ->
          if i < 0 || i >= n_globals then
            err ~func:f.fname "global index %d out of range (have %d)" i n_globals
      | Instr.Call i ->
          if i < 0 || i >= n_funcs then
            err ~func:f.fname "call target %d out of range (have %d)" i n_funcs
      | Instr.Br n | Instr.Br_if n ->
          if n < 0 || n >= depth then
            err ~func:f.fname "branch depth %d exceeds nesting %d" n depth
      | Instr.Block body | Instr.Loop body -> walk (depth + 1) body
      | Instr.If (a, b) ->
          walk (depth + 1) a;
          walk (depth + 1) b
      | Instr.Load8 o | Instr.Load64 o | Instr.Store8 o | Instr.Store64 o ->
          if o < 0 then err ~func:f.fname "negative memory offset %d" o
      | Instr.Nop | Instr.Unreachable | Instr.Const _ | Instr.Binop _ | Instr.Eqz
      | Instr.Drop | Instr.Select | Instr.Memory_size | Instr.Memory_grow
      | Instr.Return ->
          ()
    in
    if f.params < 0 || f.locals < 0 then
      err ~func:f.fname "negative params/locals";
    walk 0 f.body
  in
  List.iter check_func m.Wmodule.funcs;
  (* Exports. *)
  List.iter
    (fun (name, idx) ->
      if idx < 0 || idx >= n_funcs then err "export %s targets bad index %d" name idx)
    m.Wmodule.exports;
  (* Data initialisers must fit. *)
  let mem_bytes = m.Wmodule.memory_pages * Wmodule.page_size in
  List.iter
    (fun (off, bytes) ->
      if off < 0 || off + String.length bytes > mem_bytes then
        err "data initialiser at %d (+%d) exceeds memory of %d bytes" off
          (String.length bytes) mem_bytes)
    m.Wmodule.data;
  if m.Wmodule.memory_pages < 0 then err "negative memory size";
  match List.rev !errors with [] -> Ok () | es -> Error es

let validate_exn m =
  match validate m with
  | Ok () -> ()
  | Error (e :: _) -> invalid_arg (Format.asprintf "Wasm.Validate: %a" pp_error e)
  | Error [] -> assert false
