lib/core/asbuffer.mli: Asstd Fndata Libos_mm
