lib/mem/prot.ml: Format Fun Int32 List
