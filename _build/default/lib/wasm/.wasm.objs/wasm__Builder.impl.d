lib/wasm/builder.ml: Instr Int64 Wmodule
