lib/baselines/singlefn.mli: Sim
