(** Text format for modules (a WAT-style s-expression dialect).

    Useful for debugging, golden tests and writing small modules by
    hand without the {!Builder} combinators:

    {v
    (module "sum_to_n"
      (memory 1)
      (export "sum" 0)
      (func "sum" (param 1) (local 2)
        (block (loop ...))
        (local.get 2)))
    v}

    [parse] accepts everything [print] emits (round-trip identity), plus
    arbitrary whitespace and line comments starting with [;;]. *)

val print : Wmodule.t -> string

exception Parse_error of { line : int; message : string }

val parse : string -> Wmodule.t
(** Raises {!Parse_error}. *)

val parse_result : string -> (Wmodule.t, string) result
