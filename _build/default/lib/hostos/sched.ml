open Sim

type placement = { core : int; start : Units.time; finish : Units.time }

let schedule ~cores ?(ready = Units.zero) ?(dispatch_latency = Units.zero) durations =
  if cores <= 0 then invalid_arg "Sched.schedule: cores must be positive";
  let free_at = Array.make cores ready in
  let dispatch_clock = ref ready in
  let place d =
    (* The orchestrator dispatches tasks one after another. *)
    dispatch_clock := Units.add !dispatch_clock dispatch_latency;
    let core = ref 0 in
    for c = 1 to cores - 1 do
      if Units.( < ) free_at.(c) free_at.(!core) then core := c
    done;
    let start = Units.max free_at.(!core) !dispatch_clock in
    let finish = Units.add start d in
    free_at.(!core) <- finish;
    { core = !core; start; finish }
  in
  List.map place durations

let makespan placements =
  List.fold_left (fun acc p -> Units.max acc p.finish) Units.zero placements

let fan_in_wait placements =
  let m = makespan placements in
  List.map (fun p -> Units.sub m p.finish) placements

let same_core_pairs placements =
  let arr = Array.of_list placements in
  let pairs = ref [] in
  for i = 0 to Array.length arr - 2 do
    if arr.(i).core = arr.(i + 1).core then pairs := (i, i + 1) :: !pairs
  done;
  List.rev !pairs
