open Sim

type ctx = {
  wfd : Wfd.t;
  thread : Wfd.thread;
  language : Workflow.language;
  buffer_bw : float;
  compute_factor : float;
  phases : (string, Units.time) Hashtbl.t;
  code_cache : Wasm.Compile_cache.t option;
}

let make_ctx ?code_cache wfd thread language =
  let buffer_bw =
    match language with
    | Workflow.Rust -> Cost.buffer_copy_bw_rust
    | Workflow.C -> Cost.buffer_copy_bw_c
    | Workflow.Python -> Cost.buffer_copy_bw_python
  in
  {
    wfd;
    thread;
    language;
    buffer_bw;
    compute_factor = 1.0;
    phases = Hashtbl.create 4;
    code_cache;
  }

let load_wasm ctx profile m =
  Wasm.Runtime.load ?cache:ctx.code_cache ?fault:ctx.wfd.Wfd.fault profile
    ~clock:ctx.thread.Wfd.clock m

(* CPython interpretation costs ~22x native on this class of workloads;
   compiled C through WASM costs the runtime's slowdown alone. *)
let python_interp_factor = 22.0

let with_runtime ctx profile =
  let slowdown = Wasm.Runtime.slowdown_vs_native profile in
  let compute_factor =
    match ctx.language with
    | Workflow.Rust -> 1.0
    | Workflow.C -> slowdown
    | Workflow.Python -> python_interp_factor *. slowdown
  in
  { ctx with compute_factor }

(* Run [f] under a fresh span on the calling thread's clock.  The span
   becomes the WFD's current trace context (so loader / buffer spans
   opened inside nest under it) and the ambient parent (so the TCP
   stack, which cannot see the WFD, attaches its bursts here too).
   One branch when tracing is off. *)
let with_span ctx ~category ~label f =
  let g = (Span.current ()) in
  if not (Span.enabled g) then f ()
  else begin
    let clock = ctx.thread.Wfd.clock in
    let wfd = ctx.wfd in
    let sp =
      Span.begin_span g ~parent:wfd.Wfd.span ~at:(Clock.now clock) ~category ~label ()
    in
    let saved = wfd.Wfd.span in
    let saved_amb = Span.ambient g in
    wfd.Wfd.span <- sp;
    Span.set_ambient g sp;
    Fun.protect
      ~finally:(fun () ->
        wfd.Wfd.span <- saved;
        Span.set_ambient g saved_amb;
        Span.end_span g sp ~at:(Clock.now clock))
      f
  end

(* Socket entries spend their time in the network substrate; everything
   else through as-std is I/O against the libos. *)
let entry_category entry =
  if String.length entry >= 5 && String.equal (String.sub entry 0 5) "smol_" then "network"
  else "io"

let sys ctx entry f =
  let clock = ctx.thread.Wfd.clock in
  with_span ctx ~category:(entry_category entry) ~label:entry (fun () ->
      (* Entry miss -> the on-demand loading interface of as-visor (§4);
         this happens before the trampoline since the check lives in the
         user-linked as-std stub, but the load itself runs in the system
         partition.  Model both on the calling thread's clock. *)
      (match Libos.ensure_entry ctx.wfd ~clock entry with `Fast | `Slow -> ());
      Trampoline.enter_system ctx.wfd ctx.thread (fun () -> f ~clock))

let lift = function Ok v -> v | Error e -> raise (Errno.Error (e, ""))

let open_file ctx ?(create = false) path =
  sys ctx "open" (fun ~clock -> lift (Libos_fdtab.openf ctx.wfd ~clock ~path ~create))

let read_fd ctx ~fd ~len =
  sys ctx "read" (fun ~clock -> lift (Libos_fdtab.read ctx.wfd ~clock ~fd ~len))

let write_fd ctx ~fd data =
  sys ctx "write" (fun ~clock -> lift (Libos_fdtab.write ctx.wfd ~clock ~fd data))

let close_fd ctx ~fd =
  sys ctx "close" (fun ~clock -> lift (Libos_fdtab.close ctx.wfd ~clock ~fd))

let read_whole_file ctx path =
  sys ctx "fatfs_read" (fun ~clock -> lift (Libos_fatfs.fatfs_read ctx.wfd ~clock path))

let write_whole_file ctx path data =
  sys ctx "fatfs_write" (fun ~clock ->
      ignore (lift (Libos_fatfs.fatfs_write ctx.wfd ~clock path data)))

let file_exists ctx path =
  sys ctx "fatfs_read" (fun ~clock ->
      ignore clock;
      Libos_fatfs.fatfs_exists ctx.wfd path)

let println ctx line =
  let data = Bytes.of_string (line ^ "\n") in
  sys ctx "host_stdout" (fun ~clock ->
      ignore (Libos_stdio.host_stdout ctx.wfd ~clock data))

let now_ns ctx =
  sys ctx "gettimeofday" (fun ~clock -> Libos_time.gettimeofday ctx.wfd ~clock)

let tcp_connect ctx ~ip ~port =
  sys ctx "smol_connect" (fun ~clock ->
      lift (Libos_socket.smol_connect ctx.wfd ~clock ~ip ~port))

let tcp_connect_fd ctx ~ip ~port =
  let conn = tcp_connect ctx ~ip ~port in
  sys ctx "open" (fun ~clock ->
      Libos_fdtab.register_socket ctx.wfd ~clock ~conn ~at_client:true)

let tcp_bind ctx ~port =
  sys ctx "smol_bind" (fun ~clock -> lift (Libos_socket.smol_bind ctx.wfd ~clock ~port))

let compute ctx native =
  let clock = ctx.thread.Wfd.clock in
  if Span.enabled (Span.current ()) then begin
    let sp =
      Span.begin_span (Span.current ()) ~parent:ctx.wfd.Wfd.span ~at:(Clock.now clock)
        ~category:"compute" ~label:"compute" ()
    in
    Clock.advance clock (Units.scale native ctx.compute_factor);
    Span.end_span (Span.current ()) sp ~at:(Clock.now clock)
  end
  else Clock.advance clock (Units.scale native ctx.compute_factor)

let compute_bytes ctx ~per_byte_ns n =
  compute ctx (Units.ns_f (per_byte_ns *. float_of_int n))

let in_phase ctx name f =
  let start = Clock.now ctx.thread.Wfd.clock in
  let finish () =
    let spent = Clock.elapsed_since ctx.thread.Wfd.clock start in
    let prev =
      match Hashtbl.find_opt ctx.phases name with Some t -> t | None -> Units.zero
    in
    Hashtbl.replace ctx.phases name (Units.add prev spent)
  in
  match f () with
  | result ->
      finish ();
      result
  | exception e ->
      finish ();
      raise e

let phase_time ctx name =
  match Hashtbl.find_opt ctx.phases name with Some t -> t | None -> Units.zero
