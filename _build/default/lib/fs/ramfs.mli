(** In-memory filesystem (ramfs).  Used by the Fig. 16 experiment to
    remove disk-format differences: transfers run at memory bandwidth
    with negligible metadata cost. *)

type t

val create : unit -> t
val write_file : t -> ?clock:Sim.Clock.t -> string -> bytes -> unit
val read_file : t -> ?clock:Sim.Clock.t -> string -> bytes
val file_size : t -> string -> int
val exists : t -> string -> bool
val delete : t -> string -> unit
val list_files : t -> string list
