type pid = int
type tid = int

type thread = { tid : tid; clock : Sim.Clock.t }

type proc = {
  name : string;
  main : thread;
  mutable others : thread list;
  mutable rss : int;
}

type t = {
  procs : (pid, proc) Hashtbl.t;
  mutable next_pid : pid;
  mutable next_tid : tid;
}

let create_table () = { procs = Hashtbl.create 16; next_pid = 1; next_tid = 1 }

let reset_table t =
  Hashtbl.reset t.procs;
  t.next_pid <- 1;
  t.next_tid <- 1

(* Per-domain freelist of recycled tables: serving allocates one table
   per trajectory attempt, and acquire/release happen on the same
   worker domain, so the freelist needs no locks.  Tables are scrubbed
   on release ([reset_table]), so an acquired table is observationally
   a fresh one — same pids, tids and (empty) process set. *)
type table_pool = { mutable tp_items : t list; mutable tp_len : int }

let table_pool_cap = 64

let table_pool_key : table_pool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { tp_items = []; tp_len = 0 })

let acquire_table () =
  let tp = Domain.DLS.get table_pool_key in
  match tp.tp_items with
  | t :: rest ->
      tp.tp_items <- rest;
      tp.tp_len <- tp.tp_len - 1;
      t
  | [] -> create_table ()

let release_table t =
  reset_table t;
  let tp = Domain.DLS.get table_pool_key in
  if tp.tp_len < table_pool_cap then begin
    tp.tp_items <- t :: tp.tp_items;
    tp.tp_len <- tp.tp_len + 1
  end

let fresh_tid t =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  tid

let spawn_process t ?(at = Sim.Units.zero) ~name () =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let main = { tid = fresh_tid t; clock = Sim.Clock.create ~at () } in
  Hashtbl.replace t.procs pid { name; main; others = []; rss = 0 };
  pid

let find t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Process: unknown pid %d" pid)

let clone_thread t pid =
  let p = find t pid in
  Sim.Clock.advance p.main.clock (Syscall.cost Syscall.Clone);
  let th = { tid = fresh_tid t; clock = Sim.Clock.copy p.main.clock } in
  p.others <- p.others @ [ th ];
  th

let main_thread t pid = (find t pid).main

let threads t pid =
  let p = find t pid in
  p.main :: p.others

let thread_count t pid = List.length (threads t pid)

let charge_rss t pid n = (find t pid).rss <- (find t pid).rss + n

let release_rss t pid n =
  let p = find t pid in
  p.rss <- Stdlib.max 0 (p.rss - n)

let rss t pid = (find t pid).rss

let total_rss t = Hashtbl.fold (fun _ p acc -> acc + p.rss) t.procs 0

let exit_process t pid = Hashtbl.remove t.procs pid

let live_processes t = Hashtbl.length t.procs
