(* Deterministic fault injection (Sim.Fault): plan semantics, the
   per-site wiring through the substrate, and seeded chaos runs that
   must replay bit-for-bit. *)

open Sim
open Alloystack_core

let check_time = Alcotest.testable Units.pp Units.equal

let node id =
  { Workflow.node_id = id; language = Workflow.Rust; instances = 1; required_modules = [] }

let single = Workflow.create_exn ~name:"w" ~nodes:[ node "f" ] ~edges:[]

(* --- plan semantics --- *)

let firing_pattern plan ~site ~checks =
  List.init checks (fun _ -> Fault.check plan ~site)

let test_same_seed_same_schedule () =
  let mk () =
    let plan = Fault.create ~seed:42 () in
    Fault.inject plan ~site:"a" (Fault.Probability 0.3);
    Fault.inject plan ~site:"b" (Fault.Probability 0.7);
    plan
  in
  let p1 = mk () and p2 = mk () in
  Alcotest.(check (list bool))
    "site a replays" (firing_pattern p1 ~site:"a" ~checks:50)
    (firing_pattern p2 ~site:"a" ~checks:50);
  Alcotest.(check (list bool))
    "site b replays" (firing_pattern p1 ~site:"b" ~checks:50)
    (firing_pattern p2 ~site:"b" ~checks:50);
  Alcotest.(check (list (pair string int)))
    "schedule digest equal" (Fault.schedule p1) (Fault.schedule p2)

let test_site_streams_independent () =
  (* Checking one site must not perturb another site's schedule: site
     [a] fires the same whether or not [b] is being hammered. *)
  let mk () =
    let plan = Fault.create ~seed:7 () in
    Fault.inject plan ~site:"a" (Fault.Probability 0.5);
    Fault.inject plan ~site:"b" (Fault.Probability 0.5);
    plan
  in
  let quiet = mk () in
  let noisy = mk () in
  let a_quiet = firing_pattern quiet ~site:"a" ~checks:40 in
  let a_noisy =
    List.init 40 (fun _ ->
        ignore (Fault.check noisy ~site:"b");
        ignore (Fault.check noisy ~site:"b");
        Fault.check noisy ~site:"a")
  in
  Alcotest.(check (list bool)) "a unaffected by b's checks" a_quiet a_noisy

let test_counting_triggers () =
  let plan = Fault.create ~seed:1 () in
  Fault.inject plan ~site:"nth" (Fault.Nth 3);
  Fault.inject plan ~site:"first" (Fault.First 2);
  Fault.inject plan ~site:"every" (Fault.Every 3);
  Fault.inject plan ~site:"always" ~max_fires:2 Fault.Always;
  let pat site = firing_pattern plan ~site ~checks:6 in
  Alcotest.(check (list bool)) "nth 3 fires once"
    [ false; false; true; false; false; false ] (pat "nth");
  Alcotest.(check (list bool)) "first 2"
    [ true; true; false; false; false; false ] (pat "first");
  Alcotest.(check (list bool)) "every 3"
    [ false; false; true; false; false; true ] (pat "every");
  Alcotest.(check (list bool)) "always capped at 2"
    [ true; true; false; false; false; false ] (pat "always");
  Alcotest.(check int) "occurrences counted" 6 (Fault.occurrences plan ~site:"nth");
  Alcotest.(check int) "fired counted" 2 (Fault.fired plan ~site:"always");
  Alcotest.(check int) "total" 7 (Fault.total_fired plan);
  Alcotest.(check bool) "unplanned site never fires" false (Fault.check plan ~site:"no-rule")

let test_inject_validates () =
  let plan = Fault.create ~seed:1 () in
  let invalid f = match f () with
    | () -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  invalid (fun () -> Fault.inject plan ~site:"x" (Fault.Probability 1.5));
  invalid (fun () -> Fault.inject plan ~site:"x" (Fault.Nth 0));
  invalid (fun () -> Fault.inject plan ~site:"x" ~max_fires:0 Fault.Always)

let test_reset_replays () =
  let plan = Fault.create ~seed:99 () in
  Fault.inject plan ~site:"p" (Fault.Probability 0.4);
  let first = firing_pattern plan ~site:"p" ~checks:64 in
  Fault.reset plan;
  Alcotest.(check int) "counters cleared" 0 (Fault.occurrences plan ~site:"p");
  Alcotest.(check (list bool)) "identical replay after reset" first
    (firing_pattern plan ~site:"p" ~checks:64)

let test_fire_exn_and_trace () =
  let trace = Trace.create () in
  Trace.set_enabled trace true;
  let plan = Fault.create ~trace ~seed:5 () in
  Fault.inject plan ~site:"boom" (Fault.Nth 2);
  Fault.fire_exn plan ~site:"boom";
  (match Fault.fire_exn ~at:(Units.us 3) plan ~site:"boom" with
  | () -> Alcotest.fail "second occurrence must raise"
  | exception Fault.Injected { site } -> Alcotest.(check string) "site" "boom" site);
  Fault.record_recovery plan ~at:(Units.us 9) ~site:"boom" "restarted";
  match Trace.filter trace ~category:"fault" with
  | [ injected; recovered ] ->
      Alcotest.(check string) "injection label" "boom" injected.Trace.label;
      Alcotest.(check string) "injection detail" "injected #1 (occurrence 2)"
        injected.Trace.detail;
      Alcotest.check check_time "injection time" (Units.us 3) injected.Trace.at;
      Alcotest.(check string) "recovery detail" "recovered: restarted" recovered.Trace.detail
  | events -> Alcotest.failf "expected 2 fault events, got %d" (List.length events)

(* --- network: drop forces a retransmission --- *)

let tcp_transfer ?fault () =
  let client = Clock.create () and server = Clock.create () in
  let conn =
    Netsim.Tcp.connect ?fault ~client ~server ~link:Netsim.Link.loopback
      ~client_profile:Netsim.Tcp.smoltcp ~server_profile:Netsim.Tcp.smoltcp ()
  in
  let payload = Bytes.make 65536 'x' in
  Netsim.Tcp.send conn ~from_client:true payload;
  let got = Netsim.Tcp.recv conn ~at_client:false 65536 in
  (conn, got, Clock.now server)

let test_link_drop_retransmits () =
  let plan = Fault.create ~seed:3 () in
  Fault.inject plan ~site:Fault.site_link_tx (Fault.Nth 1);
  let _, clean_payload, clean_finish = tcp_transfer () in
  let conn, payload, finish = tcp_transfer ~fault:plan () in
  Alcotest.(check int) "one retransmission" 1 (Netsim.Tcp.retransmits conn);
  Alcotest.(check bytes) "payload intact despite the drop" clean_payload payload;
  Alcotest.(check bool) "retransmission costs time" true
    (Units.( > ) finish clean_finish);
  Alcotest.(check int) "fault fired once" 1 (Fault.fired plan ~site:Fault.site_link_tx)

(* --- vfs: transient I/O errors --- *)

let test_vfs_fault_raises_io_error () =
  let plan = Fault.create ~seed:4 () in
  Fault.inject plan ~site:Fault.site_vfs_read Fault.Always;
  let vfs = Fsim.Vfs.with_faults plan (Fsim.Vfs.fresh_ramfs ()) in
  vfs.Fsim.Vfs.write_file "/f" (Bytes.of_string "data");
  (match vfs.Fsim.Vfs.read_file "/f" with
  | _ -> Alcotest.fail "read must fail under Always fault"
  | exception Fsim.Vfs.Io_error { op; path } ->
      Alcotest.(check string) "op" "read" op;
      Alcotest.(check string) "path" "/f" path);
  Alcotest.(check bool) "writes unaffected" true (vfs.Fsim.Vfs.exists "/f")

let test_vfs_fault_surfaces_as_eio () =
  let plan = Fault.create ~seed:4 () in
  Fault.inject plan ~site:Fault.site_vfs_read Fault.Always;
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    Asstd.write_whole_file ctx "/f" (Bytes.of_string "data");
    ignore (Asstd.read_whole_file ctx "/f")
  in
  let config = { Visor.default_config with Visor.fault = Some plan } in
  match Visor.run ~config ~workflow:single ~bindings:[ ("f", Visor.bind kernel) ] () with
  | _ -> Alcotest.fail "read must fail"
  | exception Visor.Function_failed { error = Errno.Error (Errno.Eio, _); _ } -> ()

let test_vfs_transient_error_retried () =
  (* Nth 1 on vfs.read: the first attempt's read fails with EIO, the
     retry's read (occurrence 2) succeeds. *)
  let plan = Fault.create ~seed:4 () in
  Fault.inject plan ~site:Fault.site_vfs_read (Fault.Nth 1);
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    Asstd.write_whole_file ctx "/f" (Bytes.of_string "data");
    Asstd.println ctx (Bytes.to_string (Asstd.read_whole_file ctx "/f"))
  in
  let config =
    { Visor.default_config with Visor.fault = Some plan; retry = Visor.Retry_function 2 }
  in
  let report = Visor.run ~config ~workflow:single ~bindings:[ ("f", Visor.bind kernel) ] () in
  Alcotest.(check string) "recovered" "data\n" report.Visor.stdout;
  Alcotest.(check int) "one retry" 1 report.Visor.retries

(* --- allocator: injected exhaustion --- *)

let test_alloc_fault_fails_once () =
  let plan = Fault.create ~seed:6 () in
  Fault.inject plan ~site:Fault.site_mem_alloc (Fault.Nth 1);
  let a = Mem.Alloc.create ~fault:plan ~base:0 ~size:65536 () in
  (match Mem.Alloc.alloc a ~size:64 ~align:8 with
  | Some _ -> Alcotest.fail "first alloc must fail"
  | None -> ());
  (match Mem.Alloc.alloc a ~size:64 ~align:8 with
  | Some _ -> ()
  | None -> Alcotest.fail "second alloc must succeed");
  Alcotest.(check int) "no bytes leaked by the failed alloc" 64
    (Mem.Alloc.allocated_bytes a)

(* --- loader: transient dlmopen failure takes the slow path again --- *)

let test_loader_fault_slow_path () =
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.println ctx "ok" in
  let bindings = [ ("f", Visor.bind kernel) ] in
  let clean = Visor.run ~workflow:single ~bindings () in
  let plan = Fault.create ~seed:8 () in
  Fault.inject plan ~site:Fault.site_loader_load (Fault.Nth 1);
  let config = { Visor.default_config with Visor.fault = Some plan } in
  let faulted = Visor.run ~config ~workflow:single ~bindings () in
  Alcotest.(check string) "module still loads" clean.Visor.stdout faulted.Visor.stdout;
  Alcotest.(check (list string)) "same modules resident" clean.Visor.loaded_modules
    faulted.Visor.loaded_modules;
  Alcotest.check check_time "exactly one extra namespace setup"
    (Units.add clean.Visor.e2e Cost.dlmopen_namespace) faulted.Visor.e2e

(* --- visor: crash, hang, timeout, backoff --- *)

let ok_kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.println ctx "ok"

let test_injected_crash_retried () =
  let plan = Fault.create ~seed:9 () in
  Fault.inject plan ~site:Fault.site_fn_crash (Fault.First 2);
  let config =
    { Visor.default_config with Visor.fault = Some plan; retry = Visor.Retry_function 3 }
  in
  let report = Visor.run ~config ~workflow:single ~bindings:[ ("f", Visor.bind ok_kernel) ] () in
  Alcotest.(check string) "completed" "ok\n" report.Visor.stdout;
  Alcotest.(check int) "two restarts" 2 report.Visor.retries

let test_hang_without_timeout_wedges () =
  let plan = Fault.create ~seed:9 () in
  Fault.inject plan ~site:Fault.site_fn_hang (Fault.Nth 1);
  let config =
    { Visor.default_config with Visor.fault = Some plan; retry = Visor.Retry_function 3 }
  in
  match Visor.run ~config ~workflow:single ~bindings:[ ("f", Visor.bind ok_kernel) ] () with
  | _ -> Alcotest.fail "hang without a watchdog timeout must wedge"
  | exception Visor.Function_hung { fn } -> Alcotest.(check string) "which" "f" fn

let test_hang_with_timeout_recovers () =
  let plan = Fault.create ~seed:9 () in
  Fault.inject plan ~site:Fault.site_fn_hang (Fault.Nth 1);
  let config =
    {
      Visor.default_config with
      Visor.fault = Some plan;
      retry = Visor.Retry_function 2;
      timeout = Some (Units.ms 50);
    }
  in
  let report = Visor.run ~config ~workflow:single ~bindings:[ ("f", Visor.bind ok_kernel) ] () in
  Alcotest.(check string) "completed after the watchdog kill" "ok\n" report.Visor.stdout;
  Alcotest.(check int) "one retry" 1 report.Visor.retries;
  Alcotest.(check bool) "e2e includes the wedged 50ms" true
    (Units.( >= ) report.Visor.e2e (Units.ms 50))

let test_slow_kernel_times_out () =
  let slow (ctx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.compute ctx (Units.ms 30) in
  let config = { Visor.default_config with Visor.timeout = Some (Units.ms 10) } in
  match Visor.run ~config ~workflow:single ~bindings:[ ("f", Visor.bind slow) ] () with
  | _ -> Alcotest.fail "over-budget kernel must be killed"
  | exception Visor.Function_failed { error = Visor.Timed_out { after; _ }; _ } ->
      Alcotest.check check_time "killed at the deadline" (Units.ms 10) after

let test_backoff_delay_schedule () =
  let b = Visor.Exponential { base = Units.ms 10; factor = 2.0; limit = Units.ms 35 } in
  Alcotest.check check_time "first attempt free" Units.zero (Visor.backoff_delay b ~attempt:1);
  Alcotest.check check_time "attempt 2" (Units.ms 10) (Visor.backoff_delay b ~attempt:2);
  Alcotest.check check_time "attempt 3" (Units.ms 20) (Visor.backoff_delay b ~attempt:3);
  Alcotest.check check_time "attempt 4 capped" (Units.ms 35) (Visor.backoff_delay b ~attempt:4);
  Alcotest.check check_time "no backoff" Units.zero
    (Visor.backoff_delay Visor.No_backoff ~attempt:5)

let test_backoff_charged_in_virtual_time () =
  (* Two crashes then success: the backoff variant must finish exactly
     base + 2*base = 30ms after the no-backoff variant. *)
  let run backoff =
    let plan = Fault.create ~seed:13 () in
    Fault.inject plan ~site:Fault.site_fn_crash (Fault.First 2);
    let config =
      {
        Visor.default_config with
        Visor.fault = Some plan;
        retry = Visor.Retry_function 3;
        backoff;
      }
    in
    (Visor.run ~config ~workflow:single ~bindings:[ ("f", Visor.bind ok_kernel) ] ()).Visor.e2e
  in
  let plain = run Visor.No_backoff in
  let delayed =
    run (Visor.Exponential { base = Units.ms 10; factor = 2.0; limit = Units.sec 1 })
  in
  Alcotest.check check_time "exactly 10ms + 20ms of backoff" (Units.ms 30)
    (Units.sub delayed plain)

(* --- seeded chaos runs replay bit-for-bit --- *)

let chaos_outcome seed =
  let trace = Trace.create ~capacity:16384 () in
  Trace.set_enabled trace true;
  let plan = Fault.create ~trace ~seed () in
  Fault.inject plan ~site:Fault.site_fn_crash (Fault.Probability 0.3);
  Fault.inject plan ~site:Fault.site_fn_hang (Fault.Probability 0.1);
  Fault.inject plan ~site:Fault.site_vfs_read (Fault.Probability 0.2);
  Fault.inject plan ~site:Fault.site_loader_load (Fault.Probability 0.15);
  let config =
    {
      Visor.default_config with
      Visor.fault = Some plan;
      retry = Visor.Retry_function 6;
      timeout = Some (Units.ms 80);
      backoff = Visor.Exponential { base = Units.ms 5; factor = 2.0; limit = Units.ms 40 };
    }
  in
  let produce (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    Asstd.write_whole_file ctx "/data" (Bytes.make 4096 'p');
    ignore (Asbuffer.with_slot_raw ctx ~slot:"s" (Bytes.of_string "payload"))
  in
  let consume (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    ignore (Asstd.read_whole_file ctx "/data");
    Asstd.println ctx (Bytes.to_string (Asbuffer.from_slot_raw ctx ~slot:"s"))
  in
  let wf =
    Workflow.create_exn ~name:"chaos" ~nodes:[ node "p"; node "c" ] ~edges:[ ("p", "c") ]
  in
  let bindings = [ ("p", Visor.bind produce); ("c", Visor.bind consume) ] in
  let outcome =
    match Visor.run ~config ~workflow:wf ~bindings () with
    | r -> Ok (r.Visor.stdout, r.Visor.retries, r.Visor.e2e)
    | exception Visor.Function_failed { fn; attempts; _ } -> Error (fn, attempts)
  in
  let fault_events =
    List.map
      (fun e -> (e.Trace.at, e.Trace.label, e.Trace.detail))
      (Trace.filter trace ~category:"fault")
  in
  (outcome, Fault.schedule plan, fault_events)

let test_chaos_run_reproducible () =
  let o1, s1, e1 = chaos_outcome 1234 in
  let o2, s2, e2 = chaos_outcome 1234 in
  Alcotest.(check bool) "faults actually fired" true
    (List.exists (fun (_, fired) -> fired > 0) s1);
  Alcotest.(check bool) "identical outcome" true (o1 = o2);
  Alcotest.(check (list (pair string int))) "identical schedule" s1 s2;
  Alcotest.(check bool) "identical fault event sequence" true (e1 = e2);
  Alcotest.(check bool) "fault events were traced" true (e1 <> [])

let test_chaos_seed_changes_schedule () =
  let _, s1, _ = chaos_outcome 1234 in
  let _, s2, _ = chaos_outcome 99 in
  Alcotest.(check bool) "different seed, different schedule" true (s1 <> s2)

let test_disabled_plan_costs_nothing () =
  (* A config with no plan behaves identically to the seed behaviour:
     same stdout, same e2e as a run that predates fault injection. *)
  let a = Visor.run ~workflow:single ~bindings:[ ("f", Visor.bind ok_kernel) ] () in
  let b = Visor.run ~workflow:single ~bindings:[ ("f", Visor.bind ok_kernel) ] () in
  Alcotest.(check string) "stdout" a.Visor.stdout b.Visor.stdout;
  Alcotest.check check_time "e2e" a.Visor.e2e b.Visor.e2e;
  Alcotest.(check int) "no retries" 0 a.Visor.retries

let suite =
  [
    Alcotest.test_case "same seed same schedule" `Quick test_same_seed_same_schedule;
    Alcotest.test_case "site streams independent" `Quick test_site_streams_independent;
    Alcotest.test_case "counting triggers" `Quick test_counting_triggers;
    Alcotest.test_case "inject validates" `Quick test_inject_validates;
    Alcotest.test_case "reset replays" `Quick test_reset_replays;
    Alcotest.test_case "fire_exn and trace" `Quick test_fire_exn_and_trace;
    Alcotest.test_case "link drop retransmits" `Quick test_link_drop_retransmits;
    Alcotest.test_case "vfs fault raises Io_error" `Quick test_vfs_fault_raises_io_error;
    Alcotest.test_case "vfs fault surfaces as EIO" `Quick test_vfs_fault_surfaces_as_eio;
    Alcotest.test_case "vfs transient error retried" `Quick test_vfs_transient_error_retried;
    Alcotest.test_case "alloc fault fails once" `Quick test_alloc_fault_fails_once;
    Alcotest.test_case "loader fault slow path" `Quick test_loader_fault_slow_path;
    Alcotest.test_case "injected crash retried" `Quick test_injected_crash_retried;
    Alcotest.test_case "hang without timeout wedges" `Quick test_hang_without_timeout_wedges;
    Alcotest.test_case "hang with timeout recovers" `Quick test_hang_with_timeout_recovers;
    Alcotest.test_case "slow kernel times out" `Quick test_slow_kernel_times_out;
    Alcotest.test_case "backoff delay schedule" `Quick test_backoff_delay_schedule;
    Alcotest.test_case "backoff charged in virtual time" `Quick test_backoff_charged_in_virtual_time;
    Alcotest.test_case "chaos run reproducible" `Quick test_chaos_run_reproducible;
    Alcotest.test_case "chaos seed changes schedule" `Quick test_chaos_seed_changes_schedule;
    Alcotest.test_case "disabled plan costs nothing" `Quick test_disabled_plan_costs_nothing;
  ]
