lib/workloads/wordcount.ml: Array Buffer Bytes Datagen Fctx Hashtbl Lazy List Printf String
