(* Tests for windowed virtual-time telemetry: Sim.Timeseries window
   arithmetic, ring retention and merge; Sim.Slo burn-rate alerting;
   and the serving path's timeseries / SLO / exporter byte-identity
   across host domain counts. *)

open Sim
open Alloystack_core

let check_time = Alcotest.testable Units.pp Units.equal

(* --- Timeseries windows ------------------------------------------- *)

let test_window_boundary () =
  let ts = Timeseries.create () in
  let c = Timeseries.counter ts "req" in
  (* Window w covers [w*width, (w+1)*width): an observation exactly on
     the boundary opens the next window. *)
  Timeseries.add ts c ~at:Units.zero 1.0;
  Timeseries.add ts c ~at:(Units.ms 999) 1.0;
  Timeseries.add ts c ~at:(Units.sec 1) 1.0;
  Timeseries.add ts c ~at:(Units.ms 1001) 1.0;
  Alcotest.(check int) "boundary instant's window" 1
    (Timeseries.window_of ts (Units.sec 1));
  Alcotest.(check (float 0.0)) "window 0 sums" 2.0 (Timeseries.value ts c 0);
  Alcotest.(check (float 0.0)) "window 1 sums" 2.0 (Timeseries.value ts c 1);
  Alcotest.check check_time "window start" (Units.sec 1)
    (Timeseries.window_start ts 1);
  Alcotest.(check int) "last window" 1 (Timeseries.last_window ts)

let test_empty_windows () =
  let ts = Timeseries.create () in
  let c = Timeseries.counter ts "req" in
  let d = Timeseries.dist ts "lat" in
  Timeseries.add ts c ~at:(Units.ms 500) 3.0;
  Timeseries.observe ts d ~at:(Units.ms 500) 10.0;
  (* An idle gap: windows 1..3 see nothing, window 4 sees traffic. *)
  Timeseries.add ts c ~at:(Units.ms 4500) 5.0;
  Alcotest.(check (float 0.0)) "idle window reads zero" 0.0
    (Timeseries.value ts c 2);
  Alcotest.(check int) "idle dist window is empty" 0
    (Timeseries.dist_count ts d 2);
  Alcotest.(check (float 0.0)) "empty-window percentile" 0.0
    (Timeseries.dist_percentile ts d 2 99.0);
  (* The CSV covers the full retained range, empty windows included:
     header + 5 windows x 2 series. *)
  let rows = String.split_on_char '\n' (String.trim (Timeseries.to_csv ts)) in
  Alcotest.(check int) "csv rows cover idle gap" 11 (List.length rows)

let test_ring_wrap_and_retention () =
  let ts = Timeseries.create ~retention:4 () in
  let c = Timeseries.counter ts "req" in
  for w = 0 to 9 do
    Timeseries.add ts c ~at:(Units.ms ((w * 1000) + 1)) (float_of_int (w + 1))
  done;
  Alcotest.(check int) "last window" 9 (Timeseries.last_window ts);
  Alcotest.(check int) "first retained window" 6 (Timeseries.first_window ts);
  (* Retained windows survive the wrap with their own sums... *)
  Alcotest.(check (float 0.0)) "window 9 kept" 10.0 (Timeseries.value ts c 9);
  Alcotest.(check (float 0.0)) "window 6 kept" 7.0 (Timeseries.value ts c 6);
  (* ...and windows behind the horizon read zero. *)
  Alcotest.(check (float 0.0)) "window 3 evicted" 0.0 (Timeseries.value ts c 3);
  Alcotest.(check int) "nothing dropped yet" 0 (Timeseries.dropped ts);
  (* A straggler behind the horizon is discarded and counted. *)
  Timeseries.add ts c ~at:(Units.ms 1) 1.0;
  Alcotest.(check (float 0.0)) "straggler not applied" 0.0
    (Timeseries.value ts c 0);
  Alcotest.(check int) "straggler counted" 1 (Timeseries.dropped ts)

let test_gauge_and_dist_semantics () =
  let ts = Timeseries.create () in
  let g = Timeseries.gauge ts "inflight" in
  let d = Timeseries.dist ts "lat" in
  Timeseries.add ts g ~at:(Units.ms 100) 3.0;
  Timeseries.add ts g ~at:(Units.ms 200) 7.0;
  Timeseries.add ts g ~at:(Units.ms 300) 5.0;
  Alcotest.(check (float 0.0)) "gauge keeps the max" 7.0
    (Timeseries.value ts g 0);
  List.iter
    (fun v -> Timeseries.observe ts d ~at:(Units.ms 400) v)
    [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "dist count" 4 (Timeseries.dist_count ts d 0);
  Alcotest.(check (float 0.0)) "dist sum" 10.0 (Timeseries.dist_sum ts d 0);
  Alcotest.(check bool) "dist p50 within range" true
    (let p = Timeseries.dist_percentile ts d 0 50.0 in
     p >= 1.0 && p <= 4.0);
  (* One name cannot be two kinds. *)
  Alcotest.check_raises "counter vs gauge collision"
    (Invalid_argument "Timeseries: inflight registered with another kind")
    (fun () ->
      let ts2 = Timeseries.create () in
      ignore (Timeseries.counter ts2 "inflight");
      ignore (Timeseries.gauge ts2 "inflight"));
  Alcotest.check_raises "scalar vs dist collision"
    (Invalid_argument "Timeseries: lat is already a dist series")
    (fun () -> ignore (Timeseries.counter ts "lat"))

let test_merge_matches_direct () =
  (* Interleaved observations split across two shards and merged must
     render exactly like the unsharded series. *)
  let direct = Timeseries.create () in
  let a = Timeseries.create () in
  let b = Timeseries.create () in
  let feed ts =
    let c = Timeseries.counter ts "req" in
    let g = Timeseries.gauge ts "inflight" in
    let d = Timeseries.dist ts "lat" in
    (c, g, d)
  in
  let dc, dg, dd = feed direct in
  let ac, ag, ad = feed a in
  let bc, bg, bd = feed b in
  for i = 0 to 99 do
    let at = Units.ms (i * 137) in
    let v = float_of_int ((i * 31) mod 17) in
    Timeseries.add direct dc ~at 1.0;
    Timeseries.add direct dg ~at v;
    Timeseries.observe direct dd ~at v;
    let c, g, d = if i mod 2 = 0 then (ac, ag, ad) else (bc, bg, bd) in
    let shard = if i mod 2 = 0 then a else b in
    Timeseries.add shard c ~at 1.0;
    Timeseries.add shard g ~at v;
    Timeseries.observe shard d ~at v
  done;
  let merged = Timeseries.create () in
  ignore (feed merged);
  Timeseries.merge_into ~src:a ~dst:merged;
  Timeseries.merge_into ~src:b ~dst:merged;
  Alcotest.(check string) "merged csv == direct csv"
    (Timeseries.to_csv direct) (Timeseries.to_csv merged)

(* --- SLO burn-rate alerts ----------------------------------------- *)

let slo_spec () =
  (* Objective 0.9 (budget 0.1), burn threshold 2.0: pages when >= 20%
     of requests go bad across both a 2 s fast and a 5 s slow window. *)
  Slo.spec ~name:"t" ~latency:(Units.ms 100) ~objective:0.9
    ~fast:(Units.sec 2) ~slow:(Units.sec 5) ~burn:2.0 ()

let feed m ~bucket ~good ~bad =
  for _ = 1 to good do
    Slo.observe m ~at:(Units.ms ((bucket * 1000) + 500)) ~good:true
  done;
  for _ = 1 to bad do
    Slo.observe m ~at:(Units.ms ((bucket * 1000) + 500)) ~good:false
  done

let test_slo_page_and_clear () =
  let m = Slo.create (slo_spec ()) in
  (* Five healthy seconds, one fully-bad second, then recovery. *)
  for b = 0 to 4 do
    feed m ~bucket:b ~good:10 ~bad:0
  done;
  feed m ~bucket:5 ~good:0 ~bad:10;
  for b = 6 to 10 do
    feed m ~bucket:b ~good:10 ~bad:0
  done;
  Slo.finish m ~at:(Units.sec 11);
  (match Slo.alerts m with
  | [ page; clear ] ->
      Alcotest.(check bool) "first is a page" true (page.Slo.al_kind = Slo.Page);
      (* Bucket 5 closes at t=6s: fast = {4,5} is 10 bad of 20 (burn
         5.0), slow = {1..5} is 10 bad of 50 (burn 2.0) — both at or
         past the threshold. *)
      Alcotest.check check_time "page instant" (Units.sec 6) page.Slo.al_at;
      Alcotest.(check (float 1e-9)) "page fast burn" 5.0 page.Slo.al_fast;
      Alcotest.(check (float 1e-9)) "page slow burn" 2.0 page.Slo.al_slow;
      Alcotest.(check bool) "second clears" true (clear.Slo.al_kind = Slo.Clear);
      (* The bad bucket leaves the slow window when bucket 10 closes at
         t=11s; the fast window recovered earlier, but a clear needs
         both below threshold. *)
      Alcotest.check check_time "clear instant" (Units.sec 11) clear.Slo.al_at;
      Alcotest.(check (float 1e-9)) "clear burns" 0.0
        (Float.max clear.Slo.al_fast clear.Slo.al_slow)
  | l ->
      Alcotest.failf "expected page then clear, got %d alerts" (List.length l));
  Alcotest.(check bool) "not paging after clear" false (Slo.paging m);
  Alcotest.(check int) "totals" 110 (Slo.total m);
  Alcotest.(check int) "good counts" 100 (Slo.good m)

let test_slo_latency_rule () =
  let m = Slo.create (slo_spec ()) in
  Slo.observe_request m ~at:(Units.ms 100) ~ok:true ~latency:(Units.ms 100);
  Slo.observe_request m ~at:(Units.ms 200) ~ok:true ~latency:(Units.ms 101);
  Slo.observe_request m ~at:(Units.ms 300) ~ok:false ~latency:(Units.ms 1);
  Slo.finish m ~at:(Units.sec 1);
  (* Good iff ok and within threshold (inclusive). *)
  Alcotest.(check int) "one good" 1 (Slo.good m);
  Alcotest.(check int) "three total" 3 (Slo.total m);
  Alcotest.(check (float 1e-9)) "compliance" (1.0 /. 3.0) (Slo.compliance m)

let test_slo_idle_gap () =
  (* A virtual week of silence between bursts must neither fire alerts
     nor change the counts — and must return quickly (the gap skip). *)
  let m = Slo.create (slo_spec ()) in
  feed m ~bucket:0 ~good:10 ~bad:0;
  Slo.observe m ~at:(Units.sec 604800) ~good:true;
  Slo.finish m ~at:(Units.sec 604801);
  Alcotest.(check int) "no alerts across the gap" 0
    (List.length (Slo.alerts m));
  Alcotest.(check int) "counts survive" 11 (Slo.total m)

let test_slo_render_deterministic () =
  let a =
    {
      Slo.al_slo = "checkout";
      al_kind = Slo.Page;
      al_at = Units.ms 312500;
      al_fast = 15.2;
      al_slow = 14.5;
    }
  in
  (* Fixed-point with trailing zeros trimmed — never %g. *)
  Alcotest.(check string) "fixed-point rendering"
    "slo checkout PAGE at 312.5s (burn fast 15.2 slow 14.5)"
    (Slo.render_alert a)

(* --- serving byte-identity across domain counts ------------------- *)

let serve_with_telemetry requests =
  Test_par.reset_observability ();
  Span.set_enabled Span.global true;
  let server = Visor.Server.create ~warm:true () in
  List.iter
    (fun (endpoint, workflow, bindings) ->
      Visor.Server.register server ~endpoint ~workflow ~bindings ())
    Test_par.endpoints_spec;
  Visor.Server.enable_telemetry server
    ~slos:
      [
        Slo.spec ~name:"lat20" ~latency:(Units.ms 20) ~objective:0.99 ();
        Slo.spec ~name:"lat100" ~latency:(Units.ms 100) ~objective:0.999 ();
      ]
    ();
  let r = Visor.Server.serve server requests in
  let csv =
    match Visor.Server.telemetry server with
    | Some ts -> Timeseries.to_csv ts
    | None -> ""
  in
  let alerts =
    String.concat "\n"
      (List.map Slo.render_alert (Visor.Server.slo_alerts server))
  in
  let prom = Obs.prometheus_string () in
  let tails = Obs.render_tails (Obs.tails ()) in
  Span.set_enabled Span.global false;
  Visor.Server.shutdown server;
  (Test_par.fingerprint r, csv, alerts, prom, tails)

let test_serving_telemetry_across_domains () =
  let requests = Test_par.requests_for ~seed:11 ~count:400 in
  let fp1, csv1, al1, prom1, tails1 =
    Test_par.with_domains 1 (fun () -> serve_with_telemetry requests)
  in
  let fp4, csv4, al4, prom4, tails4 =
    Test_par.with_domains 4 (fun () -> serve_with_telemetry requests)
  in
  Alcotest.(check string) "responses identical" fp1 fp4;
  Alcotest.(check string) "timeseries csv identical" csv1 csv4;
  Alcotest.(check string) "slo alert log identical" al1 al4;
  Alcotest.(check string) "prometheus export identical" prom1 prom4;
  Alcotest.(check string) "tail attribution identical" tails1 tails4;
  (* The artifacts carry real content, not vacuous equality. *)
  Alcotest.(check bool) "csv has windows" true
    (List.length (String.split_on_char '\n' (String.trim csv1)) > 1);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "per-endpoint series present" true
    (contains csv1 "endpoint=\"chain\"");
  Alcotest.(check bool) "prometheus histogram series present" true
    (contains prom1 "server_request_latency_ns_bucket");
  (* Satellite of this change: visor.e2e_ns must carry samples now that
     serving observes per-attempt execution time (it read zero before). *)
  Alcotest.(check bool) "visor e2e histogram populated" true
    (Metrics.histogram_count (Metrics.histogram "visor.e2e_ns") > 0)

let suite =
  [
    Alcotest.test_case "window boundary arithmetic" `Quick test_window_boundary;
    Alcotest.test_case "empty windows read zero" `Quick test_empty_windows;
    Alcotest.test_case "ring wrap and retention" `Quick
      test_ring_wrap_and_retention;
    Alcotest.test_case "gauge and dist semantics" `Quick
      test_gauge_and_dist_semantics;
    Alcotest.test_case "merge matches direct" `Quick test_merge_matches_direct;
    Alcotest.test_case "slo page and clear instants" `Quick
      test_slo_page_and_clear;
    Alcotest.test_case "slo latency goodness rule" `Quick test_slo_latency_rule;
    Alcotest.test_case "slo idle gap" `Quick test_slo_idle_gap;
    Alcotest.test_case "slo alert rendering" `Quick
      test_slo_render_deterministic;
    Alcotest.test_case "serving telemetry identical across domains" `Quick
      test_serving_telemetry_across_domains;
  ]
