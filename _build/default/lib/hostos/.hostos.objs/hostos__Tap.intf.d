lib/hostos/tap.mli: Sim
