(** Host-time and host-allocation hotspot profiler: nestable sections
    with per-domain accumulators.

    This measures where the *simulator* spends host time and host
    allocation — it never touches virtual clocks, so enabling it cannot
    change any simulated result.  Disabled (the default),
    {!with_section} costs one atomic load and a branch, so call sites
    stay in hot paths permanently. *)

type entry = {
  hs_name : string;
  hs_count : int;  (** Times the section was entered. *)
  hs_total_ns : float;  (** Accumulated host nanoseconds, inclusive of
                            nested sections. *)
  hs_minor_words : float;
      (** GC minor-heap words allocated inside the section, inclusive
          of nested sections. *)
  hs_major_words : float;
      (** Words allocated directly in the major heap (major minus
          promoted: promotion is not new allocation), inclusive of
          nested sections.  [hs_minor_words + hs_major_words] is the
          section's share of what {!Gc.allocated_bytes} counts. *)
}

val entry_words : entry -> float
(** Total allocated words of an entry: minor + direct-major. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Turn profiling on or off globally (all domains). *)

val with_section : string -> (unit -> 'a) -> 'a
(** [with_section name f] runs [f], charging its host duration and
    allocated-words deltas (one [Gc.counters] read per boundary) to
    [name] on the calling domain's accumulator when profiling is
    enabled.  Sections nest; a parent's total includes its children.
    Exceptions propagate and still charge the section. *)

val snapshot : unit -> entry list
(** Merge every domain's accumulators, sorted by section name.  Only
    meaningful while the instrumented workload is quiescent: worker
    domains update their tables without locks. *)

val reset : unit -> unit
(** Zero all accumulators on every domain. *)
