(** Hierarchical execution spans on the virtual timeline.

    Where {!Trace} records flat point events, a span covers an interval
    [[t_begin, t_end]] of virtual time and carries a parent link, so a
    workflow execution yields a tree: workflow -> stages -> functions ->
    loads / computes / transfers / network bursts.  The tree is what the
    breakdown and exporter layers (core [Obs]) consume.

    Spans are off by default and cost one branch when disabled — the
    same discipline as {!Trace.record}: argument expressions at the call
    site are still evaluated, but nothing is allocated or stored. *)

type id = int
(** Span identifier.  Ids are assigned densely from 1 in creation
    order; {!none} (0) is the absent parent / disabled sentinel. *)

val none : id

type span = {
  sp_id : id;
  sp_parent : id;  (** {!none} for a root span. *)
  sp_category : string;
      (** Breakdown category for leaves (["boot"], ["load-slow"],
          ["load-fast"], ["compute"], ["transfer"], ["network"], ["io"],
          ["retry"]) or a structural kind (["workflow"], ["stage"],
          ["function"], ["request"], ["template"]). *)
  sp_label : string;
  sp_begin : Units.time;
  mutable sp_end : Units.time;  (** Equals [sp_begin] until ended. *)
  mutable sp_attrs : (string * string) list;  (** Insertion order. *)
}

type t

val create : unit -> t

val global : t
(** Process-wide collector used by the core library; disabled by
    default. *)

val current : unit -> t
(** Domain-local current collector.  On the main domain this is
    {!global} unless {!set_current} swapped it; on a worker domain it
    defaults to a private throwaway instance so stray writes never race
    on {!global}.  [Par.with_shard] uses this slot to route a parallel
    task's spans into a per-task shard. *)

val set_current : t -> unit

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val clear : t -> unit
(** Drops every span, resets the id counter and the ambient parent. *)

val begin_span :
  t -> ?parent:id -> at:Units.time -> category:string -> label:string -> unit -> id
(** Opens a span.  When the collector is disabled returns {!none}.
    When [parent] is omitted the current {!ambient} parent is used —
    this is how layers with no workflow context in scope (the TCP
    stack) attach to the function span the visor installed. *)

val end_span : t -> id -> at:Units.time -> unit
(** Closes a span; no-op on {!none}.  The end instant is clamped to be
    no earlier than the begin instant. *)

val instant : t -> ?parent:id -> at:Units.time -> category:string -> label:string -> unit -> unit
(** Zero-duration span (e.g. a fast-path entry hit). *)

val set_attr : t -> id -> string -> string -> unit
(** Attaches a key-value attribute; no-op on {!none}. *)

val ambient : t -> id
(** Current ambient parent ({!none} when unset). *)

val set_ambient : t -> id -> unit

val count : t -> int

val import : t -> offset:Units.time -> attach:id -> t -> unit
(** [import t ~offset ~attach shard] grafts [shard]'s spans onto [t]:
    ids are remapped past [t]'s current count (both stay dense), times
    shift by [offset], and shard-local roots re-parent under [attach]
    ({!none} keeps them roots).  Spans are copied, never aliased.
    No-op while [t] is disabled. *)

val spans : t -> span list
(** All spans in creation (= id) order. *)

val find : t -> id -> span option

val children : t -> id -> span list
(** Direct children in creation order. *)

val roots : t -> span list
(** Spans with parent {!none}, in creation order. *)
