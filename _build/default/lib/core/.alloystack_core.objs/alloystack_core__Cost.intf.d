lib/core/cost.mli: Sim
