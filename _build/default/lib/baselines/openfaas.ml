open Workloads
open Sim

let gateway_overhead = Units.ms 12

(* Per-invocation watchdog hop inside each function container. *)
let watchdog_hop = Units.us 800

(* Invoking a (warm) function still crosses the gateway, the provider
   and the watchdog. *)
let per_invocation_path = Units.ms 9

let make ~label ~sandbox ~io_factor ?(warm = false) () =
  let run ?(cores = 64) (app : Fctx.app) =
    (* Input/output files live on a host volume (ext4). *)
    let vfs = Fsim.Vfs.fresh_extfs () in
    List.iter (fun (path, data) -> vfs.Fsim.Vfs.write_file path data) app.Fctx.inputs;
    (* Intermediate data goes through Redis over the simulated
       network. *)
    let redis = Netsim.Redis.create ~link:Netsim.Link.datacenter () in
    let boot (_ : Runner.instance_info) clock =
      (* Every function instance cold-starts its own container; in the
         warm configuration the pod exists and only the invocation path
         is paid. *)
      if not warm then ignore (Vmm.Sandbox.boot sandbox clock)
      else Clock.advance clock per_invocation_path;
      Clock.advance clock watchdog_hop
    in
    let io clock base_cost =
      (* gVisor's ptrace path inflates filesystem work. *)
      Clock.advance clock (Units.scale base_cost (io_factor -. 1.0))
    in
    let make_fctx (info : Runner.instance_info) ~clock ~phase =
      let client = lazy (Netsim.Redis.connect redis clock) in
      let send ~slot data = Netsim.Redis.set (Lazy.force client) slot data in
      let recv ~slot =
        match Netsim.Redis.get (Lazy.force client) slot with
        | Some data ->
            ignore (Netsim.Redis.del (Lazy.force client) slot);
            data
        | None -> raise Not_found
      in
      let read_input path =
        let before = Clock.now clock in
        let data = vfs.Fsim.Vfs.read_file ~clock path in
        io clock (Clock.elapsed_since clock before);
        data
      in
      let write_output path data =
        let before = Clock.now clock in
        vfs.Fsim.Vfs.write_file ~clock path data;
        io clock (Clock.elapsed_since clock before)
      in
      ignore info;
      {
        Fctx.instance = info.Runner.instance;
        total = info.Runner.total;
        read_input;
        write_output;
        send;
        recv;
        println = (fun _ -> Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Write));
        compute = (fun t -> Clock.advance clock t);
        phase;
      }
    in
    let instance_rss _ = sandbox.Vmm.Sandbox.mem_overhead in
    let hooks =
      {
        Runner.boot;
        make_fctx;
        instance_rss;
        cpu_tax = sandbox.Vmm.Sandbox.cpu_tax;
      }
    in
    let result =
      Runner.run ~cores ~trigger_overhead:gateway_overhead hooks app.Fctx.stages
    in
    let read_output path =
      match vfs.Fsim.Vfs.read_file path with
      | data -> Some data
      | exception Not_found -> None
    in
    {
      Platform.platform = label;
      e2e = result.Runner.e2e;
      cold_start = result.Runner.cold_start;
      phase_totals = result.Runner.phase_totals;
      cpu_time = result.Runner.cpu_time;
      peak_rss = result.Runner.peak_rss;
      validated = app.Fctx.validate ~read_output;
    }
  in
  { Platform.name = label; run }

let openfaas = make ~label:"OpenFaaS" ~sandbox:Vmm.Container.runc ~io_factor:1.0 ()

let openfaas_gvisor =
  make ~label:"OpenFaaS-gVisor" ~sandbox:Vmm.Gvisor.profile ~io_factor:2.2 ()

let openfaas_warm =
  make ~label:"OpenFaaS (warm)" ~sandbox:Vmm.Container.runc ~io_factor:1.0 ~warm:true ()
