(** TCP connection model: real state machine and byte stream, windowed
    transfer timing.

    The protocol mechanics are real — three-way handshake state
    transitions, MSS segmentation, cumulative in-order delivery, FIN
    teardown — and the payload genuinely round-trips.  Transfer *time*
    follows the classic windowed model: data moves in bursts of at most
    one congestion window, each burst costing
    [max(wire serialisation + RTT, per-segment CPU at both ends)].
    Per-segment CPU is the property that separates smoltcp from the
    Linux stack (Table 4 of the paper). *)

type profile = {
  name : string;
  mss : int;
  window : int;  (** Effective window in bytes. *)
  tx_cost : Sim.Units.time;  (** Sender CPU per segment. *)
  rx_cost : Sim.Units.time;  (** Receiver CPU per segment. *)
  handshake_extra : Sim.Units.time;
      (** Stack-side connection setup work beyond the wire RTT. *)
}

val smoltcp : profile
(** Calibrated to Table 4: ~1.75 Gbit/s RX, ~5.37 Gbit/s TX. *)

val linux : profile
(** Calibrated to Table 4: ~27.8 / 28.6 Gbit/s. *)

val guest_linux : profile
(** Linux stack inside a MicroVM: adds virtio exit costs per segment. *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait
  | Close_wait
  | Time_wait

val pp_state : Format.formatter -> state -> unit

type t
(** One direction-agnostic connection between two simulated threads. *)

val connect :
  ?fault:Sim.Fault.t ->
  client:Sim.Clock.t ->
  server:Sim.Clock.t ->
  link:Link.t ->
  client_profile:profile ->
  server_profile:profile ->
  unit ->
  t
(** Performs the three-way handshake, advancing both clocks.  When a
    fault plan is given, every data burst consults the
    [net.link.delay], [net.link.tx] (drop) and [net.link.corrupt]
    sites: a fired drop or corruption loses the burst and forces a
    retransmission (RTO wait plus a full resend); a fired delay adds
    extra queueing latency.  Payload delivery is unaffected — faults
    only cost virtual time. *)

val state : t -> state * state
(** (client state, server state). *)

val send : t -> from_client:bool -> bytes -> unit
(** Stream bytes from one end to the other, advancing both clocks
    through the windowed transfer. *)

val recv : t -> at_client:bool -> int -> bytes
(** Take up to [n] delivered bytes from the receive buffer. *)

val available : t -> at_client:bool -> int

val close : t -> unit
(** FIN/ACK teardown from the client side. *)

val segments_sent : t -> int
(** Total data segments across both directions (tests/inspection). *)

val retransmits : t -> int
(** Bursts retransmitted because an injected fault dropped or corrupted
    them. *)

val throughput_estimate : profile -> link:Link.t -> rx:profile -> float
(** Steady-state bytes/s the model yields for bulk transfer from a
    sender with this profile to [rx] over [link] — used by Table 4. *)
