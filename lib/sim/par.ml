(* Host-parallel execution of independent tasks on OCaml 5 domains.

   The contract that keeps virtual time deterministic:

   - Tasks are submitted as an array; results come back indexed by
     submission position, never by completion order.
   - A task must route every collector write (spans, trace events,
     metrics, counters) through a [shard] installed with [with_shard].
     Shards are domain-local swaps, so the hot path takes no locks.
   - Shards are merged with [merge_shard] at points chosen by the
     (sequential, virtual-time) merge loop — keyed by submission
     index, so the merged timeline is bit-identical whether the tasks
     ran on 1 domain or N.
   - Per-task randomness/faults must be split from the seed by task
     index ([Fault.child], [Rng.split]) before submission, never drawn
     from a stream shared across tasks. *)

let domain_count = Atomic.make 1

let set_domains n = Atomic.set domain_count (if n < 1 then 1 else n)
let domains () = Atomic.get domain_count

(* Submissions claimed per atomic fetch in [run]: batching amortises
   the shared-cursor contention when tasks are small.  Results stay
   indexed by submission position, so any batch size produces
   byte-identical output. *)
let batch_size = Atomic.make 1

let set_batch k = Atomic.set batch_size (if k < 1 then 1 else k)
let batch () = Atomic.get batch_size

(* The pool width that matches the machine: the runtime's recommended
   domain count, never less than 1.  Spinning up more domains than
   cores (the old [min 4 ...] default did exactly that on a 1-core
   host) makes parallelism look like a slowdown — domains contend for
   one core and pay the merge overhead with none of the win. *)
let auto_domains () = Stdlib.max 1 (Domain.recommended_domain_count ())

(* --- Per-task collector shards ------------------------------------- *)

type shard = {
  sh_span : Span.t;
  sh_trace : Trace.t;
  sh_metrics : Metrics.registry;
  sh_counters : Stats.Counter.registry;
}

type shard_config = { cfg_span_on : bool; cfg_trace_on : bool }

(* Capture enablement from the submitting domain's collectors so
   shards observe exactly what the sequential run would. *)
let shard_config () =
  {
    cfg_span_on = Span.enabled (Span.current ());
    cfg_trace_on = Trace.enabled (Trace.current ());
  }

let make_shard cfg =
  let sp = Span.create () in
  Span.set_enabled sp cfg.cfg_span_on;
  let tr = Trace.create () in
  Trace.set_enabled tr cfg.cfg_trace_on;
  {
    sh_span = sp;
    sh_trace = tr;
    sh_metrics = Metrics.create_registry ();
    sh_counters = Stats.Counter.create_registry ();
  }

let with_shard shard f =
  let old_span = Span.current () in
  let old_trace = Trace.current () in
  let old_metrics = Metrics.current () in
  let old_counters = Stats.Counter.current () in
  Span.set_current shard.sh_span;
  Trace.set_current shard.sh_trace;
  Metrics.set_current shard.sh_metrics;
  Stats.Counter.set_current shard.sh_counters;
  Fun.protect
    ~finally:(fun () ->
      Span.set_current old_span;
      Trace.set_current old_trace;
      Metrics.set_current old_metrics;
      Stats.Counter.set_current old_counters)
    f

(* Fold a shard into the *current* collectors, shifting the shard's
   relative virtual times by [offset] and attaching its root spans
   under [attach]. *)
let merge_shard ?(attach = Span.none) ?(offset = Units.zero) shard =
  Span.import (Span.current ()) ~offset ~attach shard.sh_span;
  Trace.import (Trace.current ()) ~offset shard.sh_trace;
  Metrics.merge_into shard.sh_metrics;
  Stats.merge_counters shard.sh_counters

(* --- Shard pool ----------------------------------------------------

   A shard is ~4 collector structures whose backing stores (span
   array, trace ring, histogram cells, counter cells) dwarf the data a
   single request ever puts in them.  Serving allocates 2-3 shards per
   request; recycling them is the same reset-discipline the WFD shell
   pool uses: scrub every observable on release, so an acquired shard
   is indistinguishable from a fresh one ([merge_shard] of a scrubbed
   shard is byte-identical to merging a fresh shard — merges copy or
   replay contents and skip empty cells).

   Release is only legal after the shard has been merged (or when its
   contents are deliberately discarded, e.g. a crashed attempt being
   replayed): the pool takes ownership.  Exception paths may simply
   drop shards — the pool is an optimisation, not a ledger. *)

let shard_pool : shard list ref = ref []
let shard_pool_len = ref 0
let shard_pool_mu = Mutex.create ()
let shard_pool_cap = 4096

let scrub_shard sh =
  Span.clear sh.sh_span;
  Span.set_enabled sh.sh_span false;
  Trace.clear sh.sh_trace;
  Trace.set_sample_every sh.sh_trace 1;
  Trace.set_enabled sh.sh_trace false;
  Metrics.reset_registry sh.sh_metrics;
  Stats.Counter.reset_registry sh.sh_counters

let acquire_shard cfg =
  let pooled =
    Mutex.protect shard_pool_mu (fun () ->
        match !shard_pool with
        | sh :: rest ->
            shard_pool := rest;
            decr shard_pool_len;
            Some sh
        | [] -> None)
  in
  match pooled with
  | Some sh ->
      Span.set_enabled sh.sh_span cfg.cfg_span_on;
      Trace.set_enabled sh.sh_trace cfg.cfg_trace_on;
      sh
  | None -> make_shard cfg

let release_shard sh =
  scrub_shard sh;
  Mutex.protect shard_pool_mu (fun () ->
      if !shard_pool_len < shard_pool_cap then begin
        shard_pool := sh :: !shard_pool;
        incr shard_pool_len
      end)

let shard_pool_size () = Mutex.protect shard_pool_mu (fun () -> !shard_pool_len)

(* --- The pool ------------------------------------------------------ *)

(* Run [tasks] and return their results by submission index.  Work is
   claimed from a shared atomic cursor, [batch] contiguous submissions
   per fetch (default: the [set_batch] global); the submitting domain
   participates, so [domains () = 1] costs no spawn.  Batching only
   changes which domain runs which task — results and errors stay
   keyed by submission index, so output is byte-identical at any
   batch size.  The first failing task *by submission index*
   re-raises after every domain has joined — completion order never
   leaks, even through errors. *)
let run ?batch (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  let d = min (domains ()) n in
  let k =
    match batch with
    | Some k when k >= 1 -> k
    | Some _ -> 1
    | None -> Atomic.get batch_size
  in
  if d <= 1 then Array.map (fun f -> f ()) tasks
  else begin
    let results : 'a option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let base = Atomic.fetch_and_add next k in
      if base < n then begin
        let stop = Stdlib.min n (base + k) in
        for i = base to stop - 1 do
          match tasks.(i) () with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e
        done;
        worker ()
      end
    in
    let spawned = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    let first_error = ref None in
    for i = n - 1 downto 0 do
      match errors.(i) with Some e -> first_error := Some e | None -> ()
    done;
    (match !first_error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map f arr = run (Array.map (fun x () -> f x) arr)
