(* Histogram / gauge registry.  Handles are names; the backing cells
   live in a registry resolved through domain-local storage, so
   [Par.with_shard] can route a parallel task's observations into a
   private shard (no locks on the hot path) and [merge_into] folds
   them back at a deterministic join point. *)

type histo = {
  buckets : int array;  (* 64 log2 buckets; index via [bucket_index] *)
  samples : Stats.t;
}

type registry = {
  r_histograms : (string, histo) Hashtbl.t;
  r_gauges : (string, float ref) Hashtbl.t;
}

type histogram = string
type gauge = string

let create_registry () =
  { r_histograms = Hashtbl.create 16; r_gauges = Hashtbl.create 16 }

let default = create_registry ()

let current_key = Domain.DLS.new_key create_registry
let () = Domain.DLS.set current_key default
let current () = Domain.DLS.get current_key
let set_current r = Domain.DLS.set current_key r

let histo_cell r name =
  match Hashtbl.find_opt r.r_histograms name with
  | Some h -> h
  | None ->
      let h = { buckets = Array.make 64 0; samples = Stats.create () } in
      Hashtbl.replace r.r_histograms name h;
      h

let gauge_cell r name =
  match Hashtbl.find_opt r.r_gauges name with
  | Some g -> g
  | None ->
      let g = ref 0.0 in
      Hashtbl.replace r.r_gauges name g;
      g

(* Registration persists across [reset] so never-observed series still
   export (with zero counts). *)
let histogram name =
  ignore (histo_cell (current ()) name);
  name

(* Bucket on the integer part so the boundary behaviour is exact:
   bucket 0 <-> v < 1, bucket i <-> 2^(i-1) <= v < 2^i.  Int64 bit
   length is deterministic where float log2 near powers of two is not. *)
let bucket_index v =
  let v = if v < 0.0 then 0.0 else v in
  let n = Int64.of_float v in
  let rec bits acc n = if n = 0L then acc else bits (acc + 1) (Int64.shift_right_logical n 1) in
  let i = bits 0 n in
  if i > 63 then 63 else i

let bucket_bound i = 2.0 ** float_of_int i

let observe h v =
  let cell = histo_cell (current ()) h in
  let i = bucket_index v in
  cell.buckets.(i) <- cell.buckets.(i) + 1;
  Stats.add cell.samples v

let observe_time h d = observe h (Int64.to_float (Units.to_ns d))

let histogram_count h = Stats.count (histo_cell (current ()) h).samples
let histogram_sum h = Stats.sum (histo_cell (current ()) h).samples

let gauge name =
  ignore (gauge_cell (current ()) name);
  name

let set_gauge g v = gauge_cell (current ()) g := v

let max_gauge g v =
  let cell = gauge_cell (current ()) g in
  if v > !cell then cell := v

let gauge_value g = !(gauge_cell (current ()) g)

type histo_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
  hs_buckets : (int * int) list;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : histo_snapshot list;
}

let snapshot_histogram name (h : histo) =
  let empty = Stats.is_empty h.samples in
  let buckets = ref [] in
  for i = 63 downto 0 do
    if h.buckets.(i) > 0 then buckets := (i, h.buckets.(i)) :: !buckets
  done;
  {
    hs_name = name;
    hs_count = Stats.count h.samples;
    hs_sum = Stats.sum h.samples;
    hs_min = (if empty then 0.0 else Stats.min h.samples);
    hs_max = (if empty then 0.0 else Stats.max h.samples);
    hs_p50 = (if empty then 0.0 else Stats.p50 h.samples);
    hs_p90 = (if empty then 0.0 else Stats.p90 h.samples);
    hs_p99 = (if empty then 0.0 else Stats.p99 h.samples);
    hs_buckets = !buckets;
  }

let snapshot () =
  let r = current () in
  let gs =
    Hashtbl.fold (fun n g acc -> (n, !g) :: acc) r.r_gauges []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let hs =
    Hashtbl.fold (fun n h acc -> snapshot_histogram n h :: acc) r.r_histograms []
    |> List.sort (fun a b -> String.compare a.hs_name b.hs_name)
  in
  { snap_counters = Stats.counters (); snap_gauges = gs; snap_histograms = hs }

let reset () =
  let r = current () in
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 64 0;
      Stats.clear h.samples)
    r.r_histograms;
  Hashtbl.iter (fun _ g -> g := 0.0) r.r_gauges;
  Stats.reset_counters ()

(* Fold a shard registry into the current one.  Histogram samples are
   re-observed in the shard's insertion order and series are visited
   in sorted-name order, so the merged sample sequence — and therefore
   float sums and percentile views — depends only on the submission
   order of the merges, never on host completion order.  Gauges merge
   with max (every gauge in the tree is a high-watermark). *)
let merge_into (src : registry) =
  let dst = current () in
  Hashtbl.fold (fun n h acc -> (n, h) :: acc) src.r_histograms []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (n, (h : histo)) ->
         let cell = histo_cell dst n in
         List.iter
           (fun v ->
             let i = bucket_index v in
             cell.buckets.(i) <- cell.buckets.(i) + 1;
             Stats.add cell.samples v)
           (Stats.to_list h.samples));
  Hashtbl.fold (fun n g acc -> (n, !g) :: acc) src.r_gauges []
  |> List.iter (fun (n, v) ->
         let cell = gauge_cell dst n in
         if v > !cell then cell := v)
