(** The AlloyStack gateway: binds workflows to HTTP endpoints, balances
    invocations across nodes, and executes them (§3.2, §7.1: "a gateway
    that triggers via CLI and HTTP and executes workflows from JSON
    configurations"). *)

type node = { node_name : string; cores : int }

type t

val create : ?nodes:node list -> unit -> t
(** Default: one 64-core node (the paper's testbed). *)

val register :
  t ->
  endpoint:string ->
  workflow:Workflow.t ->
  bindings:(string * Visor.binding) list ->
  ?config:Visor.config ->
  unit ->
  unit
(** Bind a workflow to [/wf/<endpoint>].  Raises [Invalid_argument] on
    a duplicate endpoint. *)

val register_json :
  t ->
  endpoint:string ->
  config_json:string ->
  bindings:(string * Visor.binding) list ->
  unit ->
  (unit, string) result
(** Parse the workflow from its JSON configuration, then register. *)

val endpoints : t -> string list

val invoke : t -> endpoint:string -> Visor.report
(** CLI-style trigger: run the workflow on the next node (round
    robin).  Raises [Not_found] for an unknown endpoint. *)

val handle_http : t -> Netsim.Http.request -> Netsim.Http.response
(** The watchdog's HTTP surface:
    - [POST /wf/<endpoint>] runs the workflow, answering 200 with a
      JSON body carrying e2e/cold-start times and the workflow stdout;
    - [GET /healthz] answers 200 "ok";
    - unknown paths answer 404. *)

(** {1 Elasticity (§9)}

    When concurrent invocations exceed a node's capacity, AlloyStack
    scales function-level resources by creating more threads and
    mappings (dlmopen) inside the WFDs; beyond a node's cores the
    gateway spills invocations to other nodes, and past total capacity
    they queue. *)

type burst_report = {
  latencies : Sim.Units.time list;  (** Per-invocation sojourn times. *)
  p99 : Sim.Units.time;
  queued : int;  (** Invocations that had to wait for capacity. *)
  per_node : (string * int) list;  (** Invocations placed per node. *)
}

val invoke_burst : t -> endpoint:string -> count:int -> burst_report
(** Fire [count] simultaneous invocations of the endpoint.  Each runs
    for real; placement packs nodes up to [cores / workflow width]
    concurrent instances, then queues.  Scaling an already-warm node
    charges the dlmopen cost of the new function mappings. *)

val invocations : t -> int
val last_node : t -> string option

val admission : t -> Visor.admission_cache
(** The gateway's shared admission cache (hit/scan counters). *)

val code_cache : t -> Wasm.Compile_cache.t
(** The gateway's shared WASM compile cache, injected into every
    node-local visor config unless the registration pinned its own. *)
