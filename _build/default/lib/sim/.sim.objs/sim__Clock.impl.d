lib/sim/clock.ml: List Units
