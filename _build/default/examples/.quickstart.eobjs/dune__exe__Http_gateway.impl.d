examples/http_gateway.ml: Alloystack_core Asbuffer Asstd Bytes Format Gateway Netsim Option Printf String Visor
