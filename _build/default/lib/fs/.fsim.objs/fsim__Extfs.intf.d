lib/fs/extfs.mli: Blockdev Sim
