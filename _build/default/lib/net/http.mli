(** Minimal HTTP/1.1 codec for the as-visor watchdog and the OpenFaaS
    gateway model. *)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val request : ?headers:(string * string) list -> ?body:string -> meth:string -> path:string -> unit -> request

val ok : ?headers:(string * string) list -> string -> response
val error_response : int -> string -> response

val encode_request : request -> string
val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

val header : (string * string) list -> string -> string option
(** Case-insensitive header lookup. *)
