
let input_path = "/input/words.txt"
let output_path = "/output/counts.txt"

(* Native per-byte compute rates (Rust baseline). *)
let tokenize_ns_per_byte = 1.8
let merge_ns_per_byte = 0.6
let split_ns_per_byte = 0.15

let is_sep c = c = ' ' || c = '\n' || c = '\t' || c = '\r'

let count_words data =
  let counts = Hashtbl.create 1024 in
  let n = Bytes.length data in
  let flush start stop =
    if stop > start then begin
      let w = Bytes.sub_string data start (stop - start) in
      Hashtbl.replace counts w
        (1 + match Hashtbl.find_opt counts w with Some c -> c | None -> 0)
    end
  in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if is_sep (Bytes.get data i) then begin
      flush !start i;
      start := i + 1
    end
  done;
  flush !start n;
  counts

let encode_counts pairs =
  let buf = Buffer.create 4096 in
  List.iter (fun (w, c) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" w c)) pairs;
  Buffer.to_bytes buf

let decode_counts data =
  String.split_on_char '\n' (Bytes.to_string data)
  |> List.filter_map (fun line ->
         match String.rindex_opt line ' ' with
         | None -> None
         | Some i ->
             let w = String.sub line 0 i in
             let c = String.sub line (i + 1) (String.length line - i - 1) in
             (match int_of_string_opt c with Some c -> Some (w, c) | None -> None))

let sorted_pairs counts =
  Hashtbl.fold (fun w c acc -> (w, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into target pairs =
  List.iter
    (fun (w, c) ->
      Hashtbl.replace target w
        (c + match Hashtbl.find_opt target w with Some x -> x | None -> 0))
    pairs

(* Cut on a word boundary at or after [want]. *)
let boundary data want =
  let n = Bytes.length data in
  let rec go i = if i >= n then n else if is_sep (Bytes.get data i) then i + 1 else go (i + 1) in
  if want >= n then n else go want

let chunk_slot i = Printf.sprintf "wc.chunk.%d" i
let part_slot m r = Printf.sprintf "wc.part.%d.%d" m r
let red_slot r = Printf.sprintf "wc.red.%d" r

let split_kernel m (ctx : Fctx.t) =
  let data = ref Bytes.empty in
  ctx.Fctx.phase Fctx.phase_read (fun () -> data := ctx.Fctx.read_input input_path);
  let data = !data in
  let n = Bytes.length data in
  ctx.Fctx.phase Fctx.phase_compute (fun () ->
      Fctx.compute_bytes ctx ~ns_per_byte:split_ns_per_byte n);
  ctx.Fctx.phase Fctx.phase_transfer (fun () ->
      let pos = ref 0 in
      for i = 0 to m - 1 do
        let target = if i = m - 1 then n else boundary data ((i + 1) * n / m) in
        ctx.Fctx.send ~slot:(chunk_slot i) (Bytes.sub data !pos (target - !pos));
        pos := target
      done)

let map_kernel r (ctx : Fctx.t) =
  let i = ctx.Fctx.instance in
  let chunk = ref Bytes.empty in
  ctx.Fctx.phase Fctx.phase_transfer (fun () -> chunk := ctx.Fctx.recv ~slot:(chunk_slot i));
  let counts = ref (Hashtbl.create 16) in
  ctx.Fctx.phase Fctx.phase_compute (fun () ->
      counts := count_words !chunk;
      Fctx.compute_bytes ctx ~ns_per_byte:tokenize_ns_per_byte (Bytes.length !chunk));
  ctx.Fctx.phase Fctx.phase_transfer (fun () ->
      let parts = Array.make r [] in
      Hashtbl.iter
        (fun w c ->
          let p = Hashtbl.hash w mod r in
          parts.(p) <- (w, c) :: parts.(p))
        !counts;
      Array.iteri (fun p pairs -> ctx.Fctx.send ~slot:(part_slot i p) (encode_counts pairs)) parts)

let reduce_kernel m (ctx : Fctx.t) =
  let p = ctx.Fctx.instance in
  let merged = Hashtbl.create 1024 in
  let received = ref 0 in
  ctx.Fctx.phase Fctx.phase_transfer (fun () ->
      for i = 0 to m - 1 do
        let data = ctx.Fctx.recv ~slot:(part_slot i p) in
        received := !received + Bytes.length data;
        ctx.Fctx.phase Fctx.phase_compute (fun () ->
            merge_into merged (decode_counts data);
            Fctx.compute_bytes ctx ~ns_per_byte:merge_ns_per_byte (Bytes.length data))
      done);
  ctx.Fctx.phase Fctx.phase_transfer (fun () ->
      ctx.Fctx.send ~slot:(red_slot p) (encode_counts (sorted_pairs merged)))

let merge_kernel r (ctx : Fctx.t) =
  let merged = Hashtbl.create 1024 in
  ctx.Fctx.phase Fctx.phase_transfer (fun () ->
      for p = 0 to r - 1 do
        let data = ctx.Fctx.recv ~slot:(red_slot p) in
        ctx.Fctx.phase Fctx.phase_compute (fun () ->
            merge_into merged (decode_counts data);
            Fctx.compute_bytes ctx ~ns_per_byte:merge_ns_per_byte (Bytes.length data))
      done);
  ctx.Fctx.write_output output_path (encode_counts (sorted_pairs merged));
  ctx.Fctx.println "wordcount done"

let expected_counts ~seed ~size =
  sorted_pairs (count_words (Datagen.words_text ~seed size))

let app ~seed ~size ~instances =
  let m = instances and r = instances in
  let input = Datagen.words_text ~seed size in
  let expected = lazy (sorted_pairs (count_words input)) in
  {
    Fctx.app_name = "WordCount";
    stages =
      [
        ("split", 1, split_kernel m);
        ("map", m, map_kernel r);
        ("reduce", r, reduce_kernel m);
        ("merge", 1, merge_kernel r);
      ];
    inputs = [ (input_path, input) ];
    validate =
      (fun ~read_output ->
        match read_output output_path with
        | None -> Error "no output file"
        | Some data ->
            let got = decode_counts data in
            let want = Lazy.force expected in
            if List.length got <> List.length want then
              Error
                (Printf.sprintf "wordcount: %d distinct words, expected %d"
                   (List.length got) (List.length want))
            else if
              List.for_all2
                (fun (w1, c1) (w2, c2) -> String.equal w1 w2 && c1 = c2)
                got want
            then Ok ()
            else Error "wordcount: counts differ");
    modules = [ "mm"; "fdtab"; "stdio"; "time"; "fatfs" ];
  }
