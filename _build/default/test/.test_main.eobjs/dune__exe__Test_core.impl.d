test/test_core.ml: Alcotest Alloystack_core Bytes Cost Errno Ext Fndata Format Fun Hashtbl Int64 Jsonlite Libos List Printf QCheck QCheck_alcotest Sim String Workflow
