let result_path = "/output/compiled-result.txt"

let module_slot = "oc.module"
let result_slot = "oc.result"

let fetch_kernel encoded (ctx : Fctx.t) =
  ctx.Fctx.phase Fctx.phase_transfer (fun () -> ctx.Fctx.send ~slot:module_slot encoded)

let compile_and_run_kernel ~n (ctx : Fctx.t) =
  let encoded = ref Bytes.empty in
  ctx.Fctx.phase Fctx.phase_transfer (fun () ->
      encoded := ctx.Fctx.recv ~slot:module_slot);
  let result = ref 0L in
  ctx.Fctx.phase Fctx.phase_compute (fun () ->
      let m = Wasm.Encode.decode !encoded in
      (* Compile + execute under a private clock, then charge the
         retired work through the platform's compute hook.  The shared
         compile cache means only the first platform run pays the host
         compile; the virtual compile charge is identical either way. *)
      let clock = Sim.Clock.create () in
      let loaded =
        Wasm.Runtime.load ~cache:(Wasm.Compile_cache.global ()) Wasm.Runtime.wasmtime
          ~clock m
      in
      (* Admission: the AOT image must pass the blacklist scanner. *)
      (match Isa.Scanner.verdict (Wasm.Runtime.image_of loaded) with
      | Isa.Scanner.Clean -> ()
      | _ -> failwith "online-compiling: module rejected by the scanner");
      let inst = Wasm.Runtime.instantiate loaded ~clock ~system:Wasm.Wasi.null_system in
      result := Wasm.Runtime.run loaded ~clock ~instance:inst "sum" [| Int64.of_int n |];
      ctx.Fctx.compute (Sim.Clock.now clock));
  ctx.Fctx.phase Fctx.phase_transfer (fun () ->
      ctx.Fctx.send ~slot:result_slot (Bytes.of_string (Int64.to_string !result)))

let store_kernel (ctx : Fctx.t) =
  let result = ref Bytes.empty in
  ctx.Fctx.phase Fctx.phase_transfer (fun () -> result := ctx.Fctx.recv ~slot:result_slot);
  ctx.Fctx.write_output result_path !result;
  ctx.Fctx.println ("compiled result: " ^ Bytes.to_string !result)

let app ?(n = 50_000) ~seed () =
  ignore seed;
  let encoded = Wasm.Encode.encode Wasm.Builder.sum_to_n in
  let expected = Int64.div (Int64.mul (Int64.of_int n) (Int64.of_int (n + 1))) 2L in
  {
    Fctx.app_name = "online-compiling";
    stages =
      [
        ("fetch", 1, fetch_kernel encoded);
        ("compile", 1, compile_and_run_kernel ~n);
        ("store", 1, store_kernel);
      ];
    inputs = [];
    validate =
      (fun ~read_output ->
        match read_output result_path with
        | None -> Error "no compiled result"
        | Some data ->
            let got = Bytes.to_string data in
            if String.equal got (Int64.to_string expected) then Ok ()
            else Error (Printf.sprintf "sum(%d) = %s, expected %Ld" n got expected));
    modules = [ "mm"; "fdtab"; "stdio"; "time"; "fatfs" ];
  }
