(** FAT filesystem over a {!Blockdev} — the rust-fatfs analogue.

    The structure is real: a file allocation table with cluster chains
    (4 KiB clusters), a directory table, first-free cluster allocation,
    and chain walking on every read.  The perf profile is calibrated to
    Table 4 of the paper (read 362 MB/s, write 1562 MB/s): reads pay a
    chain-walk overhead per cluster on top of the copy; writes go
    through a write-behind buffer and only pay allocation + copy. *)

type t

val format : Blockdev.t -> t
(** Initialise an empty filesystem covering the whole device. *)

val reset : t -> unit
(** Re-format in place, device included: indistinguishable from
    [format] on a fresh device of the same geometry, but reusing the
    existing arenas (WFD recycling resets scratch disks this way). *)

val create_file : t -> string -> unit
(** Create an empty file.  Raises [Invalid_argument] if it exists. *)

val write_file : t -> ?clock:Sim.Clock.t -> string -> bytes -> unit
(** Create-or-truncate write.  Charges the calibrated write cost to the
    clock when given. *)

val append_file : t -> ?clock:Sim.Clock.t -> string -> bytes -> unit

val read_file : t -> ?clock:Sim.Clock.t -> string -> bytes
(** Whole-file read; walks the cluster chain.  Raises [Not_found]. *)

val file_size : t -> string -> int
(** Raises [Not_found]. *)

val exists : t -> string -> bool
val delete : t -> string -> unit
(** Frees the cluster chain.  Raises [Not_found]. *)

val list_files : t -> string list

(** {1 Directories}

    Hierarchical paths are supported once directories are created:
    [mkdir] requires the parent to exist; file creation under an
    uncreated directory fails with [Not_found].  Files written to the
    root need no setup (the benchmarks' [/input/...] style paths are
    grandfathered as root-level names for compatibility — a path is
    only treated as hierarchical below a directory created with
    {!mkdir}). *)

val mkdir : t -> string -> unit
(** Raises [Invalid_argument] if it exists, [Not_found] if the parent
    does not. *)

val is_dir : t -> string -> bool
val list_dir : t -> string -> string list
(** Direct children (files and subdirectories).  Raises [Not_found]. *)

val rmdir : t -> string -> unit
(** Raises [Invalid_argument] when non-empty, [Not_found] when
    missing. *)

val free_clusters : t -> int
val cluster_size : int

val chain_length : t -> string -> int
(** Number of clusters in the file's chain (tests). *)
