(** as-libos [fdtab] module: file descriptor table (Table 2).

    POSIX-flavoured [open]/[read]/[write]/[close] over the WFD's
    resources.  Paths route by prefix: [/dev/stdout] to the stdio
    module, [/tmp/...] and everything else to the fatfs module —
    loading those modules on demand through the inter-module path is
    the caller's (as-std's) job; fdtab assumes they are present. *)

type descriptor =
  | File of { path : string; mutable pos : int }
  | Stdout
  | Socket of { conn : Netsim.Tcp.t; at_client : bool }
      (** A connected TCP endpoint: [write] sends on the stream,
          [read] drains delivered bytes. *)

val init : Wfd.t -> clock:Sim.Clock.t -> unit

val openf :
  Wfd.t -> clock:Sim.Clock.t -> path:string -> create:bool -> (int, Errno.t) result
(** [Enoent] when the file does not exist and [create] is false. *)

val read : Wfd.t -> clock:Sim.Clock.t -> fd:int -> len:int -> (bytes, Errno.t) result
(** Sequential read from the descriptor position (may be shorter at
    EOF). *)

val write : Wfd.t -> clock:Sim.Clock.t -> fd:int -> bytes -> (int, Errno.t) result
(** Append-at-position write (whole-file rewrite on the FAT layer). *)

val register_socket :
  Wfd.t -> clock:Sim.Clock.t -> conn:Netsim.Tcp.t -> at_client:bool -> int
(** Install a connected TCP endpoint in the table and return its fd
    (what as-std's [tcp_connect] hands back to user code). *)

val close : Wfd.t -> clock:Sim.Clock.t -> fd:int -> (unit, Errno.t) result
val lookup : Wfd.t -> int -> descriptor option
val open_count : Wfd.t -> int
