(** First-fit free-list heap allocator over a virtual address range.

    This is the analogue of the [linked_list_allocator] crate AlloyStack
    uses as its default memory allocator: holes are kept in an
    address-ordered list, allocation scans for the first (or best) hole
    large enough, and freed blocks are coalesced with their neighbours.
    The allocator manages *addresses*, not storage: callers map pages
    separately. *)

type policy = First_fit | Best_fit

type t

val create : ?policy:policy -> ?fault:Sim.Fault.t -> base:int -> size:int -> unit -> t
(** Manage the range [base, base+size).  When a fault plan is given,
    every {!alloc} consults the [mem.alloc] injection site first. *)

val alloc : t -> size:int -> align:int -> int option
(** Allocated block address, or [None] when no hole fits.  [align] must
    be a power of two; blocks never overlap and are fully inside the
    managed range.  An injected [mem.alloc] fault also yields [None]
    (a transient exhaustion — the next call consults the plan again). *)

val free : t -> int -> unit
(** Free a block previously returned by {!alloc}.  Raises
    [Invalid_argument] on a double free or unknown address. *)

val allocated_bytes : t -> int
val free_bytes : t -> int
val largest_hole : t -> int
val hole_count : t -> int
val live_blocks : t -> (int * int) list
(** [(addr, size)] of live allocations, address-ordered. *)

val block_size : t -> int -> int option
(** Size of the live block at exactly this address. *)

val reset : t -> unit
(** Drop every allocation — the "easy recovery by heap units if
    functions crash" behaviour the paper gets from heap-per-function. *)
