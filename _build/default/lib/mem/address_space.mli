(** A simulated virtual address space: page table + MPK enforcement.

    Each WFD (workflow domain) owns one address space.  All data accesses
    are performed with an explicit PKRU value — the rights of the thread
    doing the access — and raise {!Fault} when forbidden, exactly as the
    hardware would deliver SIGSEGV with a pkey error code. *)

type fault_kind =
  | Unmapped  (** No page mapped at the address. *)
  | Perm_denied of Prot.access  (** Page permission bits forbid it. *)
  | Pkey_denied of Prot.access * Prot.key
      (** PKRU forbids access to this page's key. *)

exception Fault of { addr : int; kind : fault_kind }

val pp_fault_kind : Format.formatter -> fault_kind -> unit

type t

val create : unit -> t

(** {1 Mapping} *)

val map :
  t -> addr:int -> len:int -> ?perm:Page.perm -> ?pkey:Prot.key -> unit -> unit
(** Map zeroed pages over [addr, addr+len) (page aligned; [addr] must be
    page aligned).  Raises [Invalid_argument] if any page in the range is
    already mapped. *)

val unmap : t -> addr:int -> len:int -> unit
(** Unmap every mapped page in the range; unmapped holes are ignored. *)

val is_mapped : t -> int -> bool
val page_count : t -> int
val mapped_bytes : t -> int

val pkey_mprotect : t -> addr:int -> len:int -> Prot.key -> unit
(** Re-tag every page in the (fully mapped) range with a key — the
    simulation of the [pkey_mprotect] syscall.  Raises {!Fault} with
    [Unmapped] if part of the range is not mapped. *)

val mprotect : t -> addr:int -> len:int -> Page.perm -> unit

val key_of : t -> int -> Prot.key
(** Key of the page containing an address.  Raises {!Fault}. *)

(** {1 Data access}

    All of these enforce page permissions and PKRU. *)

val load_byte : t -> pkru:Prot.pkru -> int -> char
val store_byte : t -> pkru:Prot.pkru -> int -> char -> unit

val load_bytes : t -> pkru:Prot.pkru -> int -> int -> bytes
(** [load_bytes t ~pkru addr len]. *)

val store_bytes : t -> pkru:Prot.pkru -> int -> bytes -> unit

val load_int64 : t -> pkru:Prot.pkru -> int -> int64
val store_int64 : t -> pkru:Prot.pkru -> int -> int64 -> unit

val blit :
  t -> pkru:Prot.pkru -> src:int -> dst:int -> len:int -> unit
(** Copy within the address space, checking read rights on the source
    range and write rights on the destination range. *)

val fill : t -> pkru:Prot.pkru -> addr:int -> len:int -> char -> unit

(** {1 Fetch} *)

val check_exec : t -> pkru:Prot.pkru -> int -> unit
(** Raises {!Fault} unless the page at the address is executable. *)

(** {1 Demand paging hooks} *)

val set_fault_handler : t -> (int -> unit) option -> unit
(** When set, the handler runs the first time a mapped-but-unpopulated
    page is touched (userfaultfd model); it may fill the page through
    {!populate_page}. *)

val populate_page : t -> vpn:int -> bytes -> unit
(** Copy up to a page of backing data into the page and mark it
    populated.  Used by fault handlers. *)

val touched_fault_count : t -> int
(** Number of demand-paging faults served so far. *)

(** {1 Accounting} *)

val access_count : t -> int
(** Total load/store operations performed (for tests and traces). *)
