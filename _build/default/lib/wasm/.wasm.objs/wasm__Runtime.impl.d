lib/wasm/runtime.ml: Aot Clock Int64 List Sim Units Wasi Wmodule
