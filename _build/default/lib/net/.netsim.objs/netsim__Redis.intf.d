lib/net/redis.mli: Link Sim
