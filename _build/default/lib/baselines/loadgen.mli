(** Open-loop load generator for tail-latency experiments (Fig. 17a).

    Poisson arrivals into a [cores]-core cluster; each request is a gang
    needing [width] cores for its service time.  A contention factor
    models per-request sandbox state (Kata's rootfs/cgroup churn)
    degrading service as the number of in-flight requests grows — the
    mechanism the paper blames for Kata's P99 blow-up under QPS. *)

type spec = {
  cores : int;
  width : int;  (** Cores a request occupies simultaneously. *)
  service : Sim.Units.time;  (** Base service time of one request. *)
  contention : float;
      (** Fractional service-time growth per concurrent in-flight
          request. *)
}

type result = {
  p50 : Sim.Units.time;
  p99 : Sim.Units.time;
  max_inflight : int;
  mean_sojourn : Sim.Units.time;
}

val run : ?seed:int -> spec -> qps:float -> requests:int -> result

val saturation_qps : spec -> float
(** The arrival rate at which offered load equals capacity
    ([cores / (width * service)]); past it the queue grows without
    bound. *)
