lib/core/asstd.ml: Bytes Clock Cost Errno Hashtbl Libos Libos_fatfs Libos_fdtab Libos_socket Libos_stdio Libos_time Sim Trampoline Units Wasm Wfd Workflow
