lib/baselines/as_platform.ml: Alloystack_core Asbuffer Asstd Errno Fctx Fsim List Platform Sim Units Visor Wasm Wfd Workflow Workloads
