examples/multilang_wasm.mli:
