lib/core/cost.ml: List Printf Sim Units
