(* Content-hash LRU cache over Aot.compile.  Keys are the digest of the
   module's canonical encoding, so structurally identical modules share
   one compilation regardless of provenance.  The cache saves host work
   only: virtual-time charging for compilation stays with the caller
   (Runtime.load), which keeps simulated results bit-identical with and
   without the cache. *)

type entry = { e_compiled : Aot.compiled; mutable e_tick : int }

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let c_hit = Sim.Stats.Counter.make "wasm.cache.hit"
let c_miss = Sim.Stats.Counter.make "wasm.cache.miss"
let c_evict = Sim.Stats.Counter.make "wasm.cache.evict"

let create ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Compile_cache.create: capacity must be positive";
  { capacity; table = Hashtbl.create 32; tick = 0; hits = 0; misses = 0; evictions = 0 }

let hash_module m = Digest.to_hex (Digest.bytes (Encode.encode m))

let touch t e =
  t.tick <- t.tick + 1;
  e.e_tick <- t.tick

(* Evict the least-recently-used entry (smallest tick). *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.e_tick <= e.e_tick -> acc
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      Sim.Stats.Counter.incr c_evict
  | None -> ()

let find_or_compile t m ~compile =
  let key = hash_module m in
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      Sim.Stats.Counter.incr c_hit;
      touch t e;
      e.e_compiled
  | None ->
      t.misses <- t.misses + 1;
      Sim.Stats.Counter.incr c_miss;
      (* Commit on success only: if [compile] raises (validation error,
         injected loader fault), the cache is left untouched — no
         half-built entry can be observed by later loads. *)
      let compiled = compile () in
      if Hashtbl.length t.table >= t.capacity then evict_one t;
      let e = { e_compiled = compiled; e_tick = 0 } in
      touch t e;
      Hashtbl.replace t.table key e;
      compiled

let length t = Hashtbl.length t.table
let hit_count t = t.hits
let miss_count t = t.misses
let eviction_count t = t.evictions

let global_cache = lazy (create ~capacity:128 ())
let global () = Lazy.force global_cache
