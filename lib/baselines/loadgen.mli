(** Open-loop load generator for tail-latency experiments (Fig. 17a).

    Poisson arrivals into a [cores]-core cluster; each request is a gang
    needing [width] cores for its service time.  A contention factor
    models per-request sandbox state (Kata's rootfs/cgroup churn)
    degrading service as the number of in-flight requests grows — the
    mechanism the paper blames for Kata's P99 blow-up under QPS. *)

type spec = {
  cores : int;
  width : int;  (** Cores a request occupies simultaneously. *)
  service : Sim.Units.time;  (** Base service time of one request. *)
  contention : float;
      (** Fractional service-time growth per concurrent in-flight
          request. *)
}

type result = {
  p50 : Sim.Units.time;
  p99 : Sim.Units.time;
  max_inflight : int;
  mean_sojourn : Sim.Units.time;
}

val run : ?seed:int -> spec -> qps:float -> requests:int -> result
(** In-flight tracking uses a min-heap of finish times, so a run costs
    O(n log w) for peak concurrency w — no per-request linear scan. *)

val saturation_qps : spec -> float
(** The arrival rate at which offered load equals capacity
    ([cores / (width * service)]); past it the queue grows without
    bound. *)

(** {1 Streaming arrival process}

    A seeded Poisson process generated one arrival at a time: constant
    memory whatever the request count, and bit-identical (same seed,
    same qps) to materialising the whole schedule up front, because the
    draws are the same — one exponential per arrival, then any endpoint
    pick from the same stream. *)

type arrivals

val arrivals : ?seed:int -> qps:float -> unit -> arrivals
(** Raises [Invalid_argument] when [qps <= 0]. *)

val next_arrival : arrivals -> Sim.Units.time
(** Advance the process one arrival and return its absolute instant.
    Arrivals are strictly increasing (up to float granularity,
    nondecreasing). *)

val arrivals_rng : arrivals -> Sim.Rng.t
(** The process's RNG, exposed so callers can interleave further draws
    (e.g. an endpoint pick per request) in the exact order the
    materialised generators used. *)

val arrivals_count : arrivals -> int
(** Arrivals generated so far. *)

val request_stream :
  ?seed:int ->
  qps:float ->
  endpoints:string array ->
  count:int ->
  unit ->
  unit ->
  (string * Sim.Units.time) option
(** [request_stream ~qps ~endpoints ~count ()] is a generator yielding
    [count] [(endpoint, arrival)] pairs then [None].  With several
    endpoints each request draws its endpoint uniformly {e after} its
    inter-arrival gap (one [Rng.pick] from the same stream); with a
    single endpoint no pick is drawn.  Raises [Invalid_argument] on an
    empty endpoint array or negative count. *)

val request_stream_until :
  ?seed:int ->
  qps:float ->
  endpoints:string array ->
  horizon:Sim.Units.time ->
  unit ->
  unit ->
  (string * Sim.Units.time) option
(** Time-bounded variant of {!request_stream} for soak runs: yields
    every arrival at or before [horizon], then [None].  Same draw
    sequence as {!request_stream} for equal seeds, so the shared prefix
    of the two streams is bit-identical.  Raises [Invalid_argument] on
    an empty endpoint array. *)
