open Sim
open Mem

type backend = { region_addr : int; region_len : int; content : bytes }

type state = { mutable backends : backend list; mutable served : int }

let key : state Ext.key = Ext.new_key "libos.mmap_file_backend"

let init (wfd : Wfd.t) ~clock =
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Userfaultfd);
  let st = { backends = []; served = 0 } in
  Ext.set wfd.Wfd.ext key st;
  (* One handler serves every registered region of the WFD. *)
  Address_space.set_fault_handler wfd.Wfd.aspace
    (Some
       (fun addr ->
         match
           List.find_opt
             (fun b -> addr >= b.region_addr && addr < b.region_addr + b.region_len)
             st.backends
         with
         | None -> ()
         | Some b ->
             st.served <- st.served + 1;
             let vpn = Page.vpn_of_addr addr in
             let file_off = Page.addr_of_vpn vpn - b.region_addr in
             let n = Stdlib.min Page.size (Bytes.length b.content - file_off) in
             if n > 0 then
               Address_space.populate_page wfd.Wfd.aspace ~vpn
                 (Bytes.sub b.content file_off n)))

let state wfd = Ext.get_exn wfd.Wfd.ext key

let register_file_backend (wfd : Wfd.t) ~clock ~region_addr ~region_len ~path =
  let st = state wfd in
  if not (Address_space.is_mapped wfd.Wfd.aspace region_addr) then Error Errno.Einval
  else begin
    match Libos_fatfs.fatfs_read wfd ~clock path with
    | Error _ as e -> e
    | Ok content ->
        st.backends <- { region_addr; region_len; content } :: st.backends;
        Ok ()
  end

let faults_served wfd = (state wfd).served
