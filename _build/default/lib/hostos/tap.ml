type device = { name : string; ip : string; setup_cost : Sim.Units.time }

type t = { mutable next_id : int; mutable live : int; mutable total : int }

let create () = { next_id = 0; live = 0; total = 0 }

(* ip tuntap add + ip addr + ip link up: a few netlink round trips. *)
let setup_cost = Sim.Units.us 350

let allocate t =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.live <- t.live + 1;
  t.total <- t.total + 1;
  {
    name = Printf.sprintf "tap%d" id;
    ip = Printf.sprintf "10.42.%d.%d" (id / 250) ((id mod 250) + 2);
    setup_cost;
  }

let release t _device = t.live <- Stdlib.max 0 (t.live - 1)

let active t = t.live
let allocated_total t = t.total
