lib/wasm/interp.mli: Wmodule
