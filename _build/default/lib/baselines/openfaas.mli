(** OpenFaaS as a {!Platform.t}.

    The container-based, fundamental serverless software stack: one
    container per function instance (boot on every cold start),
    intermediate data forwarded through a Redis store over the
    simulated network ("third-party forwarding"), and a gateway in
    front of the functions.

    The gVisor variant replaces runc with runsc: slower boot, ptrace
    syscall interception and I/O slowdown. *)

val openfaas : Platform.t
val openfaas_gvisor : Platform.t

(** Containers already running: only the gateway/provider/watchdog
    invocation path is paid per function call (steady-state). *)
val openfaas_warm : Platform.t

val gateway_overhead : Sim.Units.time
(** Gateway + faas-netes dispatch before any container starts. *)
