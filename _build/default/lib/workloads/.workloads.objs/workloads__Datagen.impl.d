lib/workloads/datagen.ml: Array Buffer Bytes Char Int64 Printf Sim String
