lib/workloads/fctx.ml: Sim
