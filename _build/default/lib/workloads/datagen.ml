let payload ~seed size = Sim.Rng.bytes (Sim.Rng.create seed) size

let vocabulary_size = 512

(* A fixed synthetic vocabulary: wNNN tokens with lengths 3..10, so the
   byte stream looks like text without shipping a corpus. *)
let vocabulary =
  Array.init vocabulary_size (fun i ->
      let base = Printf.sprintf "w%03d" i in
      let pad = i mod 7 in
      base ^ String.make pad (Char.chr (Char.code 'a' + (i mod 26))))

let words_text ~seed size =
  (* Unboxed xorshift state: generating hundreds of MB of text per
     bench run must not allocate per word.  Seeded from the shared RNG
     so streams stay reproducible. *)
  let state = ref (Int64.to_int (Sim.Rng.next_int64 (Sim.Rng.create seed)) lor 1) in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x;
    x land max_int
  in
  let buf = Buffer.create (size + 16) in
  while Buffer.length buf < size do
    (* Zipf-ish: squaring the draw skews towards low indices. *)
    let r = next () mod (vocabulary_size * vocabulary_size) in
    let idx = r * r / (vocabulary_size * vocabulary_size * vocabulary_size) in
    Buffer.add_string buf vocabulary.(idx mod vocabulary_size);
    Buffer.add_char buf (if next () mod 12 = 0 then '\n' else ' ')
  done;
  Bytes.sub (Buffer.to_bytes buf) 0 size

let int32_records ~seed ~count =
  let rng = Sim.Rng.create seed in
  let b = Bytes.create (count * 4) in
  for i = 0 to count - 1 do
    Bytes.set_int32_le b (i * 4) (Int64.to_int32 (Sim.Rng.next_int64 rng))
  done;
  b

let record_count b = Bytes.length b / 4
let get_record b i = Bytes.get_int32_le b (i * 4)
let set_record b i v = Bytes.set_int32_le b (i * 4) v
