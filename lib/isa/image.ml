type toolchain = Rust_as_std | Rust_plain_std | Wasm_aot | Native_c

type t = {
  name : string;
  toolchain : toolchain;
  insts : Inst.t list;
  mutable hash : string option;
}

let create ~name ~toolchain insts = { name; toolchain; insts; hash = None }

let code t = String.concat "" (List.map Inst.encode t.insts)

let code_size t = String.length (code t)

let inst_count t = List.length t.insts

let boundaries t =
  let rec go off = function
    | [] -> []
    | i :: rest -> off :: go (off + Inst.encoded_length i) rest
  in
  go 0 t.insts

let toolchain_tag = function
  | Rust_as_std -> "rust+as-std"
  | Rust_plain_std -> "rust+std"
  | Wasm_aot -> "wasm-aot"
  | Native_c -> "native-c"

(* The instruction stream is immutable after [create], so the digest is
   computed once and cached on the image.  A racing duplicate
   computation writes the identical string, so the unsynchronised
   cache is benign across domains. *)
let content_hash t =
  match t.hash with
  | Some h -> h
  | None ->
      let h = Digest.to_hex (Digest.string (toolchain_tag t.toolchain ^ "\x00" ^ code t)) in
      t.hash <- Some h;
      h

let pp_toolchain fmt = function
  | Rust_as_std -> Format.pp_print_string fmt "rust+as-std"
  | Rust_plain_std -> Format.pp_print_string fmt "rust+std"
  | Wasm_aot -> Format.pp_print_string fmt "wasm-aot"
  | Native_c -> Format.pp_print_string fmt "native-c"
