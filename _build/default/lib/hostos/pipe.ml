let capacity = 65_536

type t = { buf : Buffer.t }

let create () = { buf = Buffer.create capacity }

let write t data =
  let space = capacity - Buffer.length t.buf in
  let n = Stdlib.min space (Bytes.length data) in
  Buffer.add_subbytes t.buf data 0 n;
  n

let read t n =
  let have = Buffer.length t.buf in
  let take = Stdlib.min n have in
  let out = Bytes.of_string (Buffer.sub t.buf 0 take) in
  let rest = Buffer.sub t.buf take (have - take) in
  Buffer.clear t.buf;
  Buffer.add_string t.buf rest;
  out

let buffered t = Buffer.length t.buf

let is_empty t = Buffer.length t.buf = 0

let transfer_chunks len = if len <= 0 then 0 else (len + capacity - 1) / capacity
