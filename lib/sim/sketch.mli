(** Constant-memory quantile sketches.

    Two estimators with different trade-offs, both fully deterministic
    (no randomness anywhere — the simulator's bit-identity contract
    extends to every derived statistic):

    - {!P2}: the Jain–Chlamtac P² algorithm.  Five markers per tracked
      quantile, O(1) state, O(1) update.  Cheap enough to keep one per
      snapshot line in a soak run, but each instance answers a single
      fixed quantile.
    - {!Tdigest}: a merging t-digest.  O(compression) centroids, any
      quantile queried after the fact, and sketches merge losslessly in
      a deterministic order — the shape used when a thinned reservoir
      ({!Stats}, {!Metrics}) must still answer p50/p99 at 10^6 samples.

    Determinism: both sketches are pure functions of the sequence of
    [add] calls.  Feeding the same values in the same order always
    yields bit-identical estimates, on any host and any domain count. *)

module P2 : sig
  type t
  (** Single-quantile P² estimator. *)

  val create : float -> t
  (** [create q] tracks the [q]-quantile, [0 < q < 1].
      @raise Invalid_argument outside that range. *)

  val add : t -> float -> unit

  val count : t -> int
  (** Observations seen so far. *)

  val quantile : t -> float
  (** Current estimate.  Exact while [count t <= 5]; [nan] when empty. *)
end

module Tdigest : sig
  type t
  (** Mergeable t-digest (merging variant, scale function
      [4 q (1-q) / compression]). *)

  val create : ?compression:float -> unit -> t
  (** [compression] bounds centroid count (default 100.0 — roughly
      2*compression centroids, ~1% worst-case rank error, far better
      near the median and the tails). *)

  val add : ?weight:float -> t -> float -> unit
  (** [add ?weight t x] records [x] ([weight] defaults to 1.0). *)

  val count : t -> float
  (** Total recorded weight. *)

  val centroid_count : t -> int
  (** Current number of centroids (after compressing the buffer). *)

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0,1]; [nan] when empty.  Clamped to
      the observed min/max. *)

  val percentile : t -> float -> float
  (** [percentile t p] = [quantile t (p /. 100.)]. *)

  val min_value : t -> float
  val max_value : t -> float

  val merge_into : src:t -> dst:t -> unit
  (** Fold [src]'s centroids into [dst].  [src] is compressed but
      unchanged.  Deterministic given the call order. *)

  val clear : t -> unit
end
