lib/vmm/unikraft.mli: Sandbox Sim
