(** as-libos [fatfs] module: files inside the WFD's virtual disk image
    (Table 2).

    Thin layer over the WFD's {!Fsim.Vfs.t} (a rust-fatfs-style FAT
    image by default; ramfs for the Fig. 16 experiment).  Module init
    charges mounting the image (reading the FAT and root directory). *)

val init : Wfd.t -> clock:Sim.Clock.t -> unit

val fatfs_read : Wfd.t -> clock:Sim.Clock.t -> string -> (bytes, Errno.t) result
val fatfs_write : Wfd.t -> clock:Sim.Clock.t -> string -> bytes -> (int, Errno.t) result
val fatfs_exists : Wfd.t -> string -> bool
val fatfs_size : Wfd.t -> string -> (int, Errno.t) result
val fatfs_delete : Wfd.t -> clock:Sim.Clock.t -> string -> (unit, Errno.t) result
val fatfs_list : Wfd.t -> string list
