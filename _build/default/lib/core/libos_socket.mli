(** as-libos [socket] module: TCP networking in user space (Table 2).

    Module init allocates a TAP device for the WFD (its independent IP
    address) and brings up the smoltcp-style stack; [smol_bind] /
    [smol_connect] / [smol_accept] / [smol_send] / [smol_recv] then run
    the real simulated TCP state machine with the smoltcp performance
    profile (Table 4). *)

val init : Wfd.t -> clock:Sim.Clock.t -> unit

val tap_registry : Hostos.Tap.t
(** Host-wide TAP registry (one per simulated host).  Tests may inspect
    it; {!reset_host} clears it. *)

val reset_host : unit -> unit

val wfd_ip : Wfd.t -> string option
(** The WFD's IP once the socket module is loaded. *)

type listener
(** A bound, listening endpoint published on the simulated network. *)

val smol_bind : Wfd.t -> clock:Sim.Clock.t -> port:int -> (listener, Errno.t) result
(** [Eexist] if the (ip, port) is taken. *)

val smol_accept :
  listener -> clock:Sim.Clock.t -> (Netsim.Tcp.t, Errno.t) result
(** Blocks (in virtual time) until a connection arrives; [Enotconn]
    when no client ever connects. *)

val smol_connect :
  Wfd.t ->
  clock:Sim.Clock.t ->
  ip:string ->
  port:int ->
  (Netsim.Tcp.t, Errno.t) result
(** Connect to a listener on the simulated host network (including
    other WFDs' services). *)

val smol_send : Netsim.Tcp.t -> clock:Sim.Clock.t -> from_client:bool -> bytes -> int
val smol_recv : Netsim.Tcp.t -> clock:Sim.Clock.t -> at_client:bool -> int -> bytes
