(** AsBuffer: reference passing for intermediate data (§5, Fig. 6/8).

    [with_slot] allocates a buffer in the WFD's shared heap through
    [alloc_buffer], serialises the {!Fndata.t} value and stores it in
    user context (the buffer pages carry the buffer protection key, so
    the MPK check really passes — and really fails from another WFD).
    [from_slot] resolves the slot through [acquire_buffer], verifies
    the type fingerprint and reads the data zero-copy.

    When the WFD's [ref_passing] feature is disabled (the Fig. 14
    ablation "base"/"+on-demand" bars), both operations transparently
    fall back to staging the bytes through a file in the WFD's FAT
    image — the AWS-Step-Functions-recommended pattern the paper uses
    as its baseline transfer. *)

type handle = {
  slot : string;
  buffer : Libos_mm.buffer option;  (** [None] in file-fallback mode. *)
  size : int;
}

val with_slot : Asstd.ctx -> slot:string -> Fndata.t -> handle
(** Create and fill a buffer.  Raises {!Errno.Error} ([Eexist] for a
    live slot, [Enomem] when the buffer heap is exhausted). *)

val from_slot : Asstd.ctx -> slot:string -> expect:Fndata.t -> Fndata.t
(** Acquire and read.  [expect] supplies the expected fingerprint
    (pass any value of the right shape, e.g. the type's default —
    mirroring Rust's [AsBuffer::<T>::from_slot]).  Raises
    {!Errno.Error} ([Enoent] unknown slot, [Einval] fingerprint
    mismatch). *)

val with_slot_raw : Asstd.ctx -> slot:string -> bytes -> handle
(** Bulk-bytes fast path (what the C/Python string interface and the
    benchmark data plane use). *)

val from_slot_raw : Asstd.ctx -> slot:string -> bytes

val consume_slot_raw : Asstd.ctx -> slot:string -> int
(** Acquire, traverse and free a raw slot without materialising its
    payload, returning the byte count drained.  Virtual behaviour
    (syscalls, page-walk accounting, clock charges, buffer free) is
    identical to [from_slot_raw]; only the host-side copy is skipped.
    For consumers that model work on the payload rather than reading
    its bytes. *)

val free : Asstd.ctx -> handle -> unit
(** Return the buffer to the heap (receiver side, after consumption). *)

val raw_fingerprint : int64
