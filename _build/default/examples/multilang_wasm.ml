(* Multi-language support: a "C" function compiled to the WASM-style
   bytecode, AOT-compiled and run under the Wasmtime profile, talking
   to the outside world exclusively through the WASI adaptation layer —
   including the paper's two custom interfaces, buffer_register and
   access_buffer (§7.2).

     dune exec examples/multilang_wasm.exe *)

open Wasm

(* The "C" producer: builds a greeting in linear memory, prints it via
   fd_write and publishes it under a buffer slot.

   Host-call convention: 3 i64 args; buffer_register packs
   (data_ptr << 32 | data_len) into its third argument. *)
let producer =
  let open Instr in
  let greeting = "hello from wasm" in
  let slot = "greeting" in
  let packed = Int64.logor (Int64.shift_left 64L 32) (Int64.of_int (String.length greeting)) in
  Wmodule.create ~name:"producer"
    ~imports:[ "fd_write"; "buffer_register" ]
    ~memory_pages:1
    ~data:[ (0, slot); (64, greeting) ]
    ~exports:[ ("main", 2) ]
    [
      Builder.func ~name:"main"
        [
          (* fd_write(1, greeting_ptr, len) *)
          Const 1L;
          Const 64L;
          Const (Int64.of_int (String.length greeting));
          Call 0;
          Drop;
          (* buffer_register(slot_ptr, slot_len, packed) *)
          Const 0L;
          Const (Int64.of_int (String.length slot));
          Const packed;
          Call 1;
        ];
    ]

(* The consumer fetches the buffer into its own memory and returns its
   length. *)
let consumer =
  let open Instr in
  let slot = "greeting" in
  Wmodule.create ~name:"consumer" ~imports:[ "access_buffer" ] ~memory_pages:1
    ~data:[ (0, slot) ]
    ~exports:[ ("main", 1) ]
    [
      Builder.func ~name:"main"
        [ Const 0L; Const (Int64.of_int (String.length slot)); Const 128L; Call 0 ];
    ]

let () =
  (* The embedder supplies the system: here a tiny in-process broker
     standing in for as-std's WASI adaptation layer. *)
  let stdout_buf = Buffer.create 64 in
  let slots : (string, bytes) Hashtbl.t = Hashtbl.create 4 in
  let system =
    {
      Wasi.null_system with
      Wasi.sys_write =
        (fun ~fd data ->
          if fd = 1 then begin
            Buffer.add_bytes stdout_buf data;
            Bytes.length data
          end
          else -1);
      Wasi.sys_buffer_register =
        (fun slot data ->
          Hashtbl.replace slots slot data;
          true);
      Wasi.sys_access_buffer = (fun slot -> Hashtbl.find_opt slots slot);
    }
  in
  let clock = Sim.Clock.create () in
  let run m entry =
    let loaded = Runtime.load Runtime.wasmtime ~clock m in
    (* The AOT image must pass the blacklist scanner before admission. *)
    (match Isa.Scanner.verdict (Runtime.image_of loaded) with
    | Isa.Scanner.Clean -> ()
    | v ->
        Format.eprintf "image rejected: %a@." Isa.Scanner.pp_verdict v;
        exit 1);
    let instance = Runtime.instantiate loaded ~clock ~system in
    Runtime.run loaded ~clock ~instance entry [||]
  in
  let reg_result = run producer "main" in
  Format.printf "producer: stdout=%S, buffer_register -> %Ld@."
    (Buffer.contents stdout_buf) reg_result;
  let len = run consumer "main" in
  Format.printf "consumer: access_buffer -> %Ld bytes@." len;
  Format.printf "virtual time for load+compile+run of both modules: %a@."
    Sim.Units.pp (Sim.Clock.now clock)
