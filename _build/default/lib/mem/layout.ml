type region = { base : int; size : int }

let contains r addr = addr >= r.base && addr < r.base + r.size
let region_end r = r.base + r.size

let pp_region fmt r =
  Format.fprintf fmt "[0x%x, 0x%x)" r.base (region_end r)

let mib n = n * 1024 * 1024

(* System partition: low addresses. *)
let visor_code = { base = 0x0001_0000; size = mib 4 }
let libos_code = { base = 0x0100_0000; size = mib 16 }
let libos_heap = { base = 0x0800_0000; size = mib 1920 }

(* User partition. *)
let trampoline = { base = 0x8000_0000; size = 4096 * 4 }

let slot_base = 0x9000_0000
let slot_size = mib 768
let function_slot_count = 64

let function_slot i =
  if i < 0 || i >= function_slot_count then
    invalid_arg "Layout.function_slot: slot index out of range";
  { base = slot_base + (i * slot_size); size = slot_size }

let function_code i =
  let s = function_slot i in
  { base = s.base; size = mib 8 }

let function_heap i =
  let s = function_slot i in
  { base = s.base + mib 8; size = mib 752 }

let function_stack i =
  let s = function_slot i in
  { base = s.base + mib 760; size = mib 8 }

let slot_of_addr addr =
  if addr < slot_base then None
  else begin
    let i = (addr - slot_base) / slot_size in
    if i < function_slot_count then Some i else None
  end

let in_system_partition addr =
  contains visor_code addr || contains libos_code addr || contains libos_heap addr

let in_user_partition addr =
  contains trampoline addr || slot_of_addr addr <> None
