lib/hostos/pipe.mli:
