(** as-libos [mm] module: heap buffers for intermediate data (Table 2).

    [alloc_buffer] carves a page-aligned block out of the WFD's
    libos-heap region, maps its pages with the buffer protection key and
    records the (slot, fingerprint) -> address binding.
    [acquire_buffer] looks the slot up, verifies the fingerprint, and
    {e removes} the entry so no two functions can own the same buffer
    (§7.1).  [mmap] maps anonymous memory into the caller's slot. *)

type buffer = { addr : int; size : int; fingerprint : int64 }

val init : Wfd.t -> clock:Sim.Clock.t -> unit
(** Install the slot map (called by the module loader). *)

val alloc_buffer :
  Wfd.t ->
  clock:Sim.Clock.t ->
  slot:string ->
  size:int ->
  fingerprint:int64 ->
  (buffer, Errno.t) result
(** [Eexist] if the slot is live, [Enomem] if the heap is exhausted. *)

val acquire_buffer :
  Wfd.t ->
  clock:Sim.Clock.t ->
  slot:string ->
  fingerprint:int64 ->
  (buffer, Errno.t) result
(** [Enoent] for an unknown slot, [Einval] on fingerprint mismatch
    (the slot entry survives a failed acquire). *)

val free_buffer : Wfd.t -> buffer -> unit
(** Unmap and return the block to the heap. *)

val peek_slot : Wfd.t -> string -> buffer option
(** Non-consuming lookup (used by fan-out bookkeeping and tests). *)

val live_slots : Wfd.t -> string list
val live_buffer_bytes : Wfd.t -> int

val mmap :
  Wfd.t -> clock:Sim.Clock.t -> thread:Wfd.thread -> len:int -> (int, Errno.t) result
(** Anonymous mapping in the calling function's heap region. *)

val mmap_file :
  Wfd.t ->
  clock:Sim.Clock.t ->
  thread:Wfd.thread ->
  fd:int ->
  len:int ->
  (int, Errno.t) result
(** Table 2's [mmap(length, prot, fd)]: map a fdtab file into the
    caller's heap region, demand-paged through the
    [mmap_file_backend] module (which must be loaded).  [Ebadf] for a
    non-file descriptor. *)
