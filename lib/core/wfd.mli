(** The WorkFlow Domain (WFD): one address space carrying every entity a
    workflow needs — user functions, as-libos, heap memory and system
    resources (§3.1).

    The address space is split by MPK into a system partition (as-visor
    and as-libos, key {!system_key}) and a user partition (function
    slots and trampoline pages).  Functions of the same tenant share
    one user key by default; enabling inter-function isolation (IFI)
    gives every function slot its own key (§3.3). *)

type features = {
  on_demand : bool;  (** On-demand as-libos loading (§4). *)
  ref_passing : bool;  (** AsBuffer reference passing (§5). *)
  ifi : bool;  (** Per-function MPK keys. *)
}

val default_features : features

type thread = {
  fn_slot : int;  (** Which function slot this thread executes. *)
  clock : Sim.Clock.t;
  mutable pkru : Mem.Prot.pkru;  (** Current rights of this thread. *)
  user_pkru : Mem.Prot.pkru;  (** Rights while in user code. *)
}

type t = {
  mutable id : int;  (** Mutable only for {!acquire} re-binding. *)
  workflow_name : string;
  features : features;
  aspace : Mem.Address_space.t;
  buffer_alloc : Mem.Alloc.t;  (** AsBuffer heap in the libos-heap region. *)
  loaded_modules : (string, unit) Hashtbl.t;
  entry_table : (string, string) Hashtbl.t;  (** entry name -> module. *)
  ext : Ext.t;  (** Per-module state (fd tables, slot maps, ...). *)
  mutable vfs : Fsim.Vfs.t;  (** The WFD's virtual disk image. *)
  mutable fault : Sim.Fault.t option;
      (** Fault plan consulted by substrate layers. *)
  mutable tap : Hostos.Tap.device option;
  stdout : Buffer.t;  (** Host console output of this WFD. *)
  mutable pid : Hostos.Process.pid;
  mutable proc_table : Hostos.Process.t;
  mutable next_fn_slot : int;
  mutable destroyed : bool;
  (* Counters *)
  mutable entry_misses : int;
  mutable entry_hits : int;
  mutable trampoline_crossings : int;
  mutable span : Sim.Span.id;
      (** Current enclosing span in {!Sim.Span.global} — the trace
          context the visor threads through stages and that substrate
          layers (loader, buffers, sockets) parent their spans under.
          {!Sim.Span.none} when tracing is off. *)
}

(** {1 Keys} *)

val system_key : Mem.Prot.key
val shared_user_key : Mem.Prot.key
val buffer_key : Mem.Prot.key

val function_key : t -> int -> Mem.Prot.key
(** Key for a function slot: the shared user key, or a per-slot key
    under IFI. *)

val system_pkru : Mem.Prot.pkru
(** Rights while executing as-visor / as-libos code: everything. *)

val user_pkru_for : t -> int -> Mem.Prot.pkru
(** Rights for user code in a given slot: its own key, the buffer key
    and the trampoline pages — nothing else. *)

(** {1 Lifecycle} *)

val create :
  ?features:features ->
  ?vfs:Fsim.Vfs.t ->
  ?fault:Sim.Fault.t ->
  proc_table:Hostos.Process.t ->
  clock:Sim.Clock.t ->
  workflow_name:string ->
  unit ->
  t
(** Builds the address space (system regions + trampoline), allocates
    protection keys and charges {!Cost.wfd_create} to [clock].  The
    default disk is a fresh FAT image.  Passing a fault plan arms the
    WFD's injection points: the disk ([vfs.read]/[vfs.write]), the
    buffer heap ([mem.alloc]) and, via the loader and visor, module
    loads and function threads. *)

val spawn_function_thread : t -> clock:Sim.Clock.t -> thread
(** Clone a thread into the next free function slot, map its code,
    heap and stack with the slot's key, and charge clone +
    {!Cost.function_thread_start}.  The thread's clock starts at
    [clock]'s instant. *)

val respawn_function_thread : t -> slot:int -> clock:Sim.Clock.t -> thread
(** Heap-unit crash recovery (§3.1 / §7.1): unmap everything in the
    function's slot (its heap allocations die with it), remap fresh
    code/heap/stack and clone a new thread executing in the {e same}
    slot.  Intermediate-data buffers live in the libos heap and are
    untouched. *)

val clone_template :
  ?vfs:Fsim.Vfs.t ->
  ?fault:Sim.Fault.t ->
  t ->
  proc_table:Hostos.Process.t ->
  clock:Sim.Clock.t ->
  t
(** CoW-clone a warm template WFD for one request (the warm-pool fast
    path): the loaded-module set and entry table are inherited, the
    buffer heap / module state / stdout / function slots start fresh,
    and the clone is charged {!Cost.wfd_clone} instead of the full
    create + entry-table path.  By default the clone shares the
    template's disk image and fault plan; [vfs] / [fault] substitute a
    per-request image and plan — required when clones execute on
    different domains, since the shared vfs is host-mutable state.
    The clone lives in [proc_table] under its own pid.  Raises
    [Invalid_argument] if the template was destroyed. *)

val destroy : t -> unit
(** Unmap everything and reclaim resources.  Idempotent. *)

(** {1 Recycling}

    The steady-state warm path used to clone-then-destroy a WFD per
    request; at 10⁵–10⁷ requests the allocation and teardown dominate
    host cost.  Instead, a finished clone can be {!recycle}d back to
    its template image (host-only reset, no virtual effects) and later
    {!acquire}d for a new request.  [acquire] re-plays exactly the
    virtual effects of {!clone_template} — same id draw from the
    request's reserved namespace, same base mappings and counter
    traffic, same RSS and clock charges — so every virtual observable
    is bit-identical whether a request got a recycled shell or a fresh
    clone. *)

val recycle : template:t -> t -> unit
(** Reset a finished, still-live clone of [template] back to the
    template image: address space emptied in place (page table and TLB
    arena reused), buffer heap reset, module/entry tables re-copied,
    per-module state and stdout cleared, process-table references
    released.  A private per-request scratch disk that supports
    {!Fsim.Vfs.recycle} is re-formatted in place and kept for the next
    {!acquire}; otherwise the vfs reference drops back to the
    template's.  Charges no clock and touches no global counter.  The
    shell remains [live] (it still owns its arenas) until {!destroy}.
    Raises [Invalid_argument] if either WFD was destroyed. *)

val acquire :
  ?vfs:Fsim.Vfs.t ->
  template:t ->
  t ->
  proc_table:Hostos.Process.t ->
  clock:Sim.Clock.t ->
  t
(** Bind a {!recycle}d shell to a new request, mirroring
    {!clone_template}'s virtual effects exactly (see above).  [vfs]
    defaults to the shell's current image — the recycled private
    scratch disk when {!recycle} kept one, the template's otherwise.
    The shell keeps the template's fault plan — requests that carry a
    per-request plan must use {!clone_template} instead, because the
    shell's buffer heap was armed with the template's plan at clone
    time.  Returns the shell for convenience. *)

val live_count : unit -> int
(** Number of created-but-not-destroyed WFDs across the whole process —
    the leak detector long-lived servers watch. *)

(** {1 Deterministic id allocation}

    WFD ids appear in trace text (["wfd%d ..."]), so parallel tasks
    must not draw them from the shared counter in host-completion
    order.  A submitter reserves a contiguous range per task with
    {!reserve_ids} and the task allocates inside it under
    {!with_id_namespace}; ids then depend only on submission index. *)

val reserve_ids : int -> int
(** [reserve_ids n] claims [n] ids from the global counter and returns
    [base]; the reserved ids are [base+1 .. base+n]. *)

val with_id_namespace : base:int -> (unit -> 'a) -> 'a
(** Run [f] with WFD ids allocated locally as [base+1, base+2, ...]
    (domain-local; restored on exit, exceptions included). *)

val mapped_bytes : t -> int
val is_loaded : t -> string -> bool
