lib/mem/page.ml: Bytes Format Prot
