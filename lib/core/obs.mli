(** Observability exporters and critical-path analysis.

    {!Sim.Span} and {!Sim.Metrics} live in the dependency-free [sim]
    library and only collect; this module turns the collected data into
    artifacts:

    - a Chrome [trace_event] JSON document (load it in Perfetto or
      [chrome://tracing] — one track per root span),
    - a JSONL dump of the raw span tree (one span per line),
    - a JSON snapshot of the metrics registry,
    - a critical-path latency breakdown that attributes a root span's
      whole duration to cost categories with no unattributed remainder.

    Everything here is deterministic: two identically seeded runs
    export byte-identical documents. *)

(** {1 Exporters} *)

val trace_json : ?collector:Sim.Span.t -> unit -> Jsonlite.t
(** Chrome [trace_event] document for every completed span.  [ts] and
    [dur] are integral microseconds (the format's native granularity);
    the exact nanosecond interval rides along in [args.ts_ns] /
    [args.dur_ns].  Each span's [tid] is its root ancestor's id, so
    every workflow / request renders as its own track. *)

val trace_json_string : ?collector:Sim.Span.t -> unit -> string

val spans_jsonl : ?collector:Sim.Span.t -> unit -> string
(** One JSON object per line per span, in id order:
    [{"id":..,"parent":..,"category":..,"label":..,"begin_ns":..,
    "end_ns":..,"attrs":{..}}].  Empty string when no spans. *)

val metrics_json : unit -> Jsonlite.t
(** Snapshot of {!Sim.Metrics} (counters, gauges, histograms with
    non-empty log2 buckets), all name-sorted. *)

val metrics_json_string : unit -> string

(** {1 Critical-path breakdown} *)

val categories : string list
(** The attributable cost categories, in report order: boot,
    load-slow, load-fast, compute, transfer, network, io, retry.
    Time inside structural spans (workflow / stage / function /
    request) that no attributable child covers reports as ["other"]. *)

type breakdown = {
  bd_root : Sim.Span.id;
  bd_label : string;  (** The root span's label. *)
  bd_total : Sim.Units.time;  (** The root span's full duration. *)
  bd_buckets : (string * Sim.Units.time) list;
      (** {!categories} order then ["other"]; every bucket present,
          zero or not.  The buckets sum to [bd_total] {e exactly}. *)
}

val breakdown : ?collector:Sim.Span.t -> root:Sim.Span.id -> unit -> breakdown
(** Walks the span tree under [root] along the latest-finisher critical
    path: within any span, walking backwards from its end, the child
    that finishes latest claims its interval (recursively), gaps
    between claimed intervals go to the enclosing span's bucket, and
    shadowed siblings contribute nothing — so the buckets partition
    the root interval exactly.  Raises [Invalid_argument] if [root]
    does not exist. *)

val find_root :
  ?collector:Sim.Span.t -> category:string -> unit -> Sim.Span.span option
(** Latest root span of the given category, if any. *)

val render_breakdown : breakdown -> string
(** Human-readable table: one line per non-zero bucket with duration
    and percentage, then the total. *)

val breakdown_json : breakdown -> Jsonlite.t
(** [{"label":..,"total_ns":..,"buckets":{"boot":ns,..}}] with every
    bucket (including zeros) in report order. *)

(** {1 Tail attribution}

    Why were the slow requests slow?  For every sampled root span at
    or above a latency quantile, run the critical-path breakdown and
    charge the request to its {e dominant} bucket — the category
    holding the most critical-path time.  The aggregated verdict table
    turns "p99 is 800ms" into "the p99 is cold boots". *)

type tail_entry = {
  te_category : string;  (** Dominant cost bucket. *)
  te_count : int;  (** Tail requests charged to it. *)
  te_share : float;  (** Fraction of all tail requests. *)
  te_mean_total : Sim.Units.time;  (** Mean e2e latency of those. *)
  te_mean_bucket : Sim.Units.time;  (** Mean time in the bucket. *)
}

type tail_report = {
  tr_quantile : float;
  tr_threshold : Sim.Units.time;
      (** The exact nearest-rank quantile of the sampled population. *)
  tr_population : int;  (** Sampled root spans considered. *)
  tr_tail : int;  (** Roots at or above the threshold. *)
  tr_entries : tail_entry list;
      (** Largest count first; ties keep {!categories} order. *)
}

val tails :
  ?collector:Sim.Span.t -> ?quantile:float -> ?category:string -> unit -> tail_report
(** [quantile] defaults to 99.0.  Roots of [category] are analysed
    when given; otherwise ["request"] roots when any exist (the
    serving shape), else every root.  Under span sampling
    ([sample_every]) the population is the sampled requests — exact
    counters elsewhere are unaffected.  Raises [Invalid_argument]
    when [quantile] is outside (0,100]. *)

val render_tails : tail_report -> string
(** Verdict table, one line per dominant category. *)

val tails_json : tail_report -> Jsonlite.t
(** [{"quantile":..,"threshold_ns":..,"population":..,"tail":..,
    "verdicts":[{"category":..,"count":..,"share":..,
    "mean_total_ns":..,"mean_bucket_ns":..},..]}]. *)

(** {1 Prometheus export} *)

val prometheus_string : unit -> string
(** The current {!Sim.Metrics} registry in the Prometheus text
    exposition format: counters and gauges as single samples,
    histograms as cumulative [le] buckets (log2 bounds) plus [_sum]
    and [_count].  Dotted names sanitize to underscores;
    [Metrics.labels]-encoded names keep their label blocks.  Floats
    render fixed-point, so identical registries export byte-identical
    text on any host. *)
