(** Host-time hotspot profiler: nestable wall-clock sections with
    per-domain accumulators.

    This measures where the *simulator* spends host time — it never
    touches virtual clocks, so enabling it cannot change any simulated
    result.  Disabled (the default), {!with_section} costs one atomic
    load and a branch, so call sites stay in hot paths permanently. *)

type entry = {
  hs_name : string;
  hs_count : int;  (** Times the section was entered. *)
  hs_total_ns : float;  (** Accumulated host nanoseconds, inclusive of
                            nested sections. *)
}

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Turn profiling on or off globally (all domains). *)

val with_section : string -> (unit -> 'a) -> 'a
(** [with_section name f] runs [f], charging its host duration to
    [name] on the calling domain's accumulator when profiling is
    enabled.  Sections nest; a parent's total includes its children.
    Exceptions propagate and still charge the section. *)

val snapshot : unit -> entry list
(** Merge every domain's accumulators, sorted by section name.  Only
    meaningful while the instrumented workload is quiescent: worker
    domains update their tables without locks. *)

val reset : unit -> unit
(** Zero all accumulators on every domain. *)
