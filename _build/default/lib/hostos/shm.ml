open Sim

type t = {
  backing : Bytes.t;
  doorbell : Pipe.t;
  mutable written : int;
  mutable reader_touched : bool;
}

(* Writer-side fill and reader-side traversal bandwidths (memcpy
   class); first touch pays a soft page fault per 4KiB. *)
let fill_bw = 11.0e9
let fault_cost = Units.ns 1_200

let create ~size ~clock =
  if size <= 0 then invalid_arg "Shm.create: size must be positive";
  (* open + ftruncate + two mmaps. *)
  Clock.advance clock (Syscall.cost Syscall.Open);
  Clock.advance clock (Syscall.cost Syscall.Mmap);
  Clock.advance clock (Syscall.cost Syscall.Mmap);
  { backing = Bytes.make size '\000'; doorbell = Pipe.create (); written = 0; reader_touched = false }

let write t ~clock data =
  let n = Stdlib.min (Bytes.length data) (Bytes.length t.backing) in
  Bytes.blit data 0 t.backing 0 n;
  t.written <- n;
  Clock.advance clock (Units.time_for_bytes ~bytes_per_sec:fill_bw n);
  (* One-byte doorbell. *)
  ignore (Pipe.write t.doorbell (Bytes.make 1 '!'));
  Clock.advance clock (Syscall.cost Syscall.Write)

let read t ~clock =
  if Pipe.is_empty t.doorbell then failwith "Shm.read: no data signalled";
  ignore (Pipe.read t.doorbell 1);
  Clock.advance clock (Syscall.cost Syscall.Read);
  let out = Bytes.sub t.backing 0 t.written in
  (* First traversal: fault in each page, then stream the bytes. *)
  if not t.reader_touched then begin
    let pages = (t.written + 4095) / 4096 in
    Clock.advance clock (Units.scale fault_cost (float_of_int pages));
    t.reader_touched <- true
  end;
  Clock.advance clock (Units.time_for_bytes ~bytes_per_sec:fill_bw t.written);
  out

let size t = Bytes.length t.backing
