(** Faasm (USENIX ATC'20) as a {!Platform.t}.

    Thread-level Faaslets executing AOT-compiled WASM under WAVM.
    Intermediate data lives in a two-tier state layer: within a worker
    the pages are shared via mremap, but accessing them still takes
    page faults, and state operations synchronise through a fixed
    global-state protocol (§8.3 of the AlloyStack paper).

    Language variants: [c] runs the C build (WAVM is ~30% faster at
    execution than Wasmtime), [python] runs CPython-on-WASM (heavy
    runtime init, Fig. 10). *)

val c : Platform.t  (** "Faasm-C" *)

val python : Platform.t  (** "Faasm-Py" *)

val faaslet_start : Sim.Units.time
val state_sync : Sim.Units.time
(** Fixed global-state synchronisation per transfer. *)

val control_plane : Sim.Units.time
(** Scheduler dispatch per chained invocation. *)

val transfer_cost : int -> Sim.Units.time
(** One-directional cost of moving [n] bytes through the local state
    tier (page faults + traversal). *)
