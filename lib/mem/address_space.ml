type fault_kind =
  | Unmapped
  | Perm_denied of Prot.access
  | Pkey_denied of Prot.access * Prot.key

exception Fault of { addr : int; kind : fault_kind }

let pp_fault_kind fmt = function
  | Unmapped -> Format.pp_print_string fmt "unmapped"
  | Perm_denied a -> Format.fprintf fmt "permission denied (%a)" Prot.pp_access a
  | Pkey_denied (a, k) ->
      Format.fprintf fmt "pkey %d denied (%a)" (Prot.key_to_int k) Prot.pp_access a

(* Mapped ranges are tracked as regions; Page.t records materialise
   lazily on first touch.  [r_perm]/[r_pkey] are the creation defaults
   for pages in the region that have not materialised yet — once a page
   exists in [pages] it carries its own (possibly mprotect-ed) bits. *)
type region = {
  mutable r_first : int;  (* first vpn *)
  mutable r_last : int;  (* last vpn, inclusive *)
  r_perm : Page.perm;
  r_pkey : Prot.key;
}

(* Software TLB: direct-mapped, validated by the address space's
   generation counter (bumped on map/unmap/mprotect/pkey_mprotect) and
   by the PKRU the cached check was made under.  The allow bits fold
   page permissions and PKRU together so a hit skips the page walk and
   both checks; any mismatch (including a cached deny) takes the slow
   path, which raises the precise fault. *)
type tlb_entry = {
  mutable e_vpn : int;  (* -1 = never filled *)
  mutable e_gen : int;
  mutable e_pkru : int;  (* Prot.bits of the PKRU checked at fill *)
  mutable e_page : Page.t;
  mutable e_data : Bytes.t;
  mutable e_read : bool;
  mutable e_write : bool;
  mutable e_exec : bool;
}

let tlb_bits = 8
let tlb_size = 1 lsl tlb_bits
let tlb_mask = tlb_size - 1

(* Page geometry as same-unit literals: the byte fast paths must
   compile to immediate shifts and masks, and Closure-mode ocamlopt
   does not propagate constants across modules. *)
let page_shift = 12
let page_mask = 4095
let () = assert (Page.shift = page_shift && Page.size = page_mask + 1)

type t = {
  pages : (int, Page.t) Hashtbl.t;  (* materialised pages only *)
  mutable regions : region list;
  mutable total_pages : int;
  mutable fault_handler : (int -> unit) option;
  mutable demand_faults : int;
  mutable accesses : int;
  tlb_enabled : bool;
  tlb : tlb_entry array;
  mutable generation : int;
  mutable tlb_misses : int;
  mutable tlb_flushes : int;
  mutable tlb_hits_pushed : int;
      (* Hits already reflected in the global "mem.tlb.hit" counter.
         Hits are not counted per access on the fast path: they are
         derived as [accesses - misses] (every successful access in a
         TLB space is exactly one of the two) and pushed to the global
         counter on flushes and reads. *)
}

let c_tlb_hit = Sim.Stats.Counter.make "mem.tlb.hit"
let c_tlb_miss = Sim.Stats.Counter.make "mem.tlb.miss"
let c_tlb_flush = Sim.Stats.Counter.make "mem.tlb.flush"

(* --- Page pool -----------------------------------------------------

   Materialised pages churn fast on the serving hot path: every
   AsBuffer transfer maps a multi-page region, touches it once and
   unmaps it, so without recycling each request allocates (and hands
   the GC) a fresh 4 KiB backing buffer per page.  Unmapped pages park
   on a per-domain freelist instead; acquire re-zeroes the backing
   (demand-zero semantics are observable through loads) and resets the
   metadata, so a recycled page is indistinguishable from a fresh one.
   Per-domain (DLS, no locks) because page churn is per-request work
   that stays on the worker domain that runs the request. *)

type page_pool = { mutable pp_items : Page.t list; mutable pp_len : int }

let page_pool_cap = 4096
let page_pool_key = Domain.DLS.new_key (fun () -> { pp_items = []; pp_len = 0 })

let acquire_page ~perm ~pkey =
  let pool = Domain.DLS.get page_pool_key in
  match pool.pp_items with
  | p :: rest ->
      pool.pp_items <- rest;
      pool.pp_len <- pool.pp_len - 1;
      p.Page.perm <- perm;
      p.Page.pkey <- pkey;
      p.Page.populated <- false;
      (match p.Page.store with
      | Some b -> Bytes.fill b 0 Page.size '\000'
      | None -> ());
      p
  | [] -> Page.create ~perm ~pkey ()

let release_page p =
  let pool = Domain.DLS.get page_pool_key in
  if pool.pp_len < page_pool_cap then begin
    pool.pp_items <- p :: pool.pp_items;
    pool.pp_len <- pool.pp_len + 1
  end

let create ?(tlb = true) () =
  let dummy_page = Page.create () in
  let dummy_data = Bytes.create 0 in
  {
    pages = Hashtbl.create 64;
    regions = [];
    total_pages = 0;
    fault_handler = None;
    demand_faults = 0;
    accesses = 0;
    tlb_enabled = tlb;
    tlb =
      Array.init tlb_size (fun _ ->
          {
            e_vpn = -1;
            e_gen = -1;
            e_pkru = 0;
            e_page = dummy_page;
            e_data = dummy_data;
            e_read = false;
            e_write = false;
            e_exec = false;
          });
    generation = 0;
    tlb_misses = 0;
    tlb_flushes = 0;
    tlb_hits_pushed = 0;
  }

let fault addr kind = raise (Fault { addr; kind })

(* Rewind to the freshly-created empty state, reusing the page table
   and TLB arena.  Deliberately counter-silent: destroying a space and
   creating a new one touches no global counter either, and recycled
   WFDs must be indistinguishable from destroy + create.  TLB entries
   are scrubbed (not just generation-invalidated) so a pooled space
   does not pin the dead request's pages. *)
(* Shared scrub targets for recycled TLB entries: a scrubbed entry can
   never hit ([e_vpn = -1] matches no lookup, [e_gen = -1] matches no
   bumped generation), so the page is never accessed — one immutable
   placeholder serves every address space on every domain. *)
let scrub_page = Page.create ()
let scrub_data = Bytes.create 0

let recycle t =
  Hashtbl.iter (fun _ p -> release_page p) t.pages;
  Hashtbl.reset t.pages;
  t.regions <- [];
  t.total_pages <- 0;
  t.fault_handler <- None;
  t.demand_faults <- 0;
  t.accesses <- 0;
  t.generation <- t.generation + 1;
  t.tlb_misses <- 0;
  t.tlb_flushes <- 0;
  t.tlb_hits_pushed <- 0;
  (* Drop heap references so a pooled shell pins no dead pages.  Only
     entries that ever held a real translation ([e_vpn >= 0]) need
     scrubbing; permission bits are left stale because they are only
     consulted after a vpn+generation match, which can't happen. *)
  Array.iter
    (fun e ->
      if e.e_vpn >= 0 then begin
        e.e_vpn <- -1;
        e.e_gen <- -1;
        e.e_page <- scrub_page;
        e.e_data <- scrub_data
      end)
    t.tlb

let hits t = if t.tlb_enabled then t.accesses - t.tlb_misses else 0

let sync_hit_counter t =
  let h = hits t in
  if h > t.tlb_hits_pushed then begin
    Sim.Stats.Counter.add c_tlb_hit (h - t.tlb_hits_pushed);
    t.tlb_hits_pushed <- h
  end

(* A generation bump invalidates every TLB entry at once. *)
let flush_tlb t =
  sync_hit_counter t;
  t.generation <- t.generation + 1;
  t.tlb_flushes <- t.tlb_flushes + 1;
  Sim.Stats.Counter.incr c_tlb_flush

let find_region t vpn =
  let rec go = function
    | [] -> None
    | r :: rest -> if vpn >= r.r_first && vpn <= r.r_last then Some r else go rest
  in
  go t.regions

(* First mapped vpn in [first, last], in ascending order, considering
   every region — used to reproduce map's historical conflict report. *)
let first_mapped_vpn_in t ~first ~last =
  List.fold_left
    (fun acc r ->
      if r.r_last < first || r.r_first > last then acc
      else
        let v = Stdlib.max r.r_first first in
        match acc with Some best when best <= v -> acc | _ -> Some v)
    None t.regions

let map t ~addr ~len ?(perm = Page.rw) ?(pkey = Prot.default_key) () =
  if addr land (Page.size - 1) <> 0 then
    invalid_arg "Address_space.map: addr not page aligned";
  if len <= 0 then invalid_arg "Address_space.map: len must be positive";
  let first = Page.vpn_of_addr addr in
  let count = Page.count_for len in
  let last = first + count - 1 in
  (match first_mapped_vpn_in t ~first ~last with
  | Some vpn ->
      invalid_arg
        (Printf.sprintf "Address_space.map: page 0x%x already mapped"
           (Page.addr_of_vpn vpn))
  | None -> ());
  t.regions <- { r_first = first; r_last = last; r_perm = perm; r_pkey = pkey } :: t.regions;
  t.total_pages <- t.total_pages + count;
  flush_tlb t

let unmap t ~addr ~len =
  let first = Page.vpn_of_addr addr in
  let count = Page.count_for len in
  if count > 0 then begin
    let last = first + count - 1 in
    (* Drop materialised pages in range.  For ranges much larger than
       the materialised set (slot teardown: hundreds of thousands of
       vpns, a handful of touched pages) scan the table instead. *)
    if count <= 2 * Hashtbl.length t.pages then
      for vpn = first to last do
        match Hashtbl.find_opt t.pages vpn with
        | Some p ->
            Hashtbl.remove t.pages vpn;
            release_page p
        | None -> ()
      done
    else begin
      let doomed =
        Hashtbl.fold
          (fun vpn p acc -> if vpn >= first && vpn <= last then (vpn, p) :: acc else acc)
          t.pages []
      in
      List.iter
        (fun (vpn, p) ->
          Hashtbl.remove t.pages vpn;
          release_page p)
        doomed
    end;
    (* Shrink / split region coverage. *)
    let keep = ref [] in
    List.iter
      (fun r ->
        if r.r_last < first || r.r_first > last then keep := r :: !keep
        else begin
          let inter_first = Stdlib.max r.r_first first in
          let inter_last = Stdlib.min r.r_last last in
          t.total_pages <- t.total_pages - (inter_last - inter_first + 1);
          if r.r_first < inter_first then
            keep := { r with r_last = inter_first - 1 } :: !keep;
          if r.r_last > inter_last then
            keep := { r with r_first = inter_last + 1 } :: !keep
        end)
      t.regions;
    t.regions <- !keep;
    flush_tlb t
  end

let is_mapped t addr = find_region t (Page.vpn_of_addr addr) <> None

let page_count t = t.total_pages
let mapped_bytes t = t.total_pages * Page.size

(* Materialise (or fetch) the page backing a vpn. *)
let lookup_vpn t vpn =
  match Hashtbl.find_opt t.pages vpn with
  | Some _ as found -> found
  | None -> (
      match find_region t vpn with
      | None -> None
      | Some r ->
          let p = acquire_page ~perm:r.r_perm ~pkey:r.r_pkey in
          Hashtbl.replace t.pages vpn p;
          Some p)

let get_page t addr =
  match lookup_vpn t (Page.vpn_of_addr addr) with
  | Some p -> p
  | None -> fault addr Unmapped

let iter_range t ~addr ~len f =
  if len > 0 then begin
    let first = Page.vpn_of_addr addr in
    let last = Page.vpn_of_addr (addr + len - 1) in
    for vpn = first to last do
      match lookup_vpn t vpn with
      | Some p -> f vpn p
      | None -> fault (Page.addr_of_vpn vpn) Unmapped
    done
  end

let pkey_mprotect t ~addr ~len key =
  flush_tlb t;
  iter_range t ~addr ~len (fun _ p -> p.Page.pkey <- key)

let mprotect t ~addr ~len perm =
  flush_tlb t;
  iter_range t ~addr ~len (fun _ p -> p.Page.perm <- perm)

let key_of t addr = (get_page t addr).Page.pkey

let serve_demand_fault t addr page =
  if not page.Page.populated then
    match t.fault_handler with
    | Some handler ->
        t.demand_faults <- t.demand_faults + 1;
        handler addr;
        page.Page.populated <- true
    | None -> page.Page.populated <- true

(* Permission check for one page under a given PKRU. *)
let check_page addr page ~pkru access =
  let perm_ok =
    match access with
    | Prot.Read -> page.Page.perm.Page.read
    | Prot.Write -> page.Page.perm.Page.write
    | Prot.Execute -> page.Page.perm.Page.exec
  in
  if not perm_ok then fault addr (Perm_denied access);
  if not (Prot.access_allowed pkru page.Page.pkey access) then
    fault addr (Pkey_denied (access, page.Page.pkey))

(* Full page walk: lookup, permission + PKRU check, demand-zero service.
   Only a successful access counts towards [accesses]. *)
let slow_checked_page t ~pkru addr access =
  let page = get_page t addr in
  check_page addr page ~pkru access;
  serve_demand_fault t addr page;
  page

(* TLB miss: walk, then refill the direct-mapped slot.  The page is
   populated by the time it enters the TLB (the walk served any demand
   fault), so hits can never skip a pending demand-zero fill. *)
let tlb_miss t e ~pkru addr access =
  t.tlb_misses <- t.tlb_misses + 1;
  Sim.Stats.Counter.incr c_tlb_miss;
  let page = slow_checked_page t ~pkru addr access in
  t.accesses <- t.accesses + 1;
  e.e_vpn <- Page.vpn_of_addr addr;
  e.e_gen <- t.generation;
  e.e_pkru <- Prot.bits pkru;
  e.e_page <- page;
  e.e_data <- Page.data page;
  e.e_read <- page.Page.perm.Page.read && Prot.can_read pkru page.Page.pkey;
  e.e_write <- page.Page.perm.Page.write && Prot.can_write pkru page.Page.pkey;
  e.e_exec <- page.Page.perm.Page.exec;
  page

let tlb_hit t = t.accesses <- t.accesses + 1

let checked_page t ~pkru addr access =
  if t.tlb_enabled then begin
    let vpn = addr lsr Page.shift in
    let e = Array.unsafe_get t.tlb (vpn land tlb_mask) in
    if
      e.e_vpn = vpn && e.e_gen = t.generation
      && e.e_pkru = Prot.bits pkru
      &&
      match access with
      | Prot.Read -> e.e_read
      | Prot.Write -> e.e_write
      | Prot.Execute -> e.e_exec
    then begin
      tlb_hit t;
      e.e_page
    end
    else tlb_miss t e ~pkru addr access
  end
  else begin
    let page = slow_checked_page t ~pkru addr access in
    t.accesses <- t.accesses + 1;
    page
  end

(* Byte access slow paths, kept out of line so the [@inline] fast
   paths below stay small enough to inline into callers. *)
let load_byte_slow t ~pkru addr off =
  if t.tlb_enabled then begin
    let vpn = addr lsr Page.shift in
    let e = Array.unsafe_get t.tlb (vpn land tlb_mask) in
    Bytes.get (Page.data (tlb_miss t e ~pkru addr Prot.Read)) off
  end
  else begin
    let page = slow_checked_page t ~pkru addr Prot.Read in
    t.accesses <- t.accesses + 1;
    Bytes.get (Page.data page) off
  end

let store_byte_slow t ~pkru addr off c =
  if t.tlb_enabled then begin
    let vpn = addr lsr Page.shift in
    let e = Array.unsafe_get t.tlb (vpn land tlb_mask) in
    let page = tlb_miss t e ~pkru addr Prot.Write in
    page.Page.populated <- true;
    Bytes.set (Page.data page) off c
  end
  else begin
    let page = slow_checked_page t ~pkru addr Prot.Write in
    t.accesses <- t.accesses + 1;
    page.Page.populated <- true;
    Bytes.set (Page.data page) off c
  end

let[@inline] load_byte t ~pkru addr =
  let vpn = addr lsr page_shift in
  let e = Array.unsafe_get t.tlb (vpn land tlb_mask) in
  if e.e_vpn = vpn && e.e_gen = t.generation && e.e_read && e.e_pkru = Prot.bits pkru
  then begin
    t.accesses <- t.accesses + 1;
    (* Offset is masked below Page.size and e_data is a full page.  A
       disabled TLB never fills entries, so e_vpn stays -1 and every
       access takes the slow path. *)
    Bytes.unsafe_get e.e_data (addr land page_mask)
  end
  else load_byte_slow t ~pkru addr (addr land page_mask)

let[@inline] store_byte t ~pkru addr c =
  let vpn = addr lsr page_shift in
  let e = Array.unsafe_get t.tlb (vpn land tlb_mask) in
  if e.e_vpn = vpn && e.e_gen = t.generation && e.e_write && e.e_pkru = Prot.bits pkru
  then begin
    t.accesses <- t.accesses + 1;
    Bytes.unsafe_set e.e_data (addr land page_mask) c
  end
  else store_byte_slow t ~pkru addr (addr land page_mask) c

(* Walk a range page by page, calling [f page page_offset buf_offset n]
   for each contiguous chunk. *)
let walk t ~pkru ~access addr len f =
  let pos = ref addr and done_ = ref 0 in
  while !done_ < len do
    let page = checked_page t ~pkru !pos access in
    let off = Page.offset_of_addr !pos in
    let n = Stdlib.min (Page.size - off) (len - !done_) in
    f page off !done_ n;
    if access = Prot.Write then page.Page.populated <- true;
    pos := !pos + n;
    done_ := !done_ + n
  done

let load_bytes t ~pkru addr len =
  let buf = Bytes.create len in
  walk t ~pkru ~access:Prot.Read addr len (fun page off boff n ->
      Bytes.blit (Page.data page) off buf boff n);
  buf

(* Traverse a readable range without materialising a copy: the page
   walk (permission checks, access and TLB accounting) is identical to
   [load_bytes], only the destination buffer is gone.  For consumers
   that own the bytes but never look at them — draining a transfer
   slot whose payload is modelled, not computed on. *)
let touch_bytes t ~pkru addr len =
  walk t ~pkru ~access:Prot.Read addr len (fun _ _ _ _ -> ())

let store_bytes t ~pkru addr src =
  let len = Bytes.length src in
  walk t ~pkru ~access:Prot.Write addr len (fun page off boff n ->
      Bytes.blit src boff (Page.data page) off n)

let load_int64 t ~pkru addr =
  let b = load_bytes t ~pkru addr 8 in
  Bytes.get_int64_le b 0

let store_int64 t ~pkru addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  store_bytes t ~pkru addr b

let blit t ~pkru ~src ~dst ~len =
  if len > 0 then
    if src < dst + len && dst < src + len then begin
      (* Overlapping ranges: load fully, then store — memmove semantics. *)
      let data = load_bytes t ~pkru src len in
      store_bytes t ~pkru dst data
    end
    else begin
      (* Disjoint ranges: copy page-chunk to page-chunk without an
         intermediate buffer.  Chunks are bounded by whichever of the
         two page boundaries comes first. *)
      let pos = ref 0 in
      while !pos < len do
        let s = src + !pos and d = dst + !pos in
        let spage = checked_page t ~pkru s Prot.Read in
        let dpage = checked_page t ~pkru d Prot.Write in
        let soff = Page.offset_of_addr s and doff = Page.offset_of_addr d in
        let n =
          Stdlib.min (Stdlib.min (Page.size - soff) (Page.size - doff)) (len - !pos)
        in
        Bytes.blit (Page.data spage) soff (Page.data dpage) doff n;
        dpage.Page.populated <- true;
        pos := !pos + n
      done
    end

let fill t ~pkru ~addr ~len c =
  walk t ~pkru ~access:Prot.Write addr len (fun page off _ n ->
      Bytes.fill (Page.data page) off n c)

let check_exec t ~pkru addr = ignore (checked_page t ~pkru addr Prot.Execute)

let set_fault_handler t h = t.fault_handler <- h

let populate_page t ~vpn data =
  match lookup_vpn t vpn with
  | None -> fault (Page.addr_of_vpn vpn) Unmapped
  | Some page ->
      let n = Stdlib.min (Bytes.length data) Page.size in
      Bytes.blit data 0 (Page.data page) 0 n;
      page.Page.populated <- true

let touched_fault_count t = t.demand_faults

let access_count t = t.accesses

let tlb_hit_count t =
  sync_hit_counter t;
  hits t
let tlb_miss_count t = t.tlb_misses
let tlb_flush_count t = t.tlb_flushes
