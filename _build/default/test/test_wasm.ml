(* Tests for the WASM-style VM: validator, interpreter semantics, AOT
   equivalence, WASI layer, runtime profiles. *)

open Wasm

let simple_module ?(exports = [ ("f", 0) ]) ?(memory_pages = 1) funcs =
  Wmodule.create ~memory_pages ~exports ~name:"t" funcs

let call_interp ?hosts m name args =
  Interp.call (Interp.instantiate ?hosts m) name (Array.of_list args)

let test_arith () =
  let open Instr in
  let body = [ Const 7L; Const 5L; Binop Sub; Const 3L; Binop Mul ] in
  let m = simple_module [ Builder.func ~name:"f" body ] in
  Alcotest.(check int64) "(7-5)*3" 6L (call_interp m "f" [])

let test_division_semantics () =
  let open Instr in
  let m = simple_module [ Builder.func ~name:"f" ~params:2 [ Local_get 0; Local_get 1; Binop Div_s ] ] in
  Alcotest.(check int64) "div" (-3L) (call_interp m "f" [ -7L; 2L ]);
  match call_interp m "f" [ 1L; 0L ] with
  | _ -> Alcotest.fail "division by zero must trap"
  | exception Interp.Trap _ -> ()

let test_locals_and_globals () =
  let open Instr in
  let m =
    Wmodule.create ~name:"t" ~globals:[ 10L ] ~exports:[ ("f", 0) ]
      [
        Builder.func ~name:"f" ~params:1 ~locals:1
          [
            Global_get 0;
            Local_get 0;
            Binop Add;
            Local_tee 1;
            Global_set 0;
            Local_get 1;
          ];
      ]
  in
  let inst = Interp.instantiate m in
  Alcotest.(check int64) "first call" 15L (Interp.call inst "f" [| 5L |]);
  Alcotest.(check int64) "global persisted" 15L (Interp.read_global inst 0);
  Alcotest.(check int64) "second call accumulates" 20L (Interp.call inst "f" [| 5L |])

let test_control_flow_loop () =
  Alcotest.(check int64) "sum 1..10" 55L (call_interp Builder.sum_to_n "sum" [ 10L ]);
  Alcotest.(check int64) "sum 0" 0L (call_interp Builder.sum_to_n "sum" [ 0L ])

let test_recursion () =
  Alcotest.(check int64) "fib 10" 55L (call_interp Builder.fib "fib" [ 10L ]);
  Alcotest.(check int64) "fib 1" 1L (call_interp Builder.fib "fib" [ 1L ])

let test_branching_depths () =
  let open Instr in
  (* block (block (br 1)); leaves both blocks. *)
  let body = [ Const 1L; Block [ Block [ Br 1 ]; Const 99L; Drop ] ] in
  let m = simple_module [ Builder.func ~name:"f" body ] in
  Alcotest.(check int64) "br skips inner rest" 1L (call_interp m "f" [])

let test_select_eqz () =
  let open Instr in
  let m =
    simple_module
      [ Builder.func ~name:"f" ~params:1 [ Const 10L; Const 20L; Local_get 0; Select ] ]
  in
  Alcotest.(check int64) "select true" 10L (call_interp m "f" [ 1L ]);
  Alcotest.(check int64) "select false" 20L (call_interp m "f" [ 0L ])

let test_memory_ops () =
  let m = Builder.memory_fill in
  let inst = Interp.instantiate m in
  ignore (Interp.call inst "fill" [| 100L; 7L |]);
  Alcotest.(check int64) "checksum" 700L (Interp.call inst "checksum" [| 100L |]);
  let mem = Interp.read_memory inst 0 100 in
  Alcotest.(check char) "memory written" '\007' (Bytes.get mem 99)

let test_memory_bounds_trap () =
  let open Instr in
  let m = simple_module [ Builder.func ~name:"f" [ Const 70_000L; Load8 0 ] ] in
  match call_interp m "f" [] with
  | _ -> Alcotest.fail "oob load must trap"
  | exception Interp.Trap _ -> ()

let test_memory_grow () =
  let open Instr in
  let m =
    simple_module
      [ Builder.func ~name:"f" [ Memory_size; Drop; Const 2L; Memory_grow ] ]
  in
  let inst = Interp.instantiate m in
  Alcotest.(check int64) "grow returns old pages" 1L (Interp.call inst "f" [||]);
  Alcotest.(check int) "memory grew" (3 * Wmodule.page_size) (Interp.memory_size inst)

let test_fuel_exhaustion () =
  let open Instr in
  let m = simple_module [ Builder.func ~name:"f" [ Loop [ Br 0 ] ] ] in
  match Interp.call ~fuel:10_000 (Interp.instantiate m) "f" [||] with
  | _ -> Alcotest.fail "infinite loop must exhaust fuel"
  | exception Interp.Trap msg ->
      Alcotest.(check string) "fuel message" "out of fuel" msg

let test_unreachable () =
  let m = simple_module [ Builder.func ~name:"f" [ Instr.Unreachable ] ] in
  match call_interp m "f" [] with
  | _ -> Alcotest.fail "unreachable must trap"
  | exception Interp.Trap _ -> ()

let test_validate_errors () =
  let open Instr in
  let bad_local = simple_module [ Builder.func ~name:"f" [ Local_get 3 ] ] in
  (match Validate.validate bad_local with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad local index must fail validation");
  let bad_br = simple_module [ Builder.func ~name:"f" [ Br 0 ] ] in
  (match Validate.validate bad_br with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "branch beyond nesting must fail");
  let bad_call = simple_module [ Builder.func ~name:"f" [ Call 5 ] ] in
  (match Validate.validate bad_call with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown callee must fail");
  let bad_export = Wmodule.create ~name:"t" ~exports:[ ("g", 9) ] [] in
  (match Validate.validate bad_export with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad export must fail");
  let bad_data = Wmodule.create ~name:"t" ~memory_pages:1 ~data:[ (65533, "mydata") ] [] in
  match Validate.validate bad_data with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oversized data initialiser must fail"

let test_host_imports () =
  let open Instr in
  let m =
    Wmodule.create ~name:"t" ~imports:[ "add3" ] ~exports:[ ("f", 1) ]
      [ Builder.func ~name:"f" [ Const 1L; Const 2L; Const 3L; Call 0 ] ]
  in
  let hosts = [ ("add3", fun _ args -> Int64.add args.(0) (Int64.add args.(1) args.(2))) ] in
  Alcotest.(check int64) "host call" 6L (call_interp ~hosts m "f" []);
  match Interp.instantiate m with
  | _ -> Alcotest.fail "missing import must fail instantiation"
  | exception Invalid_argument _ -> ()

let test_data_initialisers () =
  let open Instr in
  let m =
    Wmodule.create ~name:"t" ~memory_pages:1 ~data:[ (10, "abc") ] ~exports:[ ("f", 0) ]
      [ Builder.func ~name:"f" [ Const 12L; Load8 0 ] ]
  in
  Alcotest.(check int64) "data loaded" (Int64.of_int (Char.code 'c')) (call_interp m "f" [])

(* --- AOT --- *)

let test_aot_matches_interp_kernels () =
  List.iter
    (fun (m, export, args, label) ->
      let i = call_interp m export args in
      let a = Aot.call (Aot.instantiate (Aot.compile m)) export (Array.of_list args) in
      Alcotest.(check int64) label i a)
    [
      (Builder.sum_to_n, "sum", [ 100L ], "sum");
      (Builder.fib, "fib", [ 12L ], "fib");
    ]

let test_aot_bubble_sort_really_sorts () =
  let compiled = Aot.compile Builder.bubble_sort in
  let inst = Aot.instantiate compiled in
  let n = 64 in
  let data = Sim.Rng.bytes (Sim.Rng.create 9) n in
  Aot.write_memory inst 0 data;
  ignore (Aot.call inst "sort" [| Int64.of_int n |]);
  let out = Aot.read_memory inst 0 n in
  let sorted = Bytes.copy data in
  let arr = Array.init n (fun i -> Bytes.get sorted i) in
  Array.sort compare arr;
  Array.iteri (fun i c -> Bytes.set sorted i c) arr;
  Alcotest.(check bytes) "bubble sort output" sorted out

let test_aot_image_is_clean () =
  let compiled = Aot.compile Builder.sum_to_n in
  match Isa.Scanner.verdict (Aot.to_image compiled) with
  | Isa.Scanner.Clean -> ()
  | v -> Alcotest.fail (Format.asprintf "AOT image not clean: %a" Isa.Scanner.pp_verdict v)

(* qcheck: random straight-line arithmetic programs agree between
   interpreter and AOT. *)
let random_prog_gen =
  QCheck.Gen.(
    let instr =
      oneof
        [
          map (fun v -> Instr.Const (Int64.of_int v)) (int_range (-100) 100);
          oneofl
            Instr.
              [
                Binop Add; Binop Sub; Binop Mul; Binop And; Binop Or; Binop Xor;
                Binop Lt_s; Binop Gt_s; Eqz;
              ];
          oneofl Instr.[ Local_get 0; Local_get 1; Local_tee 0; Drop ];
        ]
    in
    list_size (int_range 1 30) instr)

let aot_equivalence_property =
  QCheck.Test.make ~name:"aot: agrees with interpreter on random programs" ~count:300
    (QCheck.make random_prog_gen)
    (fun prog ->
      (* Pad the stack so pops never underflow, and make both locals
         available. *)
      let body = List.init 40 (fun i -> Instr.Const (Int64.of_int i)) @ prog in
      let m = simple_module [ Builder.func ~name:"f" ~params:2 body ] in
      let run_interp () =
        match call_interp m "f" [ 3L; 4L ] with
        | v -> Ok v
        | exception Interp.Trap msg -> Error msg
      in
      let run_aot () =
        match Aot.call (Aot.instantiate (Aot.compile m)) "f" [| 3L; 4L |] with
        | v -> Ok v
        | exception Aot.Trap msg -> Error msg
      in
      run_interp () = run_aot ())

(* --- WASI --- *)

let make_recorder () =
  let written = Buffer.create 16 in
  let sys =
    {
      Wasi.null_system with
      Wasi.sys_write =
        (fun ~fd data ->
          if fd = 1 then begin
            Buffer.add_bytes written data;
            Bytes.length data
          end
          else -1);
      Wasi.sys_clock_now = (fun () -> 123L);
    }
  in
  (sys, written)

let test_wasi_fd_write () =
  let open Instr in
  let m =
    Wmodule.create ~name:"t" ~imports:[ "fd_write" ] ~memory_pages:1
      ~data:[ (0, "hi wasi") ] ~exports:[ ("main", 1) ]
      [ Builder.func ~name:"main" [ Const 1L; Const 0L; Const 7L; Call 0 ] ]
  in
  let sys, written = make_recorder () in
  let inst = Interp.instantiate ~hosts:(Wasi.interp_imports sys) m in
  Alcotest.(check int64) "bytes written" 7L (Interp.call inst "main" [||]);
  Alcotest.(check string) "content" "hi wasi" (Buffer.contents written)

let test_wasi_clock () =
  let open Instr in
  let m =
    Wmodule.create ~name:"t" ~imports:[ "clock_time_get" ] ~exports:[ ("main", 1) ]
      [ Builder.func ~name:"main" [ Const 0L; Const 0L; Const 0L; Call 0 ] ]
  in
  let sys, _ = make_recorder () in
  let inst = Interp.instantiate ~hosts:(Wasi.interp_imports sys) m in
  Alcotest.(check int64) "clock" 123L (Interp.call inst "main" [||])

let test_wasi_buffer_interfaces () =
  let open Instr in
  (* buffer_register("s", memory[16..20]) then access_buffer("s") into
     memory[32..]. *)
  let packed = Int64.logor (Int64.shift_left 16L 32) 4L in
  let m =
    Wmodule.create ~name:"t"
      ~imports:[ "buffer_register"; "access_buffer" ]
      ~memory_pages:1
      ~data:[ (0, "s"); (16, "DATA") ]
      ~exports:[ ("reg", 2); ("acc", 3) ]
      [
        Builder.func ~name:"reg" [ Const 0L; Const 1L; Const packed; Call 0 ];
        Builder.func ~name:"acc" [ Const 0L; Const 1L; Const 32L; Call 1 ];
      ]
  in
  let store = Hashtbl.create 4 in
  let sys =
    {
      Wasi.null_system with
      Wasi.sys_buffer_register =
        (fun slot data ->
          Hashtbl.replace store slot data;
          true);
      Wasi.sys_access_buffer = (fun slot -> Hashtbl.find_opt store slot);
    }
  in
  let inst = Interp.instantiate ~hosts:(Wasi.interp_imports sys) m in
  Alcotest.(check int64) "register ok" 0L (Interp.call inst "reg" [||]);
  Alcotest.(check int64) "access returns length" 4L (Interp.call inst "acc" [||]);
  Alcotest.(check bytes) "data landed" (Bytes.of_string "DATA")
    (Interp.read_memory inst 32 4)

(* --- binary module encoding --- *)

let modules_equal (a : Wmodule.t) (b : Wmodule.t) =
  a.Wmodule.name = b.Wmodule.name
  && a.Wmodule.imports = b.Wmodule.imports
  && a.Wmodule.funcs = b.Wmodule.funcs
  && a.Wmodule.globals = b.Wmodule.globals
  && a.Wmodule.memory_pages = b.Wmodule.memory_pages
  && a.Wmodule.data = b.Wmodule.data
  && a.Wmodule.exports = b.Wmodule.exports

let test_encode_roundtrip_kernels () =
  List.iter
    (fun m ->
      let decoded = Encode.decode (Encode.encode m) in
      if not (modules_equal m decoded) then
        Alcotest.fail (m.Wmodule.name ^ ": binary roundtrip mismatch"))
    [ Builder.sum_to_n; Builder.fib; Builder.memory_fill; Builder.bubble_sort ]

let test_encode_decoded_still_runs () =
  let m = Encode.decode (Encode.encode Builder.sum_to_n) in
  Alcotest.(check int64) "decoded module executes" 5050L
    (Interp.call (Interp.instantiate m) "sum" [| 100L |])

let test_encode_rejects_garbage () =
  List.iter
    (fun b ->
      match Encode.decode_result b with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage must not decode")
    [
      Bytes.of_string "";
      Bytes.of_string "WASM";
      Bytes.of_string " asm";  (* truncated after magic *)
      Bytes.cat (Encode.encode Builder.fib) (Bytes.of_string "x");  (* trailing *)
    ]

let test_encode_negative_consts () =
  let open Instr in
  let m =
    Wmodule.create ~name:"neg" ~exports:[ ("f", 0) ]
      [ Builder.func ~name:"f" [ Const (-123456789L); Const Int64.min_int; Binop Add ] ]
  in
  let decoded = Encode.decode (Encode.encode m) in
  Alcotest.(check bool) "sleb roundtrip of negatives" true (modules_equal m decoded)

let sleb_roundtrip_property =
  QCheck.Test.make ~name:"sleb128: roundtrip over random int64" ~count:500
    QCheck.(map Int64.of_int int)
    (fun v ->
      let buf = Buffer.create 10 in
      Encode.sleb_encode buf v;
      let m =
        Wmodule.create ~name:"x" ~exports:[ ("f", 0) ]
          [ Builder.func ~name:"f" [ Instr.Const v ] ]
      in
      match (Encode.decode (Encode.encode m)).Wmodule.funcs with
      | [ { Wmodule.body = [ Instr.Const v' ]; _ } ] -> Int64.equal v v'
      | _ -> false)

let encode_roundtrip_property =
  QCheck.Test.make ~name:"binary encoding: random modules roundtrip" ~count:150
    (QCheck.make
       QCheck.Gen.(
         let instr =
           oneof
             [
               map (fun v -> Instr.Const (Int64.of_int v)) int;
               oneofl Instr.[ Nop; Drop; Eqz; Return; Memory_size ];
               map (fun n -> Instr.Local_get (n land 0xFF)) int;
               map (fun n -> Instr.Br (n land 0xF)) int;
             ]
         in
         let body = list_size (int_range 0 10) instr in
         map2
           (fun body data ->
             Wmodule.create ~name:"rand" ~data:[ (0, data) ]
               ~exports:[ ("f", 0) ]
               [ { Wmodule.fname = "f"; params = 1; locals = 2; body } ])
           body
           (string_size (int_range 0 30))))
    (fun m -> modules_equal m (Encode.decode (Encode.encode m)))

(* --- text format --- *)

let test_wat_roundtrip_kernels () =
  List.iter
    (fun m ->
      let back = Wat.parse (Wat.print m) in
      if not (modules_equal m back) then
        Alcotest.fail (m.Wmodule.name ^ ": wat roundtrip mismatch"))
    [ Builder.sum_to_n; Builder.fib; Builder.memory_fill; Builder.bubble_sort ]

let test_wat_hand_written () =
  let src = {|
    ;; double the argument and add the global
    (module "demo"
      (memory 1)
      (global 100)
      (data 0 "hi
")
      (func "main" (param 1) (local 0)
        (local.get 0) (const 2) (mul) (global.get 0) (add))
      (export "main" 0))
  |} in
  let m = Wat.parse src in
  Alcotest.(check string) "name" "demo" m.Wmodule.name;
  Alcotest.(check int64) "runs" 142L
    (Interp.call (Interp.instantiate m) "main" [| 21L |]);
  Alcotest.(check bool) "data decoded with escape" true
    (m.Wmodule.data = [ (0, "hi
") ])

let test_wat_errors () =
  List.iter
    (fun src ->
      match Wat.parse_result src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("must not parse: " ^ src))
    [
      "";
      "(module";
      "(module \"x\" (bogus))";
      "(module \"x\" (func \"f\" (param 0) (local 0) (const nope)))";
      "(notmodule \"x\")";
      "(module \"x\") trailing";
    ]

let wat_roundtrip_property =
  QCheck.Test.make ~name:"wat: print/parse roundtrip on random modules" ~count:150
    (QCheck.make
       QCheck.Gen.(
         let instr =
           oneof
             [
               map (fun v -> Instr.Const (Int64.of_int v)) int;
               oneofl
                 Instr.[ Nop; Drop; Eqz; Return; Binop Add; Binop Xor; Memory_grow ];
               map (fun n -> Instr.Local_set (n land 0xF)) int;
               map (fun body -> Instr.Loop body) (return [ Instr.Br 0 ]);
             ]
         in
         map2
           (fun body data ->
             Wmodule.create ~name:"w" ~imports:[ "fd_write" ] ~globals:[ 5L; -9L ]
               ~data:[ (3, data) ] ~exports:[ ("f", 1) ]
               [ { Wmodule.fname = "f"; params = 2; locals = 1; body } ])
           (list_size (int_range 0 12) instr)
           (string_size (int_range 0 12))))
    (fun m -> modules_equal m (Wat.parse (Wat.print m)))

(* --- runtime profiles --- *)

let test_runtime_profiles () =
  Alcotest.(check bool) "wasmtime ~30% slower than wavm" true
    (let ratio =
       Runtime.slowdown_vs_native Runtime.wasmtime /. Runtime.slowdown_vs_native Runtime.wavm
     in
     ratio > 1.25 && ratio < 1.35);
  Alcotest.(check bool) "wavm compiles slower" true
    (Sim.Units.( > ) Runtime.wavm.Runtime.compile_per_instr
       Runtime.wasmtime.Runtime.compile_per_instr)

let test_runtime_run_charges_time () =
  let clock = Sim.Clock.create () in
  let loaded = Runtime.load Runtime.wasmtime ~clock Builder.sum_to_n in
  let after_load = Sim.Clock.now clock in
  Alcotest.(check bool) "load charged" true (Sim.Units.( > ) after_load Sim.Units.zero);
  let inst = Runtime.instantiate loaded ~clock ~system:Wasi.null_system in
  let result = Runtime.run loaded ~clock ~instance:inst "sum" [| 1000L |] in
  Alcotest.(check int64) "computed" 500500L result;
  Alcotest.(check bool) "execution charged" true
    (Sim.Units.( > ) (Sim.Clock.now clock) after_load)

let test_instruction_counting () =
  let inst = Interp.instantiate Builder.sum_to_n in
  ignore (Interp.call inst "sum" [| 10L |]);
  let ten = Interp.executed inst in
  ignore (Interp.call inst "sum" [| 20L |]);
  let twenty = Interp.executed inst - ten in
  Alcotest.(check bool) "count scales with work" true (twenty > ten)

let suite =
  [
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "division" `Quick test_division_semantics;
    Alcotest.test_case "locals and globals" `Quick test_locals_and_globals;
    Alcotest.test_case "loop (sum)" `Quick test_control_flow_loop;
    Alcotest.test_case "recursion (fib)" `Quick test_recursion;
    Alcotest.test_case "branch depths" `Quick test_branching_depths;
    Alcotest.test_case "select/eqz" `Quick test_select_eqz;
    Alcotest.test_case "memory ops" `Quick test_memory_ops;
    Alcotest.test_case "memory bounds trap" `Quick test_memory_bounds_trap;
    Alcotest.test_case "memory grow" `Quick test_memory_grow;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "unreachable traps" `Quick test_unreachable;
    Alcotest.test_case "validator errors" `Quick test_validate_errors;
    Alcotest.test_case "host imports" `Quick test_host_imports;
    Alcotest.test_case "data initialisers" `Quick test_data_initialisers;
    Alcotest.test_case "aot matches interp kernels" `Quick test_aot_matches_interp_kernels;
    Alcotest.test_case "aot bubble sort" `Quick test_aot_bubble_sort_really_sorts;
    Alcotest.test_case "aot image passes scanner" `Quick test_aot_image_is_clean;
    QCheck_alcotest.to_alcotest aot_equivalence_property;
    Alcotest.test_case "wasi fd_write" `Quick test_wasi_fd_write;
    Alcotest.test_case "wasi clock" `Quick test_wasi_clock;
    Alcotest.test_case "wasi buffer interfaces" `Quick test_wasi_buffer_interfaces;
    Alcotest.test_case "encode roundtrip kernels" `Quick test_encode_roundtrip_kernels;
    Alcotest.test_case "decoded module runs" `Quick test_encode_decoded_still_runs;
    Alcotest.test_case "encode rejects garbage" `Quick test_encode_rejects_garbage;
    Alcotest.test_case "encode negative consts" `Quick test_encode_negative_consts;
    QCheck_alcotest.to_alcotest sleb_roundtrip_property;
    QCheck_alcotest.to_alcotest encode_roundtrip_property;
    Alcotest.test_case "wat roundtrip kernels" `Quick test_wat_roundtrip_kernels;
    Alcotest.test_case "wat hand-written module" `Quick test_wat_hand_written;
    Alcotest.test_case "wat errors" `Quick test_wat_errors;
    QCheck_alcotest.to_alcotest wat_roundtrip_property;
    Alcotest.test_case "runtime profiles" `Quick test_runtime_profiles;
    Alcotest.test_case "runtime charges virtual time" `Quick test_runtime_run_charges_time;
    Alcotest.test_case "instruction counting" `Quick test_instruction_counting;
  ]
