lib/baselines/as_adaptive.mli: Platform Sim
