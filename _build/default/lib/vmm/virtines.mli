(** Virtines: KVM micro-contexts with no guest kernel.

    Removing the guest kernel entirely brings start latency to ~23 ms
    (Fig. 2; 22.8 ms in Fig. 10), but syscalls from the function are
    serviced directly by the host kernel, so the host loses the extra
    isolation layer — the security trade-off the paper points out. *)

val profile : Sandbox.profile
