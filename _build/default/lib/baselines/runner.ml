open Workloads
open Sim

type instance_info = {
  stage_index : int;
  fn_name : string;
  instance : int;
  total : int;
}

type hooks = {
  boot : instance_info -> Clock.t -> unit;
  make_fctx :
    instance_info -> clock:Clock.t -> phase:(string -> (unit -> unit) -> unit) -> Fctx.t;
  instance_rss : instance_info -> int;
  cpu_tax : float;
}

type result = {
  e2e : Units.time;
  cold_start : Units.time;
  phase_totals : (string * Units.time) list;
  cpu_time : Units.time;
  peak_rss : int;
}

let run ?(cores = 64) ?(dispatch_latency = Units.us 15) ?(trigger_overhead = Units.zero)
    hooks stages =
  let t0 = Units.zero in
  let stage_ready = ref trigger_overhead in
  let cold_start = ref None in
  let phase_totals : (string, Units.time) Hashtbl.t = Hashtbl.create 8 in
  let cpu_time = ref Units.zero in
  let peak_rss = ref 0 in
  let run_stage stage_index (fn_name, instances, kernel) =
    let dispatch = ref !stage_ready in
    let stage_rss = ref 0 in
    let durations =
      List.init instances (fun i ->
          let info = { stage_index; fn_name; instance = i; total = instances } in
          dispatch := Units.add !dispatch dispatch_latency;
          let start = !dispatch in
          let clock = Clock.create ~at:start () in
          hooks.boot info clock;
          (match !cold_start with
          | None -> cold_start := Some (Clock.now clock)
          | Some _ -> ());
          let phase name f =
            let p0 = Clock.now clock in
            let record () =
              let spent = Clock.elapsed_since clock p0 in
              let prev =
                match Hashtbl.find_opt phase_totals name with
                | Some t -> t
                | None -> Units.zero
              in
              Hashtbl.replace phase_totals name (Units.add prev spent)
            in
            match f () with
            | () -> record ()
            | exception e ->
                record ();
                raise e
          in
          let fctx = hooks.make_fctx info ~clock ~phase in
          kernel fctx;
          stage_rss := !stage_rss + hooks.instance_rss info;
          let raw = Clock.elapsed_since clock start in
          Units.scale raw (1.0 +. hooks.cpu_tax))
    in
    let placements =
      Hostos.Sched.schedule ~cores ~ready:!stage_ready ~dispatch_latency durations
    in
    List.iter (fun d -> cpu_time := Units.add !cpu_time d) durations;
    peak_rss := Stdlib.max !peak_rss !stage_rss;
    stage_ready := Hostos.Sched.makespan placements
  in
  List.iteri run_stage stages;
  {
    e2e = Units.sub !stage_ready t0;
    cold_start =
      (match !cold_start with Some c -> Units.sub c t0 | None -> Units.zero);
    phase_totals =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) phase_totals [] |> List.sort compare;
    cpu_time = !cpu_time;
    peak_rss = !peak_rss;
  }
