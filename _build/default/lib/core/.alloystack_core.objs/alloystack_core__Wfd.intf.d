lib/core/wfd.mli: Buffer Ext Fsim Hashtbl Hostos Mem Sim
