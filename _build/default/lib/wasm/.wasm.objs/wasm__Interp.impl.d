lib/wasm/interp.ml: Array Bytes Char Format Hashtbl Instr Int64 List Printf String Validate Wmodule
