open Sim

type name =
  | Open
  | Close
  | Read
  | Write
  | Mmap
  | Munmap
  | Mprotect
  | Pkey_mprotect
  | Pkey_alloc
  | Clone
  | Futex
  | Pipe2
  | Socket
  | Bind
  | Listen
  | Connect
  | Accept
  | Sendto
  | Recvfrom
  | Epoll_wait
  | Gettimeofday
  | Dlmopen
  | Userfaultfd

type interception = Direct | Ptrace | Vmexit

(* Direct-path costs (ns).  Small syscalls on a ~2GHz Xeon are in the
   0.3-1.5us range; mmap/clone are heavier; dlmopen dominates because it
   opens, maps and relocates an ELF namespace. *)
let direct_ns = function
  | Gettimeofday -> 60 (* vDSO *)
  | Read | Write -> 450
  | Open -> 1_300
  | Close -> 400
  | Mmap -> 1_800
  | Munmap -> 1_500
  | Mprotect -> 1_100
  | Pkey_mprotect -> 1_250
  | Pkey_alloc -> 700
  | Clone -> 28_000
  | Futex -> 550
  | Pipe2 -> 1_400
  | Socket -> 1_900
  | Bind -> 900
  | Listen -> 700
  | Connect -> 14_000
  | Accept -> 9_000
  | Sendto -> 1_700
  | Recvfrom -> 1_600
  | Epoll_wait -> 1_100
  | Dlmopen -> 380_000
  | Userfaultfd -> 2_200

let cost ?(via = Direct) name =
  let base = direct_ns name in
  let ns =
    match via with
    | Direct -> base
    | Ptrace ->
        (* Two ptrace stops (entry/exit), sentry handling, then the real
           syscall: roughly an order of magnitude on small calls. *)
        (base * 3) + 9_000
    | Vmexit ->
        (* VM exit + VMM emulation + re-entry on top of the guest's own
           kernel work. *)
        base + 2_500
  in
  Units.ns ns

let pp_name fmt n =
  let s =
    match n with
    | Open -> "open"
    | Close -> "close"
    | Read -> "read"
    | Write -> "write"
    | Mmap -> "mmap"
    | Munmap -> "munmap"
    | Mprotect -> "mprotect"
    | Pkey_mprotect -> "pkey_mprotect"
    | Pkey_alloc -> "pkey_alloc"
    | Clone -> "clone"
    | Futex -> "futex"
    | Pipe2 -> "pipe2"
    | Socket -> "socket"
    | Bind -> "bind"
    | Listen -> "listen"
    | Connect -> "connect"
    | Accept -> "accept"
    | Sendto -> "sendto"
    | Recvfrom -> "recvfrom"
    | Epoll_wait -> "epoll_wait"
    | Gettimeofday -> "gettimeofday"
    | Dlmopen -> "dlmopen"
    | Userfaultfd -> "userfaultfd"
  in
  Format.pp_print_string fmt s
