lib/core/asstd.mli: Hashtbl Libos_socket Netsim Sim Wasm Wfd Workflow
