(** FaasData: the typed, serialisable values that flow through
    AsBuffers.

    The Rust original derives [FaasData] on user structs; here a small
    structural value type plays that role.  Every value has a
    {e fingerprint} — a structural type hash — which [alloc_buffer] /
    [acquire_buffer] compare so a receiver cannot misinterpret a
    buffer written with a different type (Table 2's [fingerprint]
    parameter). *)

type t =
  | Unit
  | Int of int64
  | Str of string
  | Raw of bytes  (** Bulk payloads (the benchmark data plane). *)
  | Pair of t * t
  | List of t list
  | Record of (string * t) list

val fingerprint : t -> int64
(** Structural type hash: depends on the shape (constructors and record
    field names), not on payload contents — two values of the same
    "type" share a fingerprint. *)

val encode : t -> bytes
(** Tag-length-value encoding. *)

val decode : bytes -> t
(** Raises [Invalid_argument] on malformed input. *)

val encoded_size : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val record_get : t -> string -> t
(** Field of a [Record]; raises [Not_found] / [Invalid_argument]. *)
