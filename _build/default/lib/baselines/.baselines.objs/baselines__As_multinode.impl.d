lib/baselines/as_multinode.ml: Alloystack_core Array As_platform Asbuffer Asstd Bytes Clock Errno Fctx Fsim Hashtbl List Netsim Platform Printf Sim Stdlib Units Visor Wfd Workflow Workloads
