lib/workloads/pipe_app.mli: Fctx
