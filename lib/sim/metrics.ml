type histogram = {
  h_name : string;
  buckets : int array;  (* 64 log2 buckets; index via [bucket_index] *)
  samples : Stats.t;
}

type gauge = { g_name : string; mutable g_value : float }

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h = { h_name = name; buckets = Array.make 64 0; samples = Stats.create () } in
      Hashtbl.replace histograms name h;
      h

(* Bucket on the integer part so the boundary behaviour is exact:
   bucket 0 <-> v < 1, bucket i <-> 2^(i-1) <= v < 2^i.  Int64 bit
   length is deterministic where float log2 near powers of two is not. *)
let bucket_index v =
  let v = if v < 0.0 then 0.0 else v in
  let n = Int64.of_float v in
  let rec bits acc n = if n = 0L then acc else bits (acc + 1) (Int64.shift_right_logical n 1) in
  let i = bits 0 n in
  if i > 63 then 63 else i

let bucket_bound i = 2.0 ** float_of_int i

let observe h v =
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  Stats.add h.samples v

let observe_time h d = observe h (Int64.to_float (Units.to_ns d))

let histogram_count h = Stats.count h.samples
let histogram_sum h = Stats.sum h.samples

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      Hashtbl.replace gauges name g;
      g

let set_gauge g v = g.g_value <- v
let max_gauge g v = if v > g.g_value then g.g_value <- v
let gauge_value g = g.g_value

type histo_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
  hs_buckets : (int * int) list;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : histo_snapshot list;
}

let snapshot_histogram h =
  let empty = Stats.is_empty h.samples in
  let buckets = ref [] in
  for i = 63 downto 0 do
    if h.buckets.(i) > 0 then buckets := (i, h.buckets.(i)) :: !buckets
  done;
  {
    hs_name = h.h_name;
    hs_count = Stats.count h.samples;
    hs_sum = Stats.sum h.samples;
    hs_min = (if empty then 0.0 else Stats.min h.samples);
    hs_max = (if empty then 0.0 else Stats.max h.samples);
    hs_p50 = (if empty then 0.0 else Stats.p50 h.samples);
    hs_p90 = (if empty then 0.0 else Stats.p90 h.samples);
    hs_p99 = (if empty then 0.0 else Stats.p99 h.samples);
    hs_buckets = !buckets;
  }

let snapshot () =
  let gs =
    Hashtbl.fold (fun n g acc -> (n, g.g_value) :: acc) gauges []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let hs =
    Hashtbl.fold (fun _ h acc -> snapshot_histogram h :: acc) histograms []
    |> List.sort (fun a b -> String.compare a.hs_name b.hs_name)
  in
  { snap_counters = Stats.counters (); snap_gauges = gs; snap_histograms = hs }

let reset () =
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 64 0;
      Stats.clear h.samples)
    histograms;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges;
  Stats.reset_counters ()
