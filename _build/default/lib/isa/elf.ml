let magic = "\x7fASE"

type symbol = { sym_name : string; offset : int }

type t = {
  toolchain : Image.toolchain;
  entry : string;
  symbols : symbol list;
  text : string;
}

exception Malformed of string

let toolchain_code = function
  | Image.Rust_as_std -> 0
  | Image.Rust_plain_std -> 1
  | Image.Wasm_aot -> 2
  | Image.Native_c -> 3

let toolchain_of_code = function
  | 0 -> Image.Rust_as_std
  | 1 -> Image.Rust_plain_std
  | 2 -> Image.Wasm_aot
  | 3 -> Image.Native_c
  | c -> raise (Malformed (Printf.sprintf "unknown toolchain %d" c))

let of_image ?entry (image : Image.t) =
  let entry = match entry with Some e -> e | None -> image.Image.name in
  let symbols =
    List.mapi
      (fun i off ->
        { sym_name = (if i = 0 then entry else Printf.sprintf "insn_%d" i); offset = off })
      (Image.boundaries image)
  in
  { toolchain = image.Image.toolchain; entry; symbols; text = Image.code image }

let add_u32 buf n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Buffer.add_bytes buf b

let add_str buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let store t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  add_u32 buf (toolchain_code t.toolchain);
  add_str buf t.entry;
  add_u32 buf (List.length t.symbols);
  List.iter
    (fun s ->
      add_str buf s.sym_name;
      add_u32 buf s.offset)
    t.symbols;
  add_str buf t.text;
  Buffer.to_bytes buf

type cursor = { data : bytes; mutable pos : int }

let read_u32 c =
  if c.pos + 4 > Bytes.length c.data then raise (Malformed "truncated u32");
  let v = Int32.to_int (Bytes.get_int32_le c.data c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then raise (Malformed "negative length");
  v

let read_str c =
  let n = read_u32 c in
  if c.pos + n > Bytes.length c.data then raise (Malformed "truncated string");
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let load data =
  if Bytes.length data < 4 || Bytes.sub_string data 0 4 <> magic then
    raise (Malformed "bad magic");
  let c = { data; pos = 4 } in
  let toolchain = toolchain_of_code (read_u32 c) in
  let entry = read_str c in
  let nsyms = read_u32 c in
  if nsyms > Bytes.length data then raise (Malformed "symbol count implausible");
  let symbols =
    List.init nsyms (fun _ ->
        let sym_name = read_str c in
        let offset = read_u32 c in
        { sym_name; offset })
  in
  let text = read_str c in
  if c.pos <> Bytes.length data then raise (Malformed "trailing bytes");
  List.iter
    (fun s ->
      if s.offset < 0 || s.offset > String.length text then
        raise (Malformed "symbol offset out of text"))
    symbols;
  { toolchain; entry; symbols; text }

type decoded =
  | Isa_nop
  | Isa_mov_imm of int32
  | Isa_mov_reg
  | Isa_add
  | Isa_load
  | Isa_store
  | Isa_jmp of int
  | Isa_call of int  (** Offset of the displacement in the text. *)
  | Isa_ret
  | Isa_wrpkru
  | Isa_syscall
  | Isa_sysenter
  | Isa_int of int

(* Instruction decoder for the container's text: greedy, opcode-driven.
   Returns None if any byte fails to decode (foreign binary). *)
let decode_insts text =
  let n = String.length text in
  let byte i = Char.code text.[i] in
  let rec go pos acc =
    if pos = n then Some (List.rev acc)
    else begin
      let take len inst = go (pos + len) (inst :: acc) in
      match byte pos with
      | 0x90 -> take 1 Isa_nop
      | 0xB8 when pos + 5 <= n ->
          let v =
            Int32.logor
              (Int32.of_int (byte (pos + 1)))
              (Int32.logor
                 (Int32.shift_left (Int32.of_int (byte (pos + 2))) 8)
                 (Int32.logor
                    (Int32.shift_left (Int32.of_int (byte (pos + 3))) 16)
                    (Int32.shift_left (Int32.of_int (byte (pos + 4))) 24)))
          in
          take 5 (Isa_mov_imm v)
      | 0x89 when pos + 2 <= n && byte (pos + 1) = 0xC8 -> take 2 Isa_mov_reg
      | 0x01 when pos + 2 <= n && byte (pos + 1) = 0xC8 -> take 2 Isa_add
      | 0x8B when pos + 2 <= n && byte (pos + 1) = 0x00 -> take 2 Isa_load
      | 0x89 when pos + 2 <= n && byte (pos + 1) = 0x00 -> take 2 Isa_store
      | 0xEB when pos + 2 <= n -> take 2 (Isa_jmp (byte (pos + 1)))
      | 0xE8 when pos + 5 <= n -> take 5 (Isa_call (pos + 1))
      | 0xC3 -> take 1 Isa_ret
      | 0x0F when pos + 3 <= n && byte (pos + 1) = 0x01 && byte (pos + 2) = 0xEF ->
          take 3 Isa_wrpkru
      | 0x0F when pos + 2 <= n && byte (pos + 1) = 0x05 -> take 2 Isa_syscall
      | 0x0F when pos + 2 <= n && byte (pos + 1) = 0x34 -> take 2 Isa_sysenter
      | 0xCD when pos + 2 <= n -> take 2 (Isa_int (byte (pos + 1)))
      | _ -> None
    end
  in
  go 0 []

let to_inst text = function
  | Isa_nop -> Inst.Nop
  | Isa_mov_imm v -> Inst.Mov_imm v
  | Isa_mov_reg -> Inst.Mov_reg
  | Isa_add -> Inst.Add
  | Isa_load -> Inst.Load
  | Isa_store -> Inst.Store
  | Isa_jmp off -> Inst.Jmp off
  | Isa_call disp_off ->
      (* The original call target name is not recoverable from bytes;
         keep a placeholder carrying the displacement so re-encoding
         differs only in the name hash.  Admission only needs the byte
         stream, which [scan_bytes] works on directly. *)
      Inst.Call (Printf.sprintf "sub_%02x" (Char.code text.[disp_off]))
  | Isa_ret -> Inst.Ret
  | Isa_wrpkru -> Inst.Wrpkru
  | Isa_syscall -> Inst.Syscall
  | Isa_sysenter -> Inst.Sysenter
  | Isa_int v -> Inst.Int v

let text_image ~name t =
  match decode_insts t.text with
  | None -> None
  | Some decoded ->
      Some (Image.create ~name ~toolchain:t.toolchain (List.map (to_inst t.text) decoded))

let scan_bytes t =
  Scanner.scan_code t.text ~boundaries:(List.map (fun s -> s.offset) t.symbols)
