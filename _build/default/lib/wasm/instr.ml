type binop =
  | Add
  | Sub
  | Mul
  | Div_s
  | Rem_s
  | And
  | Or
  | Xor
  | Shl
  | Shr_s
  | Eq
  | Ne
  | Lt_s
  | Gt_s
  | Le_s
  | Ge_s

type t =
  | Nop
  | Unreachable
  | Const of int64
  | Binop of binop
  | Eqz
  | Drop
  | Select
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Global_get of int
  | Global_set of int
  | Load8 of int
  | Load64 of int
  | Store8 of int
  | Store64 of int
  | Memory_size
  | Memory_grow
  | Block of t list
  | Loop of t list
  | If of t list * t list
  | Br of int
  | Br_if of int
  | Return
  | Call of int

let pp_binop fmt op =
  let s =
    match op with
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | Div_s -> "div_s"
    | Rem_s -> "rem_s"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Shl -> "shl"
    | Shr_s -> "shr_s"
    | Eq -> "eq"
    | Ne -> "ne"
    | Lt_s -> "lt_s"
    | Gt_s -> "gt_s"
    | Le_s -> "le_s"
    | Ge_s -> "ge_s"
  in
  Format.pp_print_string fmt s

let rec pp fmt = function
  | Nop -> Format.pp_print_string fmt "nop"
  | Unreachable -> Format.pp_print_string fmt "unreachable"
  | Const v -> Format.fprintf fmt "const %Ld" v
  | Binop op -> pp_binop fmt op
  | Eqz -> Format.pp_print_string fmt "eqz"
  | Drop -> Format.pp_print_string fmt "drop"
  | Select -> Format.pp_print_string fmt "select"
  | Local_get i -> Format.fprintf fmt "local.get %d" i
  | Local_set i -> Format.fprintf fmt "local.set %d" i
  | Local_tee i -> Format.fprintf fmt "local.tee %d" i
  | Global_get i -> Format.fprintf fmt "global.get %d" i
  | Global_set i -> Format.fprintf fmt "global.set %d" i
  | Load8 o -> Format.fprintf fmt "load8 +%d" o
  | Load64 o -> Format.fprintf fmt "load64 +%d" o
  | Store8 o -> Format.fprintf fmt "store8 +%d" o
  | Store64 o -> Format.fprintf fmt "store64 +%d" o
  | Memory_size -> Format.pp_print_string fmt "memory.size"
  | Memory_grow -> Format.pp_print_string fmt "memory.grow"
  | Block body -> Format.fprintf fmt "@[<v2>block@,%a@]" pp_list body
  | Loop body -> Format.fprintf fmt "@[<v2>loop@,%a@]" pp_list body
  | If (a, b) -> Format.fprintf fmt "@[<v2>if@,%a@;<0 -2>else@,%a@]" pp_list a pp_list b
  | Br n -> Format.fprintf fmt "br %d" n
  | Br_if n -> Format.fprintf fmt "br_if %d" n
  | Return -> Format.pp_print_string fmt "return"
  | Call i -> Format.fprintf fmt "call %d" i

and pp_list fmt l =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp fmt l

let rec count_one = function
  | Block body | Loop body -> 1 + count body
  | If (a, b) -> 1 + count a + count b
  | Nop | Unreachable | Const _ | Binop _ | Eqz | Drop | Select | Local_get _
  | Local_set _ | Local_tee _ | Global_get _ | Global_set _ | Load8 _ | Load64 _
  | Store8 _ | Store64 _ | Memory_size | Memory_grow | Br _ | Br_if _ | Return
  | Call _ ->
      1

and count body = List.fold_left (fun acc i -> acc + count_one i) 0 body
