(* Tests for Sim.Par, the host domain pool: virtual-time outputs must
   be bit-identical whatever the domain count, shared caches must stay
   coherent under concurrent clients, and pool snapshots must round
   trip.  Domain counts deliberately exceed the machine's cores — the
   determinism contract is independent of physical parallelism. *)

open Sim
open Alloystack_core

let with_domains n f =
  Par.set_domains n;
  Fun.protect ~finally:(fun () -> Par.set_domains 1) f

let reset_observability () =
  Trace.clear Trace.global;
  Span.clear Span.global;
  Metrics.reset ()

(* --- Par.run ordering and error routing --------------------------- *)

let test_run_submission_order () =
  with_domains 8 (fun () ->
      let results = Par.run (Array.init 64 (fun i () -> i * i)) in
      Array.iteri
        (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v)
        results)

let test_run_first_error_wins () =
  (* Whatever domain finishes first, the exception that escapes is the
     lowest submission index's. *)
  with_domains 8 (fun () ->
      let task i () = if i mod 3 = 0 && i > 0 then failwith (string_of_int i) else i in
      match Par.run (Array.init 32 (fun i -> task i)) with
      | _ -> Alcotest.fail "expected a failure"
      | exception Failure msg -> Alcotest.(check string) "lowest index" "3" msg)

(* --- Sched pool snapshot / restore -------------------------------- *)

let test_pool_snapshot_roundtrip () =
  let pool = Hostos.Sched.pool ~cores:2 in
  let durations = List.map Units.ms [ 4; 7; 2; 9 ] in
  ignore (Hostos.Sched.schedule_on pool durations);
  let snap = Hostos.Sched.copy_pool pool in
  let probe = Hostos.Sched.schedule_on pool (List.map Units.ms [ 5; 5 ]) in
  Alcotest.(check bool) "probe advanced the horizons" true
    (Units.( > ) (Hostos.Sched.busy_until pool) (Hostos.Sched.busy_until snap));
  Hostos.Sched.restore_pool pool snap;
  Alcotest.(check bool) "restore rolled the horizons back" true
    (Units.equal (Hostos.Sched.busy_until pool) (Hostos.Sched.busy_until snap));
  let replay = Hostos.Sched.schedule_on pool (List.map Units.ms [ 5; 5 ]) in
  Alcotest.(check bool) "replay reproduces the probe placements" true (replay = probe);
  match
    Hostos.Sched.restore_pool (Hostos.Sched.pool ~cores:3) snap
  with
  | () -> Alcotest.fail "core-count mismatch must be rejected"
  | exception Invalid_argument _ -> ()

(* --- Batched work claiming ----------------------------------------- *)

let test_run_batched_submission_order () =
  (* Results stay keyed by submission index at any batch size,
     including batches larger than the task count. *)
  with_domains 8 (fun () ->
      List.iter
        (fun k ->
          let results = Par.run ~batch:k (Array.init 100 (fun i () -> i * 3)) in
          Alcotest.(check int) "all results" 100 (Array.length results);
          Array.iteri
            (fun i v ->
              Alcotest.(check int) (Printf.sprintf "batch %d slot %d" k i) (i * 3) v)
            results)
        [ 1; 2; 8; 64; 1000 ])

let test_run_batched_first_error_wins () =
  with_domains 8 (fun () ->
      let task i () = if i mod 3 = 0 && i > 0 then failwith (string_of_int i) else i in
      match Par.run ~batch:8 (Array.init 32 (fun i -> task i)) with
      | _ -> Alcotest.fail "expected a failure"
      | exception Failure msg -> Alcotest.(check string) "lowest index" "3" msg)

(* --- Sched pool copy recycling ------------------------------------- *)

let test_pool_release_recycles () =
  (* A released snapshot's arrays are reused by the next same-width
     copy; the recycled copy must behave exactly like a fresh one. *)
  let pool = Hostos.Sched.pool ~cores:4 in
  ignore (Hostos.Sched.schedule_on pool (List.map Units.ms [ 3; 1; 4; 1; 5 ]));
  let snap = Hostos.Sched.copy_pool pool in
  Hostos.Sched.release_pool snap;
  ignore (Hostos.Sched.schedule_on pool (List.map Units.ms [ 9; 2 ]));
  let snap2 = Hostos.Sched.copy_pool pool in
  Alcotest.(check bool) "recycled copy captures the current horizons" true
    (Units.equal (Hostos.Sched.busy_until snap2) (Hostos.Sched.busy_until pool));
  let probe = Hostos.Sched.schedule_on pool (List.map Units.ms [ 2; 2; 2 ]) in
  Hostos.Sched.restore_pool pool snap2;
  let replay = Hostos.Sched.schedule_on pool (List.map Units.ms [ 2; 2; 2 ]) in
  Alcotest.(check bool) "replay reproduces the probe after restore" true
    (replay = probe)

(* --- Compile cache under concurrent clients ----------------------- *)

let test_compile_cache_stress () =
  (* 16 tasks over 8 domains race to load the same module through one
     shared cache: exactly one compile happens, everyone else hits, and
     per-load virtual time is charged identically regardless. *)
  let big =
    let chunk i =
      [ Wasm.Builder.const i; Wasm.Builder.const (i + 1); Wasm.Builder.add;
        Wasm.Instr.Drop ]
    in
    let body = List.concat (List.init 400 chunk) @ [ Wasm.Builder.const 0 ] in
    Wasm.Wmodule.create ~name:"stress" ~exports:[ ("f", 0) ]
      [ Wasm.Builder.func ~name:"f" body ]
  in
  let profile = Wasm.Runtime.wasmtime in
  let cache = Wasm.Compile_cache.create () in
  let load () =
    let clock = Clock.create () in
    ignore (Wasm.Runtime.load ~cache profile ~clock big);
    Clock.now clock
  in
  let times = with_domains 8 (fun () -> Par.run (Array.make 16 load)) in
  Alcotest.(check int) "one compile" 1 (Wasm.Compile_cache.miss_count cache);
  Alcotest.(check int) "the rest hit" 15 (Wasm.Compile_cache.hit_count cache);
  Array.iter
    (fun t ->
      Alcotest.(check bool) "virtual load time identical" true
        (Units.equal t times.(0)))
    times

(* --- Serving determinism across domain counts --------------------- *)

let node ?(instances = 1) ?(language = Workflow.Rust) ?(modules = []) id =
  { Workflow.node_id = id; language; instances; required_modules = modules }

let endpoints_spec =
  let chain_wf =
    Workflow.create_exn ~name:"chain"
      ~nodes:[ node ~modules:[ "fdtab" ] "a"; node "b" ]
      ~edges:[ ("a", "b") ]
  in
  let fan_wf =
    Workflow.create_exn ~name:"fan" ~nodes:[ node ~instances:6 "f" ] ~edges:[]
  in
  let py_wf =
    Workflow.create_exn ~name:"py" ~nodes:[ node ~language:Workflow.Python "p" ] ~edges:[]
  in
  let io_kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    Asstd.write_whole_file ctx "/t" (Bytes.make 8192 'x');
    Asstd.compute ctx (Units.ms 3);
    ignore (Asstd.read_whole_file ctx "/t")
  in
  let compute_kernel ms (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    Asstd.compute ctx (Units.ms ms)
  in
  [
    ("chain", chain_wf,
     [ ("a", Visor.bind io_kernel); ("b", Visor.bind (compute_kernel 4)) ]);
    ("fan", fan_wf, [ ("f", Visor.bind (compute_kernel 5)) ]);
    ("py", py_wf, [ ("p", Visor.bind (compute_kernel 4)) ]);
  ]

let requests_for ~seed ~count =
  let rng = Rng.create seed in
  let eps = Array.of_list (List.map (fun (e, _, _) -> e) endpoints_spec) in
  let t = ref 0.0 in
  List.init count (fun _ ->
      t := !t +. Rng.exponential rng ~mean:(1.0 /. 700.0);
      { Visor.Server.endpoint = Rng.pick rng eps; arrival = Units.ns_f (!t *. 1e9) })

let serve_once ?config ~requests () =
  let server = Visor.Server.create ?config () in
  List.iter
    (fun (endpoint, workflow, bindings) ->
      Visor.Server.register server ~endpoint ~workflow ~bindings ())
    endpoints_spec;
  let r = Visor.Server.serve server requests in
  Visor.Server.shutdown server;
  r

let fingerprint (r : Visor.Server.serve_report) =
  String.concat ";"
    (List.map
       (fun (p : Visor.Server.response) ->
         Printf.sprintf "%s,%Ld,%Ld,%b,%b,%d,%d" p.Visor.Server.r_endpoint
           (Units.to_ns p.Visor.Server.r_arrival)
           (Units.to_ns p.Visor.Server.r_finish)
           p.Visor.Server.r_warm p.Visor.Server.r_ok p.Visor.Server.r_attempts
           p.Visor.Server.r_retries)
       r.Visor.Server.responses)

let summary (r : Visor.Server.serve_report) =
  Printf.sprintf "%d/%d w%d c%d h%d s%d e%d rss%d infl%d" r.Visor.Server.completed
    r.Visor.Server.failed r.Visor.Server.warm_starts r.Visor.Server.cold_starts
    r.Visor.Server.adm_hits r.Visor.Server.adm_scans r.Visor.Server.evictions
    r.Visor.Server.machine_peak_rss r.Visor.Server.max_inflight

let test_serve_identical_across_domains () =
  (* The full observable surface — responses, counters, span tree,
     trace and metrics exports — at 1, 2 and 8 domains. *)
  let requests = requests_for ~seed:7 ~count:60 in
  let observe domains =
    with_domains domains (fun () ->
        reset_observability ();
        Span.set_enabled Span.global true;
        let r = serve_once ~requests () in
        let tr = Obs.trace_json_string () in
        let me = Obs.metrics_json_string () in
        Span.set_enabled Span.global false;
        reset_observability ();
        (fingerprint r ^ "|" ^ summary r, tr, me))
  in
  let base_fp, base_tr, base_me = observe 1 in
  List.iter
    (fun d ->
      let fp, tr, me = observe d in
      Alcotest.(check string) (Printf.sprintf "responses at %d domains" d) base_fp fp;
      Alcotest.(check string) (Printf.sprintf "trace export at %d domains" d) base_tr tr;
      Alcotest.(check string) (Printf.sprintf "metrics export at %d domains" d) base_me me)
    [ 2; 8 ]

let test_chaos_identical_across_domains () =
  (* Same fault seed, retries enabled: crash/hang scheduling, retry
     counts and fault accounting must not depend on the domain count. *)
  let requests = requests_for ~seed:11 ~count:40 in
  let run domains =
    with_domains domains (fun () ->
        let plan = Fault.create ~seed:5 () in
        Fault.inject plan ~site:Fault.site_fn_crash (Fault.Every 7);
        Fault.inject plan ~site:Fault.site_vfs_write (Fault.Every 9);
        let config =
          {
            Visor.default_config with
            Visor.fault = Some plan;
            retry = Visor.Retry_workflow 3;
          }
        in
        let r = serve_once ~config ~requests () in
        Printf.sprintf "%s|%s|crash%d vfs%d" (fingerprint r) (summary r)
          (Fault.fired plan ~site:Fault.site_fn_crash)
          (Fault.fired plan ~site:Fault.site_vfs_write))
  in
  let base = run 1 in
  List.iter
    (fun d ->
      Alcotest.(check string) (Printf.sprintf "chaos at %d domains" d) base (run d))
    [ 2; 8 ]

let test_seeded_stress_across_domains () =
  (* 20 seeded traces, domain count far above the machine's cores: each
     seed's parallel serve must replay its sequential serve exactly,
     and no WFDs may leak. *)
  let live0 = Wfd.live_count () in
  for seed = 0 to 19 do
    let requests = requests_for ~seed ~count:25 in
    let sequential = serve_once ~requests () in
    let parallel = with_domains 8 (fun () -> serve_once ~requests ()) in
    Alcotest.(check string)
      (Printf.sprintf "seed %d" seed)
      (fingerprint sequential ^ "|" ^ summary sequential)
      (fingerprint parallel ^ "|" ^ summary parallel)
  done;
  Alcotest.(check int) "no WFD leak" live0 (Wfd.live_count ())

let observe_serve ~requests ~domains ?(batch = 1) ?config () =
  with_domains domains (fun () ->
      Par.set_batch batch;
      Fun.protect
        ~finally:(fun () -> Par.set_batch 1)
        (fun () ->
          reset_observability ();
          Span.set_enabled Span.global true;
          let r = serve_once ?config ~requests () in
          let tr = Obs.trace_json_string () in
          let me = Obs.metrics_json_string () in
          Span.set_enabled Span.global false;
          reset_observability ();
          fingerprint r ^ "|" ^ summary r ^ "||" ^ tr ^ "||" ^ me))

let test_serve_identical_across_batch () =
  (* The full observable surface across batch sizes and domain counts:
     batching is a host scheduling knob, never a virtual one. *)
  let requests = requests_for ~seed:13 ~count:60 in
  let base = observe_serve ~requests ~domains:1 ~batch:1 () in
  List.iter
    (fun (domains, batch) ->
      Alcotest.(check string)
        (Printf.sprintf "batch %d at %d domains" batch domains)
        base
        (observe_serve ~requests ~domains ~batch ()))
    [ (1, 8); (1, 64); (4, 1); (4, 8); (4, 64) ]

let test_pools_scrubbed_after_chaos () =
  (* Reset-discipline under crashes: a chaos leg (crashing functions,
     failing writes, workflow retries) leaves every per-request pool —
     collector shards, fault children, process tables, recycled shells
     — full of crashed-request state.  A clean run after it must be
     byte-identical to the clean run before it, spans and trace and
     metrics exports included: nothing stale may leak out of a pool. *)
  let requests = requests_for ~seed:17 ~count:50 in
  let before = observe_serve ~requests ~domains:4 () in
  with_domains 4 (fun () ->
      let chaos = requests_for ~seed:23 ~count:60 in
      let plan = Fault.create ~seed:3 () in
      Fault.inject plan ~site:Fault.site_fn_crash (Fault.Every 3);
      Fault.inject plan ~site:Fault.site_vfs_write (Fault.Every 5);
      let config =
        {
          Visor.default_config with
          Visor.fault = Some plan;
          retry = Visor.Retry_workflow 3;
        }
      in
      ignore (serve_once ~config ~requests:chaos ()));
  let after = observe_serve ~requests ~domains:4 () in
  Alcotest.(check string) "recycled pools leak no chaos state" before after

(* --- Hotspot allocation accounting --------------------------------- *)

let test_hotspot_allocation_accounting () =
  (* One outer section around a whole (single-domain) serve must charge
     the same words the GC reports for the run, to within the harness's
     own allocation between the two measurement points — and profiling
     must not change a virtual byte. *)
  let requests = requests_for ~seed:29 ~count:40 in
  let baseline = fingerprint (serve_once ~requests ()) in
  Hotspot.reset ();
  Hotspot.set_enabled true;
  let a0 = Gc.allocated_bytes () in
  let r =
    Fun.protect
      ~finally:(fun () -> Hotspot.set_enabled false)
      (fun () -> Hotspot.with_section "test.total" (fun () -> serve_once ~requests ()))
  in
  let gc_words = (Gc.allocated_bytes () -. a0) /. 8.0 in
  Alcotest.(check string) "profiling leaves responses untouched" baseline
    (fingerprint r);
  let entry =
    List.find
      (fun (e : Hotspot.entry) -> String.equal e.Hotspot.hs_name "test.total")
      (Hotspot.snapshot ())
  in
  let section_words = Hotspot.entry_words entry in
  let diff = Float.abs (gc_words -. section_words) in
  let tolerance = Float.max 10_000.0 (0.01 *. gc_words) in
  if diff > tolerance then
    Alcotest.failf
      "hotspot words (%.0f) vs GC allocated words (%.0f): diff %.0f exceeds %.0f"
      section_words gc_words diff tolerance;
  Alcotest.(check bool) "a serve allocates something" true (gc_words > 0.0);
  Alcotest.(check bool) "minor + major split covers the total" true
    (Float.abs
       (entry.Hotspot.hs_minor_words +. entry.Hotspot.hs_major_words
      -. section_words)
    < 1.0)

(* --- run_many ------------------------------------------------------ *)

let test_run_many_identical () =
  let wf =
    Workflow.create_exn ~name:"many"
      ~nodes:[ node ~instances:3 "f" ]
      ~edges:[]
  in
  let bindings =
    [
      ( "f",
        Visor.bind (fun (ctx : Asstd.ctx) ~instance ~total:_ ->
            Asstd.compute ctx (Units.ms (2 + instance))) );
    ]
  in
  let run domains =
    with_domains domains (fun () ->
        Visor.run_many ~workflow:wf ~bindings ~repeat:12 ())
  in
  let live0 = Wfd.live_count () in
  let seq = run 1 in
  let par = run 8 in
  Alcotest.(check int) "all repeats" 12 (Array.length par);
  Alcotest.(check bool) "reports identical across domain counts" true (seq = par);
  Array.iter
    (fun (r : Visor.report) ->
      Alcotest.(check bool) "repeat replays repeat 0" true (r = seq.(0)))
    seq;
  Alcotest.(check int) "no WFD leak" live0 (Wfd.live_count ())

let suite =
  [
    Alcotest.test_case "Par.run keeps submission order" `Quick test_run_submission_order;
    Alcotest.test_case "Par.run re-raises lowest-index error" `Quick
      test_run_first_error_wins;
    Alcotest.test_case "Par.run batched keeps submission order" `Quick
      test_run_batched_submission_order;
    Alcotest.test_case "Par.run batched re-raises lowest-index error" `Quick
      test_run_batched_first_error_wins;
    Alcotest.test_case "Sched pool snapshot round-trips" `Quick
      test_pool_snapshot_roundtrip;
    Alcotest.test_case "Sched pool copies recycle through release" `Quick
      test_pool_release_recycles;
    Alcotest.test_case "compile cache: 1 compile, 15 hits" `Quick
      test_compile_cache_stress;
    Alcotest.test_case "serve identical at 1/2/8 domains" `Quick
      test_serve_identical_across_domains;
    Alcotest.test_case "chaos identical across domains" `Quick
      test_chaos_identical_across_domains;
    Alcotest.test_case "serve identical across batch sizes" `Quick
      test_serve_identical_across_batch;
    Alcotest.test_case "pools scrubbed after chaos" `Quick
      test_pools_scrubbed_after_chaos;
    Alcotest.test_case "hotspot words match GC accounting" `Quick
      test_hotspot_allocation_accounting;
    Alcotest.test_case "20 seeds, domains > cores" `Slow
      test_seeded_stress_across_domains;
    Alcotest.test_case "run_many identical across domains" `Quick
      test_run_many_identical;
  ]
