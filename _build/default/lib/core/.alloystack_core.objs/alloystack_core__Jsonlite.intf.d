lib/core/jsonlite.mli:
