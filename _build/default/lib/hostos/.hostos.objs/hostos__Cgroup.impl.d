lib/hostos/cgroup.ml: Sim
