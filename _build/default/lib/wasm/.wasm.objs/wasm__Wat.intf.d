lib/wasm/wat.mli: Wmodule
