(* Tests for the sim substrate: units, clocks, stats, event queue,
   RNG, tables. *)

open Sim

let check_time = Alcotest.testable Units.pp Units.equal

let test_units_construction () =
  Alcotest.(check int64) "us" 1_000L (Units.to_ns (Units.us 1));
  Alcotest.(check int64) "ms" 1_000_000L (Units.to_ns (Units.ms 1));
  Alcotest.(check int64) "sec" 1_000_000_000L (Units.to_ns (Units.sec 1));
  Alcotest.check check_time "float us" (Units.us 3) (Units.us_f 3.0);
  Alcotest.(check int64) "rounding" 2L (Units.to_ns (Units.ns_f 1.6))

let test_units_arith () =
  let a = Units.us 5 and b = Units.us 3 in
  Alcotest.check check_time "add" (Units.us 8) (Units.add a b);
  Alcotest.check check_time "sub" (Units.us 2) (Units.sub a b);
  Alcotest.check check_time "sub saturates" Units.zero (Units.sub b a);
  Alcotest.check check_time "diff symm" (Units.diff a b) (Units.diff b a);
  Alcotest.check check_time "scale" (Units.us 10) (Units.scale a 2.0);
  Alcotest.check check_time "max" a (Units.max a b);
  Alcotest.check check_time "min" b (Units.min a b)

let test_units_bandwidth () =
  (* 1 GB/s moving 1 MB takes 1 ms. *)
  let t = Units.time_for_bytes ~bytes_per_sec:1e9 1_000_000 in
  Alcotest.check check_time "bandwidth" (Units.ms 1) t;
  Alcotest.check check_time "zero bytes" Units.zero
    (Units.time_for_bytes ~bytes_per_sec:1e9 0);
  Alcotest.(check (float 1.0)) "gbit" 1.25e9 (Units.gbit_per_sec 10.0);
  Alcotest.(check (float 1.0)) "mb" 362.0e6 (Units.mb_per_sec 362.0)

let test_units_pp () =
  Alcotest.(check string) "ns" "500ns" (Units.to_string (Units.ns 500));
  Alcotest.(check string) "us" "1.30us" (Units.to_string (Units.ns 1_300));
  Alcotest.(check string) "ms" "1.30ms" (Units.to_string (Units.us 1_300));
  Alcotest.(check string) "s" "1.300s" (Units.to_string (Units.ms 1_300));
  Alcotest.(check string) "bytes" "16MB" (Units.bytes_to_string (Units.mib 16))

let test_clock_basics () =
  let c = Clock.create () in
  Alcotest.check check_time "starts at zero" Units.zero (Clock.now c);
  Clock.advance c (Units.us 10);
  Alcotest.check check_time "advance" (Units.us 10) (Clock.now c);
  Clock.advance_to c (Units.us 5);
  Alcotest.check check_time "advance_to backwards is no-op" (Units.us 10) (Clock.now c);
  Clock.advance_to c (Units.us 50);
  Alcotest.check check_time "advance_to forward" (Units.us 50) (Clock.now c)

let test_clock_sync () =
  let a = Clock.create () and b = Clock.create ~at:(Units.ms 2) () in
  Clock.sync a b;
  Alcotest.check check_time "a catches up" (Units.ms 2) (Clock.now a);
  Clock.sync b a;
  Alcotest.check check_time "b unchanged" (Units.ms 2) (Clock.now b);
  let copy = Clock.copy a in
  Clock.advance copy (Units.ms 1);
  Alcotest.check check_time "copy is independent" (Units.ms 2) (Clock.now a)

let test_clock_makespan () =
  let clocks = [ Clock.create ~at:(Units.us 3) (); Clock.create ~at:(Units.us 9) () ] in
  Alcotest.check check_time "makespan" (Units.us 9) (Clock.makespan clocks);
  Alcotest.check check_time "empty makespan" Units.zero (Clock.makespan [])

let test_stats_basics () =
  let s = Stats.create () in
  Alcotest.(check bool) "empty" true (Stats.is_empty s);
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "count" 5 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max s);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Stats.p50 s);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Stats.stddev s)

let test_stats_percentile_interp () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 10.0; 20.0 ];
  Alcotest.(check (float 1e-9)) "p50 interpolates" 15.0 (Stats.p50 s);
  Alcotest.(check (float 1e-9)) "p99" 19.9 (Stats.percentile s 99.0)

let test_stats_after_add () =
  (* Percentile then add then percentile again: sortedness must be
     re-established. *)
  let s = Stats.create () in
  Stats.add s 5.0;
  Stats.add s 1.0;
  Alcotest.(check (float 1e-9)) "first" 1.0 (Stats.percentile s 0.0);
  Stats.add s 0.5;
  Alcotest.(check (float 1e-9)) "after add" 0.5 (Stats.percentile s 0.0);
  Stats.clear s;
  Alcotest.(check bool) "cleared" true (Stats.is_empty s);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile s 50.0))

let test_stats_percentile_edges () =
  let s = Stats.create () in
  Stats.add s 42.0;
  (* A single sample is every percentile. *)
  Alcotest.(check (float 1e-9)) "p0 of singleton" 42.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p50 of singleton" 42.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p100 of singleton" 42.0 (Stats.percentile s 100.0);
  Alcotest.check_raises "p below range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile s (-0.5)));
  Alcotest.check_raises "p above range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile s 100.5));
  let empty = Stats.create () in
  Alcotest.check_raises "empty raises even at valid p"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile empty 50.0))

let test_stats_percentile_unsorted () =
  (* Percentiles are order-free: an unsorted insertion sequence must
     answer exactly like the sorted one. *)
  let unsorted = Stats.create () in
  List.iter (Stats.add unsorted) [ 30.0; 5.0; 50.0; 10.0; 20.0 ];
  Alcotest.(check (float 1e-9)) "p0 is min" 5.0 (Stats.percentile unsorted 0.0);
  Alcotest.(check (float 1e-9)) "p50 is median" 20.0 (Stats.percentile unsorted 50.0);
  Alcotest.(check (float 1e-9)) "p100 is max" 50.0 (Stats.percentile unsorted 100.0);
  let sorted = Stats.create () in
  List.iter (Stats.add sorted) [ 5.0; 10.0; 20.0; 30.0; 50.0 ];
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%g insertion-order free" p)
        (Stats.percentile sorted p) (Stats.percentile unsorted p))
    [ 0.0; 25.0; 50.0; 75.0; 99.0; 100.0 ]

let test_stats_time () =
  let s = Stats.create () in
  Stats.add_time s (Units.us 10);
  Stats.add_time s (Units.us 20);
  Alcotest.check check_time "mean time" (Units.us 15) (Stats.mean_time s)

let test_eventq_ordering () =
  let q = Eventq.create () in
  Eventq.push q ~at:(Units.us 5) "b";
  Eventq.push q ~at:(Units.us 1) "a";
  Eventq.push q ~at:(Units.us 9) "c";
  Alcotest.(check (option (pair check_time string)))
    "peek" (Some (Units.us 1, "a")) (Eventq.peek q);
  let order = List.init 3 (fun _ -> match Eventq.pop q with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "drained" true (Eventq.is_empty q)

let test_eventq_fifo_ties () =
  let q = Eventq.create () in
  List.iter (fun s -> Eventq.push q ~at:(Units.us 7) s) [ "x"; "y"; "z" ];
  let order = List.init 3 (fun _ -> match Eventq.pop q with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "insertion order on ties" [ "x"; "y"; "z" ] order

let test_eventq_drain_reentrant () =
  let q = Eventq.create () in
  Eventq.push q ~at:(Units.us 1) 3;
  let seen = ref [] in
  Eventq.drain q (fun at n ->
      seen := n :: !seen;
      if n > 1 then Eventq.push q ~at:(Units.add at (Units.us 1)) (n - 1));
  Alcotest.(check (list int)) "cascade" [ 1; 2; 3 ] !seen

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.create 43 in
  let zs = List.init 20 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_ranges () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int out of range";
    let f = Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of range"
  done

let test_rng_split_independent () =
  let parent = Rng.create 1 in
  let child = Rng.split parent in
  let a = List.init 10 (fun _ -> Rng.int parent 100) in
  let b = List.init 10 (fun _ -> Rng.int child 100) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_rng_exponential_mean () =
  let rng = Rng.create 99 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean close to 5"
    true
    (mean > 4.7 && mean < 5.3)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_separator t;
  Table.add_row t [ "333" ];
  let out = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length out > 0 && String.sub out 0 6 = "== T =");
  (* A padded row must not raise and must include the long cell. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "long cell present" true (contains out "333")

let test_trace_disabled_noop () =
  let t = Trace.create () in
  Trace.record t ~at:Units.zero ~category:"x" ~label:"y" "z";
  Alcotest.(check int) "disabled records nothing" 0 (Trace.count t)

let test_trace_records_and_filters () =
  let t = Trace.create () in
  Trace.set_enabled t true;
  Trace.record t ~at:(Units.us 1) ~category:"visor" ~label:"a" "1";
  Trace.recordf t ~at:(Units.us 2) ~category:"loader" ~label:"b" "mod %s" "mm";
  Trace.record t ~at:(Units.us 3) ~category:"visor" ~label:"c" "3";
  Alcotest.(check int) "count" 3 (Trace.count t);
  Alcotest.(check int) "filter" 2 (List.length (Trace.filter t ~category:"visor"));
  (match Trace.events t with
  | { Trace.label = "a"; _ } :: _ -> ()
  | _ -> Alcotest.fail "oldest first");
  Alcotest.(check bool) "formatted detail" true
    (List.exists (fun (e : Trace.event) -> e.Trace.detail = "mod mm") (Trace.events t));
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.count t)

let test_trace_ring_overflow () =
  let t = Trace.create ~capacity:4 () in
  Trace.set_enabled t true;
  for i = 1 to 10 do
    Trace.record t ~at:(Units.us i) ~category:"c" ~label:(string_of_int i) ""
  done;
  Alcotest.(check int) "capacity bound" 4 (Trace.count t);
  Alcotest.(check int) "dropped counted" 6 (Trace.dropped t);
  match Trace.events t with
  | { Trace.label = "7"; _ } :: _ -> ()
  | e :: _ -> Alcotest.fail ("expected label 7, got " ^ e.Trace.label)
  | [] -> Alcotest.fail "empty"

let test_trace_ring_boundaries () =
  (* Filling to exactly capacity drops nothing; wrap-around keeps the
     newest events in order and clear resets the drop counter. *)
  let t = Trace.create ~capacity:3 () in
  Trace.set_enabled t true;
  for i = 1 to 3 do
    Trace.record t ~at:(Units.us i) ~category:"c" ~label:(string_of_int i) ""
  done;
  Alcotest.(check int) "full, nothing dropped" 0 (Trace.dropped t);
  Alcotest.(check (list string)) "all retained in order" [ "1"; "2"; "3" ]
    (List.map (fun (e : Trace.event) -> e.Trace.label) (Trace.events t));
  Trace.record t ~at:(Units.us 4) ~category:"c" ~label:"4" "";
  Alcotest.(check int) "one dropped past capacity" 1 (Trace.dropped t);
  Alcotest.(check (list string)) "oldest evicted" [ "2"; "3"; "4" ]
    (List.map (fun (e : Trace.event) -> e.Trace.label) (Trace.events t));
  Trace.clear t;
  Alcotest.(check int) "clear resets count" 0 (Trace.count t);
  Alcotest.(check int) "clear resets dropped" 0 (Trace.dropped t)

let test_recordf_disabled_builds_nothing () =
  (* Regression: with tracing disabled, recordf must not run the
     formatter — a custom %a printer is never invoked. *)
  let t = Trace.create () in
  let invoked = ref false in
  let pp fmt () =
    invoked := true;
    Format.pp_print_string fmt "x"
  in
  Trace.recordf t ~at:Units.zero ~category:"c" ~label:"l" "%a" pp ();
  Alcotest.(check bool) "printer skipped when disabled" false !invoked;
  Alcotest.(check int) "nothing recorded" 0 (Trace.count t);
  Trace.set_enabled t true;
  Trace.recordf t ~at:Units.zero ~category:"c" ~label:"l" "%a" pp ();
  Alcotest.(check bool) "printer runs when enabled" true !invoked;
  (match Trace.events t with
  | [ e ] -> Alcotest.(check string) "detail built when enabled" "x" e.Trace.detail
  | _ -> Alcotest.fail "expected exactly one event")

let suite =
  [
    Alcotest.test_case "units construction" `Quick test_units_construction;
    Alcotest.test_case "units arithmetic" `Quick test_units_arith;
    Alcotest.test_case "units bandwidth" `Quick test_units_bandwidth;
    Alcotest.test_case "units pretty printing" `Quick test_units_pp;
    Alcotest.test_case "clock basics" `Quick test_clock_basics;
    Alcotest.test_case "clock sync/copy" `Quick test_clock_sync;
    Alcotest.test_case "clock makespan" `Quick test_clock_makespan;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "stats percentile interpolation" `Quick test_stats_percentile_interp;
    Alcotest.test_case "stats resort after add" `Quick test_stats_after_add;
    Alcotest.test_case "stats percentile edges" `Quick test_stats_percentile_edges;
    Alcotest.test_case "stats percentile unsorted" `Quick test_stats_percentile_unsorted;
    Alcotest.test_case "stats time helpers" `Quick test_stats_time;
    Alcotest.test_case "eventq ordering" `Quick test_eventq_ordering;
    Alcotest.test_case "eventq FIFO ties" `Quick test_eventq_fifo_ties;
    Alcotest.test_case "eventq reentrant drain" `Quick test_eventq_drain_reentrant;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "trace disabled noop" `Quick test_trace_disabled_noop;
    Alcotest.test_case "trace record/filter" `Quick test_trace_records_and_filters;
    Alcotest.test_case "trace ring overflow" `Quick test_trace_ring_overflow;
    Alcotest.test_case "trace ring boundaries" `Quick test_trace_ring_boundaries;
    Alcotest.test_case "recordf disabled builds nothing" `Quick
      test_recordf_disabled_builds_nothing;
  ]
