lib/hostos/shm.mli: Sim
