examples/multilang_wasm.ml: Buffer Builder Bytes Format Hashtbl Instr Int64 Isa Runtime Sim String Wasi Wasm Wmodule
