lib/workloads/parallel_sorting.ml: Array Buffer Bytes Datagen Fctx Int32 Printf Sim Stdlib
