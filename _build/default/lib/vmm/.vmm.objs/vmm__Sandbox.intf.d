lib/vmm/sandbox.mli: Format Hostos Sim
