(* ParallelSorting across platforms: the paper's headline comparison in
   miniature.  Sorts 8 MB of records on AlloyStack, Faastlane and
   OpenFaaS and prints who wins and by how much.

     dune exec examples/parallel_sorting_demo.exe *)

open Baselines

let () =
  let app = Workloads.Parallel_sorting.app ~seed:7 ~size:(8 * 1024 * 1024) ~instances:3 in
  let results =
    List.map
      (fun (p : Platform.t) ->
        let m = p.Platform.run app in
        Platform.check_validated m;
        m)
      [
        As_platform.alloystack;
        Faastlane.refer;
        Faastlane.refer_kata;
        Openfaas.openfaas;
      ]
  in
  let alloystack = List.hd results in
  Format.printf "%-24s %-12s %-12s %s@." "platform" "e2e" "cold start" "vs AlloyStack";
  List.iter
    (fun (m : Platform.metrics) ->
      Format.printf "%-24s %-12s %-12s %.2fx@." m.Platform.platform
        (Sim.Units.to_string m.Platform.e2e)
        (Sim.Units.to_string m.Platform.cold_start)
        (Platform.speedup alloystack ~over:m))
    results;
  print_endline "\n(every platform sorted the same records; outputs were verified)"
