lib/wasm/runtime.mli: Aot Isa Sim Wasi Wmodule
