(** Minimal JSON parser/printer for workflow configuration files.

    Supports objects, arrays, strings (with the common escapes),
    integers, floats, booleans and null — enough for the gateway's
    workflow configs without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; message : string }

val parse : string -> t
(** Raises {!Parse_error}. *)

val parse_result : string -> (t, string) result

val to_string : t -> string

(** {1 Accessors} — raise [Invalid_argument] on shape mismatch. *)

val member : string -> t -> t
(** Object field; [Null] when absent. *)

val get_string : t -> string
val get_int : t -> int
val get_bool : t -> bool
val get_list : t -> t list
val get_obj : t -> (string * t) list

val member_string : ?default:string -> string -> t -> string
val member_int : ?default:int -> string -> t -> int
val member_bool : ?default:bool -> string -> t -> bool
val member_list : string -> t -> t list
(** Empty list when absent. *)
