lib/sim/table.mli:
