type id = int

let none = 0

type span = {
  sp_id : id;
  sp_parent : id;
  sp_category : string;
  sp_label : string;
  sp_begin : Units.time;
  mutable sp_end : Units.time;
  mutable sp_attrs : (string * string) list;
}

type t = {
  mutable store : span array;
  mutable len : int;
  mutable on : bool;
  mutable amb : id;
}

let dummy =
  {
    sp_id = none;
    sp_parent = none;
    sp_category = "";
    sp_label = "";
    sp_begin = Units.zero;
    sp_end = Units.zero;
    sp_attrs = [];
  }

let create () = { store = Array.make 64 dummy; len = 0; on = false; amb = none }

let global = create ()

(* Domain-local "current" collector.  The main domain's slot is bound
   to [global] at module init; worker domains default to a private
   throwaway instance so a task that forgets to install a shard can
   never race on [global].  [Par.with_shard] swaps this slot around
   each parallel task. *)
let current_key = Domain.DLS.new_key create
let () = Domain.DLS.set current_key global
let current () = Domain.DLS.get current_key
let set_current t = Domain.DLS.set current_key t

let enabled t = t.on
let set_enabled t v = t.on <- v

let clear t =
  Array.fill t.store 0 t.len dummy;
  t.len <- 0;
  t.amb <- none

let push t sp =
  if t.len = Array.length t.store then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.store 0 bigger 0 t.len;
    t.store <- bigger
  end;
  t.store.(t.len) <- sp;
  t.len <- t.len + 1

let begin_span t ?parent ~at ~category ~label () =
  if not t.on then none
  else begin
    let parent = match parent with Some p -> p | None -> t.amb in
    let id = t.len + 1 in
    push t
      {
        sp_id = id;
        sp_parent = parent;
        sp_category = category;
        sp_label = label;
        sp_begin = at;
        sp_end = at;
        sp_attrs = [];
      };
    id
  end

let find t id = if id >= 1 && id <= t.len then Some t.store.(id - 1) else None

let end_span t id ~at =
  if id <> none then
    match find t id with
    | Some sp -> sp.sp_end <- Units.max sp.sp_begin at
    | None -> ()

let instant t ?parent ~at ~category ~label () =
  if t.on then ignore (begin_span t ?parent ~at ~category ~label ())

let set_attr t id key value =
  if id <> none then
    match find t id with
    | Some sp -> sp.sp_attrs <- sp.sp_attrs @ [ (key, value) ]
    | None -> ()

let ambient t = t.amb
let set_ambient t id = t.amb <- id

let count t = t.len

(* Graft a shard's spans onto [t], shifting times by [offset] and
   remapping ids.  Shard ids are dense 1..len (see [begin_span]), so
   [base + id] keeps [t] dense too.  A shard-local root (parent =
   [none]) is re-parented under [attach], which lets the merge loop
   hang each task's subtree off the span it creates for that task.
   Spans are copied, never aliased, so later mutation of the shard
   cannot corrupt the merged timeline. *)
let import t ~offset ~attach shard =
  if t.on then begin
    let base = t.len in
    for i = 0 to shard.len - 1 do
      let sp = shard.store.(i) in
      let parent =
        if sp.sp_parent = none then attach else base + sp.sp_parent
      in
      push t
        {
          sp with
          sp_id = base + sp.sp_id;
          sp_parent = parent;
          sp_begin = Units.add sp.sp_begin offset;
          sp_end = Units.add sp.sp_end offset;
        }
    done
  end

let spans t = List.init t.len (fun i -> t.store.(i))

let children t id =
  List.filter (fun sp -> sp.sp_parent = id && sp.sp_id <> id) (spans t)

let roots t = children t none
