open Workloads
type metrics = {
  platform : string;
  e2e : Sim.Units.time;
  cold_start : Sim.Units.time;
  phase_totals : (string * Sim.Units.time) list;
  cpu_time : Sim.Units.time;
  peak_rss : int;
  validated : (unit, string) result;
}

let phase_total m name =
  match List.assoc_opt name m.phase_totals with
  | Some t -> t
  | None -> Sim.Units.zero

type t = { name : string; run : ?cores:int -> Fctx.app -> metrics }

let speedup m ~over =
  let a = Int64.to_float (Sim.Units.to_ns m.e2e) in
  let b = Int64.to_float (Sim.Units.to_ns over.e2e) in
  if a <= 0.0 then infinity else b /. a

let check_validated m =
  match m.validated with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "%s produced a wrong answer: %s" m.platform e)
