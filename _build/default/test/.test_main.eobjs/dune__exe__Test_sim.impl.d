test/test_sim.ml: Alcotest Array Clock Eventq Fun List Rng Sim Stats String Table Trace Units
