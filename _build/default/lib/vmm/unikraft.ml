open Sim

let bare_boot = Units.ms 9

let profile =
  {
    Sandbox.name = "Unikernel";
    stages =
      [
        { Sandbox.label = "firecracker spawn"; cost = Units.ms 31 };
        { label = "image load"; cost = Units.ms 68 };
        { label = "virtio setup"; cost = Units.ms 29 };
        { label = "unikernel boot"; cost = bare_boot };
      ];
    mem_overhead = 8 * 1024 * 1024;
    cpu_tax = 0.02;
    syscall_via = Hostos.Syscall.Vmexit;
  }
