(** Structural validation of a module before instantiation.

    Checks the properties the interpreter and AOT compiler rely on:
    branch depths stay within the enclosing block structure, local and
    global indices are in range, call targets exist, exports point at
    real functions, and data initialisers fit in the initial memory.
    (A full type checker is unnecessary for a single-value-type
    machine.) *)

type error = { func : string option; message : string }

val pp_error : Format.formatter -> error -> unit

val validate : Wmodule.t -> (unit, error list) result

val validate_exn : Wmodule.t -> unit
(** Raises [Invalid_argument] with the first error rendered. *)
