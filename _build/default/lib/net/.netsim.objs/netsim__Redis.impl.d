lib/net/redis.ml: Bytes Clock Hashtbl Link Printf Sim String Tcp Units
