open Sim

let init (_wfd : Wfd.t) ~clock = ignore clock

let host_stdout (wfd : Wfd.t) ~clock data =
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Write);
  Buffer.add_bytes wfd.Wfd.stdout data;
  Bytes.length data

let output (wfd : Wfd.t) = Buffer.contents wfd.Wfd.stdout
