(** TAP virtual network device registry.

    AlloyStack creates one Linux TAP device per WFD so the user-space
    TCP stack (smoltcp analogue) gets an independent IP address.  The
    registry hands out device names and addresses and charges setup
    costs. *)

type t

type device = { name : string; ip : string; setup_cost : Sim.Units.time }

val create : unit -> t

val allocate : t -> device
(** Fresh [tapN] device with a unique 10.42.x.y address; the setup cost
    models the netlink configuration performed by the host OS. *)

val release : t -> device -> unit
val active : t -> int
val allocated_total : t -> int
