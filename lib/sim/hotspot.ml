(* Host-time hotspot profiler.

   Sections are *host* wall-clock accumulators: they measure where the
   simulator itself spends real time (WFD cloning, scheduler pool
   churn, admission hashing, ...), never virtual time.  Profiling is
   off by default; a disabled [with_section] is one atomic load and a
   branch, so instrumentation can stay in hot paths permanently.

   Accumulators are per-domain (a Domain.DLS table registered into a
   global list), so parallel trajectory workers never contend on a
   shared table.  [snapshot] merges every domain's table; call it only
   when the instrumented workload is quiescent (e.g. after a bench
   run), since worker domains write their tables without locks. *)

type cell = { mutable c_count : int; mutable c_ns : float }

type entry = { hs_name : string; hs_count : int; hs_total_ns : float }

let enabled_flag = Atomic.make false

let registry : (string, cell) Hashtbl.t list ref = ref []
let registry_mu = Mutex.create ()

let local : (string, cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let tbl = Hashtbl.create 32 in
      Mutex.protect registry_mu (fun () -> registry := tbl :: !registry);
      tbl)

let enabled () = Atomic.get enabled_flag
let set_enabled on = Atomic.set enabled_flag on

let now_ns () = Unix.gettimeofday () *. 1e9

let cell_of tbl name =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None ->
      let c = { c_count = 0; c_ns = 0.0 } in
      Hashtbl.add tbl name c;
      c

(* Sections nest: a parent's total includes its children (inclusive
   timing), so sibling sections partition their parent but the sum over
   *all* sections can exceed the end-to-end wall time. *)
let with_section name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let cell = cell_of (Domain.DLS.get local) name in
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        cell.c_count <- cell.c_count + 1;
        cell.c_ns <- cell.c_ns +. (now_ns () -. t0))
      f
  end

let snapshot () =
  let merged : (string, cell) Hashtbl.t = Hashtbl.create 32 in
  Mutex.protect registry_mu (fun () ->
      List.iter
        (fun tbl ->
          Hashtbl.iter
            (fun name (c : cell) ->
              let m = cell_of merged name in
              m.c_count <- m.c_count + c.c_count;
              m.c_ns <- m.c_ns +. c.c_ns)
            tbl)
        !registry);
  Hashtbl.fold
    (fun name (c : cell) acc ->
      { hs_name = name; hs_count = c.c_count; hs_total_ns = c.c_ns } :: acc)
    merged []
  |> List.sort (fun a b -> String.compare a.hs_name b.hs_name)

let reset () =
  Mutex.protect registry_mu (fun () -> List.iter Hashtbl.reset !registry)
