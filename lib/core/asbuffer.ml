open Sim
open Mem

type handle = { slot : string; buffer : Libos_mm.buffer option; size : int }

let raw_fingerprint = Fndata.fingerprint (Fndata.Raw Bytes.empty)

let charge_traversal (ctx : Asstd.ctx) len =
  Clock.advance ctx.Asstd.thread.Wfd.clock
    (Units.time_for_bytes ~bytes_per_sec:ctx.Asstd.buffer_bw len)

let charge_ifi (ctx : Asstd.ctx) len =
  if ctx.Asstd.wfd.Wfd.features.Wfd.ifi then
    Clock.advance ctx.Asstd.thread.Wfd.clock (Cost.ifi_transfer_overhead len)

let file_path slot = "/.asbuffer/" ^ slot

(* --- file fallback (ref_passing disabled) --- *)

let file_with_slot ctx ~slot data =
  Asstd.write_whole_file ctx (file_path slot) data;
  (* The intermediate file must be durable before the downstream
     function is signalled. *)
  Clock.advance ctx.Asstd.thread.Wfd.clock Cost.file_fallback_sync;
  { slot; buffer = None; size = Bytes.length data }

let file_from_slot ctx ~slot =
  Clock.advance ctx.Asstd.thread.Wfd.clock Cost.file_fallback_read_penalty;
  let data = Asstd.read_whole_file ctx (file_path slot) in
  (* The receiver copies the file contents into its own memory. *)
  Clock.advance ctx.Asstd.thread.Wfd.clock
    (Units.time_for_bytes ~bytes_per_sec:Cost.memcpy_bw (Bytes.length data));
  data

(* --- reference passing --- *)

let store_encoded ctx ~slot encoded fingerprint =
  let wfd = ctx.Asstd.wfd in
  let thread = ctx.Asstd.thread in
  charge_ifi ctx (Bytes.length encoded);
  (* Smart-pointer construction (§8.3's constant 4.4us). *)
  Clock.advance thread.Wfd.clock Cost.smart_pointer_overhead;
  let buffer =
    Asstd.sys ctx "alloc_buffer" (fun ~clock ->
        match
          Libos_mm.alloc_buffer wfd ~clock ~slot ~size:(Bytes.length encoded)
            ~fingerprint
        with
        | Ok b -> b
        | Error e -> raise (Errno.Error (e, slot)))
  in
  (* The write happens in *user* context: the buffer pages carry the
     buffer key, which the user PKRU grants. *)
  Address_space.store_bytes wfd.Wfd.aspace ~pkru:thread.Wfd.pkru
    buffer.Libos_mm.addr encoded;
  charge_traversal ctx (Bytes.length encoded);
  { slot; buffer = Some buffer; size = Bytes.length encoded }

let load_handle ctx ~slot ~fingerprint =
  let wfd = ctx.Asstd.wfd in
  let thread = ctx.Asstd.thread in
  let buffer =
    Asstd.sys ctx "acquire_buffer" (fun ~clock ->
        match Libos_mm.acquire_buffer wfd ~clock ~slot ~fingerprint with
        | Ok b -> b
        | Error e -> raise (Errno.Error (e, slot)))
  in
  charge_ifi ctx buffer.Libos_mm.size;
  let data =
    Address_space.load_bytes wfd.Wfd.aspace ~pkru:thread.Wfd.pkru
      buffer.Libos_mm.addr buffer.Libos_mm.size
  in
  charge_traversal ctx buffer.Libos_mm.size;
  ({ slot; buffer = Some buffer; size = buffer.Libos_mm.size }, data)

let transfer_histo = Metrics.histogram "asbuffer.transfer_bytes"

(* Every producer/consumer entry point is one "transfer" span; the io /
   network sub-steps it performs (buffer syscalls, the file fallback's
   reads and writes) open their own spans inside it, so the breakdown
   splits reference passing (transfer-dominated) from the file fallback
   (io-dominated) for free. *)
let transfer_span ctx ~label ~slot f =
  Asstd.with_span ctx ~category:"transfer" ~label:(label ^ " " ^ slot) f

let with_slot ctx ~slot value =
  transfer_span ctx ~label:"put" ~slot (fun () ->
      let encoded = Fndata.encode value in
      Metrics.observe transfer_histo (float_of_int (Bytes.length encoded));
      if ctx.Asstd.wfd.Wfd.features.Wfd.ref_passing then
        store_encoded ctx ~slot encoded (Fndata.fingerprint value)
      else file_with_slot ctx ~slot encoded)

let from_slot ctx ~slot ~expect =
  transfer_span ctx ~label:"get" ~slot (fun () ->
      if ctx.Asstd.wfd.Wfd.features.Wfd.ref_passing then begin
        let handle, data =
          load_handle ctx ~slot ~fingerprint:(Fndata.fingerprint expect)
        in
        let value = Fndata.decode data in
        (* Ownership moved to the receiver, which has now consumed the
           value; recover the heap block. *)
        (match handle.buffer with
        | Some b -> Libos_mm.free_buffer ctx.Asstd.wfd b
        | None -> ());
        value
      end
      else Fndata.decode (file_from_slot ctx ~slot))

let with_slot_raw ctx ~slot data =
  Hotspot.with_section "asbuffer.put" (fun () ->
  transfer_span ctx ~label:"put" ~slot (fun () ->
      Metrics.observe transfer_histo (float_of_int (Bytes.length data));
      if ctx.Asstd.wfd.Wfd.features.Wfd.ref_passing then
        store_encoded ctx ~slot data raw_fingerprint
      else file_with_slot ctx ~slot data))

let from_slot_raw ctx ~slot =
  Hotspot.with_section "asbuffer.get" (fun () ->
  transfer_span ctx ~label:"get" ~slot (fun () ->
      if ctx.Asstd.wfd.Wfd.features.Wfd.ref_passing then begin
        let handle, data = load_handle ctx ~slot ~fingerprint:raw_fingerprint in
        (* Free immediately: ownership transferred to the receiver, which
           consumes the bytes it just traversed. *)
        (match handle.buffer with
        | Some b -> Libos_mm.free_buffer ctx.Asstd.wfd b
        | None -> ());
        data
      end
      else file_from_slot ctx ~slot))

(* Consume a raw slot without materialising the payload: the virtual
   path is byte-for-byte the one [from_slot_raw] takes — same buffer
   syscalls, same page traversal (access and TLB accounting included),
   same clock charges, same free — but the host-side copy of the bytes
   is never built.  For consumers that model work on the payload
   rather than computing on its contents. *)
let consume_slot_raw ctx ~slot =
  Hotspot.with_section "asbuffer.get" (fun () ->
  transfer_span ctx ~label:"get" ~slot (fun () ->
      if ctx.Asstd.wfd.Wfd.features.Wfd.ref_passing then begin
        let wfd = ctx.Asstd.wfd in
        let thread = ctx.Asstd.thread in
        let buffer =
          Asstd.sys ctx "acquire_buffer" (fun ~clock ->
              match Libos_mm.acquire_buffer wfd ~clock ~slot ~fingerprint:raw_fingerprint with
              | Ok b -> b
              | Error e -> raise (Errno.Error (e, slot)))
        in
        charge_ifi ctx buffer.Libos_mm.size;
        Address_space.touch_bytes wfd.Wfd.aspace ~pkru:thread.Wfd.pkru
          buffer.Libos_mm.addr buffer.Libos_mm.size;
        charge_traversal ctx buffer.Libos_mm.size;
        Libos_mm.free_buffer wfd buffer;
        buffer.Libos_mm.size
      end
      else Bytes.length (file_from_slot ctx ~slot)))

let free ctx handle =
  match handle.buffer with
  | Some b -> Libos_mm.free_buffer ctx.Asstd.wfd b
  | None -> ()
