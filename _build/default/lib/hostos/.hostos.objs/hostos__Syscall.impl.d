lib/hostos/syscall.ml: Format Sim Units
