open Sim

(* --- Chrome trace_event export ------------------------------------ *)

(* Root ancestor of each span, memoized: the export uses it as [tid] so
   each workflow / request gets its own track in the viewer. *)
let root_table collector =
  let tbl = Hashtbl.create 64 in
  let rec root_of (sp : Span.span) =
    match Hashtbl.find_opt tbl sp.Span.sp_id with
    | Some r -> r
    | None ->
        let r =
          if sp.Span.sp_parent = Span.none then sp.Span.sp_id
          else
            match Span.find collector sp.Span.sp_parent with
            | Some p -> root_of p
            | None -> sp.Span.sp_id
        in
        Hashtbl.replace tbl sp.Span.sp_id r;
        r
  in
  root_of

let attrs_json (sp : Span.span) extra =
  Jsonlite.Obj (extra @ List.map (fun (k, v) -> (k, Jsonlite.String v)) sp.Span.sp_attrs)

let ns_int t = Int64.to_int (Units.to_ns t)

let trace_json ?(collector = Span.global) () =
  let root_of = root_table collector in
  let events =
    List.map
      (fun (sp : Span.span) ->
        let begin_ns = ns_int sp.Span.sp_begin in
        let dur_ns = ns_int (Units.sub sp.Span.sp_end sp.Span.sp_begin) in
        Jsonlite.Obj
          [
            ("name", Jsonlite.String sp.Span.sp_label);
            ("cat", Jsonlite.String sp.Span.sp_category);
            ("ph", Jsonlite.String "X");
            ("ts", Jsonlite.Int (begin_ns / 1000));
            ("dur", Jsonlite.Int (dur_ns / 1000));
            ("pid", Jsonlite.Int 1);
            ("tid", Jsonlite.Int (root_of sp));
            ( "args",
              attrs_json sp
                [
                  ("span_id", Jsonlite.Int sp.Span.sp_id);
                  ("parent", Jsonlite.Int sp.Span.sp_parent);
                  ("ts_ns", Jsonlite.Int begin_ns);
                  ("dur_ns", Jsonlite.Int dur_ns);
                ] );
          ])
      (Span.spans collector)
  in
  Jsonlite.Obj
    [
      ("traceEvents", Jsonlite.List events);
      ("displayTimeUnit", Jsonlite.String "ns");
    ]

let trace_json_string ?collector () = Jsonlite.to_string (trace_json ?collector ())

let spans_jsonl ?(collector = Span.global) () =
  let line (sp : Span.span) =
    Jsonlite.to_string
      (Jsonlite.Obj
         [
           ("id", Jsonlite.Int sp.Span.sp_id);
           ("parent", Jsonlite.Int sp.Span.sp_parent);
           ("category", Jsonlite.String sp.Span.sp_category);
           ("label", Jsonlite.String sp.Span.sp_label);
           ("begin_ns", Jsonlite.Int (ns_int sp.Span.sp_begin));
           ("end_ns", Jsonlite.Int (ns_int sp.Span.sp_end));
           ("attrs", attrs_json sp []);
         ])
  in
  String.concat "" (List.map (fun sp -> line sp ^ "\n") (Span.spans collector))

(* --- Metrics export ------------------------------------------------ *)

let metrics_json () =
  let snap = Metrics.snapshot () in
  let histo (h : Metrics.histo_snapshot) =
    Jsonlite.Obj
      [
        ("name", Jsonlite.String h.Metrics.hs_name);
        ("count", Jsonlite.Int h.Metrics.hs_count);
        ("sum", Jsonlite.Float h.Metrics.hs_sum);
        ("min", Jsonlite.Float h.Metrics.hs_min);
        ("max", Jsonlite.Float h.Metrics.hs_max);
        ("p50", Jsonlite.Float h.Metrics.hs_p50);
        ("p90", Jsonlite.Float h.Metrics.hs_p90);
        ("p99", Jsonlite.Float h.Metrics.hs_p99);
        ( "buckets",
          Jsonlite.List
            (List.map
               (fun (i, c) -> Jsonlite.List [ Jsonlite.Int i; Jsonlite.Int c ])
               h.Metrics.hs_buckets) );
      ]
  in
  Jsonlite.Obj
    [
      ( "counters",
        Jsonlite.Obj
          (List.map (fun (n, v) -> (n, Jsonlite.Int v)) snap.Metrics.snap_counters) );
      ( "gauges",
        Jsonlite.Obj
          (List.map (fun (n, v) -> (n, Jsonlite.Float v)) snap.Metrics.snap_gauges) );
      ("histograms", Jsonlite.List (List.map histo snap.Metrics.snap_histograms));
    ]

let metrics_json_string () = Jsonlite.to_string (metrics_json ())

(* --- Critical-path breakdown --------------------------------------- *)

let categories =
  [ "boot"; "load-slow"; "load-fast"; "compute"; "transfer"; "network"; "io"; "retry" ]

let bucket_of category = if List.mem category categories then category else "other"

type breakdown = {
  bd_root : Span.id;
  bd_label : string;
  bd_total : Units.time;
  bd_buckets : (string * Units.time) list;
}

let breakdown ?(collector = Span.global) ~root () =
  let root_span =
    match Span.find collector root with
    | Some sp -> sp
    | None -> invalid_arg "Obs.breakdown: unknown root span"
  in
  (* Children indexed by parent once; Span.children is O(n) per call. *)
  let by_parent : (Span.id, Span.span list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (sp : Span.span) ->
      if sp.Span.sp_id <> sp.Span.sp_parent then
        let prev =
          match Hashtbl.find_opt by_parent sp.Span.sp_parent with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace by_parent sp.Span.sp_parent (sp :: prev))
    (Span.spans collector);
  let buckets = Hashtbl.create 16 in
  let attribute category d =
    if Units.( > ) d Units.zero then begin
      let b = bucket_of category in
      let prev =
        match Hashtbl.find_opt buckets b with Some v -> v | None -> Units.zero
      in
      Hashtbl.replace buckets b (Units.add prev d)
    end
  in
  (* Latest-finisher walk: within [lo, hi] of [sp], scan the children
     clipped to the interval from the latest end backwards.  A child
     whose (clipped) interval ends at or before the cursor claims it
     and recursion descends; the gap between its end and the cursor
     belongs to [sp] itself.  A child overlapping the cursor is
     shadowed by the sibling already claimed there and contributes
     nothing.  Every nanosecond of [hi - lo] lands in exactly one
     bucket, so the breakdown sums to the root duration exactly. *)
  let rec walk (sp : Span.span) lo hi =
    let kids =
      match Hashtbl.find_opt by_parent sp.Span.sp_id with
      | Some l -> l
      | None -> []
    in
    let clipped =
      List.filter_map
        (fun (k : Span.span) ->
          let b = Units.max k.Span.sp_begin lo in
          let e = Units.min k.Span.sp_end hi in
          if Units.( < ) b e then Some (k, b, e) else None)
        kids
    in
    let ordered =
      List.sort
        (fun ((a : Span.span), ab, ae) ((b : Span.span), bb, be) ->
          match Units.compare be ae with
          | 0 -> (
              match Units.compare ab bb with
              | 0 -> Stdlib.compare a.Span.sp_id b.Span.sp_id
              | c -> c)
          | c -> c)
        clipped
    in
    let cursor = ref hi in
    List.iter
      (fun (k, b, e) ->
        if Units.( <= ) e !cursor && Units.( < ) b !cursor then begin
          attribute sp.Span.sp_category (Units.sub !cursor e);
          walk k b e;
          cursor := b
        end)
      ordered;
    attribute sp.Span.sp_category (Units.sub !cursor lo)
  in
  walk root_span root_span.Span.sp_begin root_span.Span.sp_end;
  let all = categories @ [ "other" ] in
  {
    bd_root = root;
    bd_label = root_span.Span.sp_label;
    bd_total = Units.sub root_span.Span.sp_end root_span.Span.sp_begin;
    bd_buckets =
      List.map
        (fun c ->
          ( c,
            match Hashtbl.find_opt buckets c with
            | Some v -> v
            | None -> Units.zero ))
        all;
  }

let find_root ?(collector = Span.global) ~category () =
  List.fold_left
    (fun acc (sp : Span.span) ->
      if String.equal sp.Span.sp_category category then Some sp else acc)
    None
    (Span.roots collector)

let render_breakdown bd =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "critical path of %s (e2e %s):\n" bd.bd_label
    (Units.to_string bd.bd_total);
  let total_ns = Int64.to_float (Units.to_ns bd.bd_total) in
  List.iter
    (fun (c, d) ->
      if Units.( > ) d Units.zero then begin
        let pct =
          if total_ns <= 0.0 then 0.0
          else 100.0 *. Int64.to_float (Units.to_ns d) /. total_ns
        in
        Printf.bprintf buf "  %-10s %12s  %5.1f%%\n" c (Units.to_string d) pct
      end)
    bd.bd_buckets;
  Printf.bprintf buf "  %-10s %12s  100.0%%\n" "total" (Units.to_string bd.bd_total);
  Buffer.contents buf

let breakdown_json bd =
  Jsonlite.Obj
    [
      ("label", Jsonlite.String bd.bd_label);
      ("total_ns", Jsonlite.Int (ns_int bd.bd_total));
      ( "buckets",
        Jsonlite.Obj
          (List.map (fun (c, d) -> (c, Jsonlite.Int (ns_int d))) bd.bd_buckets) );
    ]
