lib/wasm/wasi.mli: Aot Interp
