(** FunctionChain (from ServerlessBench): a sequential chain of N
    functions, each receiving the intermediate data, touching it and
    forwarding it.  Long workflows, pure data-plane stress — no file
    input. *)

val app : seed:int -> payload:int -> length:int -> Fctx.app
(** The head function fabricates [payload] bytes; every link verifies a
    rolling checksum and forwards; the tail publishes the checksum as
    its output line. *)

val checksum : bytes -> int64
(** The rolling checksum every link maintains (exposed for tests). *)
