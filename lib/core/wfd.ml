open Sim
open Mem

type features = { on_demand : bool; ref_passing : bool; ifi : bool }

let default_features = { on_demand = true; ref_passing = true; ifi = false }

type thread = {
  fn_slot : int;
  clock : Clock.t;
  mutable pkru : Prot.pkru;
  user_pkru : Prot.pkru;
}

(* [id], [vfs], [fault], [pid] and [proc_table] are mutable only so a
   recycled WFD can be re-bound to its next request by {!acquire};
   nothing else writes them after construction. *)
type t = {
  mutable id : int;
  workflow_name : string;
  features : features;
  aspace : Address_space.t;
  buffer_alloc : Alloc.t;
  loaded_modules : (string, unit) Hashtbl.t;
  entry_table : (string, string) Hashtbl.t;
  ext : Ext.t;
  mutable vfs : Fsim.Vfs.t;
  mutable fault : Fault.t option;
  mutable tap : Hostos.Tap.device option;
  stdout : Buffer.t;
  mutable pid : Hostos.Process.pid;
  mutable proc_table : Hostos.Process.t;
  mutable next_fn_slot : int;
  mutable destroyed : bool;
  mutable entry_misses : int;
  mutable entry_hits : int;
  mutable trampoline_crossings : int;
  mutable span : Span.id;
}

let system_key = Prot.key_of_int 1
let shared_user_key = Prot.key_of_int 2
let buffer_key = Prot.key_of_int 3

(* IFI keys rotate through 4..15; beyond twelve isolated functions keys
   are reused (hardware has only 16). *)
let ifi_key_base = 4
let ifi_key_count = 12

let function_key t slot =
  if t.features.ifi then Prot.key_of_int (ifi_key_base + (slot mod ifi_key_count))
  else shared_user_key

let system_pkru = Prot.pkru_allow_all

let user_pkru_for t slot =
  Prot.pkru_deny_all_except [ function_key t slot; buffer_key; Prot.default_key ]

let next_id = Atomic.make 0

let live = Atomic.make 0

let live_count () = Atomic.get live

let rec live_decr () =
  let v = Atomic.get live in
  if v > 0 && not (Atomic.compare_and_set live v (v - 1)) then live_decr ()

(* WFD ids leak into traces ("wfd%d ..."), so parallel tasks must not
   draw them from the shared counter in completion order.  A task runs
   under [with_id_namespace ~base] over a range pre-reserved with
   [reserve_ids]; ids then depend only on the task's submission index,
   never on host interleaving. *)
let id_ns_key : int ref option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let fresh_id () =
  match Domain.DLS.get id_ns_key with
  | Some r ->
      incr r;
      !r
  | None -> Atomic.fetch_and_add next_id 1 + 1

let reserve_ids n = Atomic.fetch_and_add next_id n

let with_id_namespace ~base f =
  let old = Domain.DLS.get id_ns_key in
  Domain.DLS.set id_ns_key (Some (ref base));
  Fun.protect ~finally:(fun () -> Domain.DLS.set id_ns_key old) f

let create ?(features = default_features) ?vfs ?fault ~proc_table ~clock ~workflow_name () =
  let id = fresh_id () in
  Atomic.incr live;
  let aspace = Address_space.create () in
  (* System partition: visor and libos code, both on the system key.
     The libos heap region is *address space* for AsBuffers; its pages
     are mapped per allocation. *)
  Address_space.map aspace ~addr:Layout.visor_code.Layout.base
    ~len:Layout.visor_code.Layout.size ~perm:Page.rx ~pkey:system_key ();
  Address_space.map aspace ~addr:Layout.libos_code.Layout.base
    ~len:Layout.libos_code.Layout.size ~perm:Page.rx ~pkey:system_key ();
  (* Trampoline pages: user-executable (they run in user context before
     raising rights). *)
  Address_space.map aspace ~addr:Layout.trampoline.Layout.base
    ~len:Layout.trampoline.Layout.size ~perm:Page.rx ~pkey:Prot.default_key ();
  let vfs = match vfs with Some v -> v | None -> Fsim.Vfs.fresh_fat () in
  (* Under a fault plan the WFD's disk and buffer heap both become
     injection points; a plan-free WFD pays nothing. *)
  let vfs = match fault with Some plan -> Fsim.Vfs.with_faults plan vfs | None -> vfs in
  let pid = Hostos.Process.spawn_process proc_table ~at:(Clock.now clock) ~name:workflow_name () in
  (* The mapped system partition (visor + libos code, trampolines) is
     resident from the start. *)
  Hostos.Process.charge_rss proc_table pid
    (Layout.visor_code.Layout.size + Layout.libos_code.Layout.size
    + Layout.trampoline.Layout.size);
  Clock.advance clock Cost.wfd_create;
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Pkey_alloc);
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Pkey_mprotect);
  {
    id;
    workflow_name;
    features;
    aspace;
    buffer_alloc =
      Alloc.create ?fault ~base:Layout.libos_heap.Layout.base
        ~size:Layout.libos_heap.Layout.size ();
    loaded_modules = Hashtbl.create 8;
    entry_table = Hashtbl.create 16;
    ext = Ext.create ();
    vfs;
    fault;
    tap = None;
    stdout = Buffer.create 256;
    pid;
    proc_table;
    next_fn_slot = 0;
    destroyed = false;
    entry_misses = 0;
    entry_hits = 0;
    trampoline_crossings = 0;
    span = Span.none;
  }

let kib n = n * 1024
let mib n = n * 1024 * 1024

(* Map a fresh working set for a slot: code, an initial heap arena and
   the thread stack.  Exclusive segments per function (§6(1)). *)
let map_slot t slot =
  let key = function_key t slot in
  let code = Layout.function_code slot in
  let heap = Layout.function_heap slot in
  let stack = Layout.function_stack slot in
  Address_space.map t.aspace ~addr:code.Layout.base ~len:(kib 256) ~perm:Page.rx
    ~pkey:key ();
  Address_space.map t.aspace ~addr:heap.Layout.base ~len:(mib 1) ~perm:Page.rw
    ~pkey:key ();
  Address_space.map t.aspace ~addr:stack.Layout.base ~len:(kib 512) ~perm:Page.rw
    ~pkey:key ();
  Hostos.Process.charge_rss t.proc_table t.pid (kib 256 + mib 1 + kib 512)

let clone_into_slot t slot ~clock =
  (* The orchestrator clones the thread; the new thread starts once the
     clone returns and its runtime glue is set up. *)
  let main = Hostos.Process.main_thread t.proc_table t.pid in
  Clock.advance_to main.Hostos.Process.clock (Clock.now clock);
  let th = Hostos.Process.clone_thread t.proc_table t.pid in
  Clock.advance th.Hostos.Process.clock Cost.function_thread_start;
  let user_pkru = user_pkru_for t slot in
  { fn_slot = slot; clock = th.Hostos.Process.clock; pkru = user_pkru; user_pkru }

let spawn_function_thread t ~clock =
  if t.destroyed then invalid_arg "Wfd.spawn_function_thread: WFD destroyed";
  let slot = t.next_fn_slot in
  t.next_fn_slot <- slot + 1;
  map_slot t slot;
  clone_into_slot t slot ~clock

let respawn_function_thread t ~slot ~clock =
  if t.destroyed then invalid_arg "Wfd.respawn_function_thread: WFD destroyed";
  if slot < 0 || slot >= t.next_fn_slot then
    invalid_arg "Wfd.respawn_function_thread: slot was never spawned";
  (* Drop every mapping in the slot (heap-unit recovery): the crashed
     function's heap, stack, code and any anonymous mmaps vanish. *)
  let region = Layout.function_slot slot in
  Address_space.unmap t.aspace ~addr:region.Layout.base ~len:region.Layout.size;
  Hostos.Process.release_rss t.proc_table t.pid (kib 256 + mib 1 + kib 512);
  map_slot t slot;
  clone_into_slot t slot ~clock

(* CoW-clone a warm template into a fresh WFD: the system partition,
   loaded module namespaces and entry table come along with the clone
   (shared read-only pages); mutable per-request state (buffer heap,
   module state, stdout, function slots) starts fresh.  The clone gets
   its own process-table entry charged the same resident base as a
   created WFD, and pays Cost.wfd_clone instead of wfd_create +
   entry_table_init. *)
let clone_template ?vfs ?fault template ~proc_table ~clock =
  Hotspot.with_section "wfd.clone" @@ fun () ->
  if template.destroyed then invalid_arg "Wfd.clone_template: template destroyed";
  (* [vfs] / [fault] override the template's shared disk image and plan
     for this clone.  Parallel serving uses this: the template's vfs is
     host-shared mutable state, so each request clones onto a private
     image wrapped with its own fault plan. *)
  let vfs = match vfs with Some v -> v | None -> template.vfs in
  let fault = match fault with Some _ as f -> f | None -> template.fault in
  let id = fresh_id () in
  Atomic.incr live;
  let aspace = Address_space.create () in
  Address_space.map aspace ~addr:Layout.visor_code.Layout.base
    ~len:Layout.visor_code.Layout.size ~perm:Page.rx ~pkey:system_key ();
  Address_space.map aspace ~addr:Layout.libos_code.Layout.base
    ~len:Layout.libos_code.Layout.size ~perm:Page.rx ~pkey:system_key ();
  Address_space.map aspace ~addr:Layout.trampoline.Layout.base
    ~len:Layout.trampoline.Layout.size ~perm:Page.rx ~pkey:Prot.default_key ();
  let pid =
    Hostos.Process.spawn_process proc_table ~at:(Clock.now clock)
      ~name:template.workflow_name ()
  in
  Hostos.Process.charge_rss proc_table pid
    (Layout.visor_code.Layout.size + Layout.libos_code.Layout.size
    + Layout.trampoline.Layout.size);
  Clock.advance clock Cost.wfd_clone;
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Pkey_alloc);
  {
    id;
    workflow_name = template.workflow_name;
    features = template.features;
    aspace;
    buffer_alloc =
      Alloc.create ?fault ~base:Layout.libos_heap.Layout.base
        ~size:Layout.libos_heap.Layout.size ();
    loaded_modules = Hashtbl.copy template.loaded_modules;
    entry_table = Hashtbl.copy template.entry_table;
    ext = Ext.create ();
    vfs;
    fault;
    tap = None;
    stdout = Buffer.create 256;
    pid;
    proc_table;
    next_fn_slot = 0;
    destroyed = false;
    entry_misses = 0;
    entry_hits = 0;
    trampoline_crossings = 0;
    span = Span.none;
  }

let destroy t =
  if not t.destroyed then
    Hotspot.with_section "wfd.destroy" @@ fun () ->
    t.destroyed <- true;
    live_decr ();
    (match t.tap with Some _ -> t.tap <- None | None -> ());
    Hostos.Process.exit_process t.proc_table t.pid

(* Reset a finished clone back to its template image, so {!acquire} can
   re-bind it to a later request without re-allocating the address
   space, page table, TLB arena, hash tables or buffers.  Pure host
   work: no clock is charged and no global counter is touched (exactly
   like {!destroy} followed by a fresh clone's [Address_space.create]).
   The shell stays [live] while pooled; only {!destroy} retires it. *)
let recycle ~template t =
  Hotspot.with_section "wfd.recycle" @@ fun () ->
  if t.destroyed then invalid_arg "Wfd.recycle: WFD destroyed";
  if template.destroyed then invalid_arg "Wfd.recycle: template destroyed";
  Address_space.recycle t.aspace;
  Alloc.reset t.buffer_alloc;
  (* The clone's tables start as exact copies of the template's and
     only ever grow (module loads add entries, never remove), so equal
     sizes mean equal contents — the warm steady state, where the
     re-copy is skipped entirely. *)
  if Hashtbl.length t.loaded_modules <> Hashtbl.length template.loaded_modules
  then begin
    Hashtbl.reset t.loaded_modules;
    Hashtbl.iter (Hashtbl.replace t.loaded_modules) template.loaded_modules
  end;
  if Hashtbl.length t.entry_table <> Hashtbl.length template.entry_table then begin
    Hashtbl.reset t.entry_table;
    Hashtbl.iter (Hashtbl.replace t.entry_table) template.entry_table
  end;
  Ext.clear t.ext;
  (* A private per-request scratch disk is re-formatted in place and
     kept for the shell's next request (a recycled image is
     bit-identical in behaviour to the fresh one the next clone would
     have formatted); anything else — the template's shared image, or
     a backend without in-place reset — is dropped back to the
     template's so the pooled shell doesn't pin it. *)
  if not (t.vfs != template.vfs && Fsim.Vfs.recycle t.vfs) then
    t.vfs <- template.vfs;
  t.fault <- template.fault;
  t.tap <- None;
  (* [Buffer.reset], not [clear]: a pooled shell must not retain a
     request's grown stdout storage. *)
  Buffer.reset t.stdout;
  t.proc_table <- template.proc_table;
  t.pid <- template.pid;
  t.next_fn_slot <- 0;
  t.entry_misses <- 0;
  t.entry_hits <- 0;
  t.trampoline_crossings <- 0;
  t.span <- Span.none

(* Bind a recycled shell to its next request.  Mirrors
   {!clone_template}'s virtual effects exactly — same id draw, same
   base mappings (and thus the same TLB-flush counter traffic), same
   RSS charge, same [Cost.wfd_clone] + pkey-alloc clock charges — so a
   request served by a recycled WFD is indistinguishable, in every
   virtual observable, from one served by a fresh clone.  The shell
   keeps the template's fault plan (its buffer heap was armed with it
   at clone time); requests carrying a per-request plan must clone
   fresh instead. *)
let acquire ?vfs ~template t ~proc_table ~clock =
  Hotspot.with_section "wfd.acquire" @@ fun () ->
  if t.destroyed then invalid_arg "Wfd.acquire: WFD destroyed";
  if template.destroyed then invalid_arg "Wfd.acquire: template destroyed";
  (* [None] keeps the shell's current image: its recycled private
     scratch disk when {!recycle} kept one, the template's otherwise —
     exactly what the matching clone would have been given. *)
  let vfs = match vfs with Some v -> v | None -> t.vfs in
  t.id <- fresh_id ();
  Address_space.map t.aspace ~addr:Layout.visor_code.Layout.base
    ~len:Layout.visor_code.Layout.size ~perm:Page.rx ~pkey:system_key ();
  Address_space.map t.aspace ~addr:Layout.libos_code.Layout.base
    ~len:Layout.libos_code.Layout.size ~perm:Page.rx ~pkey:system_key ();
  Address_space.map t.aspace ~addr:Layout.trampoline.Layout.base
    ~len:Layout.trampoline.Layout.size ~perm:Page.rx ~pkey:Prot.default_key ();
  let pid =
    Hostos.Process.spawn_process proc_table ~at:(Clock.now clock)
      ~name:template.workflow_name ()
  in
  Hostos.Process.charge_rss proc_table pid
    (Layout.visor_code.Layout.size + Layout.libos_code.Layout.size
    + Layout.trampoline.Layout.size);
  Clock.advance clock Cost.wfd_clone;
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Pkey_alloc);
  t.vfs <- vfs;
  t.pid <- pid;
  t.proc_table <- proc_table;
  t

let mapped_bytes t = Address_space.mapped_bytes t.aspace

let is_loaded t name = Hashtbl.mem t.loaded_modules name
