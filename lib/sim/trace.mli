(** Structured execution tracing.

    A bounded ring of timestamped events.  Components record lifecycle
    events (WFD creation, module loads, entry misses, stage
    completions); tools dump or filter them.  Tracing is off by default
    and costs one branch when disabled. *)

type event = {
  at : Units.time;
  category : string;  (** e.g. "visor", "loader", "asbuffer". *)
  label : string;
  detail : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 4096 events; older events are dropped. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> at:Units.time -> category:string -> label:string -> string -> unit
(** No-op when disabled. *)

val recordf :
  t ->
  at:Units.time ->
  category:string ->
  label:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted detail.  When tracing is disabled no detail string is
    built and custom [%a] printers are never invoked; only the argument
    expressions themselves are evaluated at the call site. *)

val events : t -> event list
(** Oldest first. *)

val count : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events lost to ring overflow. *)

val set_sample_every : t -> ?seed:int -> int -> unit
(** [set_sample_every t ~seed k] keeps 1 event in [k] (a deterministic
    1-in-k stride whose phase is [seed mod k]).  [k = 1] (the default)
    keeps every event and is bit-identical to an unsampled trace.
    Raises [Invalid_argument] when [k < 1]. *)

val sample_every : t -> int

val seen : t -> int
(** Events offered while enabled, whether kept by sampling or not. *)

val filter : t -> category:string -> event list
val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
val dump : t -> string

val global : t
(** Process-wide trace used by the core library; disabled by default. *)

val current : unit -> t
(** Domain-local current buffer: {!global} on the main domain (unless
    {!set_current} swapped it), a private throwaway instance on worker
    domains.  [Par.with_shard] uses this slot to route a parallel
    task's events into a per-task shard. *)

val set_current : t -> unit

val import : t -> offset:Units.time -> t -> unit
(** [import t ~offset shard] replays [shard]'s events into [t] with
    times shifted by [offset], oldest first.  No-op while [t] is
    disabled. *)
