(* Differential tests for the percentile sketches (Sim.Sketch): P^2
   and the merging t-digest against exact order statistics over seeded
   populations with different shapes, plus the serve_fold contract the
   sketches enable — byte-identical responses to serve, and O(1) live
   memory over a 100k-request streamed fold. *)

open Alloystack_core
open Sim

(* --- Sketch vs exact order statistics ------------------------------ *)

let populations =
  [
    ("uniform", fun rng -> Rng.float rng 1000.0);
    ("exponential", fun rng -> Rng.exponential rng ~mean:50.0);
    (* Two well-separated modes, 70/30: stresses interpolation across
       density jumps without parking a tested quantile inside the
       empty gap (where any estimator's answer is arbitrary). *)
    ( "bimodal",
      fun rng ->
        if Rng.float rng 1.0 < 0.7 then Rng.gaussian rng ~mu:100.0 ~sigma:10.0
        else Rng.gaussian rng ~mu:500.0 ~sigma:25.0 );
  ]

let n = 10_000

let test_sketch_differential () =
  List.iter
    (fun (name, draw) ->
      let rng = Rng.create 1234 in
      let exact = Stats.create () in
      let p2_50 = Sketch.P2.create 0.5 in
      let p2_90 = Sketch.P2.create 0.9 in
      let p2_99 = Sketch.P2.create 0.99 in
      let td = Sketch.Tdigest.create () in
      for _ = 1 to n do
        let x = draw rng in
        Stats.add exact x;
        Sketch.P2.add p2_50 x;
        Sketch.P2.add p2_90 x;
        Sketch.P2.add p2_99 x;
        Sketch.Tdigest.add td x
      done;
      let check_rel what tol got want =
        let rel = Float.abs (got -. want) /. Float.max 1e-9 (Float.abs want) in
        Alcotest.(check bool)
          (Printf.sprintf "%s %s: %.3f vs exact %.3f (rel %.4f <= %.2f)" name
             what got want rel tol)
          true (rel <= tol)
      in
      (* The t-digest keeps tails near-exact; 2% everywhere matches the
         bound the serving bench asserts.  P^2 is a 5-marker estimate,
         so give it more slack. *)
      check_rel "tdigest p50" 0.02
        (Sketch.Tdigest.percentile td 50.0)
        (Stats.percentile exact 50.0);
      check_rel "tdigest p90" 0.02
        (Sketch.Tdigest.percentile td 90.0)
        (Stats.percentile exact 90.0);
      check_rel "tdigest p99" 0.02
        (Sketch.Tdigest.percentile td 99.0)
        (Stats.percentile exact 99.0);
      check_rel "p2 p50" 0.1 (Sketch.P2.quantile p2_50) (Stats.percentile exact 50.0);
      check_rel "p2 p90" 0.1 (Sketch.P2.quantile p2_90) (Stats.percentile exact 90.0);
      check_rel "p2 p99" 0.1 (Sketch.P2.quantile p2_99) (Stats.percentile exact 99.0))
    populations

let test_sketch_small_and_merge () =
  (* Under five observations P^2 answers from the sorted sample —
     exactly what Stats reports. *)
  let p2 = Sketch.P2.create 0.5 in
  Alcotest.(check bool) "empty P2 is nan" true (Float.is_nan (Sketch.P2.quantile p2));
  List.iter (fun x -> Sketch.P2.add p2 x) [ 5.0; 1.0; 3.0 ];
  let exact = Stats.create () in
  List.iter (fun x -> Stats.add exact x) [ 5.0; 1.0; 3.0 ];
  Alcotest.(check (float 1e-9)) "P2 exact under 5 samples"
    (Stats.percentile exact 50.0) (Sketch.P2.quantile p2);
  (* Merging two digests covers the same population as feeding one. *)
  let rng = Rng.create 99 in
  let whole = Sketch.Tdigest.create () in
  let a = Sketch.Tdigest.create () in
  let b = Sketch.Tdigest.create () in
  for i = 1 to 20_000 do
    let x = Rng.exponential rng ~mean:10.0 in
    Sketch.Tdigest.add whole x;
    Sketch.Tdigest.add (if i mod 2 = 0 then a else b) x
  done;
  Sketch.Tdigest.merge_into ~src:b ~dst:a;
  Alcotest.(check (float 1e-9)) "merge preserves count"
    (Sketch.Tdigest.count whole) (Sketch.Tdigest.count a);
  List.iter
    (fun p ->
      let w = Sketch.Tdigest.percentile whole p in
      let m = Sketch.Tdigest.percentile a p in
      Alcotest.(check bool)
        (Printf.sprintf "merged p%.0f %.3f ~ whole %.3f" p m w)
        true
        (Float.abs (m -. w) /. Float.max 1e-9 w <= 0.03))
    [ 50.0; 90.0; 99.0 ]

(* --- serve_fold contract ------------------------------------------- *)

let test_serve_fold_matches_serve () =
  let count = 300 in
  let seed = 7 in
  let requests = Test_par.requests_for ~seed ~count in
  let with_server f =
    let server = Visor.Server.create () in
    List.iter
      (fun (endpoint, workflow, bindings) ->
        Visor.Server.register server ~endpoint ~workflow ~bindings ())
      Test_par.endpoints_spec;
    let r = f server in
    Visor.Server.shutdown server;
    r
  in
  let want = with_server (fun s -> Visor.Server.serve s requests) in
  let next =
    let remaining = ref requests in
    fun () ->
      match !remaining with
      | [] -> None
      | r :: tl ->
          remaining := tl;
          Some r
  in
  let folded, s =
    with_server (fun srv ->
        Visor.Server.serve_fold srv next ~init:[] ~f:(fun acc r -> r :: acc))
  in
  (* Responses are the materialised report's, byte for byte, in
     completion order; the summary carries the same aggregates. *)
  Alcotest.(check bool) "responses identical" true
    (List.rev folded
    = List.sort
        (fun (a : Visor.Server.response) b ->
          Units.compare a.Visor.Server.r_finish b.Visor.Server.r_finish)
        want.Visor.Server.responses
    || List.rev folded = want.Visor.Server.responses);
  Alcotest.(check int) "completed" want.Visor.Server.completed s.Visor.Server.sm_completed;
  Alcotest.(check int) "failed" want.Visor.Server.failed s.Visor.Server.sm_failed;
  Alcotest.(check int) "max inflight" want.Visor.Server.max_inflight
    s.Visor.Server.sm_max_inflight;
  Alcotest.(check string) "p99 identical"
    (Units.to_string want.Visor.Server.p99_latency)
    (Units.to_string s.Visor.Server.sm_p99_latency);
  Alcotest.(check bool) "not sketched by default" false
    s.Visor.Server.sm_latency_sketched

let test_fold_live_words_flat () =
  (* A 100k-request fold that retains nothing must run in O(window +
     inflight) live words: the live-heap reading must not grow with
     completions.  A reintroduced response list would add >1M words
     between the first and last probe. *)
  let count = 100_000 in
  let seed = 7 in
  let qps = 700.0 in
  let eps =
    Array.of_list (List.map (fun (e, _, _) -> e) Test_par.endpoints_spec)
  in
  let next =
    Baselines.Loadgen.request_stream ~seed ~qps ~endpoints:eps ~count ()
  in
  Metrics.set_raw_sample_every ~seed 64;
  let server =
    Visor.Server.create ~sample_every:64 ~sample_seed:seed ~sketch_latency:true ()
  in
  List.iter
    (fun (endpoint, workflow, bindings) ->
      Visor.Server.register server ~endpoint ~workflow ~bindings ())
    Test_par.endpoints_spec;
  let seen = ref 0 in
  let probes = ref [] in
  let (), s =
    Visor.Server.serve_fold server
      (fun () ->
        match next () with
        | None -> None
        | Some (endpoint, arrival) -> Some { Visor.Server.endpoint; arrival })
      ~init:()
      ~f:(fun () _ ->
        incr seen;
        if !seen mod 25_000 = 0 then begin
          Gc.full_major ();
          probes := (Gc.stat ()).Gc.live_words :: !probes
        end)
  in
  Visor.Server.shutdown server;
  Metrics.set_raw_sample_every 1;
  Alcotest.(check int) "all completed" count s.Visor.Server.sm_completed;
  Alcotest.(check bool) "sketched percentiles" true s.Visor.Server.sm_latency_sketched;
  match List.rev !probes with
  | first :: _ :: _ as all ->
      let last = List.nth all (List.length all - 1) in
      Alcotest.(check bool)
        (Printf.sprintf "live words flat across fold (%d -> %d)" first last)
        true
        (last - first < 512_000)
  | _ -> Alcotest.fail "expected at least two live-word probes"

let suite =
  [
    Alcotest.test_case "P2/t-digest vs exact percentiles" `Quick
      test_sketch_differential;
    Alcotest.test_case "small-n exactness and digest merge" `Quick
      test_sketch_small_and_merge;
    Alcotest.test_case "serve_fold == serve" `Quick test_serve_fold_matches_serve;
    Alcotest.test_case "100k fold: live words O(1)" `Slow test_fold_live_words_flat;
  ]
