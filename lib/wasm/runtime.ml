open Sim

type profile = {
  name : string;
  startup : Units.time;
  compile_per_instr : Units.time;
  exec_per_kinstr : Units.time;
  interp_per_instr : Units.time;
}

(* Native baseline on the simulated Xeon: ~0.5ns per abstract machine
   instruction.  WAVM (LLVM) reaches ~1.1x native on this kind of code;
   Wasmtime (Cranelift) is 30% slower than WAVM (§8.5 / [22,69]). *)
let native_per_instr_ns = 0.5

let wavm =
  {
    name = "WAVM";
    startup = Units.ms 4;
    compile_per_instr = Units.ns 2600;  (* LLVM -O2-ish *)
    exec_per_kinstr = Units.ns_f (native_per_instr_ns *. 1.1 *. 1000.0);
    interp_per_instr = Units.ns 9;
  }

let wasmtime =
  {
    name = "Wasmtime";
    startup = Units.ms_f 2.4;
    compile_per_instr = Units.ns 820;  (* Cranelift compiles faster *)
    exec_per_kinstr = Units.ns_f (native_per_instr_ns *. 1.1 *. 1.3 *. 1000.0);
    interp_per_instr = Units.ns 11;
  }

let cpython_init = Units.ms 1860

type loaded = { profile : profile; compiled : Aot.compiled; module_ : Wmodule.t }

let load ?cache ?fault profile ~clock m =
  Clock.advance clock profile.startup;
  let compile_now () =
    (* A fired loader fault models a transient dlmopen failure while
       the engine loads this module: the half-built namespace is
       discarded, the engine restarts, and the load repeats the slow
       path.  The check sits inside the fill thunk so a fired fault
       can never leave a half-built entry in the compile cache. *)
    (match fault with
    | Some plan when Fault.check ~at:(Clock.now clock) plan ~site:Fault.site_loader_load ->
        Clock.advance clock profile.startup;
        Fault.record_recovery plan ~at:(Clock.now clock) ~site:Fault.site_loader_load
          ("slow-path reload of wasm module " ^ m.Wmodule.name)
    | _ -> ());
    Aot.compile m
  in
  let compiled =
    match cache with
    | None -> compile_now ()
    | Some c -> Compile_cache.find_or_compile c m ~compile:compile_now
  in
  (* Virtual compile time is charged whether or not the cache hit: the
     cache saves host work only, keeping simulated results identical. *)
  Clock.advance clock
    (Units.scale profile.compile_per_instr (float_of_int (Wmodule.code_size m)));
  { profile; compiled; module_ = m }

(* Linker binding + linear memory allocation. *)
let instantiate_cost m =
  Units.add (Units.us 140)
    (Units.us (8 * List.length m.Wmodule.imports))

let instantiate loaded ~clock ~system =
  Clock.advance clock (instantiate_cost loaded.module_);
  Aot.instantiate ~hosts:(Wasi.aot_imports system) loaded.compiled

let run loaded ~clock ~instance name args =
  let before = Aot.executed instance in
  let result = Aot.call instance name args in
  let retired = Aot.executed instance - before in
  Clock.advance clock
    (Units.scale loaded.profile.exec_per_kinstr (float_of_int retired /. 1000.0));
  result

let image_of loaded = Aot.to_image loaded.compiled

let slowdown_vs_native p =
  Int64.to_float (Units.to_ns p.exec_per_kinstr) /. (native_per_instr_ns *. 1000.0)

let charge_synthetic p ~clock ~native_work =
  Clock.advance clock (Units.scale native_work (slowdown_vs_native p))
