lib/baselines/openfaas.ml: Clock Fctx Fsim Hostos Lazy List Netsim Platform Runner Sim Units Vmm Workloads
