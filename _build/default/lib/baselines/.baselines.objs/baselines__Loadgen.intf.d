lib/baselines/loadgen.mli: Sim
