(** Time-ordered event queue (pairing heap).

    Drives the serving merge loop, the open-loop load generator and any
    component that needs future-scheduled callbacks.  Insert, pop,
    cancel and re-key are all O(log n) amortised; there is no linear
    membership scan anywhere.  Ordering is (time, priority class,
    insertion order), so ties are broken deterministically and
    same-key events pop FIFO. *)

type 'a t

type 'a handle
(** Stable token for a scheduled event; survives heap restructuring. *)

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> at:Units.time -> ?pri:int -> 'a -> unit
(** Schedule a payload at the given instant.  [pri] (default 0) breaks
    same-instant ties before insertion order: lower pops first. *)

val add : 'a t -> at:Units.time -> ?pri:int -> 'a -> 'a handle
(** Like {!push} but returns a handle for {!cancel}/{!reschedule}. *)

val pop : 'a t -> (Units.time * 'a) option
(** Remove and return the earliest event. *)

val peek : 'a t -> (Units.time * 'a) option

val cancel : 'a t -> 'a handle -> bool
(** Remove a scheduled event.  Returns [false] (and does nothing) if
    the event was already popped, cancelled, or re-keyed away —
    cancelling is always safe. *)

val reschedule : 'a t -> 'a handle -> at:Units.time -> unit
(** Re-key an event to a new instant.  The event is treated as freshly
    inserted for tie-breaking purposes.  If the handle was already
    popped or cancelled, the event is re-armed. *)

val queued : 'a handle -> bool
(** Whether the handle is currently scheduled. *)

val handle_at : 'a handle -> Units.time
(** The instant the handle is (or was last) scheduled at. *)

val drain : 'a t -> (Units.time -> 'a -> unit) -> unit
(** [drain t f] pops every event in time order and applies [f].  Events
    pushed by [f] itself are processed too, so [f] must eventually stop
    scheduling. *)
