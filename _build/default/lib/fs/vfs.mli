(** Uniform filesystem interface over {!Fat}, {!Extfs} and {!Ramfs}.

    The as-libos fatfs module and the baseline platforms are written
    against this interface so a workflow can be re-run on a different
    backing filesystem (the Fig. 16 ramfs experiment) without touching
    workload code. *)

type t = {
  name : string;
  write_file : ?clock:Sim.Clock.t -> string -> bytes -> unit;
  read_file : ?clock:Sim.Clock.t -> string -> bytes;
  file_size : string -> int;
  exists : string -> bool;
  delete : string -> unit;
  list_files : unit -> string list;
}

val of_fat : Fat.t -> t
val of_extfs : Extfs.t -> t
val of_ramfs : Ramfs.t -> t

val fresh_fat : ?mib:int -> unit -> t
(** Format a new FAT fs on a fresh device of the given size
    (default 2048 MiB, enough for the 300 MB WordCount inputs plus
    intermediates). *)

val fresh_extfs : ?mib:int -> unit -> t
val fresh_ramfs : unit -> t
