type hole = { start : int; count : int }

type t = { mutable holes : hole list }

let create ~start ~count =
  if count <= 0 then invalid_arg "Mem_free.create: count must be positive";
  { holes = [ { start; count } ] }

let take t n =
  if n <= 0 then invalid_arg "Mem_free.take: n must be positive";
  (* Prefer the first hole large enough for the whole request; fall back
     to the largest hole (splitting the request into extents). *)
  let rec pick_whole = function
    | [] -> None
    | h :: _ when h.count >= n -> Some h
    | _ :: rest -> pick_whole rest
  in
  let chosen =
    match pick_whole t.holes with
    | Some h -> Some h
    | None -> begin
        match t.holes with
        | [] -> None
        | first :: rest ->
            Some (List.fold_left (fun best h -> if h.count > best.count then h else best) first rest)
      end
  in
  match chosen with
  | None -> None
  | Some h ->
      let granted = Stdlib.min n h.count in
      let rec replace = function
        | [] -> []
        | x :: rest when x.start = h.start ->
            if granted = h.count then rest
            else { start = h.start + granted; count = h.count - granted } :: rest
        | x :: rest -> x :: replace rest
      in
      t.holes <- replace t.holes;
      Some (h.start, granted)

let give t ~start ~count =
  let hole = { start; count } in
  let rec insert = function
    | [] -> [ hole ]
    | h :: rest when hole.start + hole.count < h.start -> hole :: h :: rest
    | h :: rest when hole.start + hole.count = h.start ->
        { start = hole.start; count = hole.count + h.count } :: rest
    | h :: rest when h.start + h.count = hole.start ->
        merge { start = h.start; count = h.count + hole.count } rest
    | h :: rest -> h :: insert rest
  and merge m = function
    | h :: rest when m.start + m.count = h.start ->
        { start = m.start; count = m.count + h.count } :: rest
    | rest -> m :: rest
  in
  t.holes <- insert t.holes

let free_sectors t = List.fold_left (fun acc h -> acc + h.count) 0 t.holes

let hole_count t = List.length t.holes
