lib/hostos/sched.ml: Array List Sim Units
