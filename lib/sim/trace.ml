type event = { at : Units.time; category : string; label : string; detail : string }

(* The ring is materialised on first record, so an enabled-but-silent
   trace (e.g. a per-request shard on the serving path) costs a few
   words, not [capacity] slots.  [every]/[phase] implement seeded
   1-in-k event sampling: with [every <= 1] the path is bit-identical
   to an unsampled trace. *)
type t = {
  mutable ring : event option array;
  capacity : int;
  mutable head : int;  (** Next write position. *)
  mutable stored : int;
  mutable dropped : int;
  mutable on : bool;
  mutable every : int;  (** Keep 1 event in [every]; 1 = keep all. *)
  mutable phase : int;
  mutable seen : int;  (** Events offered while enabled, kept or not. *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    ring = [||];
    capacity;
    head = 0;
    stored = 0;
    dropped = 0;
    on = false;
    every = 1;
    phase = 0;
    seen = 0;
  }

let enabled t = t.on
let set_enabled t v = t.on <- v

let set_sample_every t ?(seed = 0) every =
  if every < 1 then invalid_arg "Trace.set_sample_every: every must be >= 1";
  t.every <- every;
  t.phase <- ((seed mod every) + every) mod every

let sample_every t = t.every

let record t ~at ~category ~label detail =
  if t.on then begin
    let keep = t.every <= 1 || t.seen mod t.every = t.phase in
    t.seen <- t.seen + 1;
    if keep then begin
      if Array.length t.ring = 0 then t.ring <- Array.make t.capacity None;
      let cap = t.capacity in
      if t.stored = cap then t.dropped <- t.dropped + 1 else t.stored <- t.stored + 1;
      t.ring.(t.head) <- Some { at; category; label; detail };
      t.head <- (t.head + 1) mod cap
    end
  end

let recordf t ~at ~category ~label fmt =
  if t.on then Format.kasprintf (fun detail -> record t ~at ~category ~label detail) fmt
  else Format.ikfprintf ignore Format.str_formatter fmt

let events t =
  if t.stored = 0 then []
  else begin
    let cap = t.capacity in
    let start = (t.head - t.stored + cap) mod cap in
    List.init t.stored (fun i ->
        match t.ring.((start + i) mod cap) with
        | Some e -> e
        | None -> assert false)
  end

let count t = t.stored
let dropped t = t.dropped
let seen t = t.seen

let filter t ~category =
  List.filter (fun e -> String.equal e.category category) (events t)

(* Only the region written since the last clear can hold events:
   before the ring wraps that is [0, head) (writes are sequential from
   0), and once it has wrapped ([stored = capacity]) it is the whole
   ring.  Clearing just that region keeps scrub-for-reuse O(live), not
   O(capacity) — a shard that recorded one sampled event clears one
   slot, not 4096. *)
let clear t =
  if t.stored > 0 then begin
    let upto = if t.stored = t.capacity then t.capacity else t.head in
    Array.fill t.ring 0 upto None
  end;
  t.head <- 0;
  t.stored <- 0;
  t.dropped <- 0;
  t.seen <- 0

let pp_event fmt e =
  Format.fprintf fmt "[%a] %-10s %-20s %s" Units.pp e.at e.category e.label e.detail

let dump t =
  String.concat "\n" (List.map (Format.asprintf "%a" pp_event) (events t))

let global = create ()

(* Graft a shard's events onto [t] with times shifted by [offset].
   Replaying through [record] keeps ring-buffer drop accounting and
   destination-side sampling identical to having recorded the events
   directly. *)
let import t ~offset shard =
  List.iter
    (fun e ->
      record t ~at:(Units.add e.at offset) ~category:e.category ~label:e.label
        e.detail)
    (events shard)

(* Domain-local "current" buffer: main domain -> [global], workers
   default to a private instance until [Par.with_shard] installs a
   per-task shard. *)
let current_key = Domain.DLS.new_key (fun () -> create ())
let () = Domain.DLS.set current_key global
let current () = Domain.DLS.get current_key
let set_current t = Domain.DLS.set current_key t
