lib/core/trampoline.ml: Address_space Clock Cost Layout Mem Prot Sim Wfd
