(* Host-time and host-allocation hotspot profiler.

   Sections are *host* accumulators: they measure where the simulator
   itself spends real time (WFD cloning, scheduler pool churn,
   admission hashing, ...) and real allocation, never virtual time.
   Profiling is off by default; a disabled [with_section] is one atomic
   load and a branch, so instrumentation can stay in hot paths
   permanently.

   When enabled, each section additionally records the GC's
   allocated-words deltas across the section body (one [Gc.counters]
   read per boundary): minor-heap words and words allocated directly
   in the major heap (major minus promoted, so minor + major equals
   total allocation — the same quantity [Gc.allocated_bytes] reports
   in bytes).  The [Gc.counters] call itself allocates a small tuple
   (~10 words), which the enclosing section self-charges; per-section
   words are therefore exact to within tens of words, not exact to the
   word.

   Accumulators are per-domain (a Domain.DLS table registered into a
   global list), so parallel trajectory workers never contend on a
   shared table — and the Gc counters read on a worker domain are that
   domain's own, so the attribution stays coherent under [Par.run].
   [snapshot] merges every domain's table; call it only when the
   instrumented workload is quiescent (e.g. after a bench run), since
   worker domains write their tables without locks. *)

type cell = {
  mutable c_count : int;
  mutable c_ns : float;
  mutable c_minor : float;
  mutable c_major : float;
}

type entry = {
  hs_name : string;
  hs_count : int;
  hs_total_ns : float;
  hs_minor_words : float;
  hs_major_words : float;
}

let entry_words e = e.hs_minor_words +. e.hs_major_words

let enabled_flag = Atomic.make false

let registry : (string, cell) Hashtbl.t list ref = ref []
let registry_mu = Mutex.create ()

let local : (string, cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let tbl = Hashtbl.create 32 in
      Mutex.protect registry_mu (fun () -> registry := tbl :: !registry);
      tbl)

let enabled () = Atomic.get enabled_flag
let set_enabled on = Atomic.set enabled_flag on

let now_ns () = Unix.gettimeofday () *. 1e9

let cell_of tbl name =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None ->
      let c = { c_count = 0; c_ns = 0.0; c_minor = 0.0; c_major = 0.0 } in
      Hashtbl.add tbl name c;
      c

(* Sections nest: a parent's total includes its children (inclusive
   timing and inclusive allocation), so sibling sections partition
   their parent but the sum over *all* sections can exceed the
   end-to-end wall time or allocation. *)
let with_section name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let cell = cell_of (Domain.DLS.get local) name in
    let min0, pro0, maj0 = Gc.counters () in
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_ns () in
        let min1, pro1, maj1 = Gc.counters () in
        cell.c_count <- cell.c_count + 1;
        cell.c_ns <- cell.c_ns +. (t1 -. t0);
        cell.c_minor <- cell.c_minor +. (min1 -. min0);
        cell.c_major <- cell.c_major +. (maj1 -. pro1 -. (maj0 -. pro0)))
      f
  end

let snapshot () =
  let merged : (string, cell) Hashtbl.t = Hashtbl.create 32 in
  Mutex.protect registry_mu (fun () ->
      List.iter
        (fun tbl ->
          Hashtbl.iter
            (fun name (c : cell) ->
              let m = cell_of merged name in
              m.c_count <- m.c_count + c.c_count;
              m.c_ns <- m.c_ns +. c.c_ns;
              m.c_minor <- m.c_minor +. c.c_minor;
              m.c_major <- m.c_major +. c.c_major)
            tbl)
        !registry);
  Hashtbl.fold
    (fun name (c : cell) acc ->
      {
        hs_name = name;
        hs_count = c.c_count;
        hs_total_ns = c.c_ns;
        hs_minor_words = c.c_minor;
        hs_major_words = c.c_major;
      }
      :: acc)
    merged []
  |> List.sort (fun a b -> String.compare a.hs_name b.hs_name)

let reset () =
  Mutex.protect registry_mu (fun () -> List.iter Hashtbl.reset !registry)
