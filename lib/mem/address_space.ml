type fault_kind =
  | Unmapped
  | Perm_denied of Prot.access
  | Pkey_denied of Prot.access * Prot.key

exception Fault of { addr : int; kind : fault_kind }

let pp_fault_kind fmt = function
  | Unmapped -> Format.pp_print_string fmt "unmapped"
  | Perm_denied a -> Format.fprintf fmt "permission denied (%a)" Prot.pp_access a
  | Pkey_denied (a, k) ->
      Format.fprintf fmt "pkey %d denied (%a)" (Prot.key_to_int k) Prot.pp_access a

type t = {
  pages : (int, Page.t) Hashtbl.t;
  mutable fault_handler : (int -> unit) option;
  mutable demand_faults : int;
  mutable accesses : int;
}

let create () =
  { pages = Hashtbl.create 1024; fault_handler = None; demand_faults = 0; accesses = 0 }

let fault addr kind = raise (Fault { addr; kind })

let map t ~addr ~len ?(perm = Page.rw) ?(pkey = Prot.default_key) () =
  if addr land (Page.size - 1) <> 0 then
    invalid_arg "Address_space.map: addr not page aligned";
  if len <= 0 then invalid_arg "Address_space.map: len must be positive";
  let first = Page.vpn_of_addr addr in
  let count = Page.count_for len in
  for vpn = first to first + count - 1 do
    if Hashtbl.mem t.pages vpn then
      invalid_arg
        (Printf.sprintf "Address_space.map: page 0x%x already mapped"
           (Page.addr_of_vpn vpn))
  done;
  for vpn = first to first + count - 1 do
    Hashtbl.replace t.pages vpn (Page.create ~perm ~pkey ())
  done

let unmap t ~addr ~len =
  let first = Page.vpn_of_addr addr in
  let count = Page.count_for len in
  for vpn = first to first + count - 1 do
    Hashtbl.remove t.pages vpn
  done

let is_mapped t addr = Hashtbl.mem t.pages (Page.vpn_of_addr addr)

let page_count t = Hashtbl.length t.pages
let mapped_bytes t = page_count t * Page.size

let get_page t addr =
  match Hashtbl.find_opt t.pages (Page.vpn_of_addr addr) with
  | Some p -> p
  | None -> fault addr Unmapped

let iter_range t ~addr ~len f =
  if len > 0 then begin
    let first = Page.vpn_of_addr addr in
    let last = Page.vpn_of_addr (addr + len - 1) in
    for vpn = first to last do
      match Hashtbl.find_opt t.pages vpn with
      | Some p -> f vpn p
      | None -> fault (Page.addr_of_vpn vpn) Unmapped
    done
  end

let pkey_mprotect t ~addr ~len key =
  iter_range t ~addr ~len (fun _ p -> p.Page.pkey <- key)

let mprotect t ~addr ~len perm =
  iter_range t ~addr ~len (fun _ p -> p.Page.perm <- perm)

let key_of t addr = (get_page t addr).Page.pkey

let serve_demand_fault t addr page =
  if not page.Page.populated then
    match t.fault_handler with
    | Some handler ->
        t.demand_faults <- t.demand_faults + 1;
        handler addr;
        page.Page.populated <- true
    | None -> page.Page.populated <- true

(* Permission check for one page under a given PKRU. *)
let check_page addr page ~pkru access =
  let perm_ok =
    match access with
    | Prot.Read -> page.Page.perm.Page.read
    | Prot.Write -> page.Page.perm.Page.write
    | Prot.Execute -> page.Page.perm.Page.exec
  in
  if not perm_ok then fault addr (Perm_denied access);
  if not (Prot.access_allowed pkru page.Page.pkey access) then
    fault addr (Pkey_denied (access, page.Page.pkey))

let checked_page t ~pkru addr access =
  let page = get_page t addr in
  check_page addr page ~pkru access;
  serve_demand_fault t addr page;
  t.accesses <- t.accesses + 1;
  page

let load_byte t ~pkru addr =
  let page = checked_page t ~pkru addr Prot.Read in
  Bytes.get (Page.data page) (Page.offset_of_addr addr)

let store_byte t ~pkru addr c =
  let page = checked_page t ~pkru addr Prot.Write in
  page.Page.populated <- true;
  Bytes.set (Page.data page) (Page.offset_of_addr addr) c

(* Walk a range page by page, calling [f page page_offset buf_offset n]
   for each contiguous chunk. *)
let walk t ~pkru ~access addr len f =
  let pos = ref addr and done_ = ref 0 in
  while !done_ < len do
    let page = checked_page t ~pkru !pos access in
    let off = Page.offset_of_addr !pos in
    let n = Stdlib.min (Page.size - off) (len - !done_) in
    f page off !done_ n;
    if access = Prot.Write then page.Page.populated <- true;
    pos := !pos + n;
    done_ := !done_ + n
  done

let load_bytes t ~pkru addr len =
  let buf = Bytes.create len in
  walk t ~pkru ~access:Prot.Read addr len (fun page off boff n ->
      Bytes.blit (Page.data page) off buf boff n);
  buf

let store_bytes t ~pkru addr src =
  let len = Bytes.length src in
  walk t ~pkru ~access:Prot.Write addr len (fun page off boff n ->
      Bytes.blit src boff (Page.data page) off n)

let load_int64 t ~pkru addr =
  let b = load_bytes t ~pkru addr 8 in
  Bytes.get_int64_le b 0

let store_int64 t ~pkru addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  store_bytes t ~pkru addr b

let blit t ~pkru ~src ~dst ~len =
  (* Load fully, then store: ranges may overlap in principle; a buffer
     copy gives memmove semantics. *)
  let data = load_bytes t ~pkru src len in
  store_bytes t ~pkru dst data

let fill t ~pkru ~addr ~len c =
  walk t ~pkru ~access:Prot.Write addr len (fun page off _ n ->
      Bytes.fill (Page.data page) off n c)

let check_exec t ~pkru addr = ignore (checked_page t ~pkru addr Prot.Execute)

let set_fault_handler t h = t.fault_handler <- h

let populate_page t ~vpn data =
  match Hashtbl.find_opt t.pages vpn with
  | None -> fault (Page.addr_of_vpn vpn) Unmapped
  | Some page ->
      let n = Stdlib.min (Bytes.length data) Page.size in
      Bytes.blit data 0 (Page.data page) 0 n;
      page.Page.populated <- true

let touched_fault_count t = t.demand_faults

let access_count t = t.accesses
