open Sim

type t = {
  store : (string, bytes) Hashtbl.t;
  link : Link.t;
  server_clock : Clock.t;
}

let create ?(link = Link.datacenter) () =
  { store = Hashtbl.create 64; link; server_clock = Clock.create () }

let encode_set key value =
  Printf.sprintf "*3\r\n$3\r\nSET\r\n$%d\r\n%s\r\n$%d\r\n%s\r\n" (String.length key)
    key (Bytes.length value) (Bytes.to_string value)

let encode_get key =
  Printf.sprintf "*2\r\n$3\r\nGET\r\n$%d\r\n%s\r\n" (String.length key) key

type client = { server : t; conn : Tcp.t; clock : Clock.t }

let connect server clock =
  let conn =
    Tcp.connect ~client:clock ~server:server.server_clock ~link:server.link
      ~client_profile:Tcp.linux ~server_profile:Tcp.linux ()
  in
  { server; conn; clock }

(* Serialisation: ~1.1 GB/s for a protobuf/JSON-ish encode plus fixed
   dispatch overhead. *)
let serialization_cost n =
  Units.add (Units.us 3) (Units.time_for_bytes ~bytes_per_sec:1.1e9 n)

let command_overhead = Units.us 8 (* server-side command parse + index *)

let set client key value =
  Clock.advance client.clock (serialization_cost (Bytes.length value));
  (* RESP framing and payload travel as separate segments so large
     values avoid a giant concatenation. *)
  let header =
    Printf.sprintf "*3\r\n$3\r\nSET\r\n$%d\r\n%s\r\n$%d\r\n" (String.length key) key
      (Bytes.length value)
  in
  Tcp.send client.conn ~from_client:true (Bytes.of_string header);
  Tcp.send client.conn ~from_client:true value;
  Tcp.send client.conn ~from_client:true (Bytes.of_string "\r\n");
  ignore (Tcp.recv client.conn ~at_client:false (String.length header));
  ignore (Tcp.recv client.conn ~at_client:false (Bytes.length value + 2));
  Clock.advance client.server.server_clock command_overhead;
  Hashtbl.replace client.server.store key (Bytes.copy value);
  (* +OK reply *)
  Tcp.send client.conn ~from_client:false (Bytes.of_string "+OK\r\n");
  ignore (Tcp.recv client.conn ~at_client:true 5)

let get client key =
  let payload = Bytes.of_string (encode_get key) in
  Tcp.send client.conn ~from_client:true payload;
  ignore (Tcp.recv client.conn ~at_client:false (Bytes.length payload));
  Clock.advance client.server.server_clock command_overhead;
  match Hashtbl.find_opt client.server.store key with
  | None ->
      Tcp.send client.conn ~from_client:false (Bytes.of_string "$-1\r\n");
      ignore (Tcp.recv client.conn ~at_client:true 5);
      None
  | Some value ->
      let header = Printf.sprintf "$%d\r\n" (Bytes.length value) in
      Tcp.send client.conn ~from_client:false (Bytes.of_string header);
      Tcp.send client.conn ~from_client:false value;
      Tcp.send client.conn ~from_client:false (Bytes.of_string "\r\n");
      ignore (Tcp.recv client.conn ~at_client:true (String.length header));
      let body = Tcp.recv client.conn ~at_client:true (Bytes.length value) in
      ignore (Tcp.recv client.conn ~at_client:true 2);
      Clock.advance client.clock (serialization_cost (Bytes.length value));
      Some body

let del client key =
  let existed = Hashtbl.mem client.server.store key in
  Hashtbl.remove client.server.store key;
  Clock.advance client.clock (Units.add (Link.rtt client.server.link) command_overhead);
  existed

let exists client key =
  Clock.advance client.clock (Units.add (Link.rtt client.server.link) command_overhead);
  Hashtbl.mem client.server.store key

let stored_keys t = Hashtbl.length t.store

let bytes_stored t = Hashtbl.fold (fun _ v acc -> acc + Bytes.length v) t.store 0
