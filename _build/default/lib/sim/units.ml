type time = int64

let zero = 0L

let ns n = Int64.of_int n
let us n = Int64.mul (Int64.of_int n) 1_000L
let ms n = Int64.mul (Int64.of_int n) 1_000_000L
let sec n = Int64.mul (Int64.of_int n) 1_000_000_000L

let ns_f x = Int64.of_float (Float.round x)
let us_f x = ns_f (x *. 1e3)
let ms_f x = ns_f (x *. 1e6)

let to_ns t = t
let to_us t = Int64.to_float t /. 1e3
let to_ms t = Int64.to_float t /. 1e6
let to_sec t = Int64.to_float t /. 1e9

let add = Int64.add

let sub a b = if Int64.compare a b <= 0 then 0L else Int64.sub a b

let diff a b = if Int64.compare a b >= 0 then Int64.sub a b else Int64.sub b a

let scale t f = Int64.of_float (Int64.to_float t *. f)

let max a b = if Int64.compare a b >= 0 then a else b
let min a b = if Int64.compare a b <= 0 then a else b
let compare = Int64.compare
let equal = Int64.equal

let ( + ) = add
let ( - ) = sub
let ( < ) a b = Int64.compare a b < 0
let ( <= ) a b = Int64.compare a b <= 0
let ( > ) a b = Int64.compare a b > 0
let ( >= ) a b = Int64.compare a b >= 0

let pp fmt t =
  let f = Int64.to_float t in
  if Stdlib.( < ) f 1e3 then Format.fprintf fmt "%.0fns" f
  else if Stdlib.( < ) f 1e6 then Format.fprintf fmt "%.2fus" (f /. 1e3)
  else if Stdlib.( < ) f 1e9 then Format.fprintf fmt "%.2fms" (f /. 1e6)
  else Format.fprintf fmt "%.3fs" (f /. 1e9)

let to_string t = Format.asprintf "%a" pp t

let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let pp_bytes fmt n =
  let f = float_of_int n in
  if Stdlib.( < ) f 1024. then Format.fprintf fmt "%dB" n
  else if Stdlib.( < ) f (1024. *. 1024.) then Format.fprintf fmt "%.0fKB" (f /. 1024.)
  else if Stdlib.( < ) f (1024. *. 1024. *. 1024.) then
    Format.fprintf fmt "%.0fMB" (f /. 1024. /. 1024.)
  else Format.fprintf fmt "%.2fGB" (f /. 1024. /. 1024. /. 1024.)

let bytes_to_string n = Format.asprintf "%a" pp_bytes n

let time_for_bytes ~bytes_per_sec n =
  if Stdlib.( <= ) n 0 then zero
  else ns_f (float_of_int n /. bytes_per_sec *. 1e9)

let gbit_per_sec g = g *. 1e9 /. 8.
let mb_per_sec m = m *. 1e6
