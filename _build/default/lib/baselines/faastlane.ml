open Workloads
open Sim

let thread_start = Units.us 630
let process_start = Units.us 2_800

(* 16MB round trip at 2.6x AlloyStack's 951us => ~13.6 GB/s effective
   across cores; the 1us fixed term is the MPK bookkeeping (cheaper
   than AsBuffer's smart pointer, hence the 4KB crossover of Fig. 11). *)
let refer_bw = 13.6e9
let refer_fixed = Units.us 1

type transfer_mode = Refer | Ipc

type variant = {
  label : string;
  kata : bool;
  warm : bool;  (** Skip the sandbox boot (steady-state measurement). *)
  always_refer : bool;
  always_ipc : bool;
  ramfs : bool;
}

(* IPC across the forked subprocesses: the data is serialised, pushed
   through a 64KB pipe (one write/read syscall pair and two kernel
   copies per chunk), and deserialised on the far side.  The
   serialisation is what makes Faastlane-IPC so much slower than
   reference passing (Fig. 11). *)
let ipc_serialize_bw = 0.5e9

let ipc_side_cost len =
  let chunks = Hostos.Pipe.transfer_chunks len in
  Units.add
    (Units.time_for_bytes ~bytes_per_sec:ipc_serialize_bw len)
    (Units.add
       (Units.time_for_bytes ~bytes_per_sec:Alloystack_core.Cost.memcpy_bw len)
       (Units.scale (Hostos.Syscall.cost Hostos.Syscall.Write) (float_of_int chunks)))

let ipc_send_cost = ipc_side_cost
let ipc_recv_cost = ipc_side_cost

(* Forking the per-function subprocess for a parallel phase: fork +
   MPK re-setup + runtime re-init in the child. *)
let fork_cost = Units.ms 5

let refer_cost len =
  Units.add refer_fixed (Units.time_for_bytes ~bytes_per_sec:refer_bw len)

let make variant =
  let run ?(cores = 64) (app : Fctx.app) =
    let vfs = if variant.ramfs then Fsim.Vfs.fresh_ramfs () else Fsim.Vfs.fresh_extfs () in
    List.iter (fun (path, data) -> vfs.Fsim.Vfs.write_file path data) app.Fctx.inputs;
    (* Per-hop transfer mode: IPC when either endpoint stage is
       parallel (the fork/subprocess phases of Faastlane). *)
    let widths = Array.of_list (List.map (fun (_, n, _) -> n) app.Fctx.stages) in
    let mode_after stage_idx =
      if variant.always_ipc then Ipc
      else if variant.always_refer then Refer
      else if
        stage_idx + 1 < Array.length widths
        && (widths.(stage_idx) > 1 || widths.(stage_idx + 1) > 1)
      then Ipc
      else Refer
    in
    let mode_before stage_idx = if stage_idx = 0 then Refer else mode_after (stage_idx - 1) in
    let store : (string, bytes) Hashtbl.t = Hashtbl.create 32 in
    let stage_parallel idx = idx < Array.length widths && widths.(idx) > 1 in
    let boot (info : Runner.instance_info) clock =
      if info.Runner.stage_index = 0 && info.Runner.instance = 0 then begin
        if variant.kata && not variant.warm then
          ignore (Vmm.Sandbox.boot Vmm.Container.kata_firecracker clock);
        Clock.advance clock process_start
      end
      else if
        (not variant.always_refer) && (not variant.always_ipc)
        && stage_parallel info.Runner.stage_index
      then
        (* The default configuration forks a subprocess per function of
           a parallel phase. *)
        Clock.advance clock fork_cost
      else Clock.advance clock thread_start
    in
    let make_fctx (info : Runner.instance_info) ~clock ~phase =
      let send ~slot data =
        (match mode_after info.Runner.stage_index with
        | Refer -> Clock.advance clock (refer_cost (Bytes.length data))
        | Ipc -> Clock.advance clock (ipc_send_cost (Bytes.length data)));
        Hashtbl.replace store slot (Bytes.copy data)
      in
      let recv ~slot =
        match Hashtbl.find_opt store slot with
        | None -> raise Not_found
        | Some data ->
            Hashtbl.remove store slot;
            (match mode_before info.Runner.stage_index with
            | Refer -> Clock.advance clock (refer_cost (Bytes.length data))
            | Ipc -> Clock.advance clock (ipc_recv_cost (Bytes.length data)));
            data
      in
      {
        Fctx.instance = info.Runner.instance;
        total = info.Runner.total;
        read_input = (fun path -> vfs.Fsim.Vfs.read_file ~clock path);
        write_output = (fun path data -> vfs.Fsim.Vfs.write_file ~clock path data);
        send;
        recv;
        println = (fun _ -> Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Write));
        compute = (fun t -> Clock.advance clock t);
        phase;
      }
    in
    let mib n = n * 1024 * 1024 in
    let instance_rss _info = mib 2 in
    let cpu_tax =
      if variant.kata then Vmm.Container.kata_firecracker.Vmm.Sandbox.cpu_tax else 0.0
    in
    let hooks = { Runner.boot; make_fctx; instance_rss; cpu_tax } in
    let base_rss =
      if variant.kata then Vmm.Container.kata_firecracker.Vmm.Sandbox.mem_overhead else 0
    in
    let result = Runner.run ~cores hooks app.Fctx.stages in
    let read_output path =
      match vfs.Fsim.Vfs.read_file path with
      | data -> Some data
      | exception Not_found -> None
    in
    {
      Platform.platform = variant.label;
      e2e = result.Runner.e2e;
      cold_start = result.Runner.cold_start;
      phase_totals = result.Runner.phase_totals;
      cpu_time = result.Runner.cpu_time;
      peak_rss = base_rss + result.Runner.peak_rss;
      validated = app.Fctx.validate ~read_output;
    }
  in
  { Platform.name = variant.label; run }

let default_ =
  make { label = "Faastlane"; kata = false; warm = false; always_refer = false; always_ipc = false; ramfs = false }

let refer =
  make { label = "Faastlane-refer"; kata = false; warm = false; always_refer = true; always_ipc = false; ramfs = false }

let refer_kata =
  make { label = "Faastlane-refer-kata"; kata = true; warm = false; always_refer = true; always_ipc = false; ramfs = false }

let refer_kata_ramfs =
  make
    { label = "Faastlane-refer-kata-ramfs"; kata = true; warm = false; always_refer = true; always_ipc = false; ramfs = true }

let ipc =
  make
    { label = "Faastlane-IPC"; kata = false; warm = false; always_refer = false; always_ipc = true; ramfs = false }

let refer_kata_warm_ramfs =
  make
    { label = "Faastlane-refer-kata (warm)"; kata = true; warm = true;
      always_refer = true; always_ipc = false; ramfs = true }
