(** Plain OCI container (containerd + runc) and Kata Containers.

    The container path backs the OpenFaaS baseline; the Kata path wraps
    the container inside a Firecracker MicroVM (guest kernel + agent),
    which is how the paper deploys Faastlane-kata. *)

val runc : Sandbox.profile
(** containerd + runc + of-watchdog: the OpenFaaS function sandbox. *)

val kata_firecracker : Sandbox.profile
(** Kata with the Firecracker hypervisor: MicroVM boot plus kata-agent
    and a rootfs prepared over virtio-fs. *)
