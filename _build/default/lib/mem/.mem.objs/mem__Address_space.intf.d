lib/mem/address_space.mli: Format Page Prot
