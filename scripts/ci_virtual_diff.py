#!/usr/bin/env python3
"""Diff the deterministic parts of two BENCH_*.json documents.

Strips every object keyed "host" (at any depth — wall-clock and memory
measurements are machine-dependent) and compares the rest byte for
byte.  Two identically-seeded bench runs must agree on everything that
survives the strip; any difference is a determinism bug.

Usage: ci_virtual_diff.py A.json B.json   (exit 0 identical, 1 not)
"""

import json
import sys


def strip_host(doc):
    if isinstance(doc, dict):
        return {k: strip_host(v) for k, v in doc.items() if k != "host"}
    if isinstance(doc, list):
        return [strip_host(v) for v in doc]
    return doc


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        a = strip_host(json.load(f))
    with open(sys.argv[2]) as f:
        b = strip_host(json.load(f))
    sa = json.dumps(a, sort_keys=True, indent=1)
    sb = json.dumps(b, sort_keys=True, indent=1)
    if sa == sb:
        print("virtual sections identical")
        return 0
    import difflib
    for line in difflib.unified_diff(sa.splitlines(), sb.splitlines(),
                                     fromfile=sys.argv[1], tofile=sys.argv[2],
                                     lineterm=""):
        print(line)
    return 1


if __name__ == "__main__":
    sys.exit(main())
