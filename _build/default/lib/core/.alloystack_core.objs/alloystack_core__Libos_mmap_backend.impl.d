lib/core/libos_mmap_backend.ml: Address_space Bytes Clock Errno Ext Hostos Libos_fatfs List Mem Page Sim Stdlib Wfd
