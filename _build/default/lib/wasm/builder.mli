(** Convenience constructors for writing bytecode programs (workload
    kernels, tests, examples) without spelling out the AST. *)

val const : int -> Instr.t
val const64 : int64 -> Instr.t
val add : Instr.t
val sub : Instr.t
val mul : Instr.t
val div : Instr.t
val rem : Instr.t
val lt : Instr.t
val gt : Instr.t
val le : Instr.t
val ge : Instr.t
val eq : Instr.t
val ne : Instr.t
val local : int -> Instr.t
val set_local : int -> Instr.t
val tee : int -> Instr.t

val while_loop : cond:Instr.t list -> body:Instr.t list -> Instr.t
(** Structured while: [block (loop (cond; eqz; br_if 1; body; br 0))].
    Inside [body], [br 1] continues, [br 2] breaks. *)

val for_range : local:int -> from:Instr.t list -> until:Instr.t list -> body:Instr.t list -> Instr.t list
(** Counted loop over [local] in [from, until). *)

val func :
  name:string -> ?params:int -> ?locals:int -> Instr.t list -> Wmodule.func

(** {1 Ready-made kernels used by tests and micro-benches} *)

val sum_to_n : Wmodule.t
(** export "sum": sum of 1..n. *)

val fib : Wmodule.t
(** export "fib": naive recursion. *)

val memory_fill : Wmodule.t
(** export "fill": fill [0, n) of linear memory with a byte value —
    exercises stores; export "checksum": byte sum of [0, n). *)

val bubble_sort : Wmodule.t
(** export "sort": in-place byte sort of memory [0, n) — a real (if
    quadratic) kernel used to compare runtimes on actual work. *)
