lib/sim/rng.mli:
