examples/parallel_sorting_demo.ml: As_platform Baselines Faastlane Format List Openfaas Platform Sim Workloads
