lib/mem/prot.mli: Format
