(* online-compiling (the heaviest Table 1 function) end to end: a real
   bytecode module is printed in the text format, shipped through the
   workflow in its binary encoding, AOT-compiled behind the blacklist
   scanner and executed — all inside one WFD.

     dune exec examples/online_compiling.exe *)

open Workloads

let () =
  (* The module that will flow through the workflow. *)
  print_endline "module under compilation (text format):";
  print_string (Wasm.Wat.print Wasm.Builder.sum_to_n);
  let encoded = Wasm.Encode.encode Wasm.Builder.sum_to_n in
  Format.printf "binary image: %d bytes (magic %S)@.@." (Bytes.length encoded)
    Wasm.Encode.magic;
  let n = 100_000 in
  let app = Compile_app.app ~n ~seed:2025 () in
  let m = (Baselines.As_platform.alloystack).Baselines.Platform.run app in
  (match m.Baselines.Platform.validated with
  | Ok () -> Format.printf "validated: sum(1..%d) computed by the compiled module@." n
  | Error e -> failwith e);
  Format.printf "end-to-end: %a  cold start: %a@." Sim.Units.pp
    m.Baselines.Platform.e2e Sim.Units.pp m.Baselines.Platform.cold_start;
  List.iter
    (fun (name, t) -> Format.printf "  %-10s %a@." name Sim.Units.pp t)
    m.Baselines.Platform.phase_totals
