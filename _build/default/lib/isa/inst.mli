(** Simulated machine instructions with x86-like byte encodings.

    Only the encoding-relevant structure matters for the threat model:
    the blacklist scanner works on raw bytes, so instructions carry a
    concrete encoding, and immediates can accidentally contain the bytes
    of a forbidden opcode (the "false positive" case that ERIM-style
    rewriting fixes). *)

type t =
  | Nop
  | Mov_imm of int32  (** Move a 32-bit immediate into a register. *)
  | Mov_reg  (** Register-to-register move (no immediate). *)
  | Add
  | Load
  | Store
  | Jmp of int
  | Call of string
  | Ret
  | Wrpkru  (** Forbidden: writes the PKRU register. *)
  | Syscall  (** Forbidden: direct syscall. *)
  | Sysenter  (** Forbidden. *)
  | Int of int  (** Forbidden: software interrupt. *)

val encode : t -> string
(** Byte encoding; uses the real x86 opcodes for the blacklisted
    instructions (0f 01 ef, 0f 05, 0f 34, cd imm8). *)

val encoded_length : t -> int

val is_blacklisted : t -> bool

val pp : Format.formatter -> t -> unit
