lib/mem/alloc.ml: Hashtbl List Printf Stdlib
