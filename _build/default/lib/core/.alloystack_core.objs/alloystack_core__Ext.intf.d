lib/core/ext.mli:
