(* Image-processing workflow (the pipeline Table 1's functions come
   from): extract-image-metadata fans its outputs to the thumbnail
   branch and the metadata branch, which are orchestrated as a DAG and
   run in one WFD.

     dune exec examples/image_pipeline.exe *)


open Workloads

let () =
  let app = Image_meta.image_pipeline ~seed:2025 in
  (* Stage the input image in a FAT disk image, as the platform
     adapter does. *)
  let vfs = Fsim.Vfs.fresh_fat () in
  List.iter (fun (path, data) -> vfs.Fsim.Vfs.write_file path data) app.Fctx.inputs;
  let m = (Baselines.As_platform.alloystack).Baselines.Platform.run app in
  (match m.Baselines.Platform.validated with
  | Ok () -> print_endline "pipeline output validated: thumbnail + metadata correct"
  | Error e -> failwith e);
  Format.printf "end-to-end: %a   cold start: %a@." Sim.Units.pp
    m.Baselines.Platform.e2e Sim.Units.pp m.Baselines.Platform.cold_start;
  Format.printf "phases:@.";
  List.iter
    (fun (name, t) -> Format.printf "  %-12s %a@." name Sim.Units.pp t)
    m.Baselines.Platform.phase_totals;
  (* Show what on-demand loading did for this pipeline: the union of
     Table 1 components maps to these as-libos modules. *)
  Format.printf "as-libos modules the app declares: %s@."
    (String.concat ", " app.Fctx.modules)
