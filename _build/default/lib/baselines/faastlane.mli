(** Faastlane (USENIX ATC'21) as a {!Platform.t}.

    Thread-level function execution in one process with MPK memory
    isolation and no kernel isolation.  Intermediate data passes by
    reference between sequentially-executing functions; during parallel
    phases the default configuration forks subprocesses and falls back
    to IPC over pipes (§8.1 of the AlloyStack paper).  Files live on
    the host's ext4.

    Variants follow the paper's suffixes:
    - [default_]: IPC during parallel phases, reference passing
      otherwise;
    - [refer]: reference passing everywhere ("Faastlane-refer");
    - [refer_kata]: reference passing inside a Kata MicroVM
      ("Faastlane-refer-kata");
    - [refer_kata_ramfs]: the Fig. 16 configuration (in-guest ramfs). *)

val default_ : Platform.t

(** Pipes everywhere ("Faastlane-IPC", Fig. 11). *)
val ipc : Platform.t

val refer : Platform.t
val refer_kata : Platform.t
val refer_kata_ramfs : Platform.t

(** Kata with the boot excluded (steady-state, Fig. 16) but the
    virtualisation CPU tax and memory overheads kept. *)
val refer_kata_warm_ramfs : Platform.t

val thread_start : Sim.Units.time
(** Per-thread startup (the "Faastlane-T" bar of Fig. 10). *)

val process_start : Sim.Units.time
(** Per-workflow main-process startup. *)

val refer_bw : float
(** Cross-core reference-passing bandwidth (bytes/s).  Lower than
    AlloyStack's same-core traversal because Faastlane binds memory
    permissions to thread IDs, so upstream and downstream functions
    land on different cores (§8.3). *)
