(** Latency / value sample collection with percentile queries. *)

type t

val create : unit -> t
(** Exact collection: every sample retained, percentiles from a sorted
    view — the historical behaviour, byte-identical to older versions. *)

val sketched : ?retain_every:int -> ?seed:int -> ?compression:float -> unit -> t
(** Constant-memory collection: aggregates (count/sum/min/max/stddev)
    are maintained incrementally and {!percentile} answers from a
    deterministic t-digest ({!Sketch.Tdigest}) instead of retained
    samples.  [retain_every] keeps 1-in-k raw samples for {!to_list}
    (default 0 = keep none; the stride phase is [seed mod retain_every],
    matching the observability samplers).  [compression] is passed to
    the t-digest. *)

val is_sketched : t -> bool

val add : t -> float -> unit
val add_time : t -> Units.time -> unit
(** Records the duration in nanoseconds. *)

val count : t -> int
val is_empty : t -> bool
val mean : t -> float
val min : t -> float
val max : t -> float
val sum : t -> float
val stddev : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100].  Raises [Invalid_argument]
    on an empty collection.  Exact collections interpolate linearly
    between closest ranks over a cached sorted view that is invalidated
    by {!add} and {!clear}, so a batch of percentile queries sorts once
    and insertion order (as seen by {!to_list}) is never disturbed.
    Sketched collections answer from the t-digest — deterministic, but
    an estimate. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

val percentile_time : t -> float -> Units.time
(** Percentile of durations recorded with {!add_time}. *)

val mean_time : t -> Units.time
val clear : t -> unit

val to_list : t -> float list
(** Retained samples in insertion order (all of them for {!create},
    the 1-in-[retain_every] stride for {!sketched}). *)

(** Named monotonic event counters.  A handle is just the counter's
    name; the value cell lives in a {e registry} resolved through
    domain-local storage on every bump.  On the main domain that is the
    default process registry, so behaviour is unchanged for sequential
    code; [Par.with_shard] swaps in a per-task registry so parallel
    tasks count without locks, then {!merge_counters} folds the shard
    back at a deterministic join.  [reset_counters] zeroes every
    counter in the current registry (tests and repeated bench runs). *)
module Counter : sig
  type t

  type registry

  val create_registry : unit -> registry

  val current : unit -> registry
  (** Domain-local current registry (the process default on the main
      domain unless {!set_current} swapped it). *)

  val set_current : registry -> unit

  val make : string -> t
  (** Returns the counter handle for [name] and pre-registers it (at
      zero) in the default registry so never-bumped counters still
      export.  Call at module init, on the main domain. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
  val reset : t -> unit

  val reset_registry : registry -> unit
  (** Zero every counter cell in [registry] in place (cells are kept,
      so a recycled shard reuses them; {!merge_counters} skips zero
      counts, so merging a scrubbed registry is byte-identical to
      merging a fresh one). *)
end

val counter_value : string -> int
(** Current value of the named counter; 0 if never registered. *)

val counters : unit -> (string * int) list
(** All counters registered in the current registry, sorted by name. *)

val reset_counters : unit -> unit

val merge_counters : Counter.registry -> unit
(** Add every count in the given shard registry into the current one
    (names visited in sorted order; sums are order-insensitive). *)
