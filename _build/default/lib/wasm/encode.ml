let magic = "\000asm"
let version = 1

exception Malformed of { offset : int; message : string }

(* --- LEB128 --- *)

let uleb_encode buf n =
  if n < 0 then invalid_arg "uleb_encode: negative";
  let rec go n =
    let byte = n land 0x7F in
    let rest = n lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go n

let sleb_encode buf (v : int64) =
  let rec go v =
    let byte = Int64.to_int (Int64.logand v 0x7FL) in
    let rest = Int64.shift_right v 7 in
    let sign_clear = byte land 0x40 = 0 in
    if (Int64.equal rest 0L && sign_clear) || (Int64.equal rest (-1L) && not sign_clear)
    then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go v

(* --- instruction opcodes (one byte each, ours not wasm's) --- *)

let opcode = function
  | Instr.Nop -> 0x01
  | Instr.Unreachable -> 0x02
  | Instr.Const _ -> 0x03
  | Instr.Binop _ -> 0x04
  | Instr.Eqz -> 0x05
  | Instr.Drop -> 0x06
  | Instr.Select -> 0x07
  | Instr.Local_get _ -> 0x08
  | Instr.Local_set _ -> 0x09
  | Instr.Local_tee _ -> 0x0A
  | Instr.Global_get _ -> 0x0B
  | Instr.Global_set _ -> 0x0C
  | Instr.Load8 _ -> 0x0D
  | Instr.Load64 _ -> 0x0E
  | Instr.Store8 _ -> 0x0F
  | Instr.Store64 _ -> 0x10
  | Instr.Memory_size -> 0x11
  | Instr.Memory_grow -> 0x12
  | Instr.Block _ -> 0x13
  | Instr.Loop _ -> 0x14
  | Instr.If _ -> 0x15
  | Instr.Br _ -> 0x16
  | Instr.Br_if _ -> 0x17
  | Instr.Return -> 0x18
  | Instr.Call _ -> 0x19

let binop_code = function
  | Instr.Add -> 0
  | Instr.Sub -> 1
  | Instr.Mul -> 2
  | Instr.Div_s -> 3
  | Instr.Rem_s -> 4
  | Instr.And -> 5
  | Instr.Or -> 6
  | Instr.Xor -> 7
  | Instr.Shl -> 8
  | Instr.Shr_s -> 9
  | Instr.Eq -> 10
  | Instr.Ne -> 11
  | Instr.Lt_s -> 12
  | Instr.Gt_s -> 13
  | Instr.Le_s -> 14
  | Instr.Ge_s -> 15

let binop_of_code = function
  | 0 -> Instr.Add
  | 1 -> Instr.Sub
  | 2 -> Instr.Mul
  | 3 -> Instr.Div_s
  | 4 -> Instr.Rem_s
  | 5 -> Instr.And
  | 6 -> Instr.Or
  | 7 -> Instr.Xor
  | 8 -> Instr.Shl
  | 9 -> Instr.Shr_s
  | 10 -> Instr.Eq
  | 11 -> Instr.Ne
  | 12 -> Instr.Lt_s
  | 13 -> Instr.Gt_s
  | 14 -> Instr.Le_s
  | 15 -> Instr.Ge_s
  | c -> raise (Malformed { offset = -1; message = Printf.sprintf "bad binop %d" c })

let add_string buf s =
  uleb_encode buf (String.length s);
  Buffer.add_string buf s

let rec encode_instr buf i =
  Buffer.add_char buf (Char.chr (opcode i));
  match i with
  | Instr.Const v -> sleb_encode buf v
  | Instr.Binop op -> uleb_encode buf (binop_code op)
  | Instr.Local_get n | Instr.Local_set n | Instr.Local_tee n
  | Instr.Global_get n | Instr.Global_set n
  | Instr.Load8 n | Instr.Load64 n | Instr.Store8 n | Instr.Store64 n
  | Instr.Br n | Instr.Br_if n | Instr.Call n ->
      uleb_encode buf n
  | Instr.Block body | Instr.Loop body -> encode_body buf body
  | Instr.If (a, b) ->
      encode_body buf a;
      encode_body buf b
  | Instr.Nop | Instr.Unreachable | Instr.Eqz | Instr.Drop | Instr.Select
  | Instr.Memory_size | Instr.Memory_grow | Instr.Return ->
      ()

and encode_body buf body =
  uleb_encode buf (List.length body);
  List.iter (encode_instr buf) body

let encode (m : Wmodule.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  uleb_encode buf version;
  add_string buf m.Wmodule.name;
  (* imports *)
  uleb_encode buf (List.length m.Wmodule.imports);
  List.iter (add_string buf) m.Wmodule.imports;
  (* functions *)
  uleb_encode buf (List.length m.Wmodule.funcs);
  List.iter
    (fun (f : Wmodule.func) ->
      add_string buf f.Wmodule.fname;
      uleb_encode buf f.Wmodule.params;
      uleb_encode buf f.Wmodule.locals;
      encode_body buf f.Wmodule.body)
    m.Wmodule.funcs;
  (* memory *)
  uleb_encode buf m.Wmodule.memory_pages;
  (* globals *)
  uleb_encode buf (List.length m.Wmodule.globals);
  List.iter (sleb_encode buf) m.Wmodule.globals;
  (* data *)
  uleb_encode buf (List.length m.Wmodule.data);
  List.iter
    (fun (off, d) ->
      uleb_encode buf off;
      add_string buf d)
    m.Wmodule.data;
  (* exports *)
  uleb_encode buf (List.length m.Wmodule.exports);
  List.iter
    (fun (name, idx) ->
      add_string buf name;
      uleb_encode buf idx)
    m.Wmodule.exports;
  Buffer.to_bytes buf

(* --- decoding --- *)

type cursor = { data : bytes; mutable pos : int }

let fail c fmt =
  Format.kasprintf (fun message -> raise (Malformed { offset = c.pos; message })) fmt

let byte c =
  if c.pos >= Bytes.length c.data then fail c "unexpected end of input";
  let b = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  b

let uleb_decode c =
  let rec go shift acc =
    if shift > 56 then fail c "uleb too long";
    let b = byte c in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let sleb_decode c =
  let rec go shift acc =
    if shift > 63 then fail c "sleb too long";
    let b = byte c in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7F)) shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc
    else if shift + 7 < 64 && b land 0x40 <> 0 then
      (* sign extend *)
      Int64.logor acc (Int64.shift_left (-1L) (shift + 7))
    else acc
  in
  go 0 0L

let read_string c =
  let n = uleb_decode c in
  if c.pos + n > Bytes.length c.data then fail c "string runs past end";
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let rec decode_instr c =
  let op = byte c in
  match op with
  | 0x01 -> Instr.Nop
  | 0x02 -> Instr.Unreachable
  | 0x03 -> Instr.Const (sleb_decode c)
  | 0x04 -> Instr.Binop (binop_of_code (uleb_decode c))
  | 0x05 -> Instr.Eqz
  | 0x06 -> Instr.Drop
  | 0x07 -> Instr.Select
  | 0x08 -> Instr.Local_get (uleb_decode c)
  | 0x09 -> Instr.Local_set (uleb_decode c)
  | 0x0A -> Instr.Local_tee (uleb_decode c)
  | 0x0B -> Instr.Global_get (uleb_decode c)
  | 0x0C -> Instr.Global_set (uleb_decode c)
  | 0x0D -> Instr.Load8 (uleb_decode c)
  | 0x0E -> Instr.Load64 (uleb_decode c)
  | 0x0F -> Instr.Store8 (uleb_decode c)
  | 0x10 -> Instr.Store64 (uleb_decode c)
  | 0x11 -> Instr.Memory_size
  | 0x12 -> Instr.Memory_grow
  | 0x13 -> Instr.Block (decode_body c)
  | 0x14 -> Instr.Loop (decode_body c)
  | 0x15 ->
      let a = decode_body c in
      let b = decode_body c in
      Instr.If (a, b)
  | 0x16 -> Instr.Br (uleb_decode c)
  | 0x17 -> Instr.Br_if (uleb_decode c)
  | 0x18 -> Instr.Return
  | 0x19 -> Instr.Call (uleb_decode c)
  | op -> fail c "unknown opcode 0x%02x" op

and decode_body c =
  let n = uleb_decode c in
  if n > Bytes.length c.data then fail c "body length %d implausible" n;
  List.init n (fun _ -> decode_instr c)

let decode data =
  let c = { data; pos = 0 } in
  if Bytes.length data < 4 || Bytes.sub_string data 0 4 <> magic then
    raise (Malformed { offset = 0; message = "bad magic" });
  c.pos <- 4;
  let v = uleb_decode c in
  if v <> version then fail c "unsupported version %d" v;
  let name = read_string c in
  let imports = List.init (uleb_decode c) (fun _ -> read_string c) in
  let funcs =
    List.init (uleb_decode c) (fun _ ->
        let fname = read_string c in
        let params = uleb_decode c in
        let locals = uleb_decode c in
        let body = decode_body c in
        { Wmodule.fname; params; locals; body })
  in
  let memory_pages = uleb_decode c in
  let globals = List.init (uleb_decode c) (fun _ -> sleb_decode c) in
  let data_segs =
    List.init (uleb_decode c) (fun _ ->
        let off = uleb_decode c in
        let d = read_string c in
        (off, d))
  in
  let exports =
    List.init (uleb_decode c) (fun _ ->
        let n = read_string c in
        let idx = uleb_decode c in
        (n, idx))
  in
  if c.pos <> Bytes.length data then fail c "trailing bytes";
  Wmodule.create ~imports ~globals ~memory_pages ~data:data_segs ~exports ~name funcs

let decode_result data =
  match decode data with
  | m -> Ok m
  | exception Malformed { offset; message } ->
      Error (Printf.sprintf "at offset %d: %s" offset message)
