(** WASI-style host interface.

    The paper implements 15 WASI interfaces plus two custom ones
    ([buffer_register] / [access_buffer]) in the adaptation layer
    between the WASM runtime and as-std (§7.2).  This module turns an
    abstract [system] record — supplied by the embedder: AlloyStack's
    as-std layer, or Faasm's own host — into the host-import list a
    module instance needs.

    Host-call convention: every host function receives exactly three
    i64 arguments (unused trailing ones are zero); pointers index the
    caller's linear memory. *)

type errno = Success | Badf | Inval | Noent | Fault

val errno_code : errno -> int64

type system = {
  sys_write : fd:int -> bytes -> int;
      (** Write to an open descriptor; returns bytes written. *)
  sys_read : fd:int -> int -> bytes;  (** Read up to n bytes. *)
  sys_open : string -> int;  (** Returns fd or -1. *)
  sys_close : int -> bool;
  sys_clock_now : unit -> int64;  (** Nanoseconds. *)
  sys_random : int -> bytes;
  sys_args : unit -> string list;
  sys_proc_exit : int -> unit;
  sys_buffer_register : string -> bytes -> bool;
      (** Custom interface: publish intermediate data under a slot. *)
  sys_access_buffer : string -> bytes option;
      (** Custom interface: take intermediate data by slot. *)
}

val null_system : system
(** Everything fails/no-ops; useful for pure-compute modules. *)

val interp_imports : system -> (string * Interp.host_fn) list
(** Imports for the interpreter. *)

val aot_imports : system -> (string * Aot.host_fn) list
(** The same interface bound for AOT instances. *)

val import_names : string list
(** Names a WASI module may import, in index order:
    [fd_write; fd_read; path_open; fd_close; clock_time_get;
    random_get; args_sizes_get; proc_exit; buffer_register;
    access_buffer; ...]. *)

val index_of : string -> int
(** Index of a WASI import name in {!import_names}; raises
    [Not_found]. *)
