lib/hostos/cgroup.mli: Sim
