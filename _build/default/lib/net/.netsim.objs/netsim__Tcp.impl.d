lib/net/tcp.ml: Buffer Bytes Clock Float Format Link Sim Stdlib Units
