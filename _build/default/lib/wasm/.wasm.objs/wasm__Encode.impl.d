lib/wasm/encode.ml: Buffer Bytes Char Format Instr Int64 List Printf String Wmodule
