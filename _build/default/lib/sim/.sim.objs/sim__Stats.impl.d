lib/sim/stats.ml: Array Float Int64 Stdlib Units
