lib/mem/address_space.ml: Bytes Format Hashtbl Page Printf Prot Stdlib
