(** Redis-like key-value server used as the third-party intermediate
    data store by the OpenFaaS baseline (and Faasm's distributed tier).

    The value store and RESP-style wire encoding are real; commands
    travel over a simulated TCP connection, so a SET+GET round trip
    pays two full network data movements plus serialisation — the
    "third-party forwarding" overhead the paper attributes to
    Fig. 11's OpenFaaS line. *)

type t

val create : ?link:Link.t -> unit -> t
(** The server runs on its own clock; [link] defaults to
    {!Link.datacenter}. *)

val encode_set : string -> bytes -> string
val encode_get : string -> string

type client

val connect : t -> Sim.Clock.t -> client
(** Establish (or reuse, see [keepalive]) a TCP connection from the
    thread owning this clock. *)

val set : client -> string -> bytes -> unit
val get : client -> string -> bytes option
val del : client -> string -> bool
val exists : client -> string -> bool

val stored_keys : t -> int
val bytes_stored : t -> int

val serialization_cost : int -> Sim.Units.time
(** CPU cost of serialising/deserialising a payload of [n] bytes
    (applied at each end). *)
