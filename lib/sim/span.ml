type id = int

let none = 0

type span = {
  sp_id : id;
  sp_parent : id;
  sp_category : string;
  sp_label : string;
  sp_begin : Units.time;
  mutable sp_end : Units.time;
  mutable sp_attrs : (string * string) list;
}

type t = {
  mutable store : span array;
  mutable len : int;
  mutable on : bool;
  mutable amb : id;
}

let dummy =
  {
    sp_id = none;
    sp_parent = none;
    sp_category = "";
    sp_label = "";
    sp_begin = Units.zero;
    sp_end = Units.zero;
    sp_attrs = [];
  }

let create () = { store = Array.make 64 dummy; len = 0; on = false; amb = none }

let global = create ()

let enabled t = t.on
let set_enabled t v = t.on <- v

let clear t =
  Array.fill t.store 0 t.len dummy;
  t.len <- 0;
  t.amb <- none

let push t sp =
  if t.len = Array.length t.store then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.store 0 bigger 0 t.len;
    t.store <- bigger
  end;
  t.store.(t.len) <- sp;
  t.len <- t.len + 1

let begin_span t ?parent ~at ~category ~label () =
  if not t.on then none
  else begin
    let parent = match parent with Some p -> p | None -> t.amb in
    let id = t.len + 1 in
    push t
      {
        sp_id = id;
        sp_parent = parent;
        sp_category = category;
        sp_label = label;
        sp_begin = at;
        sp_end = at;
        sp_attrs = [];
      };
    id
  end

let find t id = if id >= 1 && id <= t.len then Some t.store.(id - 1) else None

let end_span t id ~at =
  if id <> none then
    match find t id with
    | Some sp -> sp.sp_end <- Units.max sp.sp_begin at
    | None -> ()

let instant t ?parent ~at ~category ~label () =
  if t.on then ignore (begin_span t ?parent ~at ~category ~label ())

let set_attr t id key value =
  if id <> none then
    match find t id with
    | Some sp -> sp.sp_attrs <- sp.sp_attrs @ [ (key, value) ]
    | None -> ()

let ambient t = t.amb
let set_ambient t id = t.amb <- id

let count t = t.len

let spans t = List.init t.len (fun i -> t.store.(i))

let children t id =
  List.filter (fun sp -> sp.sp_parent = id && sp.sp_id <> id) (spans t)

let roots t = children t none
