lib/core/fndata.mli: Format
