exception Unrewritable of Image.t

(* Does inserting this instruction next to its neighbours produce a
   forbidden byte pattern?  We test contextually: encode the window and
   scan it. *)
let window_dirty insts =
  let img = Image.create ~name:"window" ~toolchain:Image.Native_c insts in
  List.exists (fun (o : Scanner.occurrence) -> not o.aligned) (Scanner.scan img)

(* An immediate is dangerous if its little-endian bytes, possibly
   combined with neighbouring encoding bytes, contain part of a
   forbidden pattern.  ERIM's fix: rebuild the constant from two
   addends whose own encodings are pattern-free.  We try a set of
   diverse masks and keep the first decomposition that scans clean —
   splitting blindly (e.g. into 16-bit halves) can itself reproduce a
   pattern like 0f 05 and loop forever. *)
let split_masks =
  [ 0x3B3B_3B3Bl; 0x2727_2727l; 0x5656_5656l; 0x1919_1919l; 0x6262_6262l;
    0x4D4D_4D4Dl; 0x7171_7171l; 0x2A2A_2A2Al ]

let split_immediate v =
  let candidate mask =
    let y = mask in
    let x = Int32.sub v y in
    [ Inst.Mov_imm x; Inst.Mov_imm y; Inst.Add ]
  in
  let rec try_masks = function
    | [] ->
        raise
          (Unrewritable (Image.create ~name:"immediate" ~toolchain:Image.Native_c [ Inst.Mov_imm v ]))
    | mask :: rest ->
        let seq = candidate mask in
        if window_dirty seq then try_masks rest else seq
  in
  try_masks split_masks

let rec rewrite_insts = function
  | [] -> []
  | a :: b :: rest when window_dirty [ a; b ] ->
      (* The boundary between a and b combines into a forbidden
         pattern: first try a nop separator; if the pattern lives inside
         an immediate, split the immediate. *)
      if not (window_dirty [ a; Inst.Nop; b ]) then
        a :: Inst.Nop :: rewrite_insts (b :: rest)
      else begin
        match a with
        | Inst.Mov_imm v -> rewrite_insts (split_immediate v @ (b :: rest))
        | _ ->
            (match b with
            | Inst.Mov_imm v -> a :: rewrite_insts (split_immediate v @ rest)
            | _ -> a :: Inst.Nop :: rewrite_insts (b :: rest))
      end
  | [ a ] when window_dirty [ a ] -> begin
      match a with
      | Inst.Mov_imm v -> rewrite_insts (split_immediate v)
      | _ -> [ a ]
    end
  | a :: rest -> begin
      match a with
      | Inst.Mov_imm v when window_dirty [ a ] -> rewrite_insts (split_immediate v @ rest)
      | _ -> a :: rewrite_insts rest
    end

let rewrite image =
  if List.exists Inst.is_blacklisted image.Image.insts then raise (Unrewritable image);
  let rec fixpoint insts budget =
    if budget = 0 then insts
    else begin
      let insts' = rewrite_insts insts in
      let img = Image.create ~name:image.Image.name ~toolchain:image.Image.toolchain insts' in
      match Scanner.verdict img with
      | Scanner.Clean -> insts'
      | Scanner.Rewritable _ -> fixpoint insts' (budget - 1)
      | Scanner.Rejected _ -> raise (Unrewritable image)
    end
  in
  let insts = fixpoint image.Image.insts 8 in
  Image.create ~name:image.Image.name ~toolchain:image.Image.toolchain insts

let admit image =
  match Scanner.verdict image with
  | Scanner.Clean -> Ok image
  | Scanner.Rejected occs ->
      Error
        (Format.asprintf "image %s contains %d forbidden instruction(s)"
           image.Image.name (List.length occs))
  | Scanner.Rewritable _ -> begin
      match rewrite image with
      | rewritten -> begin
          match Scanner.verdict rewritten with
          | Scanner.Clean -> Ok rewritten
          | _ ->
              Error
                (Format.asprintf "image %s could not be fully rewritten" image.Image.name)
        end
      | exception Unrewritable _ ->
          Error (Format.asprintf "image %s is unrewritable" image.Image.name)
    end
