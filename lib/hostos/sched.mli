(** Stage scheduler: list scheduling of parallel tasks on limited CPUs.

    AlloyStack's orchestrator runs a DAG stage's function instances as
    parallel Linux threads managed by CFS.  With [cores] CPUs and more
    runnable threads than cores, threads queue; the makespan of a stage
    is therefore the classic greedy list-scheduling result.  A small
    per-dispatch scheduling latency models the control-plane jitter that
    produces fan-in waiting in Fig. 15. *)

type placement = {
  core : int;
  start : Sim.Units.time;
  finish : Sim.Units.time;
}

type pool
(** A persistent set of cores whose per-core busy horizon survives
    across {!schedule_on} calls — the shared machine that a serving
    visor multiplexes independent in-flight workflows onto. *)

val pool : cores:int -> pool

val pool_cores : pool -> int

val copy_pool : pool -> pool
(** Snapshot of the pool's per-core busy horizons.  {!schedule_on}
    mutates the pool it is given, so planners probing placements
    (what-if scheduling, parallel merges) work on a copy and leave the
    shared horizons untouched. *)

val restore_pool : pool -> pool -> unit
(** [restore_pool dst src] overwrites [dst]'s horizons with [src]'s
    (checkpoint rollback).  Raises [Invalid_argument] when the core
    counts differ. *)

val release_pool : pool -> unit
(** Return a {!copy_pool} snapshot to the calling domain's freelist:
    the next same-width [copy_pool] on this domain blits into its
    arrays instead of allocating.  The freelist takes ownership — the
    caller must not touch the pool afterwards.  Never release a pool
    other code still schedules on (e.g. a {!scratch} arena or the
    shared serving pool). *)

val reset_pool : pool -> Sim.Units.time -> unit
(** [reset_pool p t0] rewinds [p] in place to the freshly-created
    all-cores-free-at-[t0] state, without allocating. *)

val scratch : cores:int -> pool
(** A domain-local scratch pool of [cores] cores, reset to all-free at
    zero.  Reuses one arena per (domain, core count): the caller owns
    the result only until its next [scratch] call with the same core
    count on the same domain.  Serving trajectories use this for their
    per-attempt private pools instead of allocating per attempt. *)

val busy_until : pool -> Sim.Units.time
(** Latest instant at which any core of the pool is still busy.  O(1):
    the pool tracks the running maximum incrementally. *)

val schedule_on :
  pool ->
  ?ready:Sim.Units.time ->
  ?dispatch_latency:Sim.Units.time ->
  Sim.Units.time list ->
  placement list
(** Like {!schedule}, but places tasks onto the pool's cores without
    resetting their busy horizons: tasks start no earlier than [ready]
    and no earlier than their core frees up from previously scheduled
    work (possibly belonging to another workflow). *)

val schedule :
  cores:int ->
  ?ready:Sim.Units.time ->
  ?dispatch_latency:Sim.Units.time ->
  Sim.Units.time list ->
  placement list
(** [schedule ~cores durations] places each task (in order) on the
    earliest-available core, no earlier than [ready].  The i-th
    placement corresponds to the i-th duration.  [dispatch_latency] is
    added before each task's start (sequential dispatch by the
    orchestrator). *)

val makespan : placement list -> Sim.Units.time
(** Latest finish time; zero for no placements. *)

val fan_in_wait : placement list -> Sim.Units.time list
(** For each task, how long it waits at the stage barrier for the
    slowest sibling: [makespan - finish_i]. *)

val same_core_pairs : placement list -> (int * int) list
(** Index pairs of tasks that run back to back on the same core, in
    each core's execution order (sorted by start time, not list
    position) — used by the locality model for reference-passing
    transfers.  Pairs are returned sorted. *)
