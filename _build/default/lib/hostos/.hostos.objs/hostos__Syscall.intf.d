lib/hostos/syscall.mli: Format Sim
