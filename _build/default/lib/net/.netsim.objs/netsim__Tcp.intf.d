lib/net/tcp.mli: Format Link Sim
