(** Workflow DAG description.

    What the gateway reads from a JSON configuration: functions (with
    language, parallel instance count and the as-libos modules they
    need) and directed data-dependency edges.  Execution kernels are
    bound separately by name — the config stays declarative, like an
    AWS Step Functions state machine. *)

type language = Rust | C | Python

val pp_language : Format.formatter -> language -> unit
val language_of_string : string -> (language, string) result

type node = {
  node_id : string;
  language : language;
  instances : int;  (** Parallel instances of this function (>= 1). *)
  required_modules : string list;  (** as-libos modules (Table 1). *)
}

type t = { wf_name : string; nodes : node list; edges : (string * string) list }

val create :
  name:string -> nodes:node list -> edges:(string * string) list -> (t, string) result
(** Validates: unique ids, edges reference existing nodes, acyclic. *)

val create_exn :
  name:string -> nodes:node list -> edges:(string * string) list -> t

val node : t -> string -> node
(** Raises [Not_found]. *)

val stages : t -> node list list
(** Topological layers: every node appears exactly once, and each
    node's predecessors all live in earlier layers. *)

val predecessors : t -> string -> string list
val successors : t -> string -> string list

val required_modules : t -> string list
(** Union over all nodes, deduplicated, registry order preserved. *)

val chain : name:string -> ?language:language -> ?modules:string list -> int -> t
(** [chain ~name n] builds the n-function sequential chain used by the
    FunctionChain benchmark. *)

val to_dot : t -> string
(** Graphviz rendering of the DAG (nodes labelled with language and
    instance count) for documentation and debugging. *)

val of_json : Jsonlite.t -> (t, string) result
val to_json : t -> Jsonlite.t
val of_string : string -> (t, string) result
