type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let reseed t seed = t.state <- mix (Int64.of_int seed)
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next_int64 t }

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, scaled into [0, 1). *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = Stdlib.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.chr (int t 256))
  done;
  b
