(** as-libos [mmap_file_backend] module: user-space page-fault handling
    (Table 2).

    [register_file_backend] ties a mapped memory region to a file
    managed by as-libos; the first touch of each page is served by a
    userfaultfd-style handler that reads the backing file and populates
    the page, charging the calibrated fault-service cost. *)

val init : Wfd.t -> clock:Sim.Clock.t -> unit

val register_file_backend :
  Wfd.t ->
  clock:Sim.Clock.t ->
  region_addr:int ->
  region_len:int ->
  path:string ->
  (unit, Errno.t) result
(** The region must already be mapped (e.g. via [mmap]); the file must
    exist in the WFD's filesystem. *)

val faults_served : Wfd.t -> int
