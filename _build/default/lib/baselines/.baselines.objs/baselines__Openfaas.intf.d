lib/baselines/openfaas.mli: Platform Sim
