open Sim

(* 2025-03-30T00:00:00Z *)
let epoch_ns = 1_743_292_800_000_000_000L

let init (_wfd : Wfd.t) ~clock = ignore clock

let gettimeofday (_wfd : Wfd.t) ~clock =
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Gettimeofday);
  Int64.add epoch_ns (Units.to_ns (Clock.now clock))
