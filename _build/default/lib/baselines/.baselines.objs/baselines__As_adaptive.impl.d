lib/baselines/as_adaptive.ml: As_multinode Netsim Printf Sim Units
