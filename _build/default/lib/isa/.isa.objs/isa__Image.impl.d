lib/isa/image.ml: Format Inst List String
