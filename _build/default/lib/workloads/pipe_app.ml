let slot = "pipe.data"
let warm_slot = "pipe.warm"

let app ~seed ~size =
  let payload = Datagen.payload ~seed size in
  let expected = Function_chain.checksum payload in
  (* A one-byte warmup exchange first, attributed to its own phase:
     the paper measures the transfer itself, not the one-time module
     loading the first syscall triggers. *)
  let sender (ctx : Fctx.t) =
    ctx.Fctx.phase "warmup" (fun () -> ctx.Fctx.send ~slot:warm_slot (Bytes.make 1 'w'));
    ctx.Fctx.phase Fctx.phase_transfer (fun () -> ctx.Fctx.send ~slot payload)
  in
  let receiver (ctx : Fctx.t) =
    ctx.Fctx.phase "warmup" (fun () -> ignore (ctx.Fctx.recv ~slot:warm_slot));
    let data = ref Bytes.empty in
    ctx.Fctx.phase Fctx.phase_transfer (fun () -> data := ctx.Fctx.recv ~slot);
    if not (Int64.equal (Function_chain.checksum !data) expected) then
      failwith "pipe: payload corrupted in transfer";
    ctx.Fctx.println "pipe ok"
  in
  {
    Fctx.app_name = "pipe";
    stages = [ ("sender", 1, sender); ("receiver", 1, receiver) ];
    inputs = [];
    validate = (fun ~read_output:_ -> Ok ());
    modules = [ "mm"; "stdio" ];
  }

let noops =
  {
    Fctx.app_name = "no-ops";
    stages = [ ("noop", 1, fun _ctx -> ()) ];
    inputs = [];
    validate = (fun ~read_output:_ -> Ok ());
    modules = [];
  }

let fixed_response = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi"

let http_server =
  let kernel (ctx : Fctx.t) =
    (* The workload-level view: produce the canned response.  Socket
       binding is platform-specific and exercised in the AlloyStack
       integration tests via as-std directly. *)
    ctx.Fctx.println fixed_response
  in
  {
    Fctx.app_name = "http-server";
    stages = [ ("serve", 1, kernel) ];
    inputs = [];
    validate = (fun ~read_output:_ -> Ok ());
    modules = [ "mm"; "stdio"; "socket"; "time" ];
  }
