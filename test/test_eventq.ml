(* Differential test for the pairing-heap event queue: the heap is run
   side by side with a naive sorted-list reference model through
   thousands of seeded random operations (insert, pop, cancel, re-key)
   and must agree on every pop — payload, timestamp and tie order.
   The reference mirrors the heap's tie-break contract exactly:
   ordering is (time, priority, insertion sequence), and a reschedule
   counts as a fresh insertion. *)

open Sim

(* --- Reference model: a plain list scanned linearly ---------------- *)

type ref_entry = { re_at : Units.time; re_pri : int; re_seq : int; re_id : int }

type model = { mutable entries : ref_entry list; mutable next_seq : int }

let model_create () = { entries = []; next_seq = 0 }

let model_insert m ~at ~pri ~id =
  let e = { re_at = at; re_pri = pri; re_seq = m.next_seq; re_id = id } in
  m.next_seq <- m.next_seq + 1;
  m.entries <- e :: m.entries

let entry_before a b =
  match Units.compare a.re_at b.re_at with
  | 0 -> if a.re_pri <> b.re_pri then a.re_pri < b.re_pri else a.re_seq < b.re_seq
  | c -> c < 0

let model_pop m =
  match m.entries with
  | [] -> None
  | first :: rest ->
      let best = List.fold_left (fun acc e -> if entry_before e acc then e else acc) first rest in
      m.entries <- List.filter (fun e -> e != best) m.entries;
      Some (best.re_at, best.re_id)

let model_mem m id = List.exists (fun e -> e.re_id = id) m.entries

let model_remove m id =
  let present = model_mem m id in
  if present then m.entries <- List.filter (fun e -> e.re_id <> id) m.entries;
  present

(* --- The differential driver --------------------------------------- *)

let check_pop_agrees name q model =
  let got = Eventq.pop q in
  let want = model_pop model in
  match (got, want) with
  | None, None -> ()
  | Some (at, id), Some (wat, wid) ->
      Alcotest.(check int) (name ^ ": payload") wid id;
      Alcotest.(check int64) (name ^ ": timestamp") (Units.to_ns wat) (Units.to_ns at)
  | Some _, None -> Alcotest.fail (name ^ ": heap popped, reference empty")
  | None, Some _ -> Alcotest.fail (name ^ ": heap empty, reference has events")

let test_differential () =
  (* 10^4 mixed operations per seed.  Handles of every insert are kept
     (popped or not) so cancels and re-keys regularly target stale
     handles — the edge the [queued] flag guards. *)
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let q : int Eventq.t = Eventq.create () in
      let model = model_create () in
      (* id -> (handle, priority given at insert; re-keys keep it) *)
      let handles : (int, int Eventq.handle * int) Hashtbl.t = Hashtbl.create 64 in
      let next_id = ref 0 in
      let random_time () = Units.ns_f (float_of_int (Rng.int rng 1_000_000)) in
      let random_known () =
        if !next_id = 0 then None else Some (Rng.int rng !next_id)
      in
      for op = 1 to 10_000 do
        let name = Printf.sprintf "seed %d op %d" seed op in
        match Rng.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 ->
            (* insert *)
            let id = !next_id in
            incr next_id;
            let at = random_time () and pri = Rng.int rng 3 in
            Hashtbl.replace handles id (Eventq.add q ~at ~pri id, pri);
            model_insert model ~at ~pri ~id
        | 5 | 6 | 7 ->
            (* pop *)
            check_pop_agrees name q model
        | 8 -> (
            (* cancel — possibly of an already-popped event *)
            match random_known () with
            | None -> ()
            | Some id ->
                let h, _ = Hashtbl.find handles id in
                let heap_did = Eventq.cancel q h in
                let model_did = model_remove model id in
                Alcotest.(check bool) (name ^ ": cancel effect") model_did heap_did)
        | _ -> (
            (* re-key — a popped/cancelled handle is re-armed *)
            match random_known () with
            | None -> ()
            | Some id ->
                let h, pri = Hashtbl.find handles id in
                let at = random_time () in
                Eventq.reschedule q h ~at;
                ignore (model_remove model id);
                (* a reschedule keeps the priority but consumes a
                   fresh insertion sequence *)
                let e =
                  { re_at = at; re_pri = pri; re_seq = model.next_seq; re_id = id }
                in
                model.next_seq <- model.next_seq + 1;
                model.entries <- e :: model.entries)
      done;
      (* Drain both completely: remaining order must agree too. *)
      let rec drain n =
        if not (Eventq.is_empty q) || model.entries <> [] then begin
          check_pop_agrees (Printf.sprintf "seed %d drain %d" seed n) q model;
          drain (n + 1)
        end
      in
      drain 0;
      Alcotest.(check int) (Printf.sprintf "seed %d: empty" seed) 0 (Eventq.length q))
    [ 1; 7; 42; 1234 ]

(* Re-keys keep priority in the differential test above at 0; this
   pins the documented contract directly. *)
let test_fifo_ties () =
  let q : int Eventq.t = Eventq.create () in
  let at = Units.ms 5 in
  for i = 0 to 99 do
    Eventq.push q ~at i
  done;
  for i = 0 to 99 do
    match Eventq.pop q with
    | Some (t, v) ->
        Alcotest.(check int) (Printf.sprintf "tie %d pops FIFO" i) i v;
        Alcotest.(check int64) "tie timestamp" (Units.to_ns at) (Units.to_ns t)
    | None -> Alcotest.fail "queue exhausted early"
  done

let test_priority_classes () =
  (* Same instant: lower priority class pops first, FIFO within it,
     regardless of interleaved insertion. *)
  let q : (int * int) Eventq.t = Eventq.create () in
  let at = Units.ms 1 in
  for i = 0 to 9 do
    Eventq.push q ~at ~pri:(i mod 2) (i mod 2, i)
  done;
  let popped = ref [] in
  let rec go () =
    match Eventq.pop q with
    | Some (_, pv) ->
        popped := pv :: !popped;
        go ()
    | None -> ()
  in
  go ();
  let expect =
    [ (0, 0); (0, 2); (0, 4); (0, 6); (0, 8); (1, 1); (1, 3); (1, 5); (1, 7); (1, 9) ]
  in
  Alcotest.(check (list (pair int int))) "class then FIFO" expect (List.rev !popped)

let test_cancel_of_popped () =
  let q : string Eventq.t = Eventq.create () in
  let h = Eventq.add q ~at:(Units.ms 1) "x" in
  Alcotest.(check bool) "queued before pop" true (Eventq.queued h);
  Alcotest.(check bool) "pop succeeds" true (Eventq.pop q <> None);
  Alcotest.(check bool) "not queued after pop" false (Eventq.queued h);
  Alcotest.(check bool) "cancel of popped is a no-op" false (Eventq.cancel q h);
  Alcotest.(check bool) "double cancel too" false (Eventq.cancel q h);
  Alcotest.(check int) "queue untouched" 0 (Eventq.length q);
  (* Re-arming a popped handle makes it live again. *)
  Eventq.reschedule q h ~at:(Units.ms 3);
  Alcotest.(check bool) "re-armed" true (Eventq.queued h);
  (match Eventq.pop q with
  | Some (t, v) ->
      Alcotest.(check string) "re-armed payload" "x" v;
      Alcotest.(check int64) "re-armed time" (Units.to_ns (Units.ms 3)) (Units.to_ns t)
  | None -> Alcotest.fail "re-armed event lost");
  Alcotest.(check bool) "cancel after second pop" false (Eventq.cancel q h)

let test_cancel_interior () =
  (* Cancelling interior nodes (not the root) exercises the pred-link
     repair path; remaining pops must still be globally sorted. *)
  let q : int Eventq.t = Eventq.create () in
  let hs =
    Array.init 200 (fun i -> Eventq.add q ~at:(Units.us ((i * 37 mod 199) + 1)) i)
  in
  (* cancel every third *)
  let cancelled = Hashtbl.create 16 in
  Array.iteri
    (fun i h ->
      if i mod 3 = 0 then begin
        Alcotest.(check bool) "cancel live" true (Eventq.cancel q h);
        Hashtbl.replace cancelled i ()
      end)
    hs;
  let last = ref Units.zero and n = ref 0 in
  let rec go () =
    match Eventq.pop q with
    | Some (t, v) ->
        Alcotest.(check bool) "sorted" true (Units.compare !last t <= 0);
        Alcotest.(check bool) "cancelled never pops" false (Hashtbl.mem cancelled v);
        last := t;
        incr n;
        go ()
    | None -> ()
  in
  go ();
  Alcotest.(check int) "survivors all popped" (200 - Array.length hs / 3 - 1) !n

let suite =
  [
    Alcotest.test_case "differential vs sorted-list reference" `Quick test_differential;
    Alcotest.test_case "same-deadline FIFO" `Quick test_fifo_ties;
    Alcotest.test_case "priority classes break instant ties" `Quick test_priority_classes;
    Alcotest.test_case "cancel/re-key of popped handles" `Quick test_cancel_of_popped;
    Alcotest.test_case "interior cancels keep order" `Quick test_cancel_interior;
  ]
