(** Windowed virtual-time series.

    Fixed-width windows (default 1 virtual second) over the simulated
    clock, ring-buffered with bounded retention so a soak run's memory
    stays O(retention) however long it serves.  Three series kinds:

    - {e counters} — per-window sums (request counts, error counts);
    - {e gauges} — per-window high-watermarks (inflight);
    - {e dists} — per-window value distributions: exact count/sum plus
      a {!Sketch.Tdigest} per window for rolling percentiles.

    Determinism: a timeseries is a pure function of the sequence of
    observations it receives.  The serving path records observations
    from the sequential virtual-time merge loop, so identical runs —
    whatever the host domain count — produce byte-identical CSV
    exports.  {!merge_into} folds a shard into a destination in
    sorted-name order for callers that aggregate per-domain shards
    themselves (same discipline as [Metrics.merge_into]).

    Window arithmetic: window [w] covers virtual instants
    [[w*width, (w+1)*width)], so an observation landing exactly on a
    boundary opens the {e next} window. *)

type t

type series
(** Handle for a counter or gauge series. *)

type dist
(** Handle for a distribution series. *)

val create : ?width:Units.time -> ?retention:int -> unit -> t
(** [width] defaults to one virtual second; [retention] (default 4096)
    bounds the number of windows kept per series — older windows are
    dropped (counted in {!dropped}).  Raises [Invalid_argument] when
    [width] is zero or [retention < 1]. *)

val width : t -> Units.time
val retention : t -> int

val counter : t -> string -> series
(** Registered per-window-sum series, created on first use; repeated
    calls with one name share the series. *)

val gauge : t -> string -> series
(** Registered per-window-max series.  Raises [Invalid_argument] if
    [name] is already a counter (and vice versa). *)

val dist : t -> string -> dist
(** Registered distribution series. *)

val add : t -> series -> at:Units.time -> float -> unit
(** Accumulate into the window containing [at]: sum for counters, max
    for gauges.  Observations older than the retention horizon are
    dropped (counted); anything else, including out-of-order arrivals
    within retention, lands in its window. *)

val observe : t -> dist -> at:Units.time -> float -> unit
(** Record a value into the window containing [at]. *)

val window_of : t -> Units.time -> int
(** Index of the window containing an instant. *)

val window_start : t -> int -> Units.time
val last_window : t -> int
(** Highest window touched by any observation; [-1] while empty. *)

val first_window : t -> int
(** Oldest retained window: [max 0 (last_window - retention + 1)];
    [0] while empty. *)

val dropped : t -> int
(** Observations discarded for falling behind the retention horizon. *)

val value : t -> series -> int -> float
(** Counter sum (or gauge max) in a window; [0] for windows never
    observed, out of range, or beyond retention. *)

val dist_count : t -> dist -> int -> int
val dist_sum : t -> dist -> int -> float

val dist_percentile : t -> dist -> int -> float -> float
(** [dist_percentile t d w p] for [p] in [0,100]; [0] when the window
    is empty. *)

val names : t -> string list
(** Registered series names (all kinds), sorted. *)

val merge_into : src:t -> dst:t -> unit
(** Fold [src] into [dst]: counters add, gauges max, dists merge count,
    sum and digests.  Series are visited in sorted-name order and
    windows oldest-first, so the result depends only on the order of
    [merge_into] calls — never on host scheduling.  Raises
    [Invalid_argument] when widths differ. *)

val to_csv : t -> string
(** The retained windows as CSV, one row per (series, window) covering
    [first_window .. last_window] with empty windows included:
    {[name,kind,window,start_s,value,count,sum,p50,p99]}
    Counter/gauge rows leave count/sum/p50/p99 empty; dist rows leave
    value empty.  Rows are sorted by name then window; floats are
    fixed-point (no [%g]), so equal series render byte-identically on
    any host. *)

val clear : t -> unit
(** Drop all windows and reset {!dropped}; registered series remain. *)
