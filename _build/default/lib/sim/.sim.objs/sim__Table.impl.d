lib/sim/table.ml: Array Buffer List Stdlib String
