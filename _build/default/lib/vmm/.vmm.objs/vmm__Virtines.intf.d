lib/vmm/virtines.mli: Sandbox
