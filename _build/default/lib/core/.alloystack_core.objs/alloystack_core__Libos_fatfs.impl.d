lib/core/libos_fatfs.ml: Bytes Clock Errno Fsim Hostos Sim Units Wfd
