lib/isa/elf.ml: Buffer Bytes Char Image Inst Int32 List Printf Scanner String
