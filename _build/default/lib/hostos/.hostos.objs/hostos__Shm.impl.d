lib/hostos/shm.ml: Bytes Clock Pipe Sim Stdlib Syscall Units
