open Sim

type t = { bandwidth : float; latency : Units.time; per_packet : Units.time }

let loopback =
  { bandwidth = 38.0e9; latency = Units.ns 300; per_packet = Units.ns 80 }

let inter_vm =
  (* virtio-net queues plus a tap/bridge hop on the host. *)
  { bandwidth = 3.1e9; latency = Units.us 18; per_packet = Units.ns 900 }

let datacenter =
  { bandwidth = 25.0e9 /. 8.0; latency = Units.us 25; per_packet = Units.ns 300 }

let wire_time t len = Units.time_for_bytes ~bytes_per_sec:t.bandwidth len

let rtt t = Units.scale t.latency 2.0
