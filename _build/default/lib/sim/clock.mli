(** Per-actor virtual clock.

    Each simulated thread of execution owns a clock cursor that it
    advances as it performs work.  Synchronisation points (barriers,
    message receives) move a cursor forward to another cursor's
    position.  The global makespan of a set of cursors is their
    maximum. *)

type t

val create : ?at:Units.time -> unit -> t
(** [create ~at ()] starts a clock at instant [at] (default zero). *)

val now : t -> Units.time

val advance : t -> Units.time -> unit
(** [advance t d] moves the clock forward by duration [d]. *)

val advance_to : t -> Units.time -> unit
(** [advance_to t instant] moves the clock forward to [instant]; a no-op
    if the clock is already past it. *)

val sync : t -> t -> unit
(** [sync a b] advances [a] to [max a b] — models [a] waiting for an
    event that happens at [b]'s current instant. *)

val copy : t -> t

val elapsed_since : t -> Units.time -> Units.time
(** [elapsed_since t start] is [now t - start]. *)

val makespan : t list -> Units.time
(** Latest instant among the clocks; zero for the empty list. *)
