(* Touch cost per link: a light streaming pass over the payload. *)
let touch_ns_per_byte = 0.08

let checksum data =
  let n = Bytes.length data in
  let acc = ref 0xcbf29ce484222325L in
  (* FNV-ish over 8-byte strides: cheap but order-sensitive. *)
  let i = ref 0 in
  while !i + 8 <= n do
    acc := Int64.mul (Int64.logxor !acc (Bytes.get_int64_le data !i)) 0x100000001b3L;
    i := !i + 8
  done;
  while !i < n do
    acc :=
      Int64.mul
        (Int64.logxor !acc (Int64.of_int (Char.code (Bytes.get data !i))))
        0x100000001b3L;
    incr i
  done;
  !acc

let slot i = Printf.sprintf "fc.hop.%d" i

let head_kernel ~seed ~payload (ctx : Fctx.t) =
  let data = Datagen.payload ~seed payload in
  ctx.Fctx.phase Fctx.phase_compute (fun () ->
      Fctx.compute_bytes ctx ~ns_per_byte:touch_ns_per_byte payload);
  ctx.Fctx.phase Fctx.phase_transfer (fun () -> ctx.Fctx.send ~slot:(slot 0) data)

let link_kernel ~index (ctx : Fctx.t) =
  let data = ref Bytes.empty in
  ctx.Fctx.phase Fctx.phase_transfer (fun () -> data := ctx.Fctx.recv ~slot:(slot (index - 1)));
  ctx.Fctx.phase Fctx.phase_compute (fun () ->
      ignore (checksum !data);
      Fctx.compute_bytes ctx ~ns_per_byte:touch_ns_per_byte (Bytes.length !data));
  ctx.Fctx.phase Fctx.phase_transfer (fun () -> ctx.Fctx.send ~slot:(slot index) !data)

let tail_kernel ~index ~seed ~payload (ctx : Fctx.t) =
  let data = ref Bytes.empty in
  ctx.Fctx.phase Fctx.phase_transfer (fun () -> data := ctx.Fctx.recv ~slot:(slot (index - 1)));
  let sum = checksum !data in
  ctx.Fctx.phase Fctx.phase_compute (fun () ->
      Fctx.compute_bytes ctx ~ns_per_byte:touch_ns_per_byte (Bytes.length !data));
  let expected = checksum (Datagen.payload ~seed payload) in
  if not (Int64.equal sum expected) then
    failwith "FunctionChain: payload corrupted along the chain";
  ctx.Fctx.println (Printf.sprintf "chain checksum %Lx" sum)

let app ~seed ~payload ~length =
  if length < 2 then invalid_arg "Function_chain.app: length must be >= 2";
  let stage i =
    let name = Printf.sprintf "fn%d" i in
    if i = 0 then (name, 1, head_kernel ~seed ~payload)
    else if i = length - 1 then (name, 1, tail_kernel ~index:i ~seed ~payload)
    else (name, 1, link_kernel ~index:i)
  in
  {
    Fctx.app_name = "FunctionChain";
    stages = List.init length stage;
    inputs = [];
    validate =
      (fun ~read_output ->
        ignore read_output;
        (* Correctness is asserted in the tail kernel (checksum); the
           chain has no file output. *)
        Ok ());
    modules = [ "mm"; "stdio"; "time" ];
  }
