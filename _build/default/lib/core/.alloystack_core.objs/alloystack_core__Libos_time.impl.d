lib/core/libos_time.ml: Clock Hostos Int64 Sim Units Wfd
