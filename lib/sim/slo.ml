(* Multi-window multi-burn-rate SLO monitor (the Google SRE workbook
   recipe), evaluated on the virtual clock.

   State is a ring of per-bucket (good, total) counts sized to the
   slow lookback, plus rolling sums for both lookbacks — closing a
   bucket is O(1): subtract the bucket leaving each lookback, add the
   one closing, compare burns.  All integer counts and one float
   division per close, so alert instants are bit-deterministic. *)

type spec = {
  slo_name : string;
  slo_latency : Units.time;
  slo_objective : float;
  slo_fast : Units.time;
  slo_slow : Units.time;
  slo_burn : float;
}

let spec ?(objective = 0.999) ?(fast = Units.sec 300) ?(slow = Units.sec 3600)
    ?(burn = 14.4) ~name ~latency () =
  if not (objective > 0.0 && objective < 1.0) then
    invalid_arg "Slo.spec: objective must be in (0,1)";
  if Units.(fast <= Units.zero) || Units.(slow <= Units.zero) then
    invalid_arg "Slo.spec: lookback windows must be positive";
  if Units.(slow < fast) then
    invalid_arg "Slo.spec: slow window shorter than fast window";
  if burn <= 0.0 then invalid_arg "Slo.spec: burn threshold must be positive";
  {
    slo_name = name;
    slo_latency = latency;
    slo_objective = objective;
    slo_fast = fast;
    slo_slow = slow;
    slo_burn = burn;
  }

type kind = Page | Clear

type alert = {
  al_slo : string;
  al_kind : kind;
  al_at : Units.time;
  al_fast : float;
  al_slow : float;
}

type t = {
  m_spec : spec;
  m_bucket : Units.time;
  m_fast_n : int;  (* fast lookback, in buckets *)
  m_slow_n : int;
  m_good : int array;  (* rings, slot = bucket mod m_slow_n *)
  m_total : int array;
  mutable m_cur : int;  (* open bucket index *)
  mutable m_cur_good : int;
  mutable m_cur_total : int;
  mutable m_fast_good : int;  (* rolling sums over the lookbacks *)
  mutable m_fast_total : int;
  mutable m_slow_good : int;
  mutable m_slow_total : int;
  mutable m_fast_burn : float;
  mutable m_slow_burn : float;
  mutable m_paging : bool;
  mutable m_alerts : alert list;  (* newest first *)
  mutable m_all_good : int;
  mutable m_all_total : int;
}

let buckets_of ~bucket window =
  let b = Units.to_ns bucket and w = Units.to_ns window in
  Int64.to_int (Int64.div (Int64.add w (Int64.sub b 1L)) b)

let create ?(bucket = Units.sec 1) s =
  if Units.equal bucket Units.zero then invalid_arg "Slo.create: zero bucket";
  if Units.(s.slo_fast < bucket) then
    invalid_arg "Slo.create: fast window shorter than the bucket";
  let fast_n = buckets_of ~bucket s.slo_fast in
  let slow_n = buckets_of ~bucket s.slo_slow in
  {
    m_spec = s;
    m_bucket = bucket;
    m_fast_n = fast_n;
    m_slow_n = slow_n;
    m_good = Array.make slow_n 0;
    m_total = Array.make slow_n 0;
    m_cur = 0;
    m_cur_good = 0;
    m_cur_total = 0;
    m_fast_good = 0;
    m_fast_total = 0;
    m_slow_good = 0;
    m_slow_total = 0;
    m_fast_burn = 0.0;
    m_slow_burn = 0.0;
    m_paging = false;
    m_alerts = [];
    m_all_good = 0;
    m_all_total = 0;
  }

let budget m = 1.0 -. m.m_spec.slo_objective

let burn_of m ~good ~total =
  if total = 0 then 0.0
  else float_of_int (total - good) /. float_of_int total /. budget m

let bucket_close_at m w =
  Units.ns_f (Int64.to_float (Int64.mul (Int64.of_int (w + 1)) (Units.to_ns m.m_bucket)))

(* Close the open bucket: rotate it into the rings and rolling sums,
   then evaluate the page/clear rule at the bucket's closing edge. *)
let close_bucket m =
  let w = m.m_cur in
  let slot = w mod m.m_slow_n in
  (* The slot being overwritten holds bucket [w - slow_n], which is
     exactly the one leaving the slow lookback. *)
  m.m_slow_good <- m.m_slow_good - m.m_good.(slot);
  m.m_slow_total <- m.m_slow_total - m.m_total.(slot);
  (if w >= m.m_fast_n then begin
     let leaving = (w - m.m_fast_n) mod m.m_slow_n in
     m.m_fast_good <- m.m_fast_good - m.m_good.(leaving);
     m.m_fast_total <- m.m_fast_total - m.m_total.(leaving)
   end);
  m.m_good.(slot) <- m.m_cur_good;
  m.m_total.(slot) <- m.m_cur_total;
  m.m_slow_good <- m.m_slow_good + m.m_cur_good;
  m.m_slow_total <- m.m_slow_total + m.m_cur_total;
  m.m_fast_good <- m.m_fast_good + m.m_cur_good;
  m.m_fast_total <- m.m_fast_total + m.m_cur_total;
  m.m_cur_good <- 0;
  m.m_cur_total <- 0;
  m.m_cur <- w + 1;
  m.m_fast_burn <- burn_of m ~good:m.m_fast_good ~total:m.m_fast_total;
  m.m_slow_burn <- burn_of m ~good:m.m_slow_good ~total:m.m_slow_total;
  let thr = m.m_spec.slo_burn in
  let firing = m.m_fast_burn >= thr && m.m_slow_burn >= thr in
  if firing && not m.m_paging then begin
    m.m_paging <- true;
    m.m_alerts <-
      {
        al_slo = m.m_spec.slo_name;
        al_kind = Page;
        al_at = bucket_close_at m w;
        al_fast = m.m_fast_burn;
        al_slow = m.m_slow_burn;
      }
      :: m.m_alerts
  end
  else if m.m_paging && m.m_fast_burn < thr && m.m_slow_burn < thr then begin
    m.m_paging <- false;
    m.m_alerts <-
      {
        al_slo = m.m_spec.slo_name;
        al_kind = Clear;
        al_at = bucket_close_at m w;
        al_fast = m.m_fast_burn;
        al_slow = m.m_slow_burn;
      }
      :: m.m_alerts
  end

let advance_to m w =
  (* A long idle gap with nothing in either lookback and no page held
     can be skipped wholesale: every close would subtract and add
     zeros and fire nothing. *)
  if
    w - m.m_cur > m.m_slow_n
    && m.m_slow_total = 0 && m.m_cur_total = 0 && (not m.m_paging)
    && m.m_fast_burn = 0.0 && m.m_slow_burn = 0.0
  then m.m_cur <- w - m.m_slow_n;
  while m.m_cur < w do
    close_bucket m
  done

let observe m ~at ~good =
  let w = Int64.to_int (Int64.div (Units.to_ns at) (Units.to_ns m.m_bucket)) in
  if w > m.m_cur then advance_to m w;
  m.m_cur_total <- m.m_cur_total + 1;
  if good then m.m_cur_good <- m.m_cur_good + 1;
  m.m_all_total <- m.m_all_total + 1;
  if good then m.m_all_good <- m.m_all_good + 1

let observe_request m ~at ~ok ~latency =
  observe m ~at ~good:(ok && Units.(latency <= m.m_spec.slo_latency))

let finish m ~at =
  let w = Int64.to_int (Int64.div (Units.to_ns at) (Units.to_ns m.m_bucket)) in
  advance_to m (w + 1)

let alerts m = List.rev m.m_alerts
let paging m = m.m_paging
let good m = m.m_all_good
let total m = m.m_all_total
let burn_rates m = (m.m_fast_burn, m.m_slow_burn)

let compliance m =
  if m.m_all_total = 0 then 1.0
  else float_of_int m.m_all_good /. float_of_int m.m_all_total

let name m = m.m_spec.slo_name

let trim_fixed s =
  let n = String.length s in
  let last = ref (n - 1) in
  while !last > 0 && s.[!last] = '0' && s.[!last - 1] <> '.' do
    decr last
  done;
  String.sub s 0 (!last + 1)

let render_alert a =
  Printf.sprintf "slo %s %s at %ss (burn fast %s slow %s)" a.al_slo
    (match a.al_kind with Page -> "PAGE" | Clear -> "CLEAR")
    (trim_fixed (Printf.sprintf "%.3f" (Units.to_sec a.al_at)))
    (trim_fixed (Printf.sprintf "%.2f" a.al_fast))
    (trim_fixed (Printf.sprintf "%.2f" a.al_slow))
