(** Virtual-address-space layout of a WFD.

    The paper's WFD divides one process address space into a system
    partition (as-visor + as-libos code and heap) and a user partition
    (per-function code/heap/stack plus the trampoline pages).  This
    module fixes the region geometry so every component agrees on where
    things live. *)

type region = { base : int; size : int }

val contains : region -> int -> bool
val region_end : region -> int
(** One past the last byte. *)

val pp_region : Format.formatter -> region -> unit

(** {1 System partition} *)

val visor_code : region
val libos_code : region
val libos_heap : region
(** Where as-libos allocates AsBuffers and its own metadata. *)

(** {1 User partition} *)

val trampoline : region
(** The trampoline code pages that switch PKRU; mapped user-executable. *)

val function_slot : int -> region
(** [function_slot i] is the private region (code + heap + stack) of the
    [i]-th function instance of the workflow, [i >= 0].  Slots are
    disjoint from each other and from the system partition. *)

val function_slot_count : int
(** Maximum function instances per WFD. *)

val function_code : int -> region
val function_heap : int -> region
val function_stack : int -> region
(** Sub-regions of {!function_slot}. *)

val slot_of_addr : int -> int option
(** Which function slot (if any) an address falls into. *)

val in_system_partition : int -> bool
val in_user_partition : int -> bool
