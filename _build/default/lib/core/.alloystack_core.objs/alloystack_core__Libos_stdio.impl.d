lib/core/libos_stdio.ml: Buffer Bytes Clock Hostos Sim Wfd
