(* Tests for Wasm.Compile_cache: content-hash LRU memoization of AOT
   compilation, commit-on-success under injected loader faults, and the
   invariant that the cache never changes virtual time. *)

open Sim
open Alloystack_core

let check_time = Alcotest.testable Units.pp Units.equal

let test_hit_miss () =
  let cache = Wasm.Compile_cache.create () in
  let compiles = ref 0 in
  let compile () =
    incr compiles;
    Wasm.Aot.compile Wasm.Builder.sum_to_n
  in
  let c1 = Wasm.Compile_cache.find_or_compile cache Wasm.Builder.sum_to_n ~compile in
  let c2 = Wasm.Compile_cache.find_or_compile cache Wasm.Builder.sum_to_n ~compile in
  Alcotest.(check int) "compiled once" 1 !compiles;
  Alcotest.(check bool) "same compilation shared" true (c1 == c2);
  Alcotest.(check int) "one miss" 1 (Wasm.Compile_cache.miss_count cache);
  Alcotest.(check int) "one hit" 1 (Wasm.Compile_cache.hit_count cache);
  Alcotest.(check int) "one entry" 1 (Wasm.Compile_cache.length cache);
  (* The key is the content hash: a structurally identical module hits
     regardless of provenance. *)
  Alcotest.(check string) "hash stable"
    (Wasm.Compile_cache.hash_module Wasm.Builder.sum_to_n)
    (Wasm.Compile_cache.hash_module Wasm.Builder.sum_to_n);
  Alcotest.(check bool) "distinct modules hash apart" true
    (Wasm.Compile_cache.hash_module Wasm.Builder.sum_to_n
    <> Wasm.Compile_cache.hash_module Wasm.Builder.fib)

let test_lru_eviction () =
  let cache = Wasm.Compile_cache.create ~capacity:2 () in
  let get m =
    ignore
      (Wasm.Compile_cache.find_or_compile cache m ~compile:(fun () ->
           Wasm.Aot.compile m))
  in
  get Wasm.Builder.sum_to_n;
  get Wasm.Builder.fib;
  (* Touch sum_to_n so fib becomes the LRU entry. *)
  get Wasm.Builder.sum_to_n;
  get Wasm.Builder.memory_fill;
  Alcotest.(check int) "one eviction" 1 (Wasm.Compile_cache.eviction_count cache);
  Alcotest.(check int) "capacity held" 2 (Wasm.Compile_cache.length cache);
  let misses = Wasm.Compile_cache.miss_count cache in
  get Wasm.Builder.sum_to_n;
  Alcotest.(check int) "recently-used entry survived" misses
    (Wasm.Compile_cache.miss_count cache);
  get Wasm.Builder.fib;
  Alcotest.(check int) "LRU entry was the one evicted" (misses + 1)
    (Wasm.Compile_cache.miss_count cache);
  match Wasm.Compile_cache.create ~capacity:0 () with
  | _ -> Alcotest.fail "zero capacity must be rejected"
  | exception Invalid_argument _ -> ()

let test_commit_on_success () =
  let cache = Wasm.Compile_cache.create () in
  (match
     Wasm.Compile_cache.find_or_compile cache Wasm.Builder.sum_to_n
       ~compile:(fun () -> failwith "transient compile failure")
   with
  | _ -> Alcotest.fail "expected compile failure to propagate"
  | exception Failure _ -> ());
  Alcotest.(check int) "failed fill left no entry" 0
    (Wasm.Compile_cache.length cache);
  (* The retry compiles cleanly and commits. *)
  ignore
    (Wasm.Compile_cache.find_or_compile cache Wasm.Builder.sum_to_n
       ~compile:(fun () -> Wasm.Aot.compile Wasm.Builder.sum_to_n));
  Alcotest.(check int) "retry committed" 1 (Wasm.Compile_cache.length cache)

(* Satellite (f): a transient loader fault during the cache-fill path
   must not poison the cache — the recovery recompiles, the good result
   is committed, and later loads hit with unchanged virtual time. *)
let test_loader_fault_no_poison () =
  let m = Wasm.Builder.sum_to_n in
  let trace = Trace.create () in
  Trace.set_enabled trace true;
  let plan = Fault.create ~trace ~seed:42 () in
  Fault.inject plan ~site:Fault.site_loader_load (Fault.Nth 1);
  let cache = Wasm.Compile_cache.create () in
  let clock1 = Clock.create () in
  ignore (Wasm.Runtime.load ~cache ~fault:plan Wasm.Runtime.wasmtime ~clock:clock1 m);
  Alcotest.(check int) "fault fired" 1
    (Fault.fired plan ~site:Fault.site_loader_load);
  (match Trace.filter trace ~category:"fault" with
  | [ _injected; recovered ] ->
      Alcotest.(check string) "recovery recorded"
        "recovered: slow-path reload of wasm module sum_to_n"
        recovered.Trace.detail
  | events ->
      Alcotest.failf "expected injection + recovery, got %d events"
        (List.length events));
  (* The fired fault charged one extra engine restart. *)
  let clean_clock = Clock.create () in
  ignore (Wasm.Runtime.load Wasm.Runtime.wasmtime ~clock:clean_clock m);
  Alcotest.check check_time "recovery charged one extra startup"
    (Units.add (Clock.now clean_clock) Wasm.Runtime.wasmtime.Wasm.Runtime.startup)
    (Clock.now clock1);
  (* Only the recovered (good) compilation was committed. *)
  Alcotest.(check int) "one good entry" 1 (Wasm.Compile_cache.length cache);
  Alcotest.(check int) "no hit yet" 0 (Wasm.Compile_cache.hit_count cache);
  (* The second load hits the cache and costs exactly what a fault-free
     uncached load costs: virtual time never sees the cache. *)
  let clock2 = Clock.create () in
  ignore (Wasm.Runtime.load ~cache ~fault:plan Wasm.Runtime.wasmtime ~clock:clock2 m);
  Alcotest.(check int) "second load hit" 1 (Wasm.Compile_cache.hit_count cache);
  Alcotest.check check_time "hit charges full virtual cost"
    (Clock.now clean_clock) (Clock.now clock2)

(* End-to-end virtual-time invariance: the same workflow reports the
   same e2e time with no cache, a cold cache and a warm cache. *)
let wasm_wf =
  Workflow.create_exn ~name:"wasm-load"
    ~nodes:
      [
        {
          Workflow.node_id = "f";
          language = Workflow.Rust;
          instances = 1;
          required_modules = [];
        };
      ]
    ~edges:[]

let wasm_bindings =
  [
    ( "f",
      Visor.bind (fun (ctx : Asstd.ctx) ~instance:_ ~total:_ ->
          let loaded = Asstd.load_wasm ctx Wasm.Runtime.wasmtime Wasm.Builder.sum_to_n in
          let clock = ctx.Asstd.thread.Wfd.clock in
          let inst =
            Wasm.Runtime.instantiate loaded ~clock ~system:Wasm.Wasi.null_system
          in
          let r = Wasm.Runtime.run loaded ~clock ~instance:inst "sum" [| 100L |] in
          assert (r = 5050L)) );
  ]

let run_once config =
  let r = Visor.run ~config ~workflow:wasm_wf ~bindings:wasm_bindings () in
  r.Visor.e2e

let test_virtual_time_invariance () =
  let base = Visor.default_config in
  let uncached = run_once base in
  let cache = Wasm.Compile_cache.create () in
  let cold = run_once { base with Visor.code_cache = Some cache } in
  let warm = run_once { base with Visor.code_cache = Some cache } in
  Alcotest.(check int) "cache exercised: one miss" 1
    (Wasm.Compile_cache.miss_count cache);
  Alcotest.(check int) "cache exercised: one hit" 1
    (Wasm.Compile_cache.hit_count cache);
  Alcotest.check check_time "cold run identical to uncached" uncached cold;
  Alcotest.check check_time "warm run identical to uncached" uncached warm

(* Acceptance: warm clones of a server template recompile nothing —
   the shared cache's miss count stays at the number of distinct
   modules no matter how many requests are served. *)
let test_warm_clone_zero_recompiles () =
  let server = Visor.Server.create () in
  Visor.Server.register server ~endpoint:"e" ~workflow:wasm_wf
    ~bindings:wasm_bindings ();
  let n = 5 in
  let requests =
    List.init n (fun i ->
        { Visor.Server.endpoint = "e"; arrival = Units.ms (i * 50) })
  in
  let report = Visor.Server.serve server requests in
  let cache = Visor.Server.code_cache server in
  Alcotest.(check int) "all served" n report.Visor.Server.completed;
  Alcotest.(check bool) "warm clones happened" true
    (report.Visor.Server.warm_starts > 0);
  Alcotest.(check int) "one compile for the whole run" 1
    (Wasm.Compile_cache.miss_count cache);
  Alcotest.(check int) "every other load hit" (n - 1)
    (Wasm.Compile_cache.hit_count cache);
  Visor.Server.shutdown server

let suite =
  [
    Alcotest.test_case "hit/miss accounting" `Quick test_hit_miss;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "commit on success" `Quick test_commit_on_success;
    Alcotest.test_case "loader fault does not poison" `Quick
      test_loader_fault_no_poison;
    Alcotest.test_case "virtual-time invariance" `Quick
      test_virtual_time_invariance;
    Alcotest.test_case "warm clones recompile nothing" `Quick
      test_warm_clone_zero_recompiles;
  ]
