type event = { at : Units.time; category : string; label : string; detail : string }

type t = {
  ring : event option array;
  mutable head : int;  (** Next write position. *)
  mutable stored : int;
  mutable dropped : int;
  mutable on : bool;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { ring = Array.make capacity None; head = 0; stored = 0; dropped = 0; on = false }

let enabled t = t.on
let set_enabled t v = t.on <- v

let record t ~at ~category ~label detail =
  if t.on then begin
    let cap = Array.length t.ring in
    if t.stored = cap then t.dropped <- t.dropped + 1 else t.stored <- t.stored + 1;
    t.ring.(t.head) <- Some { at; category; label; detail };
    t.head <- (t.head + 1) mod cap
  end

let recordf t ~at ~category ~label fmt =
  if t.on then Format.kasprintf (fun detail -> record t ~at ~category ~label detail) fmt
  else Format.ikfprintf ignore Format.str_formatter fmt

let events t =
  let cap = Array.length t.ring in
  let start = (t.head - t.stored + cap) mod cap in
  List.init t.stored (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let count t = t.stored
let dropped t = t.dropped

let filter t ~category =
  List.filter (fun e -> String.equal e.category category) (events t)

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.head <- 0;
  t.stored <- 0;
  t.dropped <- 0

let pp_event fmt e =
  Format.fprintf fmt "[%a] %-10s %-20s %s" Units.pp e.at e.category e.label e.detail

let dump t =
  String.concat "\n" (List.map (Format.asprintf "%a" pp_event) (events t))

let global = create ()

(* Graft a shard's events onto [t] with times shifted by [offset].
   Replaying through [record] keeps the ring-buffer drop accounting
   identical to having recorded the events directly. *)
let import t ~offset shard =
  List.iter
    (fun e ->
      record t ~at:(Units.add e.at offset) ~category:e.category ~label:e.label
        e.detail)
    (events shard)

(* Domain-local "current" buffer: main domain -> [global], workers
   default to a private instance until [Par.with_shard] installs a
   per-task shard. *)
let current_key = Domain.DLS.new_key (fun () -> create ())
let () = Domain.DLS.set current_key global
let current () = Domain.DLS.get current_key
let set_current t = Domain.DLS.set current_key t
