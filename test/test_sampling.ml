(* Sampled observability: 1-in-k sampling must leave every virtual
   result untouched (responses, latencies, counters), keep exports
   byte-identical at k = 1, and keep the sampled-span population
   exactly the deterministic stride the seed selects. *)

open Sim
open Alloystack_core

let with_domains = Test_par.with_domains

let reset_observability () =
  Trace.clear Trace.global;
  Span.clear Span.global;
  Metrics.reset ()

let serve_sampled ?sample_every ?sample_seed ~requests () =
  let server = Visor.Server.create ?sample_every ?sample_seed () in
  List.iter
    (fun (endpoint, workflow, bindings) ->
      Visor.Server.register server ~endpoint ~workflow ~bindings ())
    Test_par.endpoints_spec;
  let r = Visor.Server.serve server requests in
  Visor.Server.shutdown server;
  r

let observe ?sample_every ?sample_seed ~requests () =
  reset_observability ();
  Span.set_enabled Span.global true;
  let r = serve_sampled ?sample_every ?sample_seed ~requests () in
  let spans = Span.spans Span.global in
  let request_roots =
    List.filter
      (fun (sp : Span.span) -> String.equal sp.Span.sp_category "request")
      (Span.roots Span.global)
  in
  let tr = Obs.trace_json_string () in
  let me = Obs.metrics_json_string () in
  Span.set_enabled Span.global false;
  reset_observability ();
  (r, List.length spans, List.length request_roots, tr, me)

let fingerprint = Test_par.fingerprint
let summary = Test_par.summary

let test_k1_identical () =
  (* sample_every:1 must be bit-identical to not asking for sampling at
     all — same responses, same span tree, same trace and metrics
     exports. *)
  let requests = Test_par.requests_for ~seed:7 ~count:60 in
  let r0, nsp0, nreq0, tr0, me0 = observe ~requests () in
  let r1, nsp1, nreq1, tr1, me1 =
    observe ~sample_every:1 ~sample_seed:99 ~requests ()
  in
  Alcotest.(check string) "responses" (fingerprint r0 ^ summary r0)
    (fingerprint r1 ^ summary r1);
  Alcotest.(check int) "span count" nsp0 nsp1;
  Alcotest.(check int) "request roots" nreq0 nreq1;
  Alcotest.(check string) "trace export" tr0 tr1;
  Alcotest.(check string) "metrics export" me0 me1

let test_sampled_virtuals_exact () =
  (* Sampling must not perturb any virtual output: latencies come from
     the responses themselves, not from spans. *)
  let requests = Test_par.requests_for ~seed:3 ~count:80 in
  let r1, _, _, _, _ = observe ~requests () in
  let rk, _, _, _, _ = observe ~sample_every:8 ~sample_seed:3 ~requests () in
  Alcotest.(check string) "responses identical under sampling"
    (fingerprint r1 ^ summary r1)
    (fingerprint rk ^ summary rk);
  Alcotest.(check int64) "p99 identical"
    (Units.to_ns r1.Visor.Server.p99_latency)
    (Units.to_ns rk.Visor.Server.p99_latency)

let test_sampled_span_population () =
  (* The sampled population is an exact deterministic stride over
     arrival indices: floor counting, no randomness. *)
  let count = 60 in
  let requests = Test_par.requests_for ~seed:7 ~count in
  List.iter
    (fun (k, seed) ->
      let expected = ref 0 in
      let phase = ((seed mod k) + k) mod k in
      for i = 0 to count - 1 do
        if i mod k = phase then incr expected
      done;
      let _, _, nreq, _, _ =
        observe ~sample_every:k ~sample_seed:seed ~requests ()
      in
      Alcotest.(check int)
        (Printf.sprintf "k=%d seed=%d request-span count" k seed)
        !expected nreq)
    [ (4, 7); (4, 2); (7, 0); (16, 5); (60, 59) ]

let test_sampling_across_domains () =
  (* Sampling composes with the domain pool: same sampled span count,
     same exports, any domain width. *)
  let requests = Test_par.requests_for ~seed:11 ~count:48 in
  let run domains =
    with_domains domains (fun () ->
        observe ~sample_every:6 ~sample_seed:11 ~requests ())
  in
  let r1, nsp1, nreq1, tr1, me1 = run 1 in
  let r4, nsp4, nreq4, tr4, me4 = run 4 in
  Alcotest.(check string) "responses" (fingerprint r1 ^ summary r1)
    (fingerprint r4 ^ summary r4);
  Alcotest.(check int) "span count" nsp1 nsp4;
  Alcotest.(check int) "request roots" nreq1 nreq4;
  Alcotest.(check string) "trace export" tr1 tr4;
  Alcotest.(check string) "metrics export" me1 me4

let test_trace_ring_sampling () =
  let t = Trace.create () in
  Trace.set_enabled t true;
  Trace.set_sample_every t ~seed:5 10;
  for i = 0 to 99 do
    Trace.record t ~at:(Units.us i) ~category:"c" ~label:"l" (string_of_int i)
  done;
  Alcotest.(check int) "kept exactly 1 in 10" 10 (Trace.count t);
  Alcotest.(check int) "saw all 100" 100 (Trace.seen t);
  (* Back to k=1: records everything again. *)
  Trace.clear t;
  Trace.set_sample_every t 1;
  for i = 0 to 99 do
    Trace.record t ~at:(Units.us i) ~category:"c" ~label:"l" (string_of_int i)
  done;
  Alcotest.(check int) "k=1 keeps all" 100 (Trace.count t)

let test_metrics_raw_thinning () =
  (* Thinned reservoirs keep aggregates exact and percentiles close:
     stride-sampling a smooth sequence cannot move the median much. *)
  let in_registry f =
    let saved = Metrics.current () in
    Metrics.set_current (Metrics.create_registry ());
    Fun.protect ~finally:(fun () -> Metrics.set_current saved) f
  in
  let feed () =
    let h = Metrics.histogram "thin_test" in
    for i = 1 to 10_000 do
      Metrics.observe h (float_of_int i)
    done;
    let snap = Metrics.snapshot () in
    List.find
      (fun (s : Metrics.histo_snapshot) -> String.equal s.Metrics.hs_name "thin_test")
      snap.Metrics.snap_histograms
  in
  let exact = in_registry feed in
  let thinned =
    in_registry (fun () ->
        Metrics.set_raw_sample_every ~seed:3 100;
        feed ())
  in
  Alcotest.(check int) "count exact" exact.Metrics.hs_count thinned.Metrics.hs_count;
  Alcotest.(check (float 0.0)) "sum exact" exact.Metrics.hs_sum thinned.Metrics.hs_sum;
  Alcotest.(check (float 0.0)) "min exact" exact.Metrics.hs_min thinned.Metrics.hs_min;
  Alcotest.(check (float 0.0)) "max exact" exact.Metrics.hs_max thinned.Metrics.hs_max;
  let close p a b =
    let rel = Float.abs (a -. b) /. Float.max 1.0 (Float.abs a) in
    if rel > 0.05 then
      Alcotest.failf "%s: exact %.1f vs thinned %.1f (rel %.3f)" p a b rel
  in
  close "p50" exact.Metrics.hs_p50 thinned.Metrics.hs_p50;
  close "p99" exact.Metrics.hs_p99 thinned.Metrics.hs_p99

let suite =
  [
    Alcotest.test_case "sample_every 1 is byte-identical" `Quick test_k1_identical;
    Alcotest.test_case "sampling leaves virtual results exact" `Quick
      test_sampled_virtuals_exact;
    Alcotest.test_case "sampled span population is exact" `Quick
      test_sampled_span_population;
    Alcotest.test_case "sampling deterministic across domains" `Quick
      test_sampling_across_domains;
    Alcotest.test_case "trace ring 1-in-k" `Quick test_trace_ring_sampling;
    Alcotest.test_case "metrics reservoir thinning" `Quick test_metrics_raw_thinning;
  ]
