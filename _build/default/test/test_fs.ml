(* Tests for the filesystem substrate: block device, FAT, extent fs,
   ramfs, VFS, free-space tracking. *)

open Sim
open Fsim

let test_blockdev_roundtrip () =
  let dev = Blockdev.create ~sectors:128 in
  let sector = Bytes.init 512 (fun i -> Char.chr (i mod 256)) in
  Blockdev.write_sector dev 5 sector;
  Alcotest.(check bytes) "sector roundtrip" sector (Blockdev.read_sector dev 5);
  Alcotest.(check int) "reads counted" 1 (Blockdev.reads dev);
  Alcotest.(check int) "writes counted" 1 (Blockdev.writes dev)

let test_blockdev_sparse_zeroes () =
  let dev = Blockdev.create ~sectors:1024 in
  Alcotest.(check bytes) "untouched sector reads zero" (Bytes.make 512 '\000')
    (Blockdev.read_sector dev 1000)

let test_blockdev_range () =
  let dev = Blockdev.create ~sectors:64 in
  let data = Bytes.init 1500 (fun i -> Char.chr ((i * 7) mod 256)) in
  Blockdev.write_range dev ~sector:3 data;
  let got = Blockdev.read_range dev ~sector:3 ~count:3 in
  Alcotest.(check bytes) "range content" data (Bytes.sub got 0 1500);
  (* Partial-tail write preserves the rest of the sector. *)
  Blockdev.write_sector dev 10 (Bytes.make 512 'a');
  Blockdev.write_range dev ~sector:10 (Bytes.make 100 'b');
  let s = Blockdev.read_sector dev 10 in
  Alcotest.(check char) "head overwritten" 'b' (Bytes.get s 0);
  Alcotest.(check char) "tail preserved" 'a' (Bytes.get s 100)

let test_blockdev_bounds () =
  let dev = Blockdev.create ~sectors:8 in
  match Blockdev.read_sector dev 8 with
  | _ -> Alcotest.fail "out of range must raise"
  | exception Invalid_argument _ -> ()

let fresh_fat ?(mib = 16) () =
  Fat.format (Blockdev.create ~sectors:(mib * 1024 * 1024 / Blockdev.sector_size))

let test_fat_roundtrip () =
  let fs = fresh_fat () in
  let data = Bytes.init 10_000 (fun i -> Char.chr (i mod 253)) in
  Fat.write_file fs "/a.bin" data;
  Alcotest.(check bytes) "roundtrip" data (Fat.read_file fs "/a.bin");
  Alcotest.(check int) "size" 10_000 (Fat.file_size fs "/a.bin");
  Alcotest.(check int) "chain length" 3 (Fat.chain_length fs "/a.bin")

let test_fat_empty_file () =
  let fs = fresh_fat () in
  Fat.create_file fs "/empty";
  Alcotest.(check int) "empty size" 0 (Fat.file_size fs "/empty");
  Alcotest.(check bytes) "empty read" Bytes.empty (Fat.read_file fs "/empty");
  Alcotest.(check int) "no clusters" 0 (Fat.chain_length fs "/empty")

let test_fat_overwrite_frees () =
  let fs = fresh_fat () in
  let before = Fat.free_clusters fs in
  Fat.write_file fs "/f" (Bytes.make 40_000 'x');
  Fat.write_file fs "/f" (Bytes.make 4_000 'y');
  Alcotest.(check int) "only new clusters held" (before - 1) (Fat.free_clusters fs);
  Alcotest.(check bytes) "overwritten" (Bytes.make 4_000 'y') (Fat.read_file fs "/f")

let test_fat_delete_frees () =
  let fs = fresh_fat () in
  let before = Fat.free_clusters fs in
  Fat.write_file fs "/f" (Bytes.make 100_000 'x');
  Fat.delete fs "/f";
  Alcotest.(check int) "all clusters back" before (Fat.free_clusters fs);
  match Fat.read_file fs "/f" with
  | _ -> Alcotest.fail "deleted file must be gone"
  | exception Not_found -> ()

let test_fat_append () =
  let fs = fresh_fat () in
  Fat.write_file fs "/log" (Bytes.of_string "hello ");
  Fat.append_file fs "/log" (Bytes.of_string "world");
  Alcotest.(check bytes) "appended" (Bytes.of_string "hello world")
    (Fat.read_file fs "/log");
  Fat.append_file fs "/fresh" (Bytes.of_string "new");
  Alcotest.(check bytes) "append creates" (Bytes.of_string "new")
    (Fat.read_file fs "/fresh")

let test_fat_many_files () =
  let fs = fresh_fat () in
  for i = 0 to 49 do
    Fat.write_file fs (Printf.sprintf "/f%d" i) (Bytes.make (100 * (i + 1)) (Char.chr (65 + (i mod 26))))
  done;
  Alcotest.(check int) "listing" 50 (List.length (Fat.list_files fs));
  for i = 0 to 49 do
    let data = Fat.read_file fs (Printf.sprintf "/f%d" i) in
    Alcotest.(check int) (Printf.sprintf "size %d" i) (100 * (i + 1)) (Bytes.length data);
    Alcotest.(check char) "content" (Char.chr (65 + (i mod 26))) (Bytes.get data 0)
  done

let test_fat_read_slower_than_write () =
  (* Table 4: rust-fatfs reads at 362 MB/s but writes at 1562 MB/s. *)
  let fs = fresh_fat ~mib:64 () in
  let data = Bytes.make (Units.mib 32) 'd' in
  let wclock = Clock.create () in
  Fat.write_file fs ~clock:wclock "/big" data;
  let rclock = Clock.create () in
  ignore (Fat.read_file fs ~clock:rclock "/big");
  let w = Clock.now wclock and r = Clock.now rclock in
  Alcotest.(check bool) "read slower" true (Units.( > ) r w);
  let mbps t = float_of_int (Units.mib 32) /. Units.to_sec t /. 1e6 in
  Alcotest.(check bool) "read ~362 MB/s" true (mbps r > 330.0 && mbps r < 400.0);
  Alcotest.(check bool) "write ~1562 MB/s" true (mbps w > 1400.0 && mbps w < 1700.0)

let fat_roundtrip_property =
  QCheck.Test.make ~name:"fat: random writes read back exactly" ~count:80
    QCheck.(list_of_size (Gen.int_range 1 8) (pair (string_of_size (Gen.int_range 1 8)) (string_of_size (Gen.int_range 0 20_000))))
    (fun files ->
      let fs = fresh_fat () in
      (* Last write per name wins, like a real fs. *)
      List.iter (fun (name, data) -> Fat.write_file fs ("/" ^ name) (Bytes.of_string data)) files;
      let final = Hashtbl.create 8 in
      List.iter (fun (name, data) -> Hashtbl.replace final name data) files;
      Hashtbl.fold
        (fun name data acc ->
          acc && Bytes.to_string (Fat.read_file fs ("/" ^ name)) = data)
        final true)

let test_fat_directories () =
  let fs = fresh_fat () in
  Alcotest.(check bool) "root exists" true (Fat.is_dir fs "/");
  Fat.mkdir fs "/data";
  Fat.mkdir fs "/data/raw";
  Alcotest.(check bool) "nested dir" true (Fat.is_dir fs "/data/raw");
  Fat.write_file fs "/data/raw/a.bin" (Bytes.of_string "a");
  Fat.write_file fs "/data/b.bin" (Bytes.of_string "b");
  Alcotest.(check (list string)) "list /data" [ "b.bin"; "raw" ] (Fat.list_dir fs "/data");
  Alcotest.(check (list string)) "list /data/raw" [ "a.bin" ] (Fat.list_dir fs "/data/raw");
  (* mkdir without parent / duplicates *)
  (match Fat.mkdir fs "/no/parent" with
  | _ -> Alcotest.fail "missing parent must fail"
  | exception Not_found -> ());
  (match Fat.mkdir fs "/data" with
  | _ -> Alcotest.fail "duplicate must fail"
  | exception Invalid_argument _ -> ());
  (* rmdir semantics *)
  (match Fat.rmdir fs "/data" with
  | _ -> Alcotest.fail "non-empty rmdir must fail"
  | exception Invalid_argument _ -> ());
  Fat.delete fs "/data/raw/a.bin";
  Fat.rmdir fs "/data/raw";
  Alcotest.(check bool) "removed" false (Fat.is_dir fs "/data/raw");
  match Fat.rmdir fs "/" with
  | _ -> Alcotest.fail "cannot remove root"
  | exception Invalid_argument _ -> ()

let test_extfs_roundtrip () =
  let fs = Extfs.format (Blockdev.create ~sectors:65536) in
  let data = Bytes.init 50_000 (fun i -> Char.chr ((i * 3) mod 256)) in
  Extfs.write_file fs "/x" data;
  Alcotest.(check bytes) "roundtrip" data (Extfs.read_file fs "/x");
  Alcotest.(check int) "one extent when fresh" 1 (Extfs.extent_count fs "/x");
  Extfs.delete fs "/x";
  Alcotest.(check bool) "gone" false (Extfs.exists fs "/x")

let test_extfs_faster_read_than_fat () =
  let data = Bytes.make (Units.mib 8) 'e' in
  let fat = fresh_fat ~mib:32 () in
  Fat.write_file fat "/f" data;
  let ext = Extfs.format (Blockdev.create ~sectors:(Units.mib 32 / 512)) in
  Extfs.write_file ext "/f" data;
  let cf = Clock.create () and ce = Clock.create () in
  ignore (Fat.read_file fat ~clock:cf "/f");
  ignore (Extfs.read_file ext ~clock:ce "/f");
  Alcotest.(check bool) "ext4 reads faster" true
    (Units.( < ) (Clock.now ce) (Clock.now cf))

let test_extfs_fragmentation () =
  (* Fill the device completely, then punch two non-adjacent 64-sector
     holes: a 100-sector file must span both (two extents) and still
     read back intact. *)
  let fs = Extfs.format (Blockdev.create ~sectors:256) in
  Extfs.write_file fs "/a" (Bytes.make (64 * 512) 'a');
  Extfs.write_file fs "/b" (Bytes.make (64 * 512) 'b');
  Extfs.write_file fs "/c" (Bytes.make (64 * 512) 'c');
  Extfs.write_file fs "/d" (Bytes.make (64 * 512) 'd');
  Extfs.delete fs "/a";
  Extfs.delete fs "/c";
  let data = Bytes.make (100 * 512) 'e' in
  Extfs.write_file fs "/e" data;
  Alcotest.(check bytes) "fragmented roundtrip" data (Extfs.read_file fs "/e");
  Alcotest.(check bool) "multiple extents" true (Extfs.extent_count fs "/e" >= 2)

let test_ramfs_behaviour () =
  let fs = Ramfs.create () in
  Ramfs.write_file fs "/r" (Bytes.of_string "ram");
  Alcotest.(check bytes) "roundtrip" (Bytes.of_string "ram") (Ramfs.read_file fs "/r");
  let clock = Clock.create () in
  ignore (Ramfs.read_file fs ~clock "/r");
  Alcotest.(check bool) "fast but not free" true
    (Units.( > ) (Clock.now clock) Units.zero);
  Ramfs.delete fs "/r";
  Alcotest.(check (list string)) "empty" [] (Ramfs.list_files fs)

let test_vfs_uniform () =
  let backends = [ Vfs.fresh_fat ~mib:8 (); Vfs.fresh_extfs ~mib:8 (); Vfs.fresh_ramfs () ] in
  List.iter
    (fun (vfs : Vfs.t) ->
      let data = Bytes.of_string ("payload for " ^ vfs.Vfs.name) in
      vfs.Vfs.write_file "/p" data;
      Alcotest.(check bytes) (vfs.Vfs.name ^ " roundtrip") data (vfs.Vfs.read_file "/p");
      Alcotest.(check bool) (vfs.Vfs.name ^ " exists") true (vfs.Vfs.exists "/p");
      Alcotest.(check int) (vfs.Vfs.name ^ " size") (Bytes.length data) (vfs.Vfs.file_size "/p");
      vfs.Vfs.delete "/p";
      Alcotest.(check bool) (vfs.Vfs.name ^ " deleted") false (vfs.Vfs.exists "/p"))
    backends

let test_mem_free_tracker () =
  let t = Mem_free.create ~start:0 ~count:100 in
  let s1, c1 = Option.get (Mem_free.take t 30) in
  Alcotest.(check (pair int int)) "first take" (0, 30) (s1, c1);
  let s2, c2 = Option.get (Mem_free.take t 30) in
  Alcotest.(check (pair int int)) "second take" (30, 30) (s2, c2);
  Mem_free.give t ~start:0 ~count:30;
  Mem_free.give t ~start:30 ~count:30;
  Alcotest.(check int) "coalesced" 1 (Mem_free.hole_count t);
  Alcotest.(check int) "all back" 100 (Mem_free.free_sectors t);
  (* Oversized request splits across holes. *)
  let _ = Option.get (Mem_free.take t 100) in
  Alcotest.(check (option (pair int int))) "exhausted" None (Mem_free.take t 1)

let suite =
  [
    Alcotest.test_case "blockdev roundtrip" `Quick test_blockdev_roundtrip;
    Alcotest.test_case "blockdev sparse zeroes" `Quick test_blockdev_sparse_zeroes;
    Alcotest.test_case "blockdev ranges" `Quick test_blockdev_range;
    Alcotest.test_case "blockdev bounds" `Quick test_blockdev_bounds;
    Alcotest.test_case "fat roundtrip" `Quick test_fat_roundtrip;
    Alcotest.test_case "fat empty file" `Quick test_fat_empty_file;
    Alcotest.test_case "fat overwrite frees" `Quick test_fat_overwrite_frees;
    Alcotest.test_case "fat delete frees" `Quick test_fat_delete_frees;
    Alcotest.test_case "fat append" `Quick test_fat_append;
    Alcotest.test_case "fat many files" `Quick test_fat_many_files;
    Alcotest.test_case "fat Table-4 asymmetry" `Quick test_fat_read_slower_than_write;
    QCheck_alcotest.to_alcotest fat_roundtrip_property;
    Alcotest.test_case "fat directories" `Quick test_fat_directories;
    Alcotest.test_case "extfs roundtrip" `Quick test_extfs_roundtrip;
    Alcotest.test_case "extfs faster than fat" `Quick test_extfs_faster_read_than_fat;
    Alcotest.test_case "extfs fragmentation" `Quick test_extfs_fragmentation;
    Alcotest.test_case "ramfs behaviour" `Quick test_ramfs_behaviour;
    Alcotest.test_case "vfs uniform interface" `Quick test_vfs_uniform;
    Alcotest.test_case "sector free-space tracker" `Quick test_mem_free_tracker;
  ]
