(** Stage scheduler: list scheduling of parallel tasks on limited CPUs.

    AlloyStack's orchestrator runs a DAG stage's function instances as
    parallel Linux threads managed by CFS.  With [cores] CPUs and more
    runnable threads than cores, threads queue; the makespan of a stage
    is therefore the classic greedy list-scheduling result.  A small
    per-dispatch scheduling latency models the control-plane jitter that
    produces fan-in waiting in Fig. 15. *)

type placement = {
  core : int;
  start : Sim.Units.time;
  finish : Sim.Units.time;
}

val schedule :
  cores:int ->
  ?ready:Sim.Units.time ->
  ?dispatch_latency:Sim.Units.time ->
  Sim.Units.time list ->
  placement list
(** [schedule ~cores durations] places each task (in order) on the
    earliest-available core, no earlier than [ready].  The i-th
    placement corresponds to the i-th duration.  [dispatch_latency] is
    added before each task's start (sequential dispatch by the
    orchestrator). *)

val makespan : placement list -> Sim.Units.time
(** Latest finish time; zero for no placements. *)

val fan_in_wait : placement list -> Sim.Units.time list
(** For each task, how long it waits at the stage barrier for the
    slowest sibling: [makespan - finish_i]. *)

val same_core_pairs : placement list -> (int * int) list
(** Index pairs of consecutive tasks that landed on the same core —
    used by the locality model for reference-passing transfers. *)
