(** Process-global metrics registry.

    Unifies the three instrument kinds the simulator needs under one
    snapshotable registry:

    - {e counters} — the existing {!Stats.Counter} registry (monotonic
      event counts bumped on hot paths);
    - {e histograms} — value distributions with deterministic
      log2-bucketed bins plus exact percentiles from the retained
      samples (powered by {!Stats}, so repeated percentile queries cost
      one sort per batch of adds);
    - {e gauges} — last-value (or high-watermark) instruments.

    Everything is keyed by name and deterministic: two identically
    seeded runs produce identical snapshots, which is what lets CI diff
    exported metrics byte-for-byte.  JSON rendering lives in the core
    library ([Obs]) — this module only exposes the plain snapshot. *)

type histogram
type gauge

type registry
(** One set of histogram/gauge cells.  Handles are names, resolved in
    the {e current} registry (domain-local; the process default on the
    main domain) at every observation — that indirection lets
    [Par.with_shard] route a parallel task's observations into a
    private shard with no locks, and {!merge_into} fold them back at a
    deterministic join. *)

val create_registry : unit -> registry
val current : unit -> registry
val set_current : registry -> unit

val set_raw_sample_every : ?seed:int -> int -> unit
(** [set_raw_sample_every ~seed k] thins the {e raw-sample reservoir}
    of the current registry to 1-in-[k] (deterministic stride, phase
    [seed mod k]).  Bucket counts, counts, sums and min/max stay exact;
    only the retained samples backing percentile queries are thinned,
    so memory is O(count / k).  While [k > 1] every observation also
    feeds a {!Sketch.Tdigest}, and snapshot percentiles answer from
    that full-population sketch rather than the thinned reservoir.
    [k = 1] (the default) retains every sample, allocates no sketch,
    and is bit-identical to the unsampled registry.  Raises
    [Invalid_argument] when [k < 1]. *)

val raw_sample_every : unit -> int

val merge_into : registry -> unit
(** Fold a shard registry into the current one.  Histogram samples are
    re-observed in the shard's insertion order with series visited in
    sorted-name order, so the merged sample sequence depends only on
    the order of [merge_into] calls; gauges merge as high-watermarks.
    The destination's reservoir thinning (see {!set_raw_sample_every})
    applies to the merged samples. *)

val labels : string -> (string * string) list -> string
(** [labels name kvs] encodes a dimensional series name in the
    Prometheus style: [labels "serve.requests" [("endpoint", "thumb")]]
    is ["serve.requests{endpoint=\"thumb\"}"].  Keys are sorted and
    values escaped, so one label set always encodes to one name.
    Handles throughout this module (and {!Stats.Counter},
    {!Timeseries}) are names, so the result is directly usable as a
    per-label instrument. *)

val base_name : string -> string
(** The name with any [{...}] label block stripped — what exporters
    group dimensional series under. *)

val histogram : string -> histogram
(** Registered histogram for [name], created empty on first use.
    Repeated calls with the same name share one instrument. *)

val observe : histogram -> float -> unit
(** Negative values are clamped to 0 for bucketing (the exact sample
    is retained as given). *)

val observe_time : histogram -> Units.time -> unit
(** Records the duration in nanoseconds. *)

val histogram_count : histogram -> int
(** Exact observation count (never thinned). *)

val histogram_sum : histogram -> float
(** Exact sum (never thinned). *)

val bucket_index : float -> int
(** Bucket for a value: 0 holds values < 1; bucket [i >= 1] holds
    values in [[2^(i-1), 2^i)].  Computed on the integer part, so it is
    bit-deterministic across platforms. *)

val bucket_bound : int -> float
(** Upper bound (exclusive) of a bucket: [2^i]. *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val max_gauge : gauge -> float -> unit
(** High-watermark update: keeps the maximum of the current and given
    values. *)

val gauge_value : gauge -> float

(** {1 Snapshots} *)

type histo_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;  (** 0 when empty. *)
  hs_max : float;
  hs_p50 : float;
      (** Percentiles are exact (from the lossless reservoir) when no
          thinning is active; under thinning they come from the
          full-population t-digest sketch, falling back to the thinned
          reservoir or bucket bounds when no sketch exists. *)
  hs_p90 : float;
  hs_p99 : float;
  hs_buckets : (int * int) list;
      (** Non-empty buckets as [(index, count)], ascending index. *)
}

type snapshot = {
  snap_counters : (string * int) list;  (** Sorted by name. *)
  snap_gauges : (string * float) list;  (** Sorted by name. *)
  snap_histograms : histo_snapshot list;  (** Sorted by name. *)
}

val snapshot : unit -> snapshot
(** Snapshot of the whole registry, including every {!Stats.Counter}.
    Per-histogram snapshots are memoized until the next observation,
    merge or reset touches the cell, so repeated exporter calls over a
    quiet registry are O(series) — no percentile recomputation. *)

val reset : unit -> unit
(** Zeroes every histogram, gauge and {!Stats.Counter} (the instruments
    stay registered).  Call at run boundaries so exported snapshots are
    per-run. *)

val reset_registry : registry -> unit
(** Scrub [registry] in place for reuse as a fresh per-task shard:
    histogram cells are cleared but kept (their bucket arrays and
    reservoirs are reused), gauge cells are dropped, and the sampling
    configuration returns to the {!create_registry} default.  Merging
    a scrubbed registry is byte-identical to merging a fresh one. *)
