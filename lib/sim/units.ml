(* Durations are nanoseconds in a native [int].  The representation
   used to be [int64]; on a 64-bit host the native int still spans
   ±4.6e18 ns (~146 years of virtual time), and being immediate it
   never boxes — [Clock.advance]'s [t.now <- ...] and every
   [add]/[scale] in the hot path were one heap allocation each under
   the boxed representation, which dominated the serving allocation
   profile.  [to_ns] keeps its [int64] signature so observation points
   pay the one box at the edge. *)
type time = int

let zero = 0

let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000

let ns_f x = int_of_float (Float.round x)
let us_f x = ns_f (x *. 1e3)
let ms_f x = ns_f (x *. 1e6)

let to_ns t = Int64.of_int t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9

let add = ( + )

let sub a b = if a <= b then 0 else a - b

let diff a b = if a >= b then a - b else b - a

let scale t f = int_of_float (float_of_int t *. f)

let max (a : int) b = if a >= b then a else b
let min (a : int) b = if a <= b then a else b
let compare : int -> int -> int = Int.compare
let equal : int -> int -> bool = Int.equal

let ( + ) = add
let ( - ) = sub
let ( < ) (a : int) b = Stdlib.( < ) a b
let ( <= ) (a : int) b = Stdlib.( <= ) a b
let ( > ) (a : int) b = Stdlib.( > ) a b
let ( >= ) (a : int) b = Stdlib.( >= ) a b

let pp fmt t =
  let f = float_of_int t in
  if Stdlib.( < ) f 1e3 then Format.fprintf fmt "%.0fns" f
  else if Stdlib.( < ) f 1e6 then Format.fprintf fmt "%.2fus" (f /. 1e3)
  else if Stdlib.( < ) f 1e9 then Format.fprintf fmt "%.2fms" (f /. 1e6)
  else Format.fprintf fmt "%.3fs" (f /. 1e9)

let to_string t = Format.asprintf "%a" pp t

let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let pp_bytes fmt n =
  let f = float_of_int n in
  if Stdlib.( < ) f 1024. then Format.fprintf fmt "%dB" n
  else if Stdlib.( < ) f (1024. *. 1024.) then Format.fprintf fmt "%.0fKB" (f /. 1024.)
  else if Stdlib.( < ) f (1024. *. 1024. *. 1024.) then
    Format.fprintf fmt "%.0fMB" (f /. 1024. /. 1024.)
  else Format.fprintf fmt "%.2fGB" (f /. 1024. /. 1024. /. 1024.)

let bytes_to_string n = Format.asprintf "%a" pp_bytes n

let time_for_bytes ~bytes_per_sec n =
  if Stdlib.( <= ) n 0 then zero
  else ns_f (float_of_int n /. bytes_per_sec *. 1e9)

let gbit_per_sec g = g *. 1e9 /. 8.
let mb_per_sec m = m *. 1e6
