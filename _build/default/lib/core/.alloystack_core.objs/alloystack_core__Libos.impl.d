lib/core/libos.ml: Clock Cost Hashtbl Libos_fatfs Libos_fdtab Libos_mm Libos_mmap_backend Libos_socket Libos_stdio Libos_time List Printf Sim String Trace Units Wfd
