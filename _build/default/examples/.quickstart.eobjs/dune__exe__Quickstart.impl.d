examples/quickstart.ml: Alloystack_core Asbuffer Asstd Fndata Format Printf Sim String Visor Workflow
