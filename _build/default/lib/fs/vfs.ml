type t = {
  name : string;
  write_file : ?clock:Sim.Clock.t -> string -> bytes -> unit;
  read_file : ?clock:Sim.Clock.t -> string -> bytes;
  file_size : string -> int;
  exists : string -> bool;
  delete : string -> unit;
  list_files : unit -> string list;
}

let of_fat fs =
  {
    name = "fatfs";
    write_file = (fun ?clock path data -> Fat.write_file fs ?clock path data);
    read_file = (fun ?clock path -> Fat.read_file fs ?clock path);
    file_size = Fat.file_size fs;
    exists = Fat.exists fs;
    delete = Fat.delete fs;
    list_files = (fun () -> Fat.list_files fs);
  }

let of_extfs fs =
  {
    name = "extfs";
    write_file = (fun ?clock path data -> Extfs.write_file fs ?clock path data);
    read_file = (fun ?clock path -> Extfs.read_file fs ?clock path);
    file_size = Extfs.file_size fs;
    exists = Extfs.exists fs;
    delete = Extfs.delete fs;
    list_files = (fun () -> Extfs.list_files fs);
  }

let of_ramfs fs =
  {
    name = "ramfs";
    write_file = (fun ?clock path data -> Ramfs.write_file fs ?clock path data);
    read_file = (fun ?clock path -> Ramfs.read_file fs ?clock path);
    file_size = Ramfs.file_size fs;
    exists = Ramfs.exists fs;
    delete = Ramfs.delete fs;
    list_files = (fun () -> Ramfs.list_files fs);
  }

let sectors_of_mib mib = mib * 1024 * 1024 / Blockdev.sector_size

let fresh_fat ?(mib = 2048) () = of_fat (Fat.format (Blockdev.create ~sectors:(sectors_of_mib mib)))

let fresh_extfs ?(mib = 2048) () =
  of_extfs (Extfs.format (Blockdev.create ~sectors:(sectors_of_mib mib)))

let fresh_ramfs () = of_ramfs (Ramfs.create ())
