type t = {
  instance : int;
  total : int;
  read_input : string -> bytes;
  write_output : string -> bytes -> unit;
  send : slot:string -> bytes -> unit;
  recv : slot:string -> bytes;
  println : string -> unit;
  compute : Sim.Units.time -> unit;
  phase : string -> (unit -> unit) -> unit;
}

let phase_read = "read-input"
let phase_compute = "compute"
let phase_transfer = "transfer"

let compute_bytes t ~ns_per_byte n =
  t.compute (Sim.Units.ns_f (ns_per_byte *. float_of_int n))

type kernel = t -> unit

type app = {
  app_name : string;
  stages : (string * int * kernel) list;
  inputs : (string * bytes) list;
  validate : read_output:(string -> bytes option) -> (unit, string) result;
  modules : string list;
}
