lib/baselines/platform.mli: Fctx Sim Workloads
