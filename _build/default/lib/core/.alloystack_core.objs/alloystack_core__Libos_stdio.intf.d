lib/core/libos_stdio.mli: Sim Wfd
