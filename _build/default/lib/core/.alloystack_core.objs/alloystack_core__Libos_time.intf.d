lib/core/libos_time.mli: Sim Wfd
