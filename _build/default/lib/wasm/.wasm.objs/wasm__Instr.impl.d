lib/wasm/instr.ml: Format List
