lib/baselines/as_platform.mli: Alloystack_core Platform Wasm
