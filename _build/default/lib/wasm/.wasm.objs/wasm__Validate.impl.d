lib/wasm/validate.ml: Format Instr List String Wmodule
