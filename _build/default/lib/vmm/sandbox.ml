open Sim

type stage = { label : string; cost : Units.time }

type profile = {
  name : string;
  stages : stage list;
  mem_overhead : int;
  cpu_tax : float;
  syscall_via : Hostos.Syscall.interception;
}

let total p = List.fold_left (fun acc s -> Units.add acc s.cost) Units.zero p.stages

type boot_report = {
  profile_name : string;
  stage_times : (string * Units.time) list;
  total_time : Units.time;
}

let boot p clock =
  let stage_times =
    List.map
      (fun s ->
        Clock.advance clock s.cost;
        (s.label, s.cost))
      p.stages
  in
  { profile_name = p.name; stage_times; total_time = total p }

let pp_report fmt r =
  Format.fprintf fmt "@[<v2>%s boot: %a@," r.profile_name Units.pp r.total_time;
  List.iter
    (fun (label, t) -> Format.fprintf fmt "%-24s %a@," label Units.pp t)
    r.stage_times;
  Format.fprintf fmt "@]"
