lib/core/gateway.mli: Netsim Sim Visor Workflow
