open Sim

let profile =
  {
    Sandbox.name = "Virtines";
    stages =
      [
        { Sandbox.label = "KVM vm create"; cost = Units.ms_f 9.4 };
        { label = "context snapshot load"; cost = Units.ms_f 8.1 };
        { label = "vcpu start + entry"; cost = Units.ms_f 5.3 };
      ];
    mem_overhead = 4 * 1024 * 1024;
    cpu_tax = 0.03;
    syscall_via = Hostos.Syscall.Vmexit;
  }
