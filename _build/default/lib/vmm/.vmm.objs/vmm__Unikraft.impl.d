lib/vmm/unikraft.ml: Hostos Sandbox Sim Units
