open Sim
open Alloystack_core

(* Cold-start measurement of every single-function runtime of Fig. 10:
   the time from the trigger event to the first user instruction of the
   no-ops function. *)

type entry = { label : string; cold_start : Units.time }

let boot_time profile =
  let clock = Clock.create () in
  ignore (Vmm.Sandbox.boot profile clock);
  Clock.now clock

(* Wasmer deployed as a fresh process: process spawn, runtime engine
   init, module load/verify through the bytecode layer (the paper
   attributes the 342ms to the intermediate-bytecode machinery). *)
let wasmer_process = Units.ms 342
let wasmer_thread = Units.ms_f 7.6

let alloystack_cold () = Visor.cold_start_only ()

let alloystack_load_all () =
  let features = { Wfd.default_features with Wfd.on_demand = false } in
  Visor.cold_start_only
    ~config:{ Visor.default_config with Visor.features } ()

let alloystack_python () =
  let base = alloystack_cold () in
  Units.add base (Units.add Wasm.Runtime.wasmtime.Wasm.Runtime.startup Wasm.Runtime.cpython_init)

let faasm_cold = Units.add Faasm.faaslet_start (Units.us 160)

let faasm_python_cold = Units.add faasm_cold (Units.ms 2_350)

let figure10 () =
  [
    { label = "AS"; cold_start = alloystack_cold () };
    { label = "AS-load-all"; cold_start = alloystack_load_all () };
    { label = "Faastlane-T"; cold_start = Faastlane.thread_start };
    { label = "Wasmer-T"; cold_start = wasmer_thread };
    { label = "Wasmer"; cold_start = wasmer_process };
    { label = "Virtines"; cold_start = boot_time Vmm.Virtines.profile };
    { label = "Unikraft"; cold_start = boot_time Vmm.Unikraft.profile };
    { label = "gVisor"; cold_start = boot_time Vmm.Gvisor.profile };
    { label = "Kata"; cold_start = boot_time Vmm.Container.kata_firecracker };
    { label = "Faasm"; cold_start = faasm_cold };
    { label = "AS-Py"; cold_start = alloystack_python () };
    { label = "Faasm-Py"; cold_start = faasm_python_cold };
  ]
