lib/hostos/sched.mli: Sim
