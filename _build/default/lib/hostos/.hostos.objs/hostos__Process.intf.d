lib/hostos/process.mli: Sim
