lib/fs/extfs.ml: Blockdev Buffer Bytes Clock Hashtbl List Mem_free Sim Stdlib Units
