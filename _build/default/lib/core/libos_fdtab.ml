open Sim

type descriptor =
  | File of { path : string; mutable pos : int }
  | Stdout
  | Socket of { conn : Netsim.Tcp.t; at_client : bool }

type state = { fds : (int, descriptor) Hashtbl.t; mutable next_fd : int }

let key : state Ext.key = Ext.new_key "libos.fdtab"

let init (wfd : Wfd.t) ~clock =
  ignore clock;
  Ext.set wfd.Wfd.ext key { fds = Hashtbl.create 16; next_fd = 3 }

let state wfd = Ext.get_exn wfd.Wfd.ext key

let openf (wfd : Wfd.t) ~clock ~path ~create =
  let st = state wfd in
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Open);
  let register d =
    let fd = st.next_fd in
    st.next_fd <- fd + 1;
    Hashtbl.replace st.fds fd d;
    Ok fd
  in
  if String.equal path "/dev/stdout" then register Stdout
  else if Libos_fatfs.fatfs_exists wfd path then register (File { path; pos = 0 })
  else if create then begin
    match Libos_fatfs.fatfs_write wfd ~clock path Bytes.empty with
    | Ok _ -> register (File { path; pos = 0 })
    | Error e -> Error e
  end
  else Error Errno.Enoent

let register_socket (wfd : Wfd.t) ~clock ~conn ~at_client =
  let st = state wfd in
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Socket);
  let fd = st.next_fd in
  st.next_fd <- fd + 1;
  Hashtbl.replace st.fds fd (Socket { conn; at_client });
  fd

let find st fd =
  match Hashtbl.find_opt st.fds fd with
  | Some d -> Ok d
  | None -> Error Errno.Ebadf

let read (wfd : Wfd.t) ~clock ~fd ~len =
  let st = state wfd in
  match find st fd with
  | Error _ as e -> e
  | Ok Stdout -> Error Errno.Einval
  | Ok (Socket { conn; at_client }) ->
      Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Recvfrom);
      Ok (Netsim.Tcp.recv conn ~at_client len)
  | Ok (File f) -> begin
      match Libos_fatfs.fatfs_read wfd ~clock f.path with
      | Error _ as e -> e
      | Ok data ->
          let avail = Stdlib.max 0 (Bytes.length data - f.pos) in
          let n = Stdlib.min len avail in
          let out = Bytes.sub data f.pos n in
          f.pos <- f.pos + n;
          Ok out
    end

let write (wfd : Wfd.t) ~clock ~fd data =
  let st = state wfd in
  match find st fd with
  | Error e -> Error e
  | Ok Stdout -> Ok (Libos_stdio.host_stdout wfd ~clock data)
  | Ok (Socket { conn; at_client }) ->
      ignore clock;
      (* The TCP layer advances both endpoint clocks itself. *)
      Netsim.Tcp.send conn ~from_client:at_client data;
      Ok (Bytes.length data)
  | Ok (File f) -> begin
      match Libos_fatfs.fatfs_read wfd ~clock:(Clock.create ()) f.path with
      | Error _ as e -> e
      | Ok existing ->
          (* Splice at the descriptor position (rewrites the file — FAT
             has no in-place partial update). *)
          let head = Bytes.sub existing 0 (Stdlib.min f.pos (Bytes.length existing)) in
          let tail_start = f.pos + Bytes.length data in
          let tail =
            if tail_start < Bytes.length existing then
              Bytes.sub existing tail_start (Bytes.length existing - tail_start)
            else Bytes.empty
          in
          let combined = Bytes.concat Bytes.empty [ head; data; tail ] in
          (match Libos_fatfs.fatfs_write wfd ~clock f.path combined with
          | Error _ as e -> e
          | Ok _ ->
              f.pos <- f.pos + Bytes.length data;
              Ok (Bytes.length data))
    end

let close (wfd : Wfd.t) ~clock ~fd =
  let st = state wfd in
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Close);
  if Hashtbl.mem st.fds fd then begin
    Hashtbl.remove st.fds fd;
    Ok ()
  end
  else Error Errno.Ebadf

let lookup wfd fd = Hashtbl.find_opt (state wfd).fds fd

let open_count wfd = Hashtbl.length (state wfd).fds
