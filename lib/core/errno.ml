type t = Enoent | Eexist | Ebadf | Einval | Enomem | Enotconn | Enosys | Eio

let to_string = function
  | Enoent -> "ENOENT"
  | Eexist -> "EEXIST"
  | Ebadf -> "EBADF"
  | Einval -> "EINVAL"
  | Enomem -> "ENOMEM"
  | Enotconn -> "ENOTCONN"
  | Enosys -> "ENOSYS"
  | Eio -> "EIO"

let pp fmt e = Format.pp_print_string fmt (to_string e)

exception Error of t * string

let fail errno fmt = Format.kasprintf (fun s -> raise (Error (errno, s))) fmt
