(* Tests for the observability layer: span collection, the trace ring,
   metric histograms, the critical-path breakdown and the exporters. *)

open Sim
open Alloystack_core
open Baselines
open Workloads

let check_time = Alcotest.testable Units.pp Units.equal

(* Span tests run against a private collector so they cannot disturb
   the process-global one other suites share. *)
let collector () =
  let c = Span.create () in
  Span.set_enabled c true;
  c

(* --- span collection ---------------------------------------------- *)

let test_span_nesting () =
  let c = collector () in
  let root = Span.begin_span c ~at:Units.zero ~category:"workflow" ~label:"wf" () in
  let stage = Span.begin_span c ~parent:root ~at:(Units.us 1) ~category:"stage" ~label:"s0" () in
  let fn = Span.begin_span c ~parent:stage ~at:(Units.us 2) ~category:"function" ~label:"f" () in
  Span.end_span c fn ~at:(Units.us 8);
  Span.end_span c stage ~at:(Units.us 9);
  Span.end_span c root ~at:(Units.us 10);
  Alcotest.(check int) "dense ids from 1" 1 root;
  Alcotest.(check int) "three spans" 3 (Span.count c);
  let ids l = List.map (fun (sp : Span.span) -> sp.Span.sp_id) l in
  Alcotest.(check (list int)) "creation order" [ root; stage; fn ] (ids (Span.spans c));
  Alcotest.(check (list int)) "roots" [ root ] (ids (Span.roots c));
  Alcotest.(check (list int)) "children of root" [ stage ] (ids (Span.children c root));
  Alcotest.(check (list int)) "children of stage" [ fn ] (ids (Span.children c stage));
  let sp = Option.get (Span.find c fn) in
  Alcotest.(check int) "parent link" stage sp.Span.sp_parent;
  Alcotest.check check_time "begin" (Units.us 2) sp.Span.sp_begin;
  Alcotest.check check_time "end" (Units.us 8) sp.Span.sp_end

let test_span_end_clamp_and_attrs () =
  let c = collector () in
  let sp = Span.begin_span c ~at:(Units.us 5) ~category:"io" ~label:"x" () in
  Span.set_attr c sp "k" "v";
  Span.end_span c sp ~at:(Units.us 3);
  let span = Option.get (Span.find c sp) in
  Alcotest.check check_time "end clamped to begin" (Units.us 5) span.Span.sp_end;
  Alcotest.(check (list (pair string string))) "attrs" [ ("k", "v") ] span.Span.sp_attrs

let test_span_disabled () =
  let c = Span.create () in
  let sp = Span.begin_span c ~at:Units.zero ~category:"io" ~label:"x" () in
  Alcotest.(check int) "disabled returns none" Span.none sp;
  (* All operations on [none] must be no-ops, not crashes. *)
  Span.end_span c sp ~at:(Units.us 1);
  Span.set_attr c sp "k" "v";
  Span.instant c ~at:Units.zero ~category:"io" ~label:"i" ();
  Alcotest.(check int) "nothing collected" 0 (Span.count c)

let test_span_ambient () =
  let c = collector () in
  let parent = Span.begin_span c ~at:Units.zero ~category:"io" ~label:"p" () in
  Span.set_ambient c parent;
  (* No explicit parent: the ambient one is used (how the TCP stack
     attaches to the as-std socket span). *)
  let child = Span.begin_span c ~at:(Units.us 1) ~category:"network" ~label:"n" () in
  let sp = Option.get (Span.find c child) in
  Alcotest.(check int) "ambient parent" parent sp.Span.sp_parent;
  Span.clear c;
  Alcotest.(check int) "clear resets ambient" Span.none (Span.ambient c);
  Alcotest.(check int) "clear drops spans" 0 (Span.count c);
  let fresh = Span.begin_span c ~at:Units.zero ~category:"io" ~label:"x" () in
  Alcotest.(check int) "clear resets ids" 1 fresh

(* --- trace ring ---------------------------------------------------- *)

let test_trace_ring_wrap () =
  let t = Trace.create ~capacity:4 () in
  Trace.set_enabled t true;
  for i = 1 to 6 do
    Trace.record t ~at:(Units.us i) ~category:"c" ~label:"e" (string_of_int i)
  done;
  Alcotest.(check int) "retained" 4 (Trace.count t);
  Alcotest.(check int) "dropped" 2 (Trace.dropped t);
  Alcotest.(check (list string)) "oldest first, newest kept"
    [ "3"; "4"; "5"; "6" ]
    (List.map (fun (e : Trace.event) -> e.Trace.detail) (Trace.events t));
  Trace.clear t;
  Alcotest.(check int) "clear drops events" 0 (Trace.count t);
  Alcotest.(check int) "clear resets dropped" 0 (Trace.dropped t);
  Trace.record t ~at:Units.zero ~category:"c" ~label:"e" "7";
  Alcotest.(check int) "ring usable after clear" 1 (Trace.count t)

(* --- metric histograms -------------------------------------------- *)

let test_histogram_buckets () =
  (* Bucket 0 holds values < 1; bucket i >= 1 holds [2^(i-1), 2^i). *)
  Alcotest.(check int) "0 -> bucket 0" 0 (Metrics.bucket_index 0.0);
  Alcotest.(check int) "0.9 -> bucket 0" 0 (Metrics.bucket_index 0.9);
  Alcotest.(check int) "negative clamps to 0" 0 (Metrics.bucket_index (-5.0));
  Alcotest.(check int) "1 -> bucket 1" 1 (Metrics.bucket_index 1.0);
  Alcotest.(check int) "1.99 -> bucket 1" 1 (Metrics.bucket_index 1.99);
  Alcotest.(check int) "2 -> bucket 2" 2 (Metrics.bucket_index 2.0);
  Alcotest.(check int) "3 -> bucket 2" 2 (Metrics.bucket_index 3.0);
  Alcotest.(check int) "4 -> bucket 3" 3 (Metrics.bucket_index 4.0);
  Alcotest.(check int) "1023 -> bucket 10" 10 (Metrics.bucket_index 1023.0);
  Alcotest.(check int) "1024 -> bucket 11" 11 (Metrics.bucket_index 1024.0);
  Alcotest.(check (float 0.0)) "bound 0" 1.0 (Metrics.bucket_bound 0);
  Alcotest.(check (float 0.0)) "bound 10" 1024.0 (Metrics.bucket_bound 10)

let test_histogram_snapshot_and_reset () =
  Metrics.reset ();
  let h = Metrics.histogram "test.obs_histo" in
  List.iter (Metrics.observe h) [ 1.0; 3.0; 3.0; 100.0 ];
  let g = Metrics.gauge "test.obs_gauge" in
  Metrics.max_gauge g 2.0;
  Metrics.max_gauge g 7.0;
  Metrics.max_gauge g 3.0;
  Alcotest.(check (float 0.0)) "gauge high-watermark" 7.0 (Metrics.gauge_value g);
  let snap = Metrics.snapshot () in
  let hs =
    List.find
      (fun (s : Metrics.histo_snapshot) -> String.equal s.Metrics.hs_name "test.obs_histo")
      snap.Metrics.snap_histograms
  in
  Alcotest.(check int) "count" 4 hs.Metrics.hs_count;
  Alcotest.(check (float 0.0)) "sum" 107.0 hs.Metrics.hs_sum;
  Alcotest.(check (float 0.0)) "min" 1.0 hs.Metrics.hs_min;
  Alcotest.(check (float 0.0)) "max" 100.0 hs.Metrics.hs_max;
  (* 1 -> bucket 1; 3, 3 -> bucket 2; 100 -> bucket 7. *)
  Alcotest.(check (list (pair int int))) "non-empty buckets"
    [ (1, 1); (2, 2); (7, 1) ]
    hs.Metrics.hs_buckets;
  Alcotest.(check (float 0.0)) "gauge snapshotted" 7.0
    (List.assoc "test.obs_gauge" snap.Metrics.snap_gauges);
  Metrics.reset ();
  let snap = Metrics.snapshot () in
  let hs =
    List.find
      (fun (s : Metrics.histo_snapshot) -> String.equal s.Metrics.hs_name "test.obs_histo")
      snap.Metrics.snap_histograms
  in
  Alcotest.(check int) "reset zeroes count" 0 hs.Metrics.hs_count;
  Alcotest.(check (list (pair int int))) "reset zeroes buckets" [] hs.Metrics.hs_buckets

(* --- critical-path breakdown -------------------------------------- *)

(* Hand-built tree exercising every attribution rule:

     workflow  [0, 100]
       compute [10, 40]      (shadowed by io at the cursor: contributes 0)
       io      [30, 70]
         network [35, 50]

   Walking backwards from 100: io claims [30,70] (root keeps [70,100]
   and [0,30] -> "other"); inside io, network claims [35,50] (io keeps
   [50,70] and [30,35]); compute ends at 40 > cursor 30, shadowed. *)
let test_breakdown_synthetic () =
  let c = collector () in
  let us = Units.us in
  let root = Span.begin_span c ~at:Units.zero ~category:"workflow" ~label:"wf" () in
  let compute = Span.begin_span c ~parent:root ~at:(us 10) ~category:"compute" ~label:"f" () in
  Span.end_span c compute ~at:(us 40);
  let io = Span.begin_span c ~parent:root ~at:(us 30) ~category:"io" ~label:"read" () in
  let net = Span.begin_span c ~parent:io ~at:(us 35) ~category:"network" ~label:"stream" () in
  Span.end_span c net ~at:(us 50);
  Span.end_span c io ~at:(us 70);
  Span.end_span c root ~at:(us 100);
  let bd = Obs.breakdown ~collector:c ~root () in
  Alcotest.check check_time "total" (us 100) bd.Obs.bd_total;
  let bucket name = List.assoc name bd.Obs.bd_buckets in
  Alcotest.check check_time "io keeps its gaps" (us 25) (bucket "io");
  Alcotest.check check_time "network claimed" (us 15) (bucket "network");
  Alcotest.check check_time "shadowed compute contributes nothing" Units.zero
    (bucket "compute");
  Alcotest.check check_time "uncovered root time is other" (us 60) (bucket "other");
  let sum =
    List.fold_left (fun acc (_, d) -> Units.add acc d) Units.zero bd.Obs.bd_buckets
  in
  Alcotest.check check_time "buckets partition the root exactly" bd.Obs.bd_total sum

let with_global_spans f =
  Span.clear Span.global;
  Span.set_enabled Span.global true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled Span.global false;
      Span.clear Span.global)
    f

let test_breakdown_pipe_workflow () =
  with_global_spans (fun () ->
      let m =
        As_platform.alloystack.Platform.run (Pipe_app.app ~seed:7 ~size:(256 * 1024))
      in
      Platform.check_validated m;
      let root =
        match Obs.find_root ~category:"workflow" () with
        | Some sp -> sp
        | None -> Alcotest.fail "no workflow root span"
      in
      let bd = Obs.breakdown ~root:root.Span.sp_id () in
      let sum =
        List.fold_left (fun acc (_, d) -> Units.add acc d) Units.zero bd.Obs.bd_buckets
      in
      Alcotest.check check_time "buckets sum to e2e exactly" bd.Obs.bd_total sum;
      Alcotest.check check_time "root duration is the workflow e2e" m.Platform.e2e
        bd.Obs.bd_total;
      let positive name =
        Alcotest.(check bool)
          (name ^ " attributed")
          true
          (Units.( > ) (List.assoc name bd.Obs.bd_buckets) Units.zero)
      in
      (* A cold pipe run must pay module loads, boot and the data copy. *)
      positive "boot";
      positive "load-slow";
      positive "transfer")

(* --- exporters ----------------------------------------------------- *)

let golden_collector () =
  let c = collector () in
  let root = Span.begin_span c ~at:Units.zero ~category:"workflow" ~label:"wf" () in
  let child = Span.begin_span c ~parent:root ~at:(Units.us 1) ~category:"compute" ~label:"fn" () in
  Span.set_attr c child "k" "v";
  Span.end_span c child ~at:(Units.us 2);
  Span.end_span c root ~at:(Units.us 3);
  c

let test_trace_json_golden () =
  let expected =
    "{\"traceEvents\": [{\"name\": \"wf\", \"cat\": \"workflow\", \"ph\": \"X\", \
     \"ts\": 0, \"dur\": 3, \"pid\": 1, \"tid\": 1, \"args\": {\"span_id\": 1, \
     \"parent\": 0, \"ts_ns\": 0, \"dur_ns\": 3000}}, {\"name\": \"fn\", \"cat\": \
     \"compute\", \"ph\": \"X\", \"ts\": 1, \"dur\": 1, \"pid\": 1, \"tid\": 1, \
     \"args\": {\"span_id\": 2, \"parent\": 1, \"ts_ns\": 1000, \"dur_ns\": 1000, \
     \"k\": \"v\"}}], \"displayTimeUnit\": \"ns\"}"
  in
  Alcotest.(check string) "chrome trace document" expected
    (Obs.trace_json_string ~collector:(golden_collector ()) ())

let test_spans_jsonl_golden () =
  let expected =
    "{\"id\": 1, \"parent\": 0, \"category\": \"workflow\", \"label\": \"wf\", \
     \"begin_ns\": 0, \"end_ns\": 3000, \"attrs\": {}}\n\
     {\"id\": 2, \"parent\": 1, \"category\": \"compute\", \"label\": \"fn\", \
     \"begin_ns\": 1000, \"end_ns\": 2000, \"attrs\": {\"k\": \"v\"}}\n"
  in
  Alcotest.(check string) "jsonl span dump" expected
    (Obs.spans_jsonl ~collector:(golden_collector ()) ());
  Alcotest.(check string) "empty collector, empty dump" ""
    (Obs.spans_jsonl ~collector:(Span.create ()) ())

let test_exports_parse () =
  (* Exported documents must be valid JSON (our own parser accepts a
     strict subset, so this also guards against stray NaN/inf). *)
  let trace = Obs.trace_json_string ~collector:(golden_collector ()) () in
  (match Jsonlite.parse_result trace with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("trace JSON does not parse: " ^ e));
  Metrics.reset ();
  let h = Metrics.histogram "test.obs_parse" in
  Metrics.observe h 42.0;
  match Jsonlite.parse_result (Obs.metrics_json_string ()) with
  | Ok json ->
      let names =
        Jsonlite.member "histograms" json
        |> Jsonlite.get_list
        |> List.map (Jsonlite.member_string "name")
      in
      Alcotest.(check bool) "histogram exported" true
        (List.mem "test.obs_parse" names)
  | Error e -> Alcotest.fail ("metrics JSON does not parse: " ^ e)

let suite =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span end clamp + attrs" `Quick test_span_end_clamp_and_attrs;
    Alcotest.test_case "span disabled" `Quick test_span_disabled;
    Alcotest.test_case "span ambient + clear" `Quick test_span_ambient;
    Alcotest.test_case "trace ring wrap" `Quick test_trace_ring_wrap;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram snapshot + reset" `Quick test_histogram_snapshot_and_reset;
    Alcotest.test_case "breakdown synthetic" `Quick test_breakdown_synthetic;
    Alcotest.test_case "breakdown pipe workflow" `Quick test_breakdown_pipe_workflow;
    Alcotest.test_case "trace json golden" `Quick test_trace_json_golden;
    Alcotest.test_case "spans jsonl golden" `Quick test_spans_jsonl_golden;
    Alcotest.test_case "exports parse" `Quick test_exports_parse;
  ]
