lib/wasm/encode.mli: Buffer Wmodule
