(** Sandbox boot models.

    Each comparison system boots through an ordered list of named
    stages; the per-stage costs are calibrated to published numbers
    (Fig. 2 and Fig. 10 of the paper, plus the cited Firecracker,
    Unikraft, Virtines and gVisor papers).  Booting advances the caller's
    clock stage by stage and returns the per-stage breakdown, so benches
    can both report totals and attribute where time goes. *)

type stage = { label : string; cost : Sim.Units.time }

type profile = {
  name : string;
  stages : stage list;
  mem_overhead : int;
      (** Resident bytes the sandbox itself consumes (guest kernel,
          runtime, VMM) — drives Fig. 17b. *)
  cpu_tax : float;
      (** Fractional slowdown imposed on guest computation (e.g. nested
          paging overhead in a MicroVM, §8.6). *)
  syscall_via : Hostos.Syscall.interception;
      (** How workload syscalls reach the host kernel. *)
}

val total : profile -> Sim.Units.time

type boot_report = {
  profile_name : string;
  stage_times : (string * Sim.Units.time) list;
  total_time : Sim.Units.time;
}

val boot : profile -> Sim.Clock.t -> boot_report
(** Advance the clock through every stage. *)

val pp_report : Format.formatter -> boot_report -> unit
