lib/wasm/wmodule.ml: Instr List
