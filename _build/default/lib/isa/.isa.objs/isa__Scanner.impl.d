lib/isa/scanner.ml: Char Format Fun Hashtbl Image List String
