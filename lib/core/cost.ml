open Sim

(* --- MPK / trampoline --- *)

let wrpkru = Units.ns 30

(* Save registers, switch to the system stack, wrpkru, indirect jump. *)
let trampoline_switch = Units.ns (30 + 85)

(* Key grant/drop brackets per transfer, per side: a fixed wrpkru
   sequence plus a small per-byte term (permission re-checks along the
   chunked access).  Calibrated to Fig. 11: +33.7% at 4KB (~2.4us on a
   ~7us transfer) and +0.8% at 16MB (~7.5us on 951us). *)
let ifi_transfer_overhead len =
  Units.add (Units.ns 1_200) (Units.ns_f (0.000155 *. float_of_int len))

(* --- WFD cold start (Fig. 10) --- *)

let visor_dispatch = Units.us 78

(* dlmopen of the base as-std image (380us), heap mmap + pkey_mprotect
   of the partitions (300us), trampoline pages (100us), misc (92us). *)
let wfd_create = Units.us (380 + 300 + 100 + 92)

(* Stack mapping, TLS, entry-table wiring after clone(). *)
let function_thread_start = Units.us 122

let entry_table_init = Units.us 200

let image_scan_per_kb = Units.us 3

(* --- Warm serving (template WFD pool) --- *)

(* Cloning a warm template WFD: CoW-duplicate its page tables and pkey
   assignments and re-point the namespace list, instead of building the
   address space, allocating keys and binding as-std from scratch.
   Calibrated well under the 872us wfd_create + 200us entry-table init
   it substitutes for (a fork of a prepared process image). *)
let wfd_clone = Units.us 180

(* Re-attaching one already-linked as-libos module to a cloned WFD:
   the namespace and its relocations are shared CoW with the template;
   only the per-WFD module state is re-initialised. *)
let warm_module_attach = Units.us 15

(* Resuming an already-booted WASM engine (and CPython heap) captured
   in the template: the JIT code cache and interpreter state come along
   with the clone; only thread-local glue is rebuilt. *)
let warm_runtime_resume = Units.us 250

(* Admission-cache lookup by image content hash (skips the blacklist
   re-scan for a previously admitted image). *)
let admission_cache_hit = Units.us 2

(* --- as-libos module loading --- *)

let dlmopen_namespace = Units.us 380

(* Per-module load+init.  The sum (75.15ms), plus one dlmopen namespace
   per module (2.66ms), the full entry-table binding (8.6ms) and the
   modules' own constructors (FAT mount ~0.9ms, TAP+stack ~0.77ms)
   reproduces the 88.1ms "AS-load-all" delta of Fig. 10. *)
let module_costs =
  [
    (* The common small modules load fast; the networking stack and the
       userfaultfd machinery carry most of the load-all weight — which
       is exactly why on-demand loading pays off for workflows that use
       only 3-5 components (Table 1). *)
    ("mm", Units.us 3_200);
    ("fdtab", Units.us 2_400);
    ("fatfs", Units.us 4_300);
    ("socket", Units.us 43_500);
    ("stdio", Units.us 1_000);
    ("time", Units.us 700);
    ("mmap_file_backend", Units.us 20_050);
  ]

let module_load name =
  match List.assoc_opt name module_costs with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Cost.module_load: unknown module %s" name)

let load_all_binding = Units.us 8_600

(* --- Reference passing (Fig. 11) --- *)

let smart_pointer_overhead = Units.ns 4_400

(* 16MB written + 16MB read at bw + smart pointer = 951us  =>  bw such
   that 32MiB / bw = 946.6us  =>  35.4 GB/s (cache-warm streaming). *)
let buffer_copy_bw_rust = 35.4e9

(* C via wasm -O3: 697us per round trip => 48.1 GB/s effective. *)
let buffer_copy_bw_c = 48.1e9

(* CPython object/string path: 9631us per 16MB round trip => 3.48 GB/s. *)
let buffer_copy_bw_python = 3.48e9

let slot_map_op = Units.ns 350

(* --- File-based intermediate transfer (ref-passing disabled) --- *)

(* The AWS-recommended fallback stages intermediate data through files
   on persistent storage: each handoff pays an SSD write-back/sync on
   the producer side and a first-access penalty on the consumer side,
   on top of the filesystem bandwidth costs. *)
let file_fallback_sync = Units.ms 3
let file_fallback_read_penalty = Units.us 800

(* --- Generic memory --- *)

let memcpy_bw = 11.0e9

let page_fault_service = Units.ns 1_200
