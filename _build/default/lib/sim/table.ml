type row = Cells of string list | Separator

type t = { title : string; columns : string list; mutable rows : row list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad cells n = cells @ List.init (Stdlib.max 0 (n - List.length cells)) (fun _ -> "")

let render t =
  let ncols = List.length t.columns in
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.columns :: List.filter_map (function Cells c -> Some (pad c ncols) | Separator -> None) rows
  in
  let widths = Array.make ncols 0 in
  let record cells =
    List.iteri (fun i c -> if i < ncols then widths.(i) <- Stdlib.max widths.(i) (String.length c)) cells
  in
  List.iter record all_cell_rows;
  let buf = Buffer.create 1024 in
  let line ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let render_cells cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        if i < ncols then begin
          Buffer.add_char buf ' ';
          Buffer.add_string buf c;
          Buffer.add_string buf (String.make (widths.(i) - String.length c + 1) ' ');
          Buffer.add_char buf '|'
        end)
      (pad cells ncols);
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  line '-';
  render_cells t.columns;
  line '=';
  List.iter (function Cells c -> render_cells c | Separator -> line '-') rows;
  line '-';
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
