type opcode = Op_wrpkru | Op_syscall | Op_sysenter | Op_int

let pp_opcode fmt = function
  | Op_wrpkru -> Format.pp_print_string fmt "wrpkru"
  | Op_syscall -> Format.pp_print_string fmt "syscall"
  | Op_sysenter -> Format.pp_print_string fmt "sysenter"
  | Op_int -> Format.pp_print_string fmt "int"

type occurrence = { opcode : opcode; offset : int; aligned : bool }

(* Forbidden opcode patterns; [int] matches any cd xx pair. *)
let patterns =
  [ (Op_wrpkru, [ 0x0F; 0x01; 0xEF ]);
    (Op_syscall, [ 0x0F; 0x05 ]);
    (Op_sysenter, [ 0x0F; 0x34 ]);
    (Op_int, [ 0xCD ]) ]

let matches code off pat =
  let n = List.length pat in
  let fits =
    match pat with
    | [ 0xCD ] -> off + 2 <= String.length code (* int needs its imm8 *)
    | _ -> off + n <= String.length code
  in
  fits
  && List.for_all2
       (fun i b -> Char.code code.[off + i] = b)
       (List.init n Fun.id)
       pat

let scan_code code ~boundaries =
  let boundary_set = Hashtbl.create 64 in
  List.iter (fun b -> Hashtbl.replace boundary_set b ()) boundaries;
  let occs = ref [] in
  for off = 0 to String.length code - 1 do
    List.iter
      (fun (op, pat) ->
        if matches code off pat then
          occs := { opcode = op; offset = off; aligned = Hashtbl.mem boundary_set off } :: !occs)
      patterns
  done;
  List.sort (fun a b -> compare a.offset b.offset) !occs

let scan image = scan_code (Image.code image) ~boundaries:(Image.boundaries image)

type verdict =
  | Clean
  | Rewritable of occurrence list
  | Rejected of occurrence list

let verdict image =
  let occs = scan image in
  let intentional, accidental = List.partition (fun o -> o.aligned) occs in
  if intentional <> [] then Rejected intentional
  else if accidental <> [] then Rewritable accidental
  else Clean

let pp_verdict fmt = function
  | Clean -> Format.pp_print_string fmt "clean"
  | Rewritable occs ->
      Format.fprintf fmt "rewritable (%d unaligned occurrences)" (List.length occs)
  | Rejected occs ->
      Format.fprintf fmt "rejected (%d forbidden instructions)" (List.length occs)
