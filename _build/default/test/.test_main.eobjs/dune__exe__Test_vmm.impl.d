test/test_vmm.ml: Alcotest Clock Container Gvisor Hostos List Microvm Printf Sandbox Sim Unikraft Units Virtines Vmm
