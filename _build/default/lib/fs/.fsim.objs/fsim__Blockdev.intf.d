lib/fs/blockdev.mli:
