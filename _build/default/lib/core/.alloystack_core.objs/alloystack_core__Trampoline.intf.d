lib/core/trampoline.mli: Wfd
