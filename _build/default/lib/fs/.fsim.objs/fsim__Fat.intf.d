lib/fs/fat.mli: Blockdev Sim
