(** SONIC-style adaptive data passing (related work [47]) grafted onto
    AlloyStack's multi-node deployment.

    SONIC transparently selects the best data-passing method per DAG
    edge.  Here the choice per hop is: {e reference passing} when
    producer and consumer share a WFD (free beyond the traversal),
    otherwise {e network ship} vs {e shared-storage staging}, picked by
    the modelled cost of each for the payload size.  AlloyStack itself
    does not need this machinery on one node — reference passing always
    wins there, which the paper argues in §10 — so the selector only
    earns its keep across WFDs. *)

val make : nodes:int -> Platform.t
(** Like {!As_multinode.make}, but cross-WFD hops use the cheaper of
    direct network transfer and shared-storage staging per payload. *)

val network_cost : int -> Sim.Units.time
val storage_cost : int -> Sim.Units.time
(** Modelled one-hop costs (exposed for tests and the selector). *)

val pick : int -> [ `Network | `Storage ]
(** Selector decision for a payload size. *)
