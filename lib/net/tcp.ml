open Sim

type profile = {
  name : string;
  mss : int;
  window : int;
  tx_cost : Units.time;
  rx_cost : Units.time;
  handshake_extra : Units.time;
}

(* Calibration: per-segment CPU = MSS / throughput-from-Table-4.
   smoltcp: 1.751 Gbit/s RX -> 6.67us/seg; 5.366 Gbit/s TX -> 2.18us/seg.
   Linux:   27.76 Gbit/s RX -> 0.42us/seg; 28.56 Gbit/s TX -> 0.41us/seg. *)
let smoltcp =
  {
    name = "smoltcp";
    mss = 1460;
    window = 256 * 1024;
    tx_cost = Units.ns 2177;
    rx_cost = Units.ns 6671;
    handshake_extra = Units.us 22;
  }

let linux =
  {
    name = "linux";
    mss = 1460;
    window = 1024 * 1024;
    tx_cost = Units.ns 409;
    rx_cost = Units.ns 421;
    handshake_extra = Units.us 11;
  }

let guest_linux =
  (* Guest kernel inside a MicroVM: every segment crosses virtio, adding
     exit/notify amortised cost. *)
  {
    name = "guest-linux";
    mss = 1460;
    window = 512 * 1024;
    tx_cost = Units.ns (409 + 650);
    rx_cost = Units.ns (421 + 650);
    handshake_extra = Units.us 19;
  }

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait
  | Close_wait
  | Time_wait

let pp_state fmt s =
  let name =
    match s with
    | Closed -> "CLOSED"
    | Listen -> "LISTEN"
    | Syn_sent -> "SYN_SENT"
    | Syn_received -> "SYN_RECEIVED"
    | Established -> "ESTABLISHED"
    | Fin_wait -> "FIN_WAIT"
    | Close_wait -> "CLOSE_WAIT"
    | Time_wait -> "TIME_WAIT"
  in
  Format.pp_print_string fmt name

type t = {
  link : Link.t;
  client_profile : profile;
  server_profile : profile;
  client_clock : Clock.t;
  server_clock : Clock.t;
  mutable client_state : state;
  mutable server_state : state;
  c2s : Buffer.t;  (** Bytes delivered to the server. *)
  s2c : Buffer.t;  (** Bytes delivered to the client. *)
  mutable segments : int;
  fault : Fault.t option;
  mutable retransmits : int;
}

let connect ?fault ~client ~server ~link ~client_profile ~server_profile () =
  let t =
    {
      link;
      client_profile;
      server_profile;
      client_clock = client;
      server_clock = server;
      client_state = Closed;
      server_state = Listen;
      c2s = Buffer.create 256;
      s2c = Buffer.create 256;
      segments = 0;
      fault;
      retransmits = 0;
    }
  in
  (* Three-way handshake: SYN ->, <- SYN/ACK, ACK ->.  The connection is
     established on the client after one RTT and on the server after
     1.5 RTT (when the final ACK lands). *)
  let hs_begin = Clock.now client in
  t.client_state <- Syn_sent;
  let syn_arrive = Units.add (Clock.now client) t.link.Link.latency in
  Clock.advance_to server syn_arrive;
  Clock.advance server server_profile.handshake_extra;
  t.server_state <- Syn_received;
  let synack_arrive = Units.add (Clock.now server) t.link.Link.latency in
  Clock.advance_to client synack_arrive;
  Clock.advance client client_profile.handshake_extra;
  t.client_state <- Established;
  let ack_arrive = Units.add (Clock.now client) t.link.Link.latency in
  Clock.advance_to server ack_arrive;
  t.server_state <- Established;
  if Span.enabled (Span.current ()) then begin
    let sp =
      Span.begin_span (Span.current ()) ~at:hs_begin ~category:"network" ~label:"handshake" ()
    in
    Span.end_span (Span.current ()) sp ~at:(Clock.now client)
  end;
  t

let state t = (t.client_state, t.server_state)

let require_established t =
  if t.client_state <> Established || t.server_state <> Established then
    invalid_arg "Tcp: connection not established"

(* Retransmission timeout charged when an injected drop or corruption
   loses a burst: the sender's RTO fires, then the burst is resent. *)
let rto t = Units.max (Units.scale t.link.Link.latency 8.0) (Units.us 200)

(* One retransmission round per fired injection: the lost burst costs
   its wall time, an RTO wait, then the full resend.  A fired drop /
   corruption also opens a "retry" span under [parent] covering the RTO
   wait plus the resend, so retransmissions surface in the breakdown. *)
let fault_penalty t ~at ~burst_wall ~parent =
  match t.fault with
  | None -> Units.zero
  | Some plan ->
      let delay =
        if Fault.check ~at plan ~site:Fault.site_link_delay then
          Units.scale t.link.Link.latency 10.0
        else Units.zero
      in
      let dropped = Fault.check ~at plan ~site:Fault.site_link_tx in
      let corrupted = Fault.check ~at plan ~site:Fault.site_link_corrupt in
      if dropped || corrupted then begin
        t.retransmits <- t.retransmits + 1;
        let resend_at = Units.add at (Units.add burst_wall (rto t)) in
        Fault.record_recovery plan ~at:resend_at
          ~site:(if dropped then Fault.site_link_tx else Fault.site_link_corrupt)
          "retransmitted burst after RTO";
        if Span.enabled (Span.current ()) then begin
          let b = Units.add at (Units.add delay burst_wall) in
          let sp =
            Span.begin_span (Span.current ()) ~parent ~at:b ~category:"retry"
              ~label:"retransmit" ()
          in
          Span.end_span (Span.current ()) sp ~at:(Units.add b (Units.add (rto t) burst_wall))
        end;
        Units.add delay (Units.add (rto t) burst_wall)
      end
      else delay

let stream_histo = Metrics.histogram "net.stream_bytes"

(* Move [data] from [src_clock] to [dst_clock] in window-sized bursts.
   Each burst's wall time is the max of wire serialisation and the
   slower endpoint's per-segment CPU; window pacing adds one RTT of ack
   wait between bursts.  The whole stream is one "network" span hung
   off the ambient parent (the as-std socket span when driven through
   the libos, no parent when driven directly). *)
let stream t ~tx ~rx ~src_clock ~dst_clock ~sink data =
  let len = Bytes.length data in
  Metrics.observe stream_histo (float_of_int len);
  let g = (Span.current ()) in
  let sp =
    Span.begin_span g
      ~at:(Units.max (Clock.now src_clock) (Clock.now dst_clock))
      ~category:"network" ~label:"stream" ()
  in
  let mss = Stdlib.min tx.mss rx.mss in
  let window = Stdlib.min tx.window rx.window in
  let sent = ref 0 in
  while !sent < len do
    let burst = Stdlib.min window (len - !sent) in
    let segs = (burst + mss - 1) / mss in
    t.segments <- t.segments + segs;
    let cpu_tx = Units.scale tx.tx_cost (float_of_int segs) in
    let cpu_rx = Units.scale rx.rx_cost (float_of_int segs) in
    let wire =
      Units.add (Link.wire_time t.link burst)
        (Units.scale t.link.Link.per_packet (float_of_int segs))
    in
    let start = Units.max (Clock.now src_clock) (Clock.now dst_clock) in
    let burst_wall =
      let nominal = Units.max wire (Units.max cpu_tx cpu_rx) in
      Units.add nominal (fault_penalty t ~at:start ~burst_wall:nominal ~parent:sp)
    in
    let finish = Units.add start (Units.add burst_wall t.link.Link.latency) in
    Clock.advance_to src_clock (Units.add start burst_wall);
    Clock.advance_to dst_clock finish;
    (* Ack for window opening: sender waits a further RTT before the
       next burst (pipelining hides most of it for big windows). *)
    if !sent + burst < len then
      Clock.advance_to src_clock (Units.add finish t.link.Link.latency);
    Buffer.add_subbytes sink data !sent burst;
    sent := !sent + burst
  done;
  if sp <> Span.none then begin
    Span.set_attr g sp "bytes" (string_of_int len);
    Span.end_span g sp
      ~at:(Units.max (Clock.now src_clock) (Clock.now dst_clock))
  end

let send t ~from_client data =
  require_established t;
  if from_client then
    stream t ~tx:t.client_profile ~rx:t.server_profile ~src_clock:t.client_clock
      ~dst_clock:t.server_clock ~sink:t.c2s data
  else
    stream t ~tx:t.server_profile ~rx:t.client_profile ~src_clock:t.server_clock
      ~dst_clock:t.client_clock ~sink:t.s2c data

let take buf n =
  let have = Buffer.length buf in
  let take = Stdlib.min n have in
  let out = Bytes.of_string (Buffer.sub buf 0 take) in
  let rest = Buffer.sub buf take (have - take) in
  Buffer.clear buf;
  Buffer.add_string buf rest;
  out

let recv t ~at_client n = if at_client then take t.s2c n else take t.c2s n

let available t ~at_client =
  Buffer.length (if at_client then t.s2c else t.c2s)

let close t =
  (* FIN from client, ACK+FIN from server, final ACK. *)
  t.client_state <- Fin_wait;
  let fin_arrive = Units.add (Clock.now t.client_clock) t.link.Link.latency in
  Clock.advance_to t.server_clock fin_arrive;
  t.server_state <- Close_wait;
  let finack_arrive = Units.add (Clock.now t.server_clock) t.link.Link.latency in
  Clock.advance_to t.client_clock finack_arrive;
  t.client_state <- Time_wait;
  t.server_state <- Closed

let segments_sent t = t.segments

let retransmits t = t.retransmits

let throughput_estimate tx ~link ~rx =
  let mss = float_of_int (Stdlib.min tx.mss rx.mss) in
  let per_seg = Float.max 1e-12 (Units.to_sec (Units.max tx.tx_cost rx.rx_cost)) in
  let cpu_bound = mss /. per_seg in
  let wire_bound = link.Link.bandwidth in
  let window = float_of_int (Stdlib.min tx.window rx.window) in
  let rtt = Units.to_sec (Link.rtt link) in
  let window_bound = if rtt <= 0.0 then infinity else window /. rtt in
  Float.min (Float.min cpu_bound wire_bound) window_bound
