(* Quickstart: the paper's Fig. 8 demo, run through a real WFD.

   Function A creates an AsBuffer under the slot "Conference" and fills
   a typed record; function B acquires the same slot and reads the data
   zero-copy.  Run with:

     dune exec examples/quickstart.exe *)

open Alloystack_core

let conference_shape =
  Fndata.Record [ ("name", Fndata.Str ""); ("year", Fndata.Int 0L) ]

(* fn A: data sender. *)
let func_a (ctx : Asstd.ctx) ~instance:_ ~total:_ =
  let data =
    Fndata.Record [ ("name", Fndata.Str "Euro"); ("year", Fndata.Int 2025L) ]
  in
  ignore (Asbuffer.with_slot ctx ~slot:"Conference" data);
  Asstd.println ctx "func_a: buffer written"

(* fn B: data receiver. *)
let func_b (ctx : Asstd.ctx) ~instance:_ ~total:_ =
  let data = Asbuffer.from_slot ctx ~slot:"Conference" ~expect:conference_shape in
  let name =
    match Fndata.record_get data "name" with Fndata.Str s -> s | _ -> "?"
  in
  let year =
    match Fndata.record_get data "year" with Fndata.Int y -> y | _ -> 0L
  in
  Asstd.println ctx (Printf.sprintf "%sSys, %Ld" name year)

let () =
  let workflow =
    Workflow.create_exn ~name:"quickstart"
      ~nodes:
        [
          { Workflow.node_id = "func_a"; language = Workflow.Rust; instances = 1;
            required_modules = [ "mm"; "stdio" ] };
          { Workflow.node_id = "func_b"; language = Workflow.Rust; instances = 1;
            required_modules = [ "mm"; "stdio" ] };
        ]
      ~edges:[ ("func_a", "func_b") ]
  in
  let bindings = [ ("func_a", Visor.bind func_a); ("func_b", Visor.bind func_b) ] in
  let report = Visor.run ~workflow ~bindings () in
  print_string report.Visor.stdout;
  Format.printf "cold start: %a  end-to-end: %a@."
    Sim.Units.pp report.Visor.cold_start Sim.Units.pp report.Visor.e2e;
  Format.printf "as-libos modules loaded on demand: %s@."
    (String.concat ", " report.Visor.loaded_modules);
  Format.printf "entry table: %d miss(es), %d fast hit(s)@."
    report.Visor.entry_misses report.Visor.entry_hits
