examples/online_compiling.mli:
