lib/core/jsonlite.ml: Buffer Format List Printf String
