lib/workloads/datagen.mli:
