lib/core/wfd.ml: Address_space Alloc Buffer Clock Cost Ext Fsim Hashtbl Hostos Layout Mem Page Prot Sim
