(* Windowed virtual-time series: fixed-width windows in a ring with
   bounded retention.  Handles are names, like [Metrics] — the cell
   lives in the timeseries, so shards are whole [t] values merged with
   [merge_into] at deterministic join points.

   Every ring slot is addressed [w mod retention]; a slot is live for
   window [w] only while [w] is within the series' own advance range
   [s_last - retention + 1 .. s_last].  Advancing a series zeroes the
   slots its new windows reuse, so idle gaps read back as genuinely
   empty windows rather than stale wrapped data. *)

type scalar_kind = Counter | Gauge

type scalar = {
  sc_kind : scalar_kind;
  sc_ring : float array;
  mutable sc_last : int;  (* highest window written; -1 when empty *)
}

type dwin = {
  mutable dw_count : int;
  mutable dw_sum : float;
  mutable dw_digest : Sketch.Tdigest.t option;  (* lazy per window *)
}

type dseries = {
  ds_ring : dwin array;
  mutable ds_last : int;
}

type t = {
  t_width : Units.time;
  t_retention : int;
  mutable t_last : int;  (* highest window touched anywhere; -1 empty *)
  mutable t_dropped : int;
  t_scalars : (string, scalar) Hashtbl.t;
  t_dists : (string, dseries) Hashtbl.t;
}

type series = string
type dist = string

let create ?(width = Units.sec 1) ?(retention = 4096) () =
  if Units.equal width Units.zero then
    invalid_arg "Timeseries.create: zero window width";
  if retention < 1 then invalid_arg "Timeseries.create: retention < 1";
  {
    t_width = width;
    t_retention = retention;
    t_last = -1;
    t_dropped = 0;
    t_scalars = Hashtbl.create 16;
    t_dists = Hashtbl.create 16;
  }

let width t = t.t_width
let retention t = t.t_retention
let last_window t = t.t_last
let first_window t = if t.t_last < 0 then 0 else Stdlib.max 0 (t.t_last - t.t_retention + 1)
let dropped t = t.t_dropped

let window_of t at = Int64.to_int (Int64.div (Units.to_ns at) (Units.to_ns t.t_width))
let window_start t w = Units.ns_f (Int64.to_float (Int64.mul (Int64.of_int w) (Units.to_ns t.t_width)))

let scalar_cell t kind name =
  if Hashtbl.mem t.t_dists name then
    invalid_arg ("Timeseries: " ^ name ^ " is already a dist series");
  match Hashtbl.find_opt t.t_scalars name with
  | Some s ->
      if s.sc_kind <> kind then
        invalid_arg ("Timeseries: " ^ name ^ " registered with another kind");
      s
  | None ->
      let s = { sc_kind = kind; sc_ring = Array.make t.t_retention 0.0; sc_last = -1 } in
      Hashtbl.replace t.t_scalars name s;
      s

let counter t name =
  ignore (scalar_cell t Counter name);
  name

let gauge t name =
  ignore (scalar_cell t Gauge name);
  name

let dist t name =
  if Hashtbl.mem t.t_scalars name then
    invalid_arg ("Timeseries: " ^ name ^ " is already a scalar series");
  (if not (Hashtbl.mem t.t_dists name) then
     let ds =
       {
         ds_ring =
           Array.init t.t_retention (fun _ ->
               { dw_count = 0; dw_sum = 0.0; dw_digest = None });
         ds_last = -1;
       }
     in
     Hashtbl.replace t.t_dists name ds);
  name

let touch t w = if w > t.t_last then t.t_last <- w

(* Advance a scalar ring so window [w] is addressable, zeroing every
   slot that changes owner.  O(windows skipped), capped at one full
   ring sweep however long the idle gap was. *)
let advance_scalar t (s : scalar) w =
  if w > s.sc_last then begin
    let from = Stdlib.max (s.sc_last + 1) (w - t.t_retention + 1) in
    for i = from to w do
      s.sc_ring.(i mod t.t_retention) <- 0.0
    done;
    s.sc_last <- w
  end

let reset_dwin dw =
  dw.dw_count <- 0;
  dw.dw_sum <- 0.0;
  match dw.dw_digest with Some d -> Sketch.Tdigest.clear d | None -> ()

let advance_dist t (ds : dseries) w =
  if w > ds.ds_last then begin
    let from = Stdlib.max (ds.ds_last + 1) (w - t.t_retention + 1) in
    for i = from to w do
      reset_dwin ds.ds_ring.(i mod t.t_retention)
    done;
    ds.ds_last <- w
  end

(* A window is writable when it has not yet fallen behind the global
   retention horizon; older observations are counted, not recorded. *)
let writable t w =
  touch t w;
  if w < first_window t then begin
    t.t_dropped <- t.t_dropped + 1;
    false
  end
  else true

let add t series ~at v =
  let s = Hashtbl.find t.t_scalars series in
  let w = window_of t at in
  if writable t w then begin
    advance_scalar t s w;
    let slot = w mod t.t_retention in
    match s.sc_kind with
    | Counter -> s.sc_ring.(slot) <- s.sc_ring.(slot) +. v
    | Gauge -> if v > s.sc_ring.(slot) then s.sc_ring.(slot) <- v
  end

let dist_cell t dist w =
  let ds = Hashtbl.find t.t_dists dist in
  advance_dist t ds w;
  ds.ds_ring.(w mod t.t_retention)

let observe t dist ~at v =
  let w = window_of t at in
  if writable t w then begin
    let dw = dist_cell t dist w in
    dw.dw_count <- dw.dw_count + 1;
    dw.dw_sum <- dw.dw_sum +. v;
    let d =
      match dw.dw_digest with
      | Some d -> d
      | None ->
          let d = Sketch.Tdigest.create () in
          dw.dw_digest <- Some d;
          d
    in
    Sketch.Tdigest.add d v
  end

(* Reads: a slot answers for [w] only if the series has advanced to or
   past it and it has not wrapped out of the series' own range; and
   never for windows behind the global horizon. *)
let scalar_live t (s : scalar) w =
  w >= 0 && w <= s.sc_last && w > s.sc_last - t.t_retention && w >= first_window t

let dist_live t (ds : dseries) w =
  w >= 0 && w <= ds.ds_last && w > ds.ds_last - t.t_retention && w >= first_window t

let value t series w =
  let s = Hashtbl.find t.t_scalars series in
  if scalar_live t s w then s.sc_ring.(w mod t.t_retention) else 0.0

let dist_cell_ro t dist w =
  let ds = Hashtbl.find t.t_dists dist in
  if dist_live t ds w then Some ds.ds_ring.(w mod t.t_retention) else None

let dist_count t d w = match dist_cell_ro t d w with Some dw -> dw.dw_count | None -> 0
let dist_sum t d w = match dist_cell_ro t d w with Some dw -> dw.dw_sum | None -> 0.0

let dist_percentile t d w p =
  match dist_cell_ro t d w with
  | Some { dw_count; dw_digest = Some dg; _ } when dw_count > 0 ->
      Sketch.Tdigest.percentile dg p
  | _ -> 0.0

let names t =
  let acc = Hashtbl.fold (fun n _ acc -> n :: acc) t.t_scalars [] in
  let acc = Hashtbl.fold (fun n _ acc -> n :: acc) t.t_dists acc in
  List.sort String.compare acc

let merge_into ~src ~dst =
  if not (Units.equal src.t_width dst.t_width) then
    invalid_arg "Timeseries.merge_into: window widths differ";
  (* Align the destination's window range first so an all-empty shard
     still advances it — merged output covers the same windows a direct
     observer would have seen. *)
  if src.t_last > dst.t_last then touch dst src.t_last;
  let lo = first_window src and hi = src.t_last in
  List.iter
    (fun name ->
      match Hashtbl.find_opt src.t_scalars name with
      | Some s ->
          let cell = scalar_cell dst s.sc_kind name in
          for w = lo to hi do
            if scalar_live src s w then begin
              let v = s.sc_ring.(w mod src.t_retention) in
              if v <> 0.0 then
                if writable dst w then begin
                  advance_scalar dst cell w;
                  let slot = w mod dst.t_retention in
                  match s.sc_kind with
                  | Counter -> cell.sc_ring.(slot) <- cell.sc_ring.(slot) +. v
                  | Gauge ->
                      if v > cell.sc_ring.(slot) then cell.sc_ring.(slot) <- v
                end
            end
          done
      | None ->
          let ds = Hashtbl.find src.t_dists name in
          let dname = dist dst name in
          for w = lo to hi do
            if dist_live src ds w then begin
              let dw = ds.ds_ring.(w mod src.t_retention) in
              if dw.dw_count > 0 then
                if writable dst w then begin
                  let cell = dist_cell dst dname w in
                  cell.dw_count <- cell.dw_count + dw.dw_count;
                  cell.dw_sum <- cell.dw_sum +. dw.dw_sum;
                  match dw.dw_digest with
                  | None -> ()
                  | Some sd ->
                      let dd =
                        match cell.dw_digest with
                        | Some d -> d
                        | None ->
                            let d = Sketch.Tdigest.create () in
                            cell.dw_digest <- Some d;
                            d
                      in
                      Sketch.Tdigest.merge_into ~src:sd ~dst:dd
                end
            end
          done)
    (names src);
  dst.t_dropped <- dst.t_dropped + src.t_dropped

(* Fixed-point float rendering: six decimals, trailing zeros trimmed
   to one.  Unlike %g this never switches to scientific notation, so
   equal doubles render identically on every host. *)
let fmt_float v =
  let s = Printf.sprintf "%.6f" v in
  let n = String.length s in
  let last = ref (n - 1) in
  while !last > 0 && s.[!last] = '0' && s.[!last - 1] <> '.' do
    decr last
  done;
  String.sub s 0 (!last + 1)

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "name,kind,window,start_s,value,count,sum,p50,p99\n";
  if t.t_last >= 0 then begin
    let lo = first_window t and hi = t.t_last in
    List.iter
      (fun name ->
        match Hashtbl.find_opt t.t_scalars name with
        | Some s ->
            let kind = match s.sc_kind with Counter -> "counter" | Gauge -> "gauge" in
            for w = lo to hi do
              Buffer.add_string buf
                (Printf.sprintf "%s,%s,%d,%s,%s,,,,\n" name kind w
                   (fmt_float (Units.to_sec (window_start t w)))
                   (fmt_float (value t name w)))
            done
        | None ->
            for w = lo to hi do
              let count = dist_count t name w in
              let p pct = if count = 0 then "0" else fmt_float (dist_percentile t name w pct) in
              Buffer.add_string buf
                (Printf.sprintf "%s,dist,%d,%s,,%d,%s,%s,%s\n" name w
                   (fmt_float (Units.to_sec (window_start t w)))
                   count
                   (fmt_float (dist_sum t name w))
                   (p 50.0) (p 99.0))
            done)
      (names t)
  end;
  Buffer.contents buf

let clear t =
  Hashtbl.iter
    (fun _ s ->
      Array.fill s.sc_ring 0 (Array.length s.sc_ring) 0.0;
      s.sc_last <- -1)
    t.t_scalars;
  Hashtbl.iter
    (fun _ ds ->
      Array.iter reset_dwin ds.ds_ring;
      ds.ds_last <- -1)
    t.t_dists;
  t.t_last <- -1;
  t.t_dropped <- 0
