open Sim

type extent = { start : int; count : int }  (** In sectors. *)

type inode = { mutable extents : extent list; mutable size : int }

type t = {
  dev : Blockdev.t;
  files : (string, inode) Hashtbl.t;
  free : Mem_free.t;
}

(* Calibration (Table 4): read 1351 MB/s -> 3.03us per 4KiB; write
   1282 MB/s -> 3.19us per 4KiB.  Extent lookup is charged per extent
   and is negligible for sequential files. *)
let read_bw = 1.351e9
let write_bw = 1.282e9
let per_extent_overhead = Units.ns 2300

let charge clock cost = match clock with Some c -> Clock.advance c cost | None -> ()

let format dev =
  {
    dev;
    files = Hashtbl.create 64;
    free = Mem_free.create ~start:0 ~count:(Blockdev.sectors dev);
  }

let sectors_for len = (len + Blockdev.sector_size - 1) / Blockdev.sector_size

let alloc_extents t nsectors =
  let rec go remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      match Mem_free.take t.free remaining with
      | None -> failwith "Extfs: device full"
      | Some (start, count) -> go (remaining - count) ({ start; count } :: acc)
    end
  in
  go nsectors []

let free_extents t inode =
  List.iter (fun e -> Mem_free.give t.free ~start:e.start ~count:e.count) inode.extents;
  inode.extents <- []

let write_file t ?clock path data =
  (match Hashtbl.find_opt t.files path with
  | Some inode -> free_extents t inode
  | None -> Hashtbl.replace t.files path { extents = []; size = 0 });
  let inode = Hashtbl.find t.files path in
  let nsectors = sectors_for (Bytes.length data) in
  let extents = alloc_extents t nsectors in
  let off = ref 0 in
  List.iter
    (fun e ->
      let len = Stdlib.min (e.count * Blockdev.sector_size) (Bytes.length data - !off) in
      let chunk = Bytes.make (e.count * Blockdev.sector_size) '\000' in
      Bytes.blit data !off chunk 0 len;
      Blockdev.write_range t.dev ~sector:e.start chunk;
      off := !off + len)
    extents;
  inode.extents <- extents;
  inode.size <- Bytes.length data;
  charge clock
    (Units.add
       (Units.scale per_extent_overhead (float_of_int (List.length extents)))
       (Units.time_for_bytes ~bytes_per_sec:write_bw (Bytes.length data)))

let find t path =
  match Hashtbl.find_opt t.files path with Some i -> i | None -> raise Not_found

let read_file t ?clock path =
  let inode = find t path in
  let buf = Buffer.create inode.size in
  List.iter
    (fun e -> Buffer.add_bytes buf (Blockdev.read_range t.dev ~sector:e.start ~count:e.count))
    inode.extents;
  charge clock
    (Units.add
       (Units.scale per_extent_overhead (float_of_int (List.length inode.extents)))
       (Units.time_for_bytes ~bytes_per_sec:read_bw inode.size));
  Bytes.sub (Buffer.to_bytes buf) 0 inode.size

let file_size t path = (find t path).size

let exists t path = Hashtbl.mem t.files path

let delete t path =
  let inode = find t path in
  free_extents t inode;
  Hashtbl.remove t.files path

let list_files t = Hashtbl.fold (fun k _ acc -> k :: acc) t.files [] |> List.sort compare

let extent_count t path = List.length (find t path).extents
