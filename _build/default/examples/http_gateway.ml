(* The gateway path end to end: a workflow declared in JSON, registered
   on the gateway, and triggered through the watchdog's HTTP surface —
   exactly the deployment flow of Fig. 4.

     dune exec examples/http_gateway.exe *)

open Alloystack_core

let config_json =
  {| {
       "workflow": "greeter",
       "functions": [
         { "name": "make",  "modules": ["mm", "stdio"] },
         { "name": "greet", "modules": ["mm", "stdio"], "instances": 2 }
       ],
       "edges": [ { "from": "make", "to": "greet" } ]
     } |}

let make_kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ =
  (* Fan-out: one buffer per downstream instance. *)
  ignore (Asbuffer.with_slot_raw ctx ~slot:"name.0" (Bytes.of_string "Rotterdam"));
  ignore (Asbuffer.with_slot_raw ctx ~slot:"name.1" (Bytes.of_string "EuroSys"))

let greet_kernel (ctx : Asstd.ctx) ~instance ~total:_ =
  let name = Asbuffer.from_slot_raw ctx ~slot:(Printf.sprintf "name.%d" instance) in
  Asstd.println ctx (Printf.sprintf "hello, %s!" (Bytes.to_string name))

let () =
  let gateway =
    Gateway.create
      ~nodes:
        [ { Gateway.node_name = "node0"; cores = 64 };
          { Gateway.node_name = "node1"; cores = 64 } ]
      ()
  in
  (match
     Gateway.register_json gateway ~endpoint:"greeter" ~config_json
       ~bindings:[ ("make", Visor.bind make_kernel); ("greet", Visor.bind greet_kernel) ]
       ()
   with
  | Ok () -> ()
  | Error e -> failwith e);
  (* Trigger twice over HTTP: the gateway load-balances across nodes. *)
  for i = 1 to 2 do
    let request = Netsim.Http.request ~meth:"POST" ~path:"/wf/greeter" () in
    let response = Gateway.handle_http gateway request in
    Format.printf "invocation %d -> HTTP %d on %s@." i response.Netsim.Http.status
      (Option.value ~default:"?" (Gateway.last_node gateway));
    print_string ("  " ^ String.concat "\n  "
      (String.split_on_char '\n' response.Netsim.Http.resp_body));
    print_newline ()
  done;
  let health = Gateway.handle_http gateway (Netsim.Http.request ~meth:"GET" ~path:"/healthz" ()) in
  Format.printf "healthz: %d %s@." health.Netsim.Http.status health.Netsim.Http.resp_body
