(** online-compiling (Table 1): the most demanding ServerlessBench
    function, realised for real with the WASM pipeline.

    A three-function workflow: [fetch] stages the binary-encoded WASM
    module as intermediate data; [compile] decodes it, validates it and
    AOT-compiles it under the Wasmtime profile (checking the lowered
    image against the blacklist scanner — §6's admission for WASM);
    [execute] runs the compiled entry point and publishes the result.

    The module that flows through the pipeline really is bytecode: the
    default program computes sum(1..n) in a loop. *)

val app : ?n:int -> seed:int -> unit -> Fctx.app
(** [n] is the argument to the compiled function (default 50_000);
    [validate] checks the executed result equals n*(n+1)/2. *)

val result_path : string
