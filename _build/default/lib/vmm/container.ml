open Sim

let mib n = n * 1024 * 1024

let runc =
  {
    Sandbox.name = "Container";
    stages =
      [
        { Sandbox.label = "containerd dispatch"; cost = Units.ms 102 };
        { label = "cgroup + netns setup"; cost = Units.ms 188 };
        { label = "runc create/start"; cost = Units.ms 154 };
        { label = "of-watchdog + runtime"; cost = Units.ms 118 };
      ];
    mem_overhead = mib 24;
    cpu_tax = 0.0;
    syscall_via = Hostos.Syscall.Direct;
  }

let kata_firecracker =
  {
    Sandbox.name = "Kata";
    stages =
      [
        { Sandbox.label = "containerd + kata shim"; cost = Units.ms 121 };
        { label = "firecracker spawn"; cost = Units.ms 33 };
        { label = "guest kernel boot"; cost = Units.ms 142 };
        { label = "kata-agent + rootfs"; cost = Units.ms 287 };
        { label = "container runtime"; cost = Units.ms 131 };
      ];
    mem_overhead = mib 142;
    cpu_tax = 0.05;
    syscall_via = Hostos.Syscall.Vmexit;
  }
