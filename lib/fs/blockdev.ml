let sector_size = 512

(* Sparse storage: only written sectors are materialised, so large
   virtual disks (the 2 GiB default images) cost memory proportional to
   live data, the way a sparse qcow/raw file does on a host. *)
type t = {
  store : (int, Bytes.t) Hashtbl.t;
  nsectors : int;
  mutable reads : int;
  mutable writes : int;
}

let create ~sectors =
  if sectors <= 0 then invalid_arg "Blockdev.create: sectors must be positive";
  (* Modest initial capacity: scratch devices are created (and [reset])
     once per request on the serving path, so the empty table — and the
     bucket array [reset] reallocates — should be small; the table
     grows on demand for write-heavy workloads. *)
  { store = Hashtbl.create 128; nsectors = sectors; reads = 0; writes = 0 }

let sectors t = t.nsectors
let size_bytes t = t.nsectors * sector_size

(* Back to the all-zero image of a fresh [create] (same geometry),
   reusing the sector store's arena — the serving recycling path resets
   a scratch device per request instead of allocating one. *)
let reset t =
  Hashtbl.reset t.store;
  t.reads <- 0;
  t.writes <- 0

let check t sector =
  if sector < 0 || sector >= t.nsectors then
    invalid_arg (Printf.sprintf "Blockdev: sector %d out of range" sector)

let sector_data t sector =
  match Hashtbl.find_opt t.store sector with
  | Some b -> b
  | None -> Bytes.make sector_size '\000'

let read_sector t sector =
  check t sector;
  t.reads <- t.reads + 1;
  Bytes.copy (sector_data t sector)

let write_sector t sector b =
  check t sector;
  t.writes <- t.writes + 1;
  let stored =
    match Hashtbl.find_opt t.store sector with
    | Some existing -> existing
    | None ->
        let fresh = Bytes.make sector_size '\000' in
        Hashtbl.replace t.store sector fresh;
        fresh
  in
  Bytes.blit b 0 stored 0 (Stdlib.min (Bytes.length b) sector_size)

let read_range t ~sector ~count =
  check t sector;
  if count > 0 then check t (sector + count - 1);
  t.reads <- t.reads + count;
  let out = Bytes.create (count * sector_size) in
  for i = 0 to count - 1 do
    Bytes.blit (sector_data t (sector + i)) 0 out (i * sector_size) sector_size
  done;
  out

let write_range t ~sector b =
  let len = Bytes.length b in
  let count = (len + sector_size - 1) / sector_size in
  check t sector;
  if count > 0 then check t (sector + count - 1);
  t.writes <- t.writes + count;
  for i = 0 to count - 1 do
    let off = i * sector_size in
    let n = Stdlib.min sector_size (len - off) in
    let chunk = Bytes.make sector_size '\000' in
    Bytes.blit b off chunk 0 n;
    (* Preserve the tail of a partially overwritten last sector. *)
    if n < sector_size then
      Bytes.blit (sector_data t (sector + i)) n chunk n (sector_size - n);
    Hashtbl.replace t.store (sector + i) chunk
  done

let reads t = t.reads
let writes t = t.writes
