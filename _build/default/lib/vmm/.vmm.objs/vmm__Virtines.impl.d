lib/vmm/virtines.ml: Hostos Sandbox Sim Units
