(* Tests for as-visor orchestration, admission control and the
   gateway. *)

open Sim
open Alloystack_core

let node ?(instances = 1) ?(language = Workflow.Rust) id =
  { Workflow.node_id = id; language; instances; required_modules = [] }

let counting_kernel counter (ctx : Asstd.ctx) ~instance:_ ~total:_ =
  incr counter;
  Asstd.compute ctx (Units.ms 1)

let single_fn_workflow = Workflow.create_exn ~name:"w" ~nodes:[ node "f" ] ~edges:[]

let test_run_executes_kernels () =
  let count = ref 0 in
  let wf =
    Workflow.create_exn ~name:"w"
      ~nodes:[ node "a"; node ~instances:3 "b" ]
      ~edges:[ ("a", "b") ]
  in
  let bindings =
    [ ("a", Visor.bind (counting_kernel count)); ("b", Visor.bind (counting_kernel count)) ]
  in
  let report = Visor.run ~workflow:wf ~bindings () in
  Alcotest.(check int) "1 + 3 executions" 4 !count;
  Alcotest.(check int) "two stages" 2 (List.length report.Visor.stage_reports);
  Alcotest.(check bool) "e2e past compute" true (Units.( > ) report.Visor.e2e (Units.ms 2))

let test_cold_start_is_1_3ms () =
  let cs = Units.to_ms (Visor.cold_start_only ()) in
  Alcotest.(check bool) (Printf.sprintf "cold start ~1.3ms (got %.2f)" cs) true
    (cs > 1.2 && cs < 1.45)

let test_load_all_cold_start_is_89ms () =
  let features = { Wfd.default_features with Wfd.on_demand = false } in
  let config = { Visor.default_config with Visor.features } in
  let cs = Units.to_ms (Visor.cold_start_only ~config ()) in
  Alcotest.(check bool) (Printf.sprintf "load-all ~89.4ms (got %.2f)" cs) true
    (cs > 87.0 && cs < 92.0)

let test_missing_binding () =
  match Visor.run ~workflow:single_fn_workflow ~bindings:[] () with
  | _ -> Alcotest.fail "missing binding must fail"
  | exception Invalid_argument _ -> ()

let test_admission_rejects_syscall_image () =
  let image =
    Isa.Image.create ~name:"evil" ~toolchain:Isa.Image.Rust_plain_std
      [ Isa.Inst.Mov_reg; Isa.Inst.Syscall; Isa.Inst.Ret ]
  in
  let bindings = [ ("f", Visor.bind ~image (fun _ ~instance:_ ~total:_ -> ())) ] in
  match Visor.run ~workflow:single_fn_workflow ~bindings () with
  | _ -> Alcotest.fail "blacklisted image must be rejected"
  | exception Visor.Admission_failed _ -> ()

let test_admission_accepts_clean_image () =
  let image =
    Isa.Image.create ~name:"good" ~toolchain:Isa.Image.Rust_as_std
      [ Isa.Inst.Mov_reg; Isa.Inst.Call "as_std_open"; Isa.Inst.Ret ]
  in
  let bindings = [ ("f", Visor.bind ~image (fun _ ~instance:_ ~total:_ -> ())) ] in
  let report = Visor.run ~workflow:single_fn_workflow ~bindings () in
  Alcotest.(check bool) "admission time reported" true
    (Units.( > ) report.Visor.admission Units.zero)

let test_stage_parallelism_vs_cores () =
  (* 8 instances of a 10ms function: on 8 cores the stage is ~10ms; on
     1 core it serialises to ~80ms. *)
  let wf = Workflow.create_exn ~name:"w" ~nodes:[ node ~instances:8 "f" ] ~edges:[] in
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.compute ctx (Units.ms 10) in
  let bindings = [ ("f", Visor.bind kernel) ] in
  let wide =
    Visor.run ~config:{ Visor.default_config with Visor.cores = 8 } ~workflow:wf ~bindings ()
  in
  let narrow =
    Visor.run ~config:{ Visor.default_config with Visor.cores = 1 } ~workflow:wf ~bindings ()
  in
  Alcotest.(check bool) "narrow much slower" true
    (Units.( > ) narrow.Visor.e2e (Units.scale wide.Visor.e2e 4.0))

let test_module_reuse_across_functions () =
  (* Fig. 7(c): the second function reuses the module the first one
     loaded — exactly one miss per entry. *)
  let wf = Workflow.chain ~name:"c" 4 in
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.println ctx "x" in
  let bindings =
    List.map (fun (n : Workflow.node) -> (n.Workflow.node_id, Visor.bind kernel)) wf.Workflow.nodes
  in
  let report = Visor.run ~workflow:wf ~bindings () in
  Alcotest.(check int) "one miss for host_stdout" 1 report.Visor.entry_misses;
  Alcotest.(check int) "three fast hits" 3 report.Visor.entry_hits;
  Alcotest.(check (list string)) "only stdio loaded" [ "stdio" ] report.Visor.loaded_modules

let test_report_phase_totals () =
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    Asstd.in_phase ctx "compute" (fun () -> Asstd.compute ctx (Units.ms 7))
  in
  let report =
    Visor.run ~workflow:single_fn_workflow ~bindings:[ ("f", Visor.bind kernel) ] ()
  in
  match List.assoc_opt "compute" report.Visor.phase_totals with
  | Some t -> Alcotest.(check bool) "phase recorded" true (Units.( >= ) t (Units.ms 7))
  | None -> Alcotest.fail "missing phase"

let test_wfd_destroyed_after_run () =
  (* Memory accounting resets between runs: peak rss reflects this
     run's footprint only. *)
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    ignore (Asbuffer.with_slot_raw ctx ~slot:"x" (Bytes.make 1_000_000 'a'))
  in
  let r1 = Visor.run ~workflow:single_fn_workflow ~bindings:[ ("f", Visor.bind kernel) ] () in
  let r2 = Visor.run ~workflow:single_fn_workflow ~bindings:[ ("f", Visor.bind kernel) ] () in
  Alcotest.(check int) "footprint independent across runs" r1.Visor.peak_rss r2.Visor.peak_rss

let test_no_wfd_leak_on_failure () =
  (* Regression: a terminal function failure must still tear the WFD
     down (run_once reaches Wfd.destroy on every exit path), or a
     long-lived server leaks one WFD per failed request. *)
  let bad_kernel (_ : Asstd.ctx) ~instance:_ ~total:_ = failwith "boom" in
  let before = Wfd.live_count () in
  (match
     Visor.run ~workflow:single_fn_workflow ~bindings:[ ("f", Visor.bind bad_kernel) ] ()
   with
  | _ -> Alcotest.fail "failing kernel must raise"
  | exception Visor.Function_failed _ -> ());
  Alcotest.(check int) "no live WFD left behind" before (Wfd.live_count ());
  (* Same for a workflow that exhausts workflow-level retries. *)
  let config = { Visor.default_config with Visor.retry = Visor.Retry_workflow 3 } in
  (match
     Visor.run ~config ~workflow:single_fn_workflow
       ~bindings:[ ("f", Visor.bind bad_kernel) ] ()
   with
  | _ -> Alcotest.fail "still failing after retries"
  | exception Visor.Function_failed _ -> ());
  Alcotest.(check int) "no leak across retries" before (Wfd.live_count ())

let test_workflow_retry_counts_failed_attempts () =
  (* Regression: restarts performed during failed workflow attempts
     must survive into the final report instead of being dropped with
     the failed attempt's WFD. *)
  let calls = ref 0 in
  let flaky (_ : Asstd.ctx) ~instance:_ ~total:_ =
    incr calls;
    if !calls <= 2 then failwith "transient"
  in
  let config = { Visor.default_config with Visor.retry = Visor.Retry_workflow 3 } in
  let report =
    Visor.run ~config ~workflow:single_fn_workflow ~bindings:[ ("f", Visor.bind flaky) ] ()
  in
  Alcotest.(check int) "kernel ran three times" 3 !calls;
  Alcotest.(check int) "both failed attempts counted" 2 report.Visor.retries

let test_workflow_retry_covers_hang () =
  (* Regression: an undetected hang (no watchdog timeout) must be
     retried by Retry_workflow like any other failed attempt. *)
  let plan = Fault.create ~seed:5 () in
  Fault.inject plan ~site:Fault.site_fn_hang (Fault.First 1);
  let config =
    {
      Visor.default_config with
      Visor.fault = Some plan;
      retry = Visor.Retry_workflow 2;
    }
  in
  let report =
    Visor.run ~config ~workflow:single_fn_workflow
      ~bindings:[ ("f", Visor.bind (counting_kernel (ref 0))) ]
      ()
  in
  Alcotest.(check int) "hung attempt counted as retry" 1 report.Visor.retries;
  (* With the hang firing every attempt it still escapes once the
     attempt budget is spent — and without leaking WFDs. *)
  let plan = Fault.create ~seed:5 () in
  Fault.inject plan ~site:Fault.site_fn_hang Fault.Always;
  let config = { config with Visor.fault = Some plan } in
  let before = Wfd.live_count () in
  (match
     Visor.run ~config ~workflow:single_fn_workflow
       ~bindings:[ ("f", Visor.bind (counting_kernel (ref 0))) ]
       ()
   with
  | _ -> Alcotest.fail "always-hanging workflow cannot complete"
  | exception Visor.Function_hung _ -> ());
  Alcotest.(check int) "hung attempts torn down" before (Wfd.live_count ())

let test_backoff_boundaries () =
  (* Attempt numbers at and below 1 are free; the limit clamps exactly
     at the crossing attempt. *)
  let b = Visor.Exponential { base = Units.ms 4; factor = 2.0; limit = Units.ms 8 } in
  Alcotest.(check bool) "attempt 0 free" true
    (Units.equal Units.zero (Visor.backoff_delay b ~attempt:0));
  Alcotest.(check bool) "attempt 1 free" true
    (Units.equal Units.zero (Visor.backoff_delay b ~attempt:1));
  Alcotest.(check bool) "attempt 2 pays base" true
    (Units.equal (Units.ms 4) (Visor.backoff_delay b ~attempt:2));
  Alcotest.(check bool) "attempt 3 hits limit exactly" true
    (Units.equal (Units.ms 8) (Visor.backoff_delay b ~attempt:3));
  Alcotest.(check bool) "attempt 4 stays clamped" true
    (Units.equal (Units.ms 8) (Visor.backoff_delay b ~attempt:4))

let test_gateway_admission_cache_shared () =
  (* The gateway scans an image once; later invocations (any endpoint)
     reuse the cached verdict by content hash. *)
  let image =
    Isa.Image.create ~name:"cached" ~toolchain:Isa.Image.Rust_as_std
      [ Isa.Inst.Mov_reg; Isa.Inst.Call "as_std_open"; Isa.Inst.Ret ]
  in
  let kernel (_ : Asstd.ctx) ~instance:_ ~total:_ = () in
  let g = Gateway.create () in
  Gateway.register g ~endpoint:"e"
    ~workflow:single_fn_workflow
    ~bindings:[ ("f", Visor.bind ~image kernel) ]
    ();
  ignore (Gateway.invoke g ~endpoint:"e");
  ignore (Gateway.invoke g ~endpoint:"e");
  ignore (Gateway.invoke g ~endpoint:"e");
  Alcotest.(check int) "one scan" 1 (Visor.admission_scans (Gateway.admission g));
  Alcotest.(check int) "two cache hits" 2 (Visor.admission_hits (Gateway.admission g))

let test_cpu_quota_stretches () =
  (* 9 resource allocation: a 50% CPU quota roughly doubles the
     compute-bound end-to-end time. *)
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.compute ctx (Units.ms 40) in
  let bindings = [ ("f", Visor.bind kernel) ] in
  let free = Visor.run ~workflow:single_fn_workflow ~bindings () in
  let capped =
    Visor.run
      ~config:{ Visor.default_config with Visor.cpu_quota = Some 0.5 }
      ~workflow:single_fn_workflow ~bindings ()
  in
  Alcotest.(check bool) "roughly doubled" true
    (Units.( > ) capped.Visor.e2e (Units.scale free.Visor.e2e 1.8)
    && Units.( < ) capped.Visor.e2e (Units.scale free.Visor.e2e 2.2))

(* --- gateway --- *)

let register_demo gateway endpoint =
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.println ctx "served" in
  Gateway.register gateway ~endpoint ~workflow:single_fn_workflow
    ~bindings:[ ("f", Visor.bind kernel) ]
    ()

let test_gateway_invoke () =
  let g = Gateway.create () in
  register_demo g "demo";
  Alcotest.(check (list string)) "endpoints" [ "demo" ] (Gateway.endpoints g);
  let report = Gateway.invoke g ~endpoint:"demo" in
  Alcotest.(check string) "ran" "served\n" report.Visor.stdout;
  Alcotest.(check int) "counted" 1 (Gateway.invocations g);
  match Gateway.invoke g ~endpoint:"zz" with
  | _ -> Alcotest.fail "unknown endpoint"
  | exception Not_found -> ()

let test_gateway_duplicate_endpoint () =
  let g = Gateway.create () in
  register_demo g "demo";
  match register_demo g "demo" with
  | () -> Alcotest.fail "duplicate must fail"
  | exception Invalid_argument _ -> ()

let test_gateway_round_robin () =
  let g =
    Gateway.create
      ~nodes:[ { Gateway.node_name = "n0"; cores = 4 }; { Gateway.node_name = "n1"; cores = 4 } ]
      ()
  in
  register_demo g "demo";
  ignore (Gateway.invoke g ~endpoint:"demo");
  Alcotest.(check (option string)) "first node" (Some "n0") (Gateway.last_node g);
  ignore (Gateway.invoke g ~endpoint:"demo");
  Alcotest.(check (option string)) "second node" (Some "n1") (Gateway.last_node g);
  ignore (Gateway.invoke g ~endpoint:"demo");
  Alcotest.(check (option string)) "wraps" (Some "n0") (Gateway.last_node g)

let test_gateway_http () =
  let g = Gateway.create () in
  register_demo g "demo";
  let resp =
    Gateway.handle_http g (Netsim.Http.request ~meth:"POST" ~path:"/wf/demo" ())
  in
  Alcotest.(check int) "200" 200 resp.Netsim.Http.status;
  let json = Jsonlite.parse resp.Netsim.Http.resp_body in
  Alcotest.(check string) "stdout in body" "served\n"
    (Jsonlite.member_string "stdout" json);
  let missing =
    Gateway.handle_http g (Netsim.Http.request ~meth:"POST" ~path:"/wf/zz" ())
  in
  Alcotest.(check int) "404" 404 missing.Netsim.Http.status;
  let health = Gateway.handle_http g (Netsim.Http.request ~meth:"GET" ~path:"/healthz" ()) in
  Alcotest.(check int) "healthz" 200 health.Netsim.Http.status;
  let bad = Gateway.handle_http g (Netsim.Http.request ~meth:"GET" ~path:"/wf/demo" ()) in
  Alcotest.(check int) "GET not allowed" 404 bad.Netsim.Http.status

let test_gateway_register_json () =
  let g = Gateway.create () in
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.println ctx "j" in
  let config_json =
    {| { "workflow": "jwf",
         "functions": [ { "name": "a", "modules": ["mm"] },
                        { "name": "b", "instances": 2 } ],
         "edges": [ { "from": "a", "to": "b" } ] } |}
  in
  (match
     Gateway.register_json g ~endpoint:"jwf" ~config_json
       ~bindings:[ ("a", Visor.bind kernel); ("b", Visor.bind kernel) ]
       ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let report = Gateway.invoke g ~endpoint:"jwf" in
  Alcotest.(check string) "three prints" "j\nj\nj\n" report.Visor.stdout;
  match
    Gateway.register_json g ~endpoint:"bad" ~config_json:"{oops" ~bindings:[] ()
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad json must fail"

(* --- elasticity (9) --- *)

let busy_workflow =
  Workflow.create_exn ~name:"w"
    ~nodes:[ { (node "f") with Workflow.instances = 4 } ]
    ~edges:[]

let register_busy g =
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.compute ctx (Units.ms 10) in
  Gateway.register g ~endpoint:"busy" ~workflow:busy_workflow
    ~bindings:[ ("f", Visor.bind kernel) ]
    ()

let test_burst_within_capacity () =
  let g = Gateway.create ~nodes:[ { Gateway.node_name = "n0"; cores = 64 } ] () in
  register_busy g;
  let r = Gateway.invoke_burst g ~endpoint:"busy" ~count:4 in
  Alcotest.(check int) "nothing queued" 0 r.Gateway.queued;
  Alcotest.(check int) "all ran" 4 (List.length r.Gateway.latencies)

let test_burst_queues_past_capacity () =
  (* 8-core node, workflow width 4 -> capacity 2 concurrent. *)
  let g = Gateway.create ~nodes:[ { Gateway.node_name = "n0"; cores = 8 } ] () in
  register_busy g;
  let r = Gateway.invoke_burst g ~endpoint:"busy" ~count:6 in
  Alcotest.(check int) "four queued" 4 r.Gateway.queued;
  let sorted = List.sort Units.compare r.Gateway.latencies in
  Alcotest.(check bool) "queueing visible in p99" true
    (Units.( > ) r.Gateway.p99 (List.hd sorted))

let test_burst_spreads_across_nodes () =
  let g =
    Gateway.create
      ~nodes:
        [ { Gateway.node_name = "n0"; cores = 8 }; { Gateway.node_name = "n1"; cores = 8 } ]
      ()
  in
  register_busy g;
  let r = Gateway.invoke_burst g ~endpoint:"busy" ~count:4 in
  Alcotest.(check (list (pair string int))) "balanced placement"
    [ ("n0", 2); ("n1", 2) ]
    r.Gateway.per_node;
  Alcotest.(check int) "two nodes absorb the burst" 0 r.Gateway.queued

let test_run_emits_trace () =
  Sim.Trace.clear Sim.Trace.global;
  Sim.Trace.set_enabled Sim.Trace.global true;
  Fun.protect
    ~finally:(fun () ->
      Sim.Trace.set_enabled Sim.Trace.global false;
      Sim.Trace.clear Sim.Trace.global)
    (fun () ->
      let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.println ctx "x" in
      ignore (Visor.run ~workflow:single_fn_workflow ~bindings:[ ("f", Visor.bind kernel) ] ());
      let labels =
        List.map (fun (e : Sim.Trace.event) -> e.Sim.Trace.label)
          (Sim.Trace.events Sim.Trace.global)
      in
      List.iter
        (fun wanted ->
          if not (List.mem wanted labels) then Alcotest.fail ("missing event " ^ wanted))
        [ "wfd-created"; "entry-miss"; "module-loaded"; "stage-done"; "wfd-destroyed" ])

let suite =
  [
    Alcotest.test_case "run emits trace" `Quick test_run_emits_trace;
    Alcotest.test_case "run executes kernels" `Quick test_run_executes_kernels;
    Alcotest.test_case "cold start ~1.3ms (Fig.10)" `Quick test_cold_start_is_1_3ms;
    Alcotest.test_case "load-all ~89.4ms (Fig.10)" `Quick test_load_all_cold_start_is_89ms;
    Alcotest.test_case "missing binding" `Quick test_missing_binding;
    Alcotest.test_case "admission rejects syscall" `Quick test_admission_rejects_syscall_image;
    Alcotest.test_case "admission accepts clean" `Quick test_admission_accepts_clean_image;
    Alcotest.test_case "stage parallelism vs cores" `Quick test_stage_parallelism_vs_cores;
    Alcotest.test_case "module reuse across functions" `Quick test_module_reuse_across_functions;
    Alcotest.test_case "phase totals" `Quick test_report_phase_totals;
    Alcotest.test_case "wfd destroyed after run" `Quick test_wfd_destroyed_after_run;
    Alcotest.test_case "no wfd leak on failure" `Quick test_no_wfd_leak_on_failure;
    Alcotest.test_case "workflow retry counts failed attempts" `Quick
      test_workflow_retry_counts_failed_attempts;
    Alcotest.test_case "workflow retry covers hang" `Quick test_workflow_retry_covers_hang;
    Alcotest.test_case "backoff boundaries" `Quick test_backoff_boundaries;
    Alcotest.test_case "gateway admission cache shared" `Quick
      test_gateway_admission_cache_shared;
    Alcotest.test_case "cpu quota stretches e2e" `Quick test_cpu_quota_stretches;
    Alcotest.test_case "gateway invoke" `Quick test_gateway_invoke;
    Alcotest.test_case "gateway duplicate endpoint" `Quick test_gateway_duplicate_endpoint;
    Alcotest.test_case "gateway round robin" `Quick test_gateway_round_robin;
    Alcotest.test_case "gateway http" `Quick test_gateway_http;
    Alcotest.test_case "gateway json registration" `Quick test_gateway_register_json;
    Alcotest.test_case "burst within capacity" `Quick test_burst_within_capacity;
    Alcotest.test_case "burst queues past capacity" `Quick test_burst_queues_past_capacity;
    Alcotest.test_case "burst spreads across nodes" `Quick test_burst_spreads_across_nodes;
  ]
