type t = {
  name : string;
  write_file : ?clock:Sim.Clock.t -> string -> bytes -> unit;
  read_file : ?clock:Sim.Clock.t -> string -> bytes;
  file_size : string -> int;
  exists : string -> bool;
  delete : string -> unit;
  list_files : unit -> string list;
  reset : (unit -> unit) option;
      (** Re-format the backing image in place (see {!recycle}). *)
}

let of_fat fs =
  {
    name = "fatfs";
    write_file = (fun ?clock path data -> Fat.write_file fs ?clock path data);
    read_file = (fun ?clock path -> Fat.read_file fs ?clock path);
    file_size = Fat.file_size fs;
    exists = Fat.exists fs;
    delete = Fat.delete fs;
    list_files = (fun () -> Fat.list_files fs);
    reset = Some (fun () -> Fat.reset fs);
  }

let of_extfs fs =
  {
    name = "extfs";
    write_file = (fun ?clock path data -> Extfs.write_file fs ?clock path data);
    read_file = (fun ?clock path -> Extfs.read_file fs ?clock path);
    file_size = Extfs.file_size fs;
    exists = Extfs.exists fs;
    delete = Extfs.delete fs;
    list_files = (fun () -> Extfs.list_files fs);
    reset = None;
  }

let of_ramfs fs =
  {
    name = "ramfs";
    write_file = (fun ?clock path data -> Ramfs.write_file fs ?clock path data);
    read_file = (fun ?clock path -> Ramfs.read_file fs ?clock path);
    file_size = Ramfs.file_size fs;
    exists = Ramfs.exists fs;
    delete = Ramfs.delete fs;
    list_files = (fun () -> Ramfs.list_files fs);
    reset = None;
  }

exception Io_error of { op : string; path : string }

let with_faults plan t =
  let guard op site clock path =
    let at = match clock with Some c -> Sim.Clock.now c | None -> Sim.Units.zero in
    if Sim.Fault.check ~at plan ~site then raise (Io_error { op; path })
  in
  {
    t with
    (* A fault-wrapped view is request-specific: never advertised as
       recyclable even when the underlying image is. *)
    reset = None;
    read_file =
      (fun ?clock path ->
        guard "read" Sim.Fault.site_vfs_read clock path;
        t.read_file ?clock path);
    write_file =
      (fun ?clock path data ->
        guard "write" Sim.Fault.site_vfs_write clock path;
        t.write_file ?clock path data);
  }

let sectors_of_mib mib = mib * 1024 * 1024 / Blockdev.sector_size

let fresh_fat ?(mib = 2048) () = of_fat (Fat.format (Blockdev.create ~sectors:(sectors_of_mib mib)))

let fresh_extfs ?(mib = 2048) () =
  of_extfs (Extfs.format (Blockdev.create ~sectors:(sectors_of_mib mib)))

let fresh_ramfs () = of_ramfs (Ramfs.create ())

(* Recycle a per-request scratch image: re-format it in place when the
   backend supports it.  After [recycle t = true], [t] behaves
   bit-identically to the corresponding [fresh_*] image — the serving
   path relies on this to reuse disks across requests without any
   virtual observable changing. *)
let recycle t =
  match t.reset with
  | Some f ->
      f ();
      true
  | None -> false
