lib/net/http.ml: List Printf String
