lib/core/libos_mmap_backend.mli: Errno Sim Wfd
