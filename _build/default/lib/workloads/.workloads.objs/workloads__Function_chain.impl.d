lib/workloads/function_chain.ml: Bytes Char Datagen Fctx Int64 List Printf
