(** Heterogeneous extension map.

    as-libos modules keep their per-WFD state (fd tables, socket
    tables, slot maps) in the WFD without the WFD module depending on
    them: each module creates a typed key and stores its state under
    it. *)

type t

type 'a key

val create : unit -> t
val new_key : string -> 'a key
val set : t -> 'a key -> 'a -> unit
val get : t -> 'a key -> 'a option

val get_exn : t -> 'a key -> 'a
(** Raises [Invalid_argument] naming the key when absent. *)

val mem : t -> 'a key -> bool
val remove : t -> 'a key -> unit

val clear : t -> unit
(** Drop every binding, reusing the map's storage — equivalent to a
    fresh {!create} (WFD recycling). *)
