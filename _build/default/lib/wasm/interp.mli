(** Direct interpreter for the stack machine.

    Executes a validated module against host imports, counting every
    retired instruction (the count drives execution-time charging in the
    runtime layer).  Traps follow WebAssembly: out-of-bounds memory
    access, division by zero, [unreachable], stack underflow and fuel
    exhaustion all raise {!Trap}. *)

exception Trap of string

type t
(** A live instance: linear memory, globals, instruction counter. *)

type host_fn = t -> int64 array -> int64
(** Host imports receive the instance (so they can touch its memory). *)

val instantiate : ?hosts:(string * host_fn) list -> Wmodule.t -> t
(** Validates, allocates memory/globals, runs data initialisers.
    Raises [Invalid_argument] on validation failure or missing
    imports. *)

val call : ?fuel:int -> t -> string -> int64 array -> int64
(** Invoke an exported function.  [fuel] bounds retired instructions
    (default 200 million).  The result is the value on top of the stack
    when the function returns (0 for an empty stack). *)

val call_index : ?fuel:int -> t -> int -> int64 array -> int64

(** {1 Instance state} *)

val memory_size : t -> int
(** Bytes. *)

val read_memory : t -> int -> int -> bytes
val write_memory : t -> int -> bytes -> unit
val read_global : t -> int -> int64
val executed : t -> int
(** Instructions retired since instantiation. *)

val host_calls : t -> int
val module_of : t -> Wmodule.t
