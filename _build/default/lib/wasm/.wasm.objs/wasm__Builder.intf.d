lib/wasm/builder.mli: Instr Wmodule
