lib/baselines/as_multinode.mli: Platform Sim
