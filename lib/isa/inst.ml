type t =
  | Nop
  | Mov_imm of int32
  | Mov_reg
  | Add
  | Load
  | Store
  | Jmp of int
  | Call of string
  | Ret
  | Wrpkru
  | Syscall
  | Sysenter
  | Int of int

let bytes_of_list l =
  let a = Array.of_list l in
  String.init (Array.length a) (fun i -> Char.chr a.(i))

let le32 (v : int32) =
  String.init 4 (fun i ->
      Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * i)) 0xFFl)))

let encode = function
  | Nop -> bytes_of_list [ 0x90 ]
  | Mov_imm v -> bytes_of_list [ 0xB8 ] ^ le32 v
  | Mov_reg -> bytes_of_list [ 0x89; 0xC8 ]
  | Add -> bytes_of_list [ 0x01; 0xC8 ]
  | Load -> bytes_of_list [ 0x8B; 0x00 ]
  | Store -> bytes_of_list [ 0x89; 0x00 ]
  | Jmp off -> bytes_of_list [ 0xEB; off land 0x7F ]
  | Call name ->
      (* A pseudo relative call whose displacement hashes the target
         name.  Displacement bytes are confined to 0x40..0x7F: the
         toolchain controls call targets, so (unlike user immediates)
         they never form forbidden byte patterns. *)
      let h = Hashtbl.hash name in
      let safe i = 0x40 lor ((h lsr (6 * i)) land 0x3F) in
      bytes_of_list [ 0xE8; safe 0; safe 1; safe 2; safe 3 ]
  | Ret -> bytes_of_list [ 0xC3 ]
  | Wrpkru -> bytes_of_list [ 0x0F; 0x01; 0xEF ]
  | Syscall -> bytes_of_list [ 0x0F; 0x05 ]
  | Sysenter -> bytes_of_list [ 0x0F; 0x34 ]
  | Int v -> bytes_of_list [ 0xCD; v land 0xFF ]

let encoded_length i = String.length (encode i)

let is_blacklisted = function
  | Wrpkru | Syscall | Sysenter | Int _ -> true
  | Nop | Mov_imm _ | Mov_reg | Add | Load | Store | Jmp _ | Call _ | Ret -> false

let pp fmt = function
  | Nop -> Format.pp_print_string fmt "nop"
  | Mov_imm v -> Format.fprintf fmt "mov $0x%lx" v
  | Mov_reg -> Format.pp_print_string fmt "mov %reg"
  | Add -> Format.pp_print_string fmt "add"
  | Load -> Format.pp_print_string fmt "load"
  | Store -> Format.pp_print_string fmt "store"
  | Jmp off -> Format.fprintf fmt "jmp %+d" off
  | Call name -> Format.fprintf fmt "call %s" name
  | Ret -> Format.pp_print_string fmt "ret"
  | Wrpkru -> Format.pp_print_string fmt "wrpkru"
  | Syscall -> Format.pp_print_string fmt "syscall"
  | Sysenter -> Format.pp_print_string fmt "sysenter"
  | Int v -> Format.fprintf fmt "int $0x%x" v
