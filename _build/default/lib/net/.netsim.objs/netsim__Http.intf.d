lib/net/http.mli:
