open Workloads
open Sim
open Alloystack_core

let split_stages stages ~parts =
  let n = List.length stages in
  if parts <= 0 then invalid_arg "As_multinode.split_stages: parts must be positive";
  let parts = Stdlib.min parts (Stdlib.max 1 n) in
  let arr = Array.of_list stages in
  List.init parts (fun p ->
      let lo = p * n / parts and hi = (p + 1) * n / parts in
      Array.to_list (Array.sub arr lo (hi - lo)))
  |> List.filter (fun g -> g <> [])

(* Serialisation at both ends plus the wire (the cross-node path has no
   shared address space to lean on). *)
let bridge_cost len =
  Units.add
    (Units.scale (Netsim.Redis.serialization_cost len) 2.0)
    (Units.add
       (Netsim.Link.wire_time Netsim.Link.datacenter len)
       (Netsim.Link.rtt Netsim.Link.datacenter))

let make ?(bridge = bridge_cost) ?label ~nodes () =
  let name =
    match label with Some l -> l | None -> Printf.sprintf "AlloyStack-%dnode" nodes
  in
  let run ?(cores = 64) (app : Fctx.app) =
    let vfs = Fsim.Vfs.fresh_fat () in
    List.iter (fun (path, data) -> vfs.Fsim.Vfs.write_file path data) app.Fctx.inputs;
    (* Bytes shipped across WFD boundaries, keyed by slot.  Producers
       stash a copy of everything they publish; consumers that miss
       locally pull through the network. *)
    let bridge_store : (string, bytes) Hashtbl.t = Hashtbl.create 32 in
    let groups = split_stages app.Fctx.stages ~parts:nodes in
    let total_e2e = ref Units.zero in
    let cold_start = ref None in
    let peak_rss = ref 0 in
    let cpu_time = ref Units.zero in
    let phase_totals : (string, Units.time) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun group_stages ->
        let workflow =
          As_platform.to_workflow ~language:Workflow.Rust ~modules:app.Fctx.modules
            group_stages
        in
        let make_binding (_, _, kernel) =
          Visor.bind (fun (actx : Asstd.ctx) ~instance ~total ->
              let send ~slot data =
                Hashtbl.replace bridge_store slot (Bytes.copy data);
                ignore (Asbuffer.with_slot_raw actx ~slot data)
              in
              let recv ~slot =
                match Asbuffer.from_slot_raw actx ~slot with
                | data -> data
                | exception Errno.Error (Errno.Enoent, _) -> begin
                    match Hashtbl.find_opt bridge_store slot with
                    | Some data ->
                        (* Remote pull from the upstream WFD's node. *)
                        Clock.advance actx.Asstd.thread.Wfd.clock
                          (bridge (Bytes.length data));
                        data
                    | None -> raise Not_found
                  end
              in
              kernel
                {
                  Fctx.instance;
                  total;
                  read_input = (fun path -> Asstd.read_whole_file actx path);
                  write_output = (fun path data -> Asstd.write_whole_file actx path data);
                  send;
                  recv;
                  println = (fun line -> Asstd.println actx line);
                  compute = (fun t -> Asstd.compute actx t);
                  phase = (fun name f -> Asstd.in_phase actx name f);
                })
        in
        let bindings =
          List.map (fun ((n, _, _) as stage) -> (n, make_binding stage)) group_stages
        in
        let config =
          { Visor.default_config with Visor.cores; vfs = Some vfs }
        in
        let report = Visor.run ~config ~workflow ~bindings () in
        total_e2e := Units.add !total_e2e report.Visor.e2e;
        (match !cold_start with
        | None -> cold_start := Some report.Visor.cold_start
        | Some _ -> ());
        peak_rss := Stdlib.max !peak_rss report.Visor.peak_rss;
        List.iter
          (fun (s : Visor.stage_report) ->
            List.iter
              (fun d -> cpu_time := Units.add !cpu_time d)
              s.Visor.instance_durations)
          report.Visor.stage_reports;
        List.iter
          (fun (name, t) ->
            let prev =
              match Hashtbl.find_opt phase_totals name with
              | Some v -> v
              | None -> Units.zero
            in
            Hashtbl.replace phase_totals name (Units.add prev t))
          report.Visor.phase_totals)
      groups;
    let read_output path =
      match vfs.Fsim.Vfs.read_file path with
      | data -> Some data
      | exception Not_found -> None
    in
    {
      Platform.platform = name;
      e2e = !total_e2e;
      cold_start = (match !cold_start with Some c -> c | None -> Units.zero);
      phase_totals =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) phase_totals [] |> List.sort compare;
      cpu_time = !cpu_time;
      peak_rss = !peak_rss;
      validated = app.Fctx.validate ~read_output;
    }
  in
  { Platform.name; run }
