type key = int

let default_key = 0

let key_of_int i =
  if i < 0 || i > 15 then invalid_arg "Prot.key_of_int: key must be in 0..15";
  i

let key_to_int k = k

(* PKRU layout: bits (2k) = AD (access disable), (2k+1) = WD (write
   disable) for key k, matching the Intel SDM. *)
type pkru = int32

let pkru_allow_all = 0l

let ad_bit k = Int32.shift_left 1l (2 * k)
let wd_bit k = Int32.shift_left 1l ((2 * k) + 1)

let deny p k = Int32.logor p (Int32.logor (ad_bit k) (wd_bit k))

let allow p k =
  Int32.logand p (Int32.lognot (Int32.logor (ad_bit k) (wd_bit k)))

let deny_write p k = Int32.logor (allow p k) (wd_bit k)

let pkru_deny_all_except keys =
  let all_denied =
    List.fold_left (fun p k -> deny p k) pkru_allow_all (List.init 16 Fun.id)
  in
  List.fold_left allow all_denied keys

let can_read p k = Int32.logand p (ad_bit k) = 0l

let can_write p k =
  Int32.logand p (Int32.logor (ad_bit k) (wd_bit k)) = 0l

let to_int32 p = p
let of_int32 p = p
let[@inline] bits p = Int32.to_int p

let equal_pkru = Int32.equal

let pp_pkru fmt p = Format.fprintf fmt "PKRU:0x%08lx" p

type access = Read | Write | Execute

let pp_access fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write -> Format.pp_print_string fmt "write"
  | Execute -> Format.pp_print_string fmt "execute"

let access_allowed p k = function
  | Read -> can_read p k
  | Write -> can_write p k
  | Execute -> true
