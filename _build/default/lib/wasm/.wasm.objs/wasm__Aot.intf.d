lib/wasm/aot.mli: Isa Wmodule
