open Sim

(* --- Chrome trace_event export ------------------------------------ *)

(* Root ancestor of each span, memoized: the export uses it as [tid] so
   each workflow / request gets its own track in the viewer. *)
let root_table collector =
  let tbl = Hashtbl.create 64 in
  let rec root_of (sp : Span.span) =
    match Hashtbl.find_opt tbl sp.Span.sp_id with
    | Some r -> r
    | None ->
        let r =
          if sp.Span.sp_parent = Span.none then sp.Span.sp_id
          else
            match Span.find collector sp.Span.sp_parent with
            | Some p -> root_of p
            | None -> sp.Span.sp_id
        in
        Hashtbl.replace tbl sp.Span.sp_id r;
        r
  in
  root_of

let attrs_json (sp : Span.span) extra =
  Jsonlite.Obj (extra @ List.map (fun (k, v) -> (k, Jsonlite.String v)) sp.Span.sp_attrs)

let ns_int t = Int64.to_int (Units.to_ns t)

let trace_json ?(collector = Span.global) () =
  let root_of = root_table collector in
  let events =
    List.map
      (fun (sp : Span.span) ->
        let begin_ns = ns_int sp.Span.sp_begin in
        let dur_ns = ns_int (Units.sub sp.Span.sp_end sp.Span.sp_begin) in
        Jsonlite.Obj
          [
            ("name", Jsonlite.String sp.Span.sp_label);
            ("cat", Jsonlite.String sp.Span.sp_category);
            ("ph", Jsonlite.String "X");
            ("ts", Jsonlite.Int (begin_ns / 1000));
            ("dur", Jsonlite.Int (dur_ns / 1000));
            ("pid", Jsonlite.Int 1);
            ("tid", Jsonlite.Int (root_of sp));
            ( "args",
              attrs_json sp
                [
                  ("span_id", Jsonlite.Int sp.Span.sp_id);
                  ("parent", Jsonlite.Int sp.Span.sp_parent);
                  ("ts_ns", Jsonlite.Int begin_ns);
                  ("dur_ns", Jsonlite.Int dur_ns);
                ] );
          ])
      (Span.spans collector)
  in
  Jsonlite.Obj
    [
      ("traceEvents", Jsonlite.List events);
      ("displayTimeUnit", Jsonlite.String "ns");
    ]

let trace_json_string ?collector () = Jsonlite.to_string (trace_json ?collector ())

let spans_jsonl ?(collector = Span.global) () =
  let line (sp : Span.span) =
    Jsonlite.to_string
      (Jsonlite.Obj
         [
           ("id", Jsonlite.Int sp.Span.sp_id);
           ("parent", Jsonlite.Int sp.Span.sp_parent);
           ("category", Jsonlite.String sp.Span.sp_category);
           ("label", Jsonlite.String sp.Span.sp_label);
           ("begin_ns", Jsonlite.Int (ns_int sp.Span.sp_begin));
           ("end_ns", Jsonlite.Int (ns_int sp.Span.sp_end));
           ("attrs", attrs_json sp []);
         ])
  in
  String.concat "" (List.map (fun sp -> line sp ^ "\n") (Span.spans collector))

(* --- Metrics export ------------------------------------------------ *)

let metrics_json () =
  let snap = Metrics.snapshot () in
  let histo (h : Metrics.histo_snapshot) =
    Jsonlite.Obj
      [
        ("name", Jsonlite.String h.Metrics.hs_name);
        ("count", Jsonlite.Int h.Metrics.hs_count);
        ("sum", Jsonlite.Float h.Metrics.hs_sum);
        ("min", Jsonlite.Float h.Metrics.hs_min);
        ("max", Jsonlite.Float h.Metrics.hs_max);
        ("p50", Jsonlite.Float h.Metrics.hs_p50);
        ("p90", Jsonlite.Float h.Metrics.hs_p90);
        ("p99", Jsonlite.Float h.Metrics.hs_p99);
        ( "buckets",
          Jsonlite.List
            (List.map
               (fun (i, c) -> Jsonlite.List [ Jsonlite.Int i; Jsonlite.Int c ])
               h.Metrics.hs_buckets) );
      ]
  in
  Jsonlite.Obj
    [
      ( "counters",
        Jsonlite.Obj
          (List.map (fun (n, v) -> (n, Jsonlite.Int v)) snap.Metrics.snap_counters) );
      ( "gauges",
        Jsonlite.Obj
          (List.map (fun (n, v) -> (n, Jsonlite.Float v)) snap.Metrics.snap_gauges) );
      ("histograms", Jsonlite.List (List.map histo snap.Metrics.snap_histograms));
    ]

let metrics_json_string () = Jsonlite.to_string (metrics_json ())

(* --- Critical-path breakdown --------------------------------------- *)

let categories =
  [ "boot"; "load-slow"; "load-fast"; "compute"; "transfer"; "network"; "io"; "retry" ]

let bucket_of category = if List.mem category categories then category else "other"

type breakdown = {
  bd_root : Span.id;
  bd_label : string;
  bd_total : Units.time;
  bd_buckets : (string * Units.time) list;
}

(* Children indexed by parent once; Span.children is O(n) per call.
   Shared between [breakdown] (one root) and [tails] (every tail
   root), so attribution over k roots indexes the tree once. *)
let index_children collector =
  let by_parent : (Span.id, Span.span list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (sp : Span.span) ->
      if sp.Span.sp_id <> sp.Span.sp_parent then
        let prev =
          match Hashtbl.find_opt by_parent sp.Span.sp_parent with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace by_parent sp.Span.sp_parent (sp :: prev))
    (Span.spans collector);
  by_parent

let breakdown_indexed by_parent (root_span : Span.span) =
  let buckets = Hashtbl.create 16 in
  let attribute category d =
    if Units.( > ) d Units.zero then begin
      let b = bucket_of category in
      let prev =
        match Hashtbl.find_opt buckets b with Some v -> v | None -> Units.zero
      in
      Hashtbl.replace buckets b (Units.add prev d)
    end
  in
  (* Latest-finisher walk: within [lo, hi] of [sp], scan the children
     clipped to the interval from the latest end backwards.  A child
     whose (clipped) interval ends at or before the cursor claims it
     and recursion descends; the gap between its end and the cursor
     belongs to [sp] itself.  A child overlapping the cursor is
     shadowed by the sibling already claimed there and contributes
     nothing.  Every nanosecond of [hi - lo] lands in exactly one
     bucket, so the breakdown sums to the root duration exactly. *)
  let rec walk (sp : Span.span) lo hi =
    let kids =
      match Hashtbl.find_opt by_parent sp.Span.sp_id with
      | Some l -> l
      | None -> []
    in
    let clipped =
      List.filter_map
        (fun (k : Span.span) ->
          let b = Units.max k.Span.sp_begin lo in
          let e = Units.min k.Span.sp_end hi in
          if Units.( < ) b e then Some (k, b, e) else None)
        kids
    in
    let ordered =
      List.sort
        (fun ((a : Span.span), ab, ae) ((b : Span.span), bb, be) ->
          match Units.compare be ae with
          | 0 -> (
              match Units.compare ab bb with
              | 0 -> Stdlib.compare a.Span.sp_id b.Span.sp_id
              | c -> c)
          | c -> c)
        clipped
    in
    let cursor = ref hi in
    List.iter
      (fun (k, b, e) ->
        if Units.( <= ) e !cursor && Units.( < ) b !cursor then begin
          attribute sp.Span.sp_category (Units.sub !cursor e);
          walk k b e;
          cursor := b
        end)
      ordered;
    attribute sp.Span.sp_category (Units.sub !cursor lo)
  in
  walk root_span root_span.Span.sp_begin root_span.Span.sp_end;
  let all = categories @ [ "other" ] in
  {
    bd_root = root_span.Span.sp_id;
    bd_label = root_span.Span.sp_label;
    bd_total = Units.sub root_span.Span.sp_end root_span.Span.sp_begin;
    bd_buckets =
      List.map
        (fun c ->
          ( c,
            match Hashtbl.find_opt buckets c with
            | Some v -> v
            | None -> Units.zero ))
        all;
  }

let breakdown ?(collector = Span.global) ~root () =
  let root_span =
    match Span.find collector root with
    | Some sp -> sp
    | None -> invalid_arg "Obs.breakdown: unknown root span"
  in
  breakdown_indexed (index_children collector) root_span

let find_root ?(collector = Span.global) ~category () =
  List.fold_left
    (fun acc (sp : Span.span) ->
      if String.equal sp.Span.sp_category category then Some sp else acc)
    None
    (Span.roots collector)

let render_breakdown bd =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "critical path of %s (e2e %s):\n" bd.bd_label
    (Units.to_string bd.bd_total);
  let total_ns = Int64.to_float (Units.to_ns bd.bd_total) in
  List.iter
    (fun (c, d) ->
      if Units.( > ) d Units.zero then begin
        let pct =
          if total_ns <= 0.0 then 0.0
          else 100.0 *. Int64.to_float (Units.to_ns d) /. total_ns
        in
        Printf.bprintf buf "  %-10s %12s  %5.1f%%\n" c (Units.to_string d) pct
      end)
    bd.bd_buckets;
  Printf.bprintf buf "  %-10s %12s  100.0%%\n" "total" (Units.to_string bd.bd_total);
  Buffer.contents buf

let breakdown_json bd =
  Jsonlite.Obj
    [
      ("label", Jsonlite.String bd.bd_label);
      ("total_ns", Jsonlite.Int (ns_int bd.bd_total));
      ( "buckets",
        Jsonlite.Obj
          (List.map (fun (c, d) -> (c, Jsonlite.Int (ns_int d))) bd.bd_buckets) );
    ]

(* --- Tail attribution ---------------------------------------------- *)

type tail_entry = {
  te_category : string;
  te_count : int;
  te_share : float;
  te_mean_total : Units.time;
  te_mean_bucket : Units.time;
}

type tail_report = {
  tr_quantile : float;
  tr_threshold : Units.time;
  tr_population : int;
  tr_tail : int;
  tr_entries : tail_entry list;
}

let span_duration (sp : Span.span) = Units.sub sp.Span.sp_end sp.Span.sp_begin

(* The dominant cost of one breakdown: the largest bucket, ties going
   to the earlier category in report order (the buckets list is
   already in that order, so strict-greater keeps the first max). *)
let dominant bd =
  List.fold_left
    (fun ((_, best_d) as best) ((_, d) as cand) ->
      if Units.( > ) d best_d then cand else best)
    ("other", Units.zero) bd.bd_buckets

let tails ?(collector = Span.global) ?(quantile = 99.0) ?category () =
  if not (quantile > 0.0 && quantile <= 100.0) then
    invalid_arg "Obs.tails: quantile must be in (0,100]";
  let roots = Span.roots collector in
  let roots =
    match category with
    | Some c -> List.filter (fun (sp : Span.span) -> String.equal sp.Span.sp_category c) roots
    | None ->
        (* Serving traces have "request" roots; single-run traces have
           whatever the workflow rooted.  Prefer requests when present
           so a mixed trace attributes the served tail, not warmup. *)
        let reqs =
          List.filter (fun (sp : Span.span) -> String.equal sp.Span.sp_category "request") roots
        in
        if reqs = [] then roots else reqs
  in
  let population = List.length roots in
  if population = 0 then
    {
      tr_quantile = quantile;
      tr_threshold = Units.zero;
      tr_population = 0;
      tr_tail = 0;
      tr_entries = [];
    }
  else begin
    (* Exact nearest-rank threshold over the sampled population, ties
       broken by span id so the cut is deterministic. *)
    let by_duration =
      List.sort
        (fun (a : Span.span) (b : Span.span) ->
          match Units.compare (span_duration a) (span_duration b) with
          | 0 -> Stdlib.compare a.Span.sp_id b.Span.sp_id
          | c -> c)
        roots
    in
    let rank =
      let r = int_of_float (Float.ceil (quantile /. 100.0 *. float_of_int population)) in
      if r < 1 then 1 else if r > population then population else r
    in
    let threshold = span_duration (List.nth by_duration (rank - 1)) in
    let tail =
      List.filter (fun sp -> Units.( >= ) (span_duration sp) threshold) by_duration
    in
    let by_parent = index_children collector in
    let agg = Hashtbl.create 8 in
    List.iter
      (fun (sp : Span.span) ->
        let bd = breakdown_indexed by_parent sp in
        let cat, d = dominant bd in
        let count, tot, bucket =
          match Hashtbl.find_opt agg cat with
          | Some v -> v
          | None -> (0, Units.zero, Units.zero)
        in
        Hashtbl.replace agg cat
          (count + 1, Units.add tot bd.bd_total, Units.add bucket d))
      tail;
    let n_tail = List.length tail in
    let entries =
      List.filter_map
        (fun cat ->
          match Hashtbl.find_opt agg cat with
          | None -> None
          | Some (count, tot, bucket) ->
              Some
                {
                  te_category = cat;
                  te_count = count;
                  te_share = float_of_int count /. float_of_int n_tail;
                  te_mean_total = Units.scale tot (1.0 /. float_of_int count);
                  te_mean_bucket = Units.scale bucket (1.0 /. float_of_int count);
                })
        (categories @ [ "other" ])
      (* Biggest culprit first; count ties keep report order. *)
      |> List.stable_sort (fun a b -> Stdlib.compare b.te_count a.te_count)
    in
    {
      tr_quantile = quantile;
      tr_threshold = threshold;
      tr_population = population;
      tr_tail = n_tail;
      tr_entries = entries;
    }
  end

let render_tails tr =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "tail requests >= p%g (%s): %d of %d sampled\n" tr.tr_quantile
    (Units.to_string tr.tr_threshold) tr.tr_tail tr.tr_population;
  if tr.tr_entries <> [] then begin
    Printf.bprintf buf "  %-10s %6s %7s %12s %14s\n" "verdict" "count" "share"
      "mean e2e" "mean in-bucket";
    List.iter
      (fun e ->
        Printf.bprintf buf "  %-10s %6d %6.1f%% %12s %14s\n" e.te_category
          e.te_count (100.0 *. e.te_share)
          (Units.to_string e.te_mean_total)
          (Units.to_string e.te_mean_bucket))
      tr.tr_entries
  end;
  Buffer.contents buf

let tails_json tr =
  Jsonlite.Obj
    [
      ("quantile", Jsonlite.Float tr.tr_quantile);
      ("threshold_ns", Jsonlite.Int (ns_int tr.tr_threshold));
      ("population", Jsonlite.Int tr.tr_population);
      ("tail", Jsonlite.Int tr.tr_tail);
      ( "verdicts",
        Jsonlite.List
          (List.map
             (fun e ->
               Jsonlite.Obj
                 [
                   ("category", Jsonlite.String e.te_category);
                   ("count", Jsonlite.Int e.te_count);
                   ("share", Jsonlite.Float e.te_share);
                   ("mean_total_ns", Jsonlite.Int (ns_int e.te_mean_total));
                   ("mean_bucket_ns", Jsonlite.Int (ns_int e.te_mean_bucket));
                 ])
             tr.tr_entries) );
    ]

(* --- Prometheus text-format export --------------------------------- *)

(* Valid Prometheus metric names are [[a-zA-Z_:][a-zA-Z0-9_:]*]; our
   dotted names sanitize by replacing everything else with '_'.  A
   [Metrics.labels]-encoded name keeps its label block verbatim and
   only the base is sanitized. *)
let prom_name name =
  let base = Metrics.base_name name in
  let labels =
    String.sub name (String.length base) (String.length name - String.length base)
  in
  let b = Bytes.of_string base in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
        || (i > 0 && c >= '0' && c <= '9')
      in
      if not ok then Bytes.set b i '_')
    b;
  (Bytes.to_string b, labels)

(* Fixed-point float rendering (no %g, which flips to scientific
   notation and is locale/precision dependent in ways that break the
   byte-identity contract). *)
let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else begin
    let s = Printf.sprintf "%.6f" v in
    let n = String.length s in
    let last = ref (n - 1) in
    while !last > 0 && s.[!last] = '0' && s.[!last - 1] <> '.' do
      decr last
    done;
    String.sub s 0 (!last + 1)
  end

let prometheus_string () =
  let snap = Metrics.snapshot () in
  let buf = Buffer.create 4096 in
  (* One TYPE line per metric family: group samples by sanitized base
     name (label variants of one base may not sort adjacent in the raw
     list — "x_total" sorts between "x" and "x{...}"). *)
  let emit_simple kind entries value_of =
    let keyed =
      List.map
        (fun (name, v) ->
          let base, labels = prom_name name in
          (base, labels, v))
        entries
      |> List.sort (fun (b1, l1, _) (b2, l2, _) ->
             match String.compare b1 b2 with
             | 0 -> String.compare l1 l2
             | c -> c)
    in
    let last_base = ref "" in
    List.iter
      (fun (base, labels, v) ->
        if base <> !last_base then begin
          Printf.bprintf buf "# TYPE %s %s\n" base kind;
          last_base := base
        end;
        Printf.bprintf buf "%s%s %s\n" base labels (value_of v))
      keyed
  in
  emit_simple "counter" snap.Metrics.snap_counters string_of_int;
  emit_simple "gauge" snap.Metrics.snap_gauges prom_float;
  let histos =
    List.map
      (fun (h : Metrics.histo_snapshot) ->
        let base, labels = prom_name h.Metrics.hs_name in
        (base, labels, h))
      snap.Metrics.snap_histograms
    |> List.sort (fun (b1, l1, _) (b2, l2, _) ->
           match String.compare b1 b2 with
           | 0 -> String.compare l1 l2
           | c -> c)
  in
  let last_base = ref "" in
  List.iter
    (fun (base, labels, (h : Metrics.histo_snapshot)) ->
      if base <> !last_base then begin
        Printf.bprintf buf "# TYPE %s histogram\n" base;
        last_base := base
      end;
      (* The label block already ends in '}' when present; bucket lines
         splice the le label into it. *)
      let with_le le =
        if labels = "" then Printf.sprintf "{le=\"%s\"}" le
        else
          Printf.sprintf "%s,le=\"%s\"}" (String.sub labels 0 (String.length labels - 1)) le
      in
      let cum = ref 0 in
      List.iter
        (fun (i, c) ->
          cum := !cum + c;
          Printf.bprintf buf "%s_bucket%s %d\n" base
            (with_le (prom_float (Metrics.bucket_bound i)))
            !cum)
        h.Metrics.hs_buckets;
      Printf.bprintf buf "%s_bucket%s %d\n" base (with_le "+Inf") h.Metrics.hs_count;
      Printf.bprintf buf "%s_sum%s %s\n" base labels (prom_float h.Metrics.hs_sum);
      Printf.bprintf buf "%s_count%s %d\n" base labels h.Metrics.hs_count)
    histos;
  Buffer.contents buf
