lib/wasm/instr.mli: Format
