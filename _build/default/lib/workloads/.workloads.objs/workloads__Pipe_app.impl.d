lib/workloads/pipe_app.ml: Bytes Datagen Fctx Function_chain Int64
