(* Tier-1 scale lock-in: a 50k-request warm serve streamed through the
   server must complete with zero failures, bounded virtual memory and
   a byte-identical response stream whatever the host domain count —
   the contract the 10^5-request bench leg relies on. *)

open Alloystack_core

let count = 50_000
let qps = 700.0
let seed = 7

(* Same endpoints and the same seeded draw sequence as
   [Test_par.requests_for], but streamed instead of materialised. *)
let stream () =
  let eps =
    Array.of_list (List.map (fun (e, _, _) -> e) Test_par.endpoints_spec)
  in
  let next = Baselines.Loadgen.request_stream ~seed ~qps ~endpoints:eps ~count () in
  fun () ->
    match next () with
    | None -> None
    | Some (endpoint, arrival) -> Some { Visor.Server.endpoint; arrival }

let serve_scale () =
  let server =
    Visor.Server.create ~sample_every:64 ~sample_seed:seed ()
  in
  List.iter
    (fun (endpoint, workflow, bindings) ->
      Visor.Server.register server ~endpoint ~workflow ~bindings ())
    Test_par.endpoints_spec;
  let r = Visor.Server.serve_stream server (stream ()) in
  Visor.Server.shutdown server;
  r

let test_scale_50k () =
  let live0 = Wfd.live_count () in
  let r1 = Test_par.with_domains 1 (fun () -> serve_scale ()) in
  Alcotest.(check int) "all completed" count r1.Visor.Server.completed;
  Alcotest.(check int) "zero failures" 0 r1.Visor.Server.failed;
  (* Warm pool does its job: one cold boot per endpoint, everything
     else clones a template. *)
  Alcotest.(check int) "cold boots = endpoints" 3 r1.Visor.Server.cold_starts;
  Alcotest.(check int) "warm rest" (count - 3) r1.Visor.Server.warm_starts;
  (* Bounded virtual memory: peak machine RSS reflects the in-flight
     window, not the full request count.  16 GiB is ~2x the observed
     peak; a linear leak over 50k requests would blow far past it. *)
  Alcotest.(check bool)
    (Printf.sprintf "peak rss bounded (%d)" r1.Visor.Server.machine_peak_rss)
    true
    (r1.Visor.Server.machine_peak_rss < 16 * 1024 * 1024 * 1024);
  (* In-flight stays at the queueing equilibrium, far below n. *)
  Alcotest.(check bool)
    (Printf.sprintf "inflight bounded (%d)" r1.Visor.Server.max_inflight)
    true
    (r1.Visor.Server.max_inflight < 1_000);
  Alcotest.(check int) "no WFD leak" live0 (Wfd.live_count ());
  (* The same stream on a 4-domain pool replays byte-identically. *)
  let r4 = Test_par.with_domains 4 (fun () -> serve_scale ()) in
  Alcotest.(check string) "responses identical at 1 vs 4 domains"
    (Digest.to_hex (Digest.string (Test_par.fingerprint r1)))
    (Digest.to_hex (Digest.string (Test_par.fingerprint r4)));
  Alcotest.(check string) "summary identical at 1 vs 4 domains"
    (Test_par.summary r1) (Test_par.summary r4);
  Alcotest.(check int) "no WFD leak after parallel run" live0 (Wfd.live_count ())

let test_stream_matches_materialised_serve () =
  (* serve_stream over the generator == serve over the materialised
     list: same virtual responses, byte for byte. *)
  let requests = Test_par.requests_for ~seed ~count:300 in
  let serve_list () =
    let server = Visor.Server.create () in
    List.iter
      (fun (endpoint, workflow, bindings) ->
        Visor.Server.register server ~endpoint ~workflow ~bindings ())
      Test_par.endpoints_spec;
    let r = Visor.Server.serve server requests in
    Visor.Server.shutdown server;
    r
  in
  let serve_streamed window =
    let eps =
      Array.of_list (List.map (fun (e, _, _) -> e) Test_par.endpoints_spec)
    in
    let next =
      Baselines.Loadgen.request_stream ~seed ~qps ~endpoints:eps ~count:300 ()
    in
    let server = Visor.Server.create () in
    List.iter
      (fun (endpoint, workflow, bindings) ->
        Visor.Server.register server ~endpoint ~workflow ~bindings ())
      Test_par.endpoints_spec;
    let r =
      Visor.Server.serve_stream server ~window (fun () ->
          match next () with
          | None -> None
          | Some (endpoint, arrival) -> Some { Visor.Server.endpoint; arrival })
    in
    Visor.Server.shutdown server;
    r
  in
  let want = serve_list () in
  List.iter
    (fun window ->
      let got = serve_streamed window in
      Alcotest.(check string)
        (Printf.sprintf "window %d == materialised" window)
        (Test_par.fingerprint want ^ Test_par.summary want)
        (Test_par.fingerprint got ^ Test_par.summary got))
    [ 1; 17; 300; 4096 ]

let suite =
  [
    Alcotest.test_case "50k warm serve: complete, bounded, identical across domains"
      `Slow test_scale_50k;
    Alcotest.test_case "serve_stream == serve at every window" `Quick
      test_stream_matches_materialised_serve;
  ]
