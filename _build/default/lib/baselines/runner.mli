(** Shared stage-execution engine for the baseline platforms.

    All comparison systems run the same loop the AlloyStack
    orchestrator runs — dispatch each stage's instances, execute their
    kernels, list-schedule the measured durations on the host cores —
    differing only in the hooks: how an instance's sandbox boots, how
    the {!Fctx.t} transport is wired, and what memory each instance
    pins. *)

open Workloads

type instance_info = {
  stage_index : int;
  fn_name : string;
  instance : int;
  total : int;
}

type hooks = {
  boot : instance_info -> Sim.Clock.t -> unit;
      (** Bring up the instance's sandbox/thread; clock advances by the
          boot cost. *)
  make_fctx :
    instance_info ->
    clock:Sim.Clock.t ->
    phase:(string -> (unit -> unit) -> unit) ->
    Fctx.t;
  instance_rss : instance_info -> int;
      (** Resident bytes while the instance is alive. *)
  cpu_tax : float;  (** Sandbox slowdown applied to measured durations. *)
}

type result = {
  e2e : Sim.Units.time;
  cold_start : Sim.Units.time;
  phase_totals : (string * Sim.Units.time) list;
  cpu_time : Sim.Units.time;
  peak_rss : int;
}

val run :
  ?cores:int ->
  ?dispatch_latency:Sim.Units.time ->
  ?trigger_overhead:Sim.Units.time ->
  hooks ->
  (string * int * Fctx.kernel) list ->
  result
(** Execute the app's stages.  [trigger_overhead] models the platform's
    gateway/controller work before the first sandbox starts. *)
