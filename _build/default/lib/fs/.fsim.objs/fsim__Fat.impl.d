lib/fs/fat.ml: Array Blockdev Buffer Bytes Clock Hashtbl List Printf Sim Stdlib String Units
