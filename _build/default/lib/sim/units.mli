(** Time and size units for the simulated machine.

    All simulated durations are kept in nanoseconds as [int64] wrapped in
    an abstract {!time} type so that a raw integer cannot be confused with
    a duration.  Sizes are plain [int] byte counts with named
    constructors. *)

type time
(** A duration or instant on the virtual clock, in nanoseconds. *)

val zero : time

val ns : int -> time
val us : int -> time
val ms : int -> time
val sec : int -> time

val ns_f : float -> time
(** [ns_f x] rounds [x] nanoseconds to the nearest integral duration. *)

val us_f : float -> time
val ms_f : float -> time

val to_ns : time -> int64
val to_us : time -> float
val to_ms : time -> float
val to_sec : time -> float

val add : time -> time -> time
val sub : time -> time -> time
(** [sub a b] saturates at {!zero} rather than going negative. *)

val diff : time -> time -> time
(** [diff a b] is [abs (a - b)]. *)

val scale : time -> float -> time
val max : time -> time -> time
val min : time -> time -> time
val compare : time -> time -> int
val equal : time -> time -> bool
val ( + ) : time -> time -> time
val ( - ) : time -> time -> time
val ( < ) : time -> time -> bool
val ( <= ) : time -> time -> bool
val ( > ) : time -> time -> bool
val ( >= ) : time -> time -> bool

val pp : Format.formatter -> time -> unit
(** Human-readable rendering with an adaptive unit (ns, µs, ms, s). *)

val to_string : time -> string

(** {1 Sizes} *)

val kib : int -> int
val mib : int -> int
val gib : int -> int

val pp_bytes : Format.formatter -> int -> unit
(** Adaptive rendering of a byte count (B, KB, MB, GB). *)

val bytes_to_string : int -> string

(** {1 Rates} *)

val time_for_bytes : bytes_per_sec:float -> int -> time
(** [time_for_bytes ~bytes_per_sec n] is the duration needed to move [n]
    bytes at the given sustained bandwidth. *)

val gbit_per_sec : float -> float
(** [gbit_per_sec g] converts Gbit/s to bytes/s. *)

val mb_per_sec : float -> float
(** [mb_per_sec m] converts MB/s (10^6) to bytes/s. *)
