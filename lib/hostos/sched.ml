open Sim

type placement = { core : int; start : Units.time; finish : Units.time }

(* The pool keeps an index heap over cores keyed by
   (free_at, core index), so picking the next core is O(log cores)
   instead of a linear scan per task.  The secondary key reproduces the
   scan's tie-break exactly: among equally-free cores, the lowest
   index wins.  [pos] tracks each core's slot in [heap] so a core's
   key change re-sifts in O(log cores). *)
type pool = {
  free_at : Units.time array;
  heap : int array;  (** Core indices, min-heap by (free_at, index). *)
  pos : int array;  (** pos.(c) = index of core c within [heap]. *)
  mutable busy : Units.time;
      (** Running maximum of [free_at] (and [Units.zero]), maintained
          incrementally so {!busy_until} is O(1) instead of an
          O(cores) fold per call. *)
}

let core_before pool a b =
  let c = Units.compare pool.free_at.(a) pool.free_at.(b) in
  if c <> 0 then c < 0 else a < b

let heap_swap pool i j =
  let a = pool.heap.(i) and b = pool.heap.(j) in
  pool.heap.(i) <- b;
  pool.heap.(j) <- a;
  pool.pos.(b) <- i;
  pool.pos.(a) <- j

let rec sift_down pool i =
  let n = Array.length pool.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && core_before pool pool.heap.(l) pool.heap.(!smallest) then smallest := l;
  if r < n && core_before pool pool.heap.(r) pool.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    heap_swap pool i !smallest;
    sift_down pool !smallest
  end

(* All cores start equally free, so the identity permutation is a
   valid heap: key (t0, c) orders by index alone. *)
let pool_at ~cores t0 =
  if cores <= 0 then invalid_arg "Sched.pool: cores must be positive";
  {
    free_at = Array.make cores t0;
    heap = Array.init cores Fun.id;
    pos = Array.init cores Fun.id;
    busy = Units.max Units.zero t0;
  }

let pool ~cores = pool_at ~cores Units.zero

let pool_cores pool = Array.length pool.free_at

(* Per-domain freelists of released pool copies, keyed by core count:
   a [copy_pool] after a same-width [release_pool] blits into the
   recycled arrays instead of allocating three fresh ones.  Domain-
   local, so parallel trajectory workers never contend. *)
type pool_freelist = { mutable fl_items : pool list; mutable fl_len : int }

let freelist_cap = 64

let freelist_key : (int, pool_freelist) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let copy_pool pool =
  Sim.Hotspot.with_section "sched.copy_pool" @@ fun () ->
  let n = Array.length pool.free_at in
  let recycled =
    match Hashtbl.find_opt (Domain.DLS.get freelist_key) n with
    | Some ({ fl_items = dst :: rest; _ } as fl) ->
        fl.fl_items <- rest;
        fl.fl_len <- fl.fl_len - 1;
        Some dst
    | _ -> None
  in
  match recycled with
  | Some dst ->
      Array.blit pool.free_at 0 dst.free_at 0 n;
      Array.blit pool.heap 0 dst.heap 0 n;
      Array.blit pool.pos 0 dst.pos 0 n;
      dst.busy <- pool.busy;
      dst
  | None ->
      {
        free_at = Array.copy pool.free_at;
        heap = Array.copy pool.heap;
        pos = Array.copy pool.pos;
        busy = pool.busy;
      }

let release_pool pool =
  let n = Array.length pool.free_at in
  let tbl = Domain.DLS.get freelist_key in
  let fl =
    match Hashtbl.find_opt tbl n with
    | Some fl -> fl
    | None ->
        let fl = { fl_items = []; fl_len = 0 } in
        Hashtbl.add tbl n fl;
        fl
  in
  if fl.fl_len < freelist_cap then begin
    fl.fl_items <- pool :: fl.fl_items;
    fl.fl_len <- fl.fl_len + 1
  end

let restore_pool dst src =
  Sim.Hotspot.with_section "sched.restore_pool" @@ fun () ->
  let n = Array.length dst.free_at in
  if n <> Array.length src.free_at then
    invalid_arg "Sched.restore_pool: core counts differ";
  Array.blit src.free_at 0 dst.free_at 0 n;
  Array.blit src.heap 0 dst.heap 0 n;
  Array.blit src.pos 0 dst.pos 0 n;
  dst.busy <- src.busy

(* Rewind a pool to the all-cores-free state at [t0] in place: the
   identity permutation is a valid heap when every key is (t0, c). *)
let reset_pool pool t0 =
  Array.fill pool.free_at 0 (Array.length pool.free_at) t0;
  Array.iteri (fun i _ -> pool.heap.(i) <- i) pool.heap;
  Array.iteri (fun i _ -> pool.pos.(i) <- i) pool.pos;
  pool.busy <- Units.max Units.zero t0

(* Domain-local scratch pools, one per core count: per-attempt private
   pools in the serving trajectories are reset and reused instead of
   allocated fresh.  The caller owns the scratch until its next
   [scratch] call on the same domain with the same core count. *)
let scratch_key : (int, pool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let scratch ~cores =
  let tbl = Domain.DLS.get scratch_key in
  match Hashtbl.find_opt tbl cores with
  | Some p ->
      reset_pool p Units.zero;
      p
  | None ->
      let p = pool_at ~cores Units.zero in
      Hashtbl.add tbl cores p;
      p

let busy_until pool = pool.busy

let schedule_on pool ?(ready = Units.zero) ?(dispatch_latency = Units.zero) durations =
  let dispatch_clock = ref ready in
  let place d =
    (* The orchestrator dispatches tasks one after another. *)
    dispatch_clock := Units.add !dispatch_clock dispatch_latency;
    let core = pool.heap.(0) in
    let start = Units.max pool.free_at.(core) !dispatch_clock in
    let start = Units.max start ready in
    let finish = Units.add start d in
    pool.free_at.(core) <- finish;
    pool.busy <- Units.max pool.busy finish;
    sift_down pool 0;
    { core; start; finish }
  in
  List.map place durations

let schedule ~cores ?(ready = Units.zero) ?(dispatch_latency = Units.zero) durations =
  if cores <= 0 then invalid_arg "Sched.schedule: cores must be positive";
  let p = pool_at ~cores ready in
  schedule_on p ~ready ~dispatch_latency durations

let makespan placements =
  List.fold_left (fun acc p -> Units.max acc p.finish) Units.zero placements

let fan_in_wait placements =
  let m = makespan placements in
  List.map (fun p -> Units.sub m p.finish) placements

let same_core_pairs placements =
  (* Pair tasks that run back to back on the same core, in that core's
     execution order — which need not be list order once tasks skip
     over busy cores. *)
  let arr = Array.of_list placements in
  let by_core = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_core p.core) in
      Hashtbl.replace by_core p.core (i :: prev))
    arr;
  let pairs = ref [] in
  Hashtbl.iter
    (fun _core idxs ->
      let ordered =
        List.sort
          (fun a b ->
            let c = Units.compare arr.(a).start arr.(b).start in
            if c <> 0 then c else Stdlib.compare a b)
          (List.rev idxs)
      in
      let rec consecutive = function
        | a :: (b :: _ as rest) ->
            pairs := (a, b) :: !pairs;
            consecutive rest
        | [ _ ] | [] -> ()
      in
      consecutive ordered)
    by_core;
  List.sort compare !pairs
