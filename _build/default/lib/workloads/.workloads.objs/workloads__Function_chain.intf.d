lib/workloads/function_chain.mli: Fctx
