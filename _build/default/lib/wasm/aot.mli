(** Ahead-of-time compiler: lowers a module to OCaml closures.

    This is the Wasmtime-AOT analogue of the paper (§6, §7.2): the
    module is translated once into host-native code (here, a closure
    tree with no instruction dispatch), and calling an export runs the
    compiled form.  Results agree exactly with {!Interp} — a qcheck
    property in the test suite enforces it — while the per-instruction
    execution cost the runtime layer charges is the native one.

    Compilation yields an {e image} whose instruction stream can be fed
    to the {!Isa} blacklist scanner, preserving AlloyStack's
    admission-control path for WASM workloads. *)

exception Trap of string

type compiled

val compile : Wmodule.t -> compiled
(** Validates and compiles; raises [Invalid_argument] on validation
    failure. *)

val compiled_instr_count : compiled -> int

val to_image : compiled -> Isa.Image.t
(** The ELF-like image of the compiled module for instruction
    scanning.  AOT output never contains blacklisted opcodes: OS access
    is compiled to calls into the embedder. *)

type instance

type host_fn = instance -> int64 array -> int64

val instantiate : ?hosts:(string * host_fn) list -> compiled -> instance

val call : ?fuel:int -> instance -> string -> int64 array -> int64
val executed : instance -> int
val read_memory : instance -> int -> int -> bytes
val write_memory : instance -> int -> bytes -> unit
