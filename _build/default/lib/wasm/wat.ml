(* S-expression reader/printer for modules. *)

exception Parse_error of { line : int; message : string }

(* --- s-expressions --- *)

type sexp = Atom of string | Str of string | List of sexp list

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* Tokenizer: parens, quoted strings with backslash escapes, atoms;
   double-semicolon comments run to end of line. *)
type token = Lparen | Rparen | Tatom of string | Tstr of string

let tokenize input =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length input in
  let i = ref 0 in
  let push t = tokens := (t, !line) :: !tokens in
  while !i < n do
    (match input.[!i] with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | ';' when !i + 1 < n && input.[!i + 1] = ';' ->
        while !i < n && input.[!i] <> '\n' do
          incr i
        done
    | '(' ->
        push Lparen;
        incr i
    | ')' ->
        push Rparen;
        incr i
    | '"' ->
        let buf = Buffer.create 8 in
        incr i;
        let closed = ref false in
        while (not !closed) && !i < n do
          (match input.[!i] with
          | '"' -> closed := true
          | '\\' when !i + 1 < n ->
              incr i;
              Buffer.add_char buf
                (match input.[!i] with
                | 'n' -> '\n'
                | 't' -> '\t'
                | '"' -> '"'
                | '\\' -> '\\'
                | '0' -> '\000'
                | c -> c)
          | c -> Buffer.add_char buf c);
          incr i
        done;
        if not !closed then fail !line "unterminated string";
        push (Tstr (Buffer.contents buf))
    | _ ->
        let start = !i in
        let stop c = c = '(' || c = ')' || c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '"' in
        while !i < n && not (stop input.[!i]) do
          incr i
        done;
        push (Tatom (String.sub input start (!i - start))));
    ()
  done;
  List.rev !tokens

let parse_sexps tokens =
  let rec one = function
    | [] -> fail 0 "unexpected end of input"
    | (Lparen, _) :: rest ->
        let items, rest = many rest in
        (List items, rest)
    | (Rparen, line) :: _ -> fail line "unexpected ')'"
    | (Tatom a, _) :: rest -> (Atom a, rest)
    | (Tstr s, _) :: rest -> (Str s, rest)
  and many tokens =
    match tokens with
    | (Rparen, _) :: rest -> ([], rest)
    | [] -> fail 0 "missing ')'"
    | _ ->
        let item, rest = one tokens in
        let items, rest = many rest in
        (item :: items, rest)
  in
  let sexp, rest = one tokens in
  (match rest with
  | [] -> ()
  | (_, line) :: _ -> fail line "trailing content");
  sexp

(* --- printing --- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\000' -> Buffer.add_string buf "\\0"
      | c when Char.code c < 32 || Char.code c > 126 ->
          Buffer.add_string buf (Printf.sprintf "\\%c" c)
      | c -> Buffer.add_char buf c)
    s;
  "\"" ^ Buffer.contents buf ^ "\""

let binop_name = function
  | Instr.Add -> "add"
  | Instr.Sub -> "sub"
  | Instr.Mul -> "mul"
  | Instr.Div_s -> "div_s"
  | Instr.Rem_s -> "rem_s"
  | Instr.And -> "and"
  | Instr.Or -> "or"
  | Instr.Xor -> "xor"
  | Instr.Shl -> "shl"
  | Instr.Shr_s -> "shr_s"
  | Instr.Eq -> "eq"
  | Instr.Ne -> "ne"
  | Instr.Lt_s -> "lt_s"
  | Instr.Gt_s -> "gt_s"
  | Instr.Le_s -> "le_s"
  | Instr.Ge_s -> "ge_s"

let binop_of_name line = function
  | "add" -> Instr.Add
  | "sub" -> Instr.Sub
  | "mul" -> Instr.Mul
  | "div_s" -> Instr.Div_s
  | "rem_s" -> Instr.Rem_s
  | "and" -> Instr.And
  | "or" -> Instr.Or
  | "xor" -> Instr.Xor
  | "shl" -> Instr.Shl
  | "shr_s" -> Instr.Shr_s
  | "eq" -> Instr.Eq
  | "ne" -> Instr.Ne
  | "lt_s" -> Instr.Lt_s
  | "gt_s" -> Instr.Gt_s
  | "le_s" -> Instr.Le_s
  | "ge_s" -> Instr.Ge_s
  | other -> fail line "unknown binop %s" other

let rec instr_sexp = function
  | Instr.Nop -> List [ Atom "nop" ]
  | Instr.Unreachable -> List [ Atom "unreachable" ]
  | Instr.Const v -> List [ Atom "const"; Atom (Int64.to_string v) ]
  | Instr.Binop op -> List [ Atom (binop_name op) ]
  | Instr.Eqz -> List [ Atom "eqz" ]
  | Instr.Drop -> List [ Atom "drop" ]
  | Instr.Select -> List [ Atom "select" ]
  | Instr.Local_get n -> List [ Atom "local.get"; Atom (string_of_int n) ]
  | Instr.Local_set n -> List [ Atom "local.set"; Atom (string_of_int n) ]
  | Instr.Local_tee n -> List [ Atom "local.tee"; Atom (string_of_int n) ]
  | Instr.Global_get n -> List [ Atom "global.get"; Atom (string_of_int n) ]
  | Instr.Global_set n -> List [ Atom "global.set"; Atom (string_of_int n) ]
  | Instr.Load8 n -> List [ Atom "load8"; Atom (string_of_int n) ]
  | Instr.Load64 n -> List [ Atom "load64"; Atom (string_of_int n) ]
  | Instr.Store8 n -> List [ Atom "store8"; Atom (string_of_int n) ]
  | Instr.Store64 n -> List [ Atom "store64"; Atom (string_of_int n) ]
  | Instr.Memory_size -> List [ Atom "memory.size" ]
  | Instr.Memory_grow -> List [ Atom "memory.grow" ]
  | Instr.Block body -> List (Atom "block" :: List.map instr_sexp body)
  | Instr.Loop body -> List (Atom "loop" :: List.map instr_sexp body)
  | Instr.If (a, b) ->
      List
        [
          Atom "if";
          List (Atom "then" :: List.map instr_sexp a);
          List (Atom "else" :: List.map instr_sexp b);
        ]
  | Instr.Br n -> List [ Atom "br"; Atom (string_of_int n) ]
  | Instr.Br_if n -> List [ Atom "br_if"; Atom (string_of_int n) ]
  | Instr.Return -> List [ Atom "return" ]
  | Instr.Call n -> List [ Atom "call"; Atom (string_of_int n) ]

let module_sexp (m : Wmodule.t) =
  let fields =
    List.concat
      [
        List.map (fun i -> List [ Atom "import"; Str i ]) m.Wmodule.imports;
        [ List [ Atom "memory"; Atom (string_of_int m.Wmodule.memory_pages) ] ];
        List.map (fun g -> List [ Atom "global"; Atom (Int64.to_string g) ]) m.Wmodule.globals;
        List.map
          (fun (off, d) -> List [ Atom "data"; Atom (string_of_int off); Str d ])
          m.Wmodule.data;
        List.map
          (fun (f : Wmodule.func) ->
            List
              (Atom "func" :: Str f.Wmodule.fname
              :: List [ Atom "param"; Atom (string_of_int f.Wmodule.params) ]
              :: List [ Atom "local"; Atom (string_of_int f.Wmodule.locals) ]
              :: List.map instr_sexp f.Wmodule.body))
          m.Wmodule.funcs;
        List.map
          (fun (name, idx) -> List [ Atom "export"; Str name; Atom (string_of_int idx) ])
          m.Wmodule.exports;
      ]
  in
  List (Atom "module" :: Str m.Wmodule.name :: fields)

let rec render_sexp buf indent = function
  | Atom a -> Buffer.add_string buf a
  | Str s -> Buffer.add_string buf (escape s)
  | List items ->
      Buffer.add_char buf '(';
      let nested = List.exists (function List _ -> true | Atom _ | Str _ -> false) items in
      List.iteri
        (fun i item ->
          if i > 0 then
            if nested && (match item with List _ -> true | _ -> false) then begin
              Buffer.add_char buf '\n';
              Buffer.add_string buf (String.make (indent + 2) ' ')
            end
            else Buffer.add_char buf ' ';
          render_sexp buf (indent + 2) item)
        items;
      Buffer.add_char buf ')'

let print m =
  let buf = Buffer.create 512 in
  render_sexp buf 0 (module_sexp m);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- reading --- *)

let int_atom = function
  | Atom a -> begin
      match int_of_string_opt a with
      | Some v -> v
      | None -> fail 0 "expected integer, got %s" a
    end
  | Str _ | List _ -> fail 0 "expected integer"

let int64_atom = function
  | Atom a -> begin
      match Int64.of_string_opt a with
      | Some v -> v
      | None -> fail 0 "expected int64, got %s" a
    end
  | Str _ | List _ -> fail 0 "expected int64"

let str_atom = function
  | Str s -> s
  | Atom a -> fail 0 "expected string, got atom %s" a
  | List _ -> fail 0 "expected string"

let rec instr_of_sexp = function
  | List (Atom op :: args) -> begin
      match (op, args) with
      | "nop", [] -> Instr.Nop
      | "unreachable", [] -> Instr.Unreachable
      | "const", [ v ] -> Instr.Const (int64_atom v)
      | "eqz", [] -> Instr.Eqz
      | "drop", [] -> Instr.Drop
      | "select", [] -> Instr.Select
      | "local.get", [ n ] -> Instr.Local_get (int_atom n)
      | "local.set", [ n ] -> Instr.Local_set (int_atom n)
      | "local.tee", [ n ] -> Instr.Local_tee (int_atom n)
      | "global.get", [ n ] -> Instr.Global_get (int_atom n)
      | "global.set", [ n ] -> Instr.Global_set (int_atom n)
      | "load8", [ n ] -> Instr.Load8 (int_atom n)
      | "load64", [ n ] -> Instr.Load64 (int_atom n)
      | "store8", [ n ] -> Instr.Store8 (int_atom n)
      | "store64", [ n ] -> Instr.Store64 (int_atom n)
      | "memory.size", [] -> Instr.Memory_size
      | "memory.grow", [] -> Instr.Memory_grow
      | "block", body -> Instr.Block (List.map instr_of_sexp body)
      | "loop", body -> Instr.Loop (List.map instr_of_sexp body)
      | "if", [ List (Atom "then" :: a); List (Atom "else" :: b) ] ->
          Instr.If (List.map instr_of_sexp a, List.map instr_of_sexp b)
      | "br", [ n ] -> Instr.Br (int_atom n)
      | "br_if", [ n ] -> Instr.Br_if (int_atom n)
      | "return", [] -> Instr.Return
      | "call", [ n ] -> Instr.Call (int_atom n)
      | op, [] -> Instr.Binop (binop_of_name 0 op)
      | op, _ -> fail 0 "malformed instruction (%s ...)" op
    end
  | Atom a -> fail 0 "bare atom %s where instruction expected" a
  | Str _ -> fail 0 "string where instruction expected"
  | List _ -> fail 0 "malformed instruction"

let func_of_sexp = function
  | List (Atom "func" :: name :: List [ Atom "param"; p ] :: List [ Atom "local"; l ] :: body)
    ->
      {
        Wmodule.fname = str_atom name;
        params = int_atom p;
        locals = int_atom l;
        body = List.map instr_of_sexp body;
      }
  | _ -> fail 0 "malformed (func ...) — expected (func \"name\" (param N) (local N) instr...)"

let parse input =
  let tokens = tokenize input in
  if tokens = [] then fail 0 "empty input";
  match parse_sexps tokens with
  | List (Atom "module" :: name :: fields) ->
      let name = str_atom name in
      let imports = ref [] in
      let memory = ref 1 in
      let globals = ref [] in
      let data = ref [] in
      let funcs = ref [] in
      let exports = ref [] in
      List.iter
        (fun field ->
          match field with
          | List [ Atom "import"; s ] -> imports := str_atom s :: !imports
          | List [ Atom "memory"; n ] -> memory := int_atom n
          | List [ Atom "global"; v ] -> globals := int64_atom v :: !globals
          | List [ Atom "data"; off; d ] -> data := (int_atom off, str_atom d) :: !data
          | List (Atom "func" :: _) -> funcs := func_of_sexp field :: !funcs
          | List [ Atom "export"; n; idx ] ->
              exports := (str_atom n, int_atom idx) :: !exports
          | List (Atom f :: _) -> fail 0 "unknown module field %s" f
          | _ -> fail 0 "malformed module field")
        fields;
      Wmodule.create ~imports:(List.rev !imports) ~globals:(List.rev !globals)
        ~memory_pages:!memory ~data:(List.rev !data) ~exports:(List.rev !exports) ~name
        (List.rev !funcs)
  | _ -> fail 0 "expected (module ...)"

let parse_result input =
  match parse input with
  | m -> Ok m
  | exception Parse_error { line; message } ->
      Error (Printf.sprintf "line %d: %s" line message)
