(** Declarative SLOs with multi-window burn-rate alerting.

    An SLO names a latency threshold and an availability objective: a
    request is {e good} when it succeeds within the threshold, and the
    objective says what fraction must be good (e.g. 0.999).  The
    monitor buckets requests into fixed windows of virtual time and
    evaluates the Google-SRE multi-window multi-burn-rate rule at each
    window close: with error budget [1 - objective], the burn rate of
    a lookback window is [(bad / total) / budget], and a {e page}
    fires when {e both} the fast window (default 5 virtual minutes)
    and the slow window (default 1 virtual hour) burn at or above the
    threshold (default 14.4 — the rate that exhausts a 30-day budget
    in 2 days).  The alert {e clears} when both drop back below.

    Everything is driven by the virtual clock, so alert instants are
    deterministic: identical request streams produce byte-identical
    alert logs on any host and any domain count. *)

type spec = {
  slo_name : string;
  slo_latency : Units.time;  (** Good iff ok and latency <= this. *)
  slo_objective : float;  (** Target good fraction, in (0,1). *)
  slo_fast : Units.time;  (** Fast lookback window. *)
  slo_slow : Units.time;  (** Slow lookback window. *)
  slo_burn : float;  (** Page when both burns reach this. *)
}

val spec :
  ?objective:float ->
  ?fast:Units.time ->
  ?slow:Units.time ->
  ?burn:float ->
  name:string ->
  latency:Units.time ->
  unit ->
  spec
(** Defaults: objective 0.999, fast 5 min, slow 1 h, burn 14.4.
    Raises [Invalid_argument] when the objective is outside (0,1) or a
    window is shorter than the bucket width. *)

type kind = Page | Clear

type alert = {
  al_slo : string;
  al_kind : kind;
  al_at : Units.time;  (** The closing edge of the triggering bucket. *)
  al_fast : float;  (** Fast-window burn rate at that instant. *)
  al_slow : float;  (** Slow-window burn rate. *)
}

type t

val create : ?bucket:Units.time -> spec -> t
(** [bucket] is the evaluation granularity (default 1 virtual second);
    lookback windows are rounded up to whole buckets. *)

val observe : t -> at:Units.time -> good:bool -> unit
(** Record one request finishing at [at].  Instants must be
    nondecreasing — feed from a virtual-time-ordered stream (the
    serving merge loop already is one). *)

val observe_request : t -> at:Units.time -> ok:bool -> latency:Units.time -> unit
(** [observe] with the spec's goodness rule applied: good iff [ok] and
    [latency <= slo_latency]. *)

val finish : t -> at:Units.time -> unit
(** Close every bucket up to and including the one containing [at], so
    alerts pending in the final partial window fire. *)

val alerts : t -> alert list
(** Pages and clears so far, in firing order. *)

val paging : t -> bool
(** Whether the monitor is currently in a paged state. *)

val good : t -> int
val total : t -> int

val burn_rates : t -> float * float
(** [(fast, slow)] burn rates as of the last closed bucket; [(0,0)]
    before any close.  A burn of 1.0 consumes the budget exactly at
    the sustainable rate. *)

val compliance : t -> float
(** Overall good fraction so far; 1.0 when no requests. *)

val name : t -> string
val render_alert : alert -> string
(** One-line rendering, e.g.
    ["slo checkout PAGE at 312s (burn fast 15.20 slow 14.58)"]. *)
