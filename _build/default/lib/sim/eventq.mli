(** Time-ordered event queue (binary min-heap).

    Drives the open-loop load generator and any component that needs
    future-scheduled callbacks.  Ties are broken by insertion order so
    simulation runs are fully deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> at:Units.time -> 'a -> unit
(** Schedule a payload at the given instant. *)

val pop : 'a t -> (Units.time * 'a) option
(** Remove and return the earliest event. *)

val peek : 'a t -> (Units.time * 'a) option

val drain : 'a t -> (Units.time -> 'a -> unit) -> unit
(** [drain t f] pops every event in time order and applies [f].  Events
    pushed by [f] itself are processed too, so [f] must eventually stop
    scheduling. *)
