(** Uniform filesystem interface over {!Fat}, {!Extfs} and {!Ramfs}.

    The as-libos fatfs module and the baseline platforms are written
    against this interface so a workflow can be re-run on a different
    backing filesystem (the Fig. 16 ramfs experiment) without touching
    workload code. *)

type t = {
  name : string;
  write_file : ?clock:Sim.Clock.t -> string -> bytes -> unit;
  read_file : ?clock:Sim.Clock.t -> string -> bytes;
  file_size : string -> int;
  exists : string -> bool;
  delete : string -> unit;
  list_files : unit -> string list;
  reset : (unit -> unit) option;
      (** Re-format the backing image in place; [None] when the backend
          doesn't support in-place recycling (use {!recycle}). *)
}

exception Io_error of { op : string; path : string }
(** A transient device error injected by a fault plan. *)

val with_faults : Sim.Fault.t -> t -> t
(** Wrap a filesystem so that every [read_file] / [write_file] consults
    the plan's [vfs.read] / [vfs.write] injection sites first; a fired
    fault raises {!Io_error} instead of touching the backing store
    (the operation is transient — retrying consults the plan again). *)

val of_fat : Fat.t -> t
val of_extfs : Extfs.t -> t
val of_ramfs : Ramfs.t -> t

val fresh_fat : ?mib:int -> unit -> t
(** Format a new FAT fs on a fresh device of the given size
    (default 2048 MiB, enough for the 300 MB WordCount inputs plus
    intermediates). *)

val fresh_extfs : ?mib:int -> unit -> t
val fresh_ramfs : unit -> t

val recycle : t -> bool
(** Re-format a per-request scratch image in place, reusing its arenas:
    after [recycle t = true] the image is bit-identical in behaviour to
    a matching [fresh_*] one (contents, directories, device geometry
    and op counters all as new).  Returns [false] — image untouched —
    when the backend doesn't support it (extfs, ramfs, fault-wrapped
    views).  The serving path recycles WFD scratch disks this way
    instead of formatting ~one device per request. *)
