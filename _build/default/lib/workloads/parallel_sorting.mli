(** ParallelSorting: the classic parallel sample-free range sort.

    High parallelism, dense intermediate data.  Stage structure:
    [split -> sort xP -> merge]: the splitter range-partitions the
    uniformly-random 4-byte records into P buckets by their top bits,
    each sorter really sorts its bucket, and the merger concatenates
    the buckets (already ordered bucket-to-bucket) and verifies global
    sortedness. *)

val input_path : string
val output_path : string

val app : seed:int -> size:int -> instances:int -> Fctx.app
(** [size] is the input byte count (rounded down to whole records). *)

(** {1 Internals exposed for tests} *)

val sort_records : bytes -> bytes
(** Real unsigned sort of the 4-byte records. *)

val is_sorted : bytes -> bool
val bucket_of : int32 -> buckets:int -> int
