test/test_wasm.ml: Alcotest Aot Array Buffer Builder Bytes Char Encode Format Hashtbl Instr Int64 Interp Isa List QCheck QCheck_alcotest Runtime Sim Validate Wasi Wasm Wat Wmodule
