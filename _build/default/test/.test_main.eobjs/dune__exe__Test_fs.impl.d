test/test_fs.ml: Alcotest Blockdev Bytes Char Clock Extfs Fat Fsim Gen Hashtbl List Mem_free Option Printf QCheck QCheck_alcotest Ramfs Sim Units Vfs
