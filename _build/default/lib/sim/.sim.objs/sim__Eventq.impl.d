lib/sim/eventq.ml: Array Stdlib Units
