exception Trap of string

type t = {
  m : Wmodule.t;
  imports : string array;  (** Pre-resolved from the module's list. *)
  n_imports : int;
  funcs : Wmodule.func array;  (** Local functions by slot. *)
  import_fns : host_fn array;  (** Host bindings resolved at instantiate. *)
  mutable memory : Bytes.t;
  globals : int64 array;
  mutable executed : int;
  mutable host_calls : int;
  mutable fuel : int;
}

and host_fn = t -> int64 array -> int64

let max_pages = 4096 (* 256 MiB of linear memory *)

let trap fmt = Format.kasprintf (fun s -> raise (Trap s)) fmt

(* Growable operand stack: pushes and pops are array stores with no
   per-element cons cell.  [top] is the next free slot. *)
type vstack = { mutable buf : int64 array; mutable top : int }

let stack_make () = { buf = Array.make 32 0L; top = 0 }

let stack_push st v =
  let n = Array.length st.buf in
  if st.top = n then begin
    let bigger = Array.make (2 * n) 0L in
    Array.blit st.buf 0 bigger 0 n;
    st.buf <- bigger
  end;
  Array.unsafe_set st.buf st.top v;
  st.top <- st.top + 1

let stack_pop st =
  if st.top = 0 then trap "value stack underflow";
  st.top <- st.top - 1;
  Array.unsafe_get st.buf st.top

let stack_peek st =
  if st.top = 0 then trap "value stack underflow";
  Array.unsafe_get st.buf (st.top - 1)

let instantiate ?(hosts = []) m =
  Validate.validate_exn m;
  let table = Hashtbl.create 8 in
  List.iter (fun (name, fn) -> Hashtbl.replace table name fn) hosts;
  List.iter
    (fun name ->
      if not (Hashtbl.mem table name) then
        invalid_arg (Printf.sprintf "Wasm.Interp: missing host import %s" name))
    m.Wmodule.imports;
  let memory = Bytes.make (m.Wmodule.memory_pages * Wmodule.page_size) '\000' in
  List.iter
    (fun (off, data) -> Bytes.blit_string data 0 memory off (String.length data))
    m.Wmodule.data;
  let imports = Array.of_list m.Wmodule.imports in
  {
    m;
    imports;
    n_imports = Array.length imports;
    funcs = Array.of_list m.Wmodule.funcs;
    import_fns = Array.map (fun name -> Hashtbl.find table name) imports;
    memory;
    globals = Array.of_list m.Wmodule.globals;
    executed = 0;
    host_calls = 0;
    fuel = max_int;
  }

(* Control-flow outcome of executing a block body. *)
type control = Fall | Branch of int | Ret

let check_mem t addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.memory then
    trap "memory access out of bounds: %d (+%d) of %d" addr len (Bytes.length t.memory)

let apply_binop op a b =
  let open Int64 in
  let bool v = if v then 1L else 0L in
  match op with
  | Instr.Add -> add a b
  | Instr.Sub -> sub a b
  | Instr.Mul -> mul a b
  | Instr.Div_s -> if b = 0L then trap "integer divide by zero" else div a b
  | Instr.Rem_s -> if b = 0L then trap "integer divide by zero" else rem a b
  | Instr.And -> logand a b
  | Instr.Or -> logor a b
  | Instr.Xor -> logxor a b
  | Instr.Shl -> shift_left a (to_int (logand b 63L))
  | Instr.Shr_s -> shift_right a (to_int (logand b 63L))
  | Instr.Eq -> bool (equal a b)
  | Instr.Ne -> bool (not (equal a b))
  | Instr.Lt_s -> bool (compare a b < 0)
  | Instr.Gt_s -> bool (compare a b > 0)
  | Instr.Le_s -> bool (compare a b <= 0)
  | Instr.Ge_s -> bool (compare a b >= 0)

let local_func t idx =
  let slot = idx - t.n_imports in
  if slot >= 0 && slot < Array.length t.funcs then Some t.funcs.(slot) else None

let rec call_function t idx args =
  if idx >= 0 && idx < t.n_imports then begin
    t.host_calls <- t.host_calls + 1;
    (Array.unsafe_get t.import_fns idx) t args
  end
  else begin
    match local_func t idx with
    | None -> trap "call to undefined function %d" idx
    | Some f ->
        if Array.length args <> f.Wmodule.params then
          trap "%s expects %d args, got %d" f.Wmodule.fname f.Wmodule.params
            (Array.length args);
        let locals = Array.make (f.Wmodule.params + f.Wmodule.locals) 0L in
        Array.blit args 0 locals 0 (Array.length args);
        let stack = stack_make () in
        let _ = exec_body t locals stack f.Wmodule.body in
        if stack.top = 0 then 0L else stack.buf.(stack.top - 1)
  end

and exec_body t locals stack body =
  let rec exec_seq = function
    | [] -> Fall
    | instr :: rest -> begin
        match exec_instr instr with
        | Fall -> exec_seq rest
        | (Branch _ | Ret) as c -> c
      end
  and pop () = stack_pop stack
  and push v = stack_push stack v
  and exec_instr instr =
    t.executed <- t.executed + 1;
    t.fuel <- t.fuel - 1;
    if t.fuel < 0 then trap "out of fuel";
    match instr with
    | Instr.Nop -> Fall
    | Instr.Unreachable -> trap "unreachable executed"
    | Instr.Const v ->
        push v;
        Fall
    | Instr.Binop op ->
        let b = pop () in
        let a = pop () in
        push (apply_binop op a b);
        Fall
    | Instr.Eqz ->
        let v = pop () in
        push (if Int64.equal v 0L then 1L else 0L);
        Fall
    | Instr.Drop ->
        ignore (pop ());
        Fall
    | Instr.Select ->
        let cond = pop () in
        let b = pop () in
        let a = pop () in
        push (if Int64.equal cond 0L then b else a);
        Fall
    | Instr.Local_get i ->
        push locals.(i);
        Fall
    | Instr.Local_set i ->
        locals.(i) <- pop ();
        Fall
    | Instr.Local_tee i ->
        locals.(i) <- stack_peek stack;
        Fall
    | Instr.Global_get i ->
        push t.globals.(i);
        Fall
    | Instr.Global_set i ->
        t.globals.(i) <- pop ();
        Fall
    | Instr.Load8 off ->
        let addr = Int64.to_int (pop ()) + off in
        check_mem t addr 1;
        push (Int64.of_int (Char.code (Bytes.get t.memory addr)));
        Fall
    | Instr.Load64 off ->
        let addr = Int64.to_int (pop ()) + off in
        check_mem t addr 8;
        push (Bytes.get_int64_le t.memory addr);
        Fall
    | Instr.Store8 off ->
        let v = pop () in
        let addr = Int64.to_int (pop ()) + off in
        check_mem t addr 1;
        Bytes.set t.memory addr (Char.chr (Int64.to_int (Int64.logand v 0xFFL)));
        Fall
    | Instr.Store64 off ->
        let v = pop () in
        let addr = Int64.to_int (pop ()) + off in
        check_mem t addr 8;
        Bytes.set_int64_le t.memory addr v;
        Fall
    | Instr.Memory_size ->
        push (Int64.of_int (Bytes.length t.memory / Wmodule.page_size));
        Fall
    | Instr.Memory_grow ->
        let delta = Int64.to_int (pop ()) in
        let old_pages = Bytes.length t.memory / Wmodule.page_size in
        if delta < 0 || old_pages + delta > max_pages then push (-1L)
        else begin
          let bigger = Bytes.make ((old_pages + delta) * Wmodule.page_size) '\000' in
          Bytes.blit t.memory 0 bigger 0 (Bytes.length t.memory);
          t.memory <- bigger;
          push (Int64.of_int old_pages)
        end;
        Fall
    | Instr.Block body -> begin
        match exec_seq body with
        | Fall | Branch 0 -> Fall
        | Branch n -> Branch (n - 1)
        | Ret -> Ret
      end
    | Instr.Loop body -> exec_loop body
    | Instr.If (then_, else_) -> begin
        let cond = pop () in
        let body = if Int64.equal cond 0L then else_ else then_ in
        match exec_seq body with
        | Fall | Branch 0 -> Fall
        | Branch n -> Branch (n - 1)
        | Ret -> Ret
      end
    | Instr.Br n -> Branch n
    | Instr.Br_if n ->
        let cond = pop () in
        if Int64.equal cond 0L then Fall else Branch n
    | Instr.Return -> Ret
    | Instr.Call idx ->
        let callee_params =
          if idx >= 0 && idx < t.n_imports then begin
            (* Host imports in this machine take their arity from the
               stack contract: we pass the whole accessible frame.  To
               keep arity explicit we adopt the convention that host
               functions receive 3 arguments. *)
            3
          end
          else begin
            match local_func t idx with
            | Some f -> f.Wmodule.params
            | None -> trap "call to undefined function %d" idx
          end
        in
        let args = Array.make callee_params 0L in
        for i = callee_params - 1 downto 0 do
          args.(i) <- pop ()
        done;
        push (call_function t idx args);
        Fall
  and exec_loop body =
    match exec_seq body with
    | Branch 0 -> exec_loop body (* br to a loop label restarts it *)
    | Fall -> Fall
    | Branch n -> Branch (n - 1)
    | Ret -> Ret
  in
  exec_seq body

let call ?(fuel = 200_000_000) t name args =
  match Wmodule.lookup_export t.m name with
  | None -> invalid_arg (Printf.sprintf "Wasm.Interp: no export %s" name)
  | Some idx ->
      t.fuel <- fuel;
      call_function t idx args

let call_index ?(fuel = 200_000_000) t idx args =
  t.fuel <- fuel;
  call_function t idx args

let memory_size t = Bytes.length t.memory

let read_memory t addr len =
  check_mem t addr len;
  Bytes.sub t.memory addr len

let write_memory t addr data =
  check_mem t addr (Bytes.length data);
  Bytes.blit data 0 t.memory addr (Bytes.length data)

let read_global t i = t.globals.(i)

let executed t = t.executed
let host_calls t = t.host_calls
let module_of t = t.m
