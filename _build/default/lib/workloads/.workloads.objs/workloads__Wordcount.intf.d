lib/workloads/wordcount.mli: Fctx Hashtbl
