(** Cold-start measurements for the single-function runtimes of
    Fig. 10 (no-ops benchmark): AlloyStack (on-demand and load-all),
    Faastlane-T, Wasmer (process and thread), Virtines, Unikraft,
    gVisor, Kata, Faasm and the Python variants. *)

type entry = { label : string; cold_start : Sim.Units.time }

val figure10 : unit -> entry list
(** Runs the AlloyStack cold starts for real (through {!Visor}) and
    reads the boot models for the comparison systems. *)

val wasmer_process : Sim.Units.time
val wasmer_thread : Sim.Units.time
val alloystack_cold : unit -> Sim.Units.time
val alloystack_load_all : unit -> Sim.Units.time
