(* Tests for Visor.Server: the warm template pool, admission cache,
   concurrent serving over shared cores, LRU eviction and WFD
   hygiene. *)

open Sim
open Alloystack_core

let check_time = Alcotest.testable Units.pp Units.equal

let node ?(instances = 1) ?(language = Workflow.Rust) ?(modules = []) id =
  { Workflow.node_id = id; language; instances; required_modules = modules }

let compute_wf ms =
  Workflow.create_exn ~name:(Printf.sprintf "compute%d" ms)
    ~nodes:[ node "f" ] ~edges:[]

let compute_bindings ms =
  [ ("f", Visor.bind (fun (ctx : Asstd.ctx) ~instance:_ ~total:_ ->
         Asstd.compute ctx (Units.ms ms))) ]

let req ?(endpoint = "e") at_ms = { Visor.Server.endpoint; arrival = Units.ms at_ms }

let serve_simple ?config ?pool_mem_cap ?warm ~requests () =
  let server = Visor.Server.create ?config ?pool_mem_cap ?warm () in
  Visor.Server.register server ~endpoint:"e" ~workflow:(compute_wf 10)
    ~bindings:(compute_bindings 10) ();
  let r = Visor.Server.serve server requests in
  Visor.Server.shutdown server;
  r

let test_warm_start_beats_cold () =
  (* One prewarmed request vs one cold request: the template clone path
     must be strictly cheaper end to end. *)
  let warm_server = Visor.Server.create () in
  Visor.Server.register warm_server ~endpoint:"e" ~workflow:(compute_wf 10)
    ~bindings:(compute_bindings 10) ();
  (match Visor.Server.prewarm warm_server ~endpoint:"e" with
  | Some t -> Alcotest.(check bool) "template build takes time" true (Units.( > ) t Units.zero)
  | None -> Alcotest.fail "prewarm must install a template");
  let warm = Visor.Server.serve warm_server [ req 0 ] in
  Visor.Server.shutdown warm_server;
  let cold = serve_simple ~warm:false ~requests:[ req 0 ] () in
  let latency (r : Visor.Server.serve_report) =
    match r.Visor.Server.responses with
    | [ resp ] -> resp.Visor.Server.r_latency
    | _ -> Alcotest.fail "expected one response"
  in
  Alcotest.(check int) "warm start" 1 warm.Visor.Server.warm_starts;
  Alcotest.(check int) "cold start" 1 cold.Visor.Server.cold_starts;
  Alcotest.(check bool)
    (Printf.sprintf "warm (%s) strictly below cold (%s)"
       (Units.to_string (latency warm))
       (Units.to_string (latency cold)))
    true
    (Units.( < ) (latency warm) (latency cold))

let test_first_request_seeds_pool () =
  (* Without an explicit prewarm, the first (cold) request installs the
     template so the rest of the burst starts warm. *)
  let r = serve_simple ~requests:(List.init 5 (fun i -> req (i * 40))) () in
  Alcotest.(check int) "one cold" 1 r.Visor.Server.cold_starts;
  Alcotest.(check int) "rest warm" 4 r.Visor.Server.warm_starts

let test_sustains_32_inflight () =
  (* An open-loop burst of 40 simultaneous arrivals: all are admitted
     and executing concurrently before the first completes. *)
  let r = serve_simple ~requests:(List.init 40 (fun _ -> req 0)) () in
  Alcotest.(check int) "all completed" 40 r.Visor.Server.completed;
  Alcotest.(check bool)
    (Printf.sprintf "held >= 32 in flight (got %d)" r.Visor.Server.max_inflight)
    true
    (r.Visor.Server.max_inflight >= 32)

let test_stages_share_cores () =
  (* Two single-function 10ms workflows on a 1-core machine serialise;
     on 2 cores they overlap.  The shared scheduler pool is what makes
     in-flight workflows contend. *)
  let run cores =
    let config = { Visor.default_config with Visor.cores } in
    let r = serve_simple ~config ~requests:[ req 0; req 0 ] () in
    r.Visor.Server.duration
  in
  let serial = run 1 and parallel = run 2 in
  Alcotest.(check bool)
    (Printf.sprintf "1 core (%s) ~2x of 2 cores (%s)" (Units.to_string serial)
       (Units.to_string parallel))
    true
    (Units.( >= ) serial (Units.add parallel (Units.ms 9)))

let test_lru_eviction_under_cap () =
  (* Cap the pool below two templates: warming a second endpoint must
     evict the least-recently-used first one. *)
  let probe = Visor.Server.create () in
  Visor.Server.register probe ~endpoint:"a" ~workflow:(compute_wf 1)
    ~bindings:(compute_bindings 1) ();
  ignore (Visor.Server.prewarm probe ~endpoint:"a");
  let one_template = Visor.Server.pool_rss probe in
  Visor.Server.shutdown probe;
  Alcotest.(check bool) "template has measurable rss" true (one_template > 0);
  let server = Visor.Server.create ~pool_mem_cap:(one_template * 3 / 2) () in
  List.iter
    (fun ep ->
      Visor.Server.register server ~endpoint:ep ~workflow:(compute_wf 1)
        ~bindings:(compute_bindings 1) ())
    [ "a"; "b" ];
  ignore (Visor.Server.prewarm server ~endpoint:"a");
  Alcotest.(check int) "one pooled" 1 (Visor.Server.pool_size server);
  ignore (Visor.Server.prewarm server ~endpoint:"b");
  Alcotest.(check int) "still one pooled" 1 (Visor.Server.pool_size server);
  Alcotest.(check int) "a evicted" 1 (Visor.Server.evictions server);
  Alcotest.(check bool) "pool stays under cap" true
    (Visor.Server.pool_rss server <= one_template * 3 / 2);
  (* Serving endpoint a again boots cold (its template was evicted). *)
  let r = Visor.Server.serve server [ req ~endpoint:"a" 0 ] in
  Alcotest.(check int) "evicted endpoint boots cold" 1 r.Visor.Server.cold_starts;
  Visor.Server.shutdown server

let test_admission_cache_across_requests () =
  let image =
    Isa.Image.create ~name:"img" ~toolchain:Isa.Image.Rust_as_std
      [ Isa.Inst.Mov_reg; Isa.Inst.Call "as_std_open"; Isa.Inst.Ret ]
  in
  let bindings =
    [ ("f", Visor.bind ~image (fun (ctx : Asstd.ctx) ~instance:_ ~total:_ ->
           Asstd.compute ctx (Units.ms 1))) ]
  in
  let server = Visor.Server.create () in
  Visor.Server.register server ~endpoint:"e" ~workflow:(compute_wf 1) ~bindings ();
  let r = Visor.Server.serve server (List.init 6 (fun i -> req (i * 5))) in
  Visor.Server.shutdown server;
  Alcotest.(check int) "all served" 6 r.Visor.Server.completed;
  Alcotest.(check int) "image scanned once" 1 r.Visor.Server.adm_scans;
  Alcotest.(check int) "five cache hits" 5 r.Visor.Server.adm_hits

let test_no_wfd_leak_across_serve () =
  (* Mixed success/failure traffic, then shutdown: every WFD (requests,
     retries and templates) must be reclaimed. *)
  let before = Wfd.live_count () in
  let failing =
    [ ("f", Visor.bind (fun (_ : Asstd.ctx) ~instance:_ ~total:_ -> failwith "boom")) ]
  in
  let config = { Visor.default_config with Visor.retry = Visor.Retry_workflow 2 } in
  let server = Visor.Server.create ~config () in
  Visor.Server.register server ~endpoint:"ok" ~workflow:(compute_wf 5)
    ~bindings:(compute_bindings 5) ();
  Visor.Server.register server ~endpoint:"bad" ~workflow:(compute_wf 5) ~bindings:failing ();
  let r =
    Visor.Server.serve server
      [ req ~endpoint:"ok" 0; req ~endpoint:"bad" 1; req ~endpoint:"ok" 2;
        req ~endpoint:"bad" 3 ]
  in
  Alcotest.(check int) "successes" 2 r.Visor.Server.completed;
  Alcotest.(check int) "failures" 2 r.Visor.Server.failed;
  let failed_resp =
    List.filter (fun (resp : Visor.Server.response) -> not resp.Visor.Server.r_ok)
      r.Visor.Server.responses
  in
  List.iter
    (fun (resp : Visor.Server.response) ->
      Alcotest.(check int) "both workflow attempts consumed" 2
        resp.Visor.Server.r_attempts)
    failed_resp;
  Visor.Server.shutdown server;
  Alcotest.(check int) "all WFDs reclaimed" before (Wfd.live_count ())

let test_same_seed_bit_identical () =
  (* Identically seeded traces produce identical reports. *)
  let trace seed =
    let rng = Rng.create seed in
    let t = ref 0.0 in
    List.init 20 (fun _ ->
        t := !t +. Rng.exponential rng ~mean:0.002;
        { Visor.Server.endpoint = "e"; arrival = Units.ns_f (!t *. 1e9) })
  in
  let summarise (r : Visor.Server.serve_report) =
    ( r.Visor.Server.completed,
      r.Visor.Server.max_inflight,
      List.map
        (fun (resp : Visor.Server.response) ->
          (resp.Visor.Server.r_endpoint, Units.to_ns resp.Visor.Server.r_latency,
           resp.Visor.Server.r_warm))
        r.Visor.Server.responses )
  in
  let a = summarise (serve_simple ~requests:(trace 7) ()) in
  let b = summarise (serve_simple ~requests:(trace 7) ()) in
  Alcotest.(check bool) "identical runs" true (a = b);
  let c = summarise (serve_simple ~requests:(trace 8) ()) in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_unknown_endpoint_and_duplicates () =
  let server = Visor.Server.create () in
  Visor.Server.register server ~endpoint:"e" ~workflow:(compute_wf 1)
    ~bindings:(compute_bindings 1) ();
  (match Visor.Server.register server ~endpoint:"e" ~workflow:(compute_wf 1)
           ~bindings:(compute_bindings 1) () with
  | () -> Alcotest.fail "duplicate endpoint must be rejected"
  | exception Invalid_argument _ -> ());
  (match Visor.Server.serve server [ req ~endpoint:"nope" 0 ] with
  | _ -> Alcotest.fail "unknown endpoint must raise"
  | exception Not_found -> ());
  Alcotest.(check (list string)) "endpoints listed" [ "e" ]
    (Visor.Server.endpoints server);
  Visor.Server.shutdown server

let test_warm_python_resumes_runtime () =
  (* A Python endpoint's template carries the booted engine + CPython;
     the clone resumes instead of re-booting, which is where the warm
     pool pays off most (Fig. 10's AS-Py cold start). *)
  let wf =
    Workflow.create_exn ~name:"py" ~nodes:[ node ~language:Workflow.Python "f" ] ~edges:[]
  in
  let bindings = compute_bindings 1 in
  let run warm =
    let server = Visor.Server.create ~warm () in
    Visor.Server.register server ~endpoint:"py" ~workflow:wf ~bindings ();
    if warm then ignore (Visor.Server.prewarm server ~endpoint:"py");
    let r = Visor.Server.serve server [ req ~endpoint:"py" 0 ] in
    Visor.Server.shutdown server;
    match r.Visor.Server.responses with
    | [ resp ] -> resp.Visor.Server.r_latency
    | _ -> Alcotest.fail "one response expected"
  in
  let warm = run true and cold = run false in
  Alcotest.(check bool)
    (Printf.sprintf "python warm (%s) well below cold (%s)" (Units.to_string warm)
       (Units.to_string cold))
    true
    (* The cold path pays the full CPython boot; warm resumes it. *)
    (Units.( < ) (Units.add warm Wasm.Runtime.cpython_init) (Units.add cold (Units.ms 50)))

let test_serve_report_percentiles () =
  let r = serve_simple ~requests:(List.init 10 (fun i -> req (i * 30))) () in
  Alcotest.(check bool) "p50 <= p99" true
    (Units.( <= ) r.Visor.Server.p50_latency r.Visor.Server.p99_latency);
  Alcotest.(check bool) "throughput positive" true (r.Visor.Server.throughput_rps > 0.0);
  Alcotest.check check_time "duration spans trace" r.Visor.Server.duration
    (Units.sub
       (List.fold_left
          (fun acc (resp : Visor.Server.response) ->
            Units.max acc resp.Visor.Server.r_finish)
          Units.zero r.Visor.Server.responses)
       Units.zero)

let suite =
  [
    Alcotest.test_case "warm start beats cold" `Quick test_warm_start_beats_cold;
    Alcotest.test_case "first request seeds pool" `Quick test_first_request_seeds_pool;
    Alcotest.test_case "sustains 32 in flight" `Quick test_sustains_32_inflight;
    Alcotest.test_case "stages share cores" `Quick test_stages_share_cores;
    Alcotest.test_case "LRU eviction under cap" `Quick test_lru_eviction_under_cap;
    Alcotest.test_case "admission cache across requests" `Quick
      test_admission_cache_across_requests;
    Alcotest.test_case "no wfd leak across serve" `Quick test_no_wfd_leak_across_serve;
    Alcotest.test_case "same seed bit identical" `Quick test_same_seed_bit_identical;
    Alcotest.test_case "unknown endpoint / duplicates" `Quick
      test_unknown_endpoint_and_duplicates;
    Alcotest.test_case "warm python resumes runtime" `Quick
      test_warm_python_resumes_runtime;
    Alcotest.test_case "serve report percentiles" `Quick test_serve_report_percentiles;
  ]
