open Sim

(* Mounting: superblock + FAT + root directory reads. *)
let mount_cost = Units.us 900

let init (_wfd : Wfd.t) ~clock = Clock.advance clock mount_cost

let fatfs_read (wfd : Wfd.t) ~clock path =
  match wfd.Wfd.vfs.Fsim.Vfs.read_file ~clock path with
  | data -> Ok data
  | exception Not_found -> Error Errno.Enoent
  | exception Fsim.Vfs.Io_error _ -> Error Errno.Eio

let fatfs_write (wfd : Wfd.t) ~clock path data =
  match wfd.Wfd.vfs.Fsim.Vfs.write_file ~clock path data with
  | () -> Ok (Bytes.length data)
  | exception Fsim.Vfs.Io_error _ -> Error Errno.Eio

let fatfs_exists (wfd : Wfd.t) path = wfd.Wfd.vfs.Fsim.Vfs.exists path

let fatfs_size (wfd : Wfd.t) path =
  match wfd.Wfd.vfs.Fsim.Vfs.file_size path with
  | n -> Ok n
  | exception Not_found -> Error Errno.Enoent

let fatfs_delete (wfd : Wfd.t) ~clock path =
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Close);
  match wfd.Wfd.vfs.Fsim.Vfs.delete path with
  | () -> Ok ()
  | exception Not_found -> Error Errno.Enoent

let fatfs_list (wfd : Wfd.t) = wfd.Wfd.vfs.Fsim.Vfs.list_files ()
