(** Shared-memory transfer between two processes (Fig. 3's third
    primitive).

    The paper's measurement method (§2.3): a file in ramfs is mapped
    into both the sender's and the receiver's address spaces with
    [mmap]; after the sender initialises the data it writes one byte to
    a pipe, and the receiver traverses the mapped region.  This module
    implements that mechanically — one backing buffer visible to both
    sides, a pipe for the doorbell — and charges setup (open + 2×mmap),
    the notification syscalls, the writer's fill and the reader's
    page-faulting first traversal. *)

type t

val create : size:int -> clock:Sim.Clock.t -> t
(** Create the ramfs file and map it on both sides. *)

val write : t -> clock:Sim.Clock.t -> bytes -> unit
(** Sender fills the region (up to [size]) and rings the doorbell. *)

val read : t -> clock:Sim.Clock.t -> bytes
(** Receiver waits for the doorbell and traverses the mapping (first
    touch faults each page in).  Raises [Failure] if no write happened. *)

val size : t -> int
