lib/mem/alloc.mli:
