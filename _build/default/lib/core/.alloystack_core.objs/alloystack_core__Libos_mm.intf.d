lib/core/libos_mm.mli: Errno Sim Wfd
