(* Content-hash LRU cache over Aot.compile.  Keys are the digest of the
   module's canonical encoding, so structurally identical modules share
   one compilation regardless of provenance.  The cache saves host work
   only: virtual-time charging for compilation stays with the caller
   (Runtime.load), which keeps simulated results bit-identical with and
   without the cache. *)

type entry = { e_compiled : Aot.compiled; mutable e_tick : int }

(* [Building] marks a key whose compile thunk is running on some
   domain.  Other domains landing on the same key block on [cond]
   instead of compiling a second time, so N concurrent loads of one
   content hash cost exactly one compilation (N-1 hits). *)
type slot = Ready of entry | Building

type t = {
  capacity : int;
  table : (string, slot) Hashtbl.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let c_hit = Sim.Stats.Counter.make "wasm.cache.hit"
let c_miss = Sim.Stats.Counter.make "wasm.cache.miss"
let c_evict = Sim.Stats.Counter.make "wasm.cache.evict"

let create ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Compile_cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create 32;
    lock = Mutex.create ();
    cond = Condition.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let hash_module m = Digest.to_hex (Digest.bytes (Encode.encode m))

let touch t e =
  t.tick <- t.tick + 1;
  e.e_tick <- t.tick

let ready_count t =
  Hashtbl.fold (fun _ s acc -> match s with Ready _ -> acc + 1 | Building -> acc) t.table 0

(* Evict the least-recently-used Ready entry (smallest tick).
   Building slots are never victims — evicting one would orphan its
   waiters.  Caller holds [t.lock]. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun key s acc ->
        match s with
        | Building -> acc
        | Ready e -> (
            match acc with
            | Some (_, best) when best.e_tick <= e.e_tick -> acc
            | _ -> Some (key, e)))
      t.table None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      Sim.Stats.Counter.incr c_evict
  | None -> ()

(* Under [t.lock]: either return the ready entry (a hit), or claim the
   key for building.  A waiter woken after the builder failed finds the
   key absent and becomes the next builder — miss accounting then
   matches the sequential retry exactly. *)
let rec acquire t key =
  match Hashtbl.find_opt t.table key with
  | Some (Ready e) ->
      t.hits <- t.hits + 1;
      touch t e;
      `Hit e.e_compiled
  | Some Building ->
      Condition.wait t.cond t.lock;
      acquire t key
  | None ->
      t.misses <- t.misses + 1;
      Hashtbl.replace t.table key Building;
      `Build

let find_or_compile t m ~compile =
  let key = hash_module m in
  Mutex.lock t.lock;
  let outcome = acquire t key in
  Mutex.unlock t.lock;
  match outcome with
  | `Hit compiled ->
      Sim.Stats.Counter.incr c_hit;
      compiled
  | `Build ->
      Sim.Stats.Counter.incr c_miss;
      (* The lock is released while the thunk runs: compilation is the
         expensive part and other keys must stay serviceable.  Commit
         on success only: if [compile] raises (validation error,
         injected loader fault), the claim is withdrawn and waiters are
         woken — no half-built entry can be observed by later loads. *)
      let compiled =
        try compile ()
        with exn ->
          Mutex.lock t.lock;
          Hashtbl.remove t.table key;
          Condition.broadcast t.cond;
          Mutex.unlock t.lock;
          raise exn
      in
      Mutex.lock t.lock;
      if ready_count t >= t.capacity then evict_one t;
      let e = { e_compiled = compiled; e_tick = 0 } in
      touch t e;
      Hashtbl.replace t.table key (Ready e);
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      compiled

let length t =
  Mutex.lock t.lock;
  let n = ready_count t in
  Mutex.unlock t.lock;
  n

let hit_count t = t.hits
let miss_count t = t.misses
let eviction_count t = t.evictions

let global_cache = lazy (create ~capacity:128 ())
let global () = Lazy.force global_cache
