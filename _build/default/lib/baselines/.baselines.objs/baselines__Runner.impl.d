lib/baselines/runner.ml: Clock Fctx Hashtbl Hostos List Sim Stdlib Units Workloads
