(* The alloystack CLI: run the built-in benchmark workflows on any of
   the simulated platforms, inspect cold starts, or validate a JSON
   workflow configuration.

     dune exec bin/alloystack_cli.exe -- run --app sorting --size 8M
     dune exec bin/alloystack_cli.exe -- coldstart
     dune exec bin/alloystack_cli.exe -- check examples/greeter.json
     dune exec bin/alloystack_cli.exe -- explain --app pipe *)

open Cmdliner
open Baselines

let platforms =
  [
    ("alloystack", As_platform.alloystack);
    ("alloystack-ifi", As_platform.alloystack_ifi);
    ("alloystack-c", As_platform.alloystack_c);
    ("alloystack-py", As_platform.alloystack_py);
    ("alloystack-ramfs", As_platform.alloystack_ramfs);
    ("faastlane", Faastlane.default_);
    ("faastlane-refer", Faastlane.refer);
    ("faastlane-ipc", Faastlane.ipc);
    ("faastlane-kata", Faastlane.refer_kata);
    ("openfaas", Openfaas.openfaas);
    ("openfaas-gvisor", Openfaas.openfaas_gvisor);
    ("faasm-c", Faasm.c);
    ("faasm-py", Faasm.python);
  ]

let parse_size s =
  let n = String.length s in
  if n = 0 then Error "empty size"
  else begin
    let unit_of c = match c with 'K' | 'k' -> 1024 | 'M' | 'm' -> 1024 * 1024 | _ -> 0 in
    let mult = unit_of s.[n - 1] in
    let digits = if mult = 0 then s else String.sub s 0 (n - 1) in
    match int_of_string_opt digits with
    | Some v -> Ok (v * if mult = 0 then 1 else mult)
    | None -> Error (Printf.sprintf "bad size %S" s)
  end

let make_app ~app ~seed ~size ~instances ~length =
  match app with
  | "wordcount" -> Ok (Workloads.Wordcount.app ~seed ~size ~instances)
  | "sorting" -> Ok (Workloads.Parallel_sorting.app ~seed ~size ~instances)
  | "chain" -> Ok (Workloads.Function_chain.app ~seed ~payload:size ~length)
  | "pipe" -> Ok (Workloads.Pipe_app.app ~seed ~size)
  | "image" -> Ok (Workloads.Image_meta.image_pipeline ~seed)
  | "noops" -> Ok Workloads.Pipe_app.noops
  | other -> Error (Printf.sprintf "unknown app %S" other)

(* Each CLI invocation is one run: drop whatever a previous library
   user left in the process-global collectors so exported traces and
   metric snapshots cover this run only. *)
let reset_observability () =
  Sim.Trace.clear Sim.Trace.global;
  Sim.Span.clear Sim.Span.global;
  Sim.Metrics.reset ()

let write_file path contents =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents)

let export_trace = function
  | None -> ()
  | Some path ->
      write_file path (Alloystack_core.Obs.trace_json_string ());
      Format.printf "trace:       %d span(s) -> %s@."
        (Sim.Span.count Sim.Span.global)
        path

let export_metrics = function
  | None -> ()
  | Some path ->
      write_file path (Alloystack_core.Obs.metrics_json_string ());
      Format.printf "metrics:     %s@." path

let run_cmd app platform size instances length seed trace trace_out metrics_out =
  reset_observability ();
  if trace then Sim.Trace.set_enabled Sim.Trace.global true;
  if trace || trace_out <> None then Sim.Span.set_enabled Sim.Span.global true;
  match (parse_size size, List.assoc_opt platform platforms) with
  | Error e, _ ->
      prerr_endline e;
      1
  | _, None ->
      Printf.eprintf "unknown platform %s; available: %s\n" platform
        (String.concat " " (List.map fst platforms));
      1
  | Ok size, Some p -> begin
      match make_app ~app ~seed ~size ~instances ~length with
      | Error e ->
          prerr_endline e;
          1
      | Ok workload ->
          let m = p.Platform.run workload in
          Format.printf "platform:    %s@." m.Platform.platform;
          Format.printf "end-to-end:  %a@." Sim.Units.pp m.Platform.e2e;
          Format.printf "cold start:  %a@." Sim.Units.pp m.Platform.cold_start;
          Format.printf "cpu time:    %a@." Sim.Units.pp m.Platform.cpu_time;
          Format.printf "peak rss:    %a@." Sim.Units.pp_bytes m.Platform.peak_rss;
          List.iter
            (fun (name, t) -> Format.printf "  %-12s %a@." name Sim.Units.pp t)
            m.Platform.phase_totals;
          if trace then begin
            Format.printf "--- trace (%d events, %d dropped) ---@."
              (Sim.Trace.count Sim.Trace.global)
              (Sim.Trace.dropped Sim.Trace.global);
            print_endline (Sim.Trace.dump Sim.Trace.global)
          end;
          export_trace trace_out;
          export_metrics metrics_out;
          (match m.Platform.validated with
          | Ok () ->
              Format.printf "output:      validated@.";
              0
          | Error e ->
              Format.printf "output:      WRONG (%s)@." e;
              1)
    end

(* The serving workload the CLI exercises: a 3-stage chain of 5ms
   compute kernels behind one endpoint, shared by [serve] and
   [explain --tails]. *)
let make_chain_server ~cold ~sample_every ~seed ~sketch_latency =
  let open Alloystack_core in
  let wf = Workflow.chain ~name:"serve-chain" 3 in
  let kernel (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    Asstd.compute ctx (Sim.Units.ms 5)
  in
  let bindings =
    List.map
      (fun (n : Workflow.node) -> (n.Workflow.node_id, Visor.bind kernel))
      wf.Workflow.nodes
  in
  let server =
    Visor.Server.create ~warm:(not cold) ~sample_every ~sample_seed:seed
      ~sketch_latency ()
  in
  Visor.Server.register server ~endpoint:"chain" ~workflow:wf ~bindings ();
  server

(* Serve a seeded open-loop load with spans on, then attribute every
   request at or above the latency quantile to its dominant
   critical-path bucket. *)
let explain_tails ~requests ~qps ~seed ~quantile =
  reset_observability ();
  Sim.Span.set_enabled Sim.Span.global true;
  let open Alloystack_core in
  let server = make_chain_server ~cold:false ~sample_every:1 ~seed ~sketch_latency:false in
  let next =
    Baselines.Loadgen.request_stream ~seed ~qps ~endpoints:[| "chain" |]
      ~count:requests ()
  in
  let (), s =
    Visor.Server.serve_fold server
      (fun () ->
        match next () with
        | None -> None
        | Some (endpoint, arrival) -> Some { Visor.Server.endpoint; arrival })
      ~init:() ~f:(fun () _ -> ())
  in
  Visor.Server.shutdown server;
  Format.printf "served:      %d requests at %.1f qps (p99 %a)@." requests qps
    Sim.Units.pp s.Visor.Server.sm_p99_latency;
  let tr = Obs.tails ~quantile () in
  print_string (Obs.render_tails tr);
  0

(* Run one workflow with span collection on and attribute its whole
   end-to-end latency to cost categories along the critical path. *)
let explain_cmd app platform size instances length seed trace_out tails requests
    qps quantile =
  if tails then explain_tails ~requests ~qps ~seed ~quantile
  else begin
  reset_observability ();
  Sim.Span.set_enabled Sim.Span.global true;
  match (parse_size size, List.assoc_opt platform platforms) with
  | Error e, _ ->
      prerr_endline e;
      1
  | _, None ->
      Printf.eprintf "unknown platform %s; available: %s\n" platform
        (String.concat " " (List.map fst platforms));
      1
  | Ok size, Some p -> begin
      match make_app ~app ~seed ~size ~instances ~length with
      | Error e ->
          prerr_endline e;
          1
      | Ok workload ->
          let m = p.Platform.run workload in
          let open Alloystack_core in
          (match Obs.find_root ~category:"workflow" () with
          | None ->
              Printf.eprintf
                "platform %s recorded no workflow spans (explain needs a \
                 visor-backed platform: alloystack*)\n"
                platform;
              1
          | Some root ->
              let bd = Obs.breakdown ~root:root.Sim.Span.sp_id () in
              Format.printf "platform:    %s@." m.Platform.platform;
              print_string (Obs.render_breakdown bd);
              let attributed =
                List.fold_left
                  (fun acc (_, d) -> Sim.Units.add acc d)
                  Sim.Units.zero bd.Obs.bd_buckets
              in
              Format.printf "attributed:  %s of %s (%s)@."
                (Sim.Units.to_string attributed)
                (Sim.Units.to_string bd.Obs.bd_total)
                (if Sim.Units.equal attributed bd.Obs.bd_total then "exact"
                 else "INEXACT");
              export_trace trace_out;
              if Sim.Units.equal attributed bd.Obs.bd_total then 0 else 1)
    end
  end

let coldstart_cmd () =
  Format.printf "%-14s %s@." "system" "cold start";
  List.iter
    (fun (e : Singlefn.entry) ->
      Format.printf "%-14s %s@." e.Singlefn.label (Sim.Units.to_string e.Singlefn.cold_start))
    (Singlefn.figure10 ());
  0

let check_cmd dot file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error e ->
      prerr_endline e;
      1
  | contents -> begin
      match Alloystack_core.Workflow.of_string contents with
      | Error e ->
          Printf.eprintf "invalid workflow: %s\n" e;
          1
      | Ok wf ->
          let open Alloystack_core in
          Format.printf "workflow %s: %d function(s), %d edge(s), %d stage(s)@."
            wf.Workflow.wf_name
            (List.length wf.Workflow.nodes)
            (List.length wf.Workflow.edges)
            (List.length (Workflow.stages wf));
          List.iteri
            (fun i stage ->
              Format.printf "  stage %d: %s@." i
                (String.concat ", "
                   (List.map
                      (fun (n : Workflow.node) ->
                        Printf.sprintf "%s x%d (%a)" n.Workflow.node_id
                          n.Workflow.instances
                          (fun () l -> Format.asprintf "%a" Workflow.pp_language l)
                          n.Workflow.language)
                      stage)))
            (Workflow.stages wf);
          Format.printf "required as-libos modules: %s@."
            (String.concat ", " (Workflow.required_modules wf));
          if dot then print_string (Workflow.to_dot wf);
          0
    end

(* Serve a synthetic open-loop request trace against the warm-pool
   server and print the latency/throughput summary.  With [--soak] the
   run is time-bounded instead of count-bounded, responses are folded
   (never materialised), percentiles come from sketches, and the run
   fails if live heap words trend upward across snapshots. *)
(* "name:latency_ms:objective", e.g. "interactive:250:0.999". *)
let parse_slo s =
  match String.split_on_char ':' s with
  | [ name; lat_ms; objective ] -> (
      match (float_of_string_opt lat_ms, float_of_string_opt objective) with
      | Some lat, Some obj when lat > 0.0 ->
          Ok (Sim.Slo.spec ~objective:obj ~name ~latency:(Sim.Units.ms_f lat) ())
      | _ -> Error (Printf.sprintf "bad SLO spec %S" s))
  | _ ->
      Error
        (Printf.sprintf "bad SLO spec %S (expected name:latency_ms:objective)" s)

let serve_cmd requests qps seed cold domains batch sample_every soak duration
    trace trace_out metrics_out slo_args csv_out prom_out tails =
  reset_observability ();
  Sim.Par.set_domains domains;
  Sim.Par.set_batch batch;
  if trace then Sim.Trace.set_enabled Sim.Trace.global true;
  if trace || trace_out <> None || tails then
    Sim.Span.set_enabled Sim.Span.global true;
  if sample_every > 1 then Sim.Metrics.set_raw_sample_every ~seed sample_every;
  let open Alloystack_core in
  let slos =
    List.map
      (fun s ->
        match parse_slo s with
        | Ok spec -> spec
        | Error e ->
            prerr_endline e;
            exit 2)
      slo_args
  in
  let server = make_chain_server ~cold ~sample_every ~seed ~sketch_latency:soak in
  if slos <> [] || csv_out <> None then begin
    (* Soak runs are open-ended in virtual time: coarsen the windows so
       the retained per-window digests plateau at 64 windows -- a
       quarter of the run -- well before the soak's flat-memory
       assertion starts comparing snapshots.  Bounded -n runs keep the
       default 1 s windows. *)
    if soak then
      Visor.Server.enable_telemetry server
        ~window:(Sim.Units.sec (Stdlib.max 1 (duration / 256)))
        ~retention:64 ~slos ()
    else Visor.Server.enable_telemetry server ~slos ()
  end;
  let status = ref 0 in
  if soak then begin
    (* Time-bounded soak through the constant-memory fold path. *)
    let snap_s = Stdlib.max 1 (duration / 12) in
    let next =
      Baselines.Loadgen.request_stream_until ~seed ~qps ~endpoints:[| "chain" |]
        ~horizon:(Sim.Units.sec duration) ()
    in
    let pulled : Sim.Units.time Queue.t = Queue.create () in
    let stream () =
      match next () with
      | None -> None
      | Some (endpoint, arrival) ->
          Queue.push arrival pulled;
          Some { Visor.Server.endpoint; arrival }
    in
    let p2_50 = Sim.Sketch.P2.create 0.5 in
    let p2_99 = Sim.Sketch.P2.create 0.99 in
    let finished = ref 0 in
    let arrived = ref 0 in
    let next_snap = ref snap_s in
    let lives = ref [] in
    let printed_alerts = ref 0 in
    let (), s =
      Visor.Server.serve_fold server stream ~init:()
        ~f:(fun () (p : Visor.Server.response) ->
          incr finished;
          if p.Visor.Server.r_ok then begin
            let us = Sim.Units.to_us p.Visor.Server.r_latency in
            Sim.Sketch.P2.add p2_50 us;
            Sim.Sketch.P2.add p2_99 us
          end;
          let now_s = Sim.Units.to_sec p.Visor.Server.r_finish in
          if now_s >= float_of_int !next_snap then begin
            while
              (not (Queue.is_empty pulled))
              && Sim.Units.to_sec (Queue.peek pulled) <= now_s
            do
              ignore (Queue.pop pulled);
              incr arrived
            done;
            Gc.full_major ();
            let live = (Gc.stat ()).Gc.live_words in
            lives := live :: !lives;
            Format.printf
              "soak t=%5ds: completed %8d, inflight %4d, live %9d words, p50 %8.1f us, p99 %9.1f us@."
              !next_snap !finished
              (!arrived - !finished)
              live
              (Sim.Sketch.P2.quantile p2_50)
              (Sim.Sketch.P2.quantile p2_99);
            (* SLO alerts fired since the last snapshot, on their own
               lines right under it. *)
            let alerts = Visor.Server.slo_alerts server in
            List.iteri
              (fun i a ->
                if i >= !printed_alerts then
                  Format.printf "  %s@." (Sim.Slo.render_alert a))
              alerts;
            printed_alerts := List.length alerts;
            while float_of_int !next_snap <= now_s do
              next_snap := !next_snap + snap_s
            done
          end)
    in
    Format.printf "soak:         %ds virtual at %.1f qps@." duration qps;
    Format.printf "requests:     %d ok, %d failed@." s.Visor.Server.sm_completed
      s.Visor.Server.sm_failed;
    Format.printf "throughput:   %.1f req/s@." s.Visor.Server.sm_throughput_rps;
    Format.printf "latency:      p50 %a  p99 %a (sketched)@." Sim.Units.pp
      s.Visor.Server.sm_p50_latency Sim.Units.pp s.Visor.Server.sm_p99_latency;
    Format.printf "max inflight: %d@." s.Visor.Server.sm_max_inflight;
    (match List.rev !lives with
    | live0 :: _ :: _ as all ->
        let n = List.length all in
        let worst =
          List.fold_left Stdlib.max 0
            (List.filteri (fun i _ -> i >= n / 2) all)
        in
        if float_of_int worst > (1.25 *. float_of_int live0) +. 1e6 then begin
          Format.eprintf
            "soak: live words grew %d -> %d — memory is not flat@." live0 worst;
          status := 1
        end
        else Format.printf "memory:       flat (%d -> %d live words)@." live0 worst
    | _ -> ())
  end
  else begin
    (* Streamed seeded arrivals: constant memory in the request count,
       same draws (one exponential per arrival) as materialising the
       whole trace. *)
    let next =
      Baselines.Loadgen.request_stream ~seed ~qps ~endpoints:[| "chain" |]
        ~count:requests ()
    in
    let r =
      Visor.Server.serve_stream server (fun () ->
          match next () with
          | None -> None
          | Some (endpoint, arrival) -> Some { Visor.Server.endpoint; arrival })
    in
    Format.printf "requests:     %d (%d ok, %d failed)@." requests
      r.Visor.Server.completed r.Visor.Server.failed;
    Format.printf "throughput:   %.1f req/s@." r.Visor.Server.throughput_rps;
    Format.printf "latency:      p50 %a  p99 %a@." Sim.Units.pp r.Visor.Server.p50_latency
      Sim.Units.pp r.Visor.Server.p99_latency;
    Format.printf "max inflight: %d@." r.Visor.Server.max_inflight;
    Format.printf "starts:       %d warm / %d cold@." r.Visor.Server.warm_starts
      r.Visor.Server.cold_starts
  end;
  (* SLO verdicts: compliance against objective, final burn rates, and
     the full deterministic alert log. *)
  List.iter
    (fun m ->
      let fast, slow = Sim.Slo.burn_rates m in
      Format.printf "slo %s:      compliance %.4f (%d/%d good), burn fast %.2f slow %.2f%s@."
        (Sim.Slo.name m) (Sim.Slo.compliance m) (Sim.Slo.good m)
        (Sim.Slo.total m) fast slow
        (if Sim.Slo.paging m then "  [PAGING]" else ""))
    (Visor.Server.slo_monitors server);
  List.iter
    (fun a -> Format.printf "  %s@." (Sim.Slo.render_alert a))
    (Visor.Server.slo_alerts server);
  if tails then begin
    let tr = Obs.tails () in
    print_string (Obs.render_tails tr)
  end;
  (match (csv_out, Visor.Server.telemetry server) with
  | Some path, Some ts ->
      write_file path (Sim.Timeseries.to_csv ts);
      Format.printf "timeseries:  %s@." path
  | Some _, None | None, _ -> ());
  (match prom_out with
  | Some path ->
      write_file path (Obs.prometheus_string ());
      Format.printf "prometheus:  %s@." path
  | None -> ());
  Visor.Server.shutdown server;
  if sample_every > 1 then Sim.Metrics.set_raw_sample_every 1;
  if trace then begin
    Format.printf "--- trace (%d events, %d dropped) ---@."
      (Sim.Trace.count Sim.Trace.global)
      (Sim.Trace.dropped Sim.Trace.global);
    print_endline (Sim.Trace.dump Sim.Trace.global)
  end;
  export_trace trace_out;
  export_metrics metrics_out;
  Sim.Par.set_domains 1;
  !status

let app_arg =
  Arg.(value & opt string "pipe"
       & info [ "app"; "a" ] ~doc:"Workload: wordcount, sorting, chain, pipe, image, noops.")

let platform_arg =
  Arg.(value & opt string "alloystack"
       & info [ "platform"; "p" ] ~doc:"Platform to run on (see --help for the list).")

let size_arg =
  Arg.(value & opt string "4M" & info [ "size"; "s" ] ~doc:"Input/payload size (e.g. 64K, 25M).")

let instances_arg =
  Arg.(value & opt int 3 & info [ "instances"; "i" ] ~doc:"Parallel instances per stage.")

let length_arg =
  Arg.(value & opt int 5 & info [ "length"; "l" ] ~doc:"FunctionChain length.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Data-generation seed.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Dump the visor/loader event trace after the run.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the span tree as Chrome trace_event JSON (Perfetto-loadable) to $(docv).")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write a JSON snapshot of the metrics registry to $(docv).")

let run_term =
  Term.(
    const run_cmd $ app_arg $ platform_arg $ size_arg $ instances_arg $ length_arg
    $ seed_arg $ trace_arg $ trace_out_arg $ metrics_out_arg)

let run_info =
  Cmd.info "run" ~doc:"Run a benchmark workflow on a simulated platform."

let coldstart_info = Cmd.info "coldstart" ~doc:"Print the Fig. 10 cold-start table."

let check_info = Cmd.info "check" ~doc:"Validate a JSON workflow configuration."

let file_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Also print the DAG in Graphviz format.")

let requests_arg =
  Arg.(value & opt int 100 & info [ "requests"; "n" ] ~doc:"Number of requests to serve.")

let qps_arg =
  Arg.(value & opt float 500.0 & info [ "qps" ] ~doc:"Mean open-loop arrival rate.")

let cold_arg =
  Arg.(value & flag & info [ "cold" ] ~doc:"Disable the warm template pool.")

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ]
           ~doc:"Host domain pool width for request execution.  Virtual-time \
                 results (latencies, trace, metrics) are bit-identical for \
                 every value; only wall time changes.")

let batch_arg =
  Arg.(value & opt int 1
       & info [ "batch" ]
           ~doc:"Submissions each domain claims per shared-cursor fetch when \
                 executing requests in parallel.  A host-side scheduling \
                 knob only: virtual-time results are bit-identical for every \
                 value.")

let sample_every_arg =
  Arg.(value & opt int 1
       & info [ "sample-every" ]
           ~doc:"Sample per-request observability 1-in-K: only every Kth \
                 request carries spans/trace events and metrics raw-sample \
                 reservoirs are thinned the same way.  Latency percentiles \
                 and counters stay exact.  1 (default) records everything.")

let soak_arg =
  Arg.(value & flag
       & info [ "soak" ]
           ~doc:"Run time-bounded (--duration virtual seconds) instead of \
                 count-bounded: responses are folded as they complete (never \
                 materialised), latency percentiles come from P2/t-digest \
                 sketches, and the run fails if live heap words trend upward \
                 across snapshots.")

let duration_arg =
  Arg.(value & opt int 3600
       & info [ "duration" ] ~docv:"SECS"
           ~doc:"Soak length in virtual seconds (with --soak).")

let slo_arg =
  Arg.(value & opt_all string []
       & info [ "slo" ] ~docv:"NAME:LATENCY_MS:OBJECTIVE"
           ~doc:"Declare an SLO (repeatable): a request is good when it \
                 succeeds within LATENCY_MS, and OBJECTIVE (e.g. 0.999) is \
                 the target good fraction.  Enables windowed telemetry and \
                 multi-window burn-rate alerting; pages and clears print at \
                 their deterministic virtual instants.")

let csv_out_arg =
  Arg.(value & opt (some string) None
       & info [ "csv-out" ] ~docv:"FILE"
           ~doc:"Write the windowed timeseries (1 virtual-second windows) as \
                 CSV to $(docv).  Enables telemetry.")

let prom_out_arg =
  Arg.(value & opt (some string) None
       & info [ "prom-out" ] ~docv:"FILE"
           ~doc:"Write a Prometheus text-format snapshot of the metrics \
                 registry to $(docv).")

let tails_arg =
  Arg.(value & flag
       & info [ "tails" ]
           ~doc:"Attribute every request at or above the tail latency \
                 quantile to its dominant critical-path bucket and print the \
                 verdict table.")

let tail_quantile_arg =
  Arg.(value & opt float 99.0
       & info [ "tail-quantile" ] ~docv:"PCT"
           ~doc:"Latency quantile defining the tail for --tails (default 99).")

let explain_term =
  Term.(
    const explain_cmd $ app_arg $ platform_arg $ size_arg $ instances_arg $ length_arg
    $ seed_arg $ trace_out_arg $ tails_arg $ requests_arg $ qps_arg
    $ tail_quantile_arg)

let explain_info =
  Cmd.info "explain"
    ~doc:
      "Run a workflow with span tracing and print the critical-path latency \
       breakdown (boot / load / compute / transfer / network / io / retry).  \
       With --tails, serve an open-loop load instead and print the tail \
       verdict table: which bucket dominates each request at or above the \
       tail quantile."

let serve_info =
  Cmd.info "serve"
    ~doc:"Serve a seeded open-loop load through the warm-pool server and report latency."

let serve_term =
  Term.(
    const serve_cmd $ requests_arg $ qps_arg $ seed_arg $ cold_arg $ domains_arg
    $ batch_arg $ sample_every_arg $ soak_arg $ duration_arg $ trace_arg
    $ trace_out_arg $ metrics_out_arg $ slo_arg $ csv_out_arg $ prom_out_arg
    $ tails_arg)

let main =
  Cmd.group (Cmd.info "alloystack" ~doc:"AlloyStack reproduction CLI")
    [
      Cmd.v run_info run_term;
      Cmd.v explain_info explain_term;
      Cmd.v coldstart_info Term.(const coldstart_cmd $ const ());
      Cmd.v check_info Term.(const check_cmd $ dot_arg $ file_arg);
      Cmd.v serve_info serve_term;
    ]

let () = exit (Cmd.eval' main)
