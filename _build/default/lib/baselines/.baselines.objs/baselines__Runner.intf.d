lib/baselines/runner.mli: Fctx Sim Workloads
