lib/vmm/gvisor.mli: Sandbox
