(* Time-ordered event queue as a pairing heap.

   The binary-heap predecessor supported only push/pop; serving at
   10^5-request scale also needs O(log n) cancel and re-key (timer
   retargeting, speculative events).  A pairing heap gives amortised
   O(log n) pop/cancel/re-key with O(1) push and — unlike an array
   heap — stable handles: [add] returns a token that [cancel] and
   [reschedule] can use without any linear membership scan.

   Ordering is lexicographic on (at, pri, seq): virtual time first,
   then an explicit priority class (e.g. arrivals before same-instant
   completions), then insertion order — so runs remain fully
   deterministic and same-key events pop FIFO. *)

type 'a node = {
  mutable at : Units.time;
  mutable pri : int;
  mutable seq : int;
  payload : 'a;
  mutable child : 'a node option;  (** Leftmost child. *)
  mutable sibling : 'a node option;  (** Next younger sibling. *)
  mutable pred : 'a node option;
      (** Parent if leftmost child, previous sibling otherwise; [None]
          for the root and for detached nodes. *)
  mutable queued : bool;
}

type 'a handle = 'a node

type 'a t = {
  mutable root : 'a node option;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { root = None; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

let before a b =
  let c = Units.compare a.at b.at in
  if c <> 0 then c < 0
  else if a.pri <> b.pri then a.pri < b.pri
  else a.seq < b.seq

(* Meld two heap roots (both detached from any pred). *)
let meld a b =
  if before a b then begin
    b.sibling <- a.child;
    (match a.child with Some c -> c.pred <- Some b | None -> ());
    b.pred <- Some a;
    a.child <- Some b;
    a
  end
  else begin
    a.sibling <- b.child;
    (match b.child with Some c -> c.pred <- Some a | None -> ());
    a.pred <- Some b;
    b.child <- Some a;
    b
  end

(* Two-pass pairing of a sibling list. *)
let rec merge_pairs = function
  | None -> None
  | Some n -> (
      let n2 = n.sibling in
      n.sibling <- None;
      n.pred <- None;
      match n2 with
      | None -> Some n
      | Some m ->
          let rest = m.sibling in
          m.sibling <- None;
          m.pred <- None;
          let pair = meld n m in
          (match merge_pairs rest with
          | None -> Some pair
          | Some r -> Some (meld pair r)))

let insert_node t n =
  n.child <- None;
  n.sibling <- None;
  n.pred <- None;
  n.queued <- true;
  t.root <- (match t.root with None -> Some n | Some r -> Some (meld n r));
  t.size <- t.size + 1

let add t ~at ?(pri = 0) payload =
  let n =
    {
      at;
      pri;
      seq = t.next_seq;
      payload;
      child = None;
      sibling = None;
      pred = None;
      queued = false;
    }
  in
  t.next_seq <- t.next_seq + 1;
  insert_node t n;
  n

let push t ~at ?pri payload = ignore (add t ~at ?pri payload)

let pop t =
  match t.root with
  | None -> None
  | Some r ->
      t.root <- merge_pairs r.child;
      r.child <- None;
      r.queued <- false;
      t.size <- t.size - 1;
      Some (r.at, r.payload)

let peek t = match t.root with None -> None | Some r -> Some (r.at, r.payload)

(* Unlink a queued node, then meld the subtree rooted at its children
   back into the heap. *)
let detach t n =
  (match t.root with
  | Some r when r == n -> t.root <- merge_pairs r.child
  | _ -> (
      let p = match n.pred with Some p -> p | None -> assert false in
      (* n is either p's leftmost child or p's next sibling. *)
      (match p.child with
      | Some c when c == n -> p.child <- n.sibling
      | _ -> p.sibling <- n.sibling);
      (match n.sibling with Some s -> s.pred <- Some p | None -> ());
      match merge_pairs n.child with
      | None -> ()
      | Some sub -> (
          match t.root with
          | None -> t.root <- Some sub
          | Some r -> t.root <- Some (meld sub r))));
  n.child <- None;
  n.sibling <- None;
  n.pred <- None;
  n.queued <- false;
  t.size <- t.size - 1

let cancel t h =
  if not h.queued then false
  else begin
    detach t h;
    true
  end

let reschedule t h ~at =
  if h.queued then detach t h;
  h.at <- at;
  h.seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  insert_node t h

let queued h = h.queued
let handle_at h = h.at

let drain t f =
  let rec go () =
    match pop t with
    | None -> ()
    | Some (at, v) ->
        f at v;
        go ()
  in
  go ()
