(* Tests for the sandbox boot models (Fig. 2 / Fig. 10 calibration). *)

open Sim
open Vmm

let total_ms p = Units.to_ms (Sandbox.total p)

let test_fig2_calibration () =
  (* Fig. 2: QEMU ~1817ms, MicroVM ~1186ms, Unikernel ~137ms,
     Virtines ~23ms. *)
  let within label low high v =
    if v < low || v > high then
      Alcotest.fail (Printf.sprintf "%s boot %.1fms outside [%.0f, %.0f]" label v low high)
  in
  within "QEMU" 1750.0 1900.0 (total_ms Microvm.qemu_full);
  within "MicroVM" 1130.0 1240.0 (total_ms Microvm.trimmed);
  within "Unikernel" 125.0 150.0 (total_ms Unikraft.profile);
  within "Virtines" 21.0 25.0 (total_ms Virtines.profile)

let test_fig2_ordering () =
  let q = total_ms Microvm.qemu_full
  and m = total_ms Microvm.trimmed
  and u = total_ms Unikraft.profile
  and v = total_ms Virtines.profile in
  Alcotest.(check bool) "trimming helps monotonically" true (q > m && m > u && u > v)

let test_boot_advances_clock () =
  let clock = Clock.create () in
  let report = Sandbox.boot Gvisor.profile clock in
  Alcotest.(check bool) "clock = total" true
    (Units.equal (Clock.now clock) report.Sandbox.total_time);
  Alcotest.(check int) "all stages reported"
    (List.length Gvisor.profile.Sandbox.stages)
    (List.length report.Sandbox.stage_times)

let test_boot_sequential_composition () =
  (* Booting twice accumulates. *)
  let clock = Clock.create () in
  ignore (Sandbox.boot Virtines.profile clock);
  ignore (Sandbox.boot Virtines.profile clock);
  Alcotest.(check bool) "two boots" true
    (Units.equal (Clock.now clock) (Units.scale (Sandbox.total Virtines.profile) 2.0))

let test_serverless_firecracker () =
  (* The ~200ms serverless MicroVM of [63]. *)
  let t = total_ms Microvm.firecracker_serverless in
  Alcotest.(check bool) "about 200ms" true (t > 180.0 && t < 220.0)

let test_kata_heavier_than_runc () =
  Alcotest.(check bool) "kata boot > runc boot" true
    (total_ms Container.kata_firecracker > total_ms Container.runc);
  Alcotest.(check bool) "kata has guest-kernel memory overhead" true
    (Container.kata_firecracker.Sandbox.mem_overhead > Container.runc.Sandbox.mem_overhead)

let test_syscall_paths () =
  Alcotest.(check bool) "gvisor intercepts via ptrace" true
    (Gvisor.profile.Sandbox.syscall_via = Hostos.Syscall.Ptrace);
  Alcotest.(check bool) "runc is direct" true
    (Container.runc.Sandbox.syscall_via = Hostos.Syscall.Direct);
  Alcotest.(check bool) "microvm exits" true
    (Microvm.trimmed.Sandbox.syscall_via = Hostos.Syscall.Vmexit)

let suite =
  [
    Alcotest.test_case "Fig.2 calibration" `Quick test_fig2_calibration;
    Alcotest.test_case "Fig.2 ordering" `Quick test_fig2_ordering;
    Alcotest.test_case "boot advances clock" `Quick test_boot_advances_clock;
    Alcotest.test_case "boots compose" `Quick test_boot_sequential_composition;
    Alcotest.test_case "serverless firecracker ~200ms" `Quick test_serverless_firecracker;
    Alcotest.test_case "kata vs runc" `Quick test_kata_heavier_than_runc;
    Alcotest.test_case "syscall interception paths" `Quick test_syscall_paths;
  ]
