lib/core/asbuffer.ml: Address_space Asstd Bytes Clock Cost Errno Fndata Libos_mm Mem Sim Units Wfd
