(* Benchmark harness: regenerates every table and figure of the
   AlloyStack paper's evaluation (see DESIGN.md experiment index).

   Usage:
     dune exec bench/main.exe                 -- all experiments
     dune exec bench/main.exe fig11 fig12     -- a subset
     dune exec bench/main.exe --quick         -- reduced data sizes
     dune exec bench/main.exe --domains 4     -- host domain pool width *)

open Sim
open Baselines
open Workloads

let mib n = n * 1024 * 1024
let kib n = n * 1024

let quick = ref false

(* --sweep: extend the serving experiment with a qps sweep (latency vs
   offered load, saturation knee) and streamed scale legs (10^5 with a
   sketch-vs-exact percentile check, 10^6 fold-only) run through the
   streaming server with sampled observability. *)
let sweep_flag = ref false

(* --soak: extend the serving experiment with a virtual-hour soak at a
   sustainable qps below the saturation knee: periodic snapshot lines
   (completed, in-flight, live words, sketch percentiles) and a
   flat-memory assertion. *)
let soak_flag = ref false

(* --soak-seconds N: virtual duration of the soak (defaults to an hour,
   two minutes in --quick).  CI's smoke leg shortens it. *)
let soak_seconds_flag = ref 0

(* --hotspots: run one extra profiled scale leg with Sim.Hotspot
   enabled and emit a host.hotspots section (per-section call count,
   total ms and us/request) into BENCH_serving.json, so the dominant
   per-request host cost is a measured fact rather than a guess.
   Profiling overhead is confined to that leg — the timed legs above it
   run with the profiler off.  Implies nothing about virtual output:
   the profiled leg's response fingerprint is asserted identical to the
   unprofiled one. *)
let hotspots_flag = ref false

(* --deep-requests N: request count for the fold-only deep leg
   (default 10^6; 50k in --quick).  CI smokes the 10^7 configuration at
   10^5 with the peak-live-words cap still asserted; a full 10^7 run is
   the overnight variant. *)
let deep_requests_flag = ref 0

(* --domains N: host domain pool width for the parallel serving / exec
   experiments.  0 = auto (the machine's recommended domain count —
   never more domains than cores, so a 1-core host runs 1 domain
   instead of faking a 4-wide pool that can only lose).  Virtual
   results are bit-identical whatever this is set to — the bench
   asserts that on every run. *)
let domains_flag = ref 0

let bench_domains () =
  if !domains_flag > 0 then !domains_flag else Par.auto_domains ()

(* --batch K: submissions claimed per shared-cursor fetch in Par.run.
   Purely a host-side scheduling knob — virtual output is asserted
   byte-identical across batch sizes by the serving scale leg. *)
let batch_flag = ref 1

(* A parallel leg is degenerate when the pool cannot express real
   parallelism (single-core host, single-domain pool, or more domains
   than cores): its speedup numbers are artifacts, so the JSON labels
   the leg and perf_gate.py reports its fields without gating them. *)
let degenerate_parallelism ~domains =
  let cores = Stdlib.max 1 (Domain.recommended_domain_count ()) in
  cores < 2 || domains < 2 || domains > cores

let scale n = if !quick then Stdlib.max 4096 (n / 16) else n

let pp_t = Units.to_string

let validated (m : Platform.metrics) =
  Platform.check_validated m;
  m

let run_platform (p : Platform.t) ?cores app = validated (p.Platform.run ?cores app)

(* The observability collectors are process-global: start every
   experiment from a clean slate so exported spans and metric
   snapshots cover that experiment alone. *)
let reset_observability () =
  Trace.clear Trace.global;
  Span.clear Span.global;
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Table 1: kernel modules required per serverless function.           *)

let table1 () =
  let t =
    Table.create ~title:"Table 1: kernel modules for serverless functions"
      ~columns:[ "Function"; "Required kernel components"; "#" ]
  in
  List.iter
    (fun (e : Image_meta.entry) ->
      Table.add_row t
        [
          e.Image_meta.fn_name;
          String.concat ", " e.Image_meta.components;
          string_of_int (List.length e.Image_meta.components);
        ])
    Image_meta.table;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 2: startup latency under progressively deeper trimming.      *)

let fig2 () =
  let t =
    Table.create ~title:"Figure 2: sandbox startup latency (trimming)"
      ~columns:[ "System"; "Boot"; "Dominant stages" ]
  in
  List.iter
    (fun profile ->
      let clock = Clock.create () in
      let report = Vmm.Sandbox.boot profile clock in
      let top =
        List.sort (fun (_, a) (_, b) -> Units.compare b a) report.Vmm.Sandbox.stage_times
        |> fun l -> List.filteri (fun i _ -> i < 2) l
      in
      let stages =
        String.concat ", "
          (List.map (fun (label, time) -> Printf.sprintf "%s %s" label (pp_t time)) top)
      in
      Table.add_row t [ profile.Vmm.Sandbox.name; pp_t report.Vmm.Sandbox.total_time; stages ])
    [
      Vmm.Microvm.qemu_full;
      Vmm.Microvm.trimmed;
      Vmm.Unikraft.profile;
      Vmm.Virtines.profile;
    ];
  Table.print t;
  print_endline
    "paper: QEMU 1817ms -> MicroVM ~1186ms -> Unikernel 137ms -> Virtines 23ms\n"

(* ------------------------------------------------------------------ *)
(* Figure 3: communication primitives.                                 *)

let fig3 () =
  let sizes = [ kib 4; kib 64; mib 1; mib 16; mib 64 ] in
  let t =
    Table.create ~title:"Figure 3: data transfer primitives (latency per transfer)"
      ~columns:
        ("Size" :: [ "Inter-VM TCP"; "Inter-proc TCP"; "Shared memory"; "Function call" ])
  in
  let inter_vm_tcp size =
    let payload = Bytes.make size 'x' in
    let c = Clock.create () and s = Clock.create () in
    let conn =
      Netsim.Tcp.connect ~client:c ~server:s ~link:Netsim.Link.inter_vm
        ~client_profile:Netsim.Tcp.guest_linux ~server_profile:Netsim.Tcp.guest_linux ()
    in
    Netsim.Tcp.send conn ~from_client:true payload;
    ignore (Netsim.Tcp.recv conn ~at_client:false size);
    Clock.now s
  in
  let inter_proc_tcp size =
    let payload = Bytes.make size 'x' in
    let c = Clock.create () and s = Clock.create () in
    let conn =
      Netsim.Tcp.connect ~client:c ~server:s ~link:Netsim.Link.loopback
        ~client_profile:Netsim.Tcp.linux ~server_profile:Netsim.Tcp.linux ()
    in
    Netsim.Tcp.send conn ~from_client:true payload;
    ignore (Netsim.Tcp.recv conn ~at_client:false size);
    Clock.now s
  in
  let shared_memory size =
    (* mmap-ed ramfs file: writer fills, one-byte pipe notification,
       reader traverses the mapping (paying its page faults). *)
    let clock = Clock.create () in
    Clock.advance clock (Units.time_for_bytes ~bytes_per_sec:Alloystack_core.Cost.memcpy_bw size);
    Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Write);
    Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Read);
    let pages = (size + 4095) / 4096 in
    Clock.advance clock (Units.scale Alloystack_core.Cost.page_fault_service (float_of_int pages));
    Clock.advance clock (Units.time_for_bytes ~bytes_per_sec:Alloystack_core.Cost.memcpy_bw size);
    Clock.now clock
  in
  let function_call size =
    (* Threads in one address space: plain loads/stores. *)
    let clock = Clock.create () in
    Clock.advance clock
      (Units.time_for_bytes ~bytes_per_sec:Alloystack_core.Cost.buffer_copy_bw_rust (2 * size));
    Clock.now clock
  in
  List.iter
    (fun size ->
      Table.add_row t
        [
          Units.bytes_to_string size;
          pp_t (inter_vm_tcp size);
          pp_t (inter_proc_tcp size);
          pp_t (shared_memory size);
          pp_t (function_call size);
        ])
    sizes;
  Table.print t;
  print_endline "paper: function call beats the others by 1-2 orders of magnitude\n"

(* ------------------------------------------------------------------ *)
(* Table 4: filesystem and TCP stack throughput.                       *)

let table4 () =
  let t =
    Table.create ~title:"Table 4: as-libos file system and network stack"
      ~columns:[ "Module"; "Read / RX"; "Write / TX"; "paper" ]
  in
  let file_bw fs_write fs_read =
    let size = scale (mib 64) in
    let data = Bytes.make size 'f' in
    let wc = Clock.create () in
    fs_write wc data;
    let rc = Clock.create () in
    fs_read rc;
    let bw c = float_of_int size /. Units.to_sec (Clock.now c) /. 1e6 in
    (bw rc, bw wc)
  in
  let fat = Fsim.Fat.format (Fsim.Blockdev.create ~sectors:(mib 256 / 512)) in
  let fat_r, fat_w =
    file_bw
      (fun c data -> Fsim.Fat.write_file fat ~clock:c "/bench" data)
      (fun c -> ignore (Fsim.Fat.read_file fat ~clock:c "/bench"))
  in
  Table.add_row t
    [ "rust-fatfs (MB/s)"; Printf.sprintf "%.0f" fat_r; Printf.sprintf "%.0f" fat_w; "362 / 1562" ];
  let ext = Fsim.Extfs.format (Fsim.Blockdev.create ~sectors:(mib 256 / 512)) in
  let ext_r, ext_w =
    file_bw
      (fun c data -> Fsim.Extfs.write_file ext ~clock:c "/bench" data)
      (fun c -> ignore (Fsim.Extfs.read_file ext ~clock:c "/bench"))
  in
  Table.add_row t
    [ "Linux ext4 (MB/s)"; Printf.sprintf "%.0f" ext_r; Printf.sprintf "%.0f" ext_w; "1351 / 1282" ];
  Table.add_separator t;
  let gbit b = b *. 8.0 /. 1e9 in
  let smol_rx =
    gbit
      (Netsim.Tcp.throughput_estimate Netsim.Tcp.linux ~link:Netsim.Link.loopback
         ~rx:Netsim.Tcp.smoltcp)
  in
  let smol_tx =
    gbit
      (Netsim.Tcp.throughput_estimate Netsim.Tcp.smoltcp ~link:Netsim.Link.loopback
         ~rx:Netsim.Tcp.linux)
  in
  Table.add_row t
    [ "smoltcp (Gbit/s)"; Printf.sprintf "%.3f" smol_rx; Printf.sprintf "%.3f" smol_tx; "1.751 / 5.366" ];
  let lin =
    gbit
      (Netsim.Tcp.throughput_estimate Netsim.Tcp.linux ~link:Netsim.Link.loopback
         ~rx:Netsim.Tcp.linux)
  in
  Table.add_row t
    [ "Linux (Gbit/s)"; Printf.sprintf "%.2f" lin; Printf.sprintf "%.2f" lin; "27.76 / 28.56" ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 10: cold start latency.                                      *)

let fig10 () =
  let t =
    Table.create ~title:"Figure 10: cold start latency (no-ops)"
      ~columns:[ "System"; "Cold start"; "paper" ]
  in
  let paper =
    [
      ("AS", "1.3ms");
      ("AS-load-all", "89.4ms");
      ("Faastlane-T", "slightly < AS");
      ("Wasmer-T", "7.6ms");
      ("Wasmer", "342ms");
      ("Virtines", "22.8ms");
      ("Unikraft", "~137ms");
      ("gVisor", "slow (ptrace + Go)");
      ("Kata", "MicroVM boot");
      ("Faasm", "faaslet spawn");
      ("AS-Py", "CPython init");
      ("Faasm-Py", "slowest");
    ]
  in
  List.iter
    (fun (e : Singlefn.entry) ->
      let note = match List.assoc_opt e.Singlefn.label paper with Some p -> p | None -> "" in
      Table.add_row t [ e.Singlefn.label; pp_t e.Singlefn.cold_start; note ])
    (Singlefn.figure10 ());
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 11: intermediate data transfer latency.                      *)

let fig11 () =
  let sizes = [ kib 4; kib 64; mib 1; mib 16 ] in
  let platforms =
    [
      As_platform.alloystack;
      As_platform.alloystack_ifi;
      As_platform.alloystack_c;
      As_platform.alloystack_py;
      Faastlane.refer;
      Faastlane.ipc;
      Openfaas.openfaas;
      Faasm.c;
    ]
  in
  let t =
    Table.create ~title:"Figure 11: intermediate data transfer latency (pipe)"
      ~columns:("Platform" :: List.map Units.bytes_to_string sizes)
  in
  List.iter
    (fun (p : Platform.t) ->
      let cells =
        List.map
          (fun size ->
            let m = run_platform p (Pipe_app.app ~seed:171 ~size) in
            pp_t (Platform.phase_total m Fctx.phase_transfer))
          sizes
      in
      Table.add_row t (p.Platform.name :: cells))
    platforms;
  Table.print t;
  print_endline
    "paper @16MB: AS 951us, AS-C 697us, AS-Py 9631us; AS-IFI +0.8..33.7%;\n\
     Faastlane ~2.6x AS (and ~4us faster at 4KB); OpenFaaS highest\n"

(* ------------------------------------------------------------------ *)
(* Figures 12/13: end-to-end latency grids.                            *)

(* Renders a platforms x configs grid of e2e latency; each cell also
   shows the ratio relative to the first platform in the list. *)
let e2e_grid ~title ~configs platforms =
  let t = Table.create ~title ~columns:("Platform" :: List.map fst configs) in
  (* Workload apps are stateless across runs: build each once and share
     it between platforms (input generation is expensive at 300MB). *)
  let apps = List.map (fun (_, make) -> make ()) configs in
  let rows =
    List.map
      (fun (p : Platform.t) ->
        ( p.Platform.name,
          List.map (fun app -> (run_platform p app).Platform.e2e) apps ))
      platforms
  in
  let reference = match rows with (_, cells) :: _ -> cells | [] -> [] in
  List.iter
    (fun (name, cells) ->
      let rendered =
        List.map2
          (fun cell ref_cell ->
            let ratio = Units.to_us cell /. Float.max 1e-9 (Units.to_us ref_cell) in
            Printf.sprintf "%s (%.2fx)" (pp_t cell) ratio)
          cells reference
      in
      Table.add_row t (name :: rendered))
    rows;
  Table.print t

let wc_configs () =
  [
    ("10MB x1", fun () -> Wordcount.app ~seed:121 ~size:(scale (mib 10)) ~instances:1);
    ("100MB x3", fun () -> Wordcount.app ~seed:122 ~size:(scale (mib 100)) ~instances:3);
    ("300MB x5", fun () -> Wordcount.app ~seed:123 ~size:(scale (mib 300)) ~instances:5);
  ]

let ps_configs () =
  [
    ("1MB x1", fun () -> Parallel_sorting.app ~seed:124 ~size:(scale (mib 1)) ~instances:1);
    ("25MB x3", fun () -> Parallel_sorting.app ~seed:125 ~size:(scale (mib 25)) ~instances:3);
    ("50MB x5", fun () -> Parallel_sorting.app ~seed:126 ~size:(scale (mib 50)) ~instances:5);
  ]

let fc_configs () =
  [
    ("1MB len5", fun () -> Function_chain.app ~seed:127 ~payload:(scale (mib 1)) ~length:5);
    ("64MB len10", fun () -> Function_chain.app ~seed:128 ~payload:(scale (mib 64)) ~length:10);
    ("256MB len15", fun () -> Function_chain.app ~seed:129 ~payload:(scale (mib 256)) ~length:15);
  ]

let rust_platforms =
  [
    As_platform.alloystack;
    Faastlane.default_;
    Faastlane.refer;
    Faastlane.refer_kata;
    Openfaas.openfaas;
    Openfaas.openfaas_gvisor;
    Openfaas.openfaas_warm;
  ]

let fig12 () =
  e2e_grid ~title:"Figure 12(a-c): WordCount, Rust (cell = e2e, (nx) vs AlloyStack)"
    ~configs:(wc_configs ()) rust_platforms;
  e2e_grid ~title:"Figure 12(d-f): ParallelSorting, Rust" ~configs:(ps_configs ())
    rust_platforms;
  e2e_grid ~title:"Figure 12(g-i): FunctionChain, Rust" ~configs:(fc_configs ())
    rust_platforms;
  print_endline
    "paper: AS 2.1-3.29x vs Faastlane (PS multi-instance), 6.5-29.3x vs OpenFaaS(+gVisor);\n\
     Faastlane slightly faster on WordCount (rust-fatfs reads); kata up to 38.7x slower\n"

let fig13 () =
  let c_platforms = [ As_platform.alloystack_c; Faasm.c ] in
  let py_platforms = [ As_platform.alloystack_py; Faasm.python ] in
  e2e_grid ~title:"Figure 13: WordCount, C" ~configs:(wc_configs ()) c_platforms;
  e2e_grid ~title:"Figure 13: ParallelSorting, C" ~configs:(ps_configs ()) c_platforms;
  e2e_grid ~title:"Figure 13: FunctionChain, C" ~configs:(fc_configs ()) c_platforms;
  e2e_grid ~title:"Figure 13: WordCount, Python" ~configs:(wc_configs ()) py_platforms;
  e2e_grid ~title:"Figure 13: ParallelSorting, Python" ~configs:(ps_configs ()) py_platforms;
  e2e_grid ~title:"Figure 13: FunctionChain, Python" ~configs:(fc_configs ()) py_platforms;
  print_endline
    "paper: AS-C 1.02-2.77x (WC), 3.01-12.41x (FC) faster than Faasm; PS slightly\n\
     slower (Wasmtime 30% behind WAVM); AS-Py up to 78.4x on FunctionChain\n"

(* ------------------------------------------------------------------ *)
(* Figure 14: ablation of on-demand loading and reference passing.     *)

let fig14 () =
  let apps =
    [
      ("WC 10MB x5", fun () -> Wordcount.app ~seed:141 ~size:(scale (mib 10)) ~instances:5);
      ("PS 1MB x5", fun () -> Parallel_sorting.app ~seed:142 ~size:(scale (mib 1)) ~instances:5);
      ("FC 1MB len15", fun () -> Function_chain.app ~seed:143 ~payload:(scale (mib 1)) ~length:15);
    ]
  in
  let variants =
    [
      ("base", As_platform.ablation ~on_demand:false ~ref_passing:false);
      ("+on-demand", As_platform.ablation ~on_demand:true ~ref_passing:false);
      ("+ref-passing", As_platform.ablation ~on_demand:false ~ref_passing:true);
      ("+both", As_platform.ablation ~on_demand:true ~ref_passing:true);
    ]
  in
  let t =
    Table.create ~title:"Figure 14: contribution of each technique (e2e, -% vs base)"
      ~columns:("Variant" :: List.map fst apps)
  in
  let rows =
    List.map
      (fun (label, p) ->
        (label, List.map (fun (_, app) -> (run_platform p (app ())).Platform.e2e) apps))
      variants
  in
  let base = match rows with (_, cells) :: _ -> cells | [] -> [] in
  List.iter
    (fun (label, cells) ->
      let rendered =
        List.map2
          (fun c b ->
            Printf.sprintf "%s (-%.0f%%)" (pp_t c)
              (100.0 *. (1.0 -. (Units.to_us c /. Float.max 1e-9 (Units.to_us b)))))
          cells base
      in
      Table.add_row t (label :: rendered))
    rows;
  Table.print t;
  print_endline "paper: on-demand loading -40.2..48.0%, reference passing -34.7..51.0%\n"

(* ------------------------------------------------------------------ *)
(* Figure 15: end-to-end latency breakdown.                            *)

let fig15 () =
  let apps =
    [
      ("WordCount 100MB x3", fun () -> Wordcount.app ~seed:151 ~size:(scale (mib 100)) ~instances:3);
      ("ParallelSorting 25MB x3", fun () -> Parallel_sorting.app ~seed:152 ~size:(scale (mib 25)) ~instances:3);
      ("FunctionChain 64MB len10", fun () -> Function_chain.app ~seed:153 ~payload:(scale (mib 64)) ~length:10);
    ]
  in
  let platforms = [ As_platform.alloystack; Faastlane.refer; Faasm.c ] in
  List.iter
    (fun (app_label, app) ->
      let t =
        Table.create
          ~title:(Printf.sprintf "Figure 15: breakdown - %s" app_label)
          ~columns:[ "Platform"; "read input"; "compute"; "transfer"; "e2e" ]
      in
      List.iter
        (fun (p : Platform.t) ->
          let m = run_platform p (app ()) in
          Table.add_row t
            [
              p.Platform.name;
              pp_t (Platform.phase_total m Fctx.phase_read);
              pp_t (Platform.phase_total m Fctx.phase_compute);
              pp_t (Platform.phase_total m Fctx.phase_transfer);
              pp_t m.Platform.e2e;
            ])
        platforms;
      Table.print t)
    apps;
  print_endline
    "paper: AS reads input 6.9-8.1x slower than Faastlane (rust-fatfs);\n\
     AS compute ~1.4x slower than Faasm on WASM workloads (Wasmtime vs WAVM)\n"

(* ------------------------------------------------------------------ *)
(* Figure 16: ramfs (removing the filesystem difference).              *)

let fig16 () =
  let t =
    Table.create ~title:"Figure 16: ParallelSorting 25MB on ramfs (e2e)"
      ~columns:[ "Platform"; "x1"; "x3"; "x5" ]
  in
  List.iter
    (fun (p : Platform.t) ->
      let cells =
        List.map
          (fun instances ->
            let app = Parallel_sorting.app ~seed:161 ~size:(scale (mib 25)) ~instances in
            pp_t (run_platform p app).Platform.e2e)
          [ 1; 3; 5 ]
      in
      Table.add_row t (p.Platform.name :: cells))
    [ As_platform.alloystack_ramfs; Faastlane.refer_kata_warm_ramfs ];
  Table.print t;
  print_endline
    "paper: with fs differences removed AlloyStack still slightly wins\n\
     (hardware virtualisation taxes the MicroVM's computation)\n"

(* ------------------------------------------------------------------ *)
(* Figure 17: tail latency under load; CPU/memory usage.               *)

let fig17 () =
  let app () = Parallel_sorting.app ~seed:171 ~size:(scale (mib 25)) ~instances:3 in
  let as_m = run_platform As_platform.alloystack (app ()) in
  let kata_m = run_platform Faastlane.refer_kata (app ()) in
  let qps_list = [ 20.0; 40.0; 80.0; 120.0; 160.0; 200.0 ] in
  let t =
    Table.create ~title:"Figure 17a: P99 latency vs QPS (ParallelSorting 25MB x3)"
      ~columns:("Platform" :: List.map (fun q -> Printf.sprintf "%.0fqps" q) qps_list)
  in
  let row label service contention =
    let spec = { Loadgen.cores = 96; width = 3; service; contention } in
    let cells =
      List.map
        (fun qps ->
          pp_t
            (Loadgen.run spec ~qps ~requests:(if !quick then 150 else 600)).Loadgen.p99)
        qps_list
    in
    Table.add_row t (label :: cells)
  in
  row "AlloyStack" as_m.Platform.e2e 0.001;
  row "Faastlane-refer-kata" kata_m.Platform.e2e 0.02;
  Table.print t;
  print_endline
    "paper: kata P99 rises steeply with QPS (rootfs/cgroup contention under\n\
     concurrency); AlloyStack stays flat until CPU saturation; up to 7.4x lower P99\n";
  let app5 () = Parallel_sorting.app ~seed:172 ~size:(scale (mib 25)) ~instances:5 in
  let as5 = run_platform As_platform.alloystack (app5 ()) in
  let kata5 = run_platform Faastlane.refer_kata (app5 ()) in
  let t =
    Table.create ~title:"Figure 17b: CPU / memory per workflow instance"
      ~columns:[ "Platform"; "CPU time"; "Peak RSS"; "vs AlloyStack" ]
  in
  Table.add_row t
    [
      "AlloyStack";
      pp_t as5.Platform.cpu_time;
      Units.bytes_to_string as5.Platform.peak_rss;
      "1.00x / 1.00x";
    ];
  Table.add_row t
    [
      "Faastlane-refer-kata";
      pp_t kata5.Platform.cpu_time;
      Units.bytes_to_string kata5.Platform.peak_rss;
      Printf.sprintf "%.2fx / %.2fx"
        (Units.to_us kata5.Platform.cpu_time /. Float.max 1e-9 (Units.to_us as5.Platform.cpu_time))
        (float_of_int kata5.Platform.peak_rss /. Float.max 1.0 (float_of_int as5.Platform.peak_rss));
    ];
  Table.print t;
  print_endline "paper: AlloyStack reduces CPU by ~2.4x and memory by ~3.2x\n"

(* ------------------------------------------------------------------ *)
(* Microbenchmarks (bechamel): primitive costs of the implementation.  *)

let micro () =
  let open Bechamel in
  let alloc_free =
    Test.make ~name:"alloc+free 4KB (first-fit)"
      (Staged.stage
         (let a = Mem.Alloc.create ~base:0 ~size:(mib 1) () in
          fun () ->
            match Mem.Alloc.alloc a ~size:4096 ~align:4096 with
            | Some addr -> Mem.Alloc.free a addr
            | None -> ()))
  in
  let scanner =
    let image =
      Isa.Image.create ~name:"m" ~toolchain:Isa.Image.Rust_as_std
        (List.init 200 (fun i ->
             if i mod 3 = 0 then Isa.Inst.Mov_imm (Int32.of_int i) else Isa.Inst.Add))
    in
    Test.make ~name:"blacklist scan (200 instrs)"
      (Staged.stage (fun () -> ignore (Isa.Scanner.scan image)))
  in
  let wasm_interp =
    let inst = Wasm.Interp.instantiate Wasm.Builder.sum_to_n in
    Test.make ~name:"wasm interp sum(1000)"
      (Staged.stage (fun () -> ignore (Wasm.Interp.call inst "sum" [| 1000L |])))
  in
  let wasm_aot =
    let inst = Wasm.Aot.instantiate (Wasm.Aot.compile Wasm.Builder.sum_to_n) in
    Test.make ~name:"wasm aot sum(1000)"
      (Staged.stage (fun () -> ignore (Wasm.Aot.call inst "sum" [| 1000L |])))
  in
  let fat_io =
    let fs = Fsim.Fat.format (Fsim.Blockdev.create ~sectors:65536) in
    let data = Bytes.make 65536 'x' in
    Test.make ~name:"fat write+read 64KB"
      (Staged.stage (fun () ->
           Fsim.Fat.write_file fs "/bench" data;
           ignore (Fsim.Fat.read_file fs "/bench")))
  in
  let tests =
    Test.make_grouped ~name:"micro" [ alloc_free; scanner; wasm_interp; wasm_aot; fat_io ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Table.create ~title:"Microbenchmarks (host time per op)" ~columns:[ "Benchmark"; "ns/op" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let cell =
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.sprintf "%.1f" est
        | _ -> "n/a"
      in
      rows := (name, cell) :: !rows)
    results;
  List.iter (fun (name, cell) -> Table.add_row t [ name; cell ]) (List.sort compare !rows);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper's figures: the 9 mechanisms and design
   ablations DESIGN.md calls out.                                      *)

let ext () =
  (* Multi-node WFD split (9): the price of leaving the shared address
     space. *)
  let app = Function_chain.app ~seed:191 ~payload:(scale (mib 16)) ~length:8 in
  let t =
    Table.create ~title:"Extension: multi-node WFD split (FunctionChain 16MB len8)"
      ~columns:[ "Deployment"; "e2e"; "vs 1 node" ]
  in
  let base = ref Units.zero in
  List.iter
    (fun nodes ->
      let m = run_platform (As_multinode.make ~nodes ()) app in
      if nodes = 1 then base := m.Platform.e2e;
      Table.add_row t
        [
          Printf.sprintf "%d node(s)" nodes;
          pp_t m.Platform.e2e;
          Printf.sprintf "%.2fx"
            (Units.to_us m.Platform.e2e /. Float.max 1e-9 (Units.to_us !base));
        ])
    [ 1; 2; 4 ];
  Table.print t;
  print_endline
    "9: cross-WFD hops pay serialisation + the wire; within a WFD they are free
";
  (* Elasticity: burst handling vs node capacity. *)
  let open Alloystack_core in
  let wf =
    Workflow.create_exn ~name:"burst"
      ~nodes:
        [
          { Workflow.node_id = "f"; language = Workflow.Rust; instances = 4;
            required_modules = [ "mm" ] };
        ]
      ~edges:[]
  in
  let kernel (actx : Asstd.ctx) ~instance:_ ~total:_ = Asstd.compute actx (Units.ms 25) in
  let t =
    Table.create ~title:"Extension: burst elasticity (width-4 workflow, 25ms compute)"
      ~columns:[ "Cluster"; "Burst"; "P99"; "queued" ]
  in
  List.iter
    (fun (label, nodes, count) ->
      let g = Gateway.create ~nodes () in
      Gateway.register g ~endpoint:"b" ~workflow:wf ~bindings:[ ("f", Visor.bind kernel) ] ();
      let r = Gateway.invoke_burst g ~endpoint:"b" ~count in
      Table.add_row t
        [ label; string_of_int count; pp_t r.Gateway.p99; string_of_int r.Gateway.queued ])
    [
      ("1 node x 16 cores", [ { Gateway.node_name = "n0"; cores = 16 } ], 12);
      ( "2 nodes x 16 cores",
        [ { Gateway.node_name = "n0"; cores = 16 }; { Gateway.node_name = "n1"; cores = 16 } ],
        12 );
      ("1 node x 64 cores", [ { Gateway.node_name = "n0"; cores = 64 } ], 12);
    ];
  Table.print t;
  (* Allocator policy ablation (design choice in DESIGN.md). *)
  let t =
    Table.create ~title:"Extension: buffer-heap allocator policy (mixed alloc/free trace)"
      ~columns:[ "Policy"; "holes after trace"; "largest hole" ]
  in
  List.iter
    (fun (label, policy) ->
      let a = Mem.Alloc.create ~policy ~base:0 ~size:(mib 8) () in
      let rng = Rng.create 7 in
      let live = ref [] in
      for _ = 1 to 2000 do
        if Rng.int rng 3 = 0 && !live <> [] then begin
          match !live with
          | b :: rest ->
              Mem.Alloc.free a b;
              live := rest
          | [] -> ()
        end
        else begin
          let size = 64 + Rng.int rng 16384 in
          match Mem.Alloc.alloc a ~size ~align:64 with
          | Some b -> live := b :: !live
          | None -> ()
        end
      done;
      Table.add_row t
        [
          label;
          string_of_int (Mem.Alloc.hole_count a);
          Units.bytes_to_string (Mem.Alloc.largest_hole a);
        ])
    [ ("first-fit (paper default)", Mem.Alloc.First_fit); ("best-fit", Mem.Alloc.Best_fit) ];
  Table.print t;
  (* Trampoline cost sensitivity: how much do MPK switches matter? *)
  let t =
    Table.create ~title:"Extension: syscall-path cost per as-std call"
      ~columns:[ "Component"; "cost" ]
  in
  Table.add_row t [ "trampoline switch (one way)"; pp_t Cost.trampoline_switch ];
  Table.add_row t [ "wrpkru"; pp_t Cost.wrpkru ];
  Table.add_row t [ "slot-map op (mm)"; pp_t Cost.slot_map_op ];
  Table.add_row t [ "smart pointer (AsBuffer)"; pp_t Cost.smart_pointer_overhead ];
  Table.add_row t [ "dlmopen namespace (slow path)"; pp_t Cost.dlmopen_namespace ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Chaos: seeded fault injection over a producer/consumer workflow.
   Reports completion rate and retry cost under the §3.1 failure model,
   and demonstrates that identical seeds replay identical runs.        *)

let chaos () =
  let open Alloystack_core in
  let node id =
    { Workflow.node_id = id; language = Workflow.Rust; instances = 1; required_modules = [] }
  in
  let wf =
    Workflow.create_exn ~name:"chaos" ~nodes:[ node "p"; node "c" ] ~edges:[ ("p", "c") ]
  in
  let produce (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    Asstd.write_whole_file ctx "/chaos" (Bytes.make (kib 64) 'p');
    ignore (Asbuffer.with_slot_raw ctx ~slot:"s" (Bytes.make (kib 16) 'b'))
  in
  let consume (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    ignore (Asstd.read_whole_file ctx "/chaos");
    ignore (Asbuffer.from_slot_raw ctx ~slot:"s")
  in
  let bindings = [ ("p", Visor.bind produce); ("c", Visor.bind consume) ] in
  let run_one seed =
    let plan = Fault.create ~seed () in
    Fault.inject plan ~site:Fault.site_fn_crash (Fault.Probability 0.12);
    Fault.inject plan ~site:Fault.site_fn_hang (Fault.Probability 0.04);
    Fault.inject plan ~site:Fault.site_mem_alloc (Fault.Probability 0.03);
    Fault.inject plan ~site:Fault.site_vfs_read (Fault.Probability 0.03);
    let config =
      {
        Visor.default_config with
        Visor.fault = Some plan;
        retry = Visor.Retry_function 3;
        timeout = Some (Units.ms 80);
        backoff = Visor.Exponential { base = Units.ms 2; factor = 2.0; limit = Units.ms 20 };
      }
    in
    match Visor.run ~config ~workflow:wf ~bindings () with
    | r -> (true, r.Visor.retries, Units.to_us r.Visor.e2e, Fault.schedule plan)
    | exception Visor.Function_failed _ -> (false, 0, 0.0, Fault.schedule plan)
  in
  let runs = if !quick then 12 else 40 in
  let batch () = List.init runs (fun i -> run_one (1000 + i)) in
  let a = batch () in
  let b = batch () in
  let completed = List.filter (fun (ok, _, _, _) -> ok) a in
  let retries = List.fold_left (fun acc (_, r, _, _) -> acc + r) 0 a in
  let faults =
    List.fold_left
      (fun acc (_, _, _, sched) -> List.fold_left (fun acc (_, n) -> acc + n) acc sched)
      0 a
  in
  let e2e = Stats.create () in
  List.iter (fun (_, _, us, _) -> Stats.add e2e us) completed;
  let t =
    Table.create
      ~title:(Printf.sprintf "Chaos: %d seeded runs (crash 12%%, hang 4%%, alloc/io 3%%)" runs)
      ~columns:[ "Metric"; "Value" ]
  in
  Table.add_row t
    [
      "completion rate";
      Printf.sprintf "%d/%d (%.0f%%)" (List.length completed) runs
        (100.0 *. float_of_int (List.length completed) /. float_of_int runs);
    ];
  Table.add_row t [ "faults injected"; string_of_int faults ];
  Table.add_row t [ "function restarts"; string_of_int retries ];
  if not (Stats.is_empty e2e) then begin
    Table.add_row t [ "mean e2e (completed)"; pp_t (Stats.mean_time e2e) ];
    Table.add_row t [ "p99 e2e (completed)"; pp_t (Stats.percentile_time e2e 99.0) ]
  end;
  Table.add_row t [ "same-seed batch replays"; if a = b then "yes" else "NO (bug)" ];
  Table.print t;
  print_endline
    "3.1: crashes are contained by MPK isolation; the visor recovers the heap\n\
     unit and restarts the function, so most runs still complete\n"

(* ------------------------------------------------------------------ *)
(* Serving: the multi-tenant warm-pool server under seeded open-loop
   load.  Two identically seeded runs are bit-identical (the CI smoke
   job diffs them); emits BENCH_serving.json next to the table.        *)

(* One serving leg's artifacts: the report plus every deterministic
   observability document byte-compared across domain counts. *)
type serving_leg = {
  lg_report : Alloystack_core.Visor.Server.serve_report;
  lg_wall_ms : float;
  lg_breakdown : Alloystack_core.Jsonlite.t;
  lg_trace : string;
  lg_metrics : string;
  lg_prom : string;
  lg_csv : string;
  lg_alerts : string;
  lg_slo : Alloystack_core.Jsonlite.t;
  lg_tails : Alloystack_core.Jsonlite.t;
  lg_tails_render : string;
}

let serving () =
  let open Alloystack_core in
  let node ?(instances = 1) ?(language = Workflow.Rust) ?(modules = []) id =
    { Workflow.node_id = id; language; instances; required_modules = modules }
  in
  (* Small admitted images so the content-hash admission cache has real
     work: one scan per distinct image, then cache hits.  The admission
     cache keys on instruction content (the name is not hashed), so
     each image salts its instruction stream with its name — four
     distinct images means exactly four scans, everything else hits. *)
  let image name =
    let salt = Hashtbl.hash name in
    Isa.Image.create ~name ~toolchain:Isa.Image.Rust_as_std
      (Isa.Inst.Mov_imm (Int32.of_int (salt land 0xffff))
      :: List.init 160 (fun i ->
             if i mod 5 = 0 then Isa.Inst.Mov_imm (Int32.of_int i) else Isa.Inst.Add))
  in
  (* The thumb chain hands its 32 KiB intermediate to the next stage
     through AsBuffer reference passing (the paper's zero-copy path),
     so the serving benchmark exercises asbuffer.transfer_bytes the
     way a real workflow would — not through a private scratch file. *)
  (* One shared payload for every producer call: the store path blits
     it into the buffer pages and keeps no reference, so re-allocating
     32 KiB per request was pure allocation.  The consumer drains the
     slot without materialising a copy — same virtual path, no host
     bytes. *)
  let thumb_payload = Bytes.make (kib 32) 'd' in
  let produce_kernel slot ms (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    Asstd.compute ctx (Units.ms ms);
    ignore (Asbuffer.with_slot_raw ctx ~slot thumb_payload)
  in
  let consume_kernel slot ms (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    ignore (Asbuffer.consume_slot_raw ctx ~slot);
    Asstd.compute ctx (Units.ms ms)
  in
  let compute_kernel ms (ctx : Asstd.ctx) ~instance:_ ~total:_ =
    Asstd.compute ctx (Units.ms ms)
  in
  (* Three tenants: a Rust chain, a Rust fan-out and a Python endpoint
     (the one that gains most from a warm CPython template). *)
  let chain_wf =
    Workflow.create_exn ~name:"thumb"
      ~nodes:[ node ~modules:[ "fdtab" ] "extract"; node "render" ]
      ~edges:[ ("extract", "render") ]
  in
  let chain_bindings =
    [
      ("extract", Visor.bind ~image:(image "extract") (produce_kernel "thumb" 6));
      ("render", Visor.bind ~image:(image "render") (consume_kernel "thumb" 8));
    ]
  in
  let fanout_wf =
    Workflow.create_exn ~name:"etl"
      ~nodes:[ node ~instances:8 ~modules:[ "mm" ] "shard" ]
      ~edges:[]
  in
  let fanout_bindings =
    [ ("shard", Visor.bind ~image:(image "shard") (compute_kernel 12)) ]
  in
  let py_wf =
    Workflow.create_exn ~name:"mlinf"
      ~nodes:[ node ~language:Workflow.Python "infer" ]
      ~edges:[]
  in
  let py_bindings =
    [ ("infer", Visor.bind ~image:(image "infer") (compute_kernel 10)) ]
  in
  let endpoints_spec =
    [
      ("thumb", chain_wf, chain_bindings);
      ("etl", fanout_wf, fanout_bindings);
      ("mlinf", py_wf, py_bindings);
    ]
  in
  let seed = 42 in
  let qps = 900.0 in
  let count = if !quick then 150 else 400 in
  let eps = Array.of_list (List.map (fun (e, _, _) -> e) endpoints_spec) in
  (* Streaming seeded generator (constant memory); draws are identical
     to the old materialised List.init, so the schedule is unchanged. *)
  let stream_requests ~qps ~count () =
    let next = Loadgen.request_stream ~seed ~qps ~endpoints:eps ~count () in
    fun () ->
      match next () with
      | None -> None
      | Some (endpoint, arrival) -> Some { Visor.Server.endpoint; arrival }
  in
  let requests =
    let next = stream_requests ~qps ~count () in
    let rec all acc =
      match next () with None -> List.rev acc | Some r -> all (r :: acc)
    in
    all []
  in
  (* Two burn-rate SLOs on every telemetry-enabled leg: a tight one the
     cold pool plausibly violates and a loose availability objective. *)
  let slo_specs () =
    [
      Slo.spec ~name:"lat50" ~latency:(Units.ms 50) ~objective:0.99 ();
      Slo.spec ~name:"lat200" ~latency:(Units.ms 200) ~objective:0.999 ();
    ]
  in
  let alert_json (a : Slo.alert) =
    Jsonlite.Obj
      [
        ("slo", Jsonlite.String a.Slo.al_slo);
        ( "kind",
          Jsonlite.String
            (match a.Slo.al_kind with Slo.Page -> "page" | Slo.Clear -> "clear") );
        ("at_s", Jsonlite.Float (Units.to_sec a.Slo.al_at));
        ("burn_fast", Jsonlite.Float a.Slo.al_fast);
        ("burn_slow", Jsonlite.Float a.Slo.al_slow);
      ]
  in
  let slo_json server =
    Jsonlite.Obj
      [
        ( "monitors",
          Jsonlite.List
            (List.map
               (fun m ->
                 let fast, slow = Slo.burn_rates m in
                 Jsonlite.Obj
                   [
                     ("name", Jsonlite.String (Slo.name m));
                     ("good", Jsonlite.Int (Slo.good m));
                     ("total", Jsonlite.Int (Slo.total m));
                     ("compliance", Jsonlite.Float (Slo.compliance m));
                     ("burn_fast", Jsonlite.Float fast);
                     ("burn_slow", Jsonlite.Float slow);
                     ("paging", Jsonlite.Bool (Slo.paging m));
                   ])
               (Visor.Server.slo_monitors server)) );
        ( "alerts",
          Jsonlite.List (List.map alert_json (Visor.Server.slo_alerts server)) );
      ]
  in
  let run_mode ~warm =
    let server = Visor.Server.create ~warm () in
    List.iter
      (fun (endpoint, workflow, bindings) ->
        Visor.Server.register server ~endpoint ~workflow ~bindings ())
      endpoints_spec;
    Visor.Server.enable_telemetry server ~slos:(slo_specs ()) ();
    let report = Visor.Server.serve server requests in
    let csv =
      match Visor.Server.telemetry server with
      | Some ts -> Timeseries.to_csv ts
      | None -> ""
    in
    let alerts =
      String.concat "\n"
        (List.map Slo.render_alert (Visor.Server.slo_alerts server))
    in
    let slo = slo_json server in
    Visor.Server.shutdown server;
    (report, csv, alerts, slo)
  in
  (* Span-trace both pool modes.  The per-request critical-path
     aggregate and the exported trace / metrics documents are pure
     virtual-time artifacts, so the CI smoke job diffs them across two
     runs alongside the summary JSON. *)
  let request_breakdown () =
    let roots =
      List.filter
        (fun (sp : Span.span) -> String.equal sp.Span.sp_category "request")
        (Span.roots Span.global)
    in
    let bds =
      List.map (fun (sp : Span.span) -> Obs.breakdown ~root:sp.Span.sp_id ()) roots
    in
    let sum f = List.fold_left (fun acc bd -> Units.add acc (f bd)) Units.zero bds in
    let ns t = Jsonlite.Int (Int64.to_int (Units.to_ns t)) in
    Jsonlite.Obj
      [
        ("requests", Jsonlite.Int (List.length bds));
        ("total_ns", ns (sum (fun bd -> bd.Obs.bd_total)));
        ( "buckets",
          Jsonlite.Obj
            (List.map
               (fun c -> (c, ns (sum (fun bd -> List.assoc c bd.Obs.bd_buckets))))
               (Obs.categories @ [ "other" ])) );
      ]
  in
  let mode_json (r : Visor.Server.serve_report) =
    Jsonlite.Obj
      [
        ("completed", Jsonlite.Int r.Visor.Server.completed);
        ("failed", Jsonlite.Int r.Visor.Server.failed);
        ("throughput_rps", Jsonlite.Float r.Visor.Server.throughput_rps);
        ("mean_us", Jsonlite.Float (Units.to_us r.Visor.Server.mean_latency));
        ("p50_us", Jsonlite.Float (Units.to_us r.Visor.Server.p50_latency));
        ("p99_us", Jsonlite.Float (Units.to_us r.Visor.Server.p99_latency));
        ("max_inflight", Jsonlite.Int r.Visor.Server.max_inflight);
        ("warm_starts", Jsonlite.Int r.Visor.Server.warm_starts);
        ("cold_starts", Jsonlite.Int r.Visor.Server.cold_starts);
        ("admission_hits", Jsonlite.Int r.Visor.Server.adm_hits);
        ("admission_scans", Jsonlite.Int r.Visor.Server.adm_scans);
        ("evictions", Jsonlite.Int r.Visor.Server.evictions);
        ("peak_rss", Jsonlite.Int r.Visor.Server.machine_peak_rss);
      ]
  in
  (* Every response field is virtual time or a deterministic counter:
     the per-response fingerprint must match across domain counts. *)
  let fingerprint (r : Visor.Server.serve_report) =
    String.concat ";"
      (List.map
         (fun (p : Visor.Server.response) ->
           Printf.sprintf "%s,%Ld,%Ld,%b,%b,%d,%d" p.Visor.Server.r_endpoint
             (Units.to_ns p.Visor.Server.r_arrival)
             (Units.to_ns p.Visor.Server.r_finish)
             p.Visor.Server.r_warm p.Visor.Server.r_ok p.Visor.Server.r_attempts
             p.Visor.Server.r_retries)
         r.Visor.Server.responses)
  in
  (* Each pool mode runs on one domain and on the requested pool: wall
     time is allowed to differ, every virtual artifact (responses,
     summary, span breakdown, trace and metrics exports) must be
     byte-identical.  CI re-checks this across separate --domains
     invocations. *)
  let run_at ~domains ~warm =
    Par.set_domains domains;
    reset_observability ();
    Span.set_enabled Span.global true;
    let t0 = Unix.gettimeofday () in
    let r, csv, alerts, slo = run_mode ~warm in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let bd = request_breakdown () in
    let trace = Obs.trace_json_string () in
    let metrics = Obs.metrics_json_string () in
    let prom = Obs.prometheus_string () in
    let tails = Obs.tails () in
    Span.set_enabled Span.global false;
    Par.set_domains 1;
    {
      lg_report = r;
      lg_wall_ms = wall_ms;
      lg_breakdown = bd;
      lg_trace = trace;
      lg_metrics = metrics;
      lg_prom = prom;
      lg_csv = csv;
      lg_alerts = alerts;
      lg_slo = slo;
      lg_tails = Obs.tails_json tails;
      lg_tails_render = Obs.render_tails tails;
    }
  in
  let nd = bench_domains () in
  let warm1 = run_at ~domains:1 ~warm:true in
  let cold1 = run_at ~domains:1 ~warm:false in
  let warm = run_at ~domains:nd ~warm:true in
  let cold = run_at ~domains:nd ~warm:false in
  let warm_r1 = warm1.lg_report and cold_r1 = cold1.lg_report in
  let warm_r = warm.lg_report and cold_r = cold.lg_report in
  let warm_ms1 = warm1.lg_wall_ms and cold_ms1 = cold1.lg_wall_ms in
  let warm_ms = warm.lg_wall_ms and cold_ms = cold.lg_wall_ms in
  let trace_doc = warm.lg_trace and metrics_doc = warm.lg_metrics in
  let check label a b =
    if not (String.equal a b) then begin
      Printf.eprintf
        "serving: %s differs between --domains 1 and --domains %d\n" label nd;
      exit 1
    end
  in
  check "warm responses" (fingerprint warm_r1) (fingerprint warm_r);
  check "cold responses" (fingerprint cold_r1) (fingerprint cold_r);
  check "warm summary"
    (Jsonlite.to_string (mode_json warm_r1))
    (Jsonlite.to_string (mode_json warm_r));
  check "cold summary"
    (Jsonlite.to_string (mode_json cold_r1))
    (Jsonlite.to_string (mode_json cold_r));
  check "warm breakdown" (Jsonlite.to_string warm1.lg_breakdown)
    (Jsonlite.to_string warm.lg_breakdown);
  check "cold breakdown" (Jsonlite.to_string cold1.lg_breakdown)
    (Jsonlite.to_string cold.lg_breakdown);
  check "warm trace export" warm1.lg_trace trace_doc;
  check "cold trace export" cold1.lg_trace cold.lg_trace;
  check "warm metrics export" warm1.lg_metrics metrics_doc;
  check "cold metrics export" cold1.lg_metrics cold.lg_metrics;
  (* The new observability artifacts obey the same contract: every
     timeseries window, alert instant, tail verdict and exporter byte
     is identical whatever the host domain pool width. *)
  check "warm prometheus export" warm1.lg_prom warm.lg_prom;
  check "cold prometheus export" cold1.lg_prom cold.lg_prom;
  check "warm timeseries csv" warm1.lg_csv warm.lg_csv;
  check "cold timeseries csv" cold1.lg_csv cold.lg_csv;
  check "warm slo alerts" warm1.lg_alerts warm.lg_alerts;
  check "cold slo alerts" cold1.lg_alerts cold.lg_alerts;
  check "warm slo summary" (Jsonlite.to_string warm1.lg_slo)
    (Jsonlite.to_string warm.lg_slo);
  check "cold slo summary" (Jsonlite.to_string cold1.lg_slo)
    (Jsonlite.to_string cold.lg_slo);
  check "warm tails" warm1.lg_tails_render warm.lg_tails_render;
  check "cold tails" cold1.lg_tails_render cold.lg_tails_render;
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Serving: %d requests, 3 tenants, seeded open loop (seed %d)"
           count seed)
      ~columns:
        [ "Pool"; "done"; "req/s"; "p50"; "p99"; "max inflight"; "warm/cold";
          "adm hit/scan" ]
  in
  let row label (r : Visor.Server.serve_report) =
    Table.add_row t
      [
        label;
        string_of_int r.Visor.Server.completed;
        Printf.sprintf "%.0f" r.Visor.Server.throughput_rps;
        pp_t r.Visor.Server.p50_latency;
        pp_t r.Visor.Server.p99_latency;
        string_of_int r.Visor.Server.max_inflight;
        Printf.sprintf "%d/%d" r.Visor.Server.warm_starts r.Visor.Server.cold_starts;
        Printf.sprintf "%d/%d" r.Visor.Server.adm_hits r.Visor.Server.adm_scans;
      ]
  in
  row "warm (template clone)" warm_r;
  row "cold (no pool)" cold_r;
  Table.print t;
  (* Burn-rate alerts and the warm-pool tail attribution, both
     deterministic; the cold run's tail table is in the JSON. *)
  if String.length warm.lg_alerts > 0 then
    Printf.printf "warm alerts:\n%s\n" warm.lg_alerts;
  if String.length cold.lg_alerts > 0 then
    Printf.printf "cold alerts:\n%s\n" cold.lg_alerts;
  print_string warm.lg_tails_render;
  print_newline ();
  (* Single-request boot comparison: the substitution the warm pool
     makes on the critical path. *)
  let one ~warm ~prewarm =
    let server = Visor.Server.create ~warm () in
    Visor.Server.register server ~endpoint:"mlinf" ~workflow:py_wf
      ~bindings:py_bindings ();
    if prewarm then ignore (Visor.Server.prewarm server ~endpoint:"mlinf");
    let r =
      Visor.Server.serve server
        [ { Visor.Server.endpoint = "mlinf"; arrival = Units.zero } ]
    in
    Visor.Server.shutdown server;
    match r.Visor.Server.responses with
    | [ resp ] -> resp.Visor.Server.r_latency
    | _ -> Units.zero
  in
  let warm_one = one ~warm:true ~prewarm:true in
  let cold_one = one ~warm:false ~prewarm:false in
  Printf.printf
    "single Python request: cold boot %s vs warm clone %s (%.1fx)\n\n" (pp_t cold_one)
    (pp_t warm_one)
    (Units.to_us cold_one /. Float.max 1e-9 (Units.to_us warm_one));
  Printf.printf
    "host parallel: %d domains; cold wall %.0f ms -> %.0f ms (%.2fx), warm %.0f ms -> %.0f ms (%.2fx)\n\n"
    nd cold_ms1 cold_ms
    (cold_ms1 /. Float.max 1e-9 cold_ms)
    warm_ms1 warm_ms
    (warm_ms1 /. Float.max 1e-9 warm_ms);
  (* --sweep: qps sweep (latency-vs-load curve + saturation knee) and
     the 10^5-request streaming scale leg.  Observability is sampled
     1-in-k so trace/span state stays O(n/k); metrics raw reservoirs
     are thinned the same way.  Virtual outputs stay deterministic and
     the scale leg is asserted byte-identical across domain counts. *)
  let register_all server =
    List.iter
      (fun (endpoint, workflow, bindings) ->
        Visor.Server.register server ~endpoint ~workflow ~bindings ())
      endpoints_spec
  in
  let sample_every = 64 in
  (* Largest sweep point strictly below the saturation knee — the rate
     the soak leg runs at.  Without --sweep the default matches the
     measured sub-knee point of the full sweep. *)
  let sub_knee_qps = ref 300.0 in
  let summary_json (s : Visor.Server.summary) =
    Jsonlite.Obj
      [
        ("completed", Jsonlite.Int s.Visor.Server.sm_completed);
        ("failed", Jsonlite.Int s.Visor.Server.sm_failed);
        ("throughput_rps", Jsonlite.Float s.Visor.Server.sm_throughput_rps);
        ("mean_us", Jsonlite.Float (Units.to_us s.Visor.Server.sm_mean_latency));
        ("p50_us", Jsonlite.Float (Units.to_us s.Visor.Server.sm_p50_latency));
        ("p99_us", Jsonlite.Float (Units.to_us s.Visor.Server.sm_p99_latency));
        ("max_inflight", Jsonlite.Int s.Visor.Server.sm_max_inflight);
        ("warm_starts", Jsonlite.Int s.Visor.Server.sm_warm_starts);
        ("cold_starts", Jsonlite.Int s.Visor.Server.sm_cold_starts);
        ("latency_sketched", Jsonlite.Bool s.Visor.Server.sm_latency_sketched);
      ]
  in
  (* Constant-memory serve: fold each response through [f] as it
     completes (never materialised), latency percentiles from the
     server's t-digest.  Probes live words (full major + stat) in
     flight so the flat-memory claim is checked at peak, not after the
     GC has cleaned up — live words, not heap size, because the major
     heap legitimately expands with allocation churn at 10^6. *)
  let run_fold ~qps ~count ~sample_every ~exact =
    Par.set_domains nd;
    reset_observability ();
    Metrics.set_raw_sample_every ~seed sample_every;
    let server =
      Visor.Server.create ~warm:true ~sample_every ~sample_seed:seed
        ~sketch_latency:true ()
    in
    register_all server;
    let exact_lat = Stats.create () in
    let seen = ref 0 in
    let peak_live = ref 0 in
    let t0 = Unix.gettimeofday () in
    let (), s =
      Visor.Server.serve_fold server
        (stream_requests ~qps ~count ())
        ~init:()
        ~f:(fun () (p : Visor.Server.response) ->
          incr seen;
          if exact && p.Visor.Server.r_ok then
            Stats.add_time exact_lat p.Visor.Server.r_latency;
          if !seen land 16383 = 0 then begin
            Gc.full_major ();
            peak_live := Stdlib.max !peak_live (Gc.stat ()).Gc.live_words
          end)
    in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    Visor.Server.shutdown server;
    Metrics.set_raw_sample_every 1;
    Par.set_domains 1;
    (s, exact_lat, wall_ms, !peak_live)
  in
  let sweep_sections =
    if not !sweep_flag then []
    else begin
      let sweep_count = if !quick then 300 else 1500 in
      let points = [ 300.0; 600.0; 900.0; 1200.0; 1500.0; 1800.0 ] in
      let run_point q =
        reset_observability ();
        Metrics.set_raw_sample_every ~seed sample_every;
        let server =
          Visor.Server.create ~warm:true ~sample_every ~sample_seed:seed ()
        in
        register_all server;
        let r =
          Visor.Server.serve_stream server
            (stream_requests ~qps:q ~count:sweep_count ())
        in
        Visor.Server.shutdown server;
        Metrics.set_raw_sample_every 1;
        r
      in
      let results = List.map (fun q -> (q, run_point q)) points in
      (* Saturation knee: the first offered load whose p99 blows past
         2x the lightest point's p99 (the curve's elbow); if the sweep
         never saturates, the knee is the last point. *)
      let base_p99 =
        match results with
        | (_, r0) :: _ -> Units.to_us r0.Visor.Server.p99_latency
        | [] -> 0.0
      in
      let knee_qps =
        match
          List.find_opt
            (fun (_, (r : Visor.Server.serve_report)) ->
              Units.to_us r.Visor.Server.p99_latency > 2.0 *. base_p99)
            results
        with
        | Some (q, _) -> q
        | None -> ( match List.rev results with (q, _) :: _ -> q | [] -> 0.0)
      in
      (* The soak rate must be sustainable for a virtual hour, so pick
         the largest point where the server kept pace with arrivals
         (measured throughput within 5% of the offered rate) — the
         p99-based knee can sit above capacity, and on short --quick
         sweeps may not trigger at all. *)
      (match
         List.rev
           (List.filter
              (fun (q, r) ->
                r.Visor.Server.throughput_rps >= 0.95 *. q && q < knee_qps)
              results)
       with
      | (q, _) :: _ -> sub_knee_qps := q
      | [] -> ());
      let st =
        Table.create
          ~title:
            (Printf.sprintf "Serving sweep: %d requests/point, knee ~%.0f qps"
               sweep_count knee_qps)
          ~columns:[ "qps"; "done"; "req/s"; "p50"; "p99"; "max inflight" ]
      in
      List.iter
        (fun (q, (r : Visor.Server.serve_report)) ->
          Table.add_row st
            [
              Printf.sprintf "%.0f" q;
              string_of_int r.Visor.Server.completed;
              Printf.sprintf "%.0f" r.Visor.Server.throughput_rps;
              pp_t r.Visor.Server.p50_latency;
              pp_t r.Visor.Server.p99_latency;
              string_of_int r.Visor.Server.max_inflight;
            ])
        results;
      Table.print st;
      let point_json (q, (r : Visor.Server.serve_report)) =
        Jsonlite.Obj
          [
            ("qps", Jsonlite.Float q);
            ("completed", Jsonlite.Int r.Visor.Server.completed);
            ("failed", Jsonlite.Int r.Visor.Server.failed);
            ("throughput_rps", Jsonlite.Float r.Visor.Server.throughput_rps);
            ("p50_us", Jsonlite.Float (Units.to_us r.Visor.Server.p50_latency));
            ("p99_us", Jsonlite.Float (Units.to_us r.Visor.Server.p99_latency));
            ("max_inflight", Jsonlite.Int r.Visor.Server.max_inflight);
          ]
      in
      let sweep_json =
        Jsonlite.Obj
          [
            ("requests_per_point", Jsonlite.Int sweep_count);
            ("sample_every", Jsonlite.Int sample_every);
            ("knee_qps", Jsonlite.Float knee_qps);
            ("points", Jsonlite.List (List.map point_json results));
          ]
      in
      (* Scale leg: 10^5 requests streamed through the server with
         sampled observability, once on one domain and once on the
         requested pool; responses and summary must be byte-identical
         (the fingerprint is MD5'd — 10^5 responses make a long
         string). *)
      let scale_count = if !quick then 20_000 else 100_000 in
      (* Below the knee: the scale leg demonstrates sustained healthy
         serving (bounded in-flight, bounded memory), not queue
         collapse — the sweep above covers the saturated regime. *)
      let scale_qps = 300.0 in
      let run_scale ?(telemetry = false) ?batch ~domains () =
        Par.set_domains domains;
        (match batch with Some k -> Par.set_batch k | None -> ());
        reset_observability ();
        Metrics.set_raw_sample_every ~seed sample_every;
        let server =
          Visor.Server.create ~warm:true ~sample_every ~sample_seed:seed ()
        in
        register_all server;
        if telemetry then
          Visor.Server.enable_telemetry server ~slos:(slo_specs ()) ();
        (* [Gc.allocated_bytes] is per-domain: the delta covers every
           allocation only when the run stays on one domain, which is
           why the gated words-per-request figure comes from the
           domains-1 leg. *)
        let alloc0 = Gc.allocated_bytes () in
        let t0 = Unix.gettimeofday () in
        let r =
          Visor.Server.serve_stream server
            (stream_requests ~qps:scale_qps ~count:scale_count ())
        in
        let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        let alloc_words = (Gc.allocated_bytes () -. alloc0) /. 8.0 in
        Visor.Server.shutdown server;
        Metrics.set_raw_sample_every 1;
        Par.set_domains 1;
        (match batch with Some _ -> Par.set_batch !batch_flag | None -> ());
        let live_words = (Gc.stat ()).Gc.live_words in
        (r, wall_ms, live_words, alloc_words)
      in
      let scale_r1, scale_ms1, scale_live1, scale_alloc1 =
        run_scale ~domains:1 ()
      in
      let scale_rn, scale_msn, scale_liven, _ = run_scale ~domains:nd () in
      let fp1 = Digest.to_hex (Digest.string (fingerprint scale_r1)) in
      let fpn = Digest.to_hex (Digest.string (fingerprint scale_rn)) in
      check "scale responses (fingerprint)" fp1 fpn;
      check "scale summary"
        (Jsonlite.to_string (mode_json scale_r1))
        (Jsonlite.to_string (mode_json scale_rn));
      (* Batched work claiming is a host-only knob: the same leg at
         K = 8 and K = 64 on the full pool must produce the same
         bytes (K = 1 across domain counts is the check above; CI
         diffs --domains 1 --batch 1 against --domains 4 --batch 64
         across separate invocations). *)
      List.iter
        (fun k ->
          let rb, _, _, _ = run_scale ~batch:k ~domains:nd () in
          let fpb = Digest.to_hex (Digest.string (fingerprint rb)) in
          check
            (Printf.sprintf "scale responses at batch %d (fingerprint)" k)
            fpn fpb)
        [ 8; 64 ];
      (* The same leg with per-window telemetry and SLO monitors on:
         responses must not change (telemetry is pure observation) and
         the measured overhead lands in the JSON where perf_gate.py
         watches it. *)
      let tel_rn, tel_msn, _, _ = run_scale ~telemetry:true ~domains:nd () in
      let fp_tel = Digest.to_hex (Digest.string (fingerprint tel_rn)) in
      check "scale responses with telemetry (fingerprint)" fpn fp_tel;
      Printf.printf
        "scale telemetry: wall %.0f ms -> %.0f ms with timeseries+SLOs (%.2f us/request vs %.2f)\n"
        scale_msn tel_msn
        (tel_msn *. 1e3 /. float_of_int scale_count)
        (scale_msn *. 1e3 /. float_of_int scale_count);
      Printf.printf
        "scale: %d requests, sample 1/%d: p50 %s p99 %s, %d warm / %d cold; wall %.0f ms (1 domain) -> %.0f ms (%d domains)\n"
        scale_count sample_every
        (pp_t scale_rn.Visor.Server.p50_latency)
        (pp_t scale_rn.Visor.Server.p99_latency)
        scale_rn.Visor.Server.warm_starts scale_rn.Visor.Server.cold_starts
        scale_ms1 scale_msn nd;
      (* Sketch accuracy leg: the same 10^5 stream through serve_fold
         with sketch_latency (no materialised responses, no retained
         latencies), while the fold accumulates the exact latency
         population.  Sketch p50/p99 must land within 2% of exact. *)
      let fold_s, fold_exact, fold_ms, fold_live =
        run_fold ~qps:scale_qps ~count:scale_count ~sample_every ~exact:true
      in
      if
        fold_s.Visor.Server.sm_completed <> scale_rn.Visor.Server.completed
        || fold_s.Visor.Server.sm_failed <> scale_rn.Visor.Server.failed
        || fold_s.Visor.Server.sm_max_inflight
           <> scale_rn.Visor.Server.max_inflight
      then begin
        Printf.eprintf "serving: serve_fold disagrees with serve_stream\n";
        exit 1
      end;
      let ns_of t = Int64.to_float (Units.to_ns t) in
      let ex50 = Stats.percentile fold_exact 50.0 in
      let ex99 = Stats.percentile fold_exact 99.0 in
      let sk50 = ns_of fold_s.Visor.Server.sm_p50_latency in
      let sk99 = ns_of fold_s.Visor.Server.sm_p99_latency in
      let rel a b = Float.abs (a -. b) /. Float.max 1e-9 (Float.abs b) in
      let err50 = rel sk50 ex50 and err99 = rel sk99 ex99 in
      Printf.printf
        "scale sketch: p50 %.1f us (exact %.1f, err %.2f%%), p99 %.1f us (exact %.1f, err %.2f%%)\n"
        (sk50 /. 1e3) (ex50 /. 1e3) (100.0 *. err50) (sk99 /. 1e3) (ex99 /. 1e3)
        (100.0 *. err99);
      if err50 > 0.02 || err99 > 0.02 then begin
        Printf.eprintf
          "serving: sketch percentiles drifted past 2%% of exact (p50 %.2f%%, p99 %.2f%%)\n"
          (100.0 *. err50) (100.0 *. err99);
        exit 1
      end;
      (* --hotspots: one extra scale leg with the host-time profiler on.
         Profiling overhead (two clock reads per section) is confined to
         this leg; the wall-clock fields above come from unprofiled
         runs.  The profiled leg must still produce the same bytes. *)
      let hotspot_sections =
        if not !hotspots_flag then []
        else begin
          Hotspot.reset ();
          Hotspot.set_enabled true;
          let hp_r, hp_ms, _, _ =
            Fun.protect
              ~finally:(fun () -> Hotspot.set_enabled false)
              (fun () -> run_scale ~domains:nd ())
          in
          let fp_hp = Digest.to_hex (Digest.string (fingerprint hp_r)) in
          check "scale responses under profiling (fingerprint)" fpn fp_hp;
          let entries = Hotspot.snapshot () in
          let by_cost =
            List.sort
              (fun a b ->
                compare b.Hotspot.hs_total_ns a.Hotspot.hs_total_ns)
              entries
          in
          let st =
            Table.create
              ~title:
                (Printf.sprintf
                   "Serving host hotspots: %d requests, %.0f ms profiled wall"
                   scale_count hp_ms)
              ~columns:
                [ "section"; "calls"; "total ms"; "us/request"; "words/request" ]
          in
          List.iter
            (fun (e : Hotspot.entry) ->
              Table.add_row st
                [
                  e.Hotspot.hs_name;
                  string_of_int e.Hotspot.hs_count;
                  Printf.sprintf "%.1f" (e.Hotspot.hs_total_ns /. 1e6);
                  Printf.sprintf "%.2f"
                    (e.Hotspot.hs_total_ns /. 1e3
                    /. float_of_int scale_count);
                  Printf.sprintf "%.0f"
                    (Hotspot.entry_words e /. float_of_int scale_count);
                ])
            by_cost;
          Table.print st;
          (* Sections keyed by name (sorted, so the JSON is stable);
             leaves named so perf_gate.py gates them: total_ms by the
             _ms suffix, us_per_request and the words fields by
             name. *)
          let section_json (e : Hotspot.entry) =
            let per_req w = w /. float_of_int scale_count in
            ( e.Hotspot.hs_name,
              Jsonlite.Obj
                [
                  ("count", Jsonlite.Int e.Hotspot.hs_count);
                  ("total_ms", Jsonlite.Float (e.Hotspot.hs_total_ns /. 1e6));
                  ( "us_per_request",
                    Jsonlite.Float
                      (e.Hotspot.hs_total_ns /. 1e3
                      /. float_of_int scale_count) );
                  ( "words_per_request",
                    Jsonlite.Float (per_req (Hotspot.entry_words e)) );
                  ( "minor_words_per_request",
                    Jsonlite.Float (per_req e.Hotspot.hs_minor_words) );
                  ( "major_words_per_request",
                    Jsonlite.Float (per_req e.Hotspot.hs_major_words) );
                ] )
          in
          [
            ( "hotspots",
              Jsonlite.Obj
                [
                  ("requests", Jsonlite.Int scale_count);
                  ("profiled_wall_ms", Jsonlite.Float hp_ms);
                  ("sections", Jsonlite.Obj (List.map section_json entries));
                ] );
          ]
        end
      in
      (* Deep leg: an order of magnitude past the byte-identity leg,
         fold-only — nothing materialised, percentiles from the sketch.
         The peak major-heap sample bounds live memory at
         O(window + in-flight): a materialised response list at this
         count would alone exceed the cap. *)
      let deep_count =
        if !deep_requests_flag > 0 then !deep_requests_flag
        else if !quick then 50_000
        else 1_000_000
      in
      let deep_sample = 256 in
      let deep_s, _, deep_ms, deep_live =
        run_fold ~qps:scale_qps ~count:deep_count ~sample_every:deep_sample
          ~exact:false
      in
      (* O(window + inflight + n/k sampled spans) live words: ~2-4M in
         practice; a materialised response list alone would add ~15
         words per request (~15M at 10^6) and blow the cap. *)
      let deep_live_cap = 8_000_000 in
      Printf.printf
        "deep: %d requests via serve_fold, sample 1/%d: p50 %s p99 %s; wall %.0f ms, peak live %d words (cap %d)\n\n"
        deep_count deep_sample
        (pp_t deep_s.Visor.Server.sm_p50_latency)
        (pp_t deep_s.Visor.Server.sm_p99_latency)
        deep_ms deep_live deep_live_cap;
      if deep_live > deep_live_cap then begin
        Printf.eprintf
          "serving: deep fold peak live %d words exceeds cap %d — response stream is being retained\n"
          deep_live deep_live_cap;
        exit 1
      end;
      let scale_json =
        Jsonlite.Obj
          [
            ("requests", Jsonlite.Int scale_count);
            ("qps", Jsonlite.Float scale_qps);
            ("sample_every", Jsonlite.Int sample_every);
            (* Deterministic across domain counts (asserted above). *)
            ( "virtual",
              Jsonlite.Obj
                [
                  ("summary", mode_json scale_rn);
                  ("response_fingerprint_md5", Jsonlite.String fpn);
                  ( "sketch",
                    Jsonlite.Obj
                      [
                        ("p50_us", Jsonlite.Float (sk50 /. 1e3));
                        ("p99_us", Jsonlite.Float (sk99 /. 1e3));
                        ("exact_p50_us", Jsonlite.Float (ex50 /. 1e3));
                        ("exact_p99_us", Jsonlite.Float (ex99 /. 1e3));
                      ] );
                ] );
            ( "host",
              Jsonlite.Obj
                ([
                   ("domains", Jsonlite.Int nd);
                   ( "degenerate",
                     Jsonlite.Bool (degenerate_parallelism ~domains:nd) );
                   ("wall_ms_domains1", Jsonlite.Float scale_ms1);
                   ("wall_ms", Jsonlite.Float scale_msn);
                   ( "us_per_request_domains1",
                     Jsonlite.Float
                       (scale_ms1 *. 1e3 /. float_of_int scale_count) );
                   ( "us_per_request",
                     Jsonlite.Float
                       (scale_msn *. 1e3 /. float_of_int scale_count) );
                   ("live_words_domains1", Jsonlite.Int scale_live1);
                   ("live_words", Jsonlite.Int scale_liven);
                   (* Whole-run GC allocation on the single-domain leg
                      (the only leg where the per-domain counter sees
                      everything), per request — the headline the
                      allocation-lean hot path is gated on. *)
                   ( "alloc_words_per_request_domains1",
                     Jsonlite.Float
                       (scale_alloc1 /. float_of_int scale_count) );
                   ("fold_wall_ms", Jsonlite.Float fold_ms);
                   ("fold_peak_live_words", Jsonlite.Int fold_live);
                   (* Same leg re-run with windowed telemetry and SLO
                      monitors enabled; gated so the observation path
                      can't silently get expensive. *)
                   ( "observability_overhead",
                     Jsonlite.Obj
                       [
                         ("telemetry_wall_ms", Jsonlite.Float tel_msn);
                         ( "telemetry_us_per_request",
                           Jsonlite.Float
                             (tel_msn *. 1e3 /. float_of_int scale_count) );
                         ( "overhead_ratio",
                           Jsonlite.Float (tel_msn /. Float.max 1e-9 scale_msn)
                         );
                       ] );
                 ]
                @ hotspot_sections) );
            ( "deep",
              Jsonlite.Obj
                [
                  ("requests", Jsonlite.Int deep_count);
                  ("qps", Jsonlite.Float scale_qps);
                  ("sample_every", Jsonlite.Int deep_sample);
                  ("virtual", Jsonlite.Obj [ ("summary", summary_json deep_s) ]);
                  ( "host",
                    Jsonlite.Obj
                      [
                        ("wall_ms", Jsonlite.Float deep_ms);
                        ( "us_per_request",
                          Jsonlite.Float
                            (deep_ms *. 1e3 /. float_of_int deep_count) );
                        ("peak_live_words", Jsonlite.Int deep_live);
                      ] );
                ] );
          ]
      in
      [ ("sweep", sweep_json); ("scale", scale_json) ]
    end
  in
  (* --soak: a virtual hour at the sub-knee rate, served through the
     constant-memory fold path.  Periodic snapshots report completion,
     in-flight, live heap words and P^2 sketch percentiles; the run
     fails if live words trend upward after warm-up. *)
  let soak_sections =
    if not !soak_flag then []
    else begin
      let soak_qps = !sub_knee_qps in
      let virtual_s =
        if !soak_seconds_flag > 0 then !soak_seconds_flag
        else if !quick then 120
        else 3600
      in
      let snap_s = Stdlib.max 1 (virtual_s / 12) in
      Par.set_domains nd;
      reset_observability ();
      Metrics.set_raw_sample_every ~seed sample_every;
      let server =
        Visor.Server.create ~warm:true ~sample_every ~sample_seed:seed
          ~sketch_latency:true ()
      in
      register_all server;
      (* Coarse windows and a retention that caps well before mid-run
         (64 windows = the last quarter of the soak) keep the retained
         per-window digest state a plateaued constant, so the soak's
         flat-memory assertion still measures the serving path. *)
      Visor.Server.enable_telemetry server
        ~window:(Units.sec (Stdlib.max 1 (virtual_s / 256)))
        ~retention:64 ~slos:(slo_specs ()) ();
      let printed_alerts = ref 0 in
      let next =
        Loadgen.request_stream_until ~seed ~qps:soak_qps ~endpoints:eps
          ~horizon:(Units.sec virtual_s) ()
      in
      (* Arrival instants pulled by the planner, drained as virtual
         time passes: [arrived - finished] is the exact in-flight count
         at each snapshot. *)
      let pulled : Units.time Queue.t = Queue.create () in
      let stream () =
        match next () with
        | None -> None
        | Some (endpoint, arrival) ->
            Queue.push arrival pulled;
            Some { Visor.Server.endpoint; arrival }
      in
      let p2_50 = Sketch.P2.create 0.5 in
      let p2_99 = Sketch.P2.create 0.99 in
      let finished = ref 0 in
      let arrived = ref 0 in
      let next_snap = ref snap_s in
      let snaps = ref [] in
      let t0 = Unix.gettimeofday () in
      let (), soak_s =
        Visor.Server.serve_fold server stream ~init:()
          ~f:(fun () (p : Visor.Server.response) ->
            incr finished;
            if p.Visor.Server.r_ok then begin
              let us = Units.to_us p.Visor.Server.r_latency in
              Sketch.P2.add p2_50 us;
              Sketch.P2.add p2_99 us
            end;
            let now_s = Units.to_sec p.Visor.Server.r_finish in
            if now_s >= float_of_int !next_snap then begin
              while
                (not (Queue.is_empty pulled))
                && Units.to_sec (Queue.peek pulled) <= now_s
              do
                ignore (Queue.pop pulled);
                incr arrived
              done;
              let inflight = !arrived - !finished in
              Gc.full_major ();
              let live = (Gc.stat ()).Gc.live_words in
              let e50 = Sketch.P2.quantile p2_50 in
              let e99 = Sketch.P2.quantile p2_99 in
              Printf.printf
                "soak t=%5ds: completed %8d, inflight %4d, live %9d words, p50 %8.1f us, p99 %9.1f us\n%!"
                !next_snap !finished inflight live e50 e99;
              snaps := (!next_snap, !finished, inflight, live, e50, e99) :: !snaps;
              (* Burn-rate alerts that fired since the last snapshot,
                 interleaved at their deterministic virtual instants. *)
              let alerts = Visor.Server.slo_alerts server in
              List.iteri
                (fun i a ->
                  if i >= !printed_alerts then
                    Printf.printf "  %s\n%!" (Slo.render_alert a))
                alerts;
              printed_alerts := List.length alerts;
              while float_of_int !next_snap <= now_s do
                next_snap := !next_snap + snap_s
              done
            end)
      in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let soak_slo = slo_json server in
      let soak_csv =
        match Visor.Server.telemetry server with
        | Some ts -> Timeseries.to_csv ts
        | None -> ""
      in
      Visor.Server.shutdown server;
      Metrics.set_raw_sample_every 1;
      Par.set_domains 1;
      let snaps = List.rev !snaps in
      (* Flat-memory assertion: the worst live-words reading of the
         second half must stay within 25% (plus a fixed 1M-word floor
         for GC noise on small heaps) of the first snapshot. *)
      (match snaps with
      | (_, _, _, live0, _, _) :: _ when List.length snaps >= 2 ->
          let n = List.length snaps in
          let second_half = List.filteri (fun i _ -> i >= n / 2) snaps in
          let worst =
            List.fold_left
              (fun acc (_, _, _, live, _, _) -> Stdlib.max acc live)
              0 second_half
          in
          if float_of_int worst > (1.25 *. float_of_int live0) +. 1e6 then begin
            Printf.eprintf
              "serving: soak live words grew %d -> %d — memory is not flat\n"
              live0 worst;
            exit 1
          end
      | _ -> ());
      Printf.printf
        "soak: %.0f qps for %ds virtual: %d completed, %d failed, p50 %s p99 %s; wall %.0f ms\n\n"
        soak_qps virtual_s soak_s.Visor.Server.sm_completed
        soak_s.Visor.Server.sm_failed
        (pp_t soak_s.Visor.Server.sm_p50_latency)
        (pp_t soak_s.Visor.Server.sm_p99_latency)
        wall_ms;
      let snap_virtual (t, c, infl, _, e50, e99) =
        Jsonlite.Obj
          [
            ("t_s", Jsonlite.Int t);
            ("completed", Jsonlite.Int c);
            ("inflight", Jsonlite.Int infl);
            ("p50_us", Jsonlite.Float e50);
            ("p99_us", Jsonlite.Float e99);
          ]
      in
      let soak_json =
        Jsonlite.Obj
          [
            ("qps", Jsonlite.Float soak_qps);
            ("virtual_seconds", Jsonlite.Int virtual_s);
            ("sample_every", Jsonlite.Int sample_every);
            ( "virtual",
              Jsonlite.Obj
                [
                  ("summary", summary_json soak_s);
                  ("p2_p50_us", Jsonlite.Float (Sketch.P2.quantile p2_50));
                  ("p2_p99_us", Jsonlite.Float (Sketch.P2.quantile p2_99));
                  ("snapshots", Jsonlite.List (List.map snap_virtual snaps));
                  ("slo", soak_slo);
                  ( "timeseries_rows",
                    Jsonlite.Int
                      (List.length (String.split_on_char '\n' soak_csv)) );
                ] );
            ( "host",
              Jsonlite.Obj
                [
                  ("wall_ms", Jsonlite.Float wall_ms);
                  ( "snapshot_live_words",
                    Jsonlite.List
                      (List.map
                         (fun (_, _, _, live, _, _) -> Jsonlite.Int live)
                         snaps) );
                ] );
          ]
      in
      [ ("soak", soak_json) ]
    end
  in
  let json =
    Jsonlite.Obj
      [
        ("seed", Jsonlite.Int seed);
        ("requests", Jsonlite.Int count);
        ("qps", Jsonlite.Float qps);
        (* Deterministic: identical for every domain count (asserted
           above and diffed by CI). *)
        ( "virtual",
          Jsonlite.Obj
            [
              ("warm", mode_json warm_r);
              ("cold", mode_json cold_r);
              ("single_cold_us", Jsonlite.Float (Units.to_us cold_one));
              ("single_warm_us", Jsonlite.Float (Units.to_us warm_one));
              ( "breakdown",
                Jsonlite.Obj
                  [ ("warm", warm.lg_breakdown); ("cold", cold.lg_breakdown) ] );
              ( "slo",
                Jsonlite.Obj [ ("warm", warm.lg_slo); ("cold", cold.lg_slo) ] );
              ( "tails",
                Jsonlite.Obj
                  [ ("warm", warm.lg_tails); ("cold", cold.lg_tails) ] );
            ] );
        (* Machine dependent: wall-clock of this run. *)
        ( "host",
          Jsonlite.Obj
            [
              ( "parallel",
                Jsonlite.Obj
                  [
                    ("domains", Jsonlite.Int nd);
                    ( "host_cores",
                      Jsonlite.Int (Domain.recommended_domain_count ()) );
                    ( "degenerate",
                      Jsonlite.Bool (degenerate_parallelism ~domains:nd) );
                    ("warm_wall_ms_domains1", Jsonlite.Float warm_ms1);
                    ("warm_wall_ms", Jsonlite.Float warm_ms);
                    ("cold_wall_ms_domains1", Jsonlite.Float cold_ms1);
                    ("cold_wall_ms", Jsonlite.Float cold_ms);
                    ( "speedup_warm",
                      Jsonlite.Float (warm_ms1 /. Float.max 1e-9 warm_ms) );
                    ( "speedup_cold",
                      Jsonlite.Float (cold_ms1 /. Float.max 1e-9 cold_ms) );
                  ] );
            ] );
      ]
  in
  let json =
    match (json, sweep_sections @ soak_sections) with
    | _, [] -> json
    | Jsonlite.Obj fields, extra -> Jsonlite.Obj (fields @ extra)
    | _ -> json
  in
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    output_string oc "\n";
    close_out oc
  in
  write "BENCH_serving.json" (Jsonlite.to_string json);
  write "BENCH_serving_trace.json" trace_doc;
  write "BENCH_serving_metrics.json" metrics_doc;
  (* Exporter snapshots of the warm leg (deterministic, CI-diffed):
     Prometheus text format and the windowed timeseries as CSV. *)
  write "BENCH_serving_prom.txt" warm.lg_prom;
  write "BENCH_serving_timeseries.csv" warm.lg_csv;
  print_endline
    "wrote BENCH_serving.json, BENCH_serving_trace.json, BENCH_serving_metrics.json,\n\
    \      BENCH_serving_prom.txt, BENCH_serving_timeseries.csv"

(* ------------------------------------------------------------------ *)
(* Execution fast paths: the software TLB vs the full page walk, and   *)
(* the interp / AOT / cached-AOT load paths.  Host-time columns are    *)
(* real wall time (machine dependent); every field under "virtual" in  *)
(* BENCH_exec.json is deterministic and diffed by the CI smoke job.    *)

let exec () =
  let open Alloystack_core in
  (* --- software TLB vs page walk ---------------------------------- *)
  (* Small enough that the data span stays L1-resident: the timed loop
     then measures the translation path, not the cache hierarchy. *)
  let pages = 8 in
  let span = pages * Mem.Page.size in
  let accesses = if !quick then 2_000_000 else 8_000_000 in
  let base = 0x4000_0000 in
  let pkru = Mem.Prot.pkru_allow_all in
  (* Precompute the address sequence so the timed loop measures the
     access path, not the index arithmetic.  The array is kept small
     (cache-resident) and replayed in passes: a multi-megabyte address
     stream would pay a DRAM read per access in both variants and
     flatten the ratio being measured. *)
  let stride = 65_536 in
  let passes = accesses / stride in
  let accesses = passes * stride in
  let addrs = Array.init stride (fun i -> base + ((i * 37) land (span - 1))) in
  let run_mem ~tlb =
    let sp = Mem.Address_space.create ~tlb () in
    Mem.Address_space.map sp ~addr:base ~len:span ();
    (* Touch every page once so demand-zero fills are off the timed
       loop for both variants. *)
    for i = 0 to pages - 1 do
      ignore (Mem.Address_space.load_byte sp ~pkru (base + (i * Mem.Page.size)))
    done;
    (* Best of several trials: the min is the least-perturbed sample of
       a fixed amount of work. *)
    let best = ref infinity in
    let checksum = ref 0 in
    for _ = 1 to 5 do
      checksum := 0;
      let t0 = Unix.gettimeofday () in
      for _ = 1 to passes do
        for i = 0 to stride - 1 do
          checksum :=
            !checksum
            + Char.code
                (Mem.Address_space.load_byte sp ~pkru (Array.unsafe_get addrs i))
        done
      done;
      best := Float.min !best ((Unix.gettimeofday () -. t0) *. 1000.0)
    done;
    (!best, !checksum, sp)
  in
  let walk_ms, walk_sum, walk_sp = run_mem ~tlb:false in
  let tlb_ms, tlb_sum, tlb_sp = run_mem ~tlb:true in
  assert (walk_sum = tlb_sum);
  let tlb_speedup = walk_ms /. Float.max 1e-9 tlb_ms in
  (* --- interp vs AOT execution ------------------------------------ *)
  let profile = Wasm.Runtime.wasmtime in
  let n = if !quick then 20_000 else 100_000 in
  let m = Wasm.Builder.sum_to_n in
  let t0 = Unix.gettimeofday () in
  let interp_inst = Wasm.Interp.instantiate m in
  let interp_result = Wasm.Interp.call interp_inst "sum" [| Int64.of_int n |] in
  let interp_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let interp_clock = Clock.create () in
  Clock.advance interp_clock profile.Wasm.Runtime.startup;
  Clock.advance interp_clock
    (Units.scale profile.Wasm.Runtime.interp_per_instr
       (float_of_int (Wasm.Interp.executed interp_inst)));
  let t0 = Unix.gettimeofday () in
  let aot_clock = Clock.create () in
  let aot_loaded = Wasm.Runtime.load profile ~clock:aot_clock m in
  let aot_inst =
    Wasm.Runtime.instantiate aot_loaded ~clock:aot_clock ~system:Wasm.Wasi.null_system
  in
  let aot_result =
    Wasm.Runtime.run aot_loaded ~clock:aot_clock ~instance:aot_inst "sum"
      [| Int64.of_int n |]
  in
  let aot_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  assert (Int64.equal interp_result aot_result);
  (* --- AOT load: fresh compile vs compile cache ------------------- *)
  (* A deliberately large module so compilation dominates the load. *)
  let big =
    let chunk i =
      [ Wasm.Builder.const i; Wasm.Builder.const (i + 1); Wasm.Builder.add;
        Wasm.Instr.Drop ]
    in
    let body = List.concat (List.init 2500 chunk) @ [ Wasm.Builder.const 0 ] in
    Wasm.Wmodule.create ~name:"bigmod" ~exports:[ ("f", 0) ]
      [ Wasm.Builder.func ~name:"f" body ]
  in
  let load_iters = if !quick then 40 else 120 in
  let run_loads ~cache =
    let t0 = Unix.gettimeofday () in
    let vt = ref Units.zero in
    for _ = 1 to load_iters do
      let clock = Clock.create () in
      ignore (Wasm.Runtime.load ?cache profile ~clock big);
      vt := Clock.now clock
    done;
    ((Unix.gettimeofday () -. t0) *. 1000.0, !vt)
  in
  let load_ms, load_vt = run_loads ~cache:None in
  let codec = Wasm.Compile_cache.create () in
  let cached_ms, cached_vt = run_loads ~cache:(Some codec) in
  (* The cache must save host time only: per-load virtual time is
     identical with and without it. *)
  assert (Units.compare load_vt cached_vt = 0);
  let load_speedup = load_ms /. Float.max 1e-9 cached_ms in
  (* --- host-parallel workflow repeats (Visor.run_many) ------------- *)
  (* Each repeat AOT-compiles the big module inside its own WFD (no
     shared compile cache), so the host work per repeat is real and the
     domain pool can spread it.  Reports must be structurally identical
     whatever the domain count. *)
  let par_wf =
    Workflow.create_exn ~name:"aotpar"
      ~nodes:
        [
          {
            Workflow.node_id = "compile";
            language = Workflow.Rust;
            instances = 1;
            required_modules = [];
          };
        ]
      ~edges:[]
  in
  let par_bindings =
    [
      ( "compile",
        Visor.bind (fun ctx ~instance:_ ~total:_ ->
            ignore (Asstd.load_wasm ctx profile big)) );
    ]
  in
  let par_repeat = if !quick then 16 else 48 in
  let run_repeats d =
    Par.set_domains d;
    let t0 = Unix.gettimeofday () in
    let reports =
      Visor.run_many ~workflow:par_wf ~bindings:par_bindings ~repeat:par_repeat ()
    in
    Par.set_domains 1;
    ((Unix.gettimeofday () -. t0) *. 1000.0, reports)
  in
  let par1_ms, par_reports1 = run_repeats 1 in
  let nd = bench_domains () in
  let parn_ms, par_reports = run_repeats nd in
  if par_reports1 <> par_reports then begin
    Printf.eprintf
      "exec: run_many reports differ between --domains 1 and --domains %d\n" nd;
    exit 1
  end;
  let par_speedup = par1_ms /. Float.max 1e-9 parn_ms in
  let par_e2e = par_reports.(0).Visor.e2e in
  let t =
    Table.create ~title:"Execution fast paths (host time vs virtual time)"
      ~columns:[ "path"; "host"; "virtual" ]
  in
  Table.add_row t
    [ Printf.sprintf "page walk (%d loads)" accesses;
      Printf.sprintf "%.1f ms" walk_ms; "-" ];
  Table.add_row t
    [ Printf.sprintf "software TLB (%.1fx)" tlb_speedup;
      Printf.sprintf "%.1f ms" tlb_ms; "-" ];
  Table.add_row t
    [ Printf.sprintf "interp sum(%d)" n; Printf.sprintf "%.2f ms" interp_ms;
      pp_t (Clock.now interp_clock) ];
  Table.add_row t
    [ Printf.sprintf "AOT sum(%d)" n; Printf.sprintf "%.2f ms" aot_ms;
      pp_t (Clock.now aot_clock) ];
  Table.add_row t
    [ Printf.sprintf "AOT load x%d" load_iters; Printf.sprintf "%.1f ms" load_ms;
      pp_t load_vt ];
  Table.add_row t
    [ Printf.sprintf "cached AOT load (%.1fx)" load_speedup;
      Printf.sprintf "%.1f ms" cached_ms; pp_t cached_vt ];
  Table.add_row t
    [ Printf.sprintf "run_many x%d, 1 domain" par_repeat;
      Printf.sprintf "%.1f ms" par1_ms; pp_t par_e2e ];
  Table.add_row t
    [ Printf.sprintf "run_many x%d, %d domains (%.1fx)" par_repeat nd par_speedup;
      Printf.sprintf "%.1f ms" parn_ms; pp_t par_e2e ];
  Table.print t;
  Printf.printf "TLB: %d hits / %d misses / %d flushes; walk accesses %d\n"
    (Mem.Address_space.tlb_hit_count tlb_sp)
    (Mem.Address_space.tlb_miss_count tlb_sp)
    (Mem.Address_space.tlb_flush_count tlb_sp)
    (Mem.Address_space.access_count walk_sp);
  Printf.printf "compile cache: %d misses, %d hits\n\n"
    (Wasm.Compile_cache.miss_count codec)
    (Wasm.Compile_cache.hit_count codec);
  let json =
    Jsonlite.Obj
      [
        (* Deterministic: function of the workload alone. *)
        ( "virtual",
          Jsonlite.Obj
            [
              ("tlb_accesses", Jsonlite.Int (Mem.Address_space.access_count tlb_sp));
              ("tlb_hits", Jsonlite.Int (Mem.Address_space.tlb_hit_count tlb_sp));
              ("tlb_misses", Jsonlite.Int (Mem.Address_space.tlb_miss_count tlb_sp));
              ( "tlb_demand_faults",
                Jsonlite.Int (Mem.Address_space.touched_fault_count tlb_sp) );
              ("walk_accesses", Jsonlite.Int (Mem.Address_space.access_count walk_sp));
              ( "walk_demand_faults",
                Jsonlite.Int (Mem.Address_space.touched_fault_count walk_sp) );
              ("mem_checksum", Jsonlite.Int tlb_sum);
              ("sum_result", Jsonlite.Int (Int64.to_int interp_result));
              ("interp_virtual_us", Jsonlite.Float (Units.to_us (Clock.now interp_clock)));
              ("aot_virtual_us", Jsonlite.Float (Units.to_us (Clock.now aot_clock)));
              ("load_virtual_us", Jsonlite.Float (Units.to_us load_vt));
              ("cached_load_virtual_us", Jsonlite.Float (Units.to_us cached_vt));
              ("cache_misses", Jsonlite.Int (Wasm.Compile_cache.miss_count codec));
              ("cache_hits", Jsonlite.Int (Wasm.Compile_cache.hit_count codec));
              ("run_many_repeat", Jsonlite.Int par_repeat);
              ("run_many_e2e_us", Jsonlite.Float (Units.to_us par_e2e));
              ( "run_many_retries",
                Jsonlite.Int
                  (Array.fold_left
                     (fun acc (r : Visor.report) -> acc + r.Visor.retries)
                     0 par_reports) );
            ] );
        (* Machine dependent: wall-clock of this run. *)
        ( "host",
          Jsonlite.Obj
            [
              ("walk_ms", Jsonlite.Float walk_ms);
              ("tlb_ms", Jsonlite.Float tlb_ms);
              ("tlb_speedup", Jsonlite.Float tlb_speedup);
              ("interp_ms", Jsonlite.Float interp_ms);
              ("aot_ms", Jsonlite.Float aot_ms);
              ("load_ms", Jsonlite.Float load_ms);
              ("cached_load_ms", Jsonlite.Float cached_ms);
              ("load_speedup", Jsonlite.Float load_speedup);
              ( "parallel",
                Jsonlite.Obj
                  [
                    ("domains", Jsonlite.Int nd);
                    ( "degenerate",
                      Jsonlite.Bool (degenerate_parallelism ~domains:nd) );
                    ("run_many_wall_ms_domains1", Jsonlite.Float par1_ms);
                    ("run_many_wall_ms", Jsonlite.Float parn_ms);
                    ("speedup", Jsonlite.Float par_speedup);
                  ] );
            ] );
      ]
  in
  let oc = open_out "BENCH_exec.json" in
  output_string oc (Jsonlite.to_string json);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_exec.json"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("table4", table4);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("fig17", fig17);
    ("micro", micro);
    ("ext", ext);
    ("chaos", chaos);
    ("serving", serving);
    ("exec", exec);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse acc = function
    | [] -> List.rev acc
    | ("--quick" | "-q") :: rest ->
        quick := true;
        parse acc rest
    | "--sweep" :: rest ->
        sweep_flag := true;
        parse acc rest
    | "--soak" :: rest ->
        soak_flag := true;
        parse acc rest
    | "--soak-seconds" :: n :: rest -> (
        match int_of_string_opt n with
        | Some s when s >= 1 ->
            soak_seconds_flag := s;
            parse acc rest
        | _ ->
            Printf.eprintf "--soak-seconds expects a positive integer, got %S\n" n;
            exit 2)
    | [ "--soak-seconds" ] ->
        Printf.eprintf "--soak-seconds expects a positive integer\n";
        exit 2
    | "--hotspots" :: rest ->
        hotspots_flag := true;
        parse acc rest
    | "--deep-requests" :: n :: rest -> (
        match int_of_string_opt n with
        | Some d when d >= 1 ->
            deep_requests_flag := d;
            parse acc rest
        | _ ->
            Printf.eprintf "--deep-requests expects a positive integer, got %S\n"
              n;
            exit 2)
    | [ "--deep-requests" ] ->
        Printf.eprintf "--deep-requests expects a positive integer\n";
        exit 2
    | "--domains" :: n :: rest -> (
        match int_of_string_opt n with
        | Some d when d >= 1 ->
            domains_flag := d;
            parse acc rest
        | _ ->
            Printf.eprintf "--domains expects a positive integer, got %S\n" n;
            exit 2)
    | [ "--domains" ] ->
        Printf.eprintf "--domains expects a positive integer\n";
        exit 2
    | "--batch" :: n :: rest -> (
        match int_of_string_opt n with
        | Some k when k >= 1 ->
            batch_flag := k;
            parse acc rest
        | _ ->
            Printf.eprintf "--batch expects a positive integer, got %S\n" n;
            exit 2)
    | [ "--batch" ] ->
        Printf.eprintf "--batch expects a positive integer\n";
        exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] args in
  Par.set_batch !batch_flag;
  let selected =
    match args with
    | [] | [ "all" ] -> experiments
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt name experiments with
            | Some fn -> (name, fn)
            | None ->
                Printf.eprintf "unknown experiment %s; available: %s\n" name
                  (String.concat " " (List.map fst experiments));
                exit 2)
          names
  in
  Printf.printf "AlloyStack reproduction benchmarks%s\n\n"
    (if !quick then " (quick mode: sizes reduced)" else "");
  List.iter
    (fun (name, fn) ->
      Printf.printf ">>> %s\n%!" name;
      reset_observability ();
      let t0 = Unix.gettimeofday () in
      fn ();
      Printf.printf "(%s took %.1fs of host time)\n\n%!" name (Unix.gettimeofday () -. t0))
    selected
