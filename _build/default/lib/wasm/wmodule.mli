(** A WASM-style module: imports, functions, globals, linear memory and
    named exports. *)

type func = {
  fname : string;
  params : int;  (** Number of parameters (become locals 0..params-1). *)
  locals : int;  (** Extra zero-initialised locals. *)
  body : Instr.t list;
}

type t = {
  name : string;
  imports : string list;
      (** Host function names; occupy function indices 0..n-1. *)
  funcs : func list;  (** Local functions at indices n.. *)
  globals : int64 list;  (** Initial global values. *)
  memory_pages : int;  (** Initial linear memory size, 64 KiB pages. *)
  data : (int * string) list;  (** (offset, bytes) memory initialisers. *)
  exports : (string * int) list;  (** Export name -> function index. *)
}

val page_size : int
(** 65536. *)

val create :
  ?imports:string list ->
  ?globals:int64 list ->
  ?memory_pages:int ->
  ?data:(int * string) list ->
  ?exports:(string * int) list ->
  name:string ->
  func list ->
  t

val func_count : t -> int
(** Imports + local functions. *)

val lookup_export : t -> string -> int option
val local_func : t -> int -> func option
(** Function at an absolute index, [None] for imports/out of range. *)

val is_import : t -> int -> bool
val code_size : t -> int
(** Total static instruction count of local functions. *)
