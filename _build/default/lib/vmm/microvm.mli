(** MicroVM (Firecracker) and full-QEMU boot profiles.

    Calibrated to Fig. 2 of the paper: a full QEMU guest boots in
    ~1817 ms; trimming the device model (no BIOS, no legacy devices, no
    PCI) brings a MicroVM to ~1186 ms with the guest kernel and rootfs
    intact.  A snapshot-less Firecracker used purely as a serverless
    sandbox (minimal guest, as in the Firecracker paper) boots in
    ~200 ms — that profile backs the Kata/OpenFaaS deployments. *)

val qemu_full : Sandbox.profile
(** Unmodified QEMU/KVM guest. *)

val trimmed : Sandbox.profile
(** MicroVM with trimmed device model, full guest Linux (Fig. 2). *)

val firecracker_serverless : Sandbox.profile
(** Firecracker with a minimal serverless guest (~200 ms, [63]). *)
