examples/quickstart.mli:
