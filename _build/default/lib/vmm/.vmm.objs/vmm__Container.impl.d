lib/vmm/container.ml: Hostos Sandbox Sim Units
