lib/isa/elf.mli: Image Scanner
