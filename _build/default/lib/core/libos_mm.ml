open Sim
open Mem

type buffer = { addr : int; size : int; fingerprint : int64 }

type state = {
  slots : (string, buffer) Hashtbl.t;
  mutable live_bytes : int;
  (* Per-slot bump cursors for anonymous mmaps. *)
  mmap_cursor : (int, int) Hashtbl.t;
}

let key : state Ext.key = Ext.new_key "libos.mm"

let init (wfd : Wfd.t) ~clock =
  ignore clock;
  Ext.set wfd.Wfd.ext key
    { slots = Hashtbl.create 16; live_bytes = 0; mmap_cursor = Hashtbl.create 8 }

let state wfd = Ext.get_exn wfd.Wfd.ext key

let page_round n = (n + Page.size - 1) / Page.size * Page.size

let alloc_buffer (wfd : Wfd.t) ~clock ~slot ~size ~fingerprint =
  let st = state wfd in
  Clock.advance clock Cost.slot_map_op;
  if Hashtbl.mem st.slots slot then Error Errno.Eexist
  else begin
    let rounded = page_round (Stdlib.max 1 size) in
    match Alloc.alloc wfd.Wfd.buffer_alloc ~size:rounded ~align:Page.size with
    | None -> Error Errno.Enomem
    | Some addr ->
        Address_space.map wfd.Wfd.aspace ~addr ~len:rounded ~perm:Page.rw
          ~pkey:Wfd.buffer_key ();
        Hostos.Process.charge_rss wfd.Wfd.proc_table wfd.Wfd.pid rounded;
        Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Mmap);
        let buffer = { addr; size; fingerprint } in
        Hashtbl.replace st.slots slot buffer;
        st.live_bytes <- st.live_bytes + rounded;
        Ok buffer
  end

let acquire_buffer (wfd : Wfd.t) ~clock ~slot ~fingerprint =
  let st = state wfd in
  Clock.advance clock Cost.slot_map_op;
  match Hashtbl.find_opt st.slots slot with
  | None -> Error Errno.Enoent
  | Some buffer ->
      if not (Int64.equal buffer.fingerprint fingerprint) then Error Errno.Einval
      else begin
        (* Single ownership: the slot entry is removed so no other
           function can acquire the same buffer. *)
        Hashtbl.remove st.slots slot;
        Ok buffer
      end

let free_buffer (wfd : Wfd.t) buffer =
  let st = state wfd in
  let rounded = page_round (Stdlib.max 1 buffer.size) in
  Address_space.unmap wfd.Wfd.aspace ~addr:buffer.addr ~len:rounded;
  Alloc.free wfd.Wfd.buffer_alloc buffer.addr;
  Hostos.Process.release_rss wfd.Wfd.proc_table wfd.Wfd.pid rounded;
  st.live_bytes <- Stdlib.max 0 (st.live_bytes - rounded)

let peek_slot wfd slot = Hashtbl.find_opt (state wfd).slots slot

let live_slots wfd =
  Hashtbl.fold (fun k _ acc -> k :: acc) (state wfd).slots [] |> List.sort compare

let live_buffer_bytes wfd = (state wfd).live_bytes

let mmap (wfd : Wfd.t) ~clock ~thread ~len =
  let st = state wfd in
  let slot = thread.Wfd.fn_slot in
  let heap = Layout.function_heap slot in
  (* The initial 1 MiB arena is mapped at spawn; anonymous mmaps bump
     upward from 64 MiB into the slot's heap region. *)
  let base_off = 64 * 1024 * 1024 in
  let cursor =
    match Hashtbl.find_opt st.mmap_cursor slot with
    | Some c -> c
    | None -> heap.Layout.base + base_off
  in
  let rounded = page_round (Stdlib.max 1 len) in
  if cursor + rounded > Layout.region_end heap then Error Errno.Enomem
  else begin
    Address_space.map wfd.Wfd.aspace ~addr:cursor ~len:rounded ~perm:Page.rw
      ~pkey:(Wfd.function_key wfd slot) ();
    Hostos.Process.charge_rss wfd.Wfd.proc_table wfd.Wfd.pid rounded;
    Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Mmap);
    Hashtbl.replace st.mmap_cursor slot (cursor + rounded);
    Ok cursor
  end

let mmap_file (wfd : Wfd.t) ~clock ~thread ~fd ~len =
  match Libos_fdtab.lookup wfd fd with
  | Some (Libos_fdtab.File { path; _ }) -> begin
      match mmap wfd ~clock ~thread ~len with
      | Error _ as e -> e
      | Ok addr -> begin
          match
            Libos_mmap_backend.register_file_backend wfd ~clock ~region_addr:addr
              ~region_len:len ~path
          with
          | Ok () -> Ok addr
          | Error _ as e -> e
        end
    end
  | Some (Libos_fdtab.Stdout | Libos_fdtab.Socket _) | None -> Error Errno.Ebadf
