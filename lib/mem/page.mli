(** Simulated 4 KiB pages with permissions and a protection key. *)

val size : int
(** Page size in bytes (4096). *)

val shift : int
(** log2 of {!size}. *)

type perm = { read : bool; write : bool; exec : bool }

val rw : perm
val ro : perm
val rx : perm
val rwx : perm
val pp_perm : Format.formatter -> perm -> unit

type t = {
  mutable store : Bytes.t option;
      (** Demand-zero backing: materialised by {!data} on first use. *)
  mutable perm : perm;
  mutable pkey : Prot.key;
  mutable populated : bool;
      (** False until first touched; used by the demand-paging backend. *)
}

val create : ?perm:perm -> ?pkey:Prot.key -> unit -> t
(** Fresh zeroed page, default permissions [rw], default key 0.  The
    4 KiB backing buffer is allocated lazily on the first {!data}
    access. *)

val data : t -> Bytes.t
(** The page's backing bytes (always {!size} long), materialising the
    demand-zero page if needed. *)

val vpn_of_addr : int -> int
(** Virtual page number containing an address. *)

val offset_of_addr : int -> int
val addr_of_vpn : int -> int

val align_up : int -> int
(** Round an address/length up to the next page boundary. *)

val align_down : int -> int

val count_for : int -> int
(** Number of pages needed to hold [len] bytes (at least 1 for len>0). *)
