(** The platform-agnostic function context.

    A workload kernel is a closure over this record; each platform
    (AlloyStack, OpenFaaS, Faastlane, Faasm, ...) wires the fields to
    its own transport and runtime, so end-to-end differences between
    platforms come only from the platform, never from workload code. *)

type t = {
  instance : int;  (** This function's parallel instance index. *)
  total : int;  (** Number of parallel instances of this function. *)
  read_input : string -> bytes;
      (** Read a named input file (charges the platform's storage). *)
  write_output : string -> bytes -> unit;
  send : slot:string -> bytes -> unit;
      (** Publish intermediate data under a slot name. *)
  recv : slot:string -> bytes;
      (** Take intermediate data; raises [Not_found] for a dead slot. *)
  println : string -> unit;
  compute : Sim.Units.time -> unit;
      (** Charge pure computation measured in native time; the platform
          applies its language/runtime factor. *)
  phase : string -> (unit -> unit) -> unit;
      (** Attribute enclosed time to a Fig. 15 phase. *)
}

val phase_read : string
val phase_compute : string
val phase_transfer : string

val compute_bytes : t -> ns_per_byte:float -> int -> unit

type kernel = t -> unit

(** {1 App bundle} *)

type app = {
  app_name : string;
  stages : (string * int * kernel) list;
      (** (function name, parallel instances, kernel), in DAG order;
          consecutive entries are fully connected stage-to-stage. *)
  inputs : (string * bytes) list;  (** Files staged before the run. *)
  validate : read_output:(string -> bytes option) -> (unit, string) result;
      (** Check the run really produced the right answer. *)
  modules : string list;
      (** as-libos modules the app needs (Table 1 style). *)
}
