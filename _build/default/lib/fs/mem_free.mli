(** Sector-range free-space tracker for {!Extfs}: address-ordered holes
    with greedy contiguous allocation. *)

type t

val create : start:int -> count:int -> t

val take : t -> int -> (int * int) option
(** [take t n] removes up to [n] contiguous sectors from the first hole,
    preferring one that fits entirely; returns [(start, count)] with
    [count <= n], or [None] when empty. *)

val give : t -> start:int -> count:int -> unit
(** Return a range, coalescing with neighbours. *)

val free_sectors : t -> int
val hole_count : t -> int
