(** Deterministic workload data generators.

    All generators are seeded so every platform sorts/counts exactly
    the same bytes and validation can compare against an
    independently-computed expected answer. *)

val payload : seed:int -> int -> bytes
(** Arbitrary binary payload of the given size. *)

val words_text : seed:int -> int -> bytes
(** ~[size] bytes of space/newline-separated lowercase words drawn from
    a Zipf-ish vocabulary — the WordCount input. *)

val int32_records : seed:int -> count:int -> bytes
(** [count] little-endian 4-byte unsigned records — the ParallelSorting
    input. *)

val record_count : bytes -> int
val get_record : bytes -> int -> int32
val set_record : bytes -> int -> int32 -> unit

val vocabulary_size : int
