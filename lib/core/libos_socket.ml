open Sim

let tap_registry = Hostos.Tap.create ()

type listener = {
  ip : string;
  port : int;
  clock : Clock.t;  (** Server-side service clock. *)
  mutable pending : Netsim.Tcp.t list;
}

(* Host-wide listener table: (ip, port) -> listener. *)
let listeners : (string * int, listener) Hashtbl.t = Hashtbl.create 16

let reset_host () = Hashtbl.reset listeners

type state = { device : Hostos.Tap.device }

let key : state Ext.key = Ext.new_key "libos.socket"

(* Bringing up the smoltcp interface over the fresh TAP. *)
let stack_up_cost = Units.us 420

let init (wfd : Wfd.t) ~clock =
  let device = Hostos.Tap.allocate tap_registry in
  Clock.advance clock device.Hostos.Tap.setup_cost;
  Clock.advance clock stack_up_cost;
  wfd.Wfd.tap <- Some device;
  Ext.set wfd.Wfd.ext key { device }

let wfd_ip (wfd : Wfd.t) =
  match Ext.get wfd.Wfd.ext key with
  | Some st -> Some st.device.Hostos.Tap.ip
  | None -> None

let smol_bind (wfd : Wfd.t) ~clock ~port =
  match Ext.get wfd.Wfd.ext key with
  | None -> Error Errno.Enosys
  | Some st ->
      let ip = st.device.Hostos.Tap.ip in
      Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Bind);
      Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Listen);
      if Hashtbl.mem listeners (ip, port) then Error Errno.Eexist
      else begin
        let listener = { ip; port; clock; pending = [] } in
        Hashtbl.replace listeners (ip, port) listener;
        Ok listener
      end

let smol_connect (wfd : Wfd.t) ~clock ~ip ~port =
  match Hashtbl.find_opt listeners (ip, port) with
  | None -> Error Errno.Enotconn
  | Some listener ->
      let conn =
        Netsim.Tcp.connect ?fault:wfd.Wfd.fault ~client:clock ~server:listener.clock
          ~link:Netsim.Link.loopback ~client_profile:Netsim.Tcp.smoltcp
          ~server_profile:Netsim.Tcp.smoltcp ()
      in
      listener.pending <- listener.pending @ [ conn ];
      Ok conn

let smol_accept listener ~clock =
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Accept);
  match listener.pending with
  | [] -> Error Errno.Enotconn
  | conn :: rest ->
      listener.pending <- rest;
      Ok conn

let smol_send conn ~clock ~from_client data =
  ignore clock;
  (* The TCP layer advances both endpoint clocks itself. *)
  Netsim.Tcp.send conn ~from_client data;
  Bytes.length data

let smol_recv conn ~clock ~at_client len =
  Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Recvfrom);
  Netsim.Tcp.recv conn ~at_client len
