lib/wasm/wat.ml: Buffer Char Format Instr Int64 List Printf String Wmodule
