(** The ServerlessBench functions of Table 1, with the kernel
    components each one requires.

    Used by the Table 1 reproduction, the image-processing example and
    the on-demand-loading tests: running a pipeline composed of these
    functions should load exactly the union of their module lists. *)

type entry = { fn_name : string; components : string list; kernel : Fctx.kernel }

val table : entry list
(** All nine functions of Table 1 with the paper's component lists. *)

val find : string -> entry
(** Raises [Not_found]. *)

val image_pipeline : seed:int -> Fctx.app
(** The image-processing workflow the paper's examples sketch:
    extract-image-metadata -> transform-metadata -> handler ->
    thumbnail -> store-image-metadata. *)

val image_input_path : string
val thumbnail_output_path : string
val metadata_output_path : string
