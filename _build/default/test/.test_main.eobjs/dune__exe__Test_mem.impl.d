test/test_mem.ml: Address_space Alcotest Alloc Bytes Char Gen Layout List Mem Option Page Prot QCheck QCheck_alcotest String
