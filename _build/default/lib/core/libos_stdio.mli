(** as-libos [stdio] module: write to the host console (Table 2).

    Output lands in the WFD's stdout buffer (what the host console
    would show), charged as one host write syscall per call. *)

val init : Wfd.t -> clock:Sim.Clock.t -> unit

val host_stdout : Wfd.t -> clock:Sim.Clock.t -> bytes -> int
(** Returns the number of bytes written. *)

val output : Wfd.t -> string
(** Everything this WFD has printed. *)
