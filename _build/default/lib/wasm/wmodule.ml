type func = { fname : string; params : int; locals : int; body : Instr.t list }

type t = {
  name : string;
  imports : string list;
  funcs : func list;
  globals : int64 list;
  memory_pages : int;
  data : (int * string) list;
  exports : (string * int) list;
}

let page_size = 65536

let create ?(imports = []) ?(globals = []) ?(memory_pages = 1) ?(data = [])
    ?(exports = []) ~name funcs =
  { name; imports; funcs; globals; memory_pages; data; exports }

let func_count t = List.length t.imports + List.length t.funcs

let lookup_export t name = List.assoc_opt name t.exports

let local_func t idx =
  let n_imports = List.length t.imports in
  if idx < n_imports then None else List.nth_opt t.funcs (idx - n_imports)

let is_import t idx = idx >= 0 && idx < List.length t.imports

let code_size t =
  List.fold_left (fun acc f -> acc + Instr.count f.body) 0 t.funcs
