lib/fs/ramfs.ml: Bytes Clock Hashtbl List Sim Units
