lib/core/fndata.ml: Buffer Bytes Char Format Hashtbl Int64 List String
