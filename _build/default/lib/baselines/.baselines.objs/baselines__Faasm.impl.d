lib/baselines/faasm.ml: Alloystack_core Bytes Clock Fctx Fsim Hashtbl Hostos List Platform Runner Sim Units Wasm Workloads
