(** WordCount: MapReduce word-frequency counting (from vSwarm).

    High parallelism, sparse intermediate data.  Stage structure:
    [split -> map xM -> reduce xM -> merge]; the splitter cuts the
    input on word boundaries, each mapper counts its chunk and
    hash-partitions the counts towards the reducers, each reducer
    merges its partition, and the merger writes the sorted
    "word count" table. *)

val input_path : string
val output_path : string

val app : seed:int -> size:int -> instances:int -> Fctx.app
(** [size] bytes of generated text, [instances] mappers and reducers. *)

val expected_counts : seed:int -> size:int -> (string * int) list
(** Ground truth computed directly from the generated input. *)

(** {1 Internals exposed for tests} *)

val count_words : bytes -> (string, int) Hashtbl.t
val encode_counts : (string * int) list -> bytes
val decode_counts : bytes -> (string * int) list
