(** Multi-node deployment (§9 of the paper): a workflow too large for
    one node is split into multiple WFDs along stage boundaries, each
    deployed on its own node.  Within a WFD, intermediate data still
    moves by reference; across WFDs it falls back to "traditional"
    transfer — serialised and shipped over the datacenter network —
    exactly the trade-off the paper describes.

    The split is the manual, contiguous-stages split the paper
    supports ("developers can manually divide the DAG"). *)

val make : ?bridge:(int -> Sim.Units.time) -> ?label:string -> nodes:int -> unit -> Platform.t
(** [make ~nodes ()] runs an app's stages in [nodes] contiguous groups,
    one WFD per node.  [nodes = 1] is equivalent to plain AlloyStack.
    [bridge] is the cost of shipping an [n]-byte payload across a WFD
    boundary (default {!bridge_cost}); the adaptive selector plugs in a
    different policy here. *)

val split_stages : 'a list -> parts:int -> 'a list list
(** Contiguous, balanced split (exposed for tests): concatenation of
    the result equals the input, length = [min parts (length list)]. *)

val bridge_cost : int -> Sim.Units.time
(** One cross-WFD handoff of [n] bytes: serialisation at both ends plus
    the wire time on the datacenter link. *)
