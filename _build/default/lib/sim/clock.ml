type t = { mutable now : Units.time }

let create ?(at = Units.zero) () = { now = at }

let now t = t.now

let advance t d = t.now <- Units.add t.now d

let advance_to t instant = t.now <- Units.max t.now instant

let sync a b = advance_to a b.now

let copy t = { now = t.now }

let elapsed_since t start = Units.sub t.now start

let makespan clocks =
  List.fold_left (fun acc c -> Units.max acc c.now) Units.zero clocks
