open Sim

type kernel = Asstd.ctx -> instance:int -> total:int -> unit

type binding = { kernel : kernel; image : Isa.Image.t option }

let bind ?image kernel = { kernel; image }

type retry_policy = No_retry | Retry_function of int | Retry_workflow of int

type backoff =
  | No_backoff
  | Exponential of { base : Units.time; factor : float; limit : Units.time }

let backoff_delay backoff ~attempt =
  if attempt <= 1 then Units.zero
  else
    match backoff with
    | No_backoff -> Units.zero
    | Exponential { base; factor; limit } ->
        Units.min limit (Units.scale base (factor ** float_of_int (attempt - 2)))

(* Content-hash -> verdict store, sharded by the hash's leading bits.
   Sharding keeps per-table occupancy (and worst-case probe chains)
   small when thousands of distinct images pass admission, and gives
   concurrent tenants distinct tables to touch.  The content hash is
   hex, so its leading digit gives a uniform 4-bit shard index. *)
let admission_shard_bits = 4

type admission_cache = {
  shards : (string, (unit, string) result) Hashtbl.t array;
  mutable cache_hits : int;
  mutable cache_scans : int;
}

let admission_cache () =
  {
    shards = Array.init (1 lsl admission_shard_bits) (fun _ -> Hashtbl.create 16);
    cache_hits = 0;
    cache_scans = 0;
  }

let admission_shard c key =
  (* [key] is a hex digest; its first digit is uniform over 0..15. *)
  let d =
    if String.length key = 0 then 0
    else
      match key.[0] with
      | '0' .. '9' as ch -> Char.code ch - Char.code '0'
      | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
      | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
      | ch -> Char.code ch
  in
  c.shards.(d land ((1 lsl admission_shard_bits) - 1))

let admission_hits c = c.cache_hits
let admission_scans c = c.cache_scans

type config = {
  cores : int;
  features : Wfd.features;
  vfs : Fsim.Vfs.t option;
  wasm_runtime : Wasm.Runtime.profile option;
  dispatch_latency : Units.time;
  retry : retry_policy;
  cpu_quota : float option;
  fault : Fault.t option;
  timeout : Units.time option;
  backoff : backoff;
  admission : admission_cache option;
  code_cache : Wasm.Compile_cache.t option;
}

let default_config =
  {
    cores = 64;
    features = Wfd.default_features;
    vfs = None;
    wasm_runtime = None;
    dispatch_latency = Units.us 15;
    retry = No_retry;
    cpu_quota = None;
    fault = None;
    timeout = None;
    backoff = No_backoff;
    admission = None;
    code_cache = None;
  }

type stage_report = {
  stage_index : int;
  instance_durations : Units.time list;
  stage_makespan : Units.time;
  fan_in_waits : Units.time list;
}

type report = {
  e2e : Units.time;
  cold_start : Units.time;
  admission : Units.time;
  stage_reports : stage_report list;
  phase_totals : (string * Units.time) list;
  entry_misses : int;
  entry_hits : int;
  trampoline_crossings : int;
  peak_rss : int;
  stdout : string;
  loaded_modules : string list;
  retries : int;
}

exception Admission_failed of string

exception Function_failed of { fn : string; attempts : int; error : exn }

exception Function_hung of { fn : string }

exception Timed_out of { fn : string; after : Units.time }

(* Recovering a crashed function: discard its heap-unit allocations
   (linked_list_allocator recovery, 7.1), unmap its slot and restart
   the thread in a fresh slot. *)
let function_restart_cost = Units.us 260

(* Blacklist admission: scan (and if needed rewrite) every provided
   image.  This runs before the workflow is triggered (§6), so its cost
   is reported separately from the critical path.  With a cache, an
   image whose content hash was already scanned skips the re-scan and
   replays the recorded verdict. *)
let admit_images ?cache bindings =
  let clock = Clock.create () in
  List.iter
    (fun (_, b) ->
      match b.image with
      | None -> ()
      | Some image ->
          let scan () =
            let kb = (Isa.Image.code_size image + 1023) / 1024 in
            Clock.advance clock (Units.scale Cost.image_scan_per_kb (float_of_int kb));
            match Isa.Rewriter.admit image with
            | Ok _ -> Ok ()
            | Error reason -> Error reason
          in
          let verdict =
            match cache with
            | None -> scan ()
            | Some c -> begin
                let key =
                  Hotspot.with_section "admission.hash" (fun () ->
                      Isa.Image.content_hash image)
                in
                let shard = admission_shard c key in
                match Hashtbl.find_opt shard key with
                | Some v ->
                    c.cache_hits <- c.cache_hits + 1;
                    Clock.advance clock Cost.admission_cache_hit;
                    v
                | None ->
                    c.cache_scans <- c.cache_scans + 1;
                    let v = scan () in
                    Hashtbl.replace shard key v;
                    v
              end
          in
          match verdict with
          | Ok () -> ()
          | Error reason -> raise (Admission_failed reason))
    bindings;
  Clock.now clock

let lookup_binding bindings id =
  match List.assoc_opt id bindings with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Visor.run: no binding for function %s" id)

let make_fn_ctx config wfd thread language =
  let ctx = Asstd.make_ctx ?code_cache:config.code_cache wfd thread language in
  match language with
  | Workflow.Rust -> ctx
  | Workflow.C | Workflow.Python ->
      let runtime =
        match config.wasm_runtime with Some r -> r | None -> Wasm.Runtime.wasmtime
      in
      Asstd.with_runtime ctx runtime

(* Module instantiation for a WASM-hosted function after the engine is
   up (linear memory + linker binding). *)
let wasm_instantiate_cost = Units.us 300

(* A parallel Python instance needs its own interpreter state; with the
   runtime files already resident in the WFD this re-init is far
   cheaper than the first boot (the Fig. 13 "file reading during
   initialization" bottleneck shows up as instances grow). *)
let cpython_reinit = Units.ms 300

(* Interpreter reuse by a later sequential function of the same WFD. *)
let cpython_reuse = Units.ms 25

type runtime_state = {
  mutable engine_started : bool;
  mutable python_booted : bool;
}

(* Runtime init charged before a WASM-hosted function's first
   instruction.  The engine (and for Python the CPython runtime) lives
   in the WFD and is shared: only the first function pays the full
   boot.  A warm-pool clone inherits the template's already-booted
   flags, so it never pays the boot at all. *)
let runtime_init_cost config state language ~instance =
  let runtime =
    match config.wasm_runtime with Some r -> r | None -> Wasm.Runtime.wasmtime
  in
  match language with
  | Workflow.Rust -> Units.zero
  | Workflow.C | Workflow.Python ->
      let engine =
        if state.engine_started then Units.zero
        else begin
          state.engine_started <- true;
          runtime.Wasm.Runtime.startup
        end
      in
      let python =
        match language with
        | Workflow.Python ->
            if not state.python_booted then begin
              state.python_booted <- true;
              Wasm.Runtime.cpython_init
            end
            else if instance > 0 then cpython_reinit
            else cpython_reuse
        | Workflow.Rust | Workflow.C -> Units.zero
      in
      Units.add engine (Units.add wasm_instantiate_cost python)

(* --- Observability instruments ------------------------------------ *)

let fn_histo = Metrics.histogram "visor.function_ns"
let stage_histo = Metrics.histogram "visor.stage_ns"
let e2e_histo = Metrics.histogram "visor.e2e_ns"
let retry_counter = Stats.Counter.make "visor.retries"

(* --- Stage execution engine -------------------------------------- *)

(* State of one workflow execution in one WFD.  [run_once] drives it
   stage by stage to completion on a private machine; [Server] drives
   many of them interleaved over a shared core pool, advancing each at
   its stage boundaries in virtual time. *)
type exec_ctx = {
  ecfg : config;
  ebindings : (string * binding) list;
  ewfd : Wfd.t;
  rt : runtime_state;
  eretries : int ref;
  cold_start_mark : Units.time option ref;
  ephase_totals : (string, Units.time) Hashtbl.t;
  epeak_rss : int ref;
  estage_reports : stage_report list ref;
  et0 : Units.time;
}

let make_exec_ctx ~config ~bindings ~wfd ~rt ~retries ~t0 =
  {
    ecfg = config;
    ebindings = bindings;
    ewfd = wfd;
    rt;
    eretries = retries;
    cold_start_mark = ref None;
    ephase_totals = Hashtbl.create 8;
    epeak_rss = ref 0;
    estage_reports = ref [];
    et0 = t0;
  }

(* Run every instance of every node of one stage: spawn the function
   threads, execute the kernels (with per-function retry/timeout under
   the configured policy) and return each task's on-CPU duration.  The
   caller places the durations on cores — a private core set for
   [run_once], the machine-shared pool for [Server]. *)
let exec_stage ectx ~ready nodes =
  let config = ectx.ecfg in
  let wfd = ectx.ewfd in
  let tasks =
    List.concat_map
      (fun node ->
        let b = lookup_binding ectx.ebindings node.Workflow.node_id in
        List.init node.Workflow.instances (fun i -> (node, b, i)))
      nodes
  in
  let dispatch = ref ready in
  List.map
    (fun ((node : Workflow.node), b, i) ->
      dispatch := Units.add !dispatch config.dispatch_latency;
      let start = !dispatch in
      let spawn_clock = Clock.create ~at:start () in
      (match config.cpu_quota with
      | Some _ -> Clock.advance spawn_clock Hostos.Cgroup.setup_cost
      | None -> ());
      let thread =
        Hotspot.with_section "stage.spawn" (fun () ->
            Wfd.spawn_function_thread wfd ~clock:spawn_clock)
      in
      Clock.sync thread.Wfd.clock spawn_clock;
      Clock.advance thread.Wfd.clock
        (runtime_init_cost config ectx.rt node.Workflow.language ~instance:i);
      (match !(ectx.cold_start_mark) with
      | None -> ectx.cold_start_mark := Some (Clock.now thread.Wfd.clock)
      | Some _ -> ());
      (* Run the kernel; a crash is contained by MPK fault isolation,
         so under Retry_function the orchestrator recovers the
         function's heap and restarts just this function (3.1). *)
      let max_attempts =
        match config.retry with
        | Retry_function n -> Stdlib.max 1 n
        | No_retry | Retry_workflow _ -> 1
      in
      let fn = node.Workflow.node_id in
      (* The label sprintf only when the span collector is on: with
         1-in-k request sampling, most requests run with spans off and
         the eager label was pure allocation. *)
      let fn_span =
        let sp = Span.current () in
        if Span.enabled sp then
          Span.begin_span sp ~parent:wfd.Wfd.span ~at:start ~category:"function"
            ~label:(Printf.sprintf "%s#%d" fn i)
            ()
        else Span.none
      in
      let saved_span = wfd.Wfd.span in
      if fn_span <> Span.none then wfd.Wfd.span <- fn_span;
      let record_recovery ~at detail =
        match config.fault with
        | Some plan -> Fault.record_recovery plan ~at ~site:"visor.retry" detail
        | None ->
            Trace.recordf (Trace.current ()) ~at ~category:"fault" ~label:"visor.retry"
              "recovered: %s" detail
      in
      let rec attempt thread n =
        let ctx = make_fn_ctx config wfd thread node.Workflow.language in
        let attempt_start = Clock.now thread.Wfd.clock in
        let execute () =
          (match config.fault with
          | Some plan ->
              if Fault.check ~at:attempt_start plan ~site:Fault.site_fn_crash then
                raise (Fault.Injected { site = Fault.site_fn_crash });
              if Fault.check ~at:attempt_start plan ~site:Fault.site_fn_hang then begin
                match config.timeout with
                | None ->
                    (* No watchdog timeout configured: a wedged
                       function thread is undetectable. *)
                    raise (Function_hung { fn })
                | Some limit ->
                    (* The thread wedges; the watchdog kills it when
                       the per-function timeout expires. *)
                    Clock.advance thread.Wfd.clock limit;
                    raise (Timed_out { fn; after = limit })
              end
          | None -> ());
          Hotspot.with_section "stage.kernel" (fun () ->
              b.kernel ctx ~instance:i ~total:node.Workflow.instances);
          match config.timeout with
          | Some limit
            when Units.( > ) (Clock.elapsed_since thread.Wfd.clock attempt_start) limit
            ->
              (* The kernel ran past its budget: the watchdog killed
                 it at the deadline, the visor observes the kill at
                 the next scheduling tick. *)
              raise (Timed_out { fn; after = limit })
          | _ -> ()
        in
        match execute () with
        | () -> (thread, ctx)
        | exception (Function_hung _ as e) -> raise e
        | exception error ->
            if n >= max_attempts then
              raise (Function_failed { fn; attempts = n; error })
            else begin
              incr ectx.eretries;
              Stats.Counter.incr retry_counter;
              (* Recover the crashed function's heap unit and
                 restart it in the same slot.  The recovery (respawn +
                 restart cost + backoff wait) is a "retry" span under
                 the function. *)
              let rsp =
                let sp = Span.current () in
                if Span.enabled sp then
                  Span.begin_span sp ~parent:wfd.Wfd.span
                    ~at:(Clock.now thread.Wfd.clock) ~category:"retry"
                    ~label:(Printf.sprintf "restart %s" fn)
                    ()
                else Span.none
              in
              let fresh =
                Wfd.respawn_function_thread wfd ~slot:thread.Wfd.fn_slot
                  ~clock:thread.Wfd.clock
              in
              Clock.advance fresh.Wfd.clock function_restart_cost;
              let wait = backoff_delay config.backoff ~attempt:(n + 1) in
              Clock.advance fresh.Wfd.clock wait;
              Span.end_span (Span.current ()) rsp ~at:(Clock.now fresh.Wfd.clock);
              record_recovery ~at:(Clock.now fresh.Wfd.clock)
                (Printf.sprintf "restart %s attempt %d (backoff %s)" fn (n + 1)
                   (Units.to_string wait));
              attempt fresh (n + 1)
            end
      in
      let final_thread, ctx =
        match attempt thread 1 with
        | result -> result
        | exception e ->
            (* A terminal failure escapes to the workflow-retry layer;
               the function span stays zero-length and the lost attempt
               surfaces as unattributed ("other") time of the stage. *)
            wfd.Wfd.span <- saved_span;
            raise e
      in
      Hashtbl.iter
        (fun name t ->
          let prev =
            match Hashtbl.find_opt ectx.ephase_totals name with
            | Some v -> v
            | None -> Units.zero
          in
          Hashtbl.replace ectx.ephase_totals name (Units.add prev t))
        ctx.Asstd.phases;
      wfd.Wfd.span <- saved_span;
      Span.end_span (Span.current ()) fn_span ~at:(Clock.now final_thread.Wfd.clock);
      let on_cpu = Clock.elapsed_since final_thread.Wfd.clock start in
      Metrics.observe_time fn_histo on_cpu;
      match config.cpu_quota with
      | Some q -> Hostos.Cgroup.stretch (Hostos.Cgroup.create ~quota:q) on_cpu
      | None -> on_cpu)
    tasks

(* Record a scheduled stage's report and return its makespan — the next
   stage's ready time. *)
let record_stage ectx ~stage_index ~ready ~durations ~placements =
  let makespan = Hostos.Sched.makespan placements in
  Metrics.observe_time stage_histo (Units.sub makespan ready);
  ectx.epeak_rss :=
    Stdlib.max !(ectx.epeak_rss) (Hostos.Process.total_rss ectx.ewfd.Wfd.proc_table);
  ectx.estage_reports :=
    {
      stage_index;
      instance_durations = durations;
      stage_makespan = Units.sub makespan ready;
      fan_in_waits = Hostos.Sched.fan_in_wait placements;
    }
    :: !(ectx.estage_reports);
  Trace.recordf (Trace.current ()) ~at:makespan ~category:"visor" ~label:"stage-done"
    "wfd%d stage %d (%d instances)" ectx.ewfd.Wfd.id stage_index (List.length durations);
  makespan

let build_report ectx ~finish ~cold_fallback ~admission =
  let wfd = ectx.ewfd in
  Metrics.observe_time e2e_histo (Units.sub finish ectx.et0);
  let stdout = Libos_stdio.output wfd in
  let loaded_modules =
    Hashtbl.fold (fun k () acc -> k :: acc) wfd.Wfd.loaded_modules []
    |> List.sort compare
  in
  {
    e2e = Units.sub finish ectx.et0;
    cold_start =
      (match !(ectx.cold_start_mark) with
      | Some m -> Units.sub m ectx.et0
      | None -> Units.sub cold_fallback ectx.et0);
    admission;
    stage_reports = List.rev !(ectx.estage_reports);
    phase_totals =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) ectx.ephase_totals []
      |> List.sort compare;
    entry_misses = wfd.Wfd.entry_misses;
    entry_hits = wfd.Wfd.entry_hits;
    trampoline_crossings = wfd.Wfd.trampoline_crossings;
    peak_rss = !(ectx.epeak_rss);
    stdout;
    loaded_modules;
    retries = !(ectx.eretries);
  }

let run_once ?retries ?admission_cost ~(config : config) ~workflow ~bindings () =
  (* Check bindings exist up front. *)
  List.iter
    (fun n -> ignore (lookup_binding bindings n.Workflow.node_id))
    workflow.Workflow.nodes;
  (* [admission_cost] carries a verdict computed by a sequential
     prologue ([run_many]); without it every call scans (or consults
     the shared cache) itself. *)
  let admission =
    match admission_cost with
    | Some a -> a
    | None -> admit_images ?cache:config.admission bindings
  in
  let proc_table = Hostos.Process.create_table () in
  let clock = Clock.create () in
  let t0 = Clock.now clock in
  let wf_span =
    Span.begin_span (Span.current ()) ~parent:Span.none ~at:t0 ~category:"workflow"
      ~label:workflow.Workflow.wf_name ()
  in
  (* (1) The watchdog receives the invocation event. *)
  Clock.advance clock Cost.visor_dispatch;
  (* as-visor instantiates the WFD for the workflow. *)
  let wfd =
    Wfd.create ~features:config.features ?vfs:config.vfs ?fault:config.fault
      ~proc_table ~clock ~workflow_name:workflow.Workflow.wf_name ()
  in
  (* The WFD (and its proc-table entry) must be reclaimed on every exit
     path: a terminal function failure in a long-lived server or a
     Retry_workflow loop must not accumulate live WFDs. *)
  Fun.protect
    ~finally:(fun () -> Wfd.destroy wfd)
    (fun () ->
      (* Dispatch + WFD instantiation + entry table (+ the load-all
         configuration's up-front module loads) are the boot phase. *)
      let boot_span =
        Span.begin_span (Span.current ()) ~parent:wf_span ~at:t0 ~category:"boot"
          ~label:"wfd-boot" ()
      in
      wfd.Wfd.span <- boot_span;
      Clock.advance clock Cost.entry_table_init;
      Trace.recordf (Trace.current ()) ~at:(Clock.now clock) ~category:"visor"
        ~label:"wfd-created" "wfd%d for %s" wfd.Wfd.id workflow.Workflow.wf_name;
      if not config.features.Wfd.on_demand then Libos.load_all wfd ~clock;
      Span.end_span (Span.current ()) boot_span ~at:(Clock.now clock);
      wfd.Wfd.span <- wf_span;
      let rt = { engine_started = false; python_booted = false } in
      let retries = match retries with Some r -> r | None -> ref 0 in
      let ectx = make_exec_ctx ~config ~bindings ~wfd ~rt ~retries ~t0 in
      let ready = ref (Clock.now clock) in
      List.iteri
        (fun stage_index nodes ->
          let stage_span =
            Span.begin_span (Span.current ()) ~parent:wf_span ~at:!ready ~category:"stage"
              ~label:(Printf.sprintf "stage %d" stage_index)
              ()
          in
          if stage_span <> Span.none then wfd.Wfd.span <- stage_span;
          let durations = exec_stage ectx ~ready:!ready nodes in
          let placements =
            Hostos.Sched.schedule ~cores:config.cores ~ready:!ready
              ~dispatch_latency:config.dispatch_latency durations
          in
          ready := record_stage ectx ~stage_index ~ready:!ready ~durations ~placements;
          wfd.Wfd.span <- wf_span;
          Span.end_span (Span.current ()) stage_span ~at:!ready)
        (Workflow.stages workflow);
      (* (7) after the last function completes, as-visor destroys the
         WFD and reclaims the resources. *)
      let finish = !ready in
      Span.end_span (Span.current ()) wf_span ~at:finish;
      Trace.recordf (Trace.current ()) ~at:finish ~category:"visor" ~label:"wfd-destroyed"
        "wfd%d" wfd.Wfd.id;
      build_report ectx ~finish ~cold_fallback:(Clock.now clock) ~admission)

let cold_start_only ?(config = default_config) () =
  let noop = bind (fun _ctx ~instance:_ ~total:_ -> ()) in
  let workflow =
    Workflow.create_exn ~name:"no-ops"
      ~nodes:
        [
          {
            Workflow.node_id = "noop";
            language = Workflow.Rust;
            instances = 1;
            required_modules = [];
          };
        ]
      ~edges:[]
  in
  let report = run_once ~config ~workflow ~bindings:[ ("noop", noop) ] () in
  report.cold_start


let run_with ?admission_cost ~(config : config) ~workflow ~bindings () =
  match config.retry with
  | No_retry | Retry_function _ -> run_once ?admission_cost ~config ~workflow ~bindings ()
  | Retry_workflow max_attempts ->
      (* Idempotent functions: a failed run is retried in a brand new
         WFD; inputs are still staged on the (shared) disk image.  The
         function-level restart counter is carried across attempts so
         restarts performed inside failed attempts are not dropped, and
         a hung workflow (detected by the visor's liveness watchdog) is
         retried like any other failed attempt. *)
      let carried = ref 0 in
      let max_attempts = Stdlib.max 1 max_attempts in
      let rec attempt n =
        match run_once ~retries:carried ?admission_cost ~config ~workflow ~bindings () with
        | report -> { report with retries = report.retries + (n - 1) }
        | exception (Function_failed _ | Function_hung _) when n < max_attempts ->
            attempt (n + 1)
      in
      attempt 1

let run ?(config = default_config) ~workflow ~bindings () =
  run_with ~config ~workflow ~bindings ()

let max_attempts_of config =
  match config.retry with
  | Retry_workflow n -> Stdlib.max 1 n
  | No_retry | Retry_function _ -> 1

(* Repeat the workflow [repeat] times across the host domain pool.
   Virtual time stays bit-identical whatever [Sim.Par.domains] says:

   - admission runs in a sequential prologue, in submission order, so
     the shared verdict cache sees the same hit/scan sequence as a
     sequential loop (retried attempts reuse their repeat's verdict);
   - each repeat gets a WFD id range reserved by submission index, a
     fault plan split off the parent by index, and a collector shard;
   - shards are merged (and fault counters absorbed) in submission
     order after the pool joins.

   A shared pre-staged disk image ([config.vfs]) is host-mutable state,
   so that configuration runs the repeats on the submitting domain. *)
let run_many ?(config = default_config) ~workflow ~bindings ~repeat () =
  if repeat < 0 then invalid_arg "Visor.run_many: repeat must be non-negative";
  if repeat = 0 then [||]
  else begin
    List.iter
      (fun n -> ignore (lookup_binding bindings n.Workflow.node_id))
      workflow.Workflow.nodes;
    let max_attempts = max_attempts_of config in
    let admission =
      Array.init repeat (fun _ -> admit_images ?cache:config.admission bindings)
    in
    let bases = Array.init repeat (fun _ -> Wfd.reserve_ids max_attempts) in
    let share_disk = config.vfs <> None in
    let children =
      match config.fault with
      | Some plan when not share_disk ->
          Array.init repeat (fun i -> Some (Fault.acquire_child plan ~index:i))
      | Some _ | None -> Array.make repeat None
    in
    let cfg = Par.shard_config () in
    let shards = Array.init repeat (fun _ -> Par.acquire_shard cfg) in
    let tasks =
      Array.init repeat (fun i () ->
          Par.with_shard shards.(i) (fun () ->
              Wfd.with_id_namespace ~base:bases.(i) (fun () ->
                  let config =
                    match children.(i) with
                    | Some _ as f -> { config with fault = f; admission = None }
                    | None -> { config with admission = None }
                  in
                  run_with ~admission_cost:admission.(i) ~config ~workflow
                    ~bindings ())))
    in
    let reports =
      if share_disk then Array.map (fun f -> f ()) tasks else Par.run tasks
    in
    Array.iter
      (fun s ->
        Par.merge_shard s;
        Par.release_shard s)
      shards;
    (match config.fault with
    | Some plan ->
        Array.iter
          (function
            | Some c ->
                Fault.absorb plan c;
                Fault.release_child c
            | None -> ())
          children
    | None -> ());
    reports
  end

(* --- Multi-tenant serving layer ----------------------------------- *)

module Server = struct
  type request = { endpoint : string; arrival : Units.time }

  type response = {
    r_endpoint : string;
    r_arrival : Units.time;
    r_finish : Units.time;
    r_latency : Units.time;
    r_warm : bool;
    r_ok : bool;
    r_attempts : int;
    r_retries : int;
  }

  type serve_report = {
    responses : response list;
    completed : int;
    failed : int;
    duration : Units.time;
    throughput_rps : float;
    mean_latency : Units.time;
    p50_latency : Units.time;
    p99_latency : Units.time;
    max_inflight : int;
    warm_starts : int;
    cold_starts : int;
    adm_hits : int;
    adm_scans : int;
    evictions : int;
    templates_live : int;
    machine_peak_rss : int;
  }

  (* The aggregate half of a serve report: everything [serve_report]
     carries except the materialised response list.  [serve_fold]
     returns this alongside the caller's accumulator so a 10^6-request
     run never has to hold its responses. *)
  type summary = {
    sm_completed : int;
    sm_failed : int;
    sm_duration : Units.time;
    sm_throughput_rps : float;
    sm_mean_latency : Units.time;
    sm_p50_latency : Units.time;
    sm_p99_latency : Units.time;
    sm_max_inflight : int;
    sm_warm_starts : int;
    sm_cold_starts : int;
    sm_adm_hits : int;
    sm_adm_scans : int;
    sm_evictions : int;
    sm_templates_live : int;
    sm_machine_peak_rss : int;
    sm_latency_sketched : bool;
  }

  type registration = {
    reg_workflow : Workflow.t;
    reg_bindings : (string * binding) list;
  }

  (* A warm template: a WFD whose entry table, preloaded modules and
     booted runtime state were paid for once, off the request path.
     Requests CoW-clone it instead of cold-booting.  Templates thread
     an intrusive doubly-linked recency list (head = most recent), so
     touch and LRU eviction are O(1) with no membership scan. *)
  type template = {
    tpl_wfd : Wfd.t;
    tpl_engine : bool;
    tpl_python : bool;
    tpl_build : Units.time;
    tpl_ep : string;
    tpl_rss : int;  (* resident size at install; templates are frozen *)
    mutable tpl_prev : template option;  (* towards most recent *)
    mutable tpl_next : template option;  (* towards least recent *)
    mutable tpl_linked : bool;
    mutable tpl_free : Wfd.t list;
        (* Recycled WFD shells ready for [Wfd.acquire] — pushed by
           worker domains under the server's recycle mutex, popped by
           the sequential prologue.  Availability therefore depends
           only on the merged virtual timeline (how many requests of
           this template completed cleanly in earlier windows), never
           on host scheduling. *)
    mutable tpl_free_n : int;
    mutable tpl_doomed : bool;
        (* Set at eviction (always in a sequential phase): trajectories
           still running against this template destroy their WFDs
           instead of pooling them. *)
  }

  (* Windowed telemetry, opt-in via [enable_telemetry].  Every series
     is recorded from the sequential merge loop — observations land in
     merged-virtual-timeline order, so the exported timeseries, SLO
     alert instants and burn rates are byte-identical at any host
     domain count without any shard merging of their own. *)
  type telemetry = {
    tel_ts : Timeseries.t;
    tel_slos : Slo.t list;
    tel_requests : Timeseries.series;  (* serve.requests, per window *)
    tel_errors : Timeseries.series;
    tel_warm : Timeseries.series;  (* warm attempt starts *)
    tel_cold : Timeseries.series;  (* cold-boot attempt starts *)
    tel_recycle : Timeseries.series;  (* shells offered for recycling *)
    tel_inflight : Timeseries.series;  (* per-window high watermark *)
    tel_latency : Timeseries.dist;  (* serve.latency_ns *)
    tel_by_ep :
      (string, Timeseries.series * Timeseries.series * Timeseries.dist) Hashtbl.t;
        (* per-endpoint (requests, errors, latency), labelled names *)
  }

  type t = {
    scfg : config;
    pool_cap : int;
    warm_enabled : bool;
    table : (string, registration) Hashtbl.t;
    templates : (string, template) Hashtbl.t;
    adm : admission_cache;
    codec : Wasm.Compile_cache.t;
        (* Shared across all requests and warm clones: identical
           modules compile once on the host, like the admission cache
           shares scan verdicts.  Virtual time is unaffected. *)
    proc_table : Hostos.Process.t;
    cpu : Hostos.Sched.pool;
    mutable lru_head : template option;  (* most recently used *)
    mutable lru_tail : template option;  (* least recently used *)
    mutable pool_bytes : int;  (* cached sum of pooled template rss *)
    obs_every : int;  (* span/trace sampling: keep 1 request in k *)
    obs_phase : int;
    sketch_lat : bool;
        (* true: serve latency percentiles come from a t-digest and no
           raw latencies are retained — O(1) memory at any request
           count.  false (default): exact retained-sample percentiles,
           byte-identical to every earlier release. *)
    mutable ep_cache : string list option;
        (* memoized sorted endpoint list; invalidated by [register] so
           soak-loop snapshots don't rebuild-and-sort per call *)
    mutable evicted : int;
    mutable warm_hit_count : int;
    mutable cold_boot_count : int;
    mutable machine_peak : int;
    mutable doomed : Wfd.t list;
        (* Templates evicted while a planned request may still hold a
           reference to them: the WFD is destroyed only once no
           trajectory can clone it (end of a serve window / [shutdown]). *)
    recycle_cap : int;
        (* Max pooled shells per template; 0 disables recycling (every
           request clones fresh and destroys, the historical path). *)
    recycle_mu : Mutex.t;
        (* Guards every [tpl_free] push/pop: workers release shells
           concurrently during a window's parallel phase. *)
    mutable tel : telemetry option;
  }

  let create ?(config = default_config) ?(pool_mem_cap = 512 * 1024 * 1024)
      ?(warm = true) ?(sample_every = 1) ?(sample_seed = 0)
      ?(sketch_latency = false) ?(recycle_cap = 64) () =
    if recycle_cap < 0 then
      invalid_arg "Visor.Server.create: negative recycle cap";
    if pool_mem_cap < 0 then invalid_arg "Visor.Server.create: negative pool cap";
    if sample_every < 1 then
      invalid_arg "Visor.Server.create: sample_every must be >= 1";
    let codec =
      match config.code_cache with Some c -> c | None -> Wasm.Compile_cache.create ()
    in
    {
      scfg = { config with code_cache = Some codec };
      pool_cap = pool_mem_cap;
      warm_enabled = warm;
      table = Hashtbl.create 8;
      templates = Hashtbl.create 8;
      adm = (match config.admission with Some c -> c | None -> admission_cache ());
      codec;
      proc_table = Hostos.Process.create_table ();
      cpu = Hostos.Sched.pool ~cores:config.cores;
      lru_head = None;
      lru_tail = None;
      pool_bytes = 0;
      obs_every = sample_every;
      obs_phase = ((sample_seed mod sample_every) + sample_every) mod sample_every;
      sketch_lat = sketch_latency;
      ep_cache = None;
      evicted = 0;
      warm_hit_count = 0;
      cold_boot_count = 0;
      machine_peak = 0;
      doomed = [];
      recycle_cap;
      recycle_mu = Mutex.create ();
      tel = None;
    }

  let enable_telemetry t ?window ?retention ?(slos = []) () =
    let ts = Timeseries.create ?width:window ?retention () in
    let bucket = Timeseries.width ts in
    t.tel <-
      Some
        {
          tel_ts = ts;
          tel_slos = List.map (fun s -> Slo.create ~bucket s) slos;
          tel_requests = Timeseries.counter ts "serve.requests";
          tel_errors = Timeseries.counter ts "serve.errors";
          tel_warm = Timeseries.counter ts "serve.warm_hits";
          tel_cold = Timeseries.counter ts "serve.cold_boots";
          tel_recycle = Timeseries.counter ts "serve.recycle_releases";
          tel_inflight = Timeseries.gauge ts "serve.inflight";
          tel_latency = Timeseries.dist ts "serve.latency_ns";
          tel_by_ep = Hashtbl.create 8;
        }

  let telemetry t = Option.map (fun tel -> tel.tel_ts) t.tel
  let slo_monitors t = match t.tel with None -> [] | Some tel -> tel.tel_slos

  (* All monitors' alerts on one timeline: sort by instant, ties by
     SLO name — stable and deterministic. *)
  let slo_alerts t =
    slo_monitors t
    |> List.concat_map Slo.alerts
    |> List.stable_sort (fun (a : Slo.alert) (b : Slo.alert) ->
           match Units.compare a.Slo.al_at b.Slo.al_at with
           | 0 -> String.compare a.Slo.al_slo b.Slo.al_slo
           | c -> c)

  let ep_series tel ep =
    match Hashtbl.find_opt tel.tel_by_ep ep with
    | Some v -> v
    | None ->
        let kv = [ ("endpoint", ep) ] in
        let v =
          ( Timeseries.counter tel.tel_ts (Metrics.labels "serve.requests" kv),
            Timeseries.counter tel.tel_ts (Metrics.labels "serve.errors" kv),
            Timeseries.dist tel.tel_ts (Metrics.labels "serve.latency_ns" kv) )
        in
        Hashtbl.replace tel.tel_by_ep ep v;
        v

  let register t ~endpoint ~workflow ~bindings () =
    if Hashtbl.mem t.table endpoint then
      invalid_arg
        (Printf.sprintf "Visor.Server.register: endpoint %s already bound" endpoint);
    List.iter
      (fun (n : Workflow.node) -> ignore (lookup_binding bindings n.Workflow.node_id))
      workflow.Workflow.nodes;
    Hashtbl.replace t.table endpoint
      { reg_workflow = workflow; reg_bindings = bindings };
    t.ep_cache <- None

  (* Sorted endpoint listing, memoized until the next [register]:
     called once per soak snapshot, so it must not rebuild-and-sort the
     table every time. *)
  let endpoints t =
    match t.ep_cache with
    | Some eps -> eps
    | None ->
        let eps =
          Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare
        in
        t.ep_cache <- Some eps;
        eps

  let pool_rss t = t.pool_bytes

  (* Machine resident memory is the live template pool plus whatever
     the in-flight requests hold.  Requests live in private process
     tables (one per trajectory), so the caller passes their sum;
     [t.proc_table] is not consulted directly — it still carries
     deferred-destroy templates. *)
  let note_rss ?(live = 0) t =
    t.machine_peak <- Stdlib.max t.machine_peak (t.pool_bytes + live)

  (* --- O(1) recency list over pooled templates --------------------- *)

  let lru_unlink t tpl =
    if tpl.tpl_linked then begin
      (match tpl.tpl_prev with
      | Some p -> p.tpl_next <- tpl.tpl_next
      | None -> t.lru_head <- tpl.tpl_next);
      (match tpl.tpl_next with
      | Some n -> n.tpl_prev <- tpl.tpl_prev
      | None -> t.lru_tail <- tpl.tpl_prev);
      tpl.tpl_prev <- None;
      tpl.tpl_next <- None;
      tpl.tpl_linked <- false
    end

  let lru_push_front t tpl =
    tpl.tpl_prev <- None;
    tpl.tpl_next <- t.lru_head;
    (match t.lru_head with Some h -> h.tpl_prev <- Some tpl | None -> ());
    t.lru_head <- Some tpl;
    (match t.lru_tail with None -> t.lru_tail <- Some tpl | Some _ -> ());
    tpl.tpl_linked <- true

  let touch t tpl =
    match t.lru_head with
    | Some h when h == tpl -> ()
    | _ ->
        lru_unlink t tpl;
        lru_push_front t tpl

  let pool_size t = Hashtbl.length t.templates

  let evictions t = t.evicted
  let warm_hits t = t.warm_hit_count
  let cold_boots t = t.cold_boot_count
  let admission t = t.adm
  let code_cache t = t.codec

  let evict_lru t =
    match t.lru_tail with
    | None -> ()
    | Some tpl ->
        (* Deferred destroy: a request planned against this template in
           the serve prologue may clone it from a worker domain later;
           the WFD dies at the next quiescent point instead.  Pooled
           shells go the same way, and [tpl_doomed] stops in-flight
           trajectories from pooling any more. *)
        lru_unlink t tpl;
        tpl.tpl_doomed <- true;
        t.doomed <- List.rev_append tpl.tpl_free (tpl.tpl_wfd :: t.doomed);
        tpl.tpl_free <- [];
        tpl.tpl_free_n <- 0;
        Hashtbl.remove t.templates tpl.tpl_ep;
        t.pool_bytes <- t.pool_bytes - tpl.tpl_rss;
        t.evicted <- t.evicted + 1;
        Trace.recordf (Trace.current ()) ~at:Units.zero ~category:"server" ~label:"pool-evict"
          "template %s evicted (LRU)" tpl.tpl_ep

  let flush_doomed t =
    List.iter Wfd.destroy t.doomed;
    t.doomed <- []

  (* Build the warm template for an endpoint: full WFD boot, entry
     table, the workflow's declared modules preloaded, and the WASM
     engine / CPython booted for the languages the workflow uses.  All
     of it charged to the template's own clock — off any request's
     critical path. *)
  let build_template t endpoint reg =
    let clock = Clock.create () in
    let tpl_span =
      Span.begin_span (Span.current ()) ~parent:Span.none ~at:(Clock.now clock)
        ~category:"template" ~label:("template " ^ endpoint) ()
    in
    let wfd =
      Wfd.create ~features:t.scfg.features ?vfs:t.scfg.vfs ?fault:t.scfg.fault
        ~proc_table:t.proc_table ~clock
        ~workflow_name:(endpoint ^ ":template") ()
    in
    wfd.Wfd.span <- tpl_span;
    Clock.advance clock Cost.entry_table_init;
    if not t.scfg.features.Wfd.on_demand then Libos.load_all wfd ~clock
    else
      List.iter (Libos.load_module wfd ~clock)
        (Workflow.required_modules reg.reg_workflow);
    let langs =
      List.sort_uniq compare
        (List.map (fun (n : Workflow.node) -> n.Workflow.language)
           reg.reg_workflow.Workflow.nodes)
    in
    let needs_engine =
      List.exists (function Workflow.C | Workflow.Python -> true | Workflow.Rust -> false) langs
    in
    let needs_python = List.mem Workflow.Python langs in
    if needs_engine then begin
      let runtime =
        match t.scfg.wasm_runtime with Some r -> r | None -> Wasm.Runtime.wasmtime
      in
      Clock.advance clock runtime.Wasm.Runtime.startup
    end;
    if needs_python then Clock.advance clock Wasm.Runtime.cpython_init;
    wfd.Wfd.span <- Span.none;
    Span.end_span (Span.current ()) tpl_span ~at:(Clock.now clock);
    Trace.recordf (Trace.current ()) ~at:(Clock.now clock) ~category:"server"
      ~label:"template-built" "wfd%d for %s" wfd.Wfd.id endpoint;
    {
      tpl_wfd = wfd;
      tpl_engine = needs_engine;
      tpl_python = needs_python;
      tpl_build = Clock.now clock;
      tpl_ep = endpoint;
      tpl_rss = Hostos.Process.rss t.proc_table wfd.Wfd.pid;
      tpl_prev = None;
      tpl_next = None;
      tpl_linked = false;
      tpl_free = [];
      tpl_free_n = 0;
      tpl_doomed = false;
    }

  (* Install a template under the memory cap, evicting least-recently
     used templates until it fits.  A template bigger than the whole
     cap is not kept. *)
  let install_template t endpoint tpl =
    let rss = tpl.tpl_rss in
    if rss > t.pool_cap then begin
      Wfd.destroy tpl.tpl_wfd;
      None
    end
    else begin
      while t.pool_bytes + rss > t.pool_cap && Hashtbl.length t.templates > 0 do
        evict_lru t
      done;
      Hashtbl.replace t.templates endpoint tpl;
      t.pool_bytes <- t.pool_bytes + rss;
      touch t tpl;
      note_rss t;
      Some tpl
    end

  (* --- WFD shell pool (recycling) ---------------------------------- *)

  (* Pop a recycled shell for a request booting against [tpl].  Called
     from worker domains: which requests get shells is host-scheduling
     dependent, which is fine because [Wfd.acquire] replays exactly the
     virtual effects of a fresh clone — shell vs clone is virtually
     indistinguishable, so only host cost depends on the pop order. *)
  let pop_shell t tpl =
    if t.recycle_cap = 0 then None
    else
      Mutex.protect t.recycle_mu (fun () ->
          match tpl.tpl_free with
          | [] -> None
          | s :: rest ->
              tpl.tpl_free <- rest;
              tpl.tpl_free_n <- tpl.tpl_free_n - 1;
              Some s)

  (* Return a finished clone of [tpl] to its shell pool — called from
     worker domains at the end of a clean warm attempt.  The host-only
     reset happens here, off the sequential merge path; over the cap or
     after eviction the shell is destroyed like the historical path.

     Returns whether the shell was {e offered} to the pool.  That bool
     depends only on plan-level state set in sequential phases
     (recycle cap, doom flags), never on the pool's momentary
     occupancy — which makes it the deterministic recycle signal the
     telemetry layer records.  Whether an offered shell actually stays
     pooled additionally depends on the cap check under the mutex,
     i.e. on concurrent push order, so that outcome is host-only. *)
  let release_shell t tpl wfd =
    if t.recycle_cap = 0 || tpl.tpl_doomed || tpl.tpl_wfd.Wfd.destroyed then begin
      Wfd.destroy wfd;
      false
    end
    else begin
      Wfd.recycle ~template:tpl.tpl_wfd wfd;
      let pooled =
        Mutex.protect t.recycle_mu (fun () ->
            tpl.tpl_free_n < t.recycle_cap
            && not tpl.tpl_doomed
            && begin
                 tpl.tpl_free <- wfd :: tpl.tpl_free;
                 tpl.tpl_free_n <- tpl.tpl_free_n + 1;
                 true
               end)
      in
      if not pooled then Wfd.destroy wfd;
      true
    end

  let find_registration t endpoint =
    match Hashtbl.find_opt t.table endpoint with
    | Some reg -> reg
    | None -> raise Not_found

  let prewarm t ~endpoint =
    let reg = find_registration t endpoint in
    if not t.warm_enabled then None
    else
      match Hashtbl.find_opt t.templates endpoint with
      | Some tpl ->
          touch t tpl;
          Some tpl.tpl_build
      | None -> (
          match install_template t endpoint (build_template t endpoint reg) with
          | Some tpl -> Some tpl.tpl_build
          | None -> None)

  (* --- Host-parallel serving --------------------------------------- *)

  (* [serve] runs in three phases:

     Prologue (sequential): requests are walked in arrival-event order.
     Admission verdicts come off the shared cache, warm-or-cold boot
     plans are fixed against the template pool (cold boots seed their
     template here, off every request's critical path), WFD id ranges
     are reserved and fault plans split per submission index.

     Trajectories (parallel): each admitted request's full execution —
     every boot and stage of every workflow-level attempt — runs on a
     private relative timeline whose zero is the instant the attempt
     starts.  All collector writes land in per-segment shards; stage
     ready times come from a private core pool of the machine's width.
     On-CPU durations are start-time-invariant, so computing them
     before the real start instants are known loses nothing.

     Merge (sequential): the event queue replays arrivals and stage
     completions in virtual time exactly as the sequential server did,
     placing each precomputed stage's durations on the *shared* core
     pool and importing each segment's shard at its real event instant.
     Nothing here depends on how many domains ran phase two, which is
     what makes `--domains 1` and `--domains N` byte-identical. *)

  type boot_plan = Warm of template | Cold

  (* One boot or stage of a trajectory: its collector shard, the
     private-timeline instant its frame starts at, the task durations
     to place on the shared pool, and the request's resident set once
     the segment is done. *)
  type segment = {
    sg_shard : Par.shard;
    sg_base : Units.time;
    sg_durations : Units.time list;
    sg_rss : int;
  }

  type attempt_traj = {
    at_warm : bool;
    at_wfd_id : int;
    at_boot : segment;
    at_boot_elapsed : Units.time;
    at_stages : segment list;
    at_failed : [ `Hang | `Failure ] option;
        (* The stage after [at_stages] raised; its partial work is in
           [at_fail_seg]. *)
    at_fail_seg : segment option;
  }

  type traj = {
    tj_attempts : attempt_traj list;  (* executed attempts, in order *)
    tj_retries : int;  (* function restarts across all attempts *)
    tj_released : bool;
        (* the final attempt offered its shell back to the recycle
           pool — the deterministic per-request recycle signal (see
           [release_shell]) *)
  }

  type plan = {
    pl_reg : registration;
    pl_boots : boot_plan array;  (* one per potential attempt *)
    pl_base : int;  (* reserved WFD id range *)
    pl_fault : Fault.t option;  (* per-request fault plan split *)
  }

  (* Fix the boot type of every potential attempt of one request from
     the pool state at prologue time.  Attempt 1 follows the pool: a
     pooled template means warm, otherwise cold (seeding the template
     for later requests, like the background prewarm a first cold start
     kicks off).  Retry attempts reboot after their predecessor fails,
     by which point the endpoint's template exists unless seeding
     failed — so they are warm whenever attempt 1 was warm or seeded. *)
  let plan_boots t endpoint reg ~max_attempts =
    let first =
      match if t.warm_enabled then Hashtbl.find_opt t.templates endpoint else None with
      | Some tpl ->
          touch t tpl;
          `Warm tpl
      | None ->
          if t.warm_enabled then
            match install_template t endpoint (build_template t endpoint reg) with
            | Some tpl -> `Cold_seeded tpl
            | None -> `Cold
          else `Cold
    in
    Array.init max_attempts (fun k ->
        match first with
        | `Warm tpl -> Warm tpl
        | `Cold_seeded tpl -> if k = 0 then Cold else Warm tpl
        | `Cold -> Cold)

  (* Compute one request's trajectory.  Runs on any domain: every
     observable write goes to a segment shard, WFD ids come from the
     request's reserved namespace, faults and the disk image are
     request-private (unless the server was configured with a shared
     pre-staged disk, in which case [serve] stays on one domain). *)
  let run_trajectory t ~cfg ~endpoint ~(reg : registration) ~boots ~fault_child
      =
    Hotspot.with_section "serve.trajectory" @@ fun () ->
    let scfg =
      match fault_child with
      | Some _ as f -> { t.scfg with fault = f }
      | None -> t.scfg
    in
    let stages = Workflow.stages reg.reg_workflow in
    let retries = ref 0 in
    let released = ref false in
    let max_a = Array.length boots in
    let rec attempts_from a acc =
      let proc_table = Hostos.Process.acquire_table () in
      let clock = Clock.create () in
      let boot_sh = Par.acquire_shard cfg in
      let boot_tpl =
        match boots.(a - 1) with Warm tpl -> Some tpl | Cold -> None
      in
      let wfd, rt, warm =
        Hotspot.with_section "boot" @@ fun () ->
        Par.with_shard boot_sh (fun () ->
            let category = if a = 1 then "boot" else "retry" in
            let boot_span =
              let sp = Span.current () in
              if Span.enabled sp then
                Span.begin_span sp ~parent:Span.none ~at:Units.zero ~category
                  ~label:(category ^ "-boot " ^ endpoint)
                  ()
              else Span.none
            in
            Clock.advance clock Cost.visor_dispatch;
            let wfd, rt, warm =
              match boots.(a - 1) with
              | Warm tpl ->
                  (* A recycled shell serves attempt 1 of fault-free
                     requests; [Wfd.acquire] replays exactly the
                     virtual effects of a fresh clone, so the pop can
                     be opportunistic (host-order) here on the worker
                     domain: shells recirculate within a window and the
                     pool stays O(domains) instead of O(window).
                     Fault-carrying requests clone fresh, matching
                     [acquire]'s fault-plan contract. *)
                  let shell =
                    if a = 1 && fault_child = None then pop_shell t tpl
                    else None
                  in
                  let vfs =
                    match scfg.vfs with
                    | Some _ -> None (* shared pre-staged disk: inherit *)
                    | None -> (
                        (* The template's image is host-shared mutable
                           state; every clone gets a private disk wired
                           to its own fault plan.  A shell that kept
                           its recycled private image (re-formatted,
                           bit-identical to fresh) reuses it. *)
                        match shell with
                        | Some s when s.Wfd.vfs != tpl.tpl_wfd.Wfd.vfs ->
                            None
                        | _ ->
                            let disk =
                              Hotspot.with_section "vfs.fresh" (fun () ->
                                  Fsim.Vfs.fresh_fat ())
                            in
                            Some
                              (match fault_child with
                              | Some plan -> Fsim.Vfs.with_faults plan disk
                              | None -> disk))
                  in
                  let wfd =
                    match shell with
                    | Some s ->
                        Wfd.acquire ?vfs ~template:tpl.tpl_wfd s ~proc_table
                          ~clock
                    | None ->
                        Wfd.clone_template ?vfs ?fault:fault_child tpl.tpl_wfd
                          ~proc_table ~clock
                  in
                  wfd.Wfd.span <- boot_span;
                  Libos.attach_warm wfd ~clock;
                  if tpl.tpl_engine || tpl.tpl_python then
                    Clock.advance clock Cost.warm_runtime_resume;
                  ( wfd,
                    { engine_started = tpl.tpl_engine; python_booted = tpl.tpl_python },
                    true )
              | Cold ->
                  let wfd =
                    Wfd.create ~features:scfg.features ?vfs:scfg.vfs
                      ?fault:scfg.fault ~proc_table ~clock
                      ~workflow_name:(endpoint ^ ":" ^ reg.reg_workflow.Workflow.wf_name)
                      ()
                  in
                  wfd.Wfd.span <- boot_span;
                  Clock.advance clock Cost.entry_table_init;
                  if not scfg.features.Wfd.on_demand then Libos.load_all wfd ~clock;
                  (wfd, { engine_started = false; python_booted = false }, false)
            in
            Span.end_span (Span.current ()) boot_span ~at:(Clock.now clock);
            Span.set_attr (Span.current ()) boot_span "warm" (string_of_bool warm);
            (* Function spans become shard roots; the merge re-parents
               them under the real stage spans. *)
            wfd.Wfd.span <- Span.none;
            (wfd, rt, warm))
      in
      let boot_seg =
        {
          sg_shard = boot_sh;
          sg_base = Units.zero;
          sg_durations = [];
          sg_rss = Hostos.Process.total_rss proc_table;
        }
      in
      let boot_elapsed = Clock.now clock in
      let body () =
            let ectx =
              make_exec_ctx ~config:scfg ~bindings:reg.reg_bindings ~wfd ~rt
                ~retries ~t0:Units.zero
            in
            (* Stage ready times on the private timeline come from a
               private pool of the same width as the shared one: gaps
               here are never larger than the contended gaps the merge
               produces, so the WFD's internal clocks stay behind every
               real stage start.  The pool is a domain-local scratch
               arena reset per attempt, never allocated per attempt. *)
            let priv = Hostos.Sched.scratch ~cores:scfg.cores in
            let rel_ready = ref boot_elapsed in
            let done_stages = ref [] in
            let failure = ref None in
            (try
               List.iter
                 (fun nodes ->
                   let sh = Par.acquire_shard cfg in
                   match
                     Hotspot.with_section "stage.exec" (fun () ->
                         Par.with_shard sh (fun () ->
                             exec_stage ectx ~ready:!rel_ready nodes))
                   with
                   | durations ->
                       let placements =
                         Hostos.Sched.schedule_on priv ~ready:!rel_ready
                           ~dispatch_latency:scfg.dispatch_latency durations
                       in
                       done_stages :=
                         {
                           sg_shard = sh;
                           sg_base = !rel_ready;
                           sg_durations = durations;
                           sg_rss = Hostos.Process.total_rss proc_table;
                         }
                         :: !done_stages;
                       rel_ready := Hostos.Sched.makespan placements
                   | exception ((Function_failed _ | Function_hung _) as e) ->
                       let kind =
                         match e with Function_hung _ -> `Hang | _ -> `Failure
                       in
                       failure :=
                         Some
                           ( kind,
                             {
                               sg_shard = sh;
                               sg_base = !rel_ready;
                               sg_durations = [];
                               sg_rss = Hostos.Process.total_rss proc_table;
                             } );
                       raise Exit)
                 stages
             with Exit -> ());
            {
              at_warm = warm;
              at_wfd_id = wfd.Wfd.id;
              at_boot = boot_seg;
              at_boot_elapsed = boot_elapsed;
              at_stages = List.rev !done_stages;
              at_failed = Option.map fst !failure;
              at_fail_seg = Option.map snd !failure;
            }
      in
      let at =
        match body () with
        | at -> at
        | exception e ->
            Wfd.destroy wfd;
            raise e
      in
      (* A clean warm finish returns its WFD to the template's shell
         pool (host-only reset on this worker domain); failures, cold
         boots and per-request fault plans tear down as before. *)
      (match boot_tpl with
      | Some tpl when at.at_failed = None && fault_child = None ->
          released := release_shell t tpl wfd
      | Some _ | None -> Wfd.destroy wfd);
      (* The attempt record never references the process table (RSS is
         sampled into the segments), and a recycled shell's table field
         was re-pointed at the template's by [Wfd.recycle] — so the
         per-attempt table recirculates on this worker domain. *)
      Hostos.Process.release_table proc_table;
      if at.at_failed <> None && a < max_a then attempts_from (a + 1) (at :: acc)
      else List.rev (at :: acc)
    in
    let attempts = attempts_from 1 [] in
    { tj_attempts = attempts; tj_retries = !retries; tj_released = !released }

  (* Merge-phase state of one request. *)
  type mstate = {
    ms_req : request;
    ms_index : int;  (* global arrival-order index *)
    ms_sampled : bool;  (* spans/trace kept for this request *)
    ms_traj : traj option;  (* [None]: rejected at admission *)
    mutable ms_span : Span.id;
    mutable ms_attempts_left : attempt_traj list;
    mutable ms_attempt : attempt_traj option;  (* currently executing *)
    mutable ms_attempt_no : int;
    mutable ms_stages_left : segment list;
    mutable ms_rss : int;
    mutable ms_attempt_began : Units.time;
        (* start instant of the executing attempt, for the
           per-execution [visor.e2e_ns] observation *)
  }

  type ev = Arrival of mstate | Advance of mstate

  (* Event priority classes: every arrival at instant T precedes every
     stage completion at T, exactly as when all arrivals were enqueued
     before the drain started. *)
  let pri_arrival = 0
  let pri_advance = 1

  (* Prologue for one request: admission verdict off the shared cache,
     warm-or-cold boot plan fixed against the template pool (a cold
     boot seeds the template here, off every request's critical path),
     WFD id range reserved and the fault plan split by global arrival
     index. *)
  let plan_request t ~share_disk ~max_attempts ~index (r : request) =
    let reg = find_registration t r.endpoint in
    match admit_images ~cache:t.adm reg.reg_bindings with
    | (_ : Units.time) ->
        let boots = plan_boots t r.endpoint reg ~max_attempts in
        let base = Wfd.reserve_ids max_attempts in
        let fault_child =
          match t.scfg.fault with
          | Some plan when not share_disk -> Some (Fault.acquire_child plan ~index)
          | Some _ | None -> None
        in
        Some
          { pl_reg = reg; pl_boots = boots; pl_base = base; pl_fault = fault_child }
    | exception Admission_failed _ -> None

  (* [serve_stream] pulls requests lazily (arrivals must be
     nondecreasing) and pipelines them through the three phases in
     windows, so live memory is O(window + in-flight), never O(total):

     Prologue (sequential): the next [window] requests are walked in
     arrival order and planned against the shared caches and pool.

     Trajectories (parallel): the window's admitted requests execute on
     private relative timelines across domains, collector writes going
     to per-segment shards.  On-CPU durations are start-time-invariant,
     so computing them before the real start instants are known loses
     nothing.

     Merge (sequential): one event queue replays arrivals and stage
     completions in virtual time over the *shared* core pool, importing
     each segment's shard at its real instant.  A new window is planned
     exactly when the earliest unplanned arrival is due no later than
     the next queued event, so the merged timeline — and therefore all
     virtual output — is independent of the window size and of how many
     domains ran the trajectories.

     When the server samples observability (sample_every = k > 1), only
     every k-th request (by arrival index, phase seed mod k) carries
     spans and trace events; metrics and counters stay exact for every
     request.  With k = 1 output is bit-identical to always-on.

     [serve_fold] is the primitive: each response is handed to the
     caller's [f] at its completion instant (completion order — the
     merged virtual timeline) and never stored.  [serve]/[serve_stream]
     are thin wrappers that fold into a list, so their output is
     byte-identical to the historical materialising implementation. *)
  let serve_fold t ?(window = 2048) next ~init ~f =
    if window < 1 then invalid_arg "Visor.Server.serve_fold: window must be >= 1";
    let max_attempts = max_attempts_of t.scfg in
    let share_disk = t.scfg.vfs <> None in
    let base_cfg = Par.shard_config () in
    let q : ev Eventq.t = Eventq.create () in
    let pending = ref (next ()) in
    let next_index = ref 0 in
    let last_arrival = ref Units.zero in
    let plan_window () =
      (* Pull up to [window] requests, in arrival order. *)
      let batch = ref [] in
      let filled = ref 0 in
      let continue = ref true in
      while !continue && !filled < window do
        match !pending with
        | None -> continue := false
        | Some (r : request) ->
            if Units.( < ) r.arrival !last_arrival then
              invalid_arg
                "Visor.Server.serve_fold: arrivals must be nondecreasing";
            last_arrival := r.arrival;
            batch := (!next_index, r) :: !batch;
            incr next_index;
            incr filled;
            pending := next ()
      done;
      let batch = List.rev !batch in
      (* Prologue, in arrival order. *)
      let planned =
        Hotspot.with_section "serve.prologue" @@ fun () ->
        List.map
          (fun (i, r) ->
            let sampled =
              t.obs_every <= 1 || i mod t.obs_every = t.obs_phase
            in
            (i, r, sampled, plan_request t ~share_disk ~max_attempts ~index:i r))
          batch
      in
      (* Trajectories: host-parallel, shard-isolated.  An unsampled
         request's shards are created with spans and trace off, so it
         allocates no observability state at all. *)
      let tasks =
        Array.of_list
          (List.map
             (fun (_, (r : request), sampled, plan) ->
               match plan with
               | None -> fun () -> None
               | Some p ->
                   let cfg =
                     {
                       Par.cfg_span_on = base_cfg.Par.cfg_span_on && sampled;
                       cfg_trace_on = base_cfg.Par.cfg_trace_on && sampled;
                     }
                   in
                   fun () ->
                     Wfd.with_id_namespace ~base:p.pl_base (fun () ->
                         Some
                           (run_trajectory t ~cfg ~endpoint:r.endpoint
                              ~reg:p.pl_reg ~boots:p.pl_boots
                              ~fault_child:p.pl_fault)))
             planned)
      in
      let trajs =
        if share_disk then Array.map (fun f -> f ()) tasks else Par.run tasks
      in
      (match t.scfg.fault with
      | Some plan ->
          List.iter
            (fun (_, _, _, pl) ->
              match pl with
              | Some { pl_fault = Some c; _ } ->
                  Fault.absorb plan c;
                  Fault.release_child c
              | Some { pl_fault = None; _ } | None -> ())
            planned
      | None -> ());
      List.iteri
        (fun k (i, r, sampled, _) ->
          let ms =
            {
              ms_req = r;
              ms_index = i;
              ms_sampled = sampled;
              ms_traj = trajs.(k);
              ms_span = Span.none;
              ms_attempts_left = [];
              ms_attempt = None;
              ms_attempt_no = 0;
              ms_stages_left = [];
              ms_rss = 0;
              ms_attempt_began = Units.zero;
            }
          in
          Eventq.push q ~at:r.arrival ~pri:pri_arrival (Arrival ms))
        planned;
      (* Every planned trajectory has executed, so templates evicted
         while planning this window can die now — keeping the doomed
         list from growing with the run. *)
      flush_doomed t
    in
    (* Plan while the earliest unplanned arrival is due no later than
       the next queued event (arrivals beat same-instant completions,
       so <= , not <). *)
    let rec pump () =
      match !pending with
      | None -> ()
      | Some (r : request) -> (
          match Eventq.peek q with
          | Some (at, _) when Units.( < ) at r.arrival -> ()
          | _ ->
              plan_window ();
              pump ())
    in
    let acc = ref init in
    let lat = if t.sketch_lat then Stats.sketched () else Stats.create () in
    let inflight_now = ref 0 in
    let max_inflight = ref 0 in
    let completed = ref 0 in
    let failed = ref 0 in
    let first_arrival = ref None in
    let last_finish = ref Units.zero in
    let live_rss = ref 0 in
    let req_histo = Metrics.histogram "server.request_latency_ns" in
    let inflight_gauge = Metrics.gauge "server.max_inflight" in
    let set_rss ms rss =
      live_rss := !live_rss - ms.ms_rss + rss;
      ms.ms_rss <- rss;
      note_rss ~live:!live_rss t
    in
    (* Telemetry records happen here in the merge loop, on the merged
       virtual timeline — deterministic at any domain count for free. *)
    let tel_finish ~now ~endpoint ~latency ~ok ~released =
      match t.tel with
      | None -> ()
      | Some tel ->
          let _, ep_err, ep_lat = ep_series tel endpoint in
          let lat_ns = Int64.to_float (Units.to_ns latency) in
          Timeseries.observe tel.tel_ts tel.tel_latency ~at:now lat_ns;
          Timeseries.observe tel.tel_ts ep_lat ~at:now lat_ns;
          if not ok then begin
            Timeseries.add tel.tel_ts tel.tel_errors ~at:now 1.0;
            Timeseries.add tel.tel_ts ep_err ~at:now 1.0
          end;
          if released then
            Timeseries.add tel.tel_ts tel.tel_recycle ~at:now 1.0;
          List.iter
            (fun m -> Slo.observe_request m ~at:now ~ok ~latency)
            tel.tel_slos
    in
    let finish_request ms ~now ~ok =
      decr inflight_now;
      let latency = Units.sub now ms.ms_req.arrival in
      Span.set_attr (Span.current ()) ms.ms_span "ok" (string_of_bool ok);
      Span.end_span (Span.current ()) ms.ms_span ~at:now;
      Metrics.observe_time req_histo latency;
      if ok then begin
        incr completed;
        Stats.add_time lat latency
      end
      else incr failed;
      tel_finish ~now ~endpoint:ms.ms_req.endpoint ~latency ~ok
        ~released:
          (ok && match ms.ms_traj with Some tj -> tj.tj_released | None -> false);
      last_finish := Units.max !last_finish now;
      acc :=
        f !acc
          {
            r_endpoint = ms.ms_req.endpoint;
            r_arrival = ms.ms_req.arrival;
            r_finish = now;
            r_latency = latency;
            r_warm = (match ms.ms_attempt with Some a -> a.at_warm | None -> false);
            r_ok = ok;
            r_attempts = ms.ms_attempt_no;
            r_retries =
              (match ms.ms_traj with Some tj -> tj.tj_retries | None -> 0);
          };
      set_rss ms 0
    in
    (* Begin the next attempt at [now]: counters, the boot segment's
       shard (its "boot"/"retry" span attaches under the request), and
       the first stage scheduled at boot completion. *)
    let start_attempt ms ~now =
      match ms.ms_attempts_left with
      | [] -> assert false
      | a :: rest ->
          ms.ms_attempt <- Some a;
          ms.ms_attempts_left <- rest;
          ms.ms_attempt_no <- ms.ms_attempt_no + 1;
          ms.ms_stages_left <- a.at_stages;
          ms.ms_attempt_began <- now;
          if a.at_warm then t.warm_hit_count <- t.warm_hit_count + 1
          else t.cold_boot_count <- t.cold_boot_count + 1;
          (match t.tel with
          | None -> ()
          | Some tel ->
              Timeseries.add tel.tel_ts
                (if a.at_warm then tel.tel_warm else tel.tel_cold)
                ~at:now 1.0);
          Par.merge_shard ~attach:ms.ms_span ~offset:now a.at_boot.sg_shard;
          Par.release_shard a.at_boot.sg_shard;
          set_rss ms a.at_boot.sg_rss;
          Eventq.push q ~at:(Units.add now a.at_boot_elapsed) ~pri:pri_advance
            (Advance ms)
    in
    let step ms ~now =
      let a = match ms.ms_attempt with Some a -> a | None -> assert false in
      match ms.ms_stages_left with
      | sg :: rest ->
          let stage_index = List.length a.at_stages - List.length ms.ms_stages_left in
          let stage_span =
            if ms.ms_sampled then
              Span.begin_span (Span.current ()) ~parent:ms.ms_span ~at:now
                ~category:"stage"
                ~label:(Printf.sprintf "stage %d" stage_index)
                ()
            else Span.none
          in
          Par.merge_shard ~attach:stage_span ~offset:(Units.sub now sg.sg_base)
            sg.sg_shard;
          Par.release_shard sg.sg_shard;
          let placements =
            Hostos.Sched.schedule_on t.cpu ~ready:now
              ~dispatch_latency:t.scfg.dispatch_latency sg.sg_durations
          in
          let makespan = Hostos.Sched.makespan placements in
          Metrics.observe_time stage_histo (Units.sub makespan now);
          if ms.ms_sampled then
            Trace.recordf (Trace.current ()) ~at:makespan ~category:"visor"
              ~label:"stage-done" "wfd%d stage %d (%d instances)" a.at_wfd_id
              stage_index
              (List.length sg.sg_durations);
          Span.end_span (Span.current ()) stage_span ~at:makespan;
          ms.ms_stages_left <- rest;
          set_rss ms sg.sg_rss;
          Eventq.push q ~at:makespan ~pri:pri_advance (Advance ms)
      | [] -> (
          (* One workflow execution (attempt) ended: boot through last
             stage — the serving-side analogue of the run path's
             end-to-end observation. *)
          Metrics.observe_time e2e_histo (Units.sub now ms.ms_attempt_began);
          match a.at_failed with
          | None -> finish_request ms ~now ~ok:true
          | Some kind ->
              (* The failed attempt's stage span stays zero-length; its
                 partial function spans still attach under it. *)
              let stage_span =
                if ms.ms_sampled then
                  Span.begin_span (Span.current ()) ~parent:ms.ms_span ~at:now
                    ~category:"stage"
                    ~label:(Printf.sprintf "stage %d" (List.length a.at_stages))
                    ()
                else Span.none
              in
              (match a.at_fail_seg with
              | Some sg ->
                  Par.merge_shard ~attach:stage_span
                    ~offset:(Units.sub now sg.sg_base) sg.sg_shard;
                  Par.release_shard sg.sg_shard
              | None -> ());
              Span.end_span (Span.current ()) stage_span ~at:now;
              if ms.ms_attempts_left <> [] then begin
                if ms.ms_sampled then
                  Trace.recordf (Trace.current ()) ~at:now ~category:"server"
                    ~label:"workflow-retry" "%s attempt %d (%s)" ms.ms_req.endpoint
                    (ms.ms_attempt_no + 1)
                    (match kind with `Hang -> "hang" | `Failure -> "failure");
                start_attempt ms ~now
              end
              else finish_request ms ~now ~ok:false)
    in
    let handle_event now ev =
        match ev with
        | Arrival ms -> (
            (match !first_arrival with
            | None -> first_arrival := Some now
            | Some _ -> ());
            incr inflight_now;
            max_inflight := Stdlib.max !max_inflight !inflight_now;
            Metrics.max_gauge inflight_gauge (float_of_int !inflight_now);
            (match t.tel with
            | None -> ()
            | Some tel ->
                Timeseries.add tel.tel_ts tel.tel_requests ~at:now 1.0;
                Timeseries.add tel.tel_ts tel.tel_inflight ~at:now
                  (float_of_int !inflight_now);
                let ep_req, _, _ = ep_series tel ms.ms_req.endpoint in
                Timeseries.add tel.tel_ts ep_req ~at:now 1.0);
            ms.ms_span <-
              (if ms.ms_sampled then
                 Span.begin_span (Span.current ()) ~parent:Span.none ~at:now
                   ~category:"request" ~label:ms.ms_req.endpoint ()
               else Span.none);
            match ms.ms_traj with
            | Some tj ->
                ms.ms_attempts_left <- tj.tj_attempts;
                start_attempt ms ~now
            | None ->
                (* Rejected at admission: fails immediately, off the
                   execution path. *)
                Span.set_attr (Span.current ()) ms.ms_span "ok" "false";
                Span.end_span (Span.current ()) ms.ms_span ~at:now;
                decr inflight_now;
                incr failed;
                tel_finish ~now ~endpoint:ms.ms_req.endpoint ~latency:Units.zero
                  ~ok:false ~released:false;
                last_finish := Units.max !last_finish now;
                acc :=
                  f !acc
                    {
                      r_endpoint = ms.ms_req.endpoint;
                      r_arrival = ms.ms_req.arrival;
                      r_finish = now;
                      r_latency = Units.zero;
                      r_warm = false;
                      r_ok = false;
                      r_attempts = 0;
                      r_retries = 0;
                    })
        | Advance ms -> step ms ~now
    in
    pump ();
    let rec drive () =
      match Eventq.pop q with
      | None -> ()
      | Some (now, ev) ->
          Hotspot.with_section "serve.merge" (fun () -> handle_event now ev);
          pump ();
          drive ()
    in
    drive ();
    flush_doomed t;
    (* Close out the final partial SLO buckets so alerts pending at
       end-of-run fire at a deterministic instant. *)
    (match t.tel with
    | None -> ()
    | Some tel -> List.iter (fun m -> Slo.finish m ~at:!last_finish) tel.tel_slos);
    let t_start = match !first_arrival with Some a -> a | None -> Units.zero in
    let duration = Units.sub !last_finish t_start in
    let secs = Units.to_sec duration in
    ( !acc,
      {
        sm_completed = !completed;
        sm_failed = !failed;
        sm_duration = duration;
        sm_throughput_rps =
          (if secs <= 0.0 then 0.0 else float_of_int !completed /. secs);
        sm_mean_latency =
          (if Stats.is_empty lat then Units.zero else Stats.mean_time lat);
        sm_p50_latency =
          (if Stats.is_empty lat then Units.zero else Stats.percentile_time lat 50.0);
        sm_p99_latency =
          (if Stats.is_empty lat then Units.zero else Stats.percentile_time lat 99.0);
        sm_max_inflight = !max_inflight;
        sm_warm_starts = t.warm_hit_count;
        sm_cold_starts = t.cold_boot_count;
        sm_adm_hits = t.adm.cache_hits;
        sm_adm_scans = t.adm.cache_scans;
        sm_evictions = t.evicted;
        sm_templates_live = pool_size t;
        sm_machine_peak_rss = t.machine_peak;
        sm_latency_sketched = t.sketch_lat;
      } )

  let report_of_summary responses (s : summary) =
    {
      responses;
      completed = s.sm_completed;
      failed = s.sm_failed;
      duration = s.sm_duration;
      throughput_rps = s.sm_throughput_rps;
      mean_latency = s.sm_mean_latency;
      p50_latency = s.sm_p50_latency;
      p99_latency = s.sm_p99_latency;
      max_inflight = s.sm_max_inflight;
      warm_starts = s.sm_warm_starts;
      cold_starts = s.sm_cold_starts;
      adm_hits = s.sm_adm_hits;
      adm_scans = s.sm_adm_scans;
      evictions = s.sm_evictions;
      templates_live = s.sm_templates_live;
      machine_peak_rss = s.sm_machine_peak_rss;
    }

  (* Materialising wrapper: fold into a (reversed) list.  Responses are
     accumulated exactly as the historical implementation did, so the
     report is byte-identical. *)
  let serve_stream t ?window next =
    let rev, s = serve_fold t ?window next ~init:[] ~f:(fun acc r -> r :: acc) in
    report_of_summary (List.rev rev) s

  (* List entry point: sort by arrival (stable, so same-instant
     requests keep list order) and stream.  Identical to the streaming
     path in every observable way. *)
  let serve t requests =
    let sorted =
      List.stable_sort (fun a b -> Units.compare a.arrival b.arrival) requests
    in
    let rem = ref sorted in
    serve_stream t (fun () ->
        match !rem with
        | [] -> None
        | r :: tl ->
            rem := tl;
            Some r)

  let shutdown t =
    Hashtbl.iter
      (fun _ tpl ->
        List.iter Wfd.destroy tpl.tpl_free;
        tpl.tpl_free <- [];
        tpl.tpl_free_n <- 0;
        tpl.tpl_doomed <- true;
        Wfd.destroy tpl.tpl_wfd)
      t.templates;
    Hashtbl.reset t.templates;
    t.lru_head <- None;
    t.lru_tail <- None;
    t.pool_bytes <- 0;
    flush_doomed t
end
