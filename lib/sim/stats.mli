(** Latency / value sample collection with percentile queries. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_time : t -> Units.time -> unit
(** Records the duration in nanoseconds. *)

val count : t -> int
val is_empty : t -> bool
val mean : t -> float
val min : t -> float
val max : t -> float
val sum : t -> float
val stddev : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100], linear interpolation between
    closest ranks.  Raises [Invalid_argument] on an empty collection.
    Queries read a cached sorted view that is invalidated by {!add} and
    {!clear}, so a batch of percentile queries sorts once and insertion
    order (as seen by {!to_list}) is never disturbed. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

val percentile_time : t -> float -> Units.time
(** Percentile of durations recorded with {!add_time}. *)

val mean_time : t -> Units.time
val clear : t -> unit

val to_list : t -> float list
(** Samples in insertion order. *)

(** Named monotonic event counters with a process-global registry.
    Hot paths hold the counter and bump it with a single store; readers
    query by name.  [reset_counters] zeroes every registered counter
    (tests and repeated bench runs). *)
module Counter : sig
  type t

  val make : string -> t
  (** Returns the registered counter for [name], creating it at zero on
      first use.  Repeated calls with the same name share one counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
  val reset : t -> unit
end

val counter_value : string -> int
(** Current value of the named counter; 0 if never registered. *)

val counters : unit -> (string * int) list
(** All registered counters, sorted by name. *)

val reset_counters : unit -> unit
