test/test_isa.ml: Alcotest Bytes Elf Format Image Inst Int32 Isa List Printf QCheck QCheck_alcotest Rewriter Scanner
