(** ASCII table rendering for the benchmark harness.

    Every figure/table of the paper is rendered as a labelled grid so the
    bench output can be compared side-by-side with the publication. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells. *)

val add_separator : t -> unit

val render : t -> string

val print : t -> unit
(** Render to stdout followed by a blank line. *)
