examples/parallel_sorting_demo.mli:
