lib/sim/clock.mli: Units
