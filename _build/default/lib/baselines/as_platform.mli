(** AlloyStack as a {!Platform.t}: the shared workload kernels run as
    real WFD function threads, with the {!Fctx.t} transport wired to
    as-std / AsBuffer. *)

type fs_backend = Fat_image | Ram_fs

type options = {
  language : Alloystack_core.Workflow.language;
  features : Alloystack_core.Wfd.features;
  fs : fs_backend;
  wasm_runtime : Wasm.Runtime.profile option;
      (** Runtime hosting C/Python functions; default Wasmtime. *)
}

val default_options : options

val make : ?options:options -> unit -> Platform.t
(** "AlloyStack" with the paper's defaults. *)

val alloystack : Platform.t  (** Rust, on-demand + ref-passing, FAT. *)

val alloystack_ifi : Platform.t  (** "AS-IFI": inter-function isolation. *)

val alloystack_c : Platform.t  (** "AS-C": C via Wasmtime. *)

val alloystack_py : Platform.t  (** "AS-Py": Python via Wasmtime+CPython. *)

val alloystack_ramfs : Platform.t  (** Fig. 16: ramfs-backed disk. *)

val ablation :
  on_demand:bool -> ref_passing:bool -> Platform.t
(** The Fig. 14 feature grid ("base", "+on-demand", "+ref-passing",
    "+both"). *)

val to_workflow :
  language:Alloystack_core.Workflow.language ->
  modules:string list ->
  (string * int * 'a) list ->
  Alloystack_core.Workflow.t
(** Build the linear stage DAG from an app's stage list (consecutive
    stages fully connected).  Exposed for tests and the gateway CLI. *)
