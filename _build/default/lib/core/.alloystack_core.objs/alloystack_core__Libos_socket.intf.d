lib/core/libos_socket.mli: Errno Hostos Netsim Sim Wfd
