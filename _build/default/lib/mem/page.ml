let size = 4096
let shift = 12

type perm = { read : bool; write : bool; exec : bool }

let rw = { read = true; write = true; exec = false }
let ro = { read = true; write = false; exec = false }
let rx = { read = true; write = false; exec = true }
let rwx = { read = true; write = true; exec = true }

let pp_perm fmt p =
  Format.fprintf fmt "%c%c%c"
    (if p.read then 'r' else '-')
    (if p.write then 'w' else '-')
    (if p.exec then 'x' else '-')

type t = {
  data : Bytes.t;
  mutable perm : perm;
  mutable pkey : Prot.key;
  mutable populated : bool;
}

let create ?(perm = rw) ?(pkey = Prot.default_key) () =
  { data = Bytes.make size '\000'; perm; pkey; populated = false }

let vpn_of_addr addr = addr lsr shift
let offset_of_addr addr = addr land (size - 1)
let addr_of_vpn vpn = vpn lsl shift

let align_up addr = (addr + size - 1) land lnot (size - 1)
let align_down addr = addr land lnot (size - 1)

let count_for len = if len <= 0 then 0 else (len + size - 1) / size
