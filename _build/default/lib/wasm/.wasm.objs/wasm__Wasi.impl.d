lib/wasm/wasi.ml: Aot Array Bytes Int64 Interp List String
