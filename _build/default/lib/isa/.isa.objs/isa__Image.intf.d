lib/isa/image.mli: Format Inst
