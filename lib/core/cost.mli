(** Calibrated cost model for AlloyStack-specific operations.

    Every constant is documented with the paper measurement it
    reproduces.  Substrate-level costs (syscalls, TCP, filesystems,
    sandbox boots) live in their own libraries; this module covers the
    WFD control plane and the single-address-space data plane. *)

(** {1 MPK / trampoline} *)

val wrpkru : Sim.Units.time
(** One PKRU register write (~30ns on Ice Lake-class cores). *)

val trampoline_switch : Sim.Units.time
(** One direction of the as-std trampoline: save context, switch stack,
    [wrpkru], jump (§7.1, Fig. 9). *)

val ifi_transfer_overhead : int -> Sim.Units.time
(** Extra per-side cost with inter-function isolation enabled for a
    transfer of [n] bytes: the key grant/drop brackets around buffer
    access plus a small per-byte term.  Calibrated so AS-IFI is +33.7%
    at 4 KB and +0.8% at 16 MB (Fig. 11). *)

(** {1 WFD cold start (Fig. 10)} *)

val visor_dispatch : Sim.Units.time
(** Watchdog event handling + orchestrator dispatch: ~78 µs (§4). *)

val wfd_create : Sim.Units.time
(** Address-space regions, pkey allocation, trampoline pages, base
    as-std binding.  Together with {!visor_dispatch}, thread clone and
    entry-table init this yields the paper's 1.3 ms cold start. *)

val function_thread_start : Sim.Units.time
(** Per-function-thread setup beyond the clone syscall: stack mapping,
    TLS, entry-table wiring. *)

val entry_table_init : Sim.Units.time

val image_scan_per_kb : Sim.Units.time
(** Blacklist scanning rate (performed before workflow start, not on
    the critical path; reported separately). *)

(** {1 Warm serving (template WFD pool)} *)

val wfd_clone : Sim.Units.time
(** CoW-cloning a warm template WFD per request instead of building a
    fresh address space: substitutes for {!wfd_create} +
    {!entry_table_init}. *)

val warm_module_attach : Sim.Units.time
(** Re-attaching one already-linked as-libos module to a cloned WFD
    (per-WFD state re-init only; the namespace is shared CoW). *)

val warm_runtime_resume : Sim.Units.time
(** Resuming the template's booted WASM engine / CPython state in a
    clone instead of paying the full runtime startup. *)

val admission_cache_hit : Sim.Units.time
(** Content-hash lookup that replaces a blacklist re-scan for an
    already-admitted image. *)

(** {1 as-libos module loading (§4, Fig. 10 "AS-load-all")} *)

val dlmopen_namespace : Sim.Units.time
(** Creating the link namespace for a module (find_hostcall path). *)

val module_load : string -> Sim.Units.time
(** Per-module load + init cost.  The sum over all modules plus
    {!load_all_binding} equals the paper's 88.1 ms load-all delta.
    Raises [Invalid_argument] for an unknown module name. *)

val load_all_binding : Sim.Units.time
(** Entry-table binding for the full module set when on-demand loading
    is disabled. *)

(** {1 Reference-passing data plane (Fig. 11)} *)

val smart_pointer_overhead : Sim.Units.time
(** AsBuffer smart-pointer construction: ~4.4 µs (§8.3). *)

val buffer_copy_bw_rust : float
(** bytes/s for as-std (Rust) buffer write or read traversal.  16 MB
    write+read at this rate plus the smart pointer = 951 µs. *)

val buffer_copy_bw_c : float
(** WASM -O3 C path: 697 µs per 16 MB round trip. *)

val buffer_copy_bw_python : float
(** CPython string path: 9631 µs per 16 MB round trip. *)

val slot_map_op : Sim.Units.time
(** mm-module slot bookkeeping per alloc/acquire. *)

(** {1 File-based intermediate transfer (Fig. 14 "base")} *)

val file_fallback_sync : Sim.Units.time
(** SSD write-back per staged intermediate file (producer side). *)

val file_fallback_read_penalty : Sim.Units.time
(** First access of the staged file (consumer side). *)

(** {1 Generic memory} *)

val memcpy_bw : float
(** Plain single-thread memcpy (file staging, IPC copies). *)

val page_fault_service : Sim.Units.time
(** Userfaultfd-style page population (mmap_file_backend, Faasm). *)
