(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulation draws from an explicit
    [Rng.t] so that runs are reproducible given a seed, and independent
    subsystems can be given split streams that do not interfere. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. *)

val reseed : t -> int -> unit
(** [reseed t seed] resets [t] in place to the exact state of
    [create seed] — what lets pooled structures reuse a generator cell
    instead of allocating a fresh one per request. *)

val copy : t -> t
(** An independent generator continuing from [t]'s current state. *)

val golden_gamma : int64
(** The splitmix64 stream increment; exposed so seed-derivation schemes
    (per-task fault plans, shard streams) can mix indices the same way
    the generator itself does. *)

val mix : int64 -> int64
(** The splitmix64 finalizer: a bijective avalanche over 64 bits.
    Deterministic seed derivation for split streams. *)

val split : t -> t
(** [split t] derives an independent stream, advancing [t]. *)

val next_int64 : t -> int64
val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from Exp(1/mean); used for Poisson
    arrival processes. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal draw. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] draws a uniformly random element.  [arr] must be
    non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes. *)
