lib/net/link.ml: Sim Units
