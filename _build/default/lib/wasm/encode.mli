(** Binary encoding of modules — the on-disk "WASM image" artifact that
    platforms ship, store in registries and hand to the runtime.

    The format follows WebAssembly's layout in miniature: an 8-byte
    header (magic "\000asm" + version), then ordered sections (imports,
    functions, memory, globals, data, exports), each length-prefixed.
    Integers use LEB128; the decoder validates structure and rejects
    malformed input with a positioned error. *)

val magic : string
(** "\000asm". *)

val version : int

val encode : Wmodule.t -> bytes

exception Malformed of { offset : int; message : string }

val decode : bytes -> Wmodule.t
(** Raises {!Malformed}. *)

val decode_result : bytes -> (Wmodule.t, string) result

(** {1 LEB128 helpers (exposed for tests)} *)

val uleb_encode : Buffer.t -> int -> unit
val sleb_encode : Buffer.t -> int64 -> unit
