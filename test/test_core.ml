(* Tests for core leaf modules: JSON parsing, FaasData, workflow DAGs,
   cost-model invariants, the extension map. *)

open Alloystack_core

(* --- Jsonlite --- *)

let test_json_scalars () =
  Alcotest.(check bool) "null" true (Jsonlite.parse "null" = Jsonlite.Null);
  Alcotest.(check bool) "true" true (Jsonlite.parse "true" = Jsonlite.Bool true);
  Alcotest.(check int) "int" (-42) (Jsonlite.get_int (Jsonlite.parse "-42"));
  Alcotest.(check string) "string" "a\nb" (Jsonlite.get_string (Jsonlite.parse "\"a\\nb\""));
  match Jsonlite.parse "3.5" with
  | Jsonlite.Float f -> Alcotest.(check (float 1e-9)) "float" 3.5 f
  | _ -> Alcotest.fail "expected float"

let test_json_structures () =
  let j = Jsonlite.parse {| { "a": [1, 2, 3], "b": { "c": "x" }, "d": false } |} in
  Alcotest.(check int) "array elem" 2
    (Jsonlite.get_int (List.nth (Jsonlite.get_list (Jsonlite.member "a" j)) 1));
  Alcotest.(check string) "nested" "x"
    (Jsonlite.get_string (Jsonlite.member "c" (Jsonlite.member "b" j)));
  Alcotest.(check bool) "missing is Null" true (Jsonlite.member "zz" j = Jsonlite.Null);
  Alcotest.(check string) "default" "d" (Jsonlite.member_string ~default:"d" "zz" j)

let test_json_errors () =
  List.iter
    (fun s ->
      match Jsonlite.parse_result s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" s)
      | Error _ -> ())
    [ "{"; "[1,"; "\"unterminated"; "{\"a\" 1}"; "nulll x"; "{} trailing"; "tru" ]

let test_json_float_format () =
  (* Plain fixed point, never %g exponent notation, shortest form that
     round-trips, and floats keep a decimal point through a reparse. *)
  Alcotest.(check string) "large float plain decimal" "1927760.0"
    (Jsonlite.to_string (Jsonlite.Float 1.92776e+06));
  Alcotest.(check string) "short decimal" "14745.6"
    (Jsonlite.to_string (Jsonlite.Float 14745.6));
  Alcotest.(check string) "integral keeps point" "300.0"
    (Jsonlite.to_string (Jsonlite.Float 300.0));
  Alcotest.(check string) "negative" "-0.25"
    (Jsonlite.to_string (Jsonlite.Float (-0.25)));
  Alcotest.(check string) "non-finite is null" "null"
    (Jsonlite.to_string (Jsonlite.Float Float.nan));
  match Jsonlite.parse "1927760.0" with
  | Jsonlite.Float f -> Alcotest.(check (float 0.0)) "reparses as float" 1.92776e+06 f
  | _ -> Alcotest.fail "expected float back"

let rec json_printable = function
  (* Finite floats print as shortest round-tripping fixed point; only
     non-finite values (printed as null) are excluded. *)
  | Jsonlite.Float f -> Float.is_finite f
  | Jsonlite.List items -> List.for_all json_printable items
  | Jsonlite.Obj fields -> List.for_all (fun (_, v) -> json_printable v) fields
  | Jsonlite.Null | Jsonlite.Bool _ | Jsonlite.Int _ | Jsonlite.String _ -> true

let json_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                return Jsonlite.Null;
                map (fun b -> Jsonlite.Bool b) bool;
                map (fun i -> Jsonlite.Int i) (int_range (-1000) 1000);
                map (fun f -> Jsonlite.Float f) float;
                map (fun s -> Jsonlite.String s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
              ]
          else
            oneof
              [
                map (fun l -> Jsonlite.List l) (list_size (int_range 0 4) (self (n / 2)));
                map
                  (fun fields -> Jsonlite.Obj fields)
                  (list_size (int_range 0 4)
                     (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)) (self (n / 2))));
              ])
        (min n 4))

let json_roundtrip_property =
  QCheck.Test.make ~name:"jsonlite: print/parse roundtrip" ~count:300
    (QCheck.make json_gen) (fun j ->
      QCheck.assume (json_printable j);
      match Jsonlite.parse_result (Jsonlite.to_string j) with
      | Ok j' -> j = j'
      | Error _ -> false)

(* --- Fndata --- *)

let sample_record =
  Fndata.Record
    [ ("name", Fndata.Str "Euro"); ("year", Fndata.Int 2025L);
      ("tags", Fndata.List [ Fndata.Str "a"; Fndata.Str "b" ]) ]

let test_fndata_roundtrip () =
  List.iter
    (fun v ->
      let decoded = Fndata.decode (Fndata.encode v) in
      if not (Fndata.equal v decoded) then
        Alcotest.fail (Format.asprintf "roundtrip failed for %a" Fndata.pp v))
    [
      Fndata.Unit;
      Fndata.Int (-7L);
      Fndata.Str "";
      Fndata.Str "hello";
      Fndata.Raw (Bytes.of_string "\000\255raw");
      Fndata.Pair (Fndata.Int 1L, Fndata.Str "x");
      Fndata.List [];
      Fndata.List [ Fndata.Int 1L; Fndata.Int 2L ];
      sample_record;
    ]

let test_fndata_fingerprint_shape_only () =
  let a = Fndata.Record [ ("name", Fndata.Str "A"); ("year", Fndata.Int 1L) ] in
  let b = Fndata.Record [ ("name", Fndata.Str "B"); ("year", Fndata.Int 2L) ] in
  Alcotest.(check int64) "same shape, same fingerprint" (Fndata.fingerprint a)
    (Fndata.fingerprint b);
  let c = Fndata.Record [ ("title", Fndata.Str "A"); ("year", Fndata.Int 1L) ] in
  Alcotest.(check bool) "field name changes fingerprint" true
    (Fndata.fingerprint a <> Fndata.fingerprint c);
  Alcotest.(check bool) "different constructors differ" true
    (Fndata.fingerprint (Fndata.Int 0L) <> Fndata.fingerprint (Fndata.Str ""))

let test_fndata_decode_errors () =
  List.iter
    (fun b ->
      match Fndata.decode b with
      | _ -> Alcotest.fail "malformed must not decode"
      | exception Invalid_argument _ -> ())
    [
      Bytes.of_string "\x09";  (* unknown tag *)
      Bytes.of_string "\x01\x01";  (* truncated int *)
      Bytes.of_string "\x02\xff\xff\xff\xff\xff\xff\xff\xff";  (* bad length *)
      Bytes.cat (Fndata.encode Fndata.Unit) (Bytes.of_string "junk");
    ]

let test_fndata_record_get () =
  Alcotest.(check bool) "get" true
    (Fndata.equal (Fndata.record_get sample_record "year") (Fndata.Int 2025L));
  (match Fndata.record_get sample_record "zz" with
  | _ -> Alcotest.fail "missing field"
  | exception Not_found -> ());
  match Fndata.record_get (Fndata.Int 1L) "x" with
  | _ -> Alcotest.fail "not a record"
  | exception Invalid_argument _ -> ()

let fndata_gen =
  let open QCheck.Gen in
  sized
    (fix (fun self n ->
         if n <= 0 then
           oneof
             [
               return Fndata.Unit;
               map (fun i -> Fndata.Int (Int64.of_int i)) int;
               map (fun s -> Fndata.Str s) (string_size (int_range 0 12));
               map (fun s -> Fndata.Raw (Bytes.of_string s)) (string_size (int_range 0 12));
             ]
         else
           oneof
             [
               map2 (fun a b -> Fndata.Pair (a, b)) (self (n / 2)) (self (n / 2));
               map (fun l -> Fndata.List l) (list_size (int_range 0 4) (self (n / 2)));
               map
                 (fun fields -> Fndata.Record fields)
                 (list_size (int_range 0 4)
                    (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)) (self (n / 2))));
             ]))

let fndata_roundtrip_property =
  QCheck.Test.make ~name:"fndata: encode/decode roundtrip" ~count:300
    (QCheck.make fndata_gen) (fun v -> Fndata.equal v (Fndata.decode (Fndata.encode v)))

(* --- Workflow --- *)

let node id modules =
  { Workflow.node_id = id; language = Workflow.Rust; instances = 1; required_modules = modules }

let test_workflow_validation () =
  (match Workflow.create ~name:"w" ~nodes:[ node "a" []; node "a" [] ] ~edges:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate ids must fail");
  (match Workflow.create ~name:"w" ~nodes:[ node "a" [] ] ~edges:[ ("a", "zz") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling edge must fail");
  (match
     Workflow.create ~name:"w"
       ~nodes:[ node "a" []; node "b" [] ]
       ~edges:[ ("a", "b"); ("b", "a") ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cycle must fail");
  match
    Workflow.create ~name:"w"
      ~nodes:[ { (node "a" []) with Workflow.instances = 0 } ]
      ~edges:[]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero instances must fail"

let test_workflow_stages_diamond () =
  let wf =
    Workflow.create_exn ~name:"diamond"
      ~nodes:[ node "a" []; node "b" []; node "c" []; node "d" [] ]
      ~edges:[ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ]
  in
  let stages = List.map (List.map (fun n -> n.Workflow.node_id)) (Workflow.stages wf) in
  Alcotest.(check (list (list string))) "layers" [ [ "a" ]; [ "b"; "c" ]; [ "d" ] ] stages;
  Alcotest.(check (list string)) "preds of d" [ "b"; "c" ] (Workflow.predecessors wf "d");
  Alcotest.(check (list string)) "succs of a" [ "b"; "c" ] (Workflow.successors wf "a")

let test_workflow_stages_uneven_depth () =
  (* a -> c and a -> b -> c style: longest-path layering puts c after b. *)
  let wf =
    Workflow.create_exn ~name:"w"
      ~nodes:[ node "a" []; node "b" []; node "c" [] ]
      ~edges:[ ("a", "c"); ("a", "b"); ("b", "c") ]
  in
  let stages = List.map (List.map (fun n -> n.Workflow.node_id)) (Workflow.stages wf) in
  Alcotest.(check (list (list string))) "layers" [ [ "a" ]; [ "b" ]; [ "c" ] ] stages

let test_workflow_chain_builder () =
  let wf = Workflow.chain ~name:"c" 5 in
  Alcotest.(check int) "five nodes" 5 (List.length wf.Workflow.nodes);
  Alcotest.(check int) "four edges" 4 (List.length wf.Workflow.edges);
  Alcotest.(check int) "five stages" 5 (List.length (Workflow.stages wf))

let test_workflow_required_modules () =
  let wf =
    Workflow.create_exn ~name:"w"
      ~nodes:[ node "a" [ "mm"; "time" ]; node "b" [ "time"; "fatfs" ] ]
      ~edges:[ ("a", "b") ]
  in
  Alcotest.(check (list string)) "union dedup" [ "mm"; "time"; "fatfs" ]
    (Workflow.required_modules wf)

let test_workflow_json_roundtrip () =
  let wf =
    Workflow.create_exn ~name:"img"
      ~nodes:
        [
          { Workflow.node_id = "extract"; language = Workflow.C; instances = 2;
            required_modules = [ "mm"; "fatfs" ] };
          node "store" [ "net" ];
        ]
      ~edges:[ ("extract", "store") ]
  in
  match Workflow.of_string (Jsonlite.to_string (Workflow.to_json wf)) with
  | Error e -> Alcotest.fail e
  | Ok wf' ->
      Alcotest.(check string) "name" wf.Workflow.wf_name wf'.Workflow.wf_name;
      Alcotest.(check int) "nodes" 2 (List.length wf'.Workflow.nodes);
      let extract = Workflow.node wf' "extract" in
      Alcotest.(check int) "instances" 2 extract.Workflow.instances;
      Alcotest.(check bool) "language" true (extract.Workflow.language = Workflow.C)

let test_workflow_json_errors () =
  (match Workflow.of_string "{ not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad json must fail");
  match
    Workflow.of_string
      {| { "workflow": "w", "functions": [ { "name": "a", "language": "cobol" } ] } |}
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown language must fail"

(* Random DAGs: stages must place every node after all its
   predecessors, exactly once. *)
let dag_gen =
  QCheck.Gen.(
    int_range 1 10 >>= fun n ->
    (* Edges only from lower to higher indices: acyclic by construction. *)
    let all_pairs =
      List.concat (List.init n (fun a -> List.init n (fun b -> (a, b))))
      |> List.filter (fun (a, b) -> a < b)
    in
    let pick_edge (a, b) =
      map (fun keep -> if keep then Some (a, b) else None) bool
    in
    flatten_l (List.map pick_edge all_pairs) >>= fun edges ->
    return (n, List.filter_map Fun.id edges))

let workflow_stages_property =
  QCheck.Test.make ~name:"workflow: stages respect dependencies" ~count:200
    (QCheck.make dag_gen)
    (fun (n, edges) ->
      let name i = Printf.sprintf "n%d" i in
      let nodes = List.init n (fun i -> node (name i) []) in
      let edges = List.map (fun (a, b) -> (name a, name b)) edges in
      match Workflow.create ~name:"p" ~nodes ~edges with
      | Error _ -> false
      | Ok wf ->
          let stages = Workflow.stages wf in
          let layer_of = Hashtbl.create 16 in
          List.iteri
            (fun layer stage ->
              List.iter (fun (nd : Workflow.node) -> Hashtbl.replace layer_of nd.Workflow.node_id layer) stage)
            stages;
          let count = List.fold_left (fun acc s -> acc + List.length s) 0 stages in
          count = n
          && List.for_all
               (fun (a, b) -> Hashtbl.find layer_of a < Hashtbl.find layer_of b)
               edges)

let test_workflow_dot () =
  let wf =
    Workflow.create_exn ~name:"viz"
      ~nodes:[ node "a" []; { (node "b" []) with Workflow.instances = 3 } ]
      ~edges:[ ("a", "b") ]
  in
  let dot = Workflow.to_dot wf in
  let contains sub =
    let n = String.length dot and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dot i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph header" true (contains "digraph \"viz\"");
  Alcotest.(check bool) "edge rendered" true (contains "\"a\" -> \"b\";");
  Alcotest.(check bool) "instances in label" true (contains "x3")

(* --- Cost model --- *)

let test_cost_load_all_calibration () =
  (* The Fig. 10 AS-load-all delta is 88.1ms; the static sum of module
     loading must land close (module constructors add the rest). *)
  let ms = Sim.Units.to_ms Libos.load_all_cost in
  Alcotest.(check bool) "static load-all near 86-89ms" true (ms > 84.0 && ms < 90.0)

let test_cost_transfer_calibration () =
  (* 16MB written + read at the Rust buffer bandwidth + smart pointer
     should be ~951us (Fig. 11). *)
  let bytes = 16 * 1024 * 1024 in
  let t =
    Sim.Units.add Cost.smart_pointer_overhead
      (Sim.Units.time_for_bytes ~bytes_per_sec:Cost.buffer_copy_bw_rust (2 * bytes))
  in
  let us = Sim.Units.to_us t in
  Alcotest.(check bool) "rust 16MB ~951us" true (us > 930.0 && us < 975.0);
  let tc = Sim.Units.time_for_bytes ~bytes_per_sec:Cost.buffer_copy_bw_c (2 * bytes) in
  Alcotest.(check bool) "c 16MB ~697us" true
    (Sim.Units.to_us tc > 680.0 && Sim.Units.to_us tc < 715.0)

let test_cost_unknown_module () =
  match Cost.module_load "nope" with
  | _ -> Alcotest.fail "unknown module must raise"
  | exception Invalid_argument _ -> ()

(* --- Ext map --- *)

let test_ext_map () =
  let t = Ext.create () in
  let ka : int Ext.key = Ext.new_key "a" in
  let kb : string Ext.key = Ext.new_key "b" in
  Alcotest.(check (option int)) "empty" None (Ext.get t ka);
  Ext.set t ka 7;
  Ext.set t kb "x";
  Alcotest.(check int) "typed get" 7 (Ext.get_exn t ka);
  Alcotest.(check string) "other key" "x" (Ext.get_exn t kb);
  Ext.set t ka 9;
  Alcotest.(check int) "overwrite" 9 (Ext.get_exn t ka);
  Ext.remove t ka;
  Alcotest.(check bool) "removed" false (Ext.mem t ka);
  match Ext.get_exn t ka with
  | _ -> Alcotest.fail "get_exn on empty must raise"
  | exception Invalid_argument _ -> ()

let test_errno_strings () =
  Alcotest.(check string) "enoent" "ENOENT" (Errno.to_string Errno.Enoent);
  match Errno.fail Errno.Einval "bad %d" 7 with
  | _ -> Alcotest.fail "must raise"
  | exception Errno.Error (Errno.Einval, msg) -> Alcotest.(check string) "msg" "bad 7" msg

let suite =
  [
    Alcotest.test_case "json scalars" `Quick test_json_scalars;
    Alcotest.test_case "json structures" `Quick test_json_structures;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "json float format" `Quick test_json_float_format;
    QCheck_alcotest.to_alcotest json_roundtrip_property;
    Alcotest.test_case "fndata roundtrip" `Quick test_fndata_roundtrip;
    Alcotest.test_case "fndata fingerprint shape" `Quick test_fndata_fingerprint_shape_only;
    Alcotest.test_case "fndata decode errors" `Quick test_fndata_decode_errors;
    Alcotest.test_case "fndata record_get" `Quick test_fndata_record_get;
    QCheck_alcotest.to_alcotest fndata_roundtrip_property;
    Alcotest.test_case "workflow validation" `Quick test_workflow_validation;
    Alcotest.test_case "workflow diamond stages" `Quick test_workflow_stages_diamond;
    Alcotest.test_case "workflow uneven depth" `Quick test_workflow_stages_uneven_depth;
    Alcotest.test_case "workflow chain builder" `Quick test_workflow_chain_builder;
    Alcotest.test_case "workflow required modules" `Quick test_workflow_required_modules;
    Alcotest.test_case "workflow json roundtrip" `Quick test_workflow_json_roundtrip;
    Alcotest.test_case "workflow json errors" `Quick test_workflow_json_errors;
    QCheck_alcotest.to_alcotest workflow_stages_property;
    Alcotest.test_case "workflow dot output" `Quick test_workflow_dot;
    Alcotest.test_case "cost: load-all calibration" `Quick test_cost_load_all_calibration;
    Alcotest.test_case "cost: transfer calibration" `Quick test_cost_transfer_calibration;
    Alcotest.test_case "cost: unknown module" `Quick test_cost_unknown_module;
    Alcotest.test_case "ext map" `Quick test_ext_map;
    Alcotest.test_case "errno" `Quick test_errno_strings;
  ]
