lib/core/libos_socket.ml: Bytes Clock Errno Ext Hashtbl Hostos Netsim Sim Units Wfd
