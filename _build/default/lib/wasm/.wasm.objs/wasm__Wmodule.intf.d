lib/wasm/wmodule.mli: Instr
