lib/core/visor.ml: Asstd Clock Cost Fsim Hashtbl Hostos Isa Libos Libos_stdio List Printf Sim Stdlib Trace Units Wasm Wfd Workflow
