lib/baselines/loadgen.ml: Array List Rng Sim Stats Stdlib Units
