exception Trap of string

type instance = {
  mutable funcs : (int64 array -> int64) array;
      (** Compiled local functions by slot. *)
  imports : string array;
  n_imports : int;
  mutable import_fns : host_fn array;
      (** Host bindings pre-resolved at instantiate time. *)
  mutable memory : Bytes.t;
  globals : int64 array;
  hosts : (string, host_fn) Hashtbl.t;
  mutable executed : int;
  mutable fuel : int;
  exports : (string * int) list;
}

and host_fn = instance -> int64 array -> int64

type control = Fall | Branch of int | Ret

let trap fmt = Format.kasprintf (fun s -> raise (Trap s)) fmt

(* Growable operand stack: pushes and pops are array stores, no cons
   cell per value.  [top] is the next free slot. *)
type vstack = { mutable buf : int64 array; mutable top : int }

(* A compiled body: given the instance and the frame's locals/stack,
   run to a control outcome. *)
type frame = { locals : int64 array; stack : vstack }

type code = instance -> frame -> control

type compiled = {
  m : Wmodule.t;
  bodies : (Wmodule.func * code) list;
  instr_count : int;
}

let pop fr =
  let st = fr.stack in
  if st.top = 0 then trap "value stack underflow";
  st.top <- st.top - 1;
  Array.unsafe_get st.buf st.top

let push fr v =
  let st = fr.stack in
  let n = Array.length st.buf in
  if st.top = n then begin
    let bigger = Array.make (2 * n) 0L in
    Array.blit st.buf 0 bigger 0 n;
    st.buf <- bigger
  end;
  Array.unsafe_set st.buf st.top v;
  st.top <- st.top + 1

let tick inst =
  inst.executed <- inst.executed + 1;
  inst.fuel <- inst.fuel - 1;
  if inst.fuel < 0 then trap "out of fuel"

let check_mem inst addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length inst.memory then
    trap "memory access out of bounds: %d (+%d) of %d" addr len (Bytes.length inst.memory)

let binop_fn op =
  let open Int64 in
  let bool v = if v then 1L else 0L in
  match op with
  | Instr.Add -> add
  | Instr.Sub -> sub
  | Instr.Mul -> mul
  | Instr.Div_s -> fun a b -> if b = 0L then trap "integer divide by zero" else div a b
  | Instr.Rem_s -> fun a b -> if b = 0L then trap "integer divide by zero" else rem a b
  | Instr.And -> logand
  | Instr.Or -> logor
  | Instr.Xor -> logxor
  | Instr.Shl -> fun a b -> shift_left a (to_int (logand b 63L))
  | Instr.Shr_s -> fun a b -> shift_right a (to_int (logand b 63L))
  | Instr.Eq -> fun a b -> bool (equal a b)
  | Instr.Ne -> fun a b -> bool (not (equal a b))
  | Instr.Lt_s -> fun a b -> bool (compare a b < 0)
  | Instr.Gt_s -> fun a b -> bool (compare a b > 0)
  | Instr.Le_s -> fun a b -> bool (compare a b <= 0)
  | Instr.Ge_s -> fun a b -> bool (compare a b >= 0)

let rec call_slot inst idx args =
  if idx < inst.n_imports then (Array.unsafe_get inst.import_fns idx) inst args
  else inst.funcs.(idx - inst.n_imports) args

(* Compile an instruction sequence into one closure over an array of
   compiled instructions (no list walk at run time). *)
and compile_seq m callee_arity seq : code =
  let compiled = Array.of_list (List.map (compile_instr m callee_arity) seq) in
  let n = Array.length compiled in
  fun inst fr ->
    let rec run i =
      if i >= n then Fall
      else begin
        match (Array.unsafe_get compiled i) inst fr with
        | Fall -> run (i + 1)
        | (Branch _ | Ret) as ctl -> ctl
      end
    in
    run 0

and compile_instr m callee_arity instr : code =
  match instr with
  | Instr.Nop ->
      fun inst _ ->
        tick inst;
        Fall
  | Instr.Unreachable ->
      fun inst _ ->
        tick inst;
        trap "unreachable executed"
  | Instr.Const v ->
      fun inst fr ->
        tick inst;
        push fr v;
        Fall
  | Instr.Binop op ->
      let f = binop_fn op in
      fun inst fr ->
        tick inst;
        let b = pop fr in
        let a = pop fr in
        push fr (f a b);
        Fall
  | Instr.Eqz ->
      fun inst fr ->
        tick inst;
        push fr (if Int64.equal (pop fr) 0L then 1L else 0L);
        Fall
  | Instr.Drop ->
      fun inst fr ->
        tick inst;
        ignore (pop fr);
        Fall
  | Instr.Select ->
      fun inst fr ->
        tick inst;
        let cond = pop fr in
        let b = pop fr in
        let a = pop fr in
        push fr (if Int64.equal cond 0L then b else a);
        Fall
  | Instr.Local_get i ->
      fun inst fr ->
        tick inst;
        push fr fr.locals.(i);
        Fall
  | Instr.Local_set i ->
      fun inst fr ->
        tick inst;
        fr.locals.(i) <- pop fr;
        Fall
  | Instr.Local_tee i ->
      fun inst fr ->
        tick inst;
        let st = fr.stack in
        if st.top = 0 then trap "value stack underflow";
        fr.locals.(i) <- Array.unsafe_get st.buf (st.top - 1);
        Fall
  | Instr.Global_get i ->
      fun inst fr ->
        tick inst;
        push fr inst.globals.(i);
        Fall
  | Instr.Global_set i ->
      fun inst fr ->
        tick inst;
        inst.globals.(i) <- pop fr;
        Fall
  | Instr.Load8 off ->
      fun inst fr ->
        tick inst;
        let addr = Int64.to_int (pop fr) + off in
        check_mem inst addr 1;
        push fr (Int64.of_int (Char.code (Bytes.get inst.memory addr)));
        Fall
  | Instr.Load64 off ->
      fun inst fr ->
        tick inst;
        let addr = Int64.to_int (pop fr) + off in
        check_mem inst addr 8;
        push fr (Bytes.get_int64_le inst.memory addr);
        Fall
  | Instr.Store8 off ->
      fun inst fr ->
        tick inst;
        let v = pop fr in
        let addr = Int64.to_int (pop fr) + off in
        check_mem inst addr 1;
        Bytes.set inst.memory addr (Char.chr (Int64.to_int (Int64.logand v 0xFFL)));
        Fall
  | Instr.Store64 off ->
      fun inst fr ->
        tick inst;
        let v = pop fr in
        let addr = Int64.to_int (pop fr) + off in
        check_mem inst addr 8;
        Bytes.set_int64_le inst.memory addr v;
        Fall
  | Instr.Memory_size ->
      fun inst fr ->
        tick inst;
        push fr (Int64.of_int (Bytes.length inst.memory / Wmodule.page_size));
        Fall
  | Instr.Memory_grow ->
      fun inst fr ->
        tick inst;
        let delta = Int64.to_int (pop fr) in
        let old_pages = Bytes.length inst.memory / Wmodule.page_size in
        if delta < 0 || old_pages + delta > 4096 then push fr (-1L)
        else begin
          let bigger = Bytes.make ((old_pages + delta) * Wmodule.page_size) '\000' in
          Bytes.blit inst.memory 0 bigger 0 (Bytes.length inst.memory);
          inst.memory <- bigger;
          push fr (Int64.of_int old_pages)
        end;
        Fall
  | Instr.Block body ->
      let compiled = compile_seq m callee_arity body in
      fun inst fr -> begin
        tick inst;
        match compiled inst fr with
        | Fall | Branch 0 -> Fall
        | Branch n -> Branch (n - 1)
        | Ret -> Ret
      end
  | Instr.Loop body ->
      let compiled = compile_seq m callee_arity body in
      fun inst fr ->
        tick inst;
        let rec iterate () =
          match compiled inst fr with
          | Branch 0 -> iterate ()
          | Fall -> Fall
          | Branch n -> Branch (n - 1)
          | Ret -> Ret
        in
        iterate ()
  | Instr.If (then_, else_) ->
      let cthen = compile_seq m callee_arity then_ in
      let celse = compile_seq m callee_arity else_ in
      fun inst fr -> begin
        tick inst;
        let body = if Int64.equal (pop fr) 0L then celse else cthen in
        match body inst fr with
        | Fall | Branch 0 -> Fall
        | Branch n -> Branch (n - 1)
        | Ret -> Ret
      end
  | Instr.Br n ->
      fun inst _ ->
        tick inst;
        Branch n
  | Instr.Br_if n ->
      fun inst fr ->
        tick inst;
        if Int64.equal (pop fr) 0L then Fall else Branch n
  | Instr.Return ->
      fun inst _ ->
        tick inst;
        Ret
  | Instr.Call idx ->
      let arity = callee_arity idx in
      fun inst fr ->
        tick inst;
        let args = Array.make arity 0L in
        for i = arity - 1 downto 0 do
          args.(i) <- pop fr
        done;
        push fr (call_slot inst idx args);
        Fall

let compile m =
  Validate.validate_exn m;
  let n_imports = List.length m.Wmodule.imports in
  (* Pre-resolve function arities into an array: compile-time closures
     never chase the module's function list again. *)
  let funcs = Array.of_list m.Wmodule.funcs in
  let callee_arity idx =
    if idx < n_imports then 3 (* host-call convention, see Interp *)
    else begin
      let slot = idx - n_imports in
      if slot >= 0 && slot < Array.length funcs then funcs.(slot).Wmodule.params else 0
    end
  in
  let bodies =
    List.map
      (fun (f : Wmodule.func) -> (f, compile_seq m callee_arity f.Wmodule.body))
      m.Wmodule.funcs
  in
  { m; bodies; instr_count = Wmodule.code_size m }

let compiled_instr_count c = c.instr_count

let to_image c =
  (* AOT lowering never emits blacklisted opcodes: every instruction
     becomes safe ALU/memory ops, and host access becomes calls into the
     embedder's entry points. *)
  let imports = Array.of_list c.m.Wmodule.imports in
  let lower (f : Wmodule.func) =
    let rec go = function
      | [] -> []
      | Instr.Call idx :: rest when Wmodule.is_import c.m idx ->
          Isa.Inst.Call imports.(idx) :: go rest
      | Instr.Call _ :: rest -> Isa.Inst.Call "local" :: go rest
      | Instr.Const v :: rest ->
          Isa.Inst.Mov_imm (Int64.to_int32 v) :: go rest
      | (Instr.Load8 _ | Instr.Load64 _) :: rest -> Isa.Inst.Load :: go rest
      | (Instr.Store8 _ | Instr.Store64 _) :: rest -> Isa.Inst.Store :: go rest
      | (Instr.Block b | Instr.Loop b) :: rest -> go b @ go rest
      | Instr.If (a, b) :: rest -> go a @ go b @ go rest
      | Instr.Return :: rest -> Isa.Inst.Ret :: go rest
      | (Instr.Br _ | Instr.Br_if _) :: rest -> Isa.Inst.Jmp 0 :: go rest
      | _ :: rest -> Isa.Inst.Add :: go rest
    in
    go f.Wmodule.body @ [ Isa.Inst.Ret ]
  in
  let insts = List.concat_map lower c.m.Wmodule.funcs in
  Isa.Image.create ~name:(c.m.Wmodule.name ^ ".aot") ~toolchain:Isa.Image.Wasm_aot insts

let instantiate ?(hosts = []) c =
  let table = Hashtbl.create 8 in
  List.iter (fun (name, fn) -> Hashtbl.replace table name fn) hosts;
  List.iter
    (fun name ->
      if not (Hashtbl.mem table name) then
        invalid_arg (Printf.sprintf "Wasm.Aot: missing host import %s" name))
    c.m.Wmodule.imports;
  let memory = Bytes.make (c.m.Wmodule.memory_pages * Wmodule.page_size) '\000' in
  List.iter
    (fun (off, data) -> Bytes.blit_string data 0 memory off (String.length data))
    c.m.Wmodule.data;
  let imports = Array.of_list c.m.Wmodule.imports in
  let inst =
    {
      funcs = [||];
      imports;
      n_imports = Array.length imports;
      import_fns = Array.map (fun name -> Hashtbl.find table name) imports;
      memory;
      globals = Array.of_list c.m.Wmodule.globals;
      hosts = table;
      executed = 0;
      fuel = max_int;
      exports = c.m.Wmodule.exports;
    }
  in
  let make_callable ((f : Wmodule.func), code) args =
    if Array.length args <> f.Wmodule.params then
      trap "%s expects %d args, got %d" f.Wmodule.fname f.Wmodule.params
        (Array.length args);
    let locals = Array.make (f.Wmodule.params + f.Wmodule.locals) 0L in
    Array.blit args 0 locals 0 (Array.length args);
    let fr = { locals; stack = { buf = Array.make 32 0L; top = 0 } } in
    let _ = code inst fr in
    let st = fr.stack in
    if st.top = 0 then 0L else st.buf.(st.top - 1)
  in
  inst.funcs <- Array.of_list (List.map (fun b -> make_callable b) c.bodies);
  inst

let call ?(fuel = 200_000_000) inst name args =
  match List.assoc_opt name inst.exports with
  | None -> invalid_arg (Printf.sprintf "Wasm.Aot: no export %s" name)
  | Some idx ->
      inst.fuel <- fuel;
      call_slot inst idx args

let executed inst = inst.executed

let read_memory inst addr len =
  check_mem inst addr len;
  Bytes.sub inst.memory addr len

let write_memory inst addr data =
  check_mem inst addr (Bytes.length data);
  Bytes.blit data 0 inst.memory addr (Bytes.length data)
