lib/sim/units.ml: Float Format Int64 Stdlib
