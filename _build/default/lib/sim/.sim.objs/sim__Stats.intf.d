lib/sim/stats.mli: Units
