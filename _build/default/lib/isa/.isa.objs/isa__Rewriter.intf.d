lib/isa/rewriter.mli: Image
