type language = Rust | C | Python

let pp_language fmt l =
  Format.pp_print_string fmt
    (match l with Rust -> "rust" | C -> "c" | Python -> "python")

let language_of_string = function
  | "rust" | "Rust" -> Ok Rust
  | "c" | "C" -> Ok C
  | "python" | "Python" | "py" -> Ok Python
  | other -> Error (Printf.sprintf "unknown language %S" other)

type node = {
  node_id : string;
  language : language;
  instances : int;
  required_modules : string list;
}

type t = { wf_name : string; nodes : node list; edges : (string * string) list }

let validate t =
  let ids = List.map (fun n -> n.node_id) t.nodes in
  let id_set = Hashtbl.create 16 in
  let dup =
    List.find_opt
      (fun id ->
        if Hashtbl.mem id_set id then true
        else begin
          Hashtbl.replace id_set id ();
          false
        end)
      ids
  in
  match dup with
  | Some id -> Error (Printf.sprintf "duplicate node id %S" id)
  | None -> begin
      let bad_edge =
        List.find_opt
          (fun (a, b) -> not (Hashtbl.mem id_set a && Hashtbl.mem id_set b))
          t.edges
      in
      match bad_edge with
      | Some (a, b) -> Error (Printf.sprintf "edge %s->%s references unknown node" a b)
      | None -> begin
          let bad_node = List.find_opt (fun n -> n.instances < 1) t.nodes in
          match bad_node with
          | Some n -> Error (Printf.sprintf "node %s has instances < 1" n.node_id)
          | None ->
              (* Cycle check via Kahn's algorithm. *)
              let indegree = Hashtbl.create 16 in
              List.iter (fun id -> Hashtbl.replace indegree id 0) ids;
              List.iter
                (fun (_, b) -> Hashtbl.replace indegree b (Hashtbl.find indegree b + 1))
                t.edges;
              let queue = Queue.create () in
              List.iter (fun id -> if Hashtbl.find indegree id = 0 then Queue.add id queue) ids;
              let seen = ref 0 in
              while not (Queue.is_empty queue) do
                let id = Queue.pop queue in
                incr seen;
                List.iter
                  (fun (a, b) ->
                    if String.equal a id then begin
                      let d = Hashtbl.find indegree b - 1 in
                      Hashtbl.replace indegree b d;
                      if d = 0 then Queue.add b queue
                    end)
                  t.edges
              done;
              if !seen <> List.length ids then Error "workflow DAG contains a cycle"
              else Ok t
        end
    end

let create ~name ~nodes ~edges = validate { wf_name = name; nodes; edges }

let create_exn ~name ~nodes ~edges =
  match create ~name ~nodes ~edges with
  | Ok t -> t
  | Error e -> invalid_arg ("Workflow.create_exn: " ^ e)

let node t id =
  match List.find_opt (fun n -> String.equal n.node_id id) t.nodes with
  | Some n -> n
  | None -> raise Not_found

let predecessors t id =
  List.filter_map (fun (a, b) -> if String.equal b id then Some a else None) t.edges

let successors t id =
  List.filter_map (fun (a, b) -> if String.equal a id then Some b else None) t.edges

let stages t =
  (* Longest-path layering: a node's layer is 1 + max of predecessors. *)
  let layer = Hashtbl.create 16 in
  let rec layer_of id =
    match Hashtbl.find_opt layer id with
    | Some l -> l
    | None ->
        let preds = predecessors t id in
        let l =
          match preds with
          | [] -> 0
          | _ -> 1 + List.fold_left (fun acc p -> Stdlib.max acc (layer_of p)) 0 preds
        in
        Hashtbl.replace layer id l;
        l
  in
  List.iter (fun n -> ignore (layer_of n.node_id)) t.nodes;
  let max_layer = Hashtbl.fold (fun _ l acc -> Stdlib.max acc l) layer 0 in
  List.init (max_layer + 1) (fun i ->
      List.filter (fun n -> Hashtbl.find layer n.node_id = i) t.nodes)

let required_modules t =
  List.fold_left
    (fun acc n ->
      List.fold_left
        (fun acc m -> if List.mem m acc then acc else acc @ [ m ])
        acc n.required_modules)
    [] t.nodes

let chain ~name ?(language = Rust) ?(modules = [ "mm"; "stdio"; "time" ]) n =
  if n < 1 then invalid_arg "Workflow.chain: need at least one function";
  let nodes =
    List.init n (fun i ->
        {
          node_id = Printf.sprintf "fn%d" i;
          language;
          instances = 1;
          required_modules = modules;
        })
  in
  let edges =
    List.init (n - 1) (fun i -> (Printf.sprintf "fn%d" i, Printf.sprintf "fn%d" (i + 1)))
  in
  create_exn ~name ~nodes ~edges

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=LR;\n" t.wf_name);
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  %S [label=\"%s\\n%s x%d\"];\n" n.node_id n.node_id
           (Format.asprintf "%a" pp_language n.language)
           n.instances))
    t.nodes;
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  %S -> %S;\n" a b))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let node_of_json j =
  let open Jsonlite in
  let node_id = member_string "name" j in
  let language =
    match language_of_string (member_string ~default:"rust" "language" j) with
    | Ok l -> l
    | Error e -> invalid_arg e
  in
  let instances = member_int ~default:1 "instances" j in
  let required_modules = List.map get_string (member_list "modules" j) in
  { node_id; language; instances; required_modules }

let of_json j =
  match
    let open Jsonlite in
    let name = member_string "workflow" j in
    let nodes = List.map node_of_json (member_list "functions" j) in
    let edges =
      List.map
        (fun e ->
          (Jsonlite.member_string "from" e, Jsonlite.member_string "to" e))
        (member_list "edges" j)
    in
    create ~name ~nodes ~edges
  with
  | result -> result
  | exception Invalid_argument e -> Error e

let to_json t =
  let open Jsonlite in
  Obj
    [
      ("workflow", String t.wf_name);
      ( "functions",
        List
          (List.map
             (fun n ->
               Obj
                 [
                   ("name", String n.node_id);
                   ("language", String (Format.asprintf "%a" pp_language n.language));
                   ("instances", Int n.instances);
                   ("modules", List (List.map (fun m -> String m) n.required_modules));
                 ])
             t.nodes) );
      ( "edges",
        List
          (List.map
             (fun (a, b) -> Obj [ ("from", String a); ("to", String b) ])
             t.edges) );
    ]

let of_string s =
  match Jsonlite.parse_result s with
  | Error e -> Error e
  | Ok j -> of_json j
