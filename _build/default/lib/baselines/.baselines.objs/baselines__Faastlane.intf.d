lib/baselines/faastlane.mli: Platform Sim
