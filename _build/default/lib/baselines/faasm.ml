open Workloads
open Sim

let faaslet_start = Units.us 480
let instantiate = Units.us 160
let state_sync = Units.us 700

(* Every chained invocation is dispatched through Faasm's scheduler
   (the control-plane cost the paper sees grow with FunctionChain
   length, 8.5). *)
let control_plane = Units.ms 11

(* Local-tier transfer: mremap avoids the copy but each page still faults in,
   then the consumer traverses the bytes. *)
let transfer_cost n =
  let pages = (n + 4095) / 4096 in
  Units.add
    (Units.scale Alloystack_core.Cost.page_fault_service (float_of_int pages))
    (Units.time_for_bytes ~bytes_per_sec:Alloystack_core.Cost.memcpy_bw n)

let cpython_init_faasm = Units.ms 2_350

let make ~label ~language =
  let runtime = Wasm.Runtime.wavm in
  let compute_factor =
    match language with
    | Alloystack_core.Workflow.Rust ->
        invalid_arg "Faasm does not support Rust (the paper omits it too)"
    | Alloystack_core.Workflow.C -> Wasm.Runtime.slowdown_vs_native runtime
    | Alloystack_core.Workflow.Python -> 22.0 *. Wasm.Runtime.slowdown_vs_native runtime
  in
  let run ?(cores = 64) (app : Fctx.app) =
    let vfs = Fsim.Vfs.fresh_extfs () in
    List.iter (fun (path, data) -> vfs.Fsim.Vfs.write_file path data) app.Fctx.inputs;
    let store : (string, bytes) Hashtbl.t = Hashtbl.create 32 in
    let boot (info : Runner.instance_info) clock =
      if info.Runner.stage_index > 0 || info.Runner.instance > 0 then
        Clock.advance clock control_plane;
      Clock.advance clock faaslet_start;
      Clock.advance clock instantiate;
      if language = Alloystack_core.Workflow.Python then
        Clock.advance clock cpython_init_faasm
    in
    (* File access goes through Faasm's WASI filesystem layer: an
       extra copy into the sandbox plus the layer's own bookkeeping. *)
    let io_factor = 2.2 in
    let make_fctx (info : Runner.instance_info) ~clock ~phase =
      let send ~slot data =
        Clock.advance clock state_sync;
        Clock.advance clock (transfer_cost (Bytes.length data));
        Hashtbl.replace store slot (Bytes.copy data)
      in
      let recv ~slot =
        match Hashtbl.find_opt store slot with
        | None -> raise Not_found
        | Some data ->
            Hashtbl.remove store slot;
            Clock.advance clock state_sync;
            Clock.advance clock (transfer_cost (Bytes.length data));
            data
      in
      {
        Fctx.instance = info.Runner.instance;
        total = info.Runner.total;
        read_input =
          (fun path ->
            let before = Clock.now clock in
            let data = vfs.Fsim.Vfs.read_file ~clock path in
            Clock.advance clock
              (Units.scale (Clock.elapsed_since clock before) (io_factor -. 1.0));
            data);
        write_output =
          (fun path data ->
            let before = Clock.now clock in
            vfs.Fsim.Vfs.write_file ~clock path data;
            Clock.advance clock
              (Units.scale (Clock.elapsed_since clock before) (io_factor -. 1.0)));
        send;
        recv;
        println = (fun _ -> Clock.advance clock (Hostos.Syscall.cost Hostos.Syscall.Write));
        compute = (fun t -> Clock.advance clock (Units.scale t compute_factor));
        phase;
      }
    in
    let instance_rss _ = 6 * 1024 * 1024 in
    let hooks = { Runner.boot; make_fctx; instance_rss; cpu_tax = 0.0 } in
    let result =
      Runner.run ~cores ~trigger_overhead:(Units.us 400) hooks app.Fctx.stages
    in
    let read_output path =
      match vfs.Fsim.Vfs.read_file path with
      | data -> Some data
      | exception Not_found -> None
    in
    {
      Platform.platform = label;
      e2e = result.Runner.e2e;
      cold_start = result.Runner.cold_start;
      phase_totals = result.Runner.phase_totals;
      cpu_time = result.Runner.cpu_time;
      peak_rss = result.Runner.peak_rss;
      validated = app.Fctx.validate ~read_output;
    }
  in
  { Platform.name = label; run }

let c = make ~label:"Faasm-C" ~language:Alloystack_core.Workflow.C

let python = make ~label:"Faasm-Py" ~language:Alloystack_core.Workflow.Python
