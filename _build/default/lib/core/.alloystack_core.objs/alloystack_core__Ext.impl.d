lib/core/ext.ml: Hashtbl Printf
