lib/core/libos_fatfs.mli: Errno Sim Wfd
