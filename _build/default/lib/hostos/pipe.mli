(** Linux pipe model: bounded byte FIFO with 64 KiB capacity.

    Mechanically exact (bytes round-trip); the kernel copy cost per
    chunk is charged by the caller using {!Syscall.cost} plus a
    bandwidth term, matching how the Faastlane-IPC baseline pays for its
    IPC transfers. *)

type t

val capacity : int
(** 64 KiB, the default Linux pipe buffer. *)

val create : unit -> t

val write : t -> bytes -> int
(** Append up to the free space; returns the number of bytes accepted
    (0 when full — the caller models blocking by retrying after the
    reader drains). *)

val read : t -> int -> bytes
(** Remove up to [n] buffered bytes (may be shorter, empty when the pipe
    is drained). *)

val buffered : t -> int
val is_empty : t -> bool

val transfer_chunks : int -> int
(** [transfer_chunks len] is the number of pipe-capacity chunks needed
    to move [len] bytes — i.e. the number of write/read syscall pairs a
    blocking transfer performs. *)
