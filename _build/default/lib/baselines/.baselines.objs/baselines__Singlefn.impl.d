lib/baselines/singlefn.ml: Alloystack_core Clock Faasm Faastlane Sim Units Visor Vmm Wasm Wfd
