let input_path = "/input/records.bin"
let output_path = "/output/sorted.bin"

(* Native compute rates: partitioning is a streaming pass; sorting is
   charged per record * log2(records). *)
let split_ns_per_byte = 0.35
let concat_ns_per_byte = 0.12
let sort_ns_per_compare = 1.05

let unsigned_compare (a : int32) (b : int32) =
  (* Flip the sign bit to compare as unsigned. *)
  Int32.compare (Int32.logxor a Int32.min_int) (Int32.logxor b Int32.min_int)

let sort_records data =
  (* LSD radix sort over zero-extended 32-bit keys, two 16-bit passes:
     O(n), stable, and the unsigned record order equals the natural
     order of the extended ints. *)
  let n = Datagen.record_count data in
  let src = Array.init n (fun i -> Int32.to_int (Datagen.get_record data i) land 0xFFFF_FFFF) in
  let dst = Array.make n 0 in
  let radix = 1 lsl 16 in
  let counts = Array.make (radix + 1) 0 in
  let pass ~shift from into =
    Array.fill counts 0 (radix + 1) 0;
    for i = 0 to n - 1 do
      let d = (from.(i) lsr shift) land (radix - 1) in
      counts.(d + 1) <- counts.(d + 1) + 1
    done;
    for d = 1 to radix do
      counts.(d) <- counts.(d) + counts.(d - 1)
    done;
    for i = 0 to n - 1 do
      let d = (from.(i) lsr shift) land (radix - 1) in
      into.(counts.(d)) <- from.(i);
      counts.(d) <- counts.(d) + 1
    done
  in
  if n > 0 then begin
    pass ~shift:0 src dst;
    pass ~shift:16 dst src
  end;
  let out = Bytes.create (n * 4) in
  Array.iteri (fun i v -> Datagen.set_record out i (Int32.of_int v)) src;
  out

let is_sorted data =
  let n = Datagen.record_count data in
  let rec go i =
    i >= n
    || unsigned_compare (Datagen.get_record data (i - 1)) (Datagen.get_record data i) <= 0
       && go (i + 1)
  in
  n = 0 || go 1

let bucket_of v ~buckets =
  (* Top bits of the unsigned value. *)
  let u = Int32.to_int (Int32.shift_right_logical v 8) land 0xFFFFFF in
  u * buckets / 0x1000000

let bucket_slot i = Printf.sprintf "ps.bucket.%d" i
let sorted_slot i = Printf.sprintf "ps.sorted.%d" i

let sort_cost_ns records =
  if records < 2 then 0.0
  else begin
    let n = float_of_int records in
    n *. (log n /. log 2.0) *. sort_ns_per_compare
  end

let split_kernel p (ctx : Fctx.t) =
  let data = ref Bytes.empty in
  ctx.Fctx.phase Fctx.phase_read (fun () -> data := ctx.Fctx.read_input input_path);
  let data = !data in
  let n = Datagen.record_count data in
  let buckets = Array.make p (Buffer.create 16) in
  for i = 0 to p - 1 do
    buckets.(i) <- Buffer.create (Bytes.length data / Stdlib.max 1 p)
  done;
  ctx.Fctx.phase Fctx.phase_compute (fun () ->
      for i = 0 to n - 1 do
        let v = Datagen.get_record data i in
        let b = Bytes.create 4 in
        Bytes.set_int32_le b 0 v;
        Buffer.add_bytes buckets.(bucket_of v ~buckets:p) b
      done;
      Fctx.compute_bytes ctx ~ns_per_byte:split_ns_per_byte (Bytes.length data));
  ctx.Fctx.phase Fctx.phase_transfer (fun () ->
      Array.iteri
        (fun i buf -> ctx.Fctx.send ~slot:(bucket_slot i) (Buffer.to_bytes buf))
        buckets)

let sort_kernel (ctx : Fctx.t) =
  let i = ctx.Fctx.instance in
  let bucket = ref Bytes.empty in
  ctx.Fctx.phase Fctx.phase_transfer (fun () -> bucket := ctx.Fctx.recv ~slot:(bucket_slot i));
  let sorted = ref Bytes.empty in
  ctx.Fctx.phase Fctx.phase_compute (fun () ->
      sorted := sort_records !bucket;
      ctx.Fctx.compute
        (Sim.Units.ns_f (sort_cost_ns (Datagen.record_count !bucket))));
  ctx.Fctx.phase Fctx.phase_transfer (fun () ->
      ctx.Fctx.send ~slot:(sorted_slot i) !sorted)

let merge_kernel p (ctx : Fctx.t) =
  let parts = ref [] in
  ctx.Fctx.phase Fctx.phase_transfer (fun () ->
      for i = p - 1 downto 0 do
        parts := ctx.Fctx.recv ~slot:(sorted_slot i) :: !parts
      done);
  let out = Bytes.concat Bytes.empty !parts in
  ctx.Fctx.phase Fctx.phase_compute (fun () ->
      Fctx.compute_bytes ctx ~ns_per_byte:concat_ns_per_byte (Bytes.length out));
  if not (is_sorted out) then failwith "ParallelSorting: merge produced unsorted output";
  ctx.Fctx.write_output output_path out;
  ctx.Fctx.println "parallel-sorting done"

let app ~seed ~size ~instances =
  let p = instances in
  let count = size / 4 in
  let input = Datagen.int32_records ~seed ~count in
  {
    Fctx.app_name = "ParallelSorting";
    stages =
      [ ("split", 1, split_kernel p); ("sort", p, sort_kernel); ("merge", 1, merge_kernel p) ];
    inputs = [ (input_path, input) ];
    validate =
      (fun ~read_output ->
        match read_output output_path with
        | None -> Error "no output file"
        | Some data ->
            if Bytes.length data <> count * 4 then
              Error
                (Printf.sprintf "sorted output has %d bytes, expected %d"
                   (Bytes.length data) (count * 4))
            else if not (is_sorted data) then Error "output is not sorted"
            else Ok ());
    modules = [ "mm"; "fdtab"; "stdio"; "time"; "fatfs" ];
  }
