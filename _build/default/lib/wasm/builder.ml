let const n = Instr.Const (Int64.of_int n)
let const64 v = Instr.Const v
let add = Instr.Binop Instr.Add
let sub = Instr.Binop Instr.Sub
let mul = Instr.Binop Instr.Mul
let div = Instr.Binop Instr.Div_s
let rem = Instr.Binop Instr.Rem_s
let lt = Instr.Binop Instr.Lt_s
let gt = Instr.Binop Instr.Gt_s
let le = Instr.Binop Instr.Le_s
let ge = Instr.Binop Instr.Ge_s
let eq = Instr.Binop Instr.Eq
let ne = Instr.Binop Instr.Ne
let local i = Instr.Local_get i
let set_local i = Instr.Local_set i
let tee i = Instr.Local_tee i

let while_loop ~cond ~body =
  Instr.Block [ Instr.Loop (cond @ [ Instr.Eqz; Instr.Br_if 1 ] @ body @ [ Instr.Br 0 ]) ]

let for_range ~local:i ~from ~until ~body =
  from
  @ [ set_local i;
      while_loop
        ~cond:([ local i ] @ until @ [ lt ])
        ~body:(body @ [ local i; const 1; add; set_local i ]) ]

let func ~name ?(params = 0) ?(locals = 0) body =
  { Wmodule.fname = name; params; locals; body }

(* sum(n) = 1 + 2 + ... + n, iteratively.  local 0 = n, 1 = i, 2 = acc. *)
let sum_to_n =
  let body =
    for_range ~local:1 ~from:[ const 1 ] ~until:[ local 0; const 1; add ]
      ~body:[ local 2; local 1; add; set_local 2 ]
    @ [ local 2 ]
  in
  Wmodule.create ~name:"sum_to_n"
    ~exports:[ ("sum", 0) ]
    [ func ~name:"sum" ~params:1 ~locals:2 body ]

(* Naive fib for call-heavy workloads. *)
let fib =
  let body =
    [
      local 0;
      const 2;
      lt;
      Instr.If
        ( [ local 0; Instr.Return ],
          [
            local 0;
            const 1;
            sub;
            Instr.Call 0;
            local 0;
            const 2;
            sub;
            Instr.Call 0;
            add;
          ] );
    ]
  in
  Wmodule.create ~name:"fib" ~exports:[ ("fib", 0) ]
    [ func ~name:"fib" ~params:1 body ]

(* fill(n, v): memory[0..n) <- v; checksum(n): sum of memory[0..n). *)
let memory_fill =
  let fill =
    for_range ~local:2 ~from:[ const 0 ] ~until:[ local 0 ]
      ~body:[ local 2; local 1; Instr.Store8 0 ]
    @ [ const 0 ]
  in
  let checksum =
    for_range ~local:1 ~from:[ const 0 ] ~until:[ local 0 ]
      ~body:[ local 2; local 1; Instr.Load8 0; add; set_local 2 ]
    @ [ local 2 ]
  in
  Wmodule.create ~name:"memory_fill" ~memory_pages:16
    ~exports:[ ("fill", 0); ("checksum", 1) ]
    [
      func ~name:"fill" ~params:2 ~locals:1 fill;
      func ~name:"checksum" ~params:1 ~locals:2 checksum;
    ]

(* Bubble sort of bytes in memory[0..n): local 0 = n, 1 = i, 2 = j,
   3/4 = scratch values. *)
let bubble_sort =
  let swap_if_greater =
    [
      (* a = mem[j], b = mem[j+1] *)
      local 2;
      Instr.Load8 0;
      set_local 3;
      local 2;
      Instr.Load8 1;
      set_local 4;
      local 3;
      local 4;
      gt;
      Instr.If
        ([ local 2; local 4; Instr.Store8 0; local 2; local 3; Instr.Store8 1 ], []);
    ]
  in
  let inner =
    for_range ~local:2 ~from:[ const 0 ]
      ~until:[ local 0; const 1; sub; local 1; sub ]
      ~body:swap_if_greater
  in
  let outer =
    for_range ~local:1 ~from:[ const 0 ] ~until:[ local 0; const 1; sub ] ~body:inner
  in
  Wmodule.create ~name:"bubble_sort" ~memory_pages:4 ~exports:[ ("sort", 0) ]
    [ func ~name:"sort" ~params:1 ~locals:4 (outer @ [ const 0 ]) ]
