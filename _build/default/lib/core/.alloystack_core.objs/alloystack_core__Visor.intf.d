lib/core/visor.mli: Asstd Fsim Isa Sim Wasm Wfd Workflow
