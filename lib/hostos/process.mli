(** Host process / thread table.

    Each WFD (and each baseline sandbox) is one host process; functions
    run as threads created with [clone].  Threads carry the virtual
    clock they execute on.  Memory accounting (RSS) feeds Fig. 17b. *)

type pid = int
type tid = int

type thread = { tid : tid; clock : Sim.Clock.t }

type t

val create_table : unit -> t

val reset_table : t -> unit
(** Rewind the table in place to the [create_table] state: no
    processes, pid/tid counters back at 1. *)

val acquire_table : unit -> t
(** A table from the calling domain's freelist of released tables, or
    a fresh one — observationally identical to {!create_table} (tables
    are scrubbed with {!reset_table} on release). *)

val release_table : t -> unit
(** Scrub the table and return it to the calling domain's freelist.
    The freelist takes ownership; every process still registered is
    dropped.  Only release tables whose owning request is finished
    with them (stale {e references} to a released table are harmless
    as long as nothing reads through them). *)

val spawn_process : t -> ?at:Sim.Units.time -> name:string -> unit -> pid
(** Fork+exec cost is the sandbox's concern; this just registers the
    process with its main thread started at [at]. *)

val clone_thread : t -> pid -> thread
(** Create a thread in the process, charged one [clone] syscall on the
    main thread's clock; the new thread starts at the instant the clone
    returns. *)

val main_thread : t -> pid -> thread
val threads : t -> pid -> thread list
val thread_count : t -> pid -> int

val charge_rss : t -> pid -> int -> unit
(** Add resident-set bytes to the process. *)

val release_rss : t -> pid -> int -> unit
val rss : t -> pid -> int
val total_rss : t -> int

val exit_process : t -> pid -> unit
val live_processes : t -> int
