open Sim
open Mem

exception Not_in_user_context

let in_system (thread : Wfd.thread) =
  Prot.equal_pkru thread.Wfd.pkru Wfd.system_pkru

let enter_system (wfd : Wfd.t) (thread : Wfd.thread) f =
  if in_system thread then raise Not_in_user_context;
  (* The trampoline code runs in user context: fetching it must be
     permitted by the user rights (the pages are in the user
     partition). *)
  Address_space.check_exec wfd.Wfd.aspace ~pkru:thread.Wfd.pkru
    Layout.trampoline.Layout.base;
  Clock.advance thread.Wfd.clock Cost.trampoline_switch;
  wfd.Wfd.trampoline_crossings <- wfd.Wfd.trampoline_crossings + 1;
  thread.Wfd.pkru <- Wfd.system_pkru;
  let restore () =
    thread.Wfd.pkru <- thread.Wfd.user_pkru;
    Clock.advance thread.Wfd.clock Cost.trampoline_switch
  in
  match f () with
  | result ->
      restore ();
      result
  | exception e ->
      restore ();
      raise e

let user_access_check (wfd : Wfd.t) (thread : Wfd.thread) addr =
  ignore (Address_space.load_byte wfd.Wfd.aspace ~pkru:thread.Wfd.pkru addr)
