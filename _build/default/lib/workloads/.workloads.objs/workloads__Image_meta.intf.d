lib/workloads/image_meta.mli: Fctx
