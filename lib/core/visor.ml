open Sim

type kernel = Asstd.ctx -> instance:int -> total:int -> unit

type binding = { kernel : kernel; image : Isa.Image.t option }

let bind ?image kernel = { kernel; image }

type retry_policy = No_retry | Retry_function of int | Retry_workflow of int

type backoff =
  | No_backoff
  | Exponential of { base : Units.time; factor : float; limit : Units.time }

let backoff_delay backoff ~attempt =
  if attempt <= 1 then Units.zero
  else
    match backoff with
    | No_backoff -> Units.zero
    | Exponential { base; factor; limit } ->
        Units.min limit (Units.scale base (factor ** float_of_int (attempt - 2)))

type config = {
  cores : int;
  features : Wfd.features;
  vfs : Fsim.Vfs.t option;
  wasm_runtime : Wasm.Runtime.profile option;
  dispatch_latency : Units.time;
  retry : retry_policy;
  cpu_quota : float option;
  fault : Fault.t option;
  timeout : Units.time option;
  backoff : backoff;
}

let default_config =
  {
    cores = 64;
    features = Wfd.default_features;
    vfs = None;
    wasm_runtime = None;
    dispatch_latency = Units.us 15;
    retry = No_retry;
    cpu_quota = None;
    fault = None;
    timeout = None;
    backoff = No_backoff;
  }

type stage_report = {
  stage_index : int;
  instance_durations : Units.time list;
  stage_makespan : Units.time;
  fan_in_waits : Units.time list;
}

type report = {
  e2e : Units.time;
  cold_start : Units.time;
  admission : Units.time;
  stage_reports : stage_report list;
  phase_totals : (string * Units.time) list;
  entry_misses : int;
  entry_hits : int;
  trampoline_crossings : int;
  peak_rss : int;
  stdout : string;
  loaded_modules : string list;
  retries : int;
}

exception Admission_failed of string

exception Function_failed of { fn : string; attempts : int; error : exn }

exception Function_hung of { fn : string }

exception Timed_out of { fn : string; after : Units.time }

(* Recovering a crashed function: discard its heap-unit allocations
   (linked_list_allocator recovery, 7.1), unmap its slot and restart
   the thread in a fresh slot. *)
let function_restart_cost = Units.us 260

(* Blacklist admission: scan (and if needed rewrite) every provided
   image.  This runs before the workflow is triggered (§6), so its cost
   is reported separately from the critical path. *)
let admit_images bindings =
  let clock = Clock.create () in
  List.iter
    (fun (_, b) ->
      match b.image with
      | None -> ()
      | Some image ->
          let kb = (Isa.Image.code_size image + 1023) / 1024 in
          Clock.advance clock (Units.scale Cost.image_scan_per_kb (float_of_int kb));
          (match Isa.Rewriter.admit image with
          | Ok _ -> ()
          | Error reason -> raise (Admission_failed reason)))
    bindings;
  Clock.now clock

let lookup_binding bindings id =
  match List.assoc_opt id bindings with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Visor.run: no binding for function %s" id)

let make_fn_ctx config wfd thread language =
  let ctx = Asstd.make_ctx wfd thread language in
  match language with
  | Workflow.Rust -> ctx
  | Workflow.C | Workflow.Python ->
      let runtime =
        match config.wasm_runtime with Some r -> r | None -> Wasm.Runtime.wasmtime
      in
      Asstd.with_runtime ctx runtime

(* Module instantiation for a WASM-hosted function after the engine is
   up (linear memory + linker binding). *)
let wasm_instantiate_cost = Units.us 300

(* A parallel Python instance needs its own interpreter state; with the
   runtime files already resident in the WFD this re-init is far
   cheaper than the first boot (the Fig. 13 "file reading during
   initialization" bottleneck shows up as instances grow). *)
let cpython_reinit = Units.ms 300

(* Interpreter reuse by a later sequential function of the same WFD. *)
let cpython_reuse = Units.ms 25

type runtime_state = {
  mutable engine_started : bool;
  mutable python_booted : bool;
}

(* Runtime init charged before a WASM-hosted function's first
   instruction.  The engine (and for Python the CPython runtime) lives
   in the WFD and is shared: only the first function pays the full
   boot. *)
let runtime_init_cost config state language ~instance =
  let runtime =
    match config.wasm_runtime with Some r -> r | None -> Wasm.Runtime.wasmtime
  in
  match language with
  | Workflow.Rust -> Units.zero
  | Workflow.C | Workflow.Python ->
      let engine =
        if state.engine_started then Units.zero
        else begin
          state.engine_started <- true;
          runtime.Wasm.Runtime.startup
        end
      in
      let python =
        match language with
        | Workflow.Python ->
            if not state.python_booted then begin
              state.python_booted <- true;
              Wasm.Runtime.cpython_init
            end
            else if instance > 0 then cpython_reinit
            else cpython_reuse
        | Workflow.Rust | Workflow.C -> Units.zero
      in
      Units.add engine (Units.add wasm_instantiate_cost python)

let run_once ~config ~workflow ~bindings () =
  (* Check bindings exist up front. *)
  List.iter
    (fun n -> ignore (lookup_binding bindings n.Workflow.node_id))
    workflow.Workflow.nodes;
  let admission = admit_images bindings in
  let proc_table = Hostos.Process.create_table () in
  let clock = Clock.create () in
  let t0 = Clock.now clock in
  (* (1) The watchdog receives the invocation event. *)
  Clock.advance clock Cost.visor_dispatch;
  (* as-visor instantiates the WFD for the workflow. *)
  let wfd =
    Wfd.create ~features:config.features ?vfs:config.vfs ?fault:config.fault
      ~proc_table ~clock ~workflow_name:workflow.Workflow.wf_name ()
  in
  Clock.advance clock Cost.entry_table_init;
  Trace.recordf Trace.global ~at:(Clock.now clock) ~category:"visor" ~label:"wfd-created"
    "wfd%d for %s" wfd.Wfd.id workflow.Workflow.wf_name;
  if not config.features.Wfd.on_demand then Libos.load_all wfd ~clock;
  let runtime_state = { engine_started = false; python_booted = false } in
  let retries = ref 0 in
  let cold_start_mark = ref None in
  let phase_totals : (string, Units.time) Hashtbl.t = Hashtbl.create 8 in
  let peak_rss = ref 0 in
  let stage_reports = ref [] in
  let stage_ready = ref (Clock.now clock) in
  let run_stage stage_index nodes =
    (* The orchestrator dispatches every instance of every node of the
       stage as parallel threads. *)
    let tasks =
      List.concat_map
        (fun node ->
          let b = lookup_binding bindings node.Workflow.node_id in
          List.init node.Workflow.instances (fun i -> (node, b, i)))
        nodes
    in
    let dispatch = ref !stage_ready in
    let durations =
      List.map
        (fun ((node : Workflow.node), b, i) ->
          dispatch := Units.add !dispatch config.dispatch_latency;
          let start = !dispatch in
          let spawn_clock = Clock.create ~at:start () in
          (match config.cpu_quota with
          | Some _ -> Clock.advance spawn_clock Hostos.Cgroup.setup_cost
          | None -> ());
          let thread = Wfd.spawn_function_thread wfd ~clock:spawn_clock in
          Clock.sync thread.Wfd.clock spawn_clock;
          Clock.advance thread.Wfd.clock
            (runtime_init_cost config runtime_state node.Workflow.language ~instance:i);
          (match !cold_start_mark with
          | None -> cold_start_mark := Some (Clock.now thread.Wfd.clock)
          | Some _ -> ());
          (* Run the kernel; a crash is contained by MPK fault
             isolation, so under Retry_function the orchestrator
             recovers the function's heap and restarts just this
             function (3.1). *)
          let max_attempts =
            match config.retry with
            | Retry_function n -> Stdlib.max 1 n
            | No_retry | Retry_workflow _ -> 1
          in
          let fn = node.Workflow.node_id in
          let record_recovery ~at detail =
            match config.fault with
            | Some plan -> Fault.record_recovery plan ~at ~site:"visor.retry" detail
            | None ->
                Trace.recordf Trace.global ~at ~category:"fault" ~label:"visor.retry"
                  "recovered: %s" detail
          in
          let rec attempt thread n =
            let ctx = make_fn_ctx config wfd thread node.Workflow.language in
            let attempt_start = Clock.now thread.Wfd.clock in
            let execute () =
              (match config.fault with
              | Some plan ->
                  if Fault.check ~at:attempt_start plan ~site:Fault.site_fn_crash then
                    raise (Fault.Injected { site = Fault.site_fn_crash });
                  if Fault.check ~at:attempt_start plan ~site:Fault.site_fn_hang then begin
                    match config.timeout with
                    | None ->
                        (* No watchdog timeout configured: a wedged
                           function thread is undetectable. *)
                        raise (Function_hung { fn })
                    | Some limit ->
                        (* The thread wedges; the watchdog kills it when
                           the per-function timeout expires. *)
                        Clock.advance thread.Wfd.clock limit;
                        raise (Timed_out { fn; after = limit })
                  end
              | None -> ());
              b.kernel ctx ~instance:i ~total:node.Workflow.instances;
              match config.timeout with
              | Some limit
                when Units.( > ) (Clock.elapsed_since thread.Wfd.clock attempt_start)
                       limit ->
                  (* The kernel ran past its budget: the watchdog killed
                     it at the deadline, the visor observes the kill at
                     the next scheduling tick. *)
                  raise (Timed_out { fn; after = limit })
              | _ -> ()
            in
            match execute () with
            | () -> (thread, ctx)
            | exception (Function_hung _ as e) -> raise e
            | exception error ->
                if n >= max_attempts then
                  raise (Function_failed { fn; attempts = n; error })
                else begin
                  incr retries;
                  (* Recover the crashed function's heap unit and
                     restart it in the same slot. *)
                  let fresh =
                    Wfd.respawn_function_thread wfd ~slot:thread.Wfd.fn_slot
                      ~clock:thread.Wfd.clock
                  in
                  Clock.advance fresh.Wfd.clock function_restart_cost;
                  let wait = backoff_delay config.backoff ~attempt:(n + 1) in
                  Clock.advance fresh.Wfd.clock wait;
                  record_recovery ~at:(Clock.now fresh.Wfd.clock)
                    (Printf.sprintf "restart %s attempt %d (backoff %s)" fn (n + 1)
                       (Units.to_string wait));
                  attempt fresh (n + 1)
                end
          in
          let final_thread, ctx = attempt thread 1 in
          Hashtbl.iter
            (fun name t ->
              let prev =
                match Hashtbl.find_opt phase_totals name with
                | Some v -> v
                | None -> Units.zero
              in
              Hashtbl.replace phase_totals name (Units.add prev t))
            ctx.Asstd.phases;
          let on_cpu = Clock.elapsed_since final_thread.Wfd.clock start in
          match config.cpu_quota with
          | Some q -> Hostos.Cgroup.stretch (Hostos.Cgroup.create ~quota:q) on_cpu
          | None -> on_cpu)
        tasks
    in
    let placements =
      Hostos.Sched.schedule ~cores:config.cores ~ready:!stage_ready
        ~dispatch_latency:config.dispatch_latency durations
    in
    let makespan = Hostos.Sched.makespan placements in
    peak_rss := Stdlib.max !peak_rss (Hostos.Process.total_rss proc_table);
    stage_reports :=
      {
        stage_index;
        instance_durations = durations;
        stage_makespan = Units.sub makespan !stage_ready;
        fan_in_waits = Hostos.Sched.fan_in_wait placements;
      }
      :: !stage_reports;
    Trace.recordf Trace.global ~at:makespan ~category:"visor" ~label:"stage-done"
      "wfd%d stage %d (%d instances)" wfd.Wfd.id stage_index (List.length durations);
    stage_ready := makespan
  in
  List.iteri run_stage (Workflow.stages workflow);
  (* (7) after the last function completes, as-visor destroys the WFD
     and reclaims the resources. *)
  let finish = !stage_ready in
  let stdout = Libos_stdio.output wfd in
  let loaded_modules =
    Hashtbl.fold (fun k () acc -> k :: acc) wfd.Wfd.loaded_modules []
    |> List.sort compare
  in
  Trace.recordf Trace.global ~at:finish ~category:"visor" ~label:"wfd-destroyed"
    "wfd%d" wfd.Wfd.id;
  let result =
    {
      e2e = Units.sub finish t0;
      cold_start =
        (match !cold_start_mark with
        | Some m -> Units.sub m t0
        | None -> Units.sub (Clock.now clock) t0);
      admission;
      stage_reports = List.rev !stage_reports;
      phase_totals =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) phase_totals []
        |> List.sort compare;
      entry_misses = wfd.Wfd.entry_misses;
      entry_hits = wfd.Wfd.entry_hits;
      trampoline_crossings = wfd.Wfd.trampoline_crossings;
      peak_rss = !peak_rss;
      stdout;
      loaded_modules;
      retries = !retries;
    }
  in
  Wfd.destroy wfd;
  result

let cold_start_only ?(config = default_config) () =
  let noop = bind (fun _ctx ~instance:_ ~total:_ -> ()) in
  let workflow =
    Workflow.create_exn ~name:"no-ops"
      ~nodes:
        [
          {
            Workflow.node_id = "noop";
            language = Workflow.Rust;
            instances = 1;
            required_modules = [];
          };
        ]
      ~edges:[]
  in
  let report = run_once ~config ~workflow ~bindings:[ ("noop", noop) ] () in
  report.cold_start


let run ?(config = default_config) ~workflow ~bindings () =
  match config.retry with
  | No_retry | Retry_function _ -> run_once ~config ~workflow ~bindings ()
  | Retry_workflow max_attempts ->
      (* Idempotent functions: a failed run is retried in a brand new
         WFD; inputs are still staged on the (shared) disk image. *)
      let rec attempt n =
        match run_once ~config ~workflow ~bindings () with
        | report -> { report with retries = report.retries + (n - 1) }
        | exception Function_failed _ when n < Stdlib.max 1 max_attempts ->
            attempt (n + 1)
      in
      attempt 1
