lib/baselines/faasm.mli: Platform Sim
