lib/core/libos.mli: Sim Wfd
